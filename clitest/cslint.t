cslint walks .ml/.mli sources and enforces the numerical-correctness and
determinism rules (DESIGN.md §8). Build a tiny dirty project to lint.

  $ mkdir -p lib bin
  $ cat > lib/dirty.ml << 'EOF'
  > let bad_eq x = x = 0.5
  > let bad_sum xs = List.fold_left ( +. ) 0.0 xs
  > let bad_rand () = Random.int 10
  > let bad_print () = print_endline "hi"
  > EOF
  $ cat > bin/tool.ml << 'EOF'
  > let usage () = print_endline "usage: tool"
  > let shady x = Obj.magic x
  > EOF

Human output: one finding per line, sorted by file and position, and a
nonzero exit code. bin/ may print (R4 is lib/-scoped) but not cast.

  $ ../bin/cslint.exe lib bin
  bin/tool.ml:2:14: R6 Obj.magic/Obj.repr defeat the type system; restructure the types
  lib/dirty.ml:1:0: R5 missing interface: every lib/**/*.ml needs a matching .mli
  lib/dirty.ml:1:15: R1 polymorphic = with a float operand; use Tol.equal, Tol.is_zero or Tol.exactly
  lib/dirty.ml:2:17: R2 naive fold_left (+.) accumulation; use Kahan.sum / Kahan.sum_list / Kahan.sum_by
  lib/dirty.ml:3:18: R3 stdlib Random breaks reproducibility; thread an explicit Prng.t
  lib/dirty.ml:4:19: R4 print_endline prints directly from lib/; emit through Obs sinks or return values
  cslint: 6 finding(s), 0 baselined, 0 suppressed, 0 error(s)
  [1]

JSON output carries the same findings plus counters.

  $ ../bin/cslint.exe --json bin
  {"findings":[{"rule":"R6","file":"bin/tool.ml","line":2,"col":14,"message":"Obj.magic/Obj.repr defeat the type system; restructure the types"}],"warnings":[],"total":1,"suppressed":0,"baselined":0,"errors":[]}
  [1]

Suppression: [@lint.allow "Rn"] silences a finding at that node, and the
summary reports it so deliberate exemptions stay visible.

  $ cat > lib/allowed.ml << 'EOF'
  > let chosen x = (x = 0.5) [@lint.allow "R1"]
  > EOF
  $ cat > lib/allowed.mli << 'EOF'
  > val chosen : float -> bool
  > EOF
  $ ../bin/cslint.exe lib/allowed.ml lib/allowed.mli
  cslint: clean (0 new, 0 baselined, 1 suppressed)

Baseline handling: --write-baseline grandfathers the current findings,
after which only new findings fail the run.

  $ ../bin/cslint.exe --baseline BASE --write-baseline lib bin
  cslint: wrote 6 finding(s) to BASE
  $ ../bin/cslint.exe --baseline BASE lib bin
  cslint: clean (0 new, 6 baselined, 1 suppressed)
  $ cat >> lib/dirty.ml << 'EOF'
  > let newly_bad x = x = 2.5
  > EOF
  $ ../bin/cslint.exe --baseline BASE lib bin
  lib/dirty.ml:5:18: R1 polymorphic = with a float operand; use Tol.equal, Tol.is_zero or Tol.exactly
  cslint: 1 finding(s), 6 baselined, 1 suppressed, 0 error(s)
  [1]

A missing baseline file is an operational error, distinct from findings.

  $ ../bin/cslint.exe --baseline MISSING lib bin 2>&1
  cslint: MISSING: No such file or directory
  [2]

Unparsable source is also an operational error (exit 2), so CI cannot
mistake a broken tree for a clean one.

  $ cat > lib/broken.ml << 'EOF'
  > let let let
  > EOF
  $ ../bin/cslint.exe lib/broken.ml 2>/dev/null
  lib/broken.ml:1:0: R5 missing interface: every lib/**/*.ml needs a matching .mli
  cslint: 1 finding(s), 0 baselined, 0 suppressed, 1 error(s)
  [2]

The deep pass (--deep) builds a whole-program call graph, infers
per-binding effect sets, and enforces R10 (effect-free planning core),
R11 (no toplevel-mutable capture in Domain_pool closures) and R12 (the
.cseffects manifest matches the inferred signatures). Start from a
clean core.

  $ rm lib/broken.ml lib/dirty.ml
  $ mkdir -p lib/sched lib/parallel
  $ cat > lib/parallel/domain_pool.ml << 'EOF'
  > let run ~chunks f = Domain.join (Domain.spawn (fun () -> f chunks))
  > EOF
  $ cat > lib/parallel/domain_pool.mli << 'EOF'
  > val run : chunks:int -> (int -> 'a) -> 'a
  > EOF
  $ cat > lib/sched/plan.ml << 'EOF'
  > let plan c = c *. 2.0
  > let fan n = Domain_pool.run ~chunks:n (fun i -> float_of_int i)
  > EOF
  $ cat > lib/sched/plan.mli << 'EOF'
  > val plan : float -> float
  > val fan : int -> float
  > EOF

Without a committed manifest the deep run fails with R12 and points at
the regeneration command.

  $ ../bin/cslint.exe --deep lib
  .cseffects:1:0: R12 effects manifest .cseffects not found; review the inferred table (cslint effects) and write it with cslint --deep --write-effects
  cslint: 1 finding(s), 0 baselined, 1 suppressed, 0 error(s)
  [1]

The effects subcommand prints the inferred table for review: the core
is pure apart from the domain effect it borrows from Domain_pool.

  $ ../bin/cslint.exe effects lib/sched lib/parallel
  Domain_pool (lib/parallel/domain_pool.ml): domain
    run: domain
  Plan (lib/sched/plan.ml): domain
    fan: domain
    plan: pure

--write-effects locks the reviewed table; the deep run is then clean.

  $ ../bin/cslint.exe --deep --write-effects
  cslint: wrote effect signatures for 3 module(s) to .cseffects
  $ ../bin/cslint.exe --deep lib
  cslint: clean (0 new, 0 baselined, 1 suppressed)

Dirty the core: a wall-clock read and a Domain_pool closure writing a
toplevel ref. The shallow rules (R8), the interprocedural rules (R10
with its acquisition chain, R11) and the manifest drift (R12) all fire
in one parse.

  $ cat >> lib/sched/plan.ml << 'EOF'
  > let stamp () = Unix.gettimeofday ()
  > let plan_stamped c = plan c +. stamp ()
  > let tally = ref 0.0
  > let sum n = Domain_pool.run ~chunks:n (fun i -> tally := float_of_int i)
  > EOF
  $ cat >> lib/sched/plan.mli << 'EOF'
  > val stamp : unit -> float
  > val plan_stamped : float -> float
  > val tally : float ref
  > val sum : int -> unit
  > EOF
  $ ../bin/cslint.exe --deep lib
  lib/sched/plan.ml:1:0: R12 module Plan acquired ambient effect(s) clock global-mut not recorded in .cseffects; burn the effect down or re-lock the manifest with --write-effects after review
  lib/sched/plan.ml:3:0: R10 planning-core binding Plan.stamp is not effect-free: reaches clock via Plan.stamp -> Unix.gettimeofday (lib/sched/plan.ml:3)
  lib/sched/plan.ml:3:15: R8 Unix.gettimeofday reads the wall clock directly; route timing through Obs_clock
  lib/sched/plan.ml:4:0: R10 planning-core binding Plan.plan_stamped is not effect-free: reaches clock via Plan.plan_stamped -> Plan.stamp -> Unix.gettimeofday (lib/sched/plan.ml:3)
  lib/sched/plan.ml:5:12: R14 toplevel ref allocates module-lifetime mutable state in lib/sched; plan memoization belongs in lib/plancache (Plancache.create), passed explicitly
  lib/sched/plan.ml:6:0: R10 planning-core binding Plan.sum is not effect-free: reaches global-mut via Plan.sum -> touches toplevel mutable Plan.tally (lib/sched/plan.ml:6)
  lib/sched/plan.ml:6:48: R11 closure passed to Domain_pool.run captures toplevel mutable Plan.tally; pass state through chunk-local arguments and merge on the caller
  lib/sched/plan.ml:6:48: R11 closure passed to Domain_pool.run mutates toplevel state Plan.tally via :=; chunks must only write state disjoint per chunk index
  cslint: 8 finding(s), 0 baselined, 1 suppressed, 0 error(s)
  [1]

SARIF 2.1.0 export for CI annotations: the file is validated against
the emitted grammar subset before it is written.

  $ ../bin/cslint.exe --deep --sarif out.sarif lib > /dev/null
  [1]
  $ grep -c '"version":"2.1.0"' out.sarif
  1
  $ grep -c '"ruleId":"R11"' out.sarif
  1

R13 fences socket I/O into the lib/obs transport modules (obs_http,
obs_stream, obs_remote, obs_collect): any other module that opens a
listening or connecting socket is flagged, so the network surface
stays in one auditable place.

  $ cat > lib/sneaky.ml << 'EOF'
  > let listen path =
  >   let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  >   Unix.bind fd (Unix.ADDR_UNIX path);
  >   fd
  > EOF
  $ cat > lib/sneaky.mli << 'EOF'
  > val listen : string -> Unix.file_descr
  > EOF
  $ ../bin/cslint.exe lib/sneaky.ml lib/sneaky.mli
  lib/sneaky.ml:2:11: R13 Unix.socket opens a network surface outside the lib/obs transport modules; go through Obs_http / Obs_remote / Obs_collect so the socket code stays in one auditable place
  lib/sneaky.ml:3:2: R13 Unix.bind opens a network surface outside the lib/obs transport modules; go through Obs_http / Obs_remote / Obs_collect so the socket code stays in one auditable place
  cslint: 2 finding(s), 0 baselined, 0 suppressed, 0 error(s)
  [1]
  $ rm lib/sneaky.ml lib/sneaky.mli

M1 reports suppressions that no longer suppress anything; stale allows
rot into misleading documentation. --allow-unused-allows downgrades
the report to a warning for transitional trees.

  $ cat > lib/stale.ml << 'EOF'
  > let f x = (x + 1) [@lint.allow "R1"]
  > EOF
  $ cat > lib/stale.mli << 'EOF'
  > val f : int -> int
  > EOF
  $ ../bin/cslint.exe lib/stale.ml lib/stale.mli
  lib/stale.ml:1:18: M1 unused [@lint.allow "R1"]: no R1 finding falls inside its span; delete the stale suppression
  cslint: 1 finding(s), 0 baselined, 0 suppressed, 0 error(s)
  [1]
  $ ../bin/cslint.exe --allow-unused-allows lib/stale.ml lib/stale.mli
  warning: lib/stale.ml:1:18: M1 unused [@lint.allow "R1"]: no R1 finding falls inside its span; delete the stale suppression
  cslint: clean (0 new, 0 baselined, 0 suppressed)

R14 fences plan-memoization state into lib/plancache: toplevel mutable
containers (Hashtbl, Atomic, ref) in lib/sched would make the planning
core's answers depend on call history, breaking R10 purity and bit
reproducibility. Function-local tables stay legal — they die with the
call.

  $ mkdir -p lib/sched
  $ cat > lib/sched/memo.ml << 'EOF2'
  > let cache = Hashtbl.create 64
  > let lookup k = Hashtbl.find_opt cache k
  > let local k =
  >   let scratch = Hashtbl.create 8 in
  >   Hashtbl.replace scratch k ();
  >   Hashtbl.length scratch
  > EOF2
  $ cat > lib/sched/memo.mli << 'EOF2'
  > val lookup : string -> int option
  > val local : string -> int
  > EOF2
  $ ../bin/cslint.exe lib/sched/memo.ml lib/sched/memo.mli
  lib/sched/memo.ml:1:12: R14 toplevel Hashtbl.create allocates module-lifetime mutable state in lib/sched; plan memoization belongs in lib/plancache (Plancache.create), passed explicitly
  cslint: 1 finding(s), 0 baselined, 0 suppressed, 0 error(s)
  [1]
  $ rm -r lib/sched
