cslint walks .ml/.mli sources and enforces the numerical-correctness and
determinism rules (DESIGN.md §8). Build a tiny dirty project to lint.

  $ mkdir -p lib bin
  $ cat > lib/dirty.ml << 'EOF'
  > let bad_eq x = x = 0.5
  > let bad_sum xs = List.fold_left ( +. ) 0.0 xs
  > let bad_rand () = Random.int 10
  > let bad_print () = print_endline "hi"
  > EOF
  $ cat > bin/tool.ml << 'EOF'
  > let usage () = print_endline "usage: tool"
  > let shady x = Obj.magic x
  > EOF

Human output: one finding per line, sorted by file and position, and a
nonzero exit code. bin/ may print (R4 is lib/-scoped) but not cast.

  $ ../bin/cslint.exe lib bin
  bin/tool.ml:2:14: R6 Obj.magic/Obj.repr defeat the type system; restructure the types
  lib/dirty.ml:1:0: R5 missing interface: every lib/**/*.ml needs a matching .mli
  lib/dirty.ml:1:15: R1 polymorphic = with a float operand; use Tol.equal, Tol.is_zero or Tol.exactly
  lib/dirty.ml:2:17: R2 naive fold_left (+.) accumulation; use Kahan.sum / Kahan.sum_list / Kahan.sum_by
  lib/dirty.ml:3:18: R3 stdlib Random breaks reproducibility; thread an explicit Prng.t
  lib/dirty.ml:4:19: R4 print_endline prints directly from lib/; emit through Obs sinks or return values
  cslint: 6 finding(s), 0 baselined, 0 suppressed, 0 error(s)
  [1]

JSON output carries the same findings plus counters.

  $ ../bin/cslint.exe --json bin
  {"findings":[{"rule":"R6","file":"bin/tool.ml","line":2,"col":14,"message":"Obj.magic/Obj.repr defeat the type system; restructure the types"}],"total":1,"suppressed":0,"baselined":0,"errors":[]}
  [1]

Suppression: [@lint.allow "Rn"] silences a finding at that node, and the
summary reports it so deliberate exemptions stay visible.

  $ cat > lib/allowed.ml << 'EOF'
  > let chosen x = (x = 0.5) [@lint.allow "R1"]
  > EOF
  $ cat > lib/allowed.mli << 'EOF'
  > val chosen : float -> bool
  > EOF
  $ ../bin/cslint.exe lib/allowed.ml lib/allowed.mli
  cslint: clean (0 new, 0 baselined, 1 suppressed)

Baseline handling: --write-baseline grandfathers the current findings,
after which only new findings fail the run.

  $ ../bin/cslint.exe --baseline BASE --write-baseline lib bin
  cslint: wrote 6 finding(s) to BASE
  $ ../bin/cslint.exe --baseline BASE lib bin
  cslint: clean (0 new, 6 baselined, 1 suppressed)
  $ cat >> lib/dirty.ml << 'EOF'
  > let newly_bad x = x = 2.5
  > EOF
  $ ../bin/cslint.exe --baseline BASE lib bin
  lib/dirty.ml:5:18: R1 polymorphic = with a float operand; use Tol.equal, Tol.is_zero or Tol.exactly
  cslint: 1 finding(s), 6 baselined, 1 suppressed, 0 error(s)
  [1]

A missing baseline file is an operational error, distinct from findings.

  $ ../bin/cslint.exe --baseline MISSING lib bin 2>&1
  cslint: MISSING: No such file or directory
  [2]

Unparsable source is also an operational error (exit 2), so CI cannot
mistake a broken tree for a clean one.

  $ cat > lib/broken.ml << 'EOF'
  > let let let
  > EOF
  $ ../bin/cslint.exe lib/broken.ml 2>/dev/null
  lib/broken.ml:1:0: R5 missing interface: every lib/**/*.ml needs a matching .mli
  cslint: 1 finding(s), 0 baselined, 0 suppressed, 1 error(s)
  [2]
