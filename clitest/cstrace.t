cstrace is the read side of the observability layer: it analyzes the
JSONL event traces, span profiles and metric snapshots that csctl
writes.

Two same-seed runs must produce identical event streams for any --jobs
value (DESIGN.md §10). cstrace diff checks that contract semantically:
the provenance headers (which record the differing --jobs) and planning
wall time are not compared.

  $ ../bin/csctl.exe simulate --family uniform -L 100 -c 1 --trials 200 --seed 42 --trace a.jsonl > /dev/null
  $ ../bin/csctl.exe simulate --family uniform -L 100 -c 1 --trials 200 --seed 42 --jobs 2 --trace b.jsonl > /dev/null
  $ ../bin/cstrace.exe diff a.jsonl b.jsonl
  traces are identical (2755 events)

Comparing runs with different seeds is refused: a divergence there is
expected, not a determinism bug.

  $ ../bin/csctl.exe simulate --family uniform -L 100 -c 1 --trials 200 --seed 43 --trace c.jsonl > /dev/null
  $ ../bin/cstrace.exe diff a.jsonl c.jsonl
  error: traces were recorded with different seeds (42 vs 43); a divergence is expected, not a determinism bug. Pass --force to compare anyway.
  [2]

--force overrides; the first divergence is pinpointed — here the
run_started marker, which carries the seed.

  $ ../bin/cstrace.exe diff --force --context 0 a.jsonl c.jsonl
  traces diverge at event 1
    left : [      0.0000] run_started source=monte_carlo seed=42
    right: [      0.0000] run_started source=monte_carlo seed=43
  [1]

A truncated trace diverges where it ends.

  $ head -n 20 a.jsonl > short.jsonl
  $ ../bin/cstrace.exe diff --context 0 a.jsonl short.jsonl > /dev/null
  [1]

Missing files fail cleanly.

  $ ../bin/cstrace.exe diff a.jsonl missing.jsonl
  error: missing.jsonl: No such file or directory
  [1]

report prints the provenance header (sha redacted for reproducibility)
and summarises the — optionally filtered — event stream; --episodes
adds the per-episode timeline table.

  $ ../bin/cstrace.exe report a.jsonl --ep 3 --episodes
  meta          : schema v1, scenario "simulate family=uniform c=1 trials=200", seed 42, jobs 1
  trace summary (schema v1, 23 events)
    episodes      : 1 started, 1 finished, 1 interrupted
    periods       : 10 dispatched, 9 completed, 1 killed (kill rate 10.00%)
    work done     : 77.785714 (77.785714 / episode)
    work lost     : 2.842168 (2.842168 / episode)
    overhead      : 10.000000 (10.000000 / episode)
    overhead frac : 11.03% of busy time
    period length: min 4.6429 / p50 9.1429 / p90 12.7429 / p95 13.1929 / p99 13.5529 / max 13.6429
    episode time : min 90.6279 / p50 90.6279 / p90 90.6279 / p95 90.6279 / p99 90.6279 / max 90.6279
  per-episode timeline:
    ws   ep          start       finish   disp   done   kill         work         lost     overhead int
    0    3          0.0000      90.6279     10      9      1    77.785714     2.842168    10.000000 yes

prom reconstructs the deterministic trace.* metrics from the events and
renders Prometheus text exposition (validated against the grammar
before printing).

  $ ../bin/cstrace.exe prom a.jsonl | grep -E "_total|_count"
  # HELP cs_trace_episodes_finished_total Counter trace.episodes_finished.
  # TYPE cs_trace_episodes_finished_total counter
  cs_trace_episodes_finished_total 200
  # HELP cs_trace_episodes_started_total Counter trace.episodes_started.
  # TYPE cs_trace_episodes_started_total counter
  cs_trace_episodes_started_total 200
  # HELP cs_trace_periods_completed_total Counter trace.periods_completed.
  # TYPE cs_trace_periods_completed_total counter
  cs_trace_periods_completed_total 876
  # HELP cs_trace_periods_dispatched_total Counter trace.periods_dispatched.
  # TYPE cs_trace_periods_dispatched_total counter
  cs_trace_periods_dispatched_total 1076
  # HELP cs_trace_periods_killed_total Counter trace.periods_killed.
  # TYPE cs_trace_periods_killed_total counter
  cs_trace_periods_killed_total 200
  cs_trace_banked_count 876
  cs_trace_episode_duration_count 200
  cs_trace_overhead_count 1076
  cs_trace_period_length_count 1076

flame folds a Chrome span profile into flamegraph.pl / speedscope
input; the stack set is deterministic even though the weights are wall
time.

  $ ../bin/csctl.exe profile --family uniform -L 100 -c 1 --trials 200 --seed 42 --out trace.json > /dev/null
  $ ../bin/cstrace.exe flame trace.json -o profile.folded
  wrote profile.folded (12 stacks)
  $ cut -d' ' -f1 profile.folded
  guideline.plan
  guideline.plan;plan.bracket
  guideline.plan;plan.evaluate
  guideline.plan;plan.evaluate;plan.expected_work
  guideline.plan;plan.evaluate;recurrence.generate
  guideline.plan;plan.search
  guideline.plan;plan.search;plan.evaluate
  guideline.plan;plan.search;plan.evaluate;plan.expected_work
  guideline.plan;plan.search;plan.evaluate;recurrence.generate
  mc.estimate
  mc.estimate;mc.chunk
  mc.estimate;mc.chunk;episode.run

timeline plots one metric's trajectory across a run from the snapshot
file csctl writes under --snapshot-every (captures land on chunk
boundaries plus a final capture at the trial count, so the grid is
deterministic for any --jobs).

  $ ../bin/csctl.exe simulate --family uniform -L 100 -c 1 --trials 1200 --seed 42 --snapshot-every 512 --snapshot-out snaps.jsonl | grep snapshot
  wrote 3 snapshot(s) to snaps.jsonl
  $ ../bin/cstrace.exe timeline snaps.jsonl --metric episode.runs
  episode.runs
         512 | #################                        512
        1024 | ##################################       1024
        1200 | ######################################## 1200

Unknown metrics list what the snapshots do contain.

  $ ../bin/cstrace.exe timeline snaps.jsonl --metric no.such.metric
  error: metric "no.such.metric" not in snapshots (have: episode.periods_completed, episode.periods_killed, episode.runs, plan.guideline_calls, pool.busy_seconds, pool.chunk_order_violations, pool.chunks, pool.domains, pool.idle_seconds, pool.queue_wait_seconds, pool.runs, episode.elapsed, episode.period_length, mc.estimate_seconds, plan.guideline_seconds)
  [1]

--prom exports the live registry of a run as Prometheus exposition
(wall-time histograms make the file itself nondeterministic, but the
counters are pinned by the determinism contract).

  $ ../bin/csctl.exe simulate --family uniform -L 100 -c 1 --trials 200 --seed 42 --prom metrics.prom | grep prometheus
  wrote prometheus exposition to metrics.prom
  $ grep "_total" metrics.prom
  # HELP cs_episode_periods_completed_total Counter episode.periods_completed.
  # TYPE cs_episode_periods_completed_total counter
  cs_episode_periods_completed_total 876
  # HELP cs_episode_periods_killed_total Counter episode.periods_killed.
  # TYPE cs_episode_periods_killed_total counter
  cs_episode_periods_killed_total 200
  # HELP cs_episode_runs_total Counter episode.runs.
  # TYPE cs_episode_runs_total counter
  cs_episode_runs_total 200
  # HELP cs_plan_guideline_calls_total Counter plan.guideline_calls.
  # TYPE cs_plan_guideline_calls_total counter
  cs_plan_guideline_calls_total 1

check evaluates declarative health rules — one "SEVERITY SELECTOR OP
VALUE" line each — against the trace.* metrics reconstructed from a
finished trace. The exit code encodes the verdict: 0 ok, 1 warn, 2
critical (3 is reserved for unusable input, so a broken CI leg cannot
masquerade as a healthy one). A trailing ? makes a rule optional:
selectors that resolve nowhere are skipped instead of failing, letting
one rules file serve trace-derived and in-process metric sources.

  $ cat > demo.cshealth <<'RULES'
  > # demo SLOs
  > critical trace.episodes_finished >= 200
  > warn trace.period_length.p99 <= 20
  > warn gc.promoted_words? <= 5e8
  > RULES
  $ ../bin/cstrace.exe check --rules demo.cshealth a.jsonl
  [PASS] critical trace.episodes_finished >= 200
  [PASS] warn trace.period_length.p99 <= 20
  [SKIP] warn gc.promoted_words? <= 5e+08
  verdict: ok (3 rule(s), 1 snapshot(s))

Failing rules report the offending value; warn and critical verdicts
map to exit 1 and 2.

  $ ../bin/cstrace.exe check --rule "warn trace.episodes_started >= 1000" a.jsonl
  [FAIL] warn trace.episodes_started >= 1000  (value 200)
  verdict: warn (1 rule(s), 1 snapshot(s))
  [1]

  $ ../bin/cstrace.exe check --rules demo.cshealth --rule "critical trace.periods_killed == 0" a.jsonl
  [PASS] critical trace.episodes_finished >= 200
  [PASS] warn trace.period_length.p99 <= 20
  [SKIP] warn gc.promoted_words? <= 5e+08
  [FAIL] critical trace.periods_killed == 0  (value 200)
  verdict: critical (4 rule(s), 1 snapshot(s))
  [2]

--json renders the same report as one machine-readable object (the CI
artifact format).

  $ ../bin/cstrace.exe check --json --rule "warn trace.episodes_started >= 1000" a.jsonl
  {"v":1,"verdict":"warn","entries":1,"rules":[{"severity":"warn","selector":"trace.episodes_started","optional":false,"op":">=","threshold":1000.0,"status":"fail","value":200.0}]}
  [1]

The same rules run against a snapshot ring, where every frame must
satisfy the rule and the first violating frame is reported with its
trial index.

  $ ../bin/cstrace.exe check --rule "critical episode.runs >= 1" --rule "warn episode.runs <= 600" snaps.jsonl
  [PASS] critical episode.runs >= 1
  [FAIL] warn episode.runs <= 600  (value 1024 at 1024)
  verdict: warn (2 rule(s), 3 snapshot(s))
  [1]

Unusable input — no rules, an unparsable rule — exits 3.

  $ ../bin/cstrace.exe check a.jsonl
  error: no rules given; pass --rules FILE and/or --rule RULE
  [3]

  $ ../bin/cstrace.exe check --rule "warn bogus" a.jsonl
  error: --rule "warn bogus": expected: SEVERITY SELECTOR OP VALUE
  [3]

watch tails a growing trace; --once renders the dashboard a single
time and exits with the health verdict (0 when no rules are given),
which makes it usable on finished traces too.

  $ ../bin/cstrace.exe watch --once --rule "warn trace.episodes_finished >= 200" a.jsonl
  watch a.jsonl — 2755 event(s), finished
  meta: schema v1, scenario "simulate family=uniform c=1 trials=200", seed 42, jobs 1
  counters:
    trace.episodes_finished      200
    trace.episodes_started       200
    trace.periods_completed      876
    trace.periods_dispatched     1076
    trace.periods_killed         200
  gauges:
    trace.pool_remaining         nan
  histograms:
    trace.banked                 n=876 mean=9.65884 p50=10.6982 p95=12.5546 p99=12.5546
    trace.episode_duration       n=200 mean=51.413 p50=52.9915 p95=94.6468 p99=98.5095
    trace.overhead               n=1076 mean=0.988777 p50=1 p95=1 p99=1
    trace.period_length          n=1076 mean=10.3994 p50=10.6982 p95=13.6002 p99=13.6002
  [PASS] warn trace.episodes_finished >= 200
  verdict: ok (1 rule(s), 1 snapshot(s))

The control-room layer: store files artifacts in a content-addressed
registry whose run ids are derived from the provenance header (git sha
+ seed + scenario) — same triple, same id, on any machine. Handcrafted
headers make the ids reproducible here.

  $ cat > t1.jsonl <<'EOF'
  > {"v":1,"type":"meta","schema":1,"git_sha":"aaaa111","seed":1,"scenario":"demo"}
  > EOF
  $ cat > t2.jsonl <<'EOF'
  > {"v":1,"type":"meta","schema":1,"git_sha":"bbbb222","seed":2,"scenario":"demo"}
  > EOF
  $ ../bin/cstrace.exe store add --root store t1.jsonl
  stored trace as run b339797e9fb6 (store/runs/b339797e9fb6/trace.jsonl)
  $ ../bin/cstrace.exe store add --root store --kind snapshots t1.jsonl
  stored snapshots as run b339797e9fb6 (store/runs/b339797e9fb6/snapshots.jsonl)
  $ ../bin/cstrace.exe store add --root store t2.jsonl
  stored trace as run ff8c82cad4bc (store/runs/ff8c82cad4bc/trace.jsonl)
  $ ../bin/cstrace.exe store ls --root store
  b339797e9fb6  trace      sha aaaa111  seed 1  scenario "demo"
  b339797e9fb6  snapshots  sha aaaa111  seed 1  scenario "demo"
  ff8c82cad4bc  trace      sha bbbb222  seed 2  scenario "demo"

Artifacts without a provenance header are refused: a file the store
cannot re-derive an id for could never be deduplicated or joined.

  $ echo '{"v":1,"type":"run_finished","time":1.0}' > naked.jsonl
  $ ../bin/cstrace.exe store add --root store naked.jsonl
  error: naked.jsonl: no provenance header (Obs_meta line) — cannot derive a run id
  [1]

rm tombstones a run (idempotently); gc sweeps by count or by age
relative to the store's own newest artifact, never the wall clock.

  $ ../bin/cstrace.exe store rm --root store b339797e9fb6
  removed run b339797e9fb6 (2 artifact(s))
  $ ../bin/cstrace.exe store rm --root store b339797e9fb6
  run b339797e9fb6 not in store
  $ ../bin/cstrace.exe store gc --root store --keep 0
  removed run ff8c82cad4bc
  $ ../bin/cstrace.exe store ls --root store
  store is empty

serve exposes /metrics (validated Prometheus exposition), /health (SLO
verdict as 200/503) and /runs (the store index) over HTTP; fetch is
the matching scrape client, retrying the connect so it can start
before the server finishes binding.

  $ ../bin/cstrace.exe store add --root store t1.jsonl > /dev/null
  $ SOCK=$(mktemp -u /tmp/cs_serve_XXXXXX)
  $ ../bin/cstrace.exe serve --addr unix:$SOCK --snapshots snaps.jsonl --rule "critical episode.runs >= 1" --root store --requests 3 > serve.log &
  $ ../bin/cstrace.exe fetch unix:$SOCK /metrics --validate-prom
  valid exposition: 32 sample(s)
  $ ../bin/cstrace.exe fetch unix:$SOCK /health
  [PASS] critical episode.runs >= 1
  verdict: ok (1 rule(s), 3 snapshot(s))
  $ ../bin/cstrace.exe fetch unix:$SOCK /runs
  [{"v":1,"type":"add","id":"b339797e9fb6","kind":"trace","file":"runs/b339797e9fb6/trace.jsonl","git_sha":"aaaa111","seed":1,"scenario":"demo"}]
  $ wait
  $ grep -c "serving on" serve.log
  1

--once answers exactly one request and exits — the deterministic smoke
probe the CI leg runs against a finished trace.

  $ SOCK2=$(mktemp -u /tmp/cs_once_XXXXXX)
  $ ../bin/cstrace.exe serve --addr unix:$SOCK2 --trace a.jsonl --once > /dev/null &
  $ ../bin/cstrace.exe fetch unix:$SOCK2 /metrics --validate-prom
  valid exposition: 26 sample(s)
  $ wait
