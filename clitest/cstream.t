Streaming telemetry (DESIGN.md §16): csctl producers stream their
event trace live to a cstrace collector over a framed socket protocol
(--emit), while still writing the local JSONL file (--trace). The
collector files one output per stream, folds every event into a live
aggregated metrics registry, and evaluates alert rules as events
arrive instead of after the run.

One collector, two sequential producers. --producers 2 --once makes
the shutdown deterministic: the collector exits after the second
stream finalizes. Sockets live under /tmp because the cram sandbox
path can exceed the unix socket path limit.

  $ SOCK=$(mktemp -u /tmp/cs_coll_XXXXXX)
  $ HSOCK=$(mktemp -u /tmp/cs_colh_XXXXXX)
  $ ../bin/cstrace.exe collect --listen unix:$SOCK --http unix:$HSOCK --producers 2 --once --out collected --rule "warn trace.periods_killed <= 100" > collect.log &

The producer needs no ordering dance: the remote sink retries the
connect with capped backoff, so it can start before the collector
binds. On exit it reports its delivery accounting — emit never blocks
the simulation, so a slow or absent collector costs drops, and drops
are always counted, never silent. (The full line names the socket;
grep keeps the deterministic part.)

  $ ../bin/csctl.exe simulate --family uniform -L 100 -c 1 --trials 200 --seed 42 --trace local42.jsonl --emit unix:$SOCK | grep -o "streamed [0-9]* event(s)"
  streamed 2755 event(s)

Between the producers the collector is provably alive (it is waiting
for the second stream), so its HTTP side can be scraped mid-run:
/metrics serves the live aggregated registry as validated Prometheus
exposition, and /health answers 503 while any alert rule is firing —
the periods_killed budget above was crossed partway through the first
stream.

  $ ../bin/cstrace.exe fetch unix:$HSOCK /metrics --validate-prom | grep -o "valid exposition"
  valid exposition
  $ ../bin/cstrace.exe fetch unix:$HSOCK /health
  HTTP 503 Service Unavailable
  alerts firing
  [1]

  $ ../bin/csctl.exe simulate --family uniform -L 100 -c 1 --trials 200 --seed 43 --trace local43.jsonl --emit unix:$SOCK | grep -o "streamed [0-9]* event(s)"
  streamed 2585 event(s)
  $ wait

The collector logged the alert transition once, at the event-count
boundary where the counter crossed the budget — level-triggered rules
report edges, not every violating sample — and summarised both
streams. (Per-stream lines carry run ids derived from the git sha, so
only the stable lines are pinned here.)

  $ grep -c "collecting on" collect.log
  1
  $ grep "ALERT" collect.log
  ALERT firing: warn trace.periods_killed <= 100 (value 104)
  $ grep -o "collected 2 stream(s), 5340 event(s), 0 rejected frame(s), alerts fired 1 resolved 0" collect.log
  collected 2 stream(s), 5340 event(s), 0 rejected frame(s), alerts fired 1 resolved 0

The contract that makes streaming trustworthy: each collected stream
is byte-for-byte the same trace the producer wrote locally, so every
cstrace analysis works identically on either copy. The collected
files are keyed by run id; match them to their seed through the
provenance header.

  $ ../bin/cstrace.exe diff local42.jsonl $(grep -l '"seed":42' collected/*.jsonl)
  traces are identical (2755 events)
  $ ../bin/cstrace.exe diff local43.jsonl $(grep -l '"seed":43' collected/*.jsonl)
  traces are identical (2585 events)

A collector with no producers left to wait for refuses frames that
arrive without provenance: streams must open with a HELLO header.
That rule is exercised in test/test_stream.ml; here the visible
surface is the help text.

  $ ../bin/cstrace.exe collect --help=plain | grep -c "HELLO"
  1
