The harness lists its experiments.

  $ ../bench/main.exe help | head -8
  Reproduction harness: Rosenberg, "Guidelines for Data-Parallel Cycle-Stealing in Networks of Workstations, I" (TR 98-15 / IPPS 1998)
  cycle-stealing reproduction harness
  experiments:
    e1      uniform t0 bounds vs optimal (Sec 4.1 d=1)
    e2      polynomial-family t0 bounds (Sec 4.1)
    e3      guideline efficiency, uniform risk
    e4      geometric-decreasing bounds and t* (Sec 4.2)
    e5      geometric-increasing recurrences (Sec 4.3)

Experiment tables are deterministic.

  $ ../bench/main.exe e1 | sed -n '5,8p'
  | c    | L      | lower(4.4) | guide t0 | opt t0 | sqrt(2cL) | upper(4.4) | bracketed |
  +------+--------+------------+----------+--------+-----------+------------+-----------+
  | 0.50 | 50.00  | 5.000      | 6.821    | 6.821  | 7.071     | 11.000     | yes       |
  | 0.50 | 100.00 | 7.071      | 9.750    | 9.750  | 10.000    | 15.142     | yes       |

Unknown experiment ids fail cleanly.

  $ ../bench/main.exe e99 2>/dev/null
  Reproduction harness: Rosenberg, "Guidelines for Data-Parallel Cycle-Stealing in Networks of Workstations, I" (TR 98-15 / IPPS 1998)
  cycle-stealing reproduction harness
  experiments:
    e1      uniform t0 bounds vs optimal (Sec 4.1 d=1)
    e2      polynomial-family t0 bounds (Sec 4.1)
    e3      guideline efficiency, uniform risk
    e4      geometric-decreasing bounds and t* (Sec 4.2)
    e5      geometric-increasing recurrences (Sec 4.3)
    e6      period-count bound (Cor 5.3)
    e7      structural theorem checks (Sec 5)
    e8      Monte-Carlo validation of eq 2.1
    e9      policy shoot-out per scenario
    e10     trace-driven scheduling pipeline
    e11     admissibility (Cor 3.2)
    e12     discretization loss (Sec 6)
    e13     task-farm ablation on a NOW
    e14     master-link contention ablation
    e15     worst-case (competitive) scheduling
    e16     robust scheduling from confidence bands
    e17     uniqueness of optimal schedules (Sec 6)
    e18     sensitivity to misspecified inputs
    e19     the price of the draconian contract
    e20     renewal throughput vs farm measurement
    e21     banked-work risk profile by policy
    timing  Bechamel micro-benchmarks
    tables  all experiment tables
    all     tables + timing (default)
  [2]
