The schedule subcommand prints the guideline plan and theory checks.

  $ ../bin/csctl.exe schedule --family geo-inc -L 30 -c 1 | head -5
  life function : geometric-increasing(L=30) (lifespan 30, concave)
  t0 bracket    : [21.7114, 29.9936]
  schedule      : [23.75; 4.068; 1.645] duration 29.47
  periods       : 23.7546 4.0680 1.6446 
  expected work : 25.043463

The bounds subcommand resolves the Theorem 3.2/3.3 fixed points.

  $ ../bin/csctl.exe bounds --family uniform -L 100 -c 1
  life function        : uniform(L=100) (lifespan 100, linear)
  Thm 3.2 lower bound  : 10.000000
  Thm 3.3 upper (convex) : 19.024984
  Thm 3.3 upper (concave): 19.024984
  search bracket       : [10.000000, 19.024984]
  Cor 5.5 lower        : 7.821068
  Cor 5.3 max periods  : 15

Admissibility classifies the paper's power-law counterexamples.

  $ ../bin/csctl.exe admissible --family power-law -d 2
  life function : power-law(d=2) (unbounded, convex)
  verdict       : INADMISSIBLE — polynomial tail (panel ratio 0.500 ~ 2^(1-d))

  $ ../bin/csctl.exe admissible --family geo-dec -a 2 -c 0.5
  life function : geometric-decreasing(a=2) (unbounded, convex)
  verdict       : admissible (Cor 3.2 margin 0.7071 at t = 0.5)

The banked-work distribution is closed-form.

  $ ../bin/csctl.exe distribution --family geo-inc -L 30 -c 1 | head -4
  schedule : [23.75; 4.068; 1.645] duration 29.47
  mean 25.0435, stddev 3.2042, P(work = 0) = 1.32%
  quantiles: q10 22.755 | median 25.823 | q90 26.467
  law:

Unknown families fail cleanly, listing the valid names.

  $ ../bin/csctl.exe schedule --family nonsense
  unknown family "nonsense" (valid: uniform | polynomial | geo-dec | geo-inc | exponential | weibull | power-law)
  [2]

The simulate subcommand is deterministic in its seed.

  $ ../bin/csctl.exe simulate --family uniform -L 100 -c 1 --trials 5000 --seed 42 | sed -n '2,3p'
  analytic E    : 41.066071
  MC mean (n=5000): 41.136971  95% CI [40.384944, 41.888999]

The worst-case planner prints its guarantee.

  $ ../bin/csctl.exe worst-case --horizon 50 -c 1 | sed -n '2p'
  guarantee: for every kill time t in [5, 50], banked work >= 60.33% of the omniscient (t - c)

The checkpoint planner recovers the Lambert-W interval.

  $ ../bin/csctl.exe checkpoint --work 100 --mtbf 50 -c 1 --seed 11 | head -2
  checkpoint every 10.3447 (first interval); 11 intervals
  expected committed before first failure: 36.231

The fit pipeline recovers an exponential rate from synthetic absences.

  $ ../bin/csctl.exe fit --model exponential --mean 40 --samples 2000 --seed 7 | sed -n '1p;3,4p'
  synthesized 2000 absences, sample mean 38.714
  best parametric fit   : weibull (SSE 0.0962)
    shape      = 0.985003

A fixed-seed run writes a schema-versioned JSONL trace, and report
aggregates it back to the live run's own numbers (MC mean 42.305714
below = work done / episode in the summary).

  $ ../bin/csctl.exe simulate --family uniform -L 100 -c 1 --trials 200 --seed 42 --trace t.jsonl --metrics | grep -E "^counter|MC mean"
  MC mean (n=200): 42.305714  95% CI [38.515989, 46.095439]
  counter episode.periods_completed = 876
  counter episode.periods_killed = 200
  counter episode.runs = 200
  counter plan.guideline_calls = 1

The first line is the provenance header (the git sha varies build to
build, so it is redacted here); events follow from line 2.

  $ sed -n 1p t.jsonl | sed -E 's/"git_sha":"[^"]*",//'
  {"v":1,"type":"meta","schema":1,"seed":42,"jobs":1,"scenario":"simulate family=uniform c=1 trials=200"}

  $ sed -n 3p t.jsonl
  {"v":1,"type":"run_started","t":0.0,"source":"monte_carlo","seed":42}

  $ ../bin/csctl.exe report t.jsonl
  trace summary (schema v1, 2755 events)
    source(s)     : monte_carlo
    episodes      : 200 started, 200 finished, 200 interrupted
    periods       : 1076 dispatched, 876 completed, 200 killed (kill rate 18.59%)
    work done     : 8461.142862 (42.305714 / episode)
    work lost     : 757.542778 (3.787714 / episode)
    overhead      : 1063.924007 (5.319620 / episode)
    overhead frac : 10.35% of busy time
    period length: min 1.6429 / p50 10.6429 / p90 13.6429 / p95 13.6429 / p99 13.6429 / max 13.6429
    episode time : min 0.2118 / p50 53.1951 / p90 90.7329 / p95 94.4875 / p99 98.7812 / max 99.1188
    plan          : guideline t0=13.6429 periods=13 E=41.066071

Parallel execution is bit-identical to serial: the same comparison with
--jobs 2 (two domains racing over the policy × chunk grid) must produce
byte-identical output, and a --jobs 4 simulate must reproduce the serial
MC mean above exactly.

  $ ../bin/csctl.exe compare --family uniform -L 100 -c 1 --trials 512 --seed 42 --jobs 1 > one.txt
  $ ../bin/csctl.exe compare --family uniform -L 100 -c 1 --trials 512 --seed 42 --jobs 2 > two.txt
  $ cmp one.txt two.txt && echo identical
  identical
  $ head -3 one.txt
  life function : uniform(L=100) (lifespan 100, linear)
  policies ranked by mean work per episode (n=512, shared reclaim stream):
    guideline            :    40.524275

  $ ../bin/csctl.exe simulate --family uniform -L 100 -c 1 --trials 5000 --seed 42 --jobs 4 | sed -n '3p'
  MC mean (n=5000): 41.136971  95% CI [40.384944, 41.888999]

The table subcommand sweeps the planner over an overhead grid — one
plan_batch call, parallel under --jobs.

  $ ../bin/csctl.exe table --family uniform -L 100 --c-min 0.5 --c-max 4 --steps 4 --jobs 2
  life function : uniform(L=100) (lifespan 100, linear)
          c         t0  periods       E[work]
     0.5000     9.7500       19     43.581250
     1.6667    17.4242       10     38.648990
     2.8333    22.4167        7     35.519167
     4.0000    26.2857        7     33.097143

Malformed traces fail cleanly.

  $ ../bin/csctl.exe report no-such-trace.jsonl
  error: no-such-trace.jsonl: No such file or directory
  [1]

The profile subcommand exports a Chrome trace-event JSON and validates
it by re-parsing its own output: the summary line is only printed when
the round-trip through Jsonx and the shape validator succeeds. The
planner and the simulator are deterministic in the seed, so the event
count and nesting depth are stable.

  $ ../bin/csctl.exe profile --family uniform -L 100 -c 1 --trials 200 --seed 42 --out trace.json
  trace summary: 673 events, max depth 4, round-trip ok
  wrote trace.json

  $ head -c 66 trace.json
  {"traceEvents":[{"name":"guideline.plan","cat":"cs","ph":"X","ts":

--resource samples the GC at the run's deterministic chunk boundaries
(one probe per Monte-Carlo chunk plus a final capture, so the sample
count is pinned by the trial count alone), and --health evaluates SLO
rules against the end-of-run registry: exit 0/1/2 for ok/warn/critical.
The optional (?) pool rule resolves here because --jobs 2 runs on a
pool; on a trace-only source it would be skipped, not failed.

  $ cat > slo.cshealth <<'RULES'
  > critical episode.runs == 200
  > critical pool.chunk_order_violations? == 0
  > warn gc.samples >= 1
  > RULES
  $ ../bin/csctl.exe simulate --family uniform -L 100 -c 1 --trials 200 --seed 42 --jobs 2 --resource --health slo.cshealth --metrics | grep -E "^counter (episode.runs|gc.samples)|^\[|^verdict"
  counter episode.runs = 200
  counter gc.samples = 2
  [PASS] critical episode.runs == 200
  [PASS] critical pool.chunk_order_violations? == 0
  [PASS] warn gc.samples >= 1
  verdict: ok (3 rule(s), 1 snapshot(s))
  $ echo exit=$?
  exit=0

A failing rule flips the exit code even though the run itself
succeeded: without --resource the gc.samples rule cannot resolve, and
a missing non-optional selector is a warn-level failure (exit 1).

  $ ../bin/csctl.exe simulate --family uniform -L 100 -c 1 --trials 200 --seed 42 --health slo.cshealth
  schedule      : [13.64; 12.64; 11.64; 10.64; 9.643; 8.643; 7.643; 6.643; ... (13 periods)] duration 99.36
  analytic E    : 41.066071
  MC mean (n=200): 42.305714  95% CI [38.515989, 46.095439]
  interrupted   : 100.00%
  mean overhead : 5.319620 ; mean work lost: 3.787714
  [PASS] critical episode.runs == 200
  [PASS] critical pool.chunk_order_violations? == 0
  [MISS] warn gc.samples >= 1  (metric absent)
  verdict: warn (3 rule(s), 1 snapshot(s))
  [1]

Fast planning (DESIGN §15): `table bake` precomputes optimal start
periods over a (c, family-parameter) grid and certifies the bilinear
interpolation error against direct plans at bake time; the bound is
stored in the table file and printed here. The planner is
deterministic, so the bound is too.

  $ ../bin/csctl.exe table bake --family uniform --c-min 0.5 --c-max 2.0 --c-steps 4 --param-min 60 --param-max 140 --param-steps 4 -o uni.cstable
  baked plan table : family=uniform, 16 nodes (c in [0.5, 2], param in [60, 140])
  certified bound  : 3.059e-03 relative expected-work shortfall
  wrote uni.cstable

A sweep with --plan-table answers from the baked table: each covered
point interpolates t0 and regenerates its schedule, so periods and
E[work] come from a genuine admissible schedule whose optimality is
within the certified bound.

  $ ../bin/csctl.exe table --family uniform --c-min 0.6 --c-max 1.8 --steps 4 --plan-table uni.cstable
  life function : uniform(L=100) (lifespan 100, linear)
          c         t0  periods       E[work]
     0.6000    10.5055       18     42.959878
     1.0000    13.6111       14     41.065154
     1.4000    15.9515       12     39.530315
     1.8000    17.9944       10     38.231486

--plan-cache routes the simulate planning call through the LRU plan
cache. A hit returns the exact result object the miss computed, so a
cached run's trace is event-for-event identical to an uncached one —
the same invariant CI gates on.

  $ ../bin/csctl.exe simulate --family uniform -c 1 --trials 200 --seed 42 --trace direct.jsonl > /dev/null
  $ ../bin/csctl.exe simulate --family uniform -c 1 --trials 200 --seed 42 --plan-cache --trace cached.jsonl > /dev/null
  $ ../bin/cstrace.exe diff direct.jsonl cached.jsonl
  traces are identical (2755 events)

The cache exports its counters through the ordinary metrics registry
(and from there over `cstrace serve`): one planning call on a fresh
cache is one miss, answered here by the geo-dec closed form.

  $ ../bin/csctl.exe simulate --family geo-dec -c 1 --trials 200 --seed 42 --plan-cache --metrics | grep -E "^(counter|gauge) +cache\."
  counter cache.closed_form = 1
  counter cache.misses = 1
  gauge   cache.size = 1
