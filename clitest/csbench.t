csbench gates BENCH_T1.json records against each other. Build two
fixtures by hand: a baseline and a candidate with a clean 2x slowdown
on one benchmark, a big shift on a noisy (low r^2) benchmark that must
stay within its widened band, and an improvement.

  $ cat > old.json <<'EOF'
  > {"v":2,"suite":"T1","ocaml":"5.2.0","git_sha":"aaaaaaa","hostname":"ci",
  >  "quota_seconds":0.5,"unix_time":1754300000,
  >  "results":{"clean-op":{"ns_per_call":100.0,"r_square":0.99},
  >             "noisy-op":{"ns_per_call":20.0,"r_square":0.34},
  >             "fast-op":{"ns_per_call":900.0,"r_square":0.98}}}
  > EOF
  $ tr -d '\n' < old.json > old.tmp && mv old.tmp old.json
  $ cat > new.json <<'EOF'
  > {"v":2,"suite":"T1","ocaml":"5.2.0","git_sha":"bbbbbbb","hostname":"ci",
  >  "quota_seconds":0.5,"unix_time":1754400000,
  >  "results":{"clean-op":{"ns_per_call":200.0,"r_square":0.99},
  >             "noisy-op":{"ns_per_call":30.0,"r_square":0.34},
  >             "fast-op":{"ns_per_call":420.0,"r_square":0.98}}}
  > EOF
  $ tr -d '\n' < new.json > new.tmp && mv new.tmp new.json

Self-comparison is always clean and exits 0.

  $ ../bin/csbench.exe check old.json old.json
  old: T1 @ aaaaaaa (ocaml 5.2.0, host ci)
  new: T1 @ aaaaaaa (ocaml 5.2.0, host ci)
  
  benchmark                                                   old        new   ratio    tol  verdict
  clean-op                                                100.0ns    100.0ns   1.000    16%  ok
  fast-op                                                 900.0ns    900.0ns   1.000    17%  ok
  noisy-op                                                 20.0ns     20.0ns   1.000    71%  ok
  summary: 3 compared, 0 regression(s), 0 improvement(s)

The injected 2x slowdown on the clean benchmark trips the gate (exit
1), while the noisy benchmark's 1.5x shift stays inside its widened
band (tol 71% from r^2 = 0.34) and the improvement is flagged as such.

  $ ../bin/csbench.exe check old.json new.json
  old: T1 @ aaaaaaa (ocaml 5.2.0, host ci)
  new: T1 @ bbbbbbb (ocaml 5.2.0, host ci)
  
  benchmark                                                   old        new   ratio    tol  verdict
  clean-op                                                100.0ns    200.0ns   2.000    16%  REGRESSION
  fast-op                                                 900.0ns    420.0ns   0.467    17%  improvement
  noisy-op                                                 20.0ns     30.0ns   1.500    71%  ok
  summary: 3 compared, 1 regression(s), 1 improvement(s)
  [1]

diff prints the same table but never fails the build; check --advisory
reports and exits 0.

  $ ../bin/csbench.exe diff old.json new.json > /dev/null
  $ ../bin/csbench.exe check --advisory old.json new.json > advisory.out
  $ tail -1 advisory.out
  advisory mode: regressions reported but not fatal

Malformed or missing input exits 2.

  $ echo 'not json' > bad.json
  $ ../bin/csbench.exe check old.json bad.json 2>/dev/null
  [2]
  $ ../bin/csbench.exe check old.json nosuch.json 2>/dev/null
  [2]

history summarises a JSONL trajectory.

  $ { cat old.json; echo; cat new.json; echo; } > hist.jsonl
  $ ../bin/csbench.exe history hist.jsonl
  2 run(s)
    T1 @ aaaaaaa (ocaml 5.2.0, host ci) — 3 benchmark(s), quota 0.50s
    T1 @ bbbbbbb (ocaml 5.2.0, host ci) — 3 benchmark(s), quota 0.50s
  $ ../bin/csbench.exe history --bench clean-op hist.jsonl
    aaaaaaa                         100.0 ns/call  r^2 0.990
    bbbbbbb                         200.0 ns/call  r^2 0.990
