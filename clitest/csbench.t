csbench gates BENCH_T1.json records against each other. Build two
fixtures by hand: a baseline and a candidate with a clean 2x slowdown
on one benchmark, a big shift on a noisy (low r^2) benchmark that must
stay within its widened band, and an improvement.

  $ cat > old.json <<'EOF'
  > {"v":2,"suite":"T1","ocaml":"5.2.0","git_sha":"aaaaaaa","hostname":"ci",
  >  "quota_seconds":0.5,"unix_time":1754300000,
  >  "results":{"clean-op":{"ns_per_call":100.0,"r_square":0.99},
  >             "noisy-op":{"ns_per_call":20.0,"r_square":0.34},
  >             "fast-op":{"ns_per_call":900.0,"r_square":0.98}}}
  > EOF
  $ tr -d '\n' < old.json > old.tmp && mv old.tmp old.json
  $ cat > new.json <<'EOF'
  > {"v":2,"suite":"T1","ocaml":"5.2.0","git_sha":"bbbbbbb","hostname":"ci",
  >  "quota_seconds":0.5,"unix_time":1754400000,
  >  "results":{"clean-op":{"ns_per_call":200.0,"r_square":0.99},
  >             "noisy-op":{"ns_per_call":30.0,"r_square":0.34},
  >             "fast-op":{"ns_per_call":420.0,"r_square":0.98}}}
  > EOF
  $ tr -d '\n' < new.json > new.tmp && mv new.tmp new.json

Self-comparison is always clean and exits 0.

  $ ../bin/csbench.exe check old.json old.json
  old: T1 @ aaaaaaa (ocaml 5.2.0, host ci)
  new: T1 @ aaaaaaa (ocaml 5.2.0, host ci)
  
  benchmark                                                   old        new   ratio    tol  verdict
  clean-op                                                100.0ns    100.0ns   1.000    16%  ok
  fast-op                                                 900.0ns    900.0ns   1.000    17%  ok
  noisy-op                                                 20.0ns     20.0ns   1.000    71%  ok
  summary: 3 compared, 0 regression(s), 0 improvement(s)

The injected 2x slowdown on the clean benchmark trips the gate (exit
1), while the noisy benchmark's 1.5x shift stays inside its widened
band (tol 71% from r^2 = 0.34) and the improvement is flagged as such.

  $ ../bin/csbench.exe check old.json new.json
  old: T1 @ aaaaaaa (ocaml 5.2.0, host ci)
  new: T1 @ bbbbbbb (ocaml 5.2.0, host ci)
  
  benchmark                                                   old        new   ratio    tol  verdict
  clean-op                                                100.0ns    200.0ns   2.000    16%  REGRESSION
  fast-op                                                 900.0ns    420.0ns   0.467    17%  improvement
  noisy-op                                                 20.0ns     30.0ns   1.500    71%  ok
  summary: 3 compared, 1 regression(s), 1 improvement(s)
  [1]

diff prints the same table but never fails the build; check --advisory
reports and exits 0.

  $ ../bin/csbench.exe diff old.json new.json > /dev/null
  $ ../bin/csbench.exe check --advisory old.json new.json > advisory.out
  $ tail -1 advisory.out
  advisory mode: regressions reported but not fatal

Malformed or missing input exits 2.

  $ echo 'not json' > bad.json
  $ ../bin/csbench.exe check old.json bad.json 2>/dev/null
  [2]
  $ ../bin/csbench.exe check old.json nosuch.json 2>/dev/null
  [2]

history summarises a JSONL trajectory.

  $ { cat old.json; echo; cat new.json; echo; } > hist.jsonl
  $ ../bin/csbench.exe history hist.jsonl
  2 run(s)
    T1 @ aaaaaaa (ocaml 5.2.0, host ci) — 3 benchmark(s), quota 0.50s
    T1 @ bbbbbbb (ocaml 5.2.0, host ci) — 3 benchmark(s), quota 0.50s
  $ ../bin/csbench.exe history --bench clean-op hist.jsonl
    aaaaaaa                         100.0 ns/call  r^2 0.990
    bbbbbbb                         200.0 ns/call  r^2 0.990

trend reads the same JSONL trajectory and fits a noise-aware slope
over the usable points (csbench trend METRIC).

  $ ../bin/csbench.exe trend --history hist.jsonl clean-op
  metric: clean-op
     seq  sha                ns/call       r^2
       0  aaaaaaa                100      0.99
       1  bbbbbbb                200      0.99
  slope: +100 ns/call per run (2/2 usable point(s), r^2 nan)

With --store, the first significant jump is attributed against the
traces filed in a .csobs store. Handcrafted provenance headers carry
the same shas as the history records, so the lookup joins; the two
traces diverge at their second event.

  $ cat > ta.jsonl <<'EOF'
  > {"v":1,"type":"meta","schema":1,"git_sha":"aaaaaaa","seed":7,"scenario":"bench"}
  > {"v":1,"type":"run_started","t":0.0,"source":"sim","seed":7}
  > {"v":1,"type":"episode_started","t":0.0,"ws":0,"ep":0}
  > EOF
  $ cat > tb.jsonl <<'EOF'
  > {"v":1,"type":"meta","schema":1,"git_sha":"bbbbbbb","seed":7,"scenario":"bench"}
  > {"v":1,"type":"run_started","t":0.0,"source":"sim","seed":7}
  > {"v":1,"type":"episode_started","t":0.5,"ws":0,"ep":0}
  > EOF
  $ ../bin/cstrace.exe store add --root store ta.jsonl > /dev/null
  $ ../bin/cstrace.exe store add --root store tb.jsonl > /dev/null
  $ ../bin/csbench.exe trend --history hist.jsonl --store store clean-op
  metric: clean-op
     seq  sha                ns/call       r^2
       0  aaaaaaa                100      0.99
       1  bbbbbbb                200      0.99
  slope: +100 ns/call per run (2/2 usable point(s), r^2 nan)
  jump: 2.00x between aaaaaaa (seq 0) and bbbbbbb (seq 1): 100 -> 200 ns/call
  left  trace: store/runs/fd10be051a44/trace.jsonl
  right trace: store/runs/2d05f561c75a/trace.jsonl
  traces diverge at event 1
    shared context before divergence:
      [0] [      0.0000] run_started source=sim seed=7
    left : [      0.0000] ws0 ep0 episode_started
    right: [      0.5000] ws0 ep0 episode_started

A wider threshold tolerates the 2x shift — nothing to attribute.

  $ ../bin/csbench.exe trend --history hist.jsonl --store store --threshold 3 clean-op
  metric: clean-op
     seq  sha                ns/call       r^2
       0  aaaaaaa                100      0.99
       1  bbbbbbb                200      0.99
  slope: +100 ns/call per run (2/2 usable point(s), r^2 nan)
  no jump beyond 3.00x between adjacent usable points

An unknown benchmark exits 2 and lists what the history does cover.

  $ ../bin/csbench.exe trend --history hist.jsonl nosuch-op
  csbench: benchmark "nosuch-op" not present in any run (have: clean-op, fast-op, noisy-op)
  [2]
