type sampler = {
  (* Inverse CDF table: survival values (decreasing in time) paired with
     times; we interpolate time as a function of survival. *)
  inverse : Interp.t;
  horizon : float;
}

let create ?(grid = 4096) lf =
  let horizon = Life_function.horizon lf in
  (* Tabulate p on [0, horizon]. p decreases from 1; build the inverse on
     strictly increasing survival values (reverse time order). *)
  let ts = Array.init (grid + 1) (fun i ->
      float_of_int i /. float_of_int grid *. horizon)
  in
  let ps = Array.map (Life_function.eval lf) ts in
  (* Deduplicate plateaus so the inverse grid is strictly increasing. *)
  let pairs = ref [] in
  let last_p = ref neg_infinity in
  for i = grid downto 0 do
    if ps.(i) > !last_p +. 1e-12 then begin
      pairs := (ps.(i), ts.(i)) :: !pairs;
      last_p := ps.(i)
    end
  done;
  (* The prepending loop leaves the list in increasing-time order, i.e.
     decreasing survival; reverse below for an increasing interpolation
     grid. *)
  let pairs = Array.of_list !pairs in
  let n = Array.length pairs in
  let xs = Array.init n (fun i -> fst pairs.(n - 1 - i)) in
  let ys = Array.init n (fun i -> snd pairs.(n - 1 - i)) in
  let inverse = Interp.pchip ~xs ~ys in
  { inverse; horizon }

let draw s g =
  let u = Prng.float g in
  (* T > t iff p(t) > u, so T = p^{-1}(u); u below the table's smallest
     survival maps to the horizon. *)
  let lo, hi = Interp.domain s.inverse in
  if u <= lo then s.horizon
  else if u >= hi then 0.0
  else Float.max 0.0 (Float.min s.horizon (Interp.eval s.inverse u))

let draw_exact lf g =
  let u = Prng.float g in
  let horizon = Life_function.horizon lf in
  if Life_function.eval lf horizon >= u then horizon
  else begin
    let f t = Life_function.eval lf t -. u in
    let r = Rootfind.bisect f ~lo:0.0 ~hi:horizon in
    r.Rootfind.root
  end

let mean_of_draws s g ~n =
  if n <= 0 then invalid_arg "Reclaim.mean_of_draws: n must be > 0";
  let acc = Kahan.create () in
  for _ = 1 to n do
    Kahan.add acc (draw s g)
  done;
  Kahan.total acc /. float_of_int n
