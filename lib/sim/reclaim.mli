(** Sampling reclaim times from a life function.

    The paper treats [p] as the survival function of the owner's return
    time; the simulator needs actual draws from that distribution. Inverse-
    CDF sampling — solve [p(t) = u] for uniform [u] — works for any
    monotone [p]; an interpolated inverse built once per life function
    makes per-episode sampling cheap for Monte-Carlo runs. *)

type sampler
(** A reusable sampler for one life function. *)

val create : ?grid:int -> Life_function.t -> sampler
(** [create p] tabulates [p] on [grid] (default 4096) points over its
    horizon and builds a monotone interpolated inverse. Exact closed-form
    inversion is used instead where it is available via the hazard
    structure (bounded supports are handled by clamping draws beyond the
    lifespan to the lifespan). *)

val draw : sampler -> Prng.t -> float
(** [draw s g] samples a reclaim time: a value [t] with
    [Pr(T > t) = p(t)]. Bounded-support functions return at most the
    lifespan. *)

val draw_exact : Life_function.t -> Prng.t -> float
(** [draw_exact p g] inverts [p] by bisection per draw — slower but free of
    tabulation error; used by tests to validate {!draw}. *)

val mean_of_draws : sampler -> Prng.t -> n:int -> float
(** [mean_of_draws s g ~n] averages [n] draws — convenience for calibration
    tests against {!Life_function.mean_lifetime}. Requires [n > 0]. *)
