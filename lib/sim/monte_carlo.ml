type estimate = {
  trials : int;
  mean_work : float;
  ci95 : float * float;
  mean_overhead : float;
  mean_lost : float;
  interrupted_fraction : float;
  analytic : float;
}

(* The fixed chunk grid (DESIGN.md §10): geometry depends only on the
   trial count, never on the domain count, and chunk [k] always owns
   Prng stream [k] and partial-sum slot [k]. Results are therefore
   bit-identical whether the grid runs inline, on 2 domains or on 8. *)
let chunk_size = 512

let n_chunks trials = (trials + chunk_size - 1) / chunk_size

let estimate ?(obs = Obs.disabled) ?pool ?domains ?snapshot ?resource
    ?(trials = 20_000) lf ~c ~schedule ~seed =
  if trials < 2 then
    invalid_arg
      (Printf.sprintf "Monte_carlo.estimate: trials must be >= 2, got %d"
         trials);
  if Obs.tracing obs then
    Obs.emit obs
      (Obs.Event.Run_started
         { time = 0.0; source = "monte_carlo"; seed = Some seed });
  let g = Prng.create ~seed in
  let sampler = Reclaim.create lf in
  let chunks = n_chunks trials in
  let gens = Prng.split_n g chunks in
  let works = Array.make trials 0.0 in
  let overhead_parts = Array.make chunks 0.0 in
  let lost_parts = Array.make chunks 0.0 in
  let interrupted_parts = Array.make chunks 0 in
  let kids = Obs_fork.scatter obs ~n:chunks in
  let run_chunk k =
    let cobs = Obs_fork.child kids k in
    let gk = gens.(k) in
    let first = k * chunk_size in
    let stop = Int.min trials (first + chunk_size) in
    let body () =
      let overhead = Kahan.create () in
      let lost = Kahan.create () in
      let interrupted = ref 0 in
      for i = first to stop - 1 do
        let reclaim_at = Reclaim.draw sampler gk in
        let o = Episode.run ~obs:cobs ~ep:i schedule ~c ~reclaim_at in
        works.(i) <- o.Episode.work_done;
        Kahan.add overhead o.Episode.overhead;
        Kahan.add lost o.Episode.work_lost;
        if o.Episode.interrupted then incr interrupted
      done;
      overhead_parts.(k) <- Kahan.total overhead;
      lost_parts.(k) <- Kahan.total lost;
      interrupted_parts.(k) <- !interrupted
    in
    match Obs.span_recorder cobs with
    | None -> body ()
    | Some r ->
        Obs.Span.record r "mc.chunk"
          ~attrs:
            [ ("first", Jsonx.Int first); ("count", Jsonx.Int (stop - first)) ]
          body
  in
  let meter = Obs.metrics obs in
  let accounting = Option.is_some meter || Option.is_some pool in
  Obs.time obs "mc.estimate_seconds" (fun () ->
      Obs.span obs "mc.estimate" (fun () ->
          Domain_pool.run ?pool ?domains ?metrics:meter ~chunks run_chunk;
          (* Chunk-index order: child metrics, spans and buffered events
             merge back identically for any domain count. Snapshots tick
             at these serial merge boundaries, so the captured timeline
             is equally domain-count independent — and resource samples
             taken here are tick-counted, never wall-clock-driven. *)
          let merge_t0 = if accounting then Obs_clock.now () else 0.0 in
          for k = 0 to chunks - 1 do
            Obs_fork.gather_one obs kids k;
            (match resource with
            | None -> ()
            | Some res -> Obs_resource.tick res);
            match snapshot with
            | None -> ()
            | Some snap ->
                Obs_snapshot.tick snap ~at:(Int.min trials ((k + 1) * chunk_size))
          done;
          if accounting then
            Domain_pool.note_merge ?pool ?metrics:meter
              ~seconds:(Obs_clock.elapsed_since merge_t0) ();
          (match resource with
          | None -> ()
          | Some res -> Obs_resource.sample res);
          match snapshot with
          | None -> ()
          | Some snap ->
              if Obs_snapshot.last_at snap <> Some trials then
                Obs_snapshot.capture snap ~at:trials));
  if Obs.tracing obs then Obs.emit obs (Obs.Event.Run_finished { time = 0.0 });
  let overhead = Kahan.create () in
  let lost = Kahan.create () in
  let interrupted = ref 0 in
  for k = 0 to chunks - 1 do
    Kahan.add overhead overhead_parts.(k);
    Kahan.add lost lost_parts.(k);
    interrupted := !interrupted + interrupted_parts.(k)
  done;
  let tf = float_of_int trials in
  {
    trials;
    mean_work = Stats.mean works;
    ci95 = Stats.confidence_interval_95 works;
    mean_overhead = Kahan.total overhead /. tf;
    mean_lost = Kahan.total lost /. tf;
    interrupted_fraction = float_of_int !interrupted /. tf;
    analytic = Schedule.expected_work ~c lf schedule;
  }

type policy_run = {
  policy_name : string;
  mean_work_per_episode : float;
  episodes : int;
}

let compare_policies ?(obs = Obs.disabled) ?pool ?domains ?(trials = 20_000) lf
    ~c ~policies ~seed =
  if trials < 1 then
    invalid_arg
      (Printf.sprintf
         "Monte_carlo.compare_policies: trials must be >= 1, got %d" trials);
  (match policies with
  | [] -> invalid_arg "Monte_carlo.compare_policies: policies must not be empty"
  | _ :: _ -> ());
  if Obs.tracing obs then
    Obs.emit obs
      (Obs.Event.Run_started
         { time = 0.0; source = "compare_policies"; seed = Some seed });
  let sampler = Reclaim.create lf in
  let g = Prng.create ~seed in
  (* Common random numbers: one shared stream of reclaim times, drawn
     serially so the stream is independent of the chunking below. *)
  let reclaims = Array.init trials (fun _ -> Reclaim.draw sampler g) in
  let pol = Array.of_list policies in
  let npol = Array.length pol in
  let chunks = n_chunks trials in
  (* One flat job grid over policies × chunks, so a few policies still
     spread over many domains. Job j = policy (j / chunks), chunk
     (j mod chunks). *)
  let jobs = npol * chunks in
  let partials = Array.make jobs 0.0 in
  let kids = Obs_fork.scatter obs ~n:jobs in
  let run_job j =
    let pi = j / chunks and k = j mod chunks in
    let policy_name, schedule = pol.(pi) in
    let cobs = Obs_fork.child kids j in
    let first = k * chunk_size in
    let stop = Int.min trials (first + chunk_size) in
    let body () =
      let acc = Kahan.create () in
      for ti = first to stop - 1 do
        Kahan.add acc
          (Episode.run ~obs:cobs ~ws:pi ~ep:ti schedule ~c
             ~reclaim_at:reclaims.(ti))
            .Episode.work_done
      done;
      partials.(j) <- Kahan.total acc
    in
    match Obs.span_recorder cobs with
    | None -> body ()
    | Some r ->
        Obs.Span.record r "mc.policy"
          ~attrs:
            [
              ("policy", Jsonx.String policy_name);
              ("first", Jsonx.Int first);
              ("count", Jsonx.Int (stop - first));
            ]
          body
  in
  let meter = Obs.metrics obs in
  let accounting = Option.is_some meter || Option.is_some pool in
  Obs.span obs "mc.compare" (fun () ->
      Domain_pool.run ?pool ?domains ?metrics:meter ~chunks:jobs run_job;
      let merge_t0 = if accounting then Obs_clock.now () else 0.0 in
      Obs_fork.gather obs kids;
      if accounting then
        Domain_pool.note_merge ?pool ?metrics:meter
          ~seconds:(Obs_clock.elapsed_since merge_t0) ());
  if Obs.tracing obs then Obs.emit obs (Obs.Event.Run_finished { time = 0.0 });
  let runs =
    List.mapi
      (fun pi (policy_name, _) ->
        let acc = Kahan.create () in
        for k = 0 to chunks - 1 do
          Kahan.add acc partials.((pi * chunks) + k)
        done;
        {
          policy_name;
          mean_work_per_episode = Kahan.total acc /. float_of_int trials;
          episodes = trials;
        })
      policies
  in
  List.sort
    (fun a b -> Float.compare b.mean_work_per_episode a.mean_work_per_episode)
    runs
