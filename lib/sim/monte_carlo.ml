type estimate = {
  trials : int;
  mean_work : float;
  ci95 : float * float;
  mean_overhead : float;
  mean_lost : float;
  interrupted_fraction : float;
  analytic : float;
}

let estimate ?(trials = 20_000) lf ~c ~schedule ~seed =
  if trials < 2 then invalid_arg "Monte_carlo.estimate: trials must be >= 2";
  let g = Prng.create ~seed in
  let sampler = Reclaim.create lf in
  let works = Array.make trials 0.0 in
  let overhead = Kahan.create () in
  let lost = Kahan.create () in
  let interrupted = ref 0 in
  for i = 0 to trials - 1 do
    let reclaim_at = Reclaim.draw sampler g in
    let o = Episode.run schedule ~c ~reclaim_at in
    works.(i) <- o.Episode.work_done;
    Kahan.add overhead o.Episode.overhead;
    Kahan.add lost o.Episode.work_lost;
    if o.Episode.interrupted then incr interrupted
  done;
  let tf = float_of_int trials in
  {
    trials;
    mean_work = Stats.mean works;
    ci95 = Stats.confidence_interval_95 works;
    mean_overhead = Kahan.total overhead /. tf;
    mean_lost = Kahan.total lost /. tf;
    interrupted_fraction = float_of_int !interrupted /. tf;
    analytic = Schedule.expected_work ~c lf schedule;
  }

type policy_run = {
  policy_name : string;
  mean_work_per_episode : float;
  episodes : int;
}

let compare_policies ?(trials = 20_000) lf ~c ~policies ~seed =
  if trials < 1 then
    invalid_arg "Monte_carlo.compare_policies: trials must be >= 1";
  let sampler = Reclaim.create lf in
  let g = Prng.create ~seed in
  (* Common random numbers: one shared stream of reclaim times. *)
  let reclaims = Array.init trials (fun _ -> Reclaim.draw sampler g) in
  let runs =
    List.map
      (fun (policy_name, schedule) ->
        let acc = Kahan.create () in
        Array.iter
          (fun r ->
            Kahan.add acc (Episode.run schedule ~c ~reclaim_at:r).Episode.work_done)
          reclaims;
        {
          policy_name;
          mean_work_per_episode = Kahan.total acc /. float_of_int trials;
          episodes = trials;
        })
      policies
  in
  List.sort
    (fun a b -> Float.compare b.mean_work_per_episode a.mean_work_per_episode)
    runs
