type estimate = {
  trials : int;
  mean_work : float;
  ci95 : float * float;
  mean_overhead : float;
  mean_lost : float;
  interrupted_fraction : float;
  analytic : float;
}

let estimate ?(obs = Obs.disabled) ?(trials = 20_000) lf ~c ~schedule ~seed =
  if trials < 2 then invalid_arg "Monte_carlo.estimate: trials must be >= 2";
  if Obs.tracing obs then
    Obs.emit obs
      (Obs.Event.Run_started
         { time = 0.0; source = "monte_carlo"; seed = Some seed });
  let g = Prng.create ~seed in
  let sampler = Reclaim.create lf in
  let works = Array.make trials 0.0 in
  let overhead = Kahan.create () in
  let lost = Kahan.create () in
  let interrupted = ref 0 in
  let run_trial i =
    let reclaim_at = Reclaim.draw sampler g in
    let o = Episode.run ~obs ~ep:i schedule ~c ~reclaim_at in
    works.(i) <- o.Episode.work_done;
    Kahan.add overhead o.Episode.overhead;
    Kahan.add lost o.Episode.work_lost;
    if o.Episode.interrupted then incr interrupted
  in
  Obs.time obs "mc.estimate_seconds" (fun () ->
      match Obs.span_recorder obs with
      | None ->
          for i = 0 to trials - 1 do
            run_trial i
          done
      | Some r ->
          (* Profile in batches so the Perfetto lane shows amortised
             episode cost without a million leaf spans dominating. *)
          let batch = 1024 in
          Obs.Span.record r "mc.estimate" (fun () ->
              let i = ref 0 in
              while !i < trials do
                let stop = Int.min trials (!i + batch) in
                Obs.Span.record r "mc.batch"
                  ~attrs:
                    [
                      ("first", Jsonx.Int !i);
                      ("count", Jsonx.Int (stop - !i));
                    ]
                  (fun () ->
                    for j = !i to stop - 1 do
                      run_trial j
                    done);
                i := stop
              done));
  if Obs.tracing obs then Obs.emit obs (Obs.Event.Run_finished { time = 0.0 });
  let tf = float_of_int trials in
  {
    trials;
    mean_work = Stats.mean works;
    ci95 = Stats.confidence_interval_95 works;
    mean_overhead = Kahan.total overhead /. tf;
    mean_lost = Kahan.total lost /. tf;
    interrupted_fraction = float_of_int !interrupted /. tf;
    analytic = Schedule.expected_work ~c lf schedule;
  }

type policy_run = {
  policy_name : string;
  mean_work_per_episode : float;
  episodes : int;
}

let compare_policies ?(obs = Obs.disabled) ?(trials = 20_000) lf ~c ~policies
    ~seed =
  if trials < 1 then
    invalid_arg "Monte_carlo.compare_policies: trials must be >= 1";
  if Obs.tracing obs then
    Obs.emit obs
      (Obs.Event.Run_started
         { time = 0.0; source = "compare_policies"; seed = Some seed });
  let sampler = Reclaim.create lf in
  let g = Prng.create ~seed in
  (* Common random numbers: one shared stream of reclaim times. *)
  let reclaims = Array.init trials (fun _ -> Reclaim.draw sampler g) in
  let runs =
    List.mapi
      (fun pi (policy_name, schedule) ->
        Obs.span ~attrs:[ ("policy", Jsonx.String policy_name) ] obs
          "mc.policy" (fun () ->
            let acc = Kahan.create () in
            Array.iteri
              (fun ti r ->
                Kahan.add acc
                  (Episode.run ~obs ~ws:pi ~ep:ti schedule ~c ~reclaim_at:r)
                    .Episode.work_done)
              reclaims;
            {
              policy_name;
              mean_work_per_episode = Kahan.total acc /. float_of_int trials;
              episodes = trials;
            }))
      policies
  in
  if Obs.tracing obs then Obs.emit obs (Obs.Event.Run_finished { time = 0.0 });
  List.sort
    (fun a b -> Float.compare b.mean_work_per_episode a.mean_work_per_episode)
    runs
