type outcome = {
  work_done : float;
  work_lost : float;
  overhead : float;
  periods_completed : int;
  interrupted : bool;
  elapsed : float;
}

let run s ~c ~reclaim_at =
  if c < 0.0 then invalid_arg "Episode.run: c must be >= 0";
  if reclaim_at < 0.0 then invalid_arg "Episode.run: reclaim_at must be >= 0";
  let periods = Schedule.periods s in
  let ends = Schedule.completion_times s in
  let n = Array.length periods in
  let done_acc = Kahan.create () in
  let overhead = Kahan.create () in
  let completed = ref 0 in
  let interrupted = ref false in
  let work_lost = ref 0.0 in
  let i = ref 0 in
  while (not !interrupted) && !i < n do
    let t = periods.(!i) in
    let t_end = ends.(!i) in
    if t_end <= reclaim_at then begin
      (* Period completed before (or exactly at) the owner's return. *)
      Kahan.add done_acc (Schedule.positive_sub t c);
      Kahan.add overhead (Float.min t c);
      incr completed;
      incr i
    end
    else begin
      let t_start = t_end -. t in
      if t_start < reclaim_at then begin
        (* Kill mid-period: all of this period's productive time is lost. *)
        interrupted := true;
        let in_flight = reclaim_at -. t_start in
        Kahan.add overhead (Float.min in_flight c);
        work_lost := Schedule.positive_sub in_flight c
      end
      else begin
        (* The reclaim arrived in the gap at t_start = reclaim_at: episode
           over before this period started. *)
        interrupted := true
      end
    end
  done;
  let elapsed =
    if !interrupted then reclaim_at else Schedule.total_duration s
  in
  {
    work_done = Kahan.total done_acc;
    work_lost = !work_lost;
    overhead = Kahan.total overhead;
    periods_completed = !completed;
    interrupted = !interrupted;
    elapsed;
  }

let work_if_reclaimed_at s ~c t = (run s ~c ~reclaim_at:t).work_done
