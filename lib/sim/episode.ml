type outcome = {
  work_done : float;
  work_lost : float;
  overhead : float;
  periods_completed : int;
  interrupted : bool;
  elapsed : float;
}

(* Pre-resolved metric instruments, so the per-period hot path touches
   record fields instead of hashing names. *)
type meters = {
  m_runs : Obs.Metrics.counter;
  m_completed : Obs.Metrics.counter;
  m_killed : Obs.Metrics.counter;
  m_period_length : Obs.Metrics.histogram;
  m_elapsed : Obs.Metrics.histogram;
}

let meters_of m =
  {
    m_runs = Obs.Metrics.counter m "episode.runs";
    m_completed = Obs.Metrics.counter m "episode.periods_completed";
    m_killed = Obs.Metrics.counter m "episode.periods_killed";
    m_period_length = Obs.Metrics.histogram m "episode.period_length";
    m_elapsed = Obs.Metrics.histogram m "episode.elapsed";
  }

let run ?(obs = Obs.disabled) ?(ws = 0) ?(ep = 0) s ~c ~reclaim_at =
  if c < 0.0 then invalid_arg "Episode.run: c must be >= 0";
  if reclaim_at < 0.0 then invalid_arg "Episode.run: reclaim_at must be >= 0";
  let trace = Obs.tracing obs in
  let meters = Option.map meters_of (Obs.metrics obs) in
  let spanner = Obs.span_recorder obs in
  let instr = trace || meters <> None in
  (match spanner with
  | Some r -> Obs.Span.enter r "episode.run"
  | None -> ());
  let periods = Schedule.periods s in
  let ends = Schedule.completion_times s in
  let n = Array.length periods in
  let done_acc = Kahan.create () in
  let overhead = Kahan.create () in
  let completed = ref 0 in
  let interrupted = ref false in
  let work_lost = ref 0.0 in
  if instr then begin
    if trace then Obs.emit obs (Obs.Event.Episode_started { time = 0.0; ws; ep });
    match meters with Some m -> Obs.Metrics.incr m.m_runs | None -> ()
  end;
  let i = ref 0 in
  while (not !interrupted) && !i < n do
    let t = periods.(!i) in
    let t_end = ends.(!i) in
    if t_end <= reclaim_at then begin
      (* Period completed before (or exactly at) the owner's return. *)
      Kahan.add done_acc (Schedule.positive_sub t c);
      Kahan.add overhead (Float.min t c);
      incr completed;
      if instr then begin
        if trace then begin
          Obs.emit obs
            (Obs.Event.Period_dispatched
               {
                 time = t_end -. t;
                 ws;
                 ep;
                 period = t;
                 assigned = Schedule.positive_sub t c;
               });
          Obs.emit obs
            (Obs.Event.Period_completed
               {
                 time = t_end;
                 ws;
                 ep;
                 period = t;
                 banked = Schedule.positive_sub t c;
                 overhead = Float.min t c;
               })
        end;
        match meters with
        | Some m ->
            Obs.Metrics.incr m.m_completed;
            Obs.Metrics.observe m.m_period_length t
        | None -> ()
      end;
      incr i
    end
    else begin
      let t_start = t_end -. t in
      if t_start < reclaim_at then begin
        (* Kill mid-period: all of this period's productive time is lost. *)
        interrupted := true;
        let in_flight = reclaim_at -. t_start in
        Kahan.add overhead (Float.min in_flight c);
        work_lost := Schedule.positive_sub in_flight c;
        if instr then begin
          if trace then begin
            Obs.emit obs
              (Obs.Event.Period_dispatched
                 {
                   time = t_start;
                   ws;
                   ep;
                   period = t;
                   assigned = Schedule.positive_sub t c;
                 });
            Obs.emit obs
              (Obs.Event.Period_killed
                 {
                   time = reclaim_at;
                   ws;
                   ep;
                   lost = !work_lost;
                   overhead = Float.min in_flight c;
                 })
          end;
          match meters with
          | Some m ->
              Obs.Metrics.incr m.m_killed;
              Obs.Metrics.observe m.m_period_length t
          | None -> ()
        end
      end
      else begin
        (* The reclaim arrived in the gap at t_start = reclaim_at: episode
           over before this period started. *)
        interrupted := true
      end
    end
  done;
  let elapsed =
    if !interrupted then reclaim_at else Schedule.total_duration s
  in
  if instr then begin
    if trace then begin
      if !interrupted then
        Obs.emit obs (Obs.Event.Owner_returned { time = reclaim_at; ws; ep });
      Obs.emit obs
        (Obs.Event.Episode_finished
           {
             time = elapsed;
             ws;
             ep;
             work_done = Kahan.total done_acc;
             interrupted = !interrupted;
           })
    end;
    match meters with
    | Some m -> Obs.Metrics.observe m.m_elapsed elapsed
    | None -> ()
  end;
  (match spanner with
  | Some r ->
      Obs.Span.exit r
        ~attrs:
          [
            ("completed", Jsonx.Int !completed);
            ("interrupted", Jsonx.Bool !interrupted);
          ]
  | None -> ());
  {
    work_done = Kahan.total done_acc;
    work_lost = !work_lost;
    overhead = Kahan.total overhead;
    periods_completed = !completed;
    interrupted = !interrupted;
    elapsed;
  }

let work_if_reclaimed_at s ~c t = (run s ~c ~reclaim_at:t).work_done
