type 'a entry = { time : float; tie : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let is_empty q = q.size = 0
let size q = q.size

let earlier a b =
  a.time < b.time
  || (a.time = b.time && (a.tie < b.tie || (a.tie = b.tie && a.seq < b.seq)))

let grow q =
  let cap = Array.length q.heap in
  if q.size = cap then begin
    let ncap = Int.max 16 (2 * cap) in
    let dummy = q.heap.(0) in
    let nheap = Array.make ncap dummy in
    Array.blit q.heap 0 nheap 0 q.size;
    q.heap <- nheap
  end

let push q ~time ~tie payload =
  if not (Float.is_finite time) then
    invalid_arg "Event_queue.push: time must be finite";
  let e = { time; tie; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  if Array.length q.heap = 0 then q.heap <- Array.make 16 e else grow q;
  (* sift up *)
  let i = ref q.size in
  q.size <- q.size + 1;
  q.heap.(!i) <- e;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if earlier q.heap.(!i) q.heap.(parent) then begin
      let tmp = q.heap.(parent) in
      q.heap.(parent) <- q.heap.(!i);
      q.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.size && earlier q.heap.(l) q.heap.(!smallest) then
          smallest := l;
        if r < q.size && earlier q.heap.(r) q.heap.(!smallest) then
          smallest := r;
        if !smallest <> !i then begin
          let tmp = q.heap.(!smallest) in
          q.heap.(!smallest) <- q.heap.(!i);
          q.heap.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time
