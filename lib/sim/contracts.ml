let run_with_suspension s ~c ~reclaim_at =
  let o = Episode.run s ~c ~reclaim_at in
  (* The draconian run already computed the in-flight productive time as
     work_lost; the suspend contract banks it instead. *)
  {
    o with
    Episode.work_done = o.Episode.work_done +. o.Episode.work_lost;
    work_lost = 0.0;
  }

let expected_work_suspended ~c lf s =
  if c < 0.0 then
    invalid_arg "Contracts.expected_work_suspended: c must be >= 0";
  let periods = Schedule.periods s in
  let ends = Schedule.completion_times s in
  let acc = Kahan.create () in
  Array.iteri
    (fun i t ->
      let finish = ends.(i) in
      let start = finish -. t in
      let lo = start +. c in
      if lo < finish && Life_function.eval lf lo > 0.0 then
        Kahan.add acc
          (Quadrature.adaptive_simpson ~tol:1e-10 (Life_function.eval lf)
             ~lo ~hi:finish))
    periods;
  Kahan.total acc

let single_period_value ~c lf =
  if c < 0.0 then invalid_arg "Contracts.single_period_value: c must be >= 0";
  let horizon = Life_function.horizon lf in
  if c >= horizon then 0.0
  else
    Quadrature.adaptive_simpson ~tol:1e-10 (Life_function.eval lf) ~lo:c
      ~hi:horizon
