type policy = {
  policy_name : string;
  fresh_episode : Life_function.t -> c:float -> (elapsed:float -> float option);
}

let static_policy ~name plan =
  {
    policy_name = name;
    fresh_episode =
      (fun lf ~c ->
        let schedule = plan lf ~c in
        let periods = Schedule.periods schedule in
        let ends = Schedule.completion_times schedule in
        let idx = ref 0 in
        fun ~elapsed ->
          ignore elapsed;
          if !idx >= Array.length periods then None
          else begin
            let t = periods.(!idx) in
            ignore ends;
            incr idx;
            Some t
          end);
  }

let guideline_policy =
  static_policy ~name:"guideline" (fun lf ~c ->
      (Guideline.plan lf ~c).Guideline.schedule)

let adaptive_policy =
  {
    policy_name = "adaptive-conditional";
    fresh_episode =
      (fun lf ~c ->
        fun ~elapsed -> Guideline.next_period_online lf ~c ~elapsed);
  }

let greedy_policy =
  {
    policy_name = "greedy";
    fresh_episode =
      (fun lf ~c -> fun ~elapsed -> Greedy.first_period lf ~c ~elapsed);
  }

let fixed_chunk_policy ~chunk =
  if chunk <= 0.0 then
    invalid_arg "Farm.fixed_chunk_policy: chunk must be > 0";
  {
    policy_name = Printf.sprintf "fixed-chunk(%g)" chunk;
    fresh_episode =
      (fun lf ~c ->
        ignore c;
        let horizon = Life_function.horizon lf in
        fun ~elapsed -> if elapsed >= horizon then None else Some chunk);
  }

type workstation_config = {
  ws_life : Life_function.t;
  ws_presence_mean : float;
}

type config = {
  c : float;
  total_work : float;
  workstations : workstation_config list;
  policy : policy;
  max_time : float;
}

type ws_stats = {
  ws_id : int;
  work_done : float;
  work_lost : float;
  overhead : float;
  episodes : int;
  periods_completed : int;
  periods_killed : int;
}

type report = {
  finished : bool;
  makespan : float;
  pool_remaining : float;
  total_done : float;
  total_lost : float;
  total_overhead : float;
  per_workstation : ws_stats list;
}

(* Mutable per-workstation simulation state. *)
type ws_state = {
  cfg : workstation_config;
  sampler : Reclaim.sampler;
  rng : Prng.t;
  mutable epoch : int;  (** Bumped on every owner transition to invalidate
                            stale period-end events. *)
  mutable episode_start : float;
  mutable next_period : (elapsed:float -> float option) option;
      (** The policy closure for the live episode, if any. *)
  mutable in_flight : float;  (** Work assigned to the running period. *)
  mutable ep_index : int;  (** 0-based ordinal of the live episode. *)
  mutable ep_done : float;  (** Work banked within the live episode. *)
  mutable stats_done : Kahan.t;
  mutable stats_lost : Kahan.t;
  mutable stats_overhead : Kahan.t;
  mutable stats_episodes : int;
  mutable stats_completed : int;
  mutable stats_killed : int;
}

(* Pre-resolved metric instruments for the event handlers. *)
type meters = {
  m_episodes : Obs.Metrics.counter;
  m_completed : Obs.Metrics.counter;
  m_killed : Obs.Metrics.counter;
  m_period_length : Obs.Metrics.histogram;
  m_episode_duration : Obs.Metrics.histogram;
  m_pool_remaining : Obs.Metrics.gauge;
}

let meters_of m =
  {
    m_episodes = Obs.Metrics.counter m "farm.episodes";
    m_completed = Obs.Metrics.counter m "farm.periods_completed";
    m_killed = Obs.Metrics.counter m "farm.periods_killed";
    m_period_length = Obs.Metrics.histogram m "farm.period_length";
    m_episode_duration = Obs.Metrics.histogram m "farm.episode_duration";
    m_pool_remaining = Obs.Metrics.gauge m "farm.pool_remaining";
  }

type event =
  | Period_end of { ws : int; epoch : int; assigned : float; period : float }
  | Owner_return of { ws : int; epoch : int }
  | Owner_leave of { ws : int }

(* Tie ranks: period completions strictly before owner returns at the same
   instant, so an exactly-on-time period still banks its work. *)
let tie_of = function
  | Period_end _ -> 0
  | Owner_return _ -> 1
  | Owner_leave _ -> 2

type link_model = Unlimited | Serialized

let run ?(obs = Obs.disabled) ?(link = Unlimited) config ~seed =
  if config.c <= 0.0 then invalid_arg "Farm.run: c must be > 0";
  if config.total_work <= 0.0 then
    invalid_arg "Farm.run: total_work must be > 0";
  if config.max_time <= 0.0 then invalid_arg "Farm.run: max_time must be > 0";
  if config.workstations = [] then
    invalid_arg "Farm.run: need at least one workstation";
  List.iter
    (fun w ->
      if w.ws_presence_mean <= 0.0 then
        invalid_arg "Farm.run: presence mean must be > 0")
    config.workstations;
  let trace = Obs.tracing obs in
  let meters = Option.map meters_of (Obs.metrics obs) in
  let spanner = Obs.span_recorder obs in
  let instr = trace || meters <> None in
  (match spanner with
  | Some r -> Obs.Span.enter r "farm.run"
  | None -> ());
  if trace then
    Obs.emit obs
      (Obs.Event.Run_started { time = 0.0; source = "farm"; seed = Some seed });
  let root = Prng.create ~seed in
  let states =
    Array.of_list
      (List.map
         (fun cfg ->
           {
             cfg;
             sampler = Reclaim.create cfg.ws_life;
             rng = Prng.split root;
             epoch = 0;
             episode_start = 0.0;
             next_period = None;
             in_flight = 0.0;
             ep_index = -1;
             ep_done = 0.0;
             stats_done = Kahan.create ();
             stats_lost = Kahan.create ();
             stats_overhead = Kahan.create ();
             stats_episodes = 0;
             stats_completed = 0;
             stats_killed = 0;
           })
         config.workstations)
  in
  let q = Event_queue.create () in
  let push time ev =
    if time <= config.max_time then Event_queue.push q ~time ~tie:(tie_of ev) ev
  in
  (* Pool accounting: work not yet banked and not currently assigned. *)
  let unassigned = ref config.total_work in
  let banked = Kahan.create () in
  let finished_at = ref None in
  (* Master-link availability under the Serialized model. *)
  let link_free = ref 0.0 in
  (* Start a new period on workstation [i] at absolute time [now]; returns
     nothing, enqueues the period end if one is started. *)
  let start_period i now =
    let st = states.(i) in
    match st.next_period with
    | None -> ()
    | Some next -> (
        if !unassigned > 1e-12 then
          (* The policy call is the planning work (the adaptive policy
             re-plans against the conditional life function here), so it
             gets its own span enclosing any nested guideline spans. *)
          let choice =
            match spanner with
            | None -> next ~elapsed:(now -. st.episode_start)
            | Some r ->
                Obs.Span.record r "farm.next_period" (fun () ->
                    next ~elapsed:(now -. st.episode_start))
          in
          match choice with
          | None -> st.next_period <- None
          | Some t ->
              (* Clip the bundle to the work left in the pool. *)
              let productive = Float.max 0.0 (t -. config.c) in
              let assigned = Float.min productive !unassigned in
              let t = if assigned < productive then config.c +. assigned else t in
              if assigned > 0.0 then begin
                unassigned := !unassigned -. assigned;
                st.in_flight <- assigned;
                (* Under a serialized link the c-long dispatch queues for
                   the master; the period starts when the link frees. *)
                let dispatch =
                  match link with
                  | Unlimited -> now
                  | Serialized ->
                      let d = Float.max now !link_free in
                      link_free := d +. config.c;
                      d
                in
                if instr then begin
                  if trace then
                    Obs.emit obs
                      (Obs.Event.Period_dispatched
                         {
                           time = dispatch;
                           ws = i;
                           ep = st.ep_index;
                           period = t;
                           assigned;
                         });
                  match meters with
                  | Some m -> Obs.Metrics.observe m.m_period_length t
                  | None -> ()
                end;
                push (dispatch +. t)
                  (Period_end { ws = i; epoch = st.epoch; assigned; period = t })
              end
              else st.next_period <- None)
  in
  let handle now = function
    | Owner_leave { ws } ->
        let st = states.(ws) in
        st.epoch <- st.epoch + 1;
        let absence = Reclaim.draw st.sampler st.rng in
        push (now +. absence) (Owner_return { ws; epoch = st.epoch });
        st.episode_start <- now;
        st.stats_episodes <- st.stats_episodes + 1;
        st.ep_index <- st.stats_episodes - 1;
        st.ep_done <- 0.0;
        if instr then begin
          if trace then
            Obs.emit obs
              (Obs.Event.Episode_started { time = now; ws; ep = st.ep_index });
          match meters with
          | Some m -> Obs.Metrics.incr m.m_episodes
          | None -> ()
        end;
        st.next_period <-
          Some (config.policy.fresh_episode st.cfg.ws_life ~c:config.c);
        start_period ws now
    | Owner_return { ws; epoch } ->
        let st = states.(ws) in
        if epoch = st.epoch then begin
          let was_in_flight = st.in_flight > 0.0 in
          (* Kill any in-flight period: its work returns to the pool. *)
          if was_in_flight then begin
            Kahan.add st.stats_lost st.in_flight;
            (* Pool balance, not a monotone sum: work flows out on dispatch
               (-.) and back on kills; a compensated carrier cannot express
               the two-way traffic and the magnitudes stay O(total_work). *)
            (unassigned := !unassigned +. st.in_flight) [@lint.allow "R2"];
            st.stats_killed <- st.stats_killed + 1
          end;
          if instr then begin
            if trace then begin
              if was_in_flight then
                Obs.emit obs
                  (Obs.Event.Period_killed
                     {
                       time = now;
                       ws;
                       ep = st.ep_index;
                       lost = st.in_flight;
                       overhead = 0.0;
                     });
              Obs.emit obs
                (Obs.Event.Owner_returned { time = now; ws; ep = st.ep_index });
              Obs.emit obs
                (Obs.Event.Episode_finished
                   {
                     time = now;
                     ws;
                     ep = st.ep_index;
                     work_done = st.ep_done;
                     interrupted = was_in_flight;
                   })
            end;
            match meters with
            | Some m ->
                if was_in_flight then Obs.Metrics.incr m.m_killed;
                Obs.Metrics.observe m.m_episode_duration
                  (now -. st.episode_start)
            | None -> ()
          end;
          st.in_flight <- 0.0;
          st.next_period <- None;
          st.epoch <- st.epoch + 1;
          let presence =
            Prng.exponential st.rng ~rate:(1.0 /. st.cfg.ws_presence_mean)
          in
          push (now +. presence) (Owner_leave { ws })
        end
    | Period_end { ws; epoch; assigned; period } ->
        let st = states.(ws) in
        if epoch = st.epoch then begin
          st.in_flight <- 0.0;
          Kahan.add st.stats_done assigned;
          Kahan.add st.stats_overhead (Float.min period config.c);
          Kahan.add banked assigned;
          st.stats_completed <- st.stats_completed + 1;
          st.ep_done <- st.ep_done +. assigned;
          if instr then begin
            if trace then
              Obs.emit obs
                (Obs.Event.Period_completed
                   {
                     time = now;
                     ws;
                     ep = st.ep_index;
                     period;
                     banked = assigned;
                     overhead = Float.min period config.c;
                   });
            match meters with
            | Some m -> Obs.Metrics.incr m.m_completed
            | None -> ()
          end;
          if
            Kahan.total banked >= config.total_work -. 1e-9
            && !finished_at = None
          then begin
            finished_at := Some now;
            if trace then
              Obs.emit obs
                (Obs.Event.Pool_drained
                   {
                     time = now;
                     remaining =
                       Float.max 0.0 (config.total_work -. Kahan.total banked);
                   })
          end
          else start_period ws now
        end
  in
  (* All owners initially present; each leaves after an exponential hold. *)
  Array.iteri
    (fun i st ->
      let presence =
        Prng.exponential st.rng ~rate:(1.0 /. st.cfg.ws_presence_mean)
      in
      push presence (Owner_leave { ws = i }))
    states;
  let rec loop () =
    if !finished_at = None then
      match Event_queue.pop q with
      | None -> ()
      | Some (now, ev) ->
          handle now ev;
          loop ()
  in
  loop ();
  let per_workstation =
    Array.to_list
      (Array.mapi
         (fun i st ->
           {
             ws_id = i;
             work_done = Kahan.total st.stats_done;
             work_lost = Kahan.total st.stats_lost;
             overhead = Kahan.total st.stats_overhead;
             episodes = st.stats_episodes;
             periods_completed = st.stats_completed;
             periods_killed = st.stats_killed;
           })
         states)
  in
  (* Work still assigned to in-flight periods when the clock stopped is
     counted back into the pool for conservation. *)
  let in_flight_total =
    Array.fold_left (fun acc st -> acc +. st.in_flight) 0.0 states
  in
  let makespan =
    match !finished_at with Some t -> t | None -> config.max_time
  in
  if instr then begin
    if trace then Obs.emit obs (Obs.Event.Run_finished { time = makespan });
    match meters with
    | Some m ->
        Obs.Metrics.set m.m_pool_remaining (!unassigned +. in_flight_total)
    | None -> ()
  end;
  (match spanner with
  | Some r ->
      Obs.Span.exit r
        ~attrs:
          [
            ("makespan", Jsonx.Float makespan);
            ("finished", Jsonx.Bool (!finished_at <> None));
          ]
  | None -> ());
  {
    finished = !finished_at <> None;
    makespan;
    pool_remaining = !unassigned +. in_flight_total;
    total_done = Kahan.total banked;
    total_lost = List.fold_left (fun a w -> a +. w.work_lost) 0.0 per_workstation;
    total_overhead =
      List.fold_left (fun a w -> a +. w.overhead) 0.0 per_workstation;
    per_workstation;
  }
