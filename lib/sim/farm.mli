(** A data-parallel task farm over a network of workstations — the
    motivating deployment of §1, built as a discrete-event simulation.

    A master (workstation A) owns a pool of independent work and steals
    cycles from a fleet of borrowed workstations. Each workstation's owner
    alternates presence (exponentially distributed) with absence; an
    absence is a cycle-stealing episode whose duration is distributed
    according to that workstation's life function. During an episode the
    master supplies one bundle per period under a pluggable policy; a
    period that completes banks its work, and an owner's return kills the
    in-flight period, whose work returns to the pool (the draconian
    contract).

    A period completing exactly at the owner's return counts as completed,
    consistent with {!Episode.run}. Communication is charged [c] per
    started period; by default there is no link contention — the same
    architecture-independence assumption as the paper's model ([9]) — but
    {!run} can serialize the master's link to measure when that assumption
    breaks (experiment E14). *)

type policy = {
  policy_name : string;
  fresh_episode : Life_function.t -> c:float -> (elapsed:float -> float option);
      (** Called at each episode start; the returned closure yields the
          next period length given the elapsed episode time, or [None] to
          idle for the rest of the episode. Periods are clipped to the
          work remaining in the pool. *)
}

val static_policy : name:string -> (Life_function.t -> c:float -> Schedule.t)
  -> policy
(** [static_policy ~name plan] computes one schedule per episode up front
    and plays it out period by period. *)

val guideline_policy : policy
(** Plays the {!Guideline.plan} schedule for each episode. *)

val adaptive_policy : policy
(** Re-plans after every completed period via
    {!Guideline.next_period_online} — the §6 "progressive" scheduler using
    conditional probabilities. *)

val greedy_policy : policy
(** Myopic per-period maximisation ({!Greedy.first_period} at each step). *)

val fixed_chunk_policy : chunk:float -> policy
(** Constant period length regardless of risk. Requires [chunk > 0]. *)

type workstation_config = {
  ws_life : Life_function.t;  (** Absence-duration survival function. *)
  ws_presence_mean : float;  (** Mean of the exponential presence time. *)
}

type config = {
  c : float;  (** Communication overhead per period. *)
  total_work : float;  (** Task-pool size to complete. *)
  workstations : workstation_config list;
  policy : policy;
  max_time : float;  (** Simulation cutoff. *)
}

type ws_stats = {
  ws_id : int;
  work_done : float;
  work_lost : float;
  overhead : float;
  episodes : int;
  periods_completed : int;
  periods_killed : int;
}

type report = {
  finished : bool;  (** [true] iff the pool emptied before [max_time]. *)
  makespan : float;  (** Time the pool emptied, or [max_time]. *)
  pool_remaining : float;
  total_done : float;
  total_lost : float;
  total_overhead : float;
  per_workstation : ws_stats list;
}

type link_model =
  | Unlimited
      (** The paper's architecture-independent assumption: any number of
          simultaneous dispatches. *)
  | Serialized
      (** The master's link admits one [c]-long dispatch at a time; a
          period whose dispatch must wait starts (and ends) later, and an
          owner returning during the wait kills it like any in-flight
          period. Collection is folded into the same [c], per the model's
          combined-overhead convention. *)

val run : ?obs:Obs.t -> ?link:link_model -> config -> seed:int64 -> report
(** [run config ~seed] simulates the farm deterministically from [seed];
    [?link] (default {!Unlimited}) selects the contention model.
    Conservation: [total_done + pool_remaining = total_work] up to float
    tolerance (lost work returns to the pool).

    [?obs] (default {!Obs.disabled}) attaches observability without
    changing any result: a consuming sink receives the full event stream
    ([Run_started], per-workstation [Episode_started] /
    [Period_dispatched] / [Period_completed] / [Period_killed] /
    [Owner_returned] / [Episode_finished], [Pool_drained] when the pool
    empties, [Run_finished]) stamped with absolute simulation times, and
    a metrics registry accumulates [farm.*] counters, histograms, and the
    final pool gauge. {!Trace_report} folds such a trace back into this
    function's own report numbers. Killed periods charge no overhead in
    this accounting (the dispatch cost is only charged to completed
    periods), so their [Period_killed] events carry [overhead = 0].
    @raise Invalid_argument on nonpositive [c], [total_work], [max_time],
    presence means, or an empty workstation list. *)
