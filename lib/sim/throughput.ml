type t = {
  work_per_cycle : float;
  cycle_length : float;
  rate : float;
  utilisation : float;
}

let analytic lf ~c ~presence_mean s =
  if c < 0.0 then invalid_arg "Throughput.analytic: c must be >= 0";
  if presence_mean <= 0.0 then
    invalid_arg "Throughput.analytic: presence_mean must be > 0";
  let work_per_cycle = Schedule.expected_work ~c lf s in
  let cycle_length = presence_mean +. Life_function.mean_lifetime lf in
  let rate = work_per_cycle /. cycle_length in
  { work_per_cycle; cycle_length; rate; utilisation = rate }

let of_guideline lf ~c ~presence_mean =
  analytic lf ~c ~presence_mean (Guideline.plan lf ~c).Guideline.schedule

let measured_rate r =
  if r.Farm.makespan <= 0.0 then 0.0
  else r.Farm.total_done /. r.Farm.makespan
