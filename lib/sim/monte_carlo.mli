(** Monte-Carlo estimation of a schedule's expected work — the empirical
    side of eq. 2.1, used by experiment E8 to validate the analytic
    expectation and by users whose life functions come from traces rather
    than formulas. *)

type estimate = {
  trials : int;
  mean_work : float;
  ci95 : float * float;  (** Normal-approximation 95% confidence interval. *)
  mean_overhead : float;
  mean_lost : float;
  interrupted_fraction : float;
  analytic : float;  (** [Schedule.expected_work] for the same inputs. *)
}

val estimate :
  ?obs:Obs.t ->
  ?trials:int ->
  Life_function.t -> c:float -> schedule:Schedule.t -> seed:int64 ->
  estimate
(** [estimate p ~c ~schedule ~seed] runs [trials] (default 20_000)
    independent episodes with reclaim times drawn from [p] and summarises
    the outcomes. Deterministic in [seed]. Requires [trials >= 2].

    [?obs] (default {!Obs.disabled}) is forwarded to every
    {!Episode.run}, with the trial index as the episode ordinal [ep] (and
    [ws = 0]), bracketed by [Run_started] / [Run_finished] marker events;
    with a metrics registry attached the whole sweep is additionally span-
    timed into the [mc.estimate_seconds] histogram. Results are identical
    with and without [?obs]. *)

type policy_run = {
  policy_name : string;
  mean_work_per_episode : float;
  episodes : int;
}

val compare_policies :
  ?obs:Obs.t ->
  ?trials:int ->
  Life_function.t -> c:float ->
  policies:(string * Schedule.t) list -> seed:int64 ->
  policy_run list
(** [compare_policies p ~c ~policies ~seed] runs every named schedule
    against the {e same} stream of sampled reclaim times (common random
    numbers, so policy differences are not drowned in sampling noise) and
    reports mean work per episode, sorted best-first.

    [?obs] is forwarded to every {!Episode.run}; in the emitted events the
    [ws] field carries the {e policy index} (position in [policies]) and
    [ep] the trial index, so a trace can be cut per policy. *)
