(** Monte-Carlo estimation of a schedule's expected work — the empirical
    side of eq. 2.1, used by experiment E8 to validate the analytic
    expectation and by users whose life functions come from traces rather
    than formulas.

    {2 Parallel execution}

    Both entry points split their trial loop over a fixed {e chunk grid}
    of {!chunk_size} trials per chunk: chunk [k] draws from the [k]-th
    {!Prng.split_n} child stream and accumulates its own compensated
    partial sums, which are reduced in chunk-index order afterwards. The
    grid's geometry depends only on the trial count, so results are
    {e bit-identical} whether the chunks run inline (the default), on a
    caller-supplied {!Domain_pool.t} ([?pool]) or on a transient pool
    ([?domains]) — see DESIGN.md §10. Observability merges the same way:
    each chunk records into a private handle that is folded back in chunk
    order ({!Obs_fork}). *)

val chunk_size : int
(** Trials per chunk of the fixed grid (512). *)

type estimate = {
  trials : int;
  mean_work : float;
  ci95 : float * float;  (** Normal-approximation 95% confidence interval. *)
  mean_overhead : float;
  mean_lost : float;
  interrupted_fraction : float;
  analytic : float;  (** [Schedule.expected_work] for the same inputs. *)
}

val estimate :
  ?obs:Obs.t ->
  ?pool:Domain_pool.t ->
  ?domains:int ->
  ?snapshot:Obs_snapshot.t ->
  ?resource:Obs_resource.t ->
  ?trials:int ->
  Life_function.t -> c:float -> schedule:Schedule.t -> seed:int64 ->
  estimate
(** [estimate p ~c ~schedule ~seed] runs [trials] (default 20_000)
    independent episodes with reclaim times drawn from [p] and summarises
    the outcomes. Deterministic in [seed] — and in [seed] only: [?pool] /
    [?domains] change wall time, never a bit of the result. Requires
    [trials >= 2].

    [?obs] (default {!Obs.disabled}) is forwarded to every
    {!Episode.run}, with the trial index as the episode ordinal [ep] (and
    [ws = 0]), bracketed by [Run_started] / [Run_finished] marker events;
    with a metrics registry attached the whole sweep is additionally span-
    timed into the [mc.estimate_seconds] histogram, and a span recorder
    sees an [mc.estimate] span over per-chunk [mc.chunk] children.
    Results are identical with and without [?obs].

    [?snapshot] is ticked with the number of trials merged so far after
    each chunk folds back — at the serial gather boundary, in chunk
    order, so the captured metric timeline is bit-identical for any
    domain count (its effective spacing rounds up to {!chunk_size}). A
    final unconditional capture at [trials] guarantees the last entry
    reflects the finished run. The snapshot's registry should be the one
    attached to [?obs], or the captures will be empty.

    [?resource] is ticked once per chunk at the same serial gather
    boundary (before the snapshot tick, so captured frames include the
    fresh [gc.*] values) and sampled unconditionally before the final
    capture. Sampling points are deterministic in the chunk grid;
    the sampled {e values} are runtime-dependent, which is why they
    live in gauges and histograms, never in trace events.

    When [?obs] carries a metrics registry, {!Domain_pool.run} also
    mirrors utilization into [pool.*] gauges and the serial gather
    loop's duration is recorded as [pool.merge_seconds]
    ({!Domain_pool.note_merge}). *)

type policy_run = {
  policy_name : string;
  mean_work_per_episode : float;
  episodes : int;
}

val compare_policies :
  ?obs:Obs.t ->
  ?pool:Domain_pool.t ->
  ?domains:int ->
  ?trials:int ->
  Life_function.t -> c:float ->
  policies:(string * Schedule.t) list -> seed:int64 ->
  policy_run list
(** [compare_policies p ~c ~policies ~seed] runs every named schedule
    against the {e same} stream of sampled reclaim times (common random
    numbers, so policy differences are not drowned in sampling noise) and
    reports mean work per episode, sorted best-first. The reclaim stream
    is drawn serially up front; the policy × chunk grid then runs on
    [?pool] / [?domains] with the same bit-identical guarantee as
    {!estimate}. Requires [trials >= 1] and [policies <> []].

    [?obs] is forwarded to every {!Episode.run}; in the emitted events the
    [ws] field carries the {e policy index} (position in [policies]) and
    [ep] the trial index, so a trace can be cut per policy. A span
    recorder sees an [mc.compare] span over per-chunk [mc.policy]
    children. *)
