(** Contract variations — what the draconian kill-on-reclaim semantics
    cost, relative to a gentler suspend-on-reclaim contract.

    The paper's model (§1) is deliberately draconian: work in progress is
    destroyed when the owner returns ("a returning owner unplugs a laptop
    from a network"). The obvious foil, mentioned as the motivation for
    the tension, is a contract where in-flight work is {e suspended} and
    its completed fraction retained (e.g. the borrowed process is
    checkpointed by the system on reclaim). Under suspension there is no
    reason to split an episode at all — a single period pays [c] once and
    loses nothing — so comparing the two contracts' optimal values
    quantifies exactly how much productivity the draconian clause costs
    (experiment E19). *)

val run_with_suspension :
  Schedule.t -> c:float -> reclaim_at:float -> Episode.outcome
(** [run_with_suspension s ~c ~reclaim_at] replays a schedule under the
    suspend contract: identical to {!Episode.run} except that an
    interrupted period's productive time completed so far is {e banked}
    rather than lost ([work_lost] is always 0; the [c]-long setup of the
    interrupted period is still spent). *)

val expected_work_suspended :
  c:float -> Life_function.t -> Schedule.t -> float
(** [expected_work_suspended ~c p s] is the closed-form expectation of
    {!run_with_suspension}'s banked work:

    [E_suspend(S; p) = Σ_i ∫_{τ_i + c}^{T_i} p(t) dt]

    (integration by parts of the partial-work payoff against the reclaim
    density; [τ_i] is period [i]'s start). Evaluated by adaptive
    quadrature per period. Requires [c >= 0]. *)

val single_period_value : c:float -> Life_function.t -> float
(** [single_period_value ~c p] is the suspend-contract value of the
    one-period schedule spanning the horizon — the optimal schedule under
    suspension, [∫_c^{horizon} p]. The gap to the draconian guideline
    value is the price of draconia. *)
