(** Steady-state throughput of a borrowed workstation — the renewal-theory
    bridge between the paper's single-episode objective and farm-level
    performance.

    A workstation alternates owner-presence (mean [presence_mean]) and
    absence (distributed by the life function); each absence hosts one
    cycle-stealing episode executed under a fixed schedule. By the renewal
    reward theorem the long-run work rate is

    [rate = E(S; p) / (presence_mean + mean_lifetime p)]

    — expected episode work over expected cycle length (the full absence
    is part of the cycle whether or not the schedule uses all of it).
    {!Farm} realises exactly this process, so the analytic rate predicts
    farm throughput per workstation; experiment E20 validates the match
    and the test suite enforces it. *)

type t = {
  work_per_cycle : float;  (** [E(S; p)], eq. 2.1. *)
  cycle_length : float;  (** [presence_mean + mean absence]. *)
  rate : float;  (** Long-run banked work per unit time. *)
  utilisation : float;
      (** Fraction of wall-clock spent banking work:
          [rate] (work is measured in time units). *)
}

val analytic :
  Life_function.t -> c:float -> presence_mean:float -> Schedule.t -> t
(** [analytic p ~c ~presence_mean s] evaluates the renewal formula.
    Requires [c >= 0] and [presence_mean > 0]. *)

val of_guideline :
  Life_function.t -> c:float -> presence_mean:float -> t
(** [of_guideline p ~c ~presence_mean] is {!analytic} applied to the
    guideline schedule for [(p, c)]. *)

val measured_rate : Farm.report -> float
(** [measured_rate r] is a farm run's total banked work per unit makespan —
    the empirical counterpart (divide by the workstation count to compare
    with a per-workstation {!analytic} rate on a homogeneous fleet). *)
