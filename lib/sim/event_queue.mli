(** A binary min-heap of timestamped events — the core of the discrete-
    event farm simulator.

    Events carry a [(time, tie)] priority: earlier times first, and among
    equal times the smaller [tie] rank first. The farm uses the tie rank to
    process period completions before owner returns at the same instant,
    matching the model convention that a period ending exactly when the
    owner reclaims still counts as completed. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> time:float -> tie:int -> 'a -> unit
(** [push q ~time ~tie e] inserts event [e]. Requires [time] finite. *)

val pop : 'a t -> (float * 'a) option
(** [pop q] removes and returns the earliest event (breaking time ties by
    the lower [tie], then insertion order) or [None] when empty. *)

val peek_time : 'a t -> float option
(** [peek_time q] is the earliest timestamp without removing it. *)
