(** Execution of one cycle-stealing episode against a concrete reclaim
    time — the draconian contract of §1 made operational.

    Workstation A supplies workstation B with one bundle of work per
    period. A period of length [t] starting at [τ] completes iff the owner
    has not reclaimed B strictly before [τ + t]; completion banks [t ⊖ c]
    work. Reclaim kills the in-flight period: its work is lost, and the
    episode ends. This module replays a schedule against a given reclaim
    time and produces a full accounting, which the Monte-Carlo layer
    averages and the farm composes. *)

type outcome = {
  work_done : float;  (** Banked work: [Σ (t_i ⊖ c)] over completed periods. *)
  work_lost : float;
      (** Productive time in flight when the kill arrived ([0] if the
          schedule ran to completion). *)
  overhead : float;  (** Communication time spent, [c] per started period. *)
  periods_completed : int;
  interrupted : bool;  (** [true] iff the owner reclaimed mid-period. *)
  elapsed : float;
      (** Episode wall-clock: reclaim time if interrupted, else the
          schedule's total duration. *)
}

val run :
  ?obs:Obs.t -> ?ws:int -> ?ep:int ->
  Schedule.t -> c:float -> reclaim_at:float -> outcome
(** [run s ~c ~reclaim_at] replays the schedule. A period completing
    exactly at the reclaim instant is counted as completed, matching the
    paper's convention that work is lost only when B is reclaimed {e
    before} the period's end ([p(T_i)] is the probability of surviving
    {e to} [T_i]). Requires [c >= 0] and [reclaim_at >= 0].

    [?obs] (default {!Obs.disabled}) attaches observability: with a
    consuming sink the replay emits [Episode_started],
    [Period_dispatched], [Period_completed] / [Period_killed],
    [Owner_returned] (iff interrupted) and [Episode_finished] events,
    stamped with episode-relative times and the [?ws] / [?ep] identity
    (defaults 0, used by the Monte-Carlo and farm layers); with a metrics
    registry it maintains [episode.*] counters and histograms. The
    accounting itself is untouched: results are bit-identical with and
    without [?obs]. *)

val work_if_reclaimed_at : Schedule.t -> c:float -> float -> float
(** [work_if_reclaimed_at s ~c t] is just the banked work of {!run} — the
    deterministic work function [W_S(t)] whose expectation under [p] is
    eq. 2.1. Exposed separately because tests integrate it directly against
    the life function density as an independent check of
    {!Schedule.expected_work}. *)
