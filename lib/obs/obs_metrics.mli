(** A zero-dependency metrics registry: named counters, gauges, and
    log-scale histograms with quantile extraction, plus a monotonic-clock
    span timer.

    Hot paths hold direct references to their instruments (one registry
    lookup at setup, then a field update per event); the {!Obs} facade
    adds the name-at-call-site convenience layer and the "disabled costs
    one branch" guarantee on top.

    Histograms use geometric buckets: an observation [v > 0] lands in
    bucket [⌊ln v / ln γ⌋] where [γ = (1 + α)/(1 − α)] for the registry's
    relative accuracy [α] (default 1%), so {!quantile} answers are exact
    in rank and within relative error [α] in value — the DDSketch
    guarantee. Buckets live in one dense, preallocated [int array]
    spanning the observed index range (proportional to the log of the
    dynamic range, not to the observation count), grown geometrically on
    range extension; together with a one-slot bucket-index memo for
    repeated values, {!observe} allocates nothing on the hot path. Exact
    zeros are counted separately; [min]/[max]/[sum] are tracked
    exactly. *)

type t
(** A registry. Instruments are created on first use of a name; a name
    denotes one kind of instrument for the registry's lifetime. *)

type counter
type gauge
type histogram

val create : ?accuracy:float -> unit -> t
(** [create ()] is an empty registry. [accuracy] (default [0.01]) is the
    relative quantile error of histograms subsequently created in it.
    Requires [0 < accuracy < 1]. *)

(** {1 Counters} *)

val counter : t -> string -> counter
(** Find-or-create. @raise Invalid_argument if [name] exists as another
    instrument kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

(** {1 Gauges} *)

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float
(** Last value set; [nan] before the first {!set}. *)

(** {1 Histograms} *)

val histogram : t -> string -> histogram

val observe : histogram -> float -> unit
(** @raise Invalid_argument on negative or non-finite values. *)

val n_observations : histogram -> int
val sum : histogram -> float

val mean : histogram -> float
(** [nan] when empty. *)

val quantile : histogram -> q:float -> float
(** Linearly ranked [q]-quantile over the bucketed observations, within
    the registry's relative accuracy; answers are clamped to the exact
    observed [[min, max]], and [q = 0] / [q = 1] return those exact
    extremes. Requires [0 <= q <= 1].
    @raise Invalid_argument on an empty histogram or [q] out of range. *)

val hist_min : histogram -> float
val hist_max : histogram -> float
(** Exact extremes; [nan] when empty. *)

(** {1 Merging} *)

val accuracy : t -> float
(** The relative quantile accuracy the registry was created with. *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds every instrument of [src] into [into],
    find-or-creating by name: counters add, gauges take [src]'s value
    when it has ever been set, histograms add bucket-by-bucket (exact in
    rank — both registries must have the same {!accuracy}, or the merge
    raises [Invalid_argument]). [src] is left untouched. The parallel
    execution layer gives each worker chunk a private registry and merges
    them through this in chunk-index order, so metrics stay race-free and
    deterministic for any domain count. *)

(** {1 Span timer} *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t name f] runs [f ()] and observes its duration in seconds
    ({!Obs_clock}) into histogram [name]. Exceptions propagate; the span
    is recorded either way. *)

(** {1 Snapshots} *)

type hist_stats = {
  hs_count : int;
  hs_sum : float;
  hs_mean : float;
  hs_min : float;
  hs_max : float;
  hs_p50 : float;
  hs_p95 : float;
  hs_p99 : float;
}
(** Frozen summary of one histogram; the float fields are [nan] when the
    histogram was empty. *)

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_histograms : (string * hist_stats) list;
}
(** Immutable, name-sorted copy of a registry's state at one instant —
    the unit {!Obs_snapshot} rings buffer and {!Obs_export.prometheus}
    renders. *)

val snapshot : t -> snapshot
(** Freeze the registry's current state. O(instruments); the registry
    keeps running. *)

val snapshot_to_json : snapshot -> Jsonx.t
(** Same shape as {!to_json} but with p95 instead of p90 (the cstrace
    timeline vocabulary). *)

val snapshot_of_json : Jsonx.t -> (snapshot, string) result
(** Inverse of {!snapshot_to_json}; non-finite stats (serialized as
    [null]) come back as [nan]. *)

(** {1 Export} *)

val to_json : t -> Jsonx.t
(** Self-describing snapshot: [{"counters": {...}, "gauges": {...},
    "histograms": {name: {n, sum, mean, min, max, p50, p90, p99}}}],
    keys sorted. *)

val pp : Format.formatter -> t -> unit
(** Deterministic (name-sorted) human-readable dump, one instrument per
    line, prefixed [counter]/[gauge]/[hist]. *)
