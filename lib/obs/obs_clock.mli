(** A monotonic (non-decreasing) wall-clock for span timing.

    The container's toolchain carries no monotonic-clock binding, so this
    clock is built on [Unix.gettimeofday] with a high-water-mark clamp: a
    backwards step of the system clock freezes the reading rather than
    producing a negative span. Resolution is therefore microseconds, and
    readings are comparable only within one process — exactly what the
    {!Obs_metrics} span timer needs and nothing more. *)

val now : unit -> float
(** Seconds since the epoch, clamped to be non-decreasing across calls
    within this process. *)

val elapsed_since : float -> float
(** [elapsed_since t0] is [max 0 (now () - t0)]. *)
