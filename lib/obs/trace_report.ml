type ws_summary = {
  ws : int;
  episodes : int;
  periods_completed : int;
  periods_killed : int;
  work_done : float;
  work_lost : float;
  overhead : float;
}

type t = {
  events : int;
  sources : string list;
  plans : (string * float * int * float) list;
  episodes_started : int;
  episodes_finished : int;
  episodes_interrupted : int;
  periods_dispatched : int;
  periods_completed : int;
  periods_killed : int;
  total_done : float;
  total_lost : float;
  total_overhead : float;
  pool_drained_at : float option;
  per_ws : ws_summary list;
  period_lengths : float array;
  episode_durations : float array;
}

(* Mutable per-workstation accumulator; sums are compensated so the
   round-trip against the simulator's Kahan totals is tight. *)
type ws_acc = {
  mutable a_episodes : int;
  mutable a_completed : int;
  mutable a_killed : int;
  a_done : Kahan.t;
  a_lost : Kahan.t;
  a_overhead : Kahan.t;
}

let of_events events =
  let ws_tbl : (int, ws_acc) Hashtbl.t = Hashtbl.create 8 in
  let acc ws =
    match Hashtbl.find_opt ws_tbl ws with
    | Some a -> a
    | None ->
        let a =
          {
            a_episodes = 0;
            a_completed = 0;
            a_killed = 0;
            a_done = Kahan.create ();
            a_lost = Kahan.create ();
            a_overhead = Kahan.create ();
          }
        in
        Hashtbl.replace ws_tbl ws a;
        a
  in
  let starts : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  let sources = ref [] in
  let plans = ref [] in
  let n = ref 0 in
  let started = ref 0 and finished = ref 0 and interrupted = ref 0 in
  let dispatched = ref 0 in
  let drained = ref None in
  let period_lengths = ref [] in
  let durations = ref [] in
  List.iter
    (fun ev ->
      Stdlib.incr n;
      match (ev : Obs_event.t) with
      | Run_started { source; _ } ->
          if not (List.mem source !sources) then sources := source :: !sources
      | Run_finished _ -> ()
      | Plan_computed { source; t0; periods; expected_work; _ } ->
          plans := (source, t0, periods, expected_work) :: !plans
      | Episode_started { time; ws; ep } ->
          Stdlib.incr started;
          (acc ws).a_episodes <- (acc ws).a_episodes + 1;
          Hashtbl.replace starts (ws, ep) time
      | Episode_finished { time; ws; ep; interrupted = i; _ } ->
          Stdlib.incr finished;
          if i then Stdlib.incr interrupted;
          (match Hashtbl.find_opt starts (ws, ep) with
          | Some t0 -> durations := (time -. t0) :: !durations
          | None -> ())
      | Period_dispatched { period; _ } ->
          Stdlib.incr dispatched;
          period_lengths := period :: !period_lengths
      | Period_completed { ws; banked; overhead; _ } ->
          let a = acc ws in
          a.a_completed <- a.a_completed + 1;
          Kahan.add a.a_done banked;
          Kahan.add a.a_overhead overhead
      | Period_killed { ws; lost; overhead; _ } ->
          let a = acc ws in
          a.a_killed <- a.a_killed + 1;
          Kahan.add a.a_lost lost;
          Kahan.add a.a_overhead overhead
      | Owner_returned _ -> ()
      | Pool_drained { time; _ } ->
          if !drained = None then drained := Some time)
    events;
  let per_ws : ws_summary list =
    List.sort
      (fun (a : ws_summary) (b : ws_summary) -> Int.compare a.ws b.ws)
      (Hashtbl.fold
         (fun ws a rows ->
           ({
             ws;
             episodes = a.a_episodes;
             periods_completed = a.a_completed;
             periods_killed = a.a_killed;
             work_done = Kahan.total a.a_done;
             work_lost = Kahan.total a.a_lost;
             overhead = Kahan.total a.a_overhead;
           }
             : ws_summary)
           :: rows)
         ws_tbl [])
  in
  {
    events = !n;
    sources = List.rev !sources;
    plans = List.rev !plans;
    episodes_started = !started;
    episodes_finished = !finished;
    episodes_interrupted = !interrupted;
    periods_dispatched = !dispatched;
    periods_completed =
      List.fold_left (fun a (w : ws_summary) -> a + w.periods_completed) 0 per_ws;
    periods_killed =
      List.fold_left (fun a (w : ws_summary) -> a + w.periods_killed) 0 per_ws;
    total_done =
      Kahan.sum_by (fun (w : ws_summary) -> w.work_done) (Array.of_list per_ws);
    total_lost =
      Kahan.sum_by (fun (w : ws_summary) -> w.work_lost) (Array.of_list per_ws);
    total_overhead =
      Kahan.sum_by (fun (w : ws_summary) -> w.overhead) (Array.of_list per_ws);
    pool_drained_at = !drained;
    per_ws;
    period_lengths = Array.of_list (List.rev !period_lengths);
    episode_durations = Array.of_list (List.rev !durations);
  }

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let events = ref [] in
          let line_no = ref 0 in
          let err = ref None in
          (try
             while !err = None do
               let line = input_line ic in
               Stdlib.incr line_no;
               if String.trim line <> "" then
                 match Jsonx.of_string line with
                 | Error msg ->
                     err := Some (Printf.sprintf "%s:%d: %s" path !line_no msg)
                 | Ok j when Obs_meta.is_meta_json j -> (
                     (* Provenance header: validate, then skip — the
                        summary is about the events. *)
                     match Obs_meta.of_json j with
                     | Error msg ->
                         err :=
                           Some (Printf.sprintf "%s:%d: %s" path !line_no msg)
                     | Ok _ -> ())
                 | Ok j -> (
                     match Obs_event.of_json j with
                     | Error msg ->
                         err :=
                           Some (Printf.sprintf "%s:%d: %s" path !line_no msg)
                     | Ok ev -> events := ev :: !events)
             done
           with End_of_file -> ());
          match !err with
          | Some msg -> Error msg
          | None -> Ok (of_events (List.rev !events)))

let kill_rate t =
  let attempts = t.periods_completed + t.periods_killed in
  if attempts = 0 then 0.0
  else float_of_int t.periods_killed /. float_of_int attempts

let overhead_fraction t =
  let busy = t.total_done +. t.total_lost +. t.total_overhead in
  if busy <= 0.0 then 0.0 else t.total_overhead /. busy

let pp ppf t =
  let per_episode x =
    if t.episodes_started = 0 then ""
    else
      Printf.sprintf " (%.6f / episode)" (x /. float_of_int t.episodes_started)
  in
  Format.fprintf ppf "trace summary (schema v%d, %d events)@."
    Obs_event.schema_version t.events;
  if t.sources <> [] then
    Format.fprintf ppf "  source(s)     : %s@." (String.concat ", " t.sources);
  Format.fprintf ppf "  episodes      : %d started, %d finished, %d interrupted@."
    t.episodes_started t.episodes_finished t.episodes_interrupted;
  Format.fprintf ppf
    "  periods       : %d dispatched, %d completed, %d killed (kill rate \
     %.2f%%)@."
    t.periods_dispatched t.periods_completed t.periods_killed
    (100.0 *. kill_rate t);
  Format.fprintf ppf "  work done     : %.6f%s@." t.total_done
    (per_episode t.total_done);
  Format.fprintf ppf "  work lost     : %.6f%s@." t.total_lost
    (per_episode t.total_lost);
  Format.fprintf ppf "  overhead      : %.6f%s@." t.total_overhead
    (per_episode t.total_overhead);
  Format.fprintf ppf "  overhead frac : %.2f%% of busy time@."
    (100.0 *. overhead_fraction t);
  (match t.pool_drained_at with
  | Some at -> Format.fprintf ppf "  pool drained  : at t = %.6f@." at
  | None -> ());
  let quartet label xs =
    if Array.length xs > 0 then
      Format.fprintf ppf
        "  %s: min %.4f / p50 %.4f / p90 %.4f / p95 %.4f / p99 %.4f / max \
         %.4f@."
        label
        (Stats.quantile xs ~q:0.0)
        (Stats.quantile xs ~q:0.5)
        (Stats.quantile xs ~q:0.9)
        (Stats.quantile xs ~q:0.95)
        (Stats.quantile xs ~q:0.99)
        (Stats.quantile xs ~q:1.0)
  in
  quartet "period length" t.period_lengths;
  quartet "episode time " t.episode_durations;
  List.iter
    (fun (source, t0, periods, ew) ->
      Format.fprintf ppf "  plan          : %s t0=%.4f periods=%d E=%.6f@."
        source t0 periods ew)
    t.plans;
  if List.length t.per_ws > 1 then begin
    Format.fprintf ppf "  per workstation:@.";
    Format.fprintf ppf "    %-4s %9s %10s %7s %14s %14s %14s@." "ws" "episodes"
      "completed" "killed" "done" "lost" "overhead";
    List.iter
      (fun w ->
        Format.fprintf ppf "    %-4d %9d %10d %7d %14.6f %14.6f %14.6f@." w.ws
          w.episodes w.periods_completed w.periods_killed w.work_done
          w.work_lost w.overhead)
      t.per_ws
  end

(* ------------------------------------------------------------------ *)
(* Span trees                                                         *)

type span_node = {
  sn_name : string;
  sn_count : int;
  sn_total_us : float;
  sn_self_us : float;
  sn_children : span_node list;
}

let span_tree spans =
  (* Children of each span id, in creation order. *)
  let children = Hashtbl.create 64 in
  List.iter
    (fun (sp : Obs_span.span) ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt children sp.Obs_span.parent)
      in
      Hashtbl.replace children sp.Obs_span.parent (sp :: prev))
    (List.rev spans);
  (* Aggregate a sibling list: group by name (first-seen order), pool the
     groups' children, recurse. Self time is what the group's own
     durations don't pass down to children. *)
  let rec aggregate siblings =
    let order = ref [] in
    let groups = Hashtbl.create 8 in
    List.iter
      (fun (sp : Obs_span.span) ->
        if not (Hashtbl.mem groups sp.Obs_span.name) then
          order := sp.Obs_span.name :: !order;
        let total, count, kids =
          Option.value ~default:(0.0, 0, [])
            (Hashtbl.find_opt groups sp.Obs_span.name)
        in
        let own =
          Option.value ~default:[] (Hashtbl.find_opt children sp.Obs_span.id)
        in
        Hashtbl.replace groups sp.Obs_span.name
          (total +. sp.Obs_span.dur_us, count + 1, List.rev_append own kids))
      siblings;
    List.rev_map
      (fun name ->
        let total, count, kids = Hashtbl.find groups name in
        let sn_children =
          aggregate (List.sort (fun (a : Obs_span.span) b ->
               Int.compare a.Obs_span.id b.Obs_span.id) kids)
        in
        let child_total =
          Kahan.sum_list (List.map (fun c -> c.sn_total_us) sn_children)
        in
        {
          sn_name = name;
          sn_count = count;
          sn_total_us = total;
          sn_self_us = Float.max 0.0 (total -. child_total);
          sn_children;
        })
      !order
  in
  aggregate (List.filter (fun (sp : Obs_span.span) -> sp.Obs_span.parent < 0) spans)

let pp_span_tree ppf nodes =
  let us v =
    if v < 1e3 then Printf.sprintf "%.1fus" v
    else if v < 1e6 then Printf.sprintf "%.2fms" (v /. 1e3)
    else Printf.sprintf "%.3fs" (v /. 1e6)
  in
  Format.fprintf ppf "  %-42s %10s %10s %8s@." "span" "total" "self" "calls";
  let rec go indent n =
    Format.fprintf ppf "  %-42s %10s %10s %8d@."
      (String.make indent ' ' ^ n.sn_name)
      (us n.sn_total_us) (us n.sn_self_us) n.sn_count;
    List.iter (go (indent + 2)) n.sn_children
  in
  List.iter (go 0) nodes
