(** Sampled GC / allocation observability.

    The paper's borrower must act on *observed* machine behavior; the
    first observable that matters on a real workstation is the runtime
    itself — allocation pressure, promotion rate, heap growth. This
    module turns [Gc.quick_stat] deltas into ordinary {!Obs_metrics}
    instruments so resource data flows through the same snapshot ring,
    Prometheus exposition, and health rules as everything else.

    Determinism contract: samples are taken at deterministic points in
    the computation (chunk-gather boundaries, episode ends), counted in
    ticks — never driven by wall-clock. Resource values are recorded
    into the registry and snapshot ring only; they never enter the
    event trace, so the [--jobs 1] ≡ [--jobs 2] trace-diff gate is
    unaffected by the (inherently domain-count-dependent) GC numbers.

    This file is the sole sanctioned call site of [Gc.stat] /
    [Gc.quick_stat] / [Gc.counters] (cslint rule R9): [Gc.stat] walks
    the major heap, and even [quick_stat] costs enough that sampling
    must stay budgeted behind {!tick}'s [every] divisor.

    Series recorded (all under the [gc.] namespace):
    - counters [gc.samples], [gc.minor_collections],
      [gc.major_collections], [gc.compactions] — deltas since
      {!create};
    - gauges [gc.minor_words], [gc.promoted_words], [gc.major_words] —
      cumulative words allocated/promoted since {!create};
    - gauges [gc.heap_words], [gc.top_heap_words] — instantaneous
      major-heap size and high-water mark;
    - histogram [gc.promoted_words_delta] — words promoted between
      consecutive samples (clamped at 0). *)

type t
(** A sampler bound to one registry. *)

val create : ?every:int -> Obs_metrics.t -> t
(** [create ?every m] resolves the [gc.*] instruments in [m] and takes
    the baseline [Gc.quick_stat]. [every] (default 1) is the sampling
    divisor used by {!tick}: every [every]-th tick performs one
    {!sample}. @raise Invalid_argument when [every < 1]. *)

val tick : t -> unit
(** Cheap per-boundary hook: decrements a countdown and calls {!sample}
    on every [every]-th invocation. The first tick always samples. *)

val sample : t -> unit
(** Take one [Gc.quick_stat] reading unconditionally and record the
    deltas. Also resets {!tick}'s countdown. *)

val samples : t -> int
(** Number of samples taken so far (the [gc.samples] counter). *)
