(** The provenance header stamped on JSONL event traces.

    A trace is a scientific artifact; without knowing which code, seed
    and scenario produced it, two traces cannot be meaningfully compared.
    The first line of every trace written through
    {!Obs_sink.with_jsonl_file}'s [?meta] argument is one self-describing
    JSON object — [{"v":1,"type":"meta","schema":1,"git_sha":"...",
    "seed":42,"jobs":1,"scenario":"simulate ..."}] — that loaders
    ({!Trace_report.load}, {!Obs_query.load}) validate: a malformed
    header or one written under a different event schema version is a
    load error, not a silent skip. [cstrace diff] additionally refuses to
    compare traces whose recorded seeds differ (unless forced), because a
    divergence between different-seed runs is expected, not a bug. *)

type t = {
  schema : int;  (** {!Obs_event.schema_version} of the writing process. *)
  git_sha : string option;  (** Short commit hash, when a repo was visible. *)
  seed : int64 option;  (** PRNG seed of the run, when it had one. *)
  jobs : int option;  (** [--jobs] domain count; must never change results. *)
  scenario : string option;  (** Free-form description of the invocation. *)
  run_id : string option;
      (** Cross-run identity ({!Obs_store.run_id_of_meta}): the key a
          trace is filed under in a [.csobs] registry, and the
          correlation id a farm daemon stamps on the traces of the
          processes it spawns. *)
  parent_span : string option;
      (** Span path in the {e parent} process's trace that caused this
          one (e.g. ["csfarmd.dispatch;episode.run"]) — the hook for
          cross-process trace stitching. *)
}

val meta_version : int
(** Version of the header object itself (currently [1]); independent of
    the event schema it records in [schema]. *)

val make :
  ?git_sha:string ->
  ?seed:int64 ->
  ?jobs:int ->
  ?scenario:string ->
  ?run_id:string ->
  ?parent_span:string ->
  unit ->
  t
(** Build a header for the current process: [schema] is this build's
    {!Obs_event.schema_version} and [git_sha] defaults to
    {!capture_git_sha}. *)

val capture_git_sha : unit -> string option
(** [git rev-parse --short HEAD] of the working directory, or [None]
    when there is no repository (or no [git]) to ask. *)

val to_json : t -> Jsonx.t

val of_json : Jsonx.t -> (t, string) result
(** Inverse of {!to_json}. Rejects wrong ["v"], missing ["schema"], and
    a ["schema"] other than this reader's {!Obs_event.schema_version}. *)

val is_meta_json : Jsonx.t -> bool
(** Whether a parsed JSONL line claims to be a meta header
    ([.type = "meta"]) — the loaders' dispatch test, applied before the
    stricter {!of_json}. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering: schema, scenario, seed, jobs, run id, parent
    span, git sha (present fields only). *)
