(* Incremental trace tailing: byte-offset + partial-line carry over a
   growing JSONL file, feeding Obs_query.metrics_updater. *)

type t = {
  path : string;
  reg : Obs_metrics.t;
  feed : Obs_event.t -> unit;
  mutable offset : int;  (* bytes consumed so far *)
  mutable carry : string;  (* trailing partial line *)
  mutable meta : Obs_meta.t option;
  mutable events : int;
  mutable finished : bool;
  mutable errors : int;
  mutable last_error : string option;
}

let create ?accuracy ~path () =
  let reg, feed = Obs_query.metrics_updater ?accuracy () in
  {
    path;
    reg;
    feed;
    offset = 0;
    carry = "";
    meta = None;
    events = 0;
    finished = false;
    errors = 0;
    last_error = None;
  }

let note_error t msg =
  t.errors <- t.errors + 1;
  t.last_error <- Some msg

let consume_line t line =
  if String.trim line = "" then 0
  else
    match Jsonx.of_string line with
    | Error msg ->
        note_error t msg;
        0
    | Ok j when Obs_meta.is_meta_json j -> (
        match Obs_meta.of_json j with
        | Error msg ->
            note_error t msg;
            0
        | Ok m ->
            if t.meta = None then t.meta <- Some m
            else note_error t "duplicate meta header";
            0)
    | Ok j -> (
        match Obs_event.of_json j with
        | Error msg ->
            note_error t msg;
            0
        | Ok ev ->
            t.feed ev;
            t.events <- t.events + 1;
            (match ev with
            | Obs_event.Run_finished _ -> t.finished <- true
            | _ -> ());
            1)

(* Split [carry ^ fresh] on newlines: every segment before the final
   '\n' is a complete line; whatever follows it is the new carry. *)
let consume_bytes t fresh =
  let data = t.carry ^ fresh in
  match String.rindex_opt data '\n' with
  | None ->
      t.carry <- data;
      0
  | Some last_nl ->
      t.carry <-
        String.sub data (last_nl + 1) (String.length data - last_nl - 1);
      let complete = String.sub data 0 last_nl in
      String.split_on_char '\n' complete
      |> List.fold_left (fun n line -> n + consume_line t line) 0

let poll t =
  match open_in_bin t.path with
  | exception Sys_error _ -> 0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          if len <= t.offset then 0
          else begin
            seek_in ic t.offset;
            let fresh = really_input_string ic (len - t.offset) in
            t.offset <- len;
            consume_bytes t fresh
          end)

let registry t = t.reg
let meta t = t.meta
let events_seen t = t.events
let finished t = t.finished
let parse_errors t = t.errors
let last_error t = t.last_error

let health t ~rules =
  Obs_health.evaluate ~rules [ (None, Obs_metrics.snapshot t.reg) ]

let render ?(rules = []) t =
  let snap = Obs_metrics.snapshot t.reg in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "watch %s — %d event(s), %s%s" t.path t.events
    (if t.finished then "finished" else "running")
    (if t.errors = 0 then ""
     else Printf.sprintf ", %d parse error(s)" t.errors);
  (match t.meta with
  | Some m -> line "meta: %s" (Format.asprintf "%a" Obs_meta.pp m)
  | None -> ());
  if snap.Obs_metrics.snap_counters <> [] then begin
    line "counters:";
    List.iter
      (fun (name, v) -> line "  %-28s %d" name v)
      snap.Obs_metrics.snap_counters
  end;
  if snap.Obs_metrics.snap_gauges <> [] then begin
    line "gauges:";
    List.iter
      (fun (name, v) -> line "  %-28s %g" name v)
      snap.Obs_metrics.snap_gauges
  end;
  if snap.Obs_metrics.snap_histograms <> [] then begin
    line "histograms:";
    List.iter
      (fun (name, (hs : Obs_metrics.hist_stats)) ->
        line "  %-28s n=%d mean=%g p50=%g p95=%g p99=%g" name hs.hs_count
          hs.hs_mean hs.hs_p50 hs.hs_p95 hs.hs_p99)
      snap.Obs_metrics.snap_histograms
  end;
  if rules <> [] then begin
    let report = Obs_health.evaluate ~rules [ (None, snap) ] in
    Buffer.add_string buf (Format.asprintf "%a" Obs_health.pp_report report)
  end;
  Buffer.contents buf
