type counter = { c_name : string; mutable c_count : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  log_gamma : float;  (** ln of the bucket growth factor. *)
  inv_log_gamma : float;  (** [1 / log_gamma], so bucketing multiplies. *)
  mutable base : int;  (** Bucket index of [counts.(0)]. *)
  mutable counts : int array;
      (** Dense per-bucket counts for indices [base .. base+len-1];
          [[||]] until the first positive observation. Preallocated and
          grown geometrically, so the observe hot path allocates
          nothing. *)
  mutable memo_v : float;  (** Last positive value bucketed … *)
  mutable memo_i : int;  (** … and its bucket index. *)
  mutable zeros : int;  (** Observations of exactly 0. *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = {
  instruments : (string, instrument) Hashtbl.t;
  accuracy : float;
}

let create ?(accuracy = 0.01) () =
  if not (accuracy > 0.0 && accuracy < 1.0) then
    invalid_arg "Obs_metrics.create: accuracy must be in (0, 1)";
  { instruments = Hashtbl.create 16; accuracy }

let kind_error name want =
  invalid_arg
    (Printf.sprintf "Obs_metrics: %S already registered as a non-%s" name want)

let counter t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (Counter c) -> c
  | Some _ -> kind_error name "counter"
  | None ->
      let c = { c_name = name; c_count = 0 } in
      Hashtbl.replace t.instruments name (Counter c);
      c

let incr c = c.c_count <- c.c_count + 1
let add c n = c.c_count <- c.c_count + n
let count c = c.c_count

let gauge t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (Gauge g) -> g
  | Some _ -> kind_error name "gauge"
  | None ->
      let g = { g_name = name; g_value = Float.nan } in
      Hashtbl.replace t.instruments name (Gauge g);
      g

let set g v = g.g_value <- v
let gauge_value g = g.g_value

let histogram t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (Histogram h) -> h
  | Some _ -> kind_error name "histogram"
  | None ->
      let gamma = (1.0 +. t.accuracy) /. (1.0 -. t.accuracy) in
      let log_gamma = log gamma in
      let h =
        {
          h_name = name;
          log_gamma;
          inv_log_gamma = 1.0 /. log_gamma;
          base = 0;
          counts = [||];
          memo_v = Float.nan;
          memo_i = 0;
          zeros = 0;
          h_count = 0;
          h_sum = 0.0;
          h_min = Float.infinity;
          h_max = Float.neg_infinity;
        }
      in
      Hashtbl.replace t.instruments name (Histogram h);
      h

let bucket_index h v = int_of_float (Float.floor (log v *. h.inv_log_gamma))

(* Regrow [h.counts] to cover bucket index [i]. Rare: the span of live
   indices is the log of the value range (~700 buckets for six decades at
   1% accuracy), and each growth at least doubles coverage. *)
let grow h i =
  let pad = 16 in
  let len = Array.length h.counts in
  if len = 0 then begin
    h.base <- i - pad;
    h.counts <- Array.make ((2 * pad) + 1) 0
  end
  else begin
    let lo = Stdlib.min h.base (i - len - pad) in
    let hi = Stdlib.max (h.base + len) (i + len + pad + 1) in
    let counts = Array.make (hi - lo) 0 in
    Array.blit h.counts 0 counts (h.base - lo) len;
    h.counts <- counts;
    h.base <- lo
  end

let observe h v =
  if not (Float.is_finite v) || v < 0.0 then
    invalid_arg "Obs_metrics.observe: value must be finite and >= 0";
  if Tol.exactly v 0.0 then h.zeros <- h.zeros + 1
  else begin
    (* Episodes replay the same schedule, so consecutive observations
       repeat a handful of values; one memo slot skips the [log] for
       them. [v] is finite here, so a NaN memo (the initial state) never
       matches. *)
    let i =
      if Tol.exactly v h.memo_v then h.memo_i
      else begin
        let i = bucket_index h v in
        h.memo_v <- v;
        h.memo_i <- i;
        i
      end
    in
    if i < h.base || i - h.base >= Array.length h.counts then grow h i;
    let off = i - h.base in
    h.counts.(off) <- h.counts.(off) + 1
  end;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let n_observations h = h.h_count
let sum h = h.h_sum
let mean h = if h.h_count = 0 then Float.nan else h.h_sum /. float_of_int h.h_count
let hist_min h = if h.h_count = 0 then Float.nan else h.h_min
let hist_max h = if h.h_count = 0 then Float.nan else h.h_max

let quantile h ~q =
  if h.h_count = 0 then invalid_arg "Obs_metrics.quantile: empty histogram";
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Obs_metrics.quantile: q must be in [0, 1]";
  (* The rank the q-quantile occupies among the sorted observations; the
     answer is the representative of the bucket holding that rank. The
     extreme ranks are tracked exactly, so answer them exactly. *)
  let rank = q *. float_of_int (h.h_count - 1) in
  let clamp v = Float.min h.h_max (Float.max h.h_min v) in
  if Tol.exactly q 0.0 then h.h_min
  else if Tol.exactly q 1.0 then h.h_max
  else if rank < float_of_int h.zeros then clamp 0.0
  else begin
    (* The dense array is already in bucket-index order. *)
    let cum = ref h.zeros in
    let result = ref h.h_max in
    (try
       Array.iteri
         (fun off n ->
           if n > 0 then begin
             cum := !cum + n;
             if float_of_int !cum > rank then begin
               (* Geometric midpoint of [γ^k, γ^{k+1}). *)
               let k = h.base + off in
               result := exp (h.log_gamma *. (float_of_int k +. 0.5));
               raise Exit
             end
           end)
         h.counts
     with Exit -> ());
    clamp !result
  end

let accuracy t = t.accuracy

let time t name f =
  let h = histogram t name in
  let t0 = Obs_clock.now () in
  Fun.protect
    ~finally:(fun () -> observe h (Obs_clock.elapsed_since t0))
    f

(* ------------------------------------------------------------------ *)
(* Export                                                             *)

let sorted_instruments t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.instruments [])

(* Merging histograms bucket-by-bucket is exact in rank: both registries
   must use the same gamma (checked below), so bucket index k means the
   same value interval in both. *)
let merge_histogram ~into:hd h =
  if not (Tol.exactly hd.log_gamma h.log_gamma) then
    invalid_arg
      (Printf.sprintf "Obs_metrics.merge: histogram %S accuracy mismatch"
         h.h_name);
  let len = Array.length h.counts in
  if len > 0 then begin
    (* Ensure [hd.counts] covers the source index range, then add. *)
    if Array.length hd.counts = 0 then grow hd h.base;
    if h.base < hd.base then grow hd h.base;
    if h.base + len - 1 - hd.base >= Array.length hd.counts then
      grow hd (h.base + len - 1);
    for off = 0 to len - 1 do
      let n = h.counts.(off) in
      if n > 0 then begin
        let o = h.base + off - hd.base in
        hd.counts.(o) <- hd.counts.(o) + n
      end
    done
  end;
  hd.zeros <- hd.zeros + h.zeros;
  hd.h_count <- hd.h_count + h.h_count;
  hd.h_sum <- hd.h_sum +. h.h_sum;
  if h.h_min < hd.h_min then hd.h_min <- h.h_min;
  if h.h_max > hd.h_max then hd.h_max <- h.h_max

let merge ~into src =
  List.iter
    (fun (name, inst) ->
      match inst with
      | Counter c -> add (counter into name) c.c_count
      | Gauge g ->
          if not (Float.is_nan g.g_value) then set (gauge into name) g.g_value
      | Histogram h -> merge_histogram ~into:(histogram into name) h)
    (sorted_instruments src)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                          *)

type hist_stats = {
  hs_count : int;
  hs_sum : float;
  hs_mean : float;
  hs_min : float;
  hs_max : float;
  hs_p50 : float;
  hs_p95 : float;
  hs_p99 : float;
}

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_histograms : (string * hist_stats) list;
}

let hist_stats h =
  let q p = if h.h_count = 0 then Float.nan else quantile h ~q:p in
  {
    hs_count = h.h_count;
    hs_sum = h.h_sum;
    hs_mean = mean h;
    hs_min = hist_min h;
    hs_max = hist_max h;
    hs_p50 = q 0.5;
    hs_p95 = q 0.95;
    hs_p99 = q 0.99;
  }

let snapshot t =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (fun (name, inst) ->
      match inst with
      | Counter c -> counters := (name, c.c_count) :: !counters
      | Gauge g -> gauges := (name, g.g_value) :: !gauges
      | Histogram h -> hists := (name, hist_stats h) :: !hists)
    (List.rev (sorted_instruments t));
  {
    snap_counters = !counters;
    snap_gauges = !gauges;
    snap_histograms = !hists;
  }

let snapshot_to_json s =
  Jsonx.Obj
    [
      ( "counters",
        Jsonx.Obj (List.map (fun (n, c) -> (n, Jsonx.Int c)) s.snap_counters) );
      ( "gauges",
        Jsonx.Obj (List.map (fun (n, g) -> (n, Jsonx.Float g)) s.snap_gauges) );
      ( "histograms",
        Jsonx.Obj
          (List.map
             (fun (n, h) ->
               ( n,
                 Jsonx.Obj
                   [
                     ("n", Jsonx.Int h.hs_count);
                     ("sum", Jsonx.Float h.hs_sum);
                     ("mean", Jsonx.Float h.hs_mean);
                     ("min", Jsonx.Float h.hs_min);
                     ("max", Jsonx.Float h.hs_max);
                     ("p50", Jsonx.Float h.hs_p50);
                     ("p95", Jsonx.Float h.hs_p95);
                     ("p99", Jsonx.Float h.hs_p99);
                   ] ))
             s.snap_histograms) );
    ]

let snapshot_of_json j =
  let ( let* ) = Result.bind in
  let obj name =
    match Jsonx.member name j with
    | Some (Jsonx.Obj fields) -> Ok fields
    | Some _ -> Error (Printf.sprintf "snapshot: %S is not an object" name)
    | None -> Error (Printf.sprintf "snapshot: missing %S" name)
  in
  (* Non-finite floats serialize as JSON null; read them back as nan so
     an empty histogram round-trips. *)
  let num name h =
    match Jsonx.member name h with
    | Some Jsonx.Null -> Ok Float.nan
    | Some v -> (
        match Jsonx.get_float v with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "snapshot: %S is not a number" name))
    | None -> Error (Printf.sprintf "snapshot: missing %S" name)
  in
  let* counters = obj "counters" in
  let* gauges = obj "gauges" in
  let* hists = obj "histograms" in
  let* snap_counters =
    List.fold_left
      (fun acc (n, v) ->
        let* acc = acc in
        match Jsonx.get_int v with
        | Some c -> Ok ((n, c) :: acc)
        | None -> Error (Printf.sprintf "snapshot: counter %S not an int" n))
      (Ok []) counters
  in
  let* snap_gauges =
    List.fold_left
      (fun acc (n, v) ->
        let* acc = acc in
        match v with
        | Jsonx.Null -> Ok ((n, Float.nan) :: acc)
        | _ -> (
            match Jsonx.get_float v with
            | Some g -> Ok ((n, g) :: acc)
            | None ->
                Error (Printf.sprintf "snapshot: gauge %S not a number" n)))
      (Ok []) gauges
  in
  let* snap_histograms =
    List.fold_left
      (fun acc (n, v) ->
        let* acc = acc in
        let* hs_count =
          match Option.bind (Jsonx.member "n" v) Jsonx.get_int with
          | Some c -> Ok c
          | None -> Error (Printf.sprintf "snapshot: histogram %S missing n" n)
        in
        let* hs_sum = num "sum" v in
        let* hs_mean = num "mean" v in
        let* hs_min = num "min" v in
        let* hs_max = num "max" v in
        let* hs_p50 = num "p50" v in
        let* hs_p95 = num "p95" v in
        let* hs_p99 = num "p99" v in
        Ok
          ((n, { hs_count; hs_sum; hs_mean; hs_min; hs_max; hs_p50; hs_p95;
                 hs_p99 })
          :: acc))
      (Ok []) hists
  in
  Ok
    {
      snap_counters = List.rev snap_counters;
      snap_gauges = List.rev snap_gauges;
      snap_histograms = List.rev snap_histograms;
    }

let hist_summary_fields h =
  [
    ("n", Jsonx.Int h.h_count);
    ("sum", Jsonx.Float h.h_sum);
    ("mean", Jsonx.Float (mean h));
    ("min", Jsonx.Float (hist_min h));
    ("max", Jsonx.Float (hist_max h));
    ("p50", Jsonx.Float (if h.h_count = 0 then Float.nan else quantile h ~q:0.5));
    ("p90", Jsonx.Float (if h.h_count = 0 then Float.nan else quantile h ~q:0.9));
    ("p99", Jsonx.Float (if h.h_count = 0 then Float.nan else quantile h ~q:0.99));
  ]

let to_json t =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (fun (name, inst) ->
      match inst with
      | Counter c -> counters := (name, Jsonx.Int c.c_count) :: !counters
      | Gauge g -> gauges := (name, Jsonx.Float g.g_value) :: !gauges
      | Histogram h ->
          hists := (name, Jsonx.Obj (hist_summary_fields h)) :: !hists)
    (List.rev (sorted_instruments t));
  Jsonx.Obj
    [
      ("counters", Jsonx.Obj !counters);
      ("gauges", Jsonx.Obj !gauges);
      ("histograms", Jsonx.Obj !hists);
    ]

let pp ppf t =
  List.iter
    (fun (name, inst) ->
      match inst with
      | Counter c -> Format.fprintf ppf "counter %s = %d@." name c.c_count
      | Gauge g -> Format.fprintf ppf "gauge   %s = %g@." name g.g_value
      | Histogram h ->
          if h.h_count = 0 then
            Format.fprintf ppf "hist    %s : empty@." name
          else
            Format.fprintf ppf
              "hist    %s : n=%d mean=%g p50=%g p90=%g p99=%g max=%g@." name
              h.h_count (mean h) (quantile h ~q:0.5) (quantile h ~q:0.9)
              (quantile h ~q:0.99) h.h_max)
    (sorted_instruments t)
