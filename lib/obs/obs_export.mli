(** Renderers from the observability layer's in-memory forms to external
    tool formats: folded stacks for flamegraphs, Prometheus text
    exposition for metrics — each paired with a validator for the exact
    grammar it emits, so tests can round-trip outputs instead of
    eyeballing them. *)

(** {1 Folded stacks}

    One line per distinct call path: [root;child;leaf 1234], weight in
    integer microseconds of {e self} time (total minus children) —
    directly consumable by [flamegraph.pl] and speedscope. *)

val folded_of_spans : Obs_span.span list -> string list
(** Aggregate self time per call path. Frame names are sanitized
    ([;] and whitespace become [_]); lines are sorted by path;
    zero-weight paths are kept, so the {e set} of stacks is
    deterministic even though the weights are wall time. *)

val validate_folded : string list -> (int, string) result
(** Check every line is [stack space integer] with non-empty
    [;]-separated frames and a non-negative weight; returns the line
    count. The error names the first offending 1-based line. *)

val spans_of_chrome : Jsonx.t -> (Obs_span.span list, string) result
(** Rebuild a span list from a Chrome trace ({!Obs_span.to_chrome_json}
    output, validated with {!Obs_span.validate_chrome} first). Parents
    are reconstructed from the depth sequence: events are in creation
    order and nest strictly, so a depth-[d] span's parent is the most
    recent depth-[d-1] span. This is how [cstrace flame] turns a
    profile file back into {!folded_of_spans} input. *)

(** {1 Prometheus text exposition}

    Counters become [<ns>_<name>_total] counter families, gauges become
    gauges, histograms become summaries with [quantile="0.5"/"0.95"/
    "0.99"] series plus [_sum] and [_count]. Metric names are sanitized
    to [[a-zA-Z0-9_:]]; non-finite values render as [NaN] / [+Inf] /
    [-Inf] per the text-format grammar. Every family gets [# HELP] and
    [# TYPE] lines. *)

val prometheus : ?namespace:string -> Obs_metrics.t -> string list
(** Render a live registry ([namespace] defaults to ["cs"]). Lines are
    in name order within each instrument class. *)

val prometheus_of_snapshot :
  ?namespace:string -> Obs_metrics.snapshot -> string list
(** Same, from a frozen {!Obs_metrics.snapshot}. *)

val escape_label_value : string -> string
(** Escape a string for use inside a label value per the text-format
    grammar: backslash, double-quote and newline become backslash
    escapes. Everything else (including UTF-8 multibyte sequences)
    passes through unchanged. *)

val prometheus_labeled :
  ?namespace:string ->
  name:string ->
  help:string ->
  typ:string ->
  ((string * string) list * float) list ->
  string list
(** One labeled metric family: [# HELP] and [# TYPE] lines followed by
    one sample per [(labels, value)] pair, label values escaped with
    {!escape_label_value} and label names sanitized like metric names.
    Used for the per-domain [cs_pool_domain_*] utilization series,
    whose label sets ([domain=0], ...) depend on the run
    configuration rather than the registry. *)

val validate_prometheus : string list -> (int, string) result
(** Check the lines against the exposition grammar: well-formed
    [# HELP] / [# TYPE] comments, known types, metric and label names
    matching [[a-zA-Z_:][a-zA-Z0-9_:]*], label values with well-formed
    backslash escapes (scanned escape-aware, so escaped quotes and
    commas inside values are handled), parsable values, and every
    sample preceded by a [# TYPE] for its family ([_sum] / [_count]
    resolve to their summary's family). Returns the sample count (not
    counting comments). The error names the first offending 1-based
    line. *)
