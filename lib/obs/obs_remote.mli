(** A remote {!Obs_sink.t}: stream events to a live collector.

    Instrumented code must never block on the network — a simulation's
    timing (and the determinism contract behind [cstrace diff]) cannot
    depend on a collector's health. [emit] therefore only pushes into
    a bounded in-memory ring; a dedicated sender thread drains the
    ring over a unix/TCP socket speaking the {!Obs_stream} protocol,
    reconnecting with capped exponential backoff and re-announcing
    itself with a fresh HELLO on every connection.

    Delivery is at-most-once with explicit accounting: an event that
    arrives while the ring is full, or that hits a dead connection, is
    counted in {!stats}' [dropped] rather than retried or waited for.
    The producer's cumulative drop counter also rides to the collector
    in heartbeat and BYE frames, so the stored trace knows it is
    incomplete even when the producer never reports locally. *)

type t

val create :
  ?capacity:int ->
  ?max_backoff_s:float ->
  addr:Obs_http.addr ->
  meta:Obs_meta.t ->
  unit ->
  t
(** Start the sender thread. [capacity] bounds the ring (default
    65536 events — deep enough that a local collector never drops);
    [max_backoff_s] caps the reconnect backoff (default 1.0s,
    starting at 50ms and doubling). [meta] is the provenance header
    announced in every HELLO. *)

val sink : t -> Obs_sink.t
(** The non-blocking sink to hand to instrumented code (typically
    teed with a local [Jsonl] sink via {!Obs_sink.tee}). Emitting
    after {!close} counts the event as dropped. *)

val addr : t -> Obs_http.addr

val close : t -> unit
(** Flush: wake the sender, let it drain the ring, send BYE on a live
    connection, and join the thread. If the collector is unreachable
    the remaining connect attempts are bounded, the undelivered queue
    is counted as dropped, and close still returns. Idempotent. *)

type stats = { sent : int; dropped : int; hellos : int }
(** [sent] events delivered to a connection; [dropped] events lost to
    ring overflow, dead connections, or an unreachable collector at
    close; [hellos] connections established (>1 means reconnects). *)

val stats : t -> stats
