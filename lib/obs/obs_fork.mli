(** Scatter/gather for observability handles across parallel chunks.

    The parallel execution layer ({!Domain_pool}) runs chunks of work on
    several domains at once, but {!Obs_metrics} registries, {!Obs_span}
    recorders, and event sinks are single-domain mutable structures. This
    module resolves the tension without locks: {!scatter} hands each
    chunk a {e private} child handle (fresh registry at the parent's
    accuracy, fresh recorder, event buffer), and {!gather} folds the
    children back into the parent {e in chunk-index order} after the
    join. The merged result is therefore identical for any domain count —
    the same determinism contract the rest of the layer keeps.

    When the parent is {!Obs.disabled} (or carries no sink, registry, or
    recorder), all children alias one shared disabled handle and
    {!gather} is a no-op, so uninstrumented runs pay nothing. *)

type children
(** The scattered child handles plus what {!gather} needs to fold them
    back. Use each child on at most one domain at a time. *)

val scatter : Obs.t -> n:int -> children
(** [scatter obs ~n] prepares [n] private child handles mirroring the
    shape of [obs]: a child has a metrics registry iff [obs] does (same
    accuracy), a span recorder iff [obs] does, and an event buffer iff
    [obs] is tracing. Requires [n >= 0]. *)

val child : children -> int -> Obs.t
(** The handle chunk [i] must use. *)

val gather : Obs.t -> children -> unit
(** Fold every child back into [obs], in chunk-index order: buffered
    events are replayed into the parent sink, registries are merged with
    {!Obs_metrics.merge}, recorders grafted with {!Obs_span.absorb}
    (under the parent's innermost open span, so wrap the parallel region
    in a span to group its chunks). Call once, after all chunks have
    finished; [obs] must be the same handle given to {!scatter}. *)

val gather_one : Obs.t -> children -> int -> unit
(** Fold child [i] back, alone. For incremental gathering — the caller
    must still visit every child exactly once, in index order, after the
    chunk has finished running; used by {!Monte_carlo.estimate} to
    interleave snapshot ticks with chunk merges. [gather] is the
    all-at-once form. Errors from the parent sink (a closed channel, a
    raising [Custom]) propagate — a failed write is an error, not a
    silent drop. *)
