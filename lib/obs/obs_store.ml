type t = { root : string }
type kind = Trace | Snapshots | Bench

type record = {
  id : string;
  kind : kind;
  file : string;
  git_sha : string option;
  seed : int64 option;
  scenario : string option;
}

let default_root = ".csobs"
let root t = t.root
let index_version = 1

let kind_to_string = function
  | Trace -> "trace"
  | Snapshots -> "snapshots"
  | Bench -> "bench"

let kind_of_string = function
  | "trace" -> Ok Trace
  | "snapshots" -> Ok Snapshots
  | "bench" -> Ok Bench
  | s -> Error (Printf.sprintf "unknown artifact kind %S" s)

(* The stored filename is fixed per kind so re-adding a run's artifact
   lands on the same path — the path is part of the address. *)
let kind_filename = function
  | Trace -> "trace.jsonl"
  | Snapshots -> "snapshots.jsonl"
  | Bench -> "bench.json"

let run_id_of_meta (m : Obs_meta.t) =
  let part = function Some s -> s | None -> "-" in
  let key =
    String.concat "\x00"
      [
        part m.git_sha;
        part (Option.map Int64.to_string m.seed);
        part m.scenario;
      ]
  in
  String.sub (Digest.to_hex (Digest.string key)) 0 12

let mkdir_p path =
  let rec go p =
    if p = "" || p = "." || p = "/" || Sys.file_exists p then ()
    else begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let open_store ?(root = default_root) () =
  if Sys.file_exists root && not (Sys.is_directory root) then
    Error (Printf.sprintf "%s exists and is not a directory" root)
  else begin
    mkdir_p (Filename.concat root "runs");
    Ok { root }
  end

let index_path t = Filename.concat t.root "index.jsonl"

(* ------------------------------------------------------------------ *)
(* Ledger lines                                                        *)

let record_to_json r =
  let opt name f = function Some v -> [ (name, f v) ] | None -> [] in
  Jsonx.Obj
    (("v", Jsonx.Int index_version)
    :: ("type", Jsonx.String "add")
    :: ("id", Jsonx.String r.id)
    :: ("kind", Jsonx.String (kind_to_string r.kind))
    :: ("file", Jsonx.String r.file)
    :: (opt "git_sha" (fun s -> Jsonx.String s) r.git_sha
       @ opt "seed" (fun s -> Jsonx.Int (Int64.to_int s)) r.seed
       @ opt "scenario" (fun s -> Jsonx.String s) r.scenario))

let tombstone_to_json id =
  Jsonx.Obj
    [
      ("v", Jsonx.Int index_version);
      ("type", Jsonx.String "rm");
      ("id", Jsonx.String id);
    ]

type ledger_line = Add of record | Rm of string

let ledger_line_of_json j =
  let ( let* ) = Result.bind in
  let str name = Option.bind (Jsonx.member name j) Jsonx.get_string in
  let int name = Option.bind (Jsonx.member name j) Jsonx.get_int in
  let* () =
    match int "v" with
    | Some v when v = index_version -> Ok ()
    | Some v -> Error (Printf.sprintf "unsupported index version %d" v)
    | None -> Error "missing or ill-typed field \"v\""
  in
  let* id =
    match str "id" with
    | Some id -> Ok id
    | None -> Error "missing or ill-typed field \"id\""
  in
  match str "type" with
  | Some "rm" -> Ok (Rm id)
  | Some "add" ->
      let* kind =
        match str "kind" with
        | Some k -> kind_of_string k
        | None -> Error "missing or ill-typed field \"kind\""
      in
      let* file =
        match str "file" with
        | Some f -> Ok f
        | None -> Error "missing or ill-typed field \"file\""
      in
      Ok
        (Add
           {
             id;
             kind;
             file;
             git_sha = str "git_sha";
             seed = Option.map Int64.of_int (int "seed");
             scenario = str "scenario";
           })
  | Some other -> Error (Printf.sprintf "unknown index line type %S" other)
  | None -> Error "missing or ill-typed field \"type\""

let append_line t json =
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 (index_path t)
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Jsonx.to_string json);
      output_char oc '\n')

let fold_ledger t =
  let path = index_path t in
  if not (Sys.file_exists path) then Ok []
  else
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go line_no acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | "" -> go (line_no + 1) acc
          | line -> (
              match
                Result.bind (Jsonx.of_string line) ledger_line_of_json
              with
              | Error msg ->
                  Error (Printf.sprintf "%s:%d: %s" path line_no msg)
              | Ok l -> go (line_no + 1) (l :: acc))
        in
        go 1 [])

(* Fold the ledger into the live view: tombstones erase every record of
   their id; a re-add of the same (id, kind) supersedes the earlier
   record but keeps its original position, so [ls] order reflects when a
   run first entered the store, not when it was last refreshed. *)
let live lines =
  let rec go acc = function
    | [] -> List.rev acc
    | Rm id :: rest -> go (List.filter (fun r -> r.id <> id) acc) rest
    | Add r :: rest ->
        let acc =
          if List.exists (fun r' -> r'.id = r.id && r'.kind = r.kind) acc
          then
            List.map
              (fun r' ->
                if r'.id = r.id && r'.kind = r.kind then r else r')
              acc
          else r :: acc
        in
        go acc rest
  in
  go [] lines

let ls t = Result.map live (fold_ledger t)

let find t ~id =
  Result.map (List.filter (fun r -> r.id = id)) (ls t)

let find_by_sha t ~git_sha =
  Result.map (List.filter (fun r -> r.git_sha = Some git_sha)) (ls t)

let artifact_path t r = Filename.concat t.root r.file

(* ------------------------------------------------------------------ *)
(* add                                                                 *)

(* First provenance header in a JSONL artifact, scanned without loading
   the (possibly large) body. Unparseable lines just don't match — the
   artifact's own loader owns strictness; the store only needs the id. *)
let scan_meta path =
  let ic = try Some (open_in path) with Sys_error _ -> None in
  match ic with
  | None -> None
  | Some ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go () =
            match input_line ic with
            | exception End_of_file -> None
            | line -> (
                match Jsonx.of_string line with
                | Ok j when Obs_meta.is_meta_json j -> (
                    match Obs_meta.of_json j with
                    | Ok m -> Some m
                    | Error _ -> None)
                | _ -> go ())
          in
          go ())

let copy_file ~src ~dst =
  In_channel.with_open_bin src (fun ic ->
      Out_channel.with_open_bin dst (fun oc ->
          let buf = Bytes.create 65536 in
          let rec loop () =
            let n = In_channel.input ic buf 0 (Bytes.length buf) in
            if n > 0 then begin
              Out_channel.output oc buf 0 n;
              loop ()
            end
          in
          loop ()))

let add t ?meta ~kind src =
  if not (Sys.file_exists src) then
    Error (Printf.sprintf "%s: no such file" src)
  else
    let meta =
      match meta with Some _ as m -> m | None -> scan_meta src
    in
    match meta with
    | None ->
        Error
          (Printf.sprintf
             "%s: no provenance header (Obs_meta line) — cannot derive a \
              run id"
             src)
    | Some m -> (
        let id = run_id_of_meta m in
        let rel =
          Filename.concat
            (Filename.concat "runs" id)
            (kind_filename kind)
        in
        let dst = Filename.concat t.root rel in
        mkdir_p (Filename.dirname dst);
        match copy_file ~src ~dst with
        | exception Sys_error msg -> Error msg
        | () ->
            let r =
              {
                id;
                kind;
                file = rel;
                git_sha = m.Obs_meta.git_sha;
                seed = m.Obs_meta.seed;
                scenario = m.Obs_meta.scenario;
              }
            in
            append_line t (record_to_json r);
            Ok r)

(* ------------------------------------------------------------------ *)
(* rm / gc                                                             *)

let rm t ~id =
  let ( let* ) = Result.bind in
  let* records = find t ~id in
  if records = [] then Ok 0
  else begin
    append_line t (tombstone_to_json id);
    let removed =
      List.fold_left
        (fun n r ->
          let path = artifact_path t r in
          match Sys.remove path with
          | () -> n + 1
          | exception Sys_error _ -> n)
        0 records
    in
    let dir = Filename.concat (Filename.concat t.root "runs") id in
    (try Unix.rmdir dir with Unix.Unix_error _ -> ());
    Ok removed
  end

(* Newest artifact mtime of a run — its "recency" for age-based GC.
   Measured with Unix.stat, never the wall clock: ages are computed
   relative to the newest mtime across the whole store, so the sweep is
   a pure function of the files on disk (R8: Obs_clock owns time). *)
let run_mtime t records =
  List.fold_left
    (fun acc r ->
      match Unix.stat (artifact_path t r) with
      | st -> Stdlib.max acc st.Unix.st_mtime
      | exception Unix.Unix_error _ -> acc)
    neg_infinity records

let gc t ?keep ?max_age_s () =
  let ( let* ) = Result.bind in
  let* records = ls t in
  (* Distinct run ids in first-added order. *)
  let ids =
    List.rev
      (List.fold_left
         (fun acc r -> if List.mem r.id acc then acc else r.id :: acc)
         [] records)
  in
  let of_id id = List.filter (fun r -> r.id = id) records in
  let doomed_by_keep =
    match keep with
    | None -> []
    | Some k ->
        let n = List.length ids in
        if n <= k then []
        else List.filteri (fun i _ -> i < n - k) ids
  in
  let doomed_by_age =
    match max_age_s with
    | None -> []
    | Some age ->
        let mtimes = List.map (fun id -> (id, run_mtime t (of_id id))) ids in
        let frontier =
          List.fold_left (fun acc (_, m) -> Stdlib.max acc m) neg_infinity
            mtimes
        in
        List.filter_map
          (fun (id, m) ->
            if Float.is_finite m && frontier -. m > age then Some id
            else None)
          mtimes
  in
  let doomed =
    List.filter
      (fun id ->
        List.mem id doomed_by_keep || List.mem id doomed_by_age)
      ids
  in
  let* () =
    List.fold_left
      (fun acc id ->
        let* () = acc in
        Result.map (fun (_ : int) -> ()) (rm t ~id))
      (Ok ()) doomed
  in
  Ok doomed

(* ------------------------------------------------------------------ *)
(* wire form                                                           *)

let index_to_json records =
  Jsonx.List (List.map record_to_json records)
