(* The collector: accept N producers speaking the Obs_stream protocol,
   write each stream back out as an ordinary JSONL trace (filed in an
   Obs_store registry), fold every event into one live aggregated
   metrics registry served over Obs_http, and run the Obs_health rules
   against that registry as the streams advance, emitting
   firing/resolved alert transitions.

   Concurrency model: one thread per connection, one global mutex.
   Every frame is handled under the lock — ingest, trace append,
   metrics fold, alert evaluation — so the aggregated registry and the
   alert state machine see a single serialized event stream. The
   per-producer files stay ordered because Obs_stream.ingest enforces
   consecutive sequence numbers per connection before a line is
   written. *)

(* ------------------------------------------------------------------ *)
(* Alert state machine                                                 *)

type transition = {
  tr_rule : Obs_health.rule;
  tr_firing : bool;  (** [true] = fired on this observation *)
  tr_value : float option;  (** offending value when firing *)
}

module Alerts = struct
  type t = { rules : Obs_health.rule list; firing : bool array }

  let create rules = { rules; firing = Array.make (List.length rules) false }

  (* Evaluate every rule against one snapshot of the live registry and
     report edges only. A rule is firing while its status is [Fail];
     [Missing]/[Skipped] are not alerts — early in a stream most
     selectors have no data yet, and that must not page anyone. *)
  let observe t snap =
    let report = Obs_health.evaluate ~rules:t.rules [ (None, snap) ] in
    List.concat
      (List.mapi
         (fun i (rule, status) ->
           let now, value =
             match (status : Obs_health.status) with
             | Fail { value; _ } -> (true, Some value)
             | Pass | Missing | Skipped -> (false, None)
           in
           if now = t.firing.(i) then []
           else begin
             t.firing.(i) <- now;
             [ { tr_rule = rule; tr_firing = now; tr_value = value } ]
           end)
         report.Obs_health.outcomes)

  let any_firing t = Array.exists Fun.id t.firing
end

(* ------------------------------------------------------------------ *)
(* Collector state                                                     *)

type stream_summary = {
  ss_run_id : string;
  ss_events : int;
  ss_dropped : int;  (** producer-reported drop counter *)
  ss_truncated : bool;  (** ended without BYE *)
  ss_path : string option;  (** final resting place of the trace *)
}

type summary = {
  streams : stream_summary list;  (** in finalization order *)
  total_events : int;
  rejected : int;  (** protocol-violating or unreadable frames *)
  alerts_fired : int;
  alerts_resolved : int;
}

type state = {
  mu : Mutex.t;
  reg : Obs_metrics.t;
  feed : Obs_event.t -> unit;
  alerts : Alerts.t;
  store : Obs_store.t option;
  out_dir : string option;
  alert_every : int;
  log : string -> unit;
  c_streams_opened : Obs_metrics.counter;
  c_streams_finalized : Obs_metrics.counter;
  c_streams_truncated : Obs_metrics.counter;
  c_events : Obs_metrics.counter;
  c_rejected : Obs_metrics.counter;
  c_producer_dropped : Obs_metrics.counter;
  c_alerts_fired : Obs_metrics.counter;
  c_alerts_resolved : Obs_metrics.counter;
  g_connected : Obs_metrics.gauge;
  mutable connected : int;
  mutable finalized : int;
  mutable total_events : int;
  mutable rejected : int;
  mutable alerts_fired : int;
  mutable alerts_resolved : int;
  mutable summaries : stream_summary list;  (** reverse order *)
  mutable threads : Thread.t list;
}

let locked st f =
  Mutex.lock st.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.mu) f

(* Call with [st.mu] held. *)
let eval_alerts st =
  let transitions = Alerts.observe st.alerts (Obs_metrics.snapshot st.reg) in
  List.iter
    (fun tr ->
      if tr.tr_firing then begin
        st.alerts_fired <- st.alerts_fired + 1;
        Obs_metrics.incr st.c_alerts_fired;
        st.log
          (Format.asprintf "ALERT firing: %a%s" Obs_health.pp_rule tr.tr_rule
             (match tr.tr_value with
             | Some v -> Printf.sprintf " (value %.6g)" v
             | None -> ""))
      end
      else begin
        st.alerts_resolved <- st.alerts_resolved + 1;
        Obs_metrics.incr st.c_alerts_resolved;
        st.log
          (Format.asprintf "ALERT resolved: %a" Obs_health.pp_rule tr.tr_rule)
      end)
    transitions

(* ------------------------------------------------------------------ *)
(* Per-stream output file                                              *)

type stream_out = {
  so_run_id : string;
  so_meta : Obs_meta.t;
  so_path : string option;  (** where lines are being written *)
  so_oc : out_channel option;
  so_staging : bool;  (** temp file to be removed after store add *)
}

(* Pick a fresh path under [dir]; two producers with the same
   provenance triple (same id) must not clobber each other's file.
   Called with the lock held, so existence checks don't race. *)
let fresh_path dir run_id =
  let base = Filename.concat dir run_id in
  if not (Sys.file_exists (base ^ ".jsonl")) then base ^ ".jsonl"
  else
    let rec go n =
      let p = Printf.sprintf "%s-%d.jsonl" base n in
      if Sys.file_exists p then go (n + 1) else p
    in
    go 2

(* Call with [st.mu] held. *)
let open_stream st meta =
  let run_id =
    match meta.Obs_meta.run_id with
    | Some id -> id
    | None -> Obs_store.run_id_of_meta meta
  in
  let path, staging =
    match st.out_dir with
    | Some dir ->
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        (Some (fresh_path dir run_id), false)
    | None ->
        if st.store = None then (None, false)
        else (Some (Filename.temp_file "cscollect" ".jsonl"), true)
  in
  let oc =
    Option.map
      (fun p ->
        let oc = open_out p in
        output_string oc (Jsonx.to_string (Obs_meta.to_json meta));
        output_char oc '\n';
        oc)
      path
  in
  Obs_metrics.incr st.c_streams_opened;
  st.connected <- st.connected + 1;
  Obs_metrics.set st.g_connected (float_of_int st.connected);
  { so_run_id = run_id; so_meta = meta; so_path = path; so_oc = oc;
    so_staging = staging }

(* Finalize one stream: append the truncation marker when the producer
   vanished without BYE, file the trace in the store, and account it.
   Call with [st.mu] held; [ingest] is private to the (finished)
   connection thread. *)
let finalize_stream st out ingest ~expected =
  let truncated = not (Obs_stream.ingest_closed ingest) in
  let events = Obs_stream.ingest_events ingest in
  let dropped = Obs_stream.ingest_dropped ingest in
  Option.iter
    (fun oc ->
      if truncated then begin
        output_string oc
          (Jsonx.to_string (Obs_stream.truncation_marker ~events));
        output_char oc '\n'
      end;
      close_out oc)
    out.so_oc;
  let stored_path =
    match (st.store, out.so_path) with
    | Some store, Some src -> (
        match Obs_store.add store ~meta:out.so_meta ~kind:Obs_store.Trace src
        with
        | Ok record ->
            if out.so_staging then Sys.remove src;
            Some (Obs_store.artifact_path store record)
        | Error e ->
            st.log
              (Printf.sprintf "store: failed to file stream %s: %s"
                 out.so_run_id e);
            (* Keep the staging file: it is now the only copy. *)
            Some src)
    | _ -> out.so_path
  in
  Obs_metrics.incr st.c_streams_finalized;
  if truncated then begin
    Obs_metrics.incr st.c_streams_truncated;
    st.log
      (Printf.sprintf "stream %s truncated after %d event(s) (no BYE)"
         out.so_run_id events)
  end;
  Obs_metrics.add st.c_producer_dropped dropped;
  st.connected <- st.connected - 1;
  Obs_metrics.set st.g_connected (float_of_int st.connected);
  st.summaries <-
    {
      ss_run_id = out.so_run_id;
      ss_events = events;
      ss_dropped = dropped;
      ss_truncated = truncated;
      ss_path = stored_path;
    }
    :: st.summaries;
  st.finalized <- st.finalized + 1;
  (* Finalization is an observation point even when the event count
     does not line up with [alert_every]. *)
  eval_alerts st;
  st.finalized >= expected

(* ------------------------------------------------------------------ *)
(* Connection handling                                                 *)

let read_of_fd fd buf pos len =
  try Unix.read fd buf pos len with Unix.Unix_error _ -> 0

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Throwaway connect to our own listen address: unparks the accept
   loop after [stop] is raised (Obs_http.shutdown does the same). *)
let unpark addr =
  let domain, sockaddr = Obs_http.sockaddr_of addr in
  match Unix.socket domain Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.connect fd sockaddr with Unix.Unix_error _ -> ());
      close_fd fd

let serve_conn st ~stop ~listen_addr ~expected ~once conn =
  let ingest = Obs_stream.ingest_create () in
  let out = ref None in
  let reject msg =
    locked st (fun () ->
        st.rejected <- st.rejected + 1;
        Obs_metrics.incr st.c_rejected;
        st.log ("rejected frame: " ^ msg))
  in
  let finalize () =
    let all_done =
      locked st (fun () ->
          match !out with
          | None -> false
          | Some o ->
              out := None;
              finalize_stream st o ingest ~expected)
    in
    if all_done && once then begin
      Atomic.set stop true;
      unpark listen_addr
    end
  in
  let rec loop () =
    match Obs_stream.read_frame (read_of_fd conn) with
    | Error `Eof -> ()
    | Error e ->
        reject (Format.asprintf "%a" Obs_stream.pp_read_error e)
    | Ok frame -> (
        let verdict =
          locked st (fun () ->
              match Obs_stream.ingest ingest frame with
              | Obs_stream.Reject _ as v -> v
              | v ->
                  (match v with
                  | Obs_stream.Ok_hello meta ->
                      if !out = None then out := Some (open_stream st meta)
                  | Obs_stream.Ok_event ev ->
                      Option.iter
                        (fun o ->
                          Option.iter
                            (fun oc ->
                              output_string oc
                                (Jsonx.to_string (Obs_event.to_json ev));
                              output_char oc '\n')
                            o.so_oc)
                        !out;
                      st.feed ev;
                      st.total_events <- st.total_events + 1;
                      Obs_metrics.incr st.c_events;
                      if st.total_events mod st.alert_every = 0 then
                        eval_alerts st
                  | Obs_stream.Ok_heartbeat | Obs_stream.Ok_bye
                  | Obs_stream.Reject _ ->
                      ());
                  v)
        in
        match verdict with
        | Obs_stream.Reject msg -> reject msg
        | Obs_stream.Ok_bye -> ()
        | _ -> loop ())
  in
  Fun.protect
    ~finally:(fun () ->
      close_fd conn;
      finalize ())
    loop

(* ------------------------------------------------------------------ *)
(* Run                                                                 *)

let run ?http ?(producers = 1) ?(once = false) ?store_root ?out_dir
    ?(rules = []) ?(alert_every = 64) ?(log = fun _ -> ())
    ?(ready = fun _ -> ()) ~listen () =
  let ( let* ) = Result.bind in
  let* store =
    match store_root with
    | None -> Ok None
    | Some root ->
        let* s = Obs_store.open_store ~root () in
        Ok (Some s)
  in
  let reg, feed = Obs_query.metrics_updater () in
  let st =
    {
      mu = Mutex.create ();
      reg;
      feed;
      alerts = Alerts.create rules;
      store;
      out_dir;
      alert_every = Stdlib.max 1 alert_every;
      log;
      c_streams_opened = Obs_metrics.counter reg "collect.streams_opened";
      c_streams_finalized = Obs_metrics.counter reg "collect.streams_finalized";
      c_streams_truncated = Obs_metrics.counter reg "collect.streams_truncated";
      c_events = Obs_metrics.counter reg "collect.events";
      c_rejected = Obs_metrics.counter reg "collect.frames_rejected";
      c_producer_dropped = Obs_metrics.counter reg "collect.producer_dropped";
      c_alerts_fired = Obs_metrics.counter reg "collect.alerts_fired";
      c_alerts_resolved = Obs_metrics.counter reg "collect.alerts_resolved";
      g_connected = Obs_metrics.gauge reg "collect.producers_connected";
      connected = 0;
      finalized = 0;
      total_events = 0;
      rejected = 0;
      alerts_fired = 0;
      alerts_resolved = 0;
      summaries = [];
      threads = [];
    }
  in
  Obs_metrics.set st.g_connected 0.;
  let* lfd, bound = Obs_http.listen_on listen in
  let stop = Atomic.make false in
  (* Live exposition over the aggregated registry: /metrics for a
     scraper, /health mirroring the alert machine (503 while any rule
     fires), /runs for the store index. *)
  let* server =
    match http with
    | None -> Ok None
    | Some http_addr ->
        let source =
          {
            Obs_http.metrics =
              (fun () -> locked st (fun () -> Obs_export.prometheus reg));
            health =
              (fun () ->
                locked st (fun () ->
                    if Alerts.any_firing st.alerts then
                      (503, "alerts firing\n")
                    else (200, "ok\n")));
            runs =
              (fun () ->
                match store with
                | None -> Ok (Jsonx.List [])
                | Some s ->
                    Result.map Obs_store.index_to_json (Obs_store.ls s));
          }
        in
        let* srv = Obs_http.serve_in_background ~addr:http_addr source in
        Ok (Some srv)
  in
  ready bound;
  let rec accept_loop () =
    if not (Atomic.get stop) then
      match Unix.accept lfd with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ -> ()
      | conn, _ ->
          if Atomic.get stop then close_fd conn
          else begin
            let th =
              Thread.create
                (serve_conn st ~stop ~listen_addr:bound ~expected:producers
                   ~once)
                conn
            in
            locked st (fun () -> st.threads <- th :: st.threads);
            accept_loop ()
          end
  in
  accept_loop ();
  Obs_http.cleanup lfd bound;
  List.iter Thread.join (locked st (fun () -> st.threads));
  locked st (fun () ->
      (* Late observation point: rules that only resolve once every
         stream landed still get their edge. *)
      eval_alerts st);
  Option.iter Obs_http.shutdown server;
  Ok
    (locked st (fun () ->
         {
           streams = List.rev st.summaries;
           total_events = st.total_events;
           rejected = st.rejected;
           alerts_fired = st.alerts_fired;
           alerts_resolved = st.alerts_resolved;
         }))

let pp_summary ppf s =
  Format.fprintf ppf "collected %d stream(s), %d event(s), %d rejected frame(s)"
    (List.length s.streams) s.total_events s.rejected;
  if s.alerts_fired > 0 || s.alerts_resolved > 0 then
    Format.fprintf ppf ", alerts fired %d resolved %d" s.alerts_fired
      s.alerts_resolved;
  List.iter
    (fun ss ->
      Format.fprintf ppf "@.  stream %s: %d event(s)%s%s%s" ss.ss_run_id
        ss.ss_events
        (if ss.ss_dropped > 0 then
           Printf.sprintf ", %d dropped at producer" ss.ss_dropped
         else "")
        (if ss.ss_truncated then ", truncated" else "")
        (match ss.ss_path with Some p -> " -> " ^ p | None -> ""))
    s.streams
