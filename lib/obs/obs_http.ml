(* The only module in the tree allowed to touch sockets (lint R13):
   everything protocol-shaped is a pure string function so the socket
   code stays a thin accept/read/write shell around it. *)

type request = { meth : string; path : string; version : string }

let max_head_bytes = 8192

(* Index of the first occurrence of [sub] in [s], or -1. Heads are
   <= 8 KiB so the naive scan is fine. *)
let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then -1
    else if String.sub s i m = sub then i
    else go (i + 1)
  in
  if m = 0 then 0 else go 0

let read_head ?(max_len = max_head_bytes) read =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let terminator s =
    match find_sub s "\r\n\r\n" with
    | -1 -> (
        match find_sub s "\n\n" with -1 -> None | i -> Some (i + 2))
    | i -> Some (i + 4)
  in
  let rec go () =
    match terminator (Buffer.contents buf) with
    | Some stop -> Ok (String.sub (Buffer.contents buf) 0 stop)
    | None ->
        if Buffer.length buf > max_len then Error `Too_large
        else
          let n = read chunk 0 (Bytes.length chunk) in
          if n <= 0 then Error `Eof
          else begin
            Buffer.add_subbytes buf chunk 0 n;
            go ()
          end
  in
  go ()

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] when meth <> "" && target <> "" ->
      if
        String.length version < 5 || String.sub version 0 5 <> "HTTP/"
      then Error (Printf.sprintf "not an HTTP version: %S" version)
      else
        let path =
          match String.index_opt target '?' with
          | Some i -> String.sub target 0 i
          | None -> target
        in
        Ok { meth; path; version }
  | _ -> Error (Printf.sprintf "malformed request line %S" line)

let status_reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let response ~status ?(content_type = "text/plain; charset=utf-8") body =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
     Connection: close\r\n\r\n%s"
    status (status_reason status) content_type (String.length body) body

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)

type source = {
  metrics : unit -> string list;
  health : unit -> int * string;
  runs : unit -> (Jsonx.t, string) result;
}

let text = "text/plain; charset=utf-8"

let handle source req =
  if req.meth <> "GET" then (405, text, "method not allowed\n")
  else
    match req.path with
    | "/" -> (200, text, "endpoints: /metrics /health /runs\n")
    | "/metrics" -> (
        let lines = source.metrics () in
        (* Never hand a scraper text the grammar validator rejects:
           better a loud 500 than a silently dropped scrape. *)
        match Obs_export.validate_prometheus lines with
        | Ok _ ->
            ( 200,
              "text/plain; version=0.0.4; charset=utf-8",
              String.concat "" (List.map (fun l -> l ^ "\n") lines) )
        | Error e ->
            (500, text, "exposition failed validation: " ^ e ^ "\n"))
    | "/health" ->
        let status, body = source.health () in
        (status, text, body)
    | "/runs" -> (
        match source.runs () with
        | Ok j -> (200, "application/json", Jsonx.to_string j ^ "\n")
        | Error e -> (500, text, e ^ "\n"))
    | _ -> (404, text, "not found\n")

(* ------------------------------------------------------------------ *)
(* Addresses                                                           *)

type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  if String.length s >= 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix_sock (String.sub s 5 (String.length s - 5)))
  else if String.contains s '/' then Ok (Unix_sock s)
  else
    match String.rindex_opt s ':' with
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p < 65536 ->
            Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
        | _ -> Error (Printf.sprintf "bad port in address %S" s))
    | None ->
        Error
          (Printf.sprintf
             "bad address %S (want unix:PATH or HOST:PORT)" s)

let pp_addr ppf = function
  | Unix_sock p -> Format.fprintf ppf "unix:%s" p
  | Tcp (h, p) -> Format.fprintf ppf "%s:%d" h p

let sockaddr_of = function
  | Unix_sock p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p)
  | Tcp (host, port) ->
      let ip =
        match Unix.inet_addr_of_string host with
        | ip -> ip
        | exception Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
                Unix.inet_addr_loopback
            | h -> h.Unix.h_addr_list.(0))
      in
      (Unix.PF_INET, Unix.ADDR_INET (ip, port))

(* ------------------------------------------------------------------ *)
(* Serving                                                             *)

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go pos =
    if pos < Bytes.length b then
      match Unix.write fd b pos (Bytes.length b - pos) with
      | n -> go (pos + n)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
        ->
          ()
  in
  go 0

let first_line s =
  let line =
    match String.index_opt s '\n' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  if line <> "" && line.[String.length line - 1] = '\r' then
    String.sub line 0 (String.length line - 1)
  else line

let handle_connection fd source =
  let read buf pos len =
    try Unix.read fd buf pos len with Unix.Unix_error _ -> 0
  in
  match read_head read with
  | Error `Too_large ->
      write_all fd (response ~status:431 "request head too large\n")
  | Error `Eof -> ()
  | Ok head -> (
      match parse_request_line (first_line head) with
      | Error e ->
          write_all fd (response ~status:400 ("bad request: " ^ e ^ "\n"))
      | Ok req ->
          let status, content_type, body = handle source req in
          write_all fd (response ~status ~content_type body))

let listen_on addr =
  let domain, sockaddr = sockaddr_of addr in
  (match addr with
  | Unix_sock p when Sys.file_exists p -> (
      try Sys.remove p with Sys_error _ -> ())
  | _ -> ());
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match
    if domain = Unix.PF_INET then
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd sockaddr;
    Unix.listen fd 16
  with
  | () ->
      (* Port 0 binds an ephemeral port; report the one we got. *)
      let addr =
        match (addr, Unix.getsockname fd) with
        | Tcp (h, _), Unix.ADDR_INET (_, port) -> Tcp (h, port)
        | _ -> addr
      in
      Ok (fd, addr)
  | exception Unix.Unix_error (e, _, _) ->
      Unix.close fd;
      Error
        (Format.asprintf "cannot listen on %a: %s" pp_addr addr
           (Unix.error_message e))

let cleanup fd addr =
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match addr with
  | Unix_sock p -> ( try Sys.remove p with Sys_error _ -> ())
  | Tcp _ -> ()

let serve_loop ?max_requests ~stopped fd source =
  let rec loop served =
    let budget_left =
      match max_requests with Some m -> served < m | None -> true
    in
    if stopped () || not budget_left then ()
    else
      match Unix.accept fd with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop served
      | exception Unix.Unix_error _ -> ()
      | conn, _ ->
          if stopped () then Unix.close conn
          else begin
            Fun.protect
              ~finally:(fun () ->
                try Unix.close conn with Unix.Unix_error _ -> ())
              (fun () -> handle_connection conn source);
            loop (served + 1)
          end
  in
  loop 0

let serve ?max_requests ?ready ~addr source =
  match listen_on addr with
  | Error _ as e -> e
  | Ok (fd, bound) ->
      Option.iter (fun f -> f bound) ready;
      Fun.protect
        ~finally:(fun () -> cleanup fd bound)
        (fun () ->
          serve_loop ?max_requests ~stopped:(fun () -> false) fd source);
      Ok ()

type server = {
  s_thread : Thread.t;
  s_stop : bool Atomic.t;
  s_addr : addr;
}

let serve_in_background ?max_requests ~addr source =
  match listen_on addr with
  | Error _ as e -> e
  | Ok (fd, bound) ->
      let stop = Atomic.make false in
      let thread =
        Thread.create
          (fun () ->
            Fun.protect
              ~finally:(fun () -> cleanup fd bound)
              (fun () ->
                serve_loop ?max_requests
                  ~stopped:(fun () -> Atomic.get stop)
                  fd source))
          ()
      in
      Ok { s_thread = thread; s_stop = stop; s_addr = bound }

let address s = s.s_addr

let shutdown s =
  if not (Atomic.exchange s.s_stop true) then begin
    (* The loop re-checks the flag after every accept; a throwaway
       connection unblocks an accept that is already parked. *)
    (let domain, sockaddr = sockaddr_of s.s_addr in
     match Unix.socket domain Unix.SOCK_STREAM 0 with
     | exception Unix.Unix_error _ -> ()
     | fd ->
         (try Unix.connect fd sockaddr with Unix.Unix_error _ -> ());
         (try Unix.close fd with Unix.Unix_error _ -> ()));
    Thread.join s.s_thread
  end

(* ------------------------------------------------------------------ *)
(* Client                                                              *)

let read_all fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error _ -> Buffer.contents buf
  in
  go ()

let fetch ?(attempts = 100) ~addr path =
  let domain, sockaddr = sockaddr_of addr in
  (* Startup polling is bounded by attempt count, not by a deadline:
     fetch never reads the clock (R8). *)
  let rec connect n =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () -> Ok fd
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN), _, _)
      when n > 1 ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.05;
        connect (n - 1)
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error
          (Format.asprintf "cannot connect to %a: %s" pp_addr addr
           (Unix.error_message e))
  in
  match connect (Stdlib.max 1 attempts) with
  | Error _ as e -> e
  | Ok fd ->
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          write_all fd
            (Printf.sprintf
               "GET %s HTTP/1.1\r\nHost: cs\r\nConnection: close\r\n\r\n"
               path);
          let raw = read_all fd in
          let head_len =
            match find_sub raw "\r\n\r\n" with
            | -1 -> ( match find_sub raw "\n\n" with -1 -> -1 | i -> i + 2)
            | i -> i + 4
          in
          if head_len < 0 then Error "malformed response: no header end"
          else
            let body =
              String.sub raw head_len (String.length raw - head_len)
            in
            match
              String.split_on_char ' ' (first_line raw)
            with
            | _ :: code :: _ -> (
                match int_of_string_opt code with
                | Some status -> Ok (status, body)
                | None ->
                    Error
                      (Printf.sprintf "malformed status line %S"
                         (first_line raw)))
            | _ ->
                Error
                  (Printf.sprintf "malformed status line %S"
                     (first_line raw)))
