(* Sampled GC observability: Gc.quick_stat deltas recorded as ordinary
   Obs_metrics instruments. Sole sanctioned Gc-stat call site (lint R9). *)

type t = {
  every : int;
  mutable countdown : int;
  base : Gc.stat;
  mutable last : Gc.stat;
  c_samples : Obs_metrics.counter;
  c_minor : Obs_metrics.counter;
  c_major : Obs_metrics.counter;
  c_compact : Obs_metrics.counter;
  g_minor_words : Obs_metrics.gauge;
  g_promoted_words : Obs_metrics.gauge;
  g_major_words : Obs_metrics.gauge;
  g_heap_words : Obs_metrics.gauge;
  g_top_heap_words : Obs_metrics.gauge;
  h_promoted_delta : Obs_metrics.histogram;
}

let create ?(every = 1) m =
  if every < 1 then invalid_arg "Obs_resource.create: every must be >= 1";
  let base = Gc.quick_stat () in
  {
    every;
    countdown = 1;
    base;
    last = base;
    c_samples = Obs_metrics.counter m "gc.samples";
    c_minor = Obs_metrics.counter m "gc.minor_collections";
    c_major = Obs_metrics.counter m "gc.major_collections";
    c_compact = Obs_metrics.counter m "gc.compactions";
    g_minor_words = Obs_metrics.gauge m "gc.minor_words";
    g_promoted_words = Obs_metrics.gauge m "gc.promoted_words";
    g_major_words = Obs_metrics.gauge m "gc.major_words";
    g_heap_words = Obs_metrics.gauge m "gc.heap_words";
    g_top_heap_words = Obs_metrics.gauge m "gc.top_heap_words";
    h_promoted_delta = Obs_metrics.histogram m "gc.promoted_words_delta";
  }

let sample t =
  let cur = Gc.quick_stat () in
  Obs_metrics.incr t.c_samples;
  Obs_metrics.add t.c_minor
    (cur.Gc.minor_collections - t.last.Gc.minor_collections);
  Obs_metrics.add t.c_major
    (cur.Gc.major_collections - t.last.Gc.major_collections);
  Obs_metrics.add t.c_compact (cur.Gc.compactions - t.last.Gc.compactions);
  Obs_metrics.set t.g_minor_words (cur.Gc.minor_words -. t.base.Gc.minor_words);
  Obs_metrics.set t.g_promoted_words
    (cur.Gc.promoted_words -. t.base.Gc.promoted_words);
  Obs_metrics.set t.g_major_words (cur.Gc.major_words -. t.base.Gc.major_words);
  Obs_metrics.set t.g_heap_words (float_of_int cur.Gc.heap_words);
  Obs_metrics.set t.g_top_heap_words (float_of_int cur.Gc.top_heap_words);
  let d = cur.Gc.promoted_words -. t.last.Gc.promoted_words in
  Obs_metrics.observe t.h_promoted_delta (if d > 0.0 then d else 0.0);
  t.last <- cur;
  t.countdown <- t.every

let tick t =
  t.countdown <- t.countdown - 1;
  if t.countdown <= 0 then sample t

let samples t = Obs_metrics.count t.c_samples
