type kid = {
  k_obs : Obs.t;
  k_metrics : Obs_metrics.t option;
  k_spans : Obs_span.t option;
  k_events : Obs_event.t list ref option;  (** Buffered in reverse. *)
}

type children = kid array

let disabled_kid =
  { k_obs = Obs.disabled; k_metrics = None; k_spans = None; k_events = None }

let scatter obs ~n =
  if n < 0 then invalid_arg "Obs_fork.scatter: n must be >= 0";
  if not (Obs.instrumented obs) then Array.make n disabled_kid
  else
    Array.init n (fun _ ->
        let k_metrics =
          match Obs.metrics obs with
          | None -> None
          | Some m -> Some (Obs_metrics.create ~accuracy:(Obs_metrics.accuracy m) ())
        in
        let k_spans =
          match Obs.span_recorder obs with
          | None -> None
          | Some _ -> Some (Obs_span.create ())
        in
        let k_events = if Obs.tracing obs then Some (ref []) else None in
        let sink =
          match k_events with
          | None -> Obs_sink.Null
          | Some buf -> Obs_sink.Custom (fun ev -> buf := ev :: !buf)
        in
        let k_obs =
          Obs.create ~sink ?metrics:k_metrics ?spans:k_spans ()
        in
        { k_obs; k_metrics; k_spans; k_events })

let child kids i = kids.(i).k_obs

let gather_one obs kids i =
  let kid = kids.(i) in
  (match kid.k_events with
  | None -> ()
  | Some buf -> List.iter (Obs.emit obs) (List.rev !buf));
  (match (kid.k_metrics, Obs.metrics obs) with
  | Some src, Some into -> Obs_metrics.merge ~into src
  | _ -> ());
  match (kid.k_spans, Obs.span_recorder obs) with
  | Some src, Some into -> Obs_span.absorb into src
  | _ -> ()

let gather obs kids =
  Array.iteri (fun i _ -> gather_one obs kids i) kids
