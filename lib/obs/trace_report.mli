(** Offline aggregation of a JSONL event trace back into the summary
    numbers a live run computes.

    [csctl simulate --trace FILE] (or any [Jsonl]-sinked run) produces a
    stream of {!Obs_event.t}; this module folds that stream into totals,
    per-workstation tables, kill rates, an overhead fraction, and
    period-length / episode-duration quantiles. The design contract —
    pinned by [test/test_obs.ml] — is that a trace {e round-trips}: the
    aggregate of the events equals the [Farm.report] / [Monte_carlo]
    numbers of the run that emitted them, to float tolerance. A trace is
    thus a complete scientific artifact of a run, not a lossy log. *)

type ws_summary = {
  ws : int;
  episodes : int;  (** [Episode_started] count. *)
  periods_completed : int;
  periods_killed : int;
  work_done : float;  (** Σ banked. *)
  work_lost : float;  (** Σ lost. *)
  overhead : float;  (** Σ overhead over completed and killed periods. *)
}

type t = {
  events : int;  (** Total events aggregated. *)
  sources : string list;  (** Distinct [Run_started] sources, in order. *)
  plans : (string * float * int * float) list;
      (** [Plan_computed] records: (source, t0, periods, expected_work). *)
  episodes_started : int;
  episodes_finished : int;
  episodes_interrupted : int;
  periods_dispatched : int;
  periods_completed : int;
  periods_killed : int;
  total_done : float;
  total_lost : float;
  total_overhead : float;
  pool_drained_at : float option;
  per_ws : ws_summary list;  (** Sorted by workstation id. *)
  period_lengths : float array;
      (** Length of every dispatched period, emission order. *)
  episode_durations : float array;
      (** [Episode_finished.time − Episode_started.time] for every
          matched (ws, ep) pair, emission order of the finish. *)
}

val of_events : Obs_event.t list -> t

val load : string -> (t, string) result
(** [load path] parses a JSONL trace file (blank lines ignored) and
    aggregates it. A leading {!Obs_meta} provenance header, when
    present, is validated and skipped; a malformed or
    wrong-schema-version header is a load error. The error carries the
    1-based line number of the first malformed line. *)

val kill_rate : t -> float
(** Killed / (completed + killed); [0] when no period ever started. *)

val overhead_fraction : t -> float
(** Overhead / (done + lost + overhead) — the share of borrowed busy
    time spent communicating; [0] when nothing happened. *)

val pp : Format.formatter -> t -> unit
(** Deterministic multi-line summary: totals, quantiles
    ({!Stats.quantile} over the exact collected values, not bucketed),
    plan lines, and the per-workstation table. *)

(** {1 Span trees}

    The span-profiler side of the report: fold the flat span list of an
    {!Obs_span} recorder into a call tree with total and self wall time
    per (path, name) — the terminal-friendly complement of the Chrome
    trace export. *)

type span_node = {
  sn_name : string;
  sn_count : int;  (** Spans aggregated into this node. *)
  sn_total_us : float;  (** Σ duration of those spans. *)
  sn_self_us : float;
      (** Total minus the children's totals, clamped at 0 (clock
          granularity can make nested sums exceed the parent). *)
  sn_children : span_node list;  (** First-seen order. *)
}

val span_tree : Obs_span.span list -> span_node list
(** Group sibling spans (same parent path) by name, recursively. Spans
    whose [parent] is [-1] form the roots; pass the full
    [Obs_span.spans] list. *)

val pp_span_tree : Format.formatter -> span_node list -> unit
(** Fixed-width indented table: one line per node — total, self,
    call count. *)
