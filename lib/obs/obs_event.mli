(** The typed event vocabulary of the tracing layer.

    One simulation run — a {!Monte_carlo} estimate, a {!Farm} run, or a
    planner invocation — emits a stream of these events through an
    {!Obs_sink}. Times are in simulation units ([Plan_computed] carries
    wall seconds instead, since planning happens outside simulated time);
    [ws] identifies the workstation (for {!Monte_carlo.compare_policies}
    it carries the policy index) and [ep] the 0-based episode ordinal on
    that workstation.

    The JSONL encoding is schema-versioned and self-describing: every
    line is one object with ["v"] (= {!schema_version}) and ["type"]
    fields plus the payload, e.g.
    [{"v":1,"type":"period_completed","t":12.5,"ws":0,"ep":3,
      "period":10.0,"banked":9.0,"overhead":1.0}].
    {!of_json} rejects unknown types and missing fields rather than
    guessing, so {!Trace_report} aggregation can trust every record. *)

type t =
  | Run_started of { time : float; source : string; seed : int64 option }
      (** Opens a trace; [source] names the emitting harness
          ([monte_carlo], [farm], ...). *)
  | Plan_computed of {
      source : string;  (** [guideline] or [optimizer]. *)
      t0 : float;  (** Chosen initial period. *)
      periods : int;
      expected_work : float;
      elapsed : float;  (** Planning wall-time, seconds. *)
    }
  | Episode_started of { time : float; ws : int; ep : int }
  | Period_dispatched of {
      time : float;  (** When the [c]-long dispatch begins. *)
      ws : int;
      ep : int;
      period : float;  (** Full period length [t], including [c]. *)
      assigned : float;  (** Productive work shipped, [t ⊖ c] after pool clip. *)
    }
  | Period_completed of {
      time : float;
      ws : int;
      ep : int;
      period : float;
      banked : float;
      overhead : float;
    }
  | Period_killed of {
      time : float;
      ws : int;
      ep : int;
      lost : float;  (** Productive work in flight when the owner returned. *)
      overhead : float;
          (** Communication time charged to the killed period (0 in the
              farm's accounting, [min in_flight c] in the episode's). *)
    }
  | Owner_returned of { time : float; ws : int; ep : int }
  | Episode_finished of {
      time : float;
      ws : int;
      ep : int;
      work_done : float;
      interrupted : bool;  (** A period was in flight when the episode ended. *)
    }
  | Pool_drained of { time : float; remaining : float }
  | Run_finished of { time : float }

val schema_version : int
(** Currently [1]. Bumped on any incompatible change to the encoding. *)

val kind : t -> string
(** The constructor's JSON ["type"] tag ([period_completed], ...) — the
    vocabulary {!Obs_query.filter}'s [?kind] selects on. *)

val time : t -> float option
(** The event's simulated-time stamp; [None] for [Plan_computed], which
    happens outside simulated time. *)

val ids : t -> (int * int) option
(** [(ws, ep)] for episode-scoped events; [None] for run-level markers
    ([Run_started], [Plan_computed], [Pool_drained], [Run_finished]). *)

val to_json : t -> Jsonx.t

val of_json : Jsonx.t -> (t, string) result
(** Inverse of {!to_json}. Rejects unknown ["type"] values, wrong ["v"],
    and missing or ill-typed fields. *)

val pp : Format.formatter -> t -> unit
(** One-line human-readable rendering (the [Console] sink format). *)
