(** A ring buffer of periodic metric snapshots, for plotting how a run's
    metrics evolved over trials.

    A Monte-Carlo run's final registry tells you where it ended, not how
    it got there. A snapshot ring is attached to a registry and ticked at
    the serial chunk-gather boundary with the number of trials merged so
    far; every [every] trials it freezes the registry
    ({!Obs_metrics.snapshot}) into a bounded ring, oldest entries
    evicted first. Because ticks happen at chunk granularity in
    chunk-index order, the captured sequence is bit-identical for any
    [--jobs] value — the same determinism contract as the metrics
    themselves (DESIGN.md §10).

    [cstrace timeline] reads the JSONL form back and plots one metric's
    trajectory. *)

type t

type entry = { at : int; metrics : Obs_metrics.snapshot }
(** One capture: the registry frozen after [at] units of progress
    (trials, for the Monte-Carlo harness). *)

val create : ?capacity:int -> every:int -> Obs_metrics.t -> t
(** [create ~every registry] snapshots [registry] every [every] progress
    units, keeping the most recent [capacity] (default [512]) captures.
    Requires [every > 0] and [capacity > 0]. *)

val tick : t -> at:int -> unit
(** [tick t ~at] captures iff progress [at] has reached the next
    [every]-multiple mark. Progress that jumps several marks in one tick
    (chunked execution) captures once, then re-arms past [at] — so the
    effective spacing rounds up to the caller's tick granularity. *)

val capture : t -> at:int -> unit
(** Unconditional capture (used for the final state of a run, so the
    last entry always reflects completion). Does not re-arm {!tick}. *)

val entries : t -> entry list
(** Retained captures, oldest first. *)

val captured : t -> int
(** Total captures ever made, including evicted ones. *)

val dropped : t -> int
(** Captures evicted by the ring bound: [max 0 (captured - capacity)]. *)

val last_at : t -> int option
(** The [at] of the most recent capture, if any. *)

val entry_to_json : entry -> Jsonx.t
(** [{"v":1,"type":"snapshot","at":N,"metrics":{...}}] — one JSONL
    line. *)

val entry_of_json : Jsonx.t -> (entry, string) result

val write_jsonl : ?meta:Obs_meta.t -> t -> out_channel -> unit
(** All retained entries, oldest first, one JSON object per line. When
    [meta] is given the file opens with its {!Obs_meta.to_json}
    provenance header, and — if the ring has wrapped, i.e. the retained
    window is a shard whose first entry is not the run's first capture —
    the header is re-emitted at the rotation boundary, so splitting the
    file there still yields self-describing shards ({!Obs_store}
    ingestion refuses headerless artifacts). *)

val load : string -> (entry list, string) result
(** Read a file written by {!write_jsonl}. Blank lines are skipped;
    provenance headers are validated and may appear anywhere (rotated
    shards re-emit them mid-file); malformed lines are errors with
    [file:line] positions. *)

val load_with_meta : string -> (Obs_meta.t option * entry list, string) result
(** {!load} plus the first provenance header, when the file has one. *)
