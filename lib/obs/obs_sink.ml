type t =
  | Null
  | Jsonl of out_channel
  | Console of Format.formatter
  | Custom of (Obs_event.t -> unit)

let consumes = function Null -> false | Jsonl _ | Console _ | Custom _ -> true

let emit sink ev =
  match sink with
  | Null -> ()
  | Jsonl oc ->
      output_string oc (Jsonx.to_string (Obs_event.to_json ev));
      output_char oc '\n'
  | Console ppf -> Format.fprintf ppf "%a@." Obs_event.pp ev
  | Custom f -> f ev

let tee sinks =
  match List.filter consumes sinks with
  | [] -> Null
  | [ s ] -> s
  | live -> Custom (fun ev -> List.iter (fun s -> emit s ev) live)

let with_jsonl_file ?meta path k =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (match meta with
      | Some m ->
          output_string oc (Jsonx.to_string (Obs_meta.to_json m));
          output_char oc '\n'
      | None -> ());
      k (Jsonl oc))
