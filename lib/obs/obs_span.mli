(** A hierarchical span profiler: begin/end intervals on a monotonic
    clock, with nesting, per-span attributes, and a Chrome trace-event
    exporter.

    Where {!Obs_metrics} answers "how often / how long on average" and
    {!Obs_event} answers "what happened in simulated time", a span
    recorder answers {e where wall time goes} inside one call — which
    phase of [Guideline.plan] dominates, how the [Optimizer] sweeps
    scale, what a [Monte_carlo] batch costs. Spans nest strictly (a
    stack), so a recorder captures one thread of execution; the repo is
    single-domain, which is exactly the shape we need.

    {2 Overhead discipline}

    A recorder only exists when profiling was requested ({!Obs.t} carries
    it as an [option]); instrumented hot paths hoist
    [Obs.span_recorder obs] once and skip every span call when it is
    [None], so the disabled cost is one branch — the same budget as the
    rest of the observability layer, pinned by the [bench/] episode-run
    variants. When enabled, {!enter}/{!exit} cost two clock reads and one
    record each; completed spans go into a preallocated growable buffer
    (no per-span hashing, no I/O until export).

    {2 Export}

    {!to_chrome_json} renders the Chrome trace-event format (JSON Array
    Format with ["X"] complete events, timestamps in microseconds) — the
    file loads directly in [about://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}. {!Trace_report.span_tree} folds the same spans into a
    self-time/total-time call tree for terminal consumption. *)

type span = {
  id : int;  (** Creation order, 0-based; also the chronological order. *)
  parent : int;  (** [id] of the enclosing span, or [-1] for roots. *)
  depth : int;  (** Nesting depth, [0] for roots. *)
  name : string;
  start_us : float;  (** Microseconds since the recorder was created. *)
  dur_us : float;
  attrs : (string * Jsonx.t) list;
      (** Enter attributes followed by exit attributes, in call order. *)
}

type t
(** A recorder: an open-span stack plus a buffer of completed spans. *)

val create : ?max_spans:int -> unit -> t
(** [create ()] is an empty recorder. [max_spans] (default [1_000_000])
    bounds the completed-span buffer: once reached, further completed
    spans are counted in {!dropped} instead of stored, so a runaway loop
    degrades the profile rather than memory. Requires [max_spans > 0]. *)

val enter : ?attrs:(string * Jsonx.t) list -> t -> string -> unit
(** Open a span named [name] as a child of the innermost open span. *)

val exit : ?attrs:(string * Jsonx.t) list -> t -> unit
(** Close the innermost open span, appending [attrs] to the ones given
    at {!enter}. @raise Invalid_argument when no span is open (an
    unbalanced [exit] is an instrumentation bug worth failing loudly
    on). *)

val record : ?attrs:(string * Jsonx.t) list -> t -> string -> (unit -> 'a) -> 'a
(** [record t name f] is [enter t name; f ()] with a guaranteed matching
    {!exit}, also on exceptions. *)

val open_depth : t -> int
(** Number of currently open spans. *)

val count : t -> int
(** Completed spans stored (excludes {!dropped}). *)

val dropped : t -> int
(** Completed spans discarded after the buffer filled. *)

val max_depth : t -> int
(** Deepest nesting observed so far, as a level count: a lone root span
    is depth [1], a child of a child is [3]; [0] before any {!enter}. *)

val spans : t -> span list
(** Completed spans in creation (= start-time) order. Open spans are not
    included; close them before exporting. *)

val absorb : t -> t -> unit
(** [absorb t src] grafts every completed span of [src] into [t] as
    descendants of [t]'s innermost open span (or as roots when none is
    open): ids are rebased, depths shifted, and timestamps re-expressed
    against [t]'s epoch, so the merged recorder exports one consistent
    Chrome trace. [src]'s dropped count carries over; [src] itself is
    left untouched and must have no open spans ([Invalid_argument]
    otherwise). This is how the parallel execution layer merges the
    per-chunk recorders of worker domains back into the caller's
    profile, in chunk-index order. *)

val to_chrome_json : t -> Jsonx.t
(** The completed spans in Chrome trace-event JSON Array Format:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}] where each event is
    [{"name", "cat": "cs", "ph": "X", "ts", "dur", "pid": 1, "tid": 1,
    "args"}] with [ts]/[dur] in microseconds and the span's attributes
    (plus its ["depth"]) under ["args"]. Loadable in [about://tracing] /
    Perfetto as-is. *)

val validate_chrome : Jsonx.t -> (int * int, string) result
(** [validate_chrome j] checks that [j] has the exact shape
    {!to_chrome_json} produces — the shape contract the cram tests pin —
    and returns [(events, max_depth_levels)] on success. The error names
    the first offending event index and field. *)
