type t = {
  schema : int;
  git_sha : string option;
  seed : int64 option;
  jobs : int option;
  scenario : string option;
  run_id : string option;
  parent_span : string option;
}

let meta_version = 1

let capture_git_sha () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> None
  | ic -> (
      let line = try input_line ic with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> Some line
      | _ -> None
      | exception _ -> None)

let make ?git_sha ?seed ?jobs ?scenario ?run_id ?parent_span () =
  let git_sha =
    match git_sha with Some _ as s -> s | None -> capture_git_sha ()
  in
  {
    schema = Obs_event.schema_version;
    git_sha;
    seed;
    jobs;
    scenario;
    run_id;
    parent_span;
  }

let to_json t =
  let opt name f = function Some v -> [ (name, f v) ] | None -> [] in
  Jsonx.Obj
    (("v", Jsonx.Int meta_version)
    :: ("type", Jsonx.String "meta")
    :: ("schema", Jsonx.Int t.schema)
    :: (opt "git_sha" (fun s -> Jsonx.String s) t.git_sha
       @ opt "seed" (fun s -> Jsonx.Int (Int64.to_int s)) t.seed
       @ opt "jobs" (fun j -> Jsonx.Int j) t.jobs
       @ opt "scenario" (fun s -> Jsonx.String s) t.scenario
       @ opt "run_id" (fun s -> Jsonx.String s) t.run_id
       @ opt "parent_span" (fun s -> Jsonx.String s) t.parent_span))

let is_meta_json j =
  match Jsonx.member "type" j with
  | Some (Jsonx.String "meta") -> true
  | _ -> false

let ( let* ) = Result.bind

let of_json j =
  let* v =
    match Option.bind (Jsonx.member "v" j) Jsonx.get_int with
    | Some v -> Ok v
    | None -> Error "meta header: missing or ill-typed field \"v\""
  in
  if v <> meta_version then
    Error
      (Printf.sprintf "meta header: unsupported version %d (want %d)" v
         meta_version)
  else
    let* () =
      if is_meta_json j then Ok ()
      else Error "meta header: field \"type\" is not \"meta\""
    in
    let* schema =
      match Option.bind (Jsonx.member "schema" j) Jsonx.get_int with
      | Some s -> Ok s
      | None -> Error "meta header: missing or ill-typed field \"schema\""
    in
    let* () =
      if schema = Obs_event.schema_version then Ok ()
      else
        Error
          (Printf.sprintf
             "meta header: trace written with event schema v%d, this reader \
              understands v%d"
             schema Obs_event.schema_version)
    in
    let str name = Option.bind (Jsonx.member name j) Jsonx.get_string in
    let int name = Option.bind (Jsonx.member name j) Jsonx.get_int in
    Ok
      {
        schema;
        git_sha = str "git_sha";
        seed = Option.map Int64.of_int (int "seed");
        jobs = int "jobs";
        scenario = str "scenario";
        run_id = str "run_id";
        parent_span = str "parent_span";
      }

let pp ppf t =
  Format.fprintf ppf "schema v%d" t.schema;
  (match t.scenario with
  | Some s -> Format.fprintf ppf ", scenario %S" s
  | None -> ());
  (match t.seed with
  | Some s -> Format.fprintf ppf ", seed %Ld" s
  | None -> ());
  (match t.jobs with
  | Some j -> Format.fprintf ppf ", jobs %d" j
  | None -> ());
  (match t.run_id with
  | Some id -> Format.fprintf ppf ", run %s" id
  | None -> ());
  (match t.parent_span with
  | Some s -> Format.fprintf ppf ", parent %s" s
  | None -> ());
  match t.git_sha with
  | Some sha -> Format.fprintf ppf ", git %s" sha
  | None -> ()
