(** Cross-run trend analytics: the bench trajectory joined with the
    observability store.

    [BENCH_HISTORY.jsonl] accumulates one {!Bench_record.t} per timing
    run; a [.csobs] store ({!Obs_store}) accumulates the traces those
    runs' commits produced. Each answers half of the regression
    question: the history says {e when} a metric moved, the store says
    {e what} the first bad run did differently. This module joins them —
    extract one benchmark's trajectory, fit a noise-aware slope to it,
    locate the first significant adjacent jump, and (when both sides'
    traces are in the store) diff the traces to the first diverging
    event with {!Obs_query.diff}.

    Advisory points — entries whose fit was not {!Bench_fit.reliable},
    recorded with ["advisory": true] — stay {e visible} in the
    trajectory but are excluded from the slope fit and from jump
    attribution: a point whose own error bars are unbounded can neither
    steer a slope nor convict a commit. The slope itself reuses
    {!Bench_fit}'s conventions (Kahan-compensated sums,
    {!Bench_fit.min_samples} before r² is reported, [nan] over
    degenerate inputs) but regresses {e with} an intercept, because a
    trajectory's baseline cost is arbitrary — only its drift matters. *)

type point = {
  seq : int;  (** 0-based position in the history, oldest first. *)
  git_sha : string;
  unix_time : float;  (** As recorded by the timing run. *)
  ns_per_call : float;
  r_square : float;
  advisory : bool;
}

type trajectory = {
  metric : string;
  points : point list;  (** Oldest first; one per record naming [metric]. *)
  fit : Bench_fit.fit option;
      (** Slope in ns/run-index over the usable (non-advisory, finite)
          points; [None] when fewer than two are usable. [kept] counts
          usable points, [total] all points, so [total - kept] is the
          advisory/unusable tail the fit ignored. *)
}

val metrics_of : Bench_record.t list -> string list
(** All benchmark names appearing in any record, sorted, deduplicated —
    what [csbench trend] lists when asked for an unknown metric. *)

val trajectory : metric:string -> Bench_record.t list -> trajectory
(** Extract [metric]'s trajectory from a history (oldest first, as
    {!Bench_record.load_history} returns it). Records that do not carry
    the metric contribute no point but still advance [seq], so the
    x-axis stays aligned with history positions. *)

val slope_fit : (float * float) list -> Bench_fit.fit option
(** Least squares {e with intercept} over [(x, y)] pairs: [ns_per_run]
    is the slope, [r_square] the coefficient of determination ([nan]
    below {!Bench_fit.min_samples} points or at zero x-variance, per
    {!Bench_fit}'s conventions). [None] with fewer than two pairs. *)

type jump = {
  j_from : point;
  j_to : point;  (** First usable point whose ratio to [j_from] trips. *)
  j_ratio : float;  (** [j_to.ns_per_call /. j_from.ns_per_call]. *)
}

val first_jump : ?threshold:float -> trajectory -> jump option
(** First adjacent pair of {e usable} points whose ratio leaves
    [[1/threshold, threshold]] (default [1.25] — the same shape as
    {!Bench_gate}'s regression band). Advisory points are skipped, so a
    jump is always between two measured values. *)

type attribution = {
  a_jump : jump;
  a_left_trace : string option;  (** Stored trace path of [j_from]'s sha. *)
  a_right_trace : string option;
  a_divergence : Obs_query.divergence option;
      (** First diverging event between the two traces, when both were
          in the store and loaded cleanly. *)
  a_note : string;  (** Why attribution stopped, when it did. *)
}

val attribute :
  ?threshold:float -> store:Obs_store.t -> trajectory -> attribution option
(** [attribute ~store tr] finds {!first_jump} and walks it back to the
    traces: look up both shas in the store ({!Obs_store.find_by_sha}),
    load their stored traces, and {!Obs_query.diff} them. Every partial
    outcome is still reported — a jump with no stored traces yields an
    attribution whose [a_note] says which side was missing, because
    "the store has no trace for commit X" is itself actionable. [None]
    only when the trajectory has no jump at all. *)

val pp_trajectory : Format.formatter -> trajectory -> unit
(** Fixed-width table — seq, sha, ns/call, r², advisory marker — then
    the slope line ([per-step drift] with its r², or the reason no
    slope was fit). *)

val pp_attribution : Format.formatter -> attribution -> unit
