(** Declarative health rules (SLOs) over metric snapshots.

    A rule is one line of text — [SEVERITY SELECTOR OP VALUE] — and a
    rule set is evaluated against a sequence of {!Obs_metrics.snapshot}
    values: the single end-of-run snapshot of a live registry, every
    frame of a snapshot ring, or the synthetic registry
    {!Obs_query.metrics_of_events} builds from a finished trace. The
    result is a typed verdict report that [cstrace check],
    [cstrace watch] and [csctl --health] all share.

    {2 Grammar}

    One rule per line; blank lines and [#] comments are ignored.

    {v
    rule     ::= severity selector op value
    severity ::= "warn" | "critical"
    selector ::= metric-name [ "." stat ] [ "?" ]
    stat     ::= "count" | "sum" | "mean" | "min" | "max"
               | "p50" | "p95" | "p99"
    op       ::= "<" | "<=" | ">" | ">=" | "==" | "!="
    value    ::= float literal
    v}

    A bare counter selector reads its count, a bare gauge its value, a
    bare histogram its mean; [base.stat] reads one summary field of
    histogram [base] ([counter.count] is also accepted). A trailing
    [?] marks the rule optional: a selector that resolves in no
    snapshot is then [Skipped] rather than [Missing], which lets one
    rules file serve both trace-derived ([trace.*]) and in-process
    ([gc.*], [pool.*]) metric sources. Gauge/histogram values that are
    [nan] (never set / empty) do not resolve.

    {2 Semantics}

    The rule asserts the selected value satisfies [value OP threshold]
    in {e every} snapshot where the selector resolves; the first
    violation fails the rule, recording the offending value and the
    snapshot's trial index when it has one. [==]/[!=] use
    {!Tol.exactly}. A non-optional selector resolving nowhere is
    [Missing], which counts as a warn-level failure. *)

type severity = Warn | Critical

type op = Lt | Le | Gt | Ge | Eq | Ne

type rule = {
  severity : severity;
  selector : string;  (** without any trailing [?] *)
  optional : bool;
  op : op;
  threshold : float;
}

type status =
  | Pass
  | Fail of { value : float; at : int option }
  | Missing  (** selector resolved in no snapshot (non-optional) *)
  | Skipped  (** optional selector resolved in no snapshot *)

type verdict = Healthy | Unhealthy of severity

type report = {
  outcomes : (rule * status) list;  (** in rule order *)
  verdict : verdict;
  entries : int;  (** number of snapshots evaluated *)
}

val parse_rule : string -> (rule, string) result
(** Parse one rule line (used for [--rule] CLI flags). *)

val parse : string -> (rule list, string) result
(** Parse a whole [.cshealth] document; errors carry 1-based line
    numbers. An empty document is [Ok []]. *)

val resolve : Obs_metrics.snapshot -> string -> float option
(** [resolve snap selector] is the selected value, when present and
    finite enough to compare (see grammar above). *)

val evaluate :
  rules:rule list -> (int option * Obs_metrics.snapshot) list -> report
(** Evaluate every rule over the snapshot sequence. The [int option] is
    the snapshot's trial index ([Obs_snapshot] ring position) or [None]
    for a single end-of-run snapshot. *)

val exit_code : report -> int
(** [0] healthy, [1] warn-level failures only, [2] any critical
    failure — the [cstrace check] exit convention. *)

val pp_op : Format.formatter -> op -> unit
val pp_rule : Format.formatter -> rule -> unit

val pp_report : Format.formatter -> report -> unit
(** Deterministic human-readable listing, one rule per line
    ([\[PASS\]]/[\[FAIL\]]/[\[MISS\]]/[\[SKIP\]]), then a final
    [verdict:] line. *)

val verdict_to_string : verdict -> string
(** ["ok"], ["warn"] or ["critical"]. *)

val report_to_json : report -> Jsonx.t
(** Machine-readable verdict: [{"v":1,"verdict":...,"entries":...,
    "rules":[...]}] for the [--json] flag and CI artifacts. *)
