type point = {
  seq : int;
  git_sha : string;
  unix_time : float;
  ns_per_call : float;
  r_square : float;
  advisory : bool;
}

type trajectory = {
  metric : string;
  points : point list;
  fit : Bench_fit.fit option;
}

type jump = { j_from : point; j_to : point; j_ratio : float }

type attribution = {
  a_jump : jump;
  a_left_trace : string option;
  a_right_trace : string option;
  a_divergence : Obs_query.divergence option;
  a_note : string;
}

(* A point the analytics may lean on: measured (not advisory) and
   finite. Advisory points still render in the table — they are data
   about the *measurement*, just not about the code. *)
let usable p = (not p.advisory) && Float.is_finite p.ns_per_call

let metrics_of records =
  List.sort_uniq String.compare
    (List.concat_map
       (fun r -> List.map fst r.Bench_record.results)
       records)

(* Kahan-compensated fold, same discipline as Bench_fit: trajectories
   are short but the ns values span nine orders of magnitude. *)
let ksum f xs =
  let sum = ref 0.0 and c = ref 0.0 in
  List.iter
    (fun x ->
      let y = f x -. !c in
      let t = !sum +. y in
      c := t -. !sum -. y;
      sum := t)
    xs;
  !sum

let slope_fit pairs =
  let n = List.length pairs in
  if n < 2 then None
  else
    let nf = float_of_int n in
    let mx = ksum fst pairs /. nf and my = ksum snd pairs /. nf in
    let sxx = ksum (fun (x, _) -> (x -. mx) *. (x -. mx)) pairs in
    let syy = ksum (fun (_, y) -> (y -. my) *. (y -. my)) pairs in
    let sxy = ksum (fun (x, y) -> (x -. mx) *. (y -. my)) pairs in
    let slope = if sxx > 0.0 then sxy /. sxx else Float.nan in
    let r_square =
      (* With-intercept r² = sxy²/(sxx·syy); nan below min_samples or
         when either variance is degenerate, per Bench_fit. *)
      if n >= Bench_fit.min_samples && sxx > 0.0 && syy > 0.0 then
        sxy *. sxy /. (sxx *. syy)
      else Float.nan
    in
    Some { Bench_fit.ns_per_run = slope; r_square; kept = n; total = n }

let trajectory ~metric records =
  let points =
    records
    |> List.mapi (fun seq (r : Bench_record.t) ->
           match List.assoc_opt metric r.results with
           | None -> None
           | Some (e : Bench_record.entry) ->
               Some
                 {
                   seq;
                   git_sha = r.git_sha;
                   unix_time = r.unix_time;
                   ns_per_call = e.ns_per_call;
                   r_square = e.r_square;
                   advisory = e.advisory;
                 })
    |> List.filter_map Fun.id
  in
  let pairs =
    List.filter_map
      (fun p ->
        if usable p then Some (float_of_int p.seq, p.ns_per_call)
        else None)
      points
  in
  let fit =
    Option.map
      (fun f -> { f with Bench_fit.total = List.length points })
      (slope_fit pairs)
  in
  { metric; points; fit }

let first_jump ?(threshold = 1.25) tr =
  if not (threshold > 1.0) then
    invalid_arg "Obs_trend.first_jump: threshold must be > 1";
  let rec go = function
    | a :: (b :: _ as rest) when a.ns_per_call > 0.0 ->
        let ratio = b.ns_per_call /. a.ns_per_call in
        if ratio > threshold || ratio < 1.0 /. threshold then
          Some { j_from = a; j_to = b; j_ratio = ratio }
        else go rest
    | _ :: rest -> go rest
    | [] -> None
  in
  go (List.filter usable tr.points)

let attribute ?threshold ~store tr =
  match first_jump ?threshold tr with
  | None -> None
  | Some jump ->
      let trace_of sha =
        match Obs_store.find_by_sha store ~git_sha:sha with
        | Error e -> (None, Some e)
        | Ok records -> (
            match
              List.find_opt
                (fun r -> r.Obs_store.kind = Obs_store.Trace)
                records
            with
            | Some r -> (Some (Obs_store.artifact_path store r), None)
            | None -> (None, None))
      in
      let left, lerr = trace_of jump.j_from.git_sha in
      let right, rerr = trace_of jump.j_to.git_sha in
      let missing side sha =
        Printf.sprintf "no stored trace for %s commit %s" side sha
      in
      let divergence, note =
        match (left, right, lerr, rerr) with
        | _, _, Some e, _ | _, _, _, Some e -> (None, "store error: " ^ e)
        | None, None, _, _ ->
            ( None,
              missing "either" jump.j_from.git_sha
              ^ " / " ^ jump.j_to.git_sha )
        | None, Some _, _, _ -> (None, missing "left" jump.j_from.git_sha)
        | Some _, None, _, _ -> (None, missing "right" jump.j_to.git_sha)
        | Some l, Some r, None, None -> (
            match (Obs_query.load l, Obs_query.load r) with
            | Error e, _ | _, Error e -> (None, "trace load: " ^ e)
            | Ok lt, Ok rt -> (
                match
                  Obs_query.diff lt.Obs_query.events rt.Obs_query.events
                with
                | Some d -> (Some d, "")
                | None ->
                    ( None,
                      "stored traces are structurally identical — the \
                       regression is not visible at event granularity" )))
      in
      Some
        {
          a_jump = jump;
          a_left_trace = left;
          a_right_trace = right;
          a_divergence = divergence;
          a_note = note;
        }

let pp_trajectory ppf tr =
  Format.fprintf ppf "metric: %s@." tr.metric;
  if tr.points = [] then Format.fprintf ppf "  (no points)@."
  else begin
    Format.fprintf ppf "  %4s  %-10s  %14s  %8s@." "seq" "sha" "ns/call"
      "r^2";
    List.iter
      (fun p ->
        Format.fprintf ppf "  %4d  %-10s  %14.6g  %8.4g%s@." p.seq
          p.git_sha p.ns_per_call p.r_square
          (if p.advisory then "  advisory" else ""))
      tr.points
  end;
  match tr.fit with
  | None ->
      Format.fprintf ppf
        "slope: not fit (fewer than 2 usable points)@."
  | Some f ->
      Format.fprintf ppf
        "slope: %+.6g ns/call per run (%d/%d usable point(s), r^2 %.4g)@."
        f.Bench_fit.ns_per_run f.Bench_fit.kept f.Bench_fit.total
        f.Bench_fit.r_square

let pp_attribution ppf a =
  let j = a.a_jump in
  Format.fprintf ppf
    "jump: %.2fx between %s (seq %d) and %s (seq %d): %.6g -> %.6g \
     ns/call@."
    j.j_ratio j.j_from.git_sha j.j_from.seq j.j_to.git_sha j.j_to.seq
    j.j_from.ns_per_call j.j_to.ns_per_call;
  let side name = function
    | Some p -> Format.fprintf ppf "%s trace: %s@." name p
    | None -> Format.fprintf ppf "%s trace: not in store@." name
  in
  side "left " a.a_left_trace;
  side "right" a.a_right_trace;
  (match a.a_divergence with
  | Some d -> Format.fprintf ppf "%a" Obs_query.pp_divergence d
  | None -> ());
  if a.a_note <> "" then Format.fprintf ppf "note: %s@." a.a_note
