type span = {
  id : int;
  parent : int;
  depth : int;
  name : string;
  start_us : float;
  dur_us : float;
  attrs : (string * Jsonx.t) list;
}

type frame = {
  f_id : int;
  f_parent : int;
  f_depth : int;
  f_name : string;
  f_start : float;  (** {!Obs_clock} seconds, absolute. *)
  f_attrs : (string * Jsonx.t) list;
}

type t = {
  epoch : float;  (** {!Obs_clock} seconds at creation. *)
  max_spans : int;
  mutable stack : frame list;
  mutable next_id : int;
  mutable rev_done : span list;
  mutable n_done : int;
  mutable n_dropped : int;
  mutable deepest : int;  (** Level count, 0 before any enter. *)
}

let create ?(max_spans = 1_000_000) () =
  if max_spans <= 0 then invalid_arg "Obs_span.create: max_spans must be > 0";
  {
    epoch = Obs_clock.now ();
    max_spans;
    stack = [];
    next_id = 0;
    rev_done = [];
    n_done = 0;
    n_dropped = 0;
    deepest = 0;
  }

let enter ?(attrs = []) t name =
  let depth = match t.stack with [] -> 0 | f :: _ -> f.f_depth + 1 in
  let parent = match t.stack with [] -> -1 | f :: _ -> f.f_id in
  let f =
    {
      f_id = t.next_id;
      f_parent = parent;
      f_depth = depth;
      f_name = name;
      f_start = Obs_clock.now ();
      f_attrs = attrs;
    }
  in
  t.next_id <- t.next_id + 1;
  if depth + 1 > t.deepest then t.deepest <- depth + 1;
  t.stack <- f :: t.stack

let exit ?(attrs = []) t =
  match t.stack with
  | [] -> invalid_arg "Obs_span.exit: no open span"
  | f :: rest ->
      t.stack <- rest;
      if t.n_done >= t.max_spans then t.n_dropped <- t.n_dropped + 1
      else begin
        let dur = Obs_clock.elapsed_since f.f_start in
        let sp =
          {
            id = f.f_id;
            parent = f.f_parent;
            depth = f.f_depth;
            name = f.f_name;
            start_us = (f.f_start -. t.epoch) *. 1e6;
            dur_us = dur *. 1e6;
            attrs = (match attrs with [] -> f.f_attrs | _ -> f.f_attrs @ attrs);
          }
        in
        t.rev_done <- sp :: t.rev_done;
        t.n_done <- t.n_done + 1
      end

let record ?attrs t name f =
  enter ?attrs t name;
  Fun.protect ~finally:(fun () -> exit t) f

let open_depth t = List.length t.stack
let count t = t.n_done
let dropped t = t.n_dropped
let max_depth t = t.deepest

let spans t =
  List.sort (fun a b -> Int.compare a.id b.id) t.rev_done

let absorb t src =
  if src.stack <> [] then
    invalid_arg "Obs_span.absorb: source recorder has open spans";
  (* Graft src's completed spans under t's innermost open span (or as
     roots). Ids are rebased past t's next id; timestamps are re-expressed
     against t's epoch, so the merged timeline stays consistent — spans
     recorded on sibling domains may overlap in time, which the Chrome
     format renders fine. *)
  let base_parent = match t.stack with [] -> -1 | f :: _ -> f.f_id in
  let base_depth = match t.stack with [] -> 0 | f :: _ -> f.f_depth + 1 in
  let offset_us = (src.epoch -. t.epoch) *. 1e6 in
  let id_base = t.next_id in
  List.iter
    (fun sp ->
      if t.n_done >= t.max_spans then t.n_dropped <- t.n_dropped + 1
      else begin
        let sp =
          {
            sp with
            id = id_base + sp.id;
            parent =
              (if sp.parent < 0 then base_parent else id_base + sp.parent);
            depth = base_depth + sp.depth;
            start_us = sp.start_us +. offset_us;
          }
        in
        t.rev_done <- sp :: t.rev_done;
        t.n_done <- t.n_done + 1
      end)
    (spans src);
  t.next_id <- t.next_id + src.next_id;
  t.n_dropped <- t.n_dropped + src.n_dropped;
  if base_depth + src.deepest > t.deepest then
    t.deepest <- base_depth + src.deepest

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                          *)

let event_of_span sp =
  Jsonx.Obj
    [
      ("name", Jsonx.String sp.name);
      ("cat", Jsonx.String "cs");
      ("ph", Jsonx.String "X");
      ("ts", Jsonx.Float sp.start_us);
      ("dur", Jsonx.Float sp.dur_us);
      ("pid", Jsonx.Int 1);
      ("tid", Jsonx.Int 1);
      ("args", Jsonx.Obj (("depth", Jsonx.Int sp.depth) :: sp.attrs));
    ]

let to_chrome_json t =
  Jsonx.Obj
    [
      ("traceEvents", Jsonx.List (List.map event_of_span (spans t)));
      ("displayTimeUnit", Jsonx.String "ms");
    ]

let validate_chrome j =
  let ( let* ) = Result.bind in
  let field ~i name conv ev =
    match Option.bind (Jsonx.member name ev) conv with
    | Some v -> Ok v
    | None ->
        Error (Printf.sprintf "event %d: missing or ill-typed %S" i name)
  in
  match Jsonx.member "traceEvents" j with
  | Some (Jsonx.List events) ->
      let rec check i deepest = function
        | [] -> Ok (List.length events, deepest)
        | ev :: rest ->
            let* _name = field ~i "name" Jsonx.get_string ev in
            let* ph = field ~i "ph" Jsonx.get_string ev in
            let* _ =
              if String.equal ph "X" then Ok ()
              else Error (Printf.sprintf "event %d: ph %S, expected \"X\"" i ph)
            in
            let* ts = field ~i "ts" Jsonx.get_float ev in
            let* dur = field ~i "dur" Jsonx.get_float ev in
            let* _ =
              if ts >= 0.0 && dur >= 0.0 then Ok ()
              else Error (Printf.sprintf "event %d: negative ts or dur" i)
            in
            let* _pid = field ~i "pid" Jsonx.get_int ev in
            let* _tid = field ~i "tid" Jsonx.get_int ev in
            let* args =
              match Jsonx.member "args" ev with
              | Some (Jsonx.Obj _ as a) -> Ok a
              | Some _ | None ->
                  Error (Printf.sprintf "event %d: missing args object" i)
            in
            let* depth = field ~i "depth" Jsonx.get_int args in
            check (i + 1) (Int.max deepest (depth + 1)) rest
      in
      check 0 0 events
  | Some _ -> Error "traceEvents is not a list"
  | None -> Error "missing traceEvents"
