type t =
  | Run_started of { time : float; source : string; seed : int64 option }
  | Plan_computed of {
      source : string;
      t0 : float;
      periods : int;
      expected_work : float;
      elapsed : float;
    }
  | Episode_started of { time : float; ws : int; ep : int }
  | Period_dispatched of {
      time : float;
      ws : int;
      ep : int;
      period : float;
      assigned : float;
    }
  | Period_completed of {
      time : float;
      ws : int;
      ep : int;
      period : float;
      banked : float;
      overhead : float;
    }
  | Period_killed of {
      time : float;
      ws : int;
      ep : int;
      lost : float;
      overhead : float;
    }
  | Owner_returned of { time : float; ws : int; ep : int }
  | Episode_finished of {
      time : float;
      ws : int;
      ep : int;
      work_done : float;
      interrupted : bool;
    }
  | Pool_drained of { time : float; remaining : float }
  | Run_finished of { time : float }

let schema_version = 1

(* ------------------------------------------------------------------ *)
(* Accessors (the query layer keys on these)                          *)

let kind = function
  | Run_started _ -> "run_started"
  | Plan_computed _ -> "plan_computed"
  | Episode_started _ -> "episode_started"
  | Period_dispatched _ -> "period_dispatched"
  | Period_completed _ -> "period_completed"
  | Period_killed _ -> "period_killed"
  | Owner_returned _ -> "owner_returned"
  | Episode_finished _ -> "episode_finished"
  | Pool_drained _ -> "pool_drained"
  | Run_finished _ -> "run_finished"

let time = function
  | Run_started { time; _ }
  | Episode_started { time; _ }
  | Period_dispatched { time; _ }
  | Period_completed { time; _ }
  | Period_killed { time; _ }
  | Owner_returned { time; _ }
  | Episode_finished { time; _ }
  | Pool_drained { time; _ }
  | Run_finished { time } ->
      Some time
  | Plan_computed _ -> None

let ids = function
  | Episode_started { ws; ep; _ }
  | Period_dispatched { ws; ep; _ }
  | Period_completed { ws; ep; _ }
  | Period_killed { ws; ep; _ }
  | Owner_returned { ws; ep; _ }
  | Episode_finished { ws; ep; _ } ->
      Some (ws, ep)
  | Run_started _ | Plan_computed _ | Pool_drained _ | Run_finished _ -> None

(* ------------------------------------------------------------------ *)
(* Encoding                                                           *)

let obj ty fields =
  Jsonx.Obj
    (("v", Jsonx.Int schema_version) :: ("type", Jsonx.String ty) :: fields)

let to_json = function
  | Run_started { time; source; seed } ->
      obj "run_started"
        (("t", Jsonx.Float time)
        :: ("source", Jsonx.String source)
        ::
        (match seed with
        | Some s -> [ ("seed", Jsonx.Int (Int64.to_int s)) ]
        | None -> []))
  | Plan_computed { source; t0; periods; expected_work; elapsed } ->
      obj "plan_computed"
        [
          ("source", Jsonx.String source);
          ("t0", Jsonx.Float t0);
          ("periods", Jsonx.Int periods);
          ("expected_work", Jsonx.Float expected_work);
          ("elapsed", Jsonx.Float elapsed);
        ]
  | Episode_started { time; ws; ep } ->
      obj "episode_started"
        [ ("t", Jsonx.Float time); ("ws", Jsonx.Int ws); ("ep", Jsonx.Int ep) ]
  | Period_dispatched { time; ws; ep; period; assigned } ->
      obj "period_dispatched"
        [
          ("t", Jsonx.Float time);
          ("ws", Jsonx.Int ws);
          ("ep", Jsonx.Int ep);
          ("period", Jsonx.Float period);
          ("assigned", Jsonx.Float assigned);
        ]
  | Period_completed { time; ws; ep; period; banked; overhead } ->
      obj "period_completed"
        [
          ("t", Jsonx.Float time);
          ("ws", Jsonx.Int ws);
          ("ep", Jsonx.Int ep);
          ("period", Jsonx.Float period);
          ("banked", Jsonx.Float banked);
          ("overhead", Jsonx.Float overhead);
        ]
  | Period_killed { time; ws; ep; lost; overhead } ->
      obj "period_killed"
        [
          ("t", Jsonx.Float time);
          ("ws", Jsonx.Int ws);
          ("ep", Jsonx.Int ep);
          ("lost", Jsonx.Float lost);
          ("overhead", Jsonx.Float overhead);
        ]
  | Owner_returned { time; ws; ep } ->
      obj "owner_returned"
        [ ("t", Jsonx.Float time); ("ws", Jsonx.Int ws); ("ep", Jsonx.Int ep) ]
  | Episode_finished { time; ws; ep; work_done; interrupted } ->
      obj "episode_finished"
        [
          ("t", Jsonx.Float time);
          ("ws", Jsonx.Int ws);
          ("ep", Jsonx.Int ep);
          ("work_done", Jsonx.Float work_done);
          ("interrupted", Jsonx.Bool interrupted);
        ]
  | Pool_drained { time; remaining } ->
      obj "pool_drained"
        [ ("t", Jsonx.Float time); ("remaining", Jsonx.Float remaining) ]
  | Run_finished { time } -> obj "run_finished" [ ("t", Jsonx.Float time) ]

(* ------------------------------------------------------------------ *)
(* Decoding                                                           *)

let ( let* ) = Result.bind

let field name get j =
  match Jsonx.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match get v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "ill-typed field %S" name))

let f_float name = field name Jsonx.get_float
let f_int name = field name Jsonx.get_int
let f_string name = field name Jsonx.get_string
let f_bool name = field name Jsonx.get_bool

let of_json j =
  let* v = f_int "v" j in
  if v <> schema_version then
    Error (Printf.sprintf "unsupported schema version %d (want %d)" v
             schema_version)
  else
    let* ty = f_string "type" j in
    match ty with
    | "run_started" ->
        let* time = f_float "t" j in
        let* source = f_string "source" j in
        let seed =
          match Jsonx.member "seed" j with
          | Some s -> Option.map Int64.of_int (Jsonx.get_int s)
          | None -> None
        in
        Ok (Run_started { time; source; seed })
    | "plan_computed" ->
        let* source = f_string "source" j in
        let* t0 = f_float "t0" j in
        let* periods = f_int "periods" j in
        let* expected_work = f_float "expected_work" j in
        let* elapsed = f_float "elapsed" j in
        Ok (Plan_computed { source; t0; periods; expected_work; elapsed })
    | "episode_started" ->
        let* time = f_float "t" j in
        let* ws = f_int "ws" j in
        let* ep = f_int "ep" j in
        Ok (Episode_started { time; ws; ep })
    | "period_dispatched" ->
        let* time = f_float "t" j in
        let* ws = f_int "ws" j in
        let* ep = f_int "ep" j in
        let* period = f_float "period" j in
        let* assigned = f_float "assigned" j in
        Ok (Period_dispatched { time; ws; ep; period; assigned })
    | "period_completed" ->
        let* time = f_float "t" j in
        let* ws = f_int "ws" j in
        let* ep = f_int "ep" j in
        let* period = f_float "period" j in
        let* banked = f_float "banked" j in
        let* overhead = f_float "overhead" j in
        Ok (Period_completed { time; ws; ep; period; banked; overhead })
    | "period_killed" ->
        let* time = f_float "t" j in
        let* ws = f_int "ws" j in
        let* ep = f_int "ep" j in
        let* lost = f_float "lost" j in
        let* overhead = f_float "overhead" j in
        Ok (Period_killed { time; ws; ep; lost; overhead })
    | "owner_returned" ->
        let* time = f_float "t" j in
        let* ws = f_int "ws" j in
        let* ep = f_int "ep" j in
        Ok (Owner_returned { time; ws; ep })
    | "episode_finished" ->
        let* time = f_float "t" j in
        let* ws = f_int "ws" j in
        let* ep = f_int "ep" j in
        let* work_done = f_float "work_done" j in
        let* interrupted = f_bool "interrupted" j in
        Ok (Episode_finished { time; ws; ep; work_done; interrupted })
    | "pool_drained" ->
        let* time = f_float "t" j in
        let* remaining = f_float "remaining" j in
        Ok (Pool_drained { time; remaining })
    | "run_finished" ->
        let* time = f_float "t" j in
        Ok (Run_finished { time })
    | other -> Error (Printf.sprintf "unknown event type %S" other)

(* ------------------------------------------------------------------ *)
(* Console rendering                                                  *)

let pp ppf = function
  | Run_started { time; source; seed } ->
      Format.fprintf ppf "[%12.4f] run_started source=%s%s" time source
        (match seed with
        | Some s -> Printf.sprintf " seed=%Ld" s
        | None -> "")
  | Plan_computed { source; t0; periods; expected_work; elapsed } ->
      Format.fprintf ppf
        "[    planner] plan_computed source=%s t0=%.4f periods=%d E=%.6f \
         elapsed=%.3gs"
        source t0 periods expected_work elapsed
  | Episode_started { time; ws; ep } ->
      Format.fprintf ppf "[%12.4f] ws%d ep%d episode_started" time ws ep
  | Period_dispatched { time; ws; ep; period; assigned } ->
      Format.fprintf ppf
        "[%12.4f] ws%d ep%d period_dispatched period=%.4f assigned=%.4f" time
        ws ep period assigned
  | Period_completed { time; ws; ep; period; banked; overhead } ->
      Format.fprintf ppf
        "[%12.4f] ws%d ep%d period_completed period=%.4f banked=%.4f \
         overhead=%.4f"
        time ws ep period banked overhead
  | Period_killed { time; ws; ep; lost; overhead } ->
      Format.fprintf ppf
        "[%12.4f] ws%d ep%d period_killed lost=%.4f overhead=%.4f" time ws ep
        lost overhead
  | Owner_returned { time; ws; ep } ->
      Format.fprintf ppf "[%12.4f] ws%d ep%d owner_returned" time ws ep
  | Episode_finished { time; ws; ep; work_done; interrupted } ->
      Format.fprintf ppf
        "[%12.4f] ws%d ep%d episode_finished work_done=%.4f interrupted=%b"
        time ws ep work_done interrupted
  | Pool_drained { time; remaining } ->
      Format.fprintf ppf "[%12.4f] pool_drained remaining=%.6f" time remaining
  | Run_finished { time } -> Format.fprintf ppf "[%12.4f] run_finished" time
