type entry = { at : int; metrics : Obs_metrics.snapshot }

type t = {
  registry : Obs_metrics.t;
  every : int;
  capacity : int;
  ring : entry option array;
  mutable head : int;  (* next write position *)
  mutable captured : int;
  mutable next_at : int;
}

let create ?(capacity = 512) ~every registry =
  if every <= 0 then invalid_arg "Obs_snapshot.create: every must be > 0";
  if capacity <= 0 then invalid_arg "Obs_snapshot.create: capacity must be > 0";
  {
    registry;
    every;
    capacity;
    ring = Array.make capacity None;
    head = 0;
    captured = 0;
    next_at = every;
  }

let capture t ~at =
  t.ring.(t.head) <- Some { at; metrics = Obs_metrics.snapshot t.registry };
  t.head <- (t.head + 1) mod t.capacity;
  t.captured <- t.captured + 1

let tick t ~at =
  if at >= t.next_at then begin
    capture t ~at;
    (* Skip past any marks the stride jumped over, so a coarse tick
       granularity produces one capture per tick, not a burst. *)
    t.next_at <- (((at / t.every) + 1) * t.every)
  end

let captured t = t.captured
let dropped t = Stdlib.max 0 (t.captured - t.capacity)

let entries t =
  let n = Stdlib.min t.captured t.capacity in
  let start = (t.head - n + t.capacity) mod t.capacity in
  List.init n (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let last_at t =
  match List.rev (entries t) with e :: _ -> Some e.at | [] -> None

let entry_to_json e =
  Jsonx.Obj
    [
      ("v", Jsonx.Int Obs_event.schema_version);
      ("type", Jsonx.String "snapshot");
      ("at", Jsonx.Int e.at);
      ("metrics", Obs_metrics.snapshot_to_json e.metrics);
    ]

let entry_of_json j =
  let ( let* ) = Result.bind in
  let* v =
    match Option.bind (Jsonx.member "v" j) Jsonx.get_int with
    | Some v -> Ok v
    | None -> Error "snapshot: missing or ill-typed field \"v\""
  in
  if v <> Obs_event.schema_version then
    Error
      (Printf.sprintf "snapshot: unsupported schema version %d (want %d)" v
         Obs_event.schema_version)
  else
    let* () =
      match Jsonx.member "type" j with
      | Some (Jsonx.String "snapshot") -> Ok ()
      | _ -> Error "snapshot: field \"type\" is not \"snapshot\""
    in
    let* at =
      match Option.bind (Jsonx.member "at" j) Jsonx.get_int with
      | Some at -> Ok at
      | None -> Error "snapshot: missing or ill-typed field \"at\""
    in
    let* metrics =
      match Jsonx.member "metrics" j with
      | Some m -> Obs_metrics.snapshot_of_json m
      | None -> Error "snapshot: missing field \"metrics\""
    in
    Ok { at; metrics }

let write_jsonl ?meta t oc =
  let emit_meta m =
    output_string oc (Jsonx.to_string (Obs_meta.to_json m));
    output_char oc '\n'
  in
  Option.iter emit_meta meta;
  (* A wrapped ring means the file is a *shard*: its first entry is not
     the run's first capture. Re-emit the provenance header at the wrap
     boundary so a reader that starts at the rotation point (or a shard
     produced by splitting the file there) still opens with its meta
     line — Obs_store ingestion must never see a headerless shard. *)
  List.iteri
    (fun i e ->
      if i = 0 && dropped t > 0 then Option.iter emit_meta meta;
      output_string oc (Jsonx.to_string (entry_to_json e));
      output_char oc '\n')
    (entries t)

(* Meta lines are legal anywhere, not just at line 1: a shard written
   after a ring wrap re-emits its header, and concatenating rotated
   shards interleaves them mid-file. Every header is still validated —
   a schema mismatch anywhere is an error, not a skip. *)
let load_with_meta path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go line_no meta acc =
        match input_line ic with
        | exception End_of_file -> Ok (meta, List.rev acc)
        | "" -> go (line_no + 1) meta acc
        | line -> (
            match Jsonx.of_string line with
            | Error msg ->
                Error (Printf.sprintf "%s:%d: %s" path line_no msg)
            | Ok j when Obs_meta.is_meta_json j -> (
                match Obs_meta.of_json j with
                | Error msg ->
                    Error (Printf.sprintf "%s:%d: %s" path line_no msg)
                | Ok m ->
                    let meta =
                      match meta with Some _ -> meta | None -> Some m
                    in
                    go (line_no + 1) meta acc)
            | Ok j -> (
                match entry_of_json j with
                | Error msg ->
                    Error (Printf.sprintf "%s:%d: %s" path line_no msg)
                | Ok e -> go (line_no + 1) meta (e :: acc)))
      in
      go 1 None [])

let load path = Result.map snd (load_with_meta path)
