type entry = { at : int; metrics : Obs_metrics.snapshot }

type t = {
  registry : Obs_metrics.t;
  every : int;
  capacity : int;
  ring : entry option array;
  mutable head : int;  (* next write position *)
  mutable captured : int;
  mutable next_at : int;
}

let create ?(capacity = 512) ~every registry =
  if every <= 0 then invalid_arg "Obs_snapshot.create: every must be > 0";
  if capacity <= 0 then invalid_arg "Obs_snapshot.create: capacity must be > 0";
  {
    registry;
    every;
    capacity;
    ring = Array.make capacity None;
    head = 0;
    captured = 0;
    next_at = every;
  }

let capture t ~at =
  t.ring.(t.head) <- Some { at; metrics = Obs_metrics.snapshot t.registry };
  t.head <- (t.head + 1) mod t.capacity;
  t.captured <- t.captured + 1

let tick t ~at =
  if at >= t.next_at then begin
    capture t ~at;
    (* Skip past any marks the stride jumped over, so a coarse tick
       granularity produces one capture per tick, not a burst. *)
    t.next_at <- (((at / t.every) + 1) * t.every)
  end

let captured t = t.captured
let dropped t = Stdlib.max 0 (t.captured - t.capacity)

let entries t =
  let n = Stdlib.min t.captured t.capacity in
  let start = (t.head - n + t.capacity) mod t.capacity in
  List.init n (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let last_at t =
  match List.rev (entries t) with e :: _ -> Some e.at | [] -> None

let entry_to_json e =
  Jsonx.Obj
    [
      ("v", Jsonx.Int Obs_event.schema_version);
      ("type", Jsonx.String "snapshot");
      ("at", Jsonx.Int e.at);
      ("metrics", Obs_metrics.snapshot_to_json e.metrics);
    ]

let entry_of_json j =
  let ( let* ) = Result.bind in
  let* v =
    match Option.bind (Jsonx.member "v" j) Jsonx.get_int with
    | Some v -> Ok v
    | None -> Error "snapshot: missing or ill-typed field \"v\""
  in
  if v <> Obs_event.schema_version then
    Error
      (Printf.sprintf "snapshot: unsupported schema version %d (want %d)" v
         Obs_event.schema_version)
  else
    let* () =
      match Jsonx.member "type" j with
      | Some (Jsonx.String "snapshot") -> Ok ()
      | _ -> Error "snapshot: field \"type\" is not \"snapshot\""
    in
    let* at =
      match Option.bind (Jsonx.member "at" j) Jsonx.get_int with
      | Some at -> Ok at
      | None -> Error "snapshot: missing or ill-typed field \"at\""
    in
    let* metrics =
      match Jsonx.member "metrics" j with
      | Some m -> Obs_metrics.snapshot_of_json m
      | None -> Error "snapshot: missing field \"metrics\""
    in
    Ok { at; metrics }

let write_jsonl t oc =
  List.iter
    (fun e ->
      output_string oc (Jsonx.to_string (entry_to_json e));
      output_char oc '\n')
    (entries t)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go line_no acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> go (line_no + 1) acc
        | line -> (
            match Jsonx.of_string line with
            | Error msg ->
                Error (Printf.sprintf "%s:%d: %s" path line_no msg)
            | Ok j -> (
                match entry_of_json j with
                | Error msg ->
                    Error (Printf.sprintf "%s:%d: %s" path line_no msg)
                | Ok e -> go (line_no + 1) (e :: acc)))
      in
      go 1 [])
