(* Remote sink: ship events to an Obs_collect collector without ever
   blocking the instrumented code. The emitting thread only pushes
   into a bounded in-memory ring under a mutex; a dedicated sender
   thread drains it over the socket, reconnecting with capped backoff
   and counting everything it cannot deliver instead of waiting. *)

let default_capacity = 65536
let default_max_backoff_s = 1.0
let heartbeat_every = 1000

(* Connect attempts once [close] has been called: enough to survive a
   momentary collector restart during shutdown, small enough that an
   unreachable address cannot wedge process exit. Retry bounds are
   attempt counts, never clock reads (R8). *)
let closing_attempts = 3

type stats = { sent : int; dropped : int; hellos : int }

type t = {
  addr : Obs_http.addr;
  meta : Obs_meta.t;
  capacity : int;
  max_backoff_s : float;
  mu : Mutex.t;
  cond : Condition.t;
  queue : Obs_event.t Queue.t;
  mutable closing : bool;
  mutable seq : int;  (** last wire sequence number used *)
  mutable sent : int;
  mutable dropped : int;
  mutable hellos : int;
  mutable thread : Thread.t option;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Unix.write loop that reports failure instead of swallowing it:
   unlike Obs_http.write_all (whose whole job is to ignore a scraper
   that hung up), the sender must notice a dead collector so it can
   reconnect and account the loss. *)
let send_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go pos =
    if pos >= len then true
    else
      match Unix.write fd b pos (len - pos) with
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error _ -> false
  in
  go 0

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* One connect + HELLO attempt. A connection is only "up" once the
   provenance header is on the wire, so every segment the collector
   sees is self-describing. *)
let connect_once t =
  let domain, sockaddr = Obs_http.sockaddr_of t.addr in
  match Unix.socket domain Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> None
  | fd -> (
      match Unix.connect fd sockaddr with
      | exception Unix.Unix_error _ ->
          close_fd fd;
          None
      | () ->
          if send_all fd (Obs_stream.encode (Obs_stream.Hello t.meta)) then begin
            locked t (fun () -> t.hellos <- t.hellos + 1);
            Some fd
          end
          else begin
            close_fd fd;
            None
          end)

(* Retry with doubling backoff capped at [max_backoff_s]. While the
   sink is open this loops until it connects (the ring keeps absorbing
   and dropping in the meantime); once [close] has been called the
   attempts are bounded so shutdown terminates. *)
let ensure_connected t = function
  | Some fd -> Some fd
  | None ->
      let rec go attempt delay =
        match connect_once t with
        | Some fd -> Some fd
        | None ->
            let closing = locked t (fun () -> t.closing) in
            if closing && attempt >= closing_attempts then None
            else begin
              Unix.sleepf delay;
              go (attempt + 1) (Float.min (delay *. 2.) t.max_backoff_s)
            end
      in
      go 1 0.05

let finish t = function
  | None -> ()
  | Some fd ->
      let seq, dropped = locked t (fun () -> (t.seq, t.dropped)) in
      ignore (send_all fd (Obs_stream.encode (Obs_stream.Bye { seq; dropped })));
      close_fd fd

let rec sender_loop t fd_opt =
  let pending =
    locked t (fun () ->
        while Queue.is_empty t.queue && not t.closing do
          Condition.wait t.cond t.mu
        done;
        not (Queue.is_empty t.queue))
  in
  if not pending then finish t fd_opt
  else
    match ensure_connected t fd_opt with
    | None ->
        (* Only reachable when closing: the collector stayed
           unreachable through the bounded attempts, so everything
           still queued is recorded as dropped, not silently lost. *)
        locked t (fun () ->
            t.dropped <- t.dropped + Queue.length t.queue;
            Queue.clear t.queue);
        finish t None
    | Some fd -> (
        (* Only the sender pops, so the queue observed non-empty above
           is still non-empty here. *)
        let event = locked t (fun () -> Queue.pop t.queue) in
        let seq = t.seq + 1 in
        t.seq <- seq;
        if send_all fd (Obs_stream.encode (Obs_stream.Event { seq; event }))
        then begin
          let sent, dropped =
            locked t (fun () ->
                t.sent <- t.sent + 1;
                (t.sent, t.dropped))
          in
          if sent mod heartbeat_every = 0 then
            if
              send_all fd
                (Obs_stream.encode (Obs_stream.Heartbeat { seq; dropped }))
            then sender_loop t (Some fd)
            else begin
              (* The event itself landed; only the connection is gone. *)
              close_fd fd;
              sender_loop t None
            end
          else sender_loop t (Some fd)
        end
        else begin
          (* At-most-once: the event that hit the dead connection is
             counted dropped rather than retried, so a collector that
             half-received it can never see it twice. *)
          close_fd fd;
          locked t (fun () -> t.dropped <- t.dropped + 1);
          sender_loop t None
        end)

let create ?(capacity = default_capacity)
    ?(max_backoff_s = default_max_backoff_s) ~addr ~meta () =
  let t =
    {
      addr;
      meta;
      capacity = Stdlib.max 1 capacity;
      max_backoff_s = Float.max 0.05 max_backoff_s;
      mu = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      closing = false;
      seq = 0;
      sent = 0;
      dropped = 0;
      hellos = 0;
      thread = None;
    }
  in
  t.thread <- Some (Thread.create (fun () -> sender_loop t None) ());
  t

let enqueue t ev =
  locked t (fun () ->
      if t.closing || Queue.length t.queue >= t.capacity then
        t.dropped <- t.dropped + 1
      else begin
        Queue.push ev t.queue;
        Condition.signal t.cond
      end)

let sink t = Obs_sink.Custom (enqueue t)
let addr t = t.addr

let stats t =
  locked t (fun () -> { sent = t.sent; dropped = t.dropped; hellos = t.hellos })

let close t =
  let th =
    locked t (fun () ->
        if t.closing then None
        else begin
          t.closing <- true;
          Condition.broadcast t.cond;
          let th = t.thread in
          t.thread <- None;
          th
        end)
  in
  match th with Some th -> Thread.join th | None -> ()
