(** A minimal, dependency-free HTTP/1.1 exposition server.

    The observability layer's files ([--prom], snapshot timelines,
    health reports) answer questions {e after} a run; a scraper — a
    Prometheus poller, a CI smoke probe, an operator with [curl] —
    wants to ask them {e during} one. This module serves exactly three
    read-only endpoints over a Unix-domain or TCP socket:

    - [GET /metrics] — Prometheus text exposition. The lines are passed
      through {!Obs_export.validate_prometheus} before they leave the
      process: serving unscrapable text is a [500], not a silent
      poisoning of the poller.
    - [GET /health] — the {!Obs_health} verdict over the current
      metrics: [200] when healthy, [503] when any rule fires, mirroring
      the CLI's exit-code contract so probes and scripts agree.
    - [GET /runs] — the live {!Obs_store} index as JSON.

    One request per connection ([Connection: close]), bodies framed by
    [Content-Length]: the protocol surface is deliberately the smallest
    thing a standard scraper accepts. Request parsing and response
    framing are pure string functions, unit-testable without a socket;
    only {!serve} and {!fetch} touch [Unix]. Socket I/O is fenced by
    lint rule R13 to this file plus the streaming transport
    ({!Obs_stream}, {!Obs_remote}, {!Obs_collect}), which reuses the
    address vocabulary and {!listen_on} plumbing below. *)

(** {1 Pure protocol core} *)

type request = { meth : string; path : string; version : string }

val max_head_bytes : int
(** Cap on the request head (request line + headers, [8192]). A peer
    that sends more gets [431] and the connection closed — the server
    buffers a bounded amount no matter who connects. *)

val read_head :
  ?max_len:int ->
  (bytes -> int -> int -> int) ->
  (string, [ `Too_large | `Eof ]) result
(** Accumulate from a [read buf pos len] function (returning [0] at
    end-of-stream) until the blank line ending an HTTP head ([CRLFCRLF],
    or bare [LFLF] from hand-typed clients), in chunks as small as the
    reader yields them — partial reads are the normal case on sockets.
    Returns the head including its terminator; [`Too_large] past
    [max_len] (default {!max_head_bytes}), [`Eof] if the stream ends
    first. *)

val parse_request_line : string -> (request, string) result
(** Parse the first line of a head: exactly [METHOD SP PATH SP
    HTTP/x.y]. The path is taken verbatim up to [?] (queries are
    ignored, not errors); anything else — missing parts, embedded
    whitespace, non-HTTP version — is an error, which {!handle} turns
    into [400]. *)

val response : status:int -> ?content_type:string -> string -> string
(** Frame a complete HTTP/1.1 response: status line with the standard
    reason phrase, [Content-Type] (default [text/plain; charset=utf-8]),
    [Content-Length] of the body, [Connection: close], blank line,
    body. *)

val status_reason : int -> string
(** Standard reason phrase ([200] → ["OK"], [503] → ["Service
    Unavailable"], ...); ["Status"] for codes outside the table. *)

(** {1 Routing} *)

type source = {
  metrics : unit -> string list;
      (** Current exposition lines ({!Obs_export.prometheus}). *)
  health : unit -> int * string;
      (** Probe status ([200] / [503]) and report body. *)
  runs : unit -> (Jsonx.t, string) result;
      (** Store index ({!Obs_store.index_to_json}); [Error] → [500]. *)
}
(** What the server serves, abstracted so [csctl] can hand it a live
    registry while [cstrace serve] hands it files — and so tests can
    hand it constants. *)

val handle : source -> request -> int * string * string
(** Route one request to [(status, content_type, body)]: the three
    endpoints plus [/] (a plain-text index of them), [405] for any
    method but [GET], [404] otherwise. [/metrics] output failing
    {!Obs_export.validate_prometheus} is reported as a [500] naming the
    offending line. Pure: all I/O lives in the [source] thunks. *)

(** {1 Addresses} *)

type addr = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** [unix:PATH] (or any string containing [/]) is a Unix-domain socket
    path; [HOST:PORT] is TCP. *)

val pp_addr : Format.formatter -> addr -> unit
(** Inverse of {!addr_of_string} ([unix:PATH] / [HOST:PORT]). *)

(** {1 Socket plumbing}

    Shared with the streaming transport ({!Obs_remote}'s connector and
    {!Obs_collect}'s accept loop), so every module behind the R13
    fence resolves and binds addresses the same way. *)

val sockaddr_of : addr -> Unix.socket_domain * Unix.sockaddr
(** Resolve an {!addr} to the [Unix] pair a socket call needs
    (hostnames fall back to the loopback address when resolution
    fails). *)

val listen_on : addr -> (Unix.file_descr * addr, string) result
(** Bind and listen on [addr]: unlink a stale Unix socket path first,
    set [SO_REUSEADDR] on TCP, and return the bound address — with TCP
    port [0], the ephemeral port the kernel picked. *)

val cleanup : Unix.file_descr -> addr -> unit
(** Close a listening socket and remove its Unix socket path; errors
    are swallowed (teardown must not mask the real failure). *)

(** {1 Serving} *)

val serve :
  ?max_requests:int ->
  ?ready:(addr -> unit) ->
  addr:addr ->
  source ->
  (unit, string) result
(** Bind [addr] (unlinking a stale Unix socket path first), call
    [ready] once listening (the CLI writes an address file here, so a
    test can start the server in the background and poll for the file
    instead of racing the bind), then accept one connection at a time:
    read a head, answer, close. Stops after [max_requests] connections
    — [~max_requests:1] is the deterministic [--once] mode — or runs
    until the process dies. Malformed and oversized requests are
    answered ([400] / [431]) and {e do} count toward [max_requests],
    so a misbehaving client cannot pin a bounded server open. *)

type server
(** A server running in a background thread. *)

val serve_in_background :
  ?max_requests:int -> addr:addr -> source -> (server, string) result
(** {!serve} on a [Thread.t], returning once the socket is listening —
    a subsequent {!fetch} cannot land before the bind. Used by
    [csctl --serve] to expose a live run while the simulation keeps the
    main thread. The source thunks run on the server thread: registry
    reads are safe (atomic snapshots), but the thunks must not assume
    the main thread is parked. *)

val address : server -> addr
(** The bound address — with TCP port [0], the ephemeral port the
    kernel picked. *)

val shutdown : server -> unit
(** Stop accepting, unblock the accept loop, join the thread and remove
    a Unix socket path. Idempotent. *)

(** {1 Client} *)

val fetch :
  ?attempts:int -> addr:addr -> string -> (int * string, string) result
(** Minimal one-shot client: [fetch ~addr path] sends [GET path] and
    returns [(status, body)]. The
    connect is retried up to [attempts] (default [100]) times with a
    50 ms pause — startup polling for tests and CI probes; retry
    bounds come from attempt counts, never from reading the clock
    (R8). *)
