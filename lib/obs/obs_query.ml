type trace = {
  path : string;
  meta : Obs_meta.t option;
  events : Obs_event.t list;
  truncated : int option;
}

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let events = ref [] in
          let meta = ref None in
          let truncated = ref None in
          let line_no = ref 0 in
          let err = ref None in
          let fail msg =
            err := Some (Printf.sprintf "%s:%d: %s" path !line_no msg)
          in
          (try
             while !err = None do
               let line = input_line ic in
               Stdlib.incr line_no;
               if String.trim line <> "" then
                 match Jsonx.of_string line with
                 | Error msg -> fail msg
                 | Ok j when Obs_meta.is_meta_json j -> (
                     match Obs_meta.of_json j with
                     | Error msg -> fail msg
                     | Ok m ->
                         if !meta = None then meta := Some m
                         else fail "duplicate meta header")
                 | Ok j when Obs_stream.is_truncation_json j -> (
                     (* The collector's no-BYE marker: a partial trace
                        is loadable and *reported* partial, not a load
                        error and not silently complete. *)
                     match Obs_stream.truncation_of_json j with
                     | Error msg -> fail msg
                     | Ok n ->
                         if !truncated = None then truncated := Some n
                         else fail "duplicate truncation marker")
                 | Ok j -> (
                     match Obs_event.of_json j with
                     | Error msg -> fail msg
                     | Ok ev ->
                         if !truncated <> None then
                           fail "event after truncation marker"
                         else events := ev :: !events)
             done
           with End_of_file -> ());
          match !err with
          | Some msg -> Error msg
          | None ->
              Ok
                {
                  path;
                  meta = !meta;
                  events = List.rev !events;
                  truncated = !truncated;
                })

(* ------------------------------------------------------------------ *)
(* Filtering                                                          *)

let filter ?kind ?ws ?ep ?since ?until events =
  let keep ev =
    (match kind with None -> true | Some k -> Obs_event.kind ev = k)
    && (match ws with
       | None -> true
       | Some w -> (
           match Obs_event.ids ev with Some (w', _) -> w' = w | None -> false))
    && (match ep with
       | None -> true
       | Some e -> (
           match Obs_event.ids ev with Some (_, e') -> e' = e | None -> false))
    && (match since with
       | None -> true
       | Some s -> (
           match Obs_event.time ev with Some t -> t >= s | None -> false))
    &&
    match until with
    | None -> true
    | Some u -> ( match Obs_event.time ev with Some t -> t <= u | None -> false)
  in
  List.filter keep events

(* ------------------------------------------------------------------ *)
(* Per-episode timelines                                              *)

type episode_row = {
  e_ws : int;
  e_ep : int;
  e_start : float;
  e_finish : float option;
  e_dispatched : int;
  e_completed : int;
  e_killed : int;
  e_work : float;
  e_lost : float;
  e_overhead : float;
  e_interrupted : bool;
}

type episode_acc = {
  mutable x_start : float;
  mutable x_finish : float option;
  mutable x_dispatched : int;
  mutable x_completed : int;
  mutable x_killed : int;
  x_work : Kahan.t;
  x_lost : Kahan.t;
  x_overhead : Kahan.t;
  mutable x_interrupted : bool;
}

let episodes events =
  let tbl : (int * int, episode_acc) Hashtbl.t = Hashtbl.create 64 in
  let acc ws ep =
    let key = (ws, ep) in
    match Hashtbl.find_opt tbl key with
    | Some a -> a
    | None ->
        let a =
          {
            x_start = Float.nan;
            x_finish = None;
            x_dispatched = 0;
            x_completed = 0;
            x_killed = 0;
            x_work = Kahan.create ();
            x_lost = Kahan.create ();
            x_overhead = Kahan.create ();
            x_interrupted = false;
          }
        in
        Hashtbl.replace tbl key a;
        a
  in
  List.iter
    (fun (ev : Obs_event.t) ->
      match ev with
      | Episode_started { time; ws; ep } -> (acc ws ep).x_start <- time
      | Period_dispatched { ws; ep; _ } ->
          let a = acc ws ep in
          a.x_dispatched <- a.x_dispatched + 1
      | Period_completed { ws; ep; banked; overhead; _ } ->
          let a = acc ws ep in
          a.x_completed <- a.x_completed + 1;
          Kahan.add a.x_work banked;
          Kahan.add a.x_overhead overhead
      | Period_killed { ws; ep; lost; overhead; _ } ->
          let a = acc ws ep in
          a.x_killed <- a.x_killed + 1;
          Kahan.add a.x_lost lost;
          Kahan.add a.x_overhead overhead
      | Episode_finished { time; ws; ep; interrupted; _ } ->
          let a = acc ws ep in
          a.x_finish <- Some time;
          a.x_interrupted <- interrupted
      | Run_started _ | Plan_computed _ | Owner_returned _ | Pool_drained _
      | Run_finished _ ->
          ())
    events;
  List.sort
    (fun a b ->
      match Int.compare a.e_ws b.e_ws with
      | 0 -> Int.compare a.e_ep b.e_ep
      | c -> c)
    (Hashtbl.fold
       (fun (ws, ep) a rows ->
         {
           e_ws = ws;
           e_ep = ep;
           e_start = a.x_start;
           e_finish = a.x_finish;
           e_dispatched = a.x_dispatched;
           e_completed = a.x_completed;
           e_killed = a.x_killed;
           e_work = Kahan.total a.x_work;
           e_lost = Kahan.total a.x_lost;
           e_overhead = Kahan.total a.x_overhead;
           e_interrupted = a.x_interrupted;
         }
         :: rows)
       tbl [])

let pp_episodes ppf rows =
  Format.fprintf ppf "  %-4s %-4s %12s %12s %6s %6s %6s %12s %12s %12s %s@."
    "ws" "ep" "start" "finish" "disp" "done" "kill" "work" "lost" "overhead"
    "int";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "  %-4d %-4d %12.4f %12s %6d %6d %6d %12.6f %12.6f %12.6f %s@." r.e_ws
        r.e_ep r.e_start
        (match r.e_finish with
        | Some f -> Printf.sprintf "%.4f" f
        | None -> "-")
        r.e_dispatched r.e_completed r.e_killed r.e_work r.e_lost r.e_overhead
        (if r.e_interrupted then "yes" else "no"))
    rows

(* ------------------------------------------------------------------ *)
(* Run diffing                                                        *)

type divergence = {
  d_index : int;
  d_left : Obs_event.t option;
  d_right : Obs_event.t option;
  d_context : Obs_event.t list;
}

(* Events carry only floats, ints, bools and strings, and the simulator's
   determinism contract is bit-exactness — so structural equality is the
   right comparison, not a tolerance. The one exception is wall time:
   [Plan_computed.elapsed] is measured in wall seconds, which no two runs
   share, so it is zeroed before comparing — the contract covers
   simulated time, not the clock on the wall. *)
let canonical (ev : Obs_event.t) =
  match ev with
  | Plan_computed p -> Obs_event.Plan_computed { p with elapsed = 0.0 }
  | _ -> ev

let diff ?(context = 3) left right =
  let rec go i recent left right =
    match (left, right) with
    | [], [] -> None
    | l :: ls, r :: rs when canonical l = canonical r ->
        go (i + 1) (l :: recent) ls rs
    | l, r ->
        let take_context =
          let rec take n = function
            | x :: xs when n > 0 -> x :: take (n - 1) xs
            | _ -> []
          in
          List.rev (take context recent)
        in
        Some
          {
            d_index = i;
            d_left = (match l with x :: _ -> Some x | [] -> None);
            d_right = (match r with x :: _ -> Some x | [] -> None);
            d_context = take_context;
          }
  in
  go 0 [] left right

let pp_divergence ppf d =
  Format.fprintf ppf "traces diverge at event %d@." d.d_index;
  if d.d_context <> [] then begin
    Format.fprintf ppf "  shared context before divergence:@.";
    List.iteri
      (fun i ev ->
        Format.fprintf ppf "    [%d] %a@."
          (d.d_index - List.length d.d_context + i)
          Obs_event.pp ev)
      d.d_context
  end;
  (match d.d_left with
  | Some ev -> Format.fprintf ppf "  left : %a@." Obs_event.pp ev
  | None -> Format.fprintf ppf "  left : <trace ended>@.");
  match d.d_right with
  | Some ev -> Format.fprintf ppf "  right: %a@." Obs_event.pp ev
  | None -> Format.fprintf ppf "  right: <trace ended>@."

(* ------------------------------------------------------------------ *)
(* Metrics reconstruction                                             *)

let metrics_updater ?accuracy () =
  let reg = Obs_metrics.create ?accuracy () in
  let c name = Obs_metrics.counter reg name in
  let h name = Obs_metrics.histogram reg name in
  let episodes_started = c "trace.episodes_started" in
  let episodes_finished = c "trace.episodes_finished" in
  let periods_dispatched = c "trace.periods_dispatched" in
  let periods_completed = c "trace.periods_completed" in
  let periods_killed = c "trace.periods_killed" in
  let period_length = h "trace.period_length" in
  let episode_duration = h "trace.episode_duration" in
  let banked_h = h "trace.banked" in
  let overhead_h = h "trace.overhead" in
  let pool_remaining = Obs_metrics.gauge reg "trace.pool_remaining" in
  let starts : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  let feed (ev : Obs_event.t) =
    match ev with
      | Episode_started { time; ws; ep } ->
          Obs_metrics.incr episodes_started;
          Hashtbl.replace starts (ws, ep) time
      | Episode_finished { time; ws; ep; _ } -> (
          Obs_metrics.incr episodes_finished;
          match Hashtbl.find_opt starts (ws, ep) with
          | Some t0 -> Obs_metrics.observe episode_duration (time -. t0)
          | None -> ())
      | Period_dispatched { period; _ } ->
          Obs_metrics.incr periods_dispatched;
          Obs_metrics.observe period_length period
      | Period_completed { banked; overhead; _ } ->
          Obs_metrics.incr periods_completed;
          Obs_metrics.observe banked_h banked;
          Obs_metrics.observe overhead_h overhead
      | Period_killed { overhead; _ } ->
          Obs_metrics.incr periods_killed;
          Obs_metrics.observe overhead_h overhead
      | Pool_drained { remaining; _ } ->
          Obs_metrics.set pool_remaining remaining
      | Run_started _ | Plan_computed _ | Owner_returned _ | Run_finished _ ->
        ()
  in
  (reg, feed)

let metrics_of_events ?accuracy events =
  let reg, feed = metrics_updater ?accuracy () in
  List.iter feed events;
  reg
