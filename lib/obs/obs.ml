module Metrics = Obs_metrics
module Event = Obs_event
module Sink = Obs_sink
module Span = Obs_span
module Meta = Obs_meta
module Snapshot = Obs_snapshot
module Resource = Obs_resource
module Health = Obs_health
module Watch = Obs_watch
module Store = Obs_store
module Trend = Obs_trend
module Http = Obs_http
module Stream = Obs_stream
module Remote = Obs_remote
module Collect = Obs_collect

type t = {
  sink : Sink.t;
  registry : Metrics.t option;
  spans : Span.t option;
  trace_on : bool;  (** Cached [Sink.consumes sink]. *)
}

let disabled = { sink = Sink.Null; registry = None; spans = None; trace_on = false }

let create ?(sink = Sink.Null) ?metrics ?spans () =
  { sink; registry = metrics; spans; trace_on = Sink.consumes sink }

let tracing t = t.trace_on
let metrics t = t.registry
let span_recorder t = t.spans

let instrumented t =
  t.trace_on || t.registry <> None || t.spans <> None

let emit t ev = if t.trace_on then Sink.emit t.sink ev

let incr t name =
  match t.registry with
  | None -> ()
  | Some m -> Metrics.incr (Metrics.counter m name)

let add t name n =
  match t.registry with
  | None -> ()
  | Some m -> Metrics.add (Metrics.counter m name) n

let set_gauge t name v =
  match t.registry with
  | None -> ()
  | Some m -> Metrics.set (Metrics.gauge m name) v

let observe t name v =
  match t.registry with
  | None -> ()
  | Some m -> Metrics.observe (Metrics.histogram m name) v

let time t name f =
  match t.registry with None -> f () | Some m -> Metrics.time m name f

let span ?attrs t name f =
  match t.spans with None -> f () | Some r -> Span.record ?attrs r name f
