(** Typed queries over recorded traces — the read side of the
    observability layer.

    {!Trace_report} folds a trace into one fixed summary; this module
    instead hands the events back as data: load with provenance, filter
    by kind / workstation / episode / time window, roll up per-episode
    timelines, reconstruct a metrics registry, and — the cstrace
    centrepiece — structurally diff two runs to the first diverging
    event. Two same-seed runs must produce identical event streams for
    any [--jobs] value (DESIGN.md §10), so {!diff} is a semantic
    determinism check: byte-comparing files would also flag harmless
    header differences, while [diff] pinpoints the first {e event} where
    two runs genuinely disagree. *)

type trace = {
  path : string;
  meta : Obs_meta.t option;  (** Provenance header, when the file has one. *)
  events : Obs_event.t list;  (** In file order. *)
  truncated : int option;
      (** When the file ends with an {!Obs_stream.truncation_marker}
          (a collector-ingested stream whose producer vanished without
          BYE): the marker's ingested-event count. [None] for a
          complete trace. *)
}

val load : string -> (trace, string) result
(** Parse a JSONL trace. Blank lines are skipped; a leading meta header
    is validated ({!Obs_meta.of_json}) and surfaced; malformed lines,
    bad headers and duplicate headers are errors with [file:line]
    positions. A trailing truncation marker is accepted and surfaced
    via [truncated] (events after it, or a second marker, are
    errors). *)

(** {1 Filtering} *)

val filter :
  ?kind:string ->
  ?ws:int ->
  ?ep:int ->
  ?since:float ->
  ?until:float ->
  Obs_event.t list ->
  Obs_event.t list
(** Keep events matching every given criterion. [kind] matches
    {!Obs_event.kind}; [ws] / [ep] match {!Obs_event.ids} (events
    without ids — run-level markers — never match); [since] / [until]
    bound {!Obs_event.time} inclusively (events without a time —
    [Plan_computed] — never match). Order is preserved. *)

(** {1 Per-episode timelines} *)

type episode_row = {
  e_ws : int;
  e_ep : int;
  e_start : float;  (** [nan] if the trace lacks the start event. *)
  e_finish : float option;  (** [None] when the episode never finished. *)
  e_dispatched : int;
  e_completed : int;
  e_killed : int;
  e_work : float;  (** Σ banked (Kahan-compensated). *)
  e_lost : float;
  e_overhead : float;
  e_interrupted : bool;
}

val episodes : Obs_event.t list -> episode_row list
(** One row per (ws, ep) seen in the stream, sorted by workstation then
    episode ordinal. *)

val pp_episodes : Format.formatter -> episode_row list -> unit
(** Fixed-width table, one row per episode. *)

(** {1 Run diffing} *)

type divergence = {
  d_index : int;  (** 0-based index of the first differing event. *)
  d_left : Obs_event.t option;
      (** Left event at that index; [None] = left trace ended early. *)
  d_right : Obs_event.t option;
  d_context : Obs_event.t list;
      (** Up to [?context] shared events immediately preceding the
          divergence, oldest first. *)
}

val diff :
  ?context:int -> Obs_event.t list -> Obs_event.t list -> divergence option
(** [diff a b] is [None] when the streams are structurally identical,
    or the first divergence otherwise. Comparison is structural
    equality — the determinism contract is bit-exactness, so no
    tolerance is applied — except for wall-time fields
    ([Plan_computed.elapsed]), which no two runs share and which are
    ignored. [context] (default 3) bounds [d_context]. *)

val pp_divergence : Format.formatter -> divergence -> unit
(** Multi-line rendering: index, shared context, then the two sides
    (or [<trace ended>]). *)

(** {1 Metrics reconstruction} *)

val metrics_of_events : ?accuracy:float -> Obs_event.t list -> Obs_metrics.t
(** Rebuild a registry from the event stream alone, under the [trace.*]
    namespace: counters [trace.episodes_started], [trace.episodes_finished],
    [trace.periods_dispatched], [trace.periods_completed],
    [trace.periods_killed]; histograms [trace.period_length],
    [trace.episode_duration], [trace.banked], [trace.overhead]; gauge
    [trace.pool_remaining]. All values are simulation-time, so the
    result is deterministic — unlike a live registry, which also times
    wall-clock spans. [accuracy] as in {!Obs_metrics.create}. *)

val metrics_updater :
  ?accuracy:float -> unit -> Obs_metrics.t * (Obs_event.t -> unit)
(** Incremental form of {!metrics_of_events}: returns the registry and
    a feed function that folds one event into it. Feeding the whole
    stream reproduces {!metrics_of_events} exactly; [cstrace watch]
    feeds events as they are appended to a growing trace. *)
