(* The framed event protocol the remote sink speaks to the collector.
   Everything here is pure: frames encode to strings and decode from a
   [read buf pos len] function, so the codec and the per-producer
   ordering machine are unit-testable without a socket. The socket
   shells live in Obs_remote (producer) and Obs_collect (consumer). *)

let protocol_version = 1

(* A single simulate run's trace is a few hundred KiB of ~100-byte
   lines; one frame carries one line. 1 MiB therefore bounds any
   legitimate frame with two orders of magnitude to spare, while a
   peer that streams garbage lengths is cut off after one buffer. *)
let max_frame_bytes = 1 lsl 20

type frame =
  | Hello of Obs_meta.t
  | Event of { seq : int; event : Obs_event.t }
  | Heartbeat of { seq : int; dropped : int }
  | Bye of { seq : int; dropped : int }

(* ------------------------------------------------------------------ *)
(* JSON payloads                                                       *)

let obj ty fields =
  Jsonx.Obj
    (("v", Jsonx.Int protocol_version) :: ("type", Jsonx.String ty) :: fields)

let frame_to_json = function
  | Hello meta -> obj "hello" [ ("meta", Obs_meta.to_json meta) ]
  | Event { seq; event } ->
      obj "event" [ ("seq", Jsonx.Int seq); ("event", Obs_event.to_json event) ]
  | Heartbeat { seq; dropped } ->
      obj "heartbeat" [ ("seq", Jsonx.Int seq); ("dropped", Jsonx.Int dropped) ]
  | Bye { seq; dropped } ->
      obj "bye" [ ("seq", Jsonx.Int seq); ("dropped", Jsonx.Int dropped) ]

let ( let* ) = Result.bind

let int_field name j =
  match Option.bind (Jsonx.member name j) Jsonx.get_int with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "frame: missing or ill-typed field %S" name)

let frame_of_json j =
  let* v = int_field "v" j in
  if v <> protocol_version then
    Error
      (Printf.sprintf "frame: unsupported protocol version %d (want %d)" v
         protocol_version)
  else
    let* ty =
      match Option.bind (Jsonx.member "type" j) Jsonx.get_string with
      | Some t -> Ok t
      | None -> Error "frame: missing or ill-typed field \"type\""
    in
    match ty with
    | "hello" -> (
        match Jsonx.member "meta" j with
        | None -> Error "frame: hello without a \"meta\" provenance header"
        | Some m ->
            let* meta = Obs_meta.of_json m in
            Ok (Hello meta))
    | "event" -> (
        let* seq = int_field "seq" j in
        match Jsonx.member "event" j with
        | None -> Error "frame: event frame without an \"event\" payload"
        | Some e ->
            let* event = Obs_event.of_json e in
            Ok (Event { seq; event }))
    | "heartbeat" ->
        let* seq = int_field "seq" j in
        let* dropped = int_field "dropped" j in
        Ok (Heartbeat { seq; dropped })
    | "bye" ->
        let* seq = int_field "seq" j in
        let* dropped = int_field "dropped" j in
        Ok (Bye { seq; dropped })
    | other -> Error (Printf.sprintf "frame: unknown frame type %S" other)

(* ------------------------------------------------------------------ *)
(* Wire framing: 4-byte big-endian payload length, then the payload.   *)

let encode frame =
  let payload = Jsonx.to_string (frame_to_json frame) in
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let decode_payload s =
  match Jsonx.of_string s with
  | Error msg -> Error ("frame: " ^ msg)
  | Ok j -> frame_of_json j

type read_error = [ `Eof | `Too_large of int | `Malformed of string ]

(* Fill [buf] completely from [read], tolerating partial reads.
   [`Start_eof] distinguishes a clean end-of-stream (nothing read at
   all) from a frame truncated midway. *)
let read_exact read buf =
  let len = Bytes.length buf in
  let rec go pos =
    if pos >= len then `Filled
    else
      match read buf pos (len - pos) with
      | n when n <= 0 -> if pos = 0 then `Start_eof else `Mid_eof
      | n -> go (pos + n)
  in
  go 0

let read_frame ?(max_len = max_frame_bytes) read :
    (frame, read_error) result =
  let header = Bytes.create 4 in
  match read_exact read header with
  | `Start_eof -> Error `Eof
  | `Mid_eof -> Error (`Malformed "truncated frame length prefix")
  | `Filled -> (
      let n = Int32.to_int (Bytes.get_int32_be header 0) in
      if n < 0 || n > max_len then Error (`Too_large n)
      else
        let payload = Bytes.create n in
        match read_exact read payload with
        | `Start_eof | `Mid_eof ->
            Error
              (`Malformed
                (Printf.sprintf "stream ended inside a %d-byte frame" n))
        | `Filled -> (
            match decode_payload (Bytes.unsafe_to_string payload) with
            | Ok f -> Ok f
            | Error msg -> Error (`Malformed msg)))

let pp_read_error ppf = function
  | `Eof -> Format.pp_print_string ppf "end of stream"
  | `Too_large n ->
      Format.fprintf ppf "frame length %d exceeds the %d-byte cap" n
        max_frame_bytes
  | `Malformed msg -> Format.pp_print_string ppf msg

(* ------------------------------------------------------------------ *)
(* Per-producer ordering machine (the collector's view of one stream)  *)

type ingest = {
  mutable i_meta : Obs_meta.t option;
  mutable i_last_seq : int option;  (** last accepted event seq *)
  mutable i_first_seq : int option;
  mutable i_events : int;
  mutable i_dropped : int;  (** latest producer-reported drop count *)
  mutable i_closed : bool;  (** saw BYE *)
}

let ingest_create () =
  {
    i_meta = None;
    i_last_seq = None;
    i_first_seq = None;
    i_events = 0;
    i_dropped = 0;
    i_closed = false;
  }

let ingest_meta i = i.i_meta
let ingest_events i = i.i_events
let ingest_dropped i = i.i_dropped
let ingest_closed i = i.i_closed
let ingest_first_seq i = i.i_first_seq

type verdict =
  | Ok_hello of Obs_meta.t
  | Ok_event of Obs_event.t
  | Ok_heartbeat
  | Ok_bye
  | Reject of string

let position i = match i.i_last_seq with Some s -> s | None -> 0

let ingest i frame =
  if i.i_closed then Reject "frame after BYE"
  else
    match frame with
    | Hello meta -> (
        match i.i_meta with
        | None ->
            i.i_meta <- Some meta;
            Ok_hello meta
        | Some m0 when m0 = meta ->
            (* A reconnecting producer re-announces itself; identical
               provenance is a resume, not a conflict. *)
            Ok_hello meta
        | Some _ -> Reject "HELLO changes provenance mid-stream")
    | Event { seq; event } -> (
        if i.i_meta = None then
          Reject "headerless stream: expected HELLO before events"
        else
          match i.i_last_seq with
          | None ->
              (* The first event pins the window; a producer that lost
                 frames before reaching us starts above 1, which the
                 collector surfaces via [ingest_first_seq]. *)
              if seq < 1 then
                Reject (Printf.sprintf "event seq %d < 1" seq)
              else begin
                i.i_last_seq <- Some seq;
                i.i_first_seq <- Some seq;
                i.i_events <- i.i_events + 1;
                Ok_event event
              end
          | Some last ->
              if seq <= last then
                Reject
                  (Printf.sprintf
                     "duplicate or out-of-order event seq %d (stream is at %d)"
                     seq last)
              else if seq > last + 1 then
                Reject
                  (Printf.sprintf "gap in event seq: got %d after %d" seq last)
              else begin
                i.i_last_seq <- Some seq;
                i.i_events <- i.i_events + 1;
                Ok_event event
              end)
    | Heartbeat { seq; dropped } -> (
        if i.i_meta = None then
          Reject "headerless stream: expected HELLO before heartbeats"
        else
          match i.i_last_seq with
          | Some last when seq <> last ->
              Reject
                (Printf.sprintf
                   "heartbeat seq %d disagrees with stream position %d" seq
                   last)
          | _ ->
              i.i_dropped <- Stdlib.max i.i_dropped dropped;
              Ok_heartbeat)
    | Bye { seq; dropped } ->
        if i.i_meta = None then
          Reject "headerless stream: expected HELLO before BYE"
        else if seq <> position i && i.i_last_seq <> None then
          Reject
            (Printf.sprintf "BYE seq %d disagrees with stream position %d" seq
               (position i))
        else begin
          i.i_dropped <- Stdlib.max i.i_dropped dropped;
          i.i_closed <- true;
          Ok_bye
        end

(* ------------------------------------------------------------------ *)
(* Truncation marker: the line the collector appends when a stream     *)
(* ends without BYE, so the stored trace says "partial" instead of     *)
(* silently passing for a complete run.                                *)

let truncation_marker ~events =
  Jsonx.Obj
    [
      ("v", Jsonx.Int protocol_version);
      ("type", Jsonx.String "truncated");
      ("events", Jsonx.Int events);
    ]

let is_truncation_json j =
  match Jsonx.member "type" j with
  | Some (Jsonx.String "truncated") -> true
  | _ -> false

let truncation_of_json j =
  if not (is_truncation_json j) then
    Error "not a truncation marker (field \"type\" is not \"truncated\")"
  else
    let* v = int_field "v" j in
    if v <> protocol_version then
      Error
        (Printf.sprintf "truncation marker: unsupported version %d (want %d)" v
           protocol_version)
    else int_field "events" j
