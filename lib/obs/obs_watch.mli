(** Incremental tailing of a growing JSONL trace.

    [cstrace watch] monitors a run in progress: it polls a trace file
    the producer is still appending to, feeds each newly completed line
    through {!Obs_query.metrics_updater}, and re-renders a compact
    dashboard of the reconstructed [trace.*] metrics plus (optionally)
    an {!Obs_health} rule evaluation. The farm daemon inherits this
    loop verbatim.

    The module owns only the incremental state machine — byte offset,
    partial-line carry, meta header, feed function. The poll cadence
    (a [Unix.sleepf] between {!poll} calls) belongs to the binary;
    nothing here reads a clock, so the reconstruction stays a pure
    function of the bytes seen, and a single {!poll} over a finished
    trace renders exactly what [cstrace report]'s metrics would. *)

type t

val create : ?accuracy:float -> path:string -> unit -> t
(** A watcher positioned at byte 0 of [path]. The file need not exist
    yet — {!poll} treats absence as "no new bytes". [accuracy] as in
    {!Obs_metrics.create}. *)

val poll : t -> int
(** Consume the bytes appended since the last poll: complete lines are
    parsed (meta header, then events) and folded into the registry; a
    trailing partial line is carried to the next poll. Returns the
    number of events consumed by this call. Malformed lines are counted
    and remembered, never fatal — a watcher must survive a producer
    mid-write. *)

val registry : t -> Obs_metrics.t
(** The registry reconstructed so far ([trace.*] namespace). *)

val meta : t -> Obs_meta.t option
val events_seen : t -> int

val finished : t -> bool
(** A [Run_finished] event has been consumed — the producer is done. *)

val parse_errors : t -> int
val last_error : t -> string option

val health : t -> rules:Obs_health.rule list -> Obs_health.report
(** Evaluate [rules] against the current registry state. *)

val render : ?rules:Obs_health.rule list -> t -> string
(** The dashboard: a header (path, event count, run state), every
    counter/gauge, histogram summaries, and — when [rules] is
    non-empty — the rule listing and verdict line. Deterministic in
    the bytes consumed. *)
