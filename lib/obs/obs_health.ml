(* Declarative health rules evaluated over metric snapshots. *)

type severity = Warn | Critical

type op = Lt | Le | Gt | Ge | Eq | Ne

type rule = {
  severity : severity;
  selector : string;
  optional : bool;
  op : op;
  threshold : float;
}

type status =
  | Pass
  | Fail of { value : float; at : int option }
  | Missing
  | Skipped

type verdict = Healthy | Unhealthy of severity

type report = {
  outcomes : (rule * status) list;
  verdict : verdict;
  entries : int;
}

(* --- parsing ------------------------------------------------------- *)

let op_of_string = function
  | "<" -> Some Lt
  | "<=" -> Some Le
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | "==" -> Some Eq
  | "!=" -> Some Ne
  | _ -> None

let op_to_string = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_rule line =
  match tokens line with
  | [ sev; sel; op; value ] -> (
      let severity =
        match sev with
        | "warn" -> Some Warn
        | "critical" -> Some Critical
        | _ -> None
      in
      match (severity, op_of_string op, float_of_string_opt value) with
      | None, _, _ -> Error (Printf.sprintf "unknown severity %S" sev)
      | _, None, _ -> Error (Printf.sprintf "unknown operator %S" op)
      | _, _, None -> Error (Printf.sprintf "bad threshold %S" value)
      | Some severity, Some op, Some threshold ->
          let optional = String.ends_with ~suffix:"?" sel in
          let selector =
            if optional then String.sub sel 0 (String.length sel - 1) else sel
          in
          if selector = "" then Error "empty selector"
          else Ok { severity; selector; optional; op; threshold })
  | _ -> Error "expected: SEVERITY SELECTOR OP VALUE"

let parse doc =
  let lines = String.split_on_char '\n' doc in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        if String.trim line = "" then go (n + 1) acc rest
        else (
          match parse_rule line with
          | Ok r -> go (n + 1) (r :: acc) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" n e))
  in
  go 1 [] lines

(* --- resolution ---------------------------------------------------- *)

let finite v = if Float.is_nan v then None else Some v

let hist_field (hs : Obs_metrics.hist_stats) = function
  | "count" -> Some (float_of_int hs.hs_count)
  | "sum" -> Some hs.hs_sum
  | "mean" -> Some hs.hs_mean
  | "min" -> Some hs.hs_min
  | "max" -> Some hs.hs_max
  | "p50" -> Some hs.hs_p50
  | "p95" -> Some hs.hs_p95
  | "p99" -> Some hs.hs_p99
  | _ -> None

let resolve (snap : Obs_metrics.snapshot) selector =
  let counter name =
    List.assoc_opt name snap.snap_counters |> Option.map float_of_int
  in
  let exact () =
    match counter selector with
    | Some v -> Some v
    | None -> (
        match List.assoc_opt selector snap.snap_gauges with
        | Some v -> finite v
        | None ->
            Option.bind
              (List.assoc_opt selector snap.snap_histograms)
              (fun hs -> finite hs.Obs_metrics.hs_mean))
  in
  match exact () with
  | Some v -> Some v
  | None -> (
      match String.rindex_opt selector '.' with
      | None -> None
      | Some i ->
          let base = String.sub selector 0 i in
          let stat =
            String.sub selector (i + 1) (String.length selector - i - 1)
          in
          let from_hist =
            Option.bind
              (List.assoc_opt base snap.snap_histograms)
              (fun hs -> Option.bind (hist_field hs stat) finite)
          in
          if from_hist <> None then from_hist
          else if stat = "count" then counter base
          else None)

(* --- evaluation ---------------------------------------------------- *)

let holds op value threshold =
  match op with
  | Lt -> value < threshold
  | Le -> value <= threshold
  | Gt -> value > threshold
  | Ge -> value >= threshold
  | Eq -> Tol.exactly value threshold
  | Ne -> not (Tol.exactly value threshold)

let eval_rule rule entries =
  let seen = ref false in
  let violation = ref None in
  List.iter
    (fun (at, snap) ->
      if !violation = None then
        match resolve snap rule.selector with
        | None -> ()
        | Some value ->
            seen := true;
            if not (holds rule.op value rule.threshold) then
              violation := Some (value, at))
    entries;
  match !violation with
  | Some (value, at) -> Fail { value; at }
  | None ->
      if !seen then Pass else if rule.optional then Skipped else Missing

let evaluate ~rules entries =
  let outcomes = List.map (fun r -> (r, eval_rule r entries)) rules in
  let worst =
    List.fold_left
      (fun acc (rule, status) ->
        let level =
          match status with
          | Pass | Skipped -> 0
          | Missing -> 1
          | Fail _ -> ( match rule.severity with Warn -> 1 | Critical -> 2)
        in
        max acc level)
      0 outcomes
  in
  let verdict =
    match worst with
    | 0 -> Healthy
    | 1 -> Unhealthy Warn
    | _ -> Unhealthy Critical
  in
  { outcomes; verdict; entries = List.length entries }

let exit_code r =
  match r.verdict with
  | Healthy -> 0
  | Unhealthy Warn -> 1
  | Unhealthy Critical -> 2

(* --- rendering ----------------------------------------------------- *)

let severity_to_string = function Warn -> "warn" | Critical -> "critical"

let verdict_to_string = function
  | Healthy -> "ok"
  | Unhealthy Warn -> "warn"
  | Unhealthy Critical -> "critical"

let pp_op ppf op = Format.pp_print_string ppf (op_to_string op)

let pp_rule ppf r =
  Format.fprintf ppf "%s %s%s %a %g" (severity_to_string r.severity) r.selector
    (if r.optional then "?" else "")
    pp_op r.op r.threshold

let pp_status ppf = function
  | Pass -> Format.pp_print_string ppf "[PASS]"
  | Fail _ -> Format.pp_print_string ppf "[FAIL]"
  | Missing -> Format.pp_print_string ppf "[MISS]"
  | Skipped -> Format.pp_print_string ppf "[SKIP]"

let pp_report ppf r =
  List.iter
    (fun (rule, status) ->
      Format.fprintf ppf "%a %a" pp_status status pp_rule rule;
      (match status with
      | Fail { value; at = Some at } ->
          Format.fprintf ppf "  (value %g at %d)" value at
      | Fail { value; at = None } -> Format.fprintf ppf "  (value %g)" value
      | Missing -> Format.fprintf ppf "  (metric absent)"
      | Pass | Skipped -> ());
      Format.pp_print_newline ppf ())
    r.outcomes;
  Format.fprintf ppf "verdict: %s (%d rule(s), %d snapshot(s))@."
    (verdict_to_string r.verdict)
    (List.length r.outcomes)
    r.entries

let status_to_json = function
  | Pass -> [ ("status", Jsonx.String "pass") ]
  | Fail { value; at } ->
      ("status", Jsonx.String "fail")
      :: ("value", Jsonx.Float value)
      ::
      (match at with Some at -> [ ("at", Jsonx.Int at) ] | None -> [])
  | Missing -> [ ("status", Jsonx.String "missing") ]
  | Skipped -> [ ("status", Jsonx.String "skipped") ]

let report_to_json r =
  Jsonx.Obj
    [
      ("v", Jsonx.Int 1);
      ("verdict", Jsonx.String (verdict_to_string r.verdict));
      ("entries", Jsonx.Int r.entries);
      ( "rules",
        Jsonx.List
          (List.map
             (fun (rule, status) ->
               Jsonx.Obj
                 ([
                    ( "severity",
                      Jsonx.String (severity_to_string rule.severity) );
                    ("selector", Jsonx.String rule.selector);
                    ("optional", Jsonx.Bool rule.optional);
                    ("op", Jsonx.String (op_to_string rule.op));
                    ("threshold", Jsonx.Float rule.threshold);
                  ]
                 @ status_to_json status))
             r.outcomes) );
    ]
