let high_water = ref 0.0

let now () =
  let t = Unix.gettimeofday () in
  if t > !high_water then high_water := t;
  !high_water

let elapsed_since t0 = Float.max 0.0 (now () -. t0)
