(** A content-addressed registry of observability artifacts on disk.

    A single run's trace tells you what that run did; comparing runs —
    "when did this regression appear, and what did the first bad run do
    differently?" — needs the artifacts of many runs filed somewhere
    queryable. A store is a [.csobs] directory:

    {v
    .csobs/
      index.jsonl            append-only ledger: add + rm lines
      runs/<run-id>/
        trace.jsonl          event trace (Obs_sink)
        snapshots.jsonl      snapshot timeline (Obs_snapshot)
        bench.json           bench record (Bench_record)
    v}

    The run id is {e derived, not minted}: a fixed-width digest of the
    provenance triple (git sha, seed, scenario) from the artifact's
    {!Obs_meta} header. Re-adding an artifact of the same run therefore
    files it in the same place — the store is content-addressed by
    provenance, and two machines indexing the same run agree on its id
    without coordination. Artifacts without a provenance header are
    refused: a file the store cannot re-derive an id for is a file it
    could never deduplicate or join against.

    The index is an append-only JSONL ledger, never rewritten in place:
    [add] appends a record line, [rm] appends a tombstone. Readers fold
    the ledger in order, so the live view is always last-writer-wins and
    a crash mid-append loses at most the line being written. Removal by
    age ({!gc}) is measured against file mtimes relative to the newest
    artifact in the store — not against the wall clock, which belongs to
    {!Obs_clock} alone (lint rule R8). *)

type t
(** An open store (root directory). *)

type kind = Trace | Snapshots | Bench

type record = {
  id : string;  (** Run id ({!run_id_of_meta}). *)
  kind : kind;
  file : string;  (** Artifact path relative to the store root. *)
  git_sha : string option;
  seed : int64 option;
  scenario : string option;
}
(** One live index entry: an artifact of run [id]. A run that stored
    both a trace and a snapshot timeline has two records with the same
    [id]. *)

val default_root : string
(** [".csobs"]. *)

val open_store : ?root:string -> unit -> (t, string) result
(** Open (creating if needed) the store rooted at [root] (default
    {!default_root}). Errors if [root] exists and is not a directory. *)

val root : t -> string

val run_id_of_meta : Obs_meta.t -> string
(** The deterministic run id of a provenance header: a 12-hex-digit
    digest of [(git_sha, seed, scenario)], each component falling back
    to ["-"] when absent. Same triple, same id — on any machine. *)

val kind_to_string : kind -> string
(** ["trace"] / ["snapshots"] / ["bench"]. *)

val kind_of_string : string -> (kind, string) result

val add :
  t -> ?meta:Obs_meta.t -> kind:kind -> string -> (record, string) result
(** [add t ~kind src] files a copy of [src] under [runs/<id>/] and
    appends its record to the index. The id comes from [meta] when
    given, otherwise from the first {!Obs_meta} header found in [src]
    itself (trace and snapshot JSONL open with one); a headerless
    artifact with no [?meta] override is an error. Re-adding the same
    [(id, kind)] overwrites the stored copy and appends a fresh record
    line (last one wins on read-back). *)

val ls : t -> (record list, string) result
(** Live records, oldest-added first: the index folded with tombstones
    applied and duplicate [(id, kind)] entries collapsed to the latest. *)

val find : t -> id:string -> (record list, string) result
(** Live records of one run. *)

val find_by_sha : t -> git_sha:string -> (record list, string) result
(** Live records whose provenance git sha matches — the join key trend
    attribution uses to map a bench-history row back to its trace. *)

val artifact_path : t -> record -> string
(** Absolute-ish path ([root ^ "/" ^ file]) of a record's artifact. *)

val rm : t -> id:string -> (int, string) result
(** Remove run [id]: append a tombstone and delete its artifacts.
    Returns the number of artifacts deleted; [Ok 0] if the id was not
    live (removal is idempotent). *)

val gc :
  t -> ?keep:int -> ?max_age_s:float -> unit -> (string list, string) result
(** Retention sweep; returns the removed run ids, oldest first. [keep]
    retains only the [keep] most recently {e added} runs (ledger
    order). [max_age_s] removes runs whose newest artifact mtime lags
    the newest mtime in the whole store by more than [max_age_s]
    seconds — age is relative to the store's own frontier, so an
    offline archive does not rot merely because nobody ran anything
    ({!Obs_clock} owns the wall clock; the store never reads it). Both
    criteria may be combined; with neither, nothing is removed. *)

val index_to_json : record list -> Jsonx.t
(** The [/runs] wire form: a JSON array of record objects — what
    [cstrace serve] returns and what the CI artifact upload captures. *)
