(** The telemetry collector: many producers in, one merged picture out.

    [run] listens on a unix/TCP address for {!Obs_remote} producers
    speaking the {!Obs_stream} protocol. Each connection is one stream
    segment: HELLO pins its {!Obs_meta.t} provenance (and so its
    {!Obs_store} run id), events are accepted only in strict sequence
    order, and the segment ends with BYE — or without one, in which
    case the stored trace is finalized with an explicit truncation
    marker line rather than passing for a complete run.

    Every accepted stream is written back out as an ordinary JSONL
    trace (provenance header first), so a streamed trace is
    [cstrace diff]-identical to the same run's locally written file:
    the transport adds sequence numbers and heartbeats on the wire but
    none of it reaches the stored lines. Traces are filed in an
    {!Obs_store} registry when a store root is given.

    In parallel the collector folds every event from every producer
    into one aggregated [trace.*] registry
    ({!Obs_query.metrics_updater}) plus [collect.*] transport counters,
    optionally served live over {!Obs_http} ([/metrics] validated
    Prometheus text, [/health] 503 while any alert fires, [/runs] the
    store index), and evaluates {!Obs_health} rules against that
    registry as events arrive — the {!Alerts} state machine reports
    firing/resolved {e edges}, not levels, so the log carries one line
    per transition. *)

(** {1 Alert state machine} *)

type transition = {
  tr_rule : Obs_health.rule;
  tr_firing : bool;  (** [true] = fired on this observation *)
  tr_value : float option;  (** offending value when firing *)
}

module Alerts : sig
  type t

  val create : Obs_health.rule list -> t

  val observe : t -> Obs_metrics.snapshot -> transition list
  (** Evaluate the rules against one registry snapshot and return the
      state {e changes}: a rule whose status crossed into [Fail] fires,
      one that crossed back resolves. [Missing]/[Skipped] never fire —
      early in a stream most selectors have no data yet. *)

  val any_firing : t -> bool
end

(** {1 Collector} *)

type stream_summary = {
  ss_run_id : string;
  ss_events : int;
  ss_dropped : int;  (** producer-reported drop counter *)
  ss_truncated : bool;  (** ended without BYE *)
  ss_path : string option;  (** final resting place of the trace *)
}

type summary = {
  streams : stream_summary list;  (** in finalization order *)
  total_events : int;
  rejected : int;  (** protocol-violating or unreadable frames *)
  alerts_fired : int;
  alerts_resolved : int;
}

val run :
  ?http:Obs_http.addr ->
  ?producers:int ->
  ?once:bool ->
  ?store_root:string ->
  ?out_dir:string ->
  ?rules:Obs_health.rule list ->
  ?alert_every:int ->
  ?log:(string -> unit) ->
  ?ready:(Obs_http.addr -> unit) ->
  listen:Obs_http.addr ->
  unit ->
  (summary, string) result
(** Listen on [listen] and collect. With [once] (default [false]) the
    collector stops after [producers] (default [1]) stream segments
    have been finalized; otherwise it accepts forever. [out_dir] keeps
    each stream's JSONL trace as [<run_id>.jsonl] (suffixed [-2],
    [-3]… on id collision); [store_root] additionally files every
    trace in that {!Obs_store} registry. [rules] are evaluated every
    [alert_every] events (default [64]) and at each stream's
    finalization. [http] stands up the live exposition endpoint for
    the collector's lifetime. [ready] receives the bound listen
    address (with TCP port [0], the kernel-chosen port) before the
    first accept — the CLI's [--addr-file] handshake. [log] receives
    one line per notable occurrence (stream truncated, frame rejected,
    alert transition); default drops them. *)

val pp_summary : Format.formatter -> summary -> unit
(** Multi-line rendering: totals, then one line per stream. *)
