(* ------------------------------------------------------------------ *)
(* Folded stacks (flamegraph.pl / speedscope)                         *)

(* Frame names may not contain the format's two separators. *)
let sanitize_frame name =
  String.map
    (function ';' | ' ' | '\t' | '\n' | '\r' -> '_' | c -> c)
    name

let folded_of_spans spans =
  (* Path (root;...;name) and self time per span: self = dur minus the
     children's durations, clamped at 0 (clock granularity can make
     nested sums exceed the parent). *)
  let by_id = Hashtbl.create 64 in
  List.iter
    (fun (sp : Obs_span.span) -> Hashtbl.replace by_id sp.Obs_span.id sp)
    spans;
  let child_us = Hashtbl.create 64 in
  List.iter
    (fun (sp : Obs_span.span) ->
      if sp.Obs_span.parent >= 0 then
        let prev =
          Option.value ~default:0.0 (Hashtbl.find_opt child_us sp.Obs_span.parent)
        in
        Hashtbl.replace child_us sp.Obs_span.parent (prev +. sp.Obs_span.dur_us))
    spans;
  let rec path (sp : Obs_span.span) =
    let frame = sanitize_frame sp.Obs_span.name in
    match Hashtbl.find_opt by_id sp.Obs_span.parent with
    | Some parent -> path parent ^ ";" ^ frame
    | None -> frame
  in
  let weights = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (sp : Obs_span.span) ->
      let p = path sp in
      let kids =
        Option.value ~default:0.0 (Hashtbl.find_opt child_us sp.Obs_span.id)
      in
      let self = Float.max 0.0 (sp.Obs_span.dur_us -. kids) in
      (match Hashtbl.find_opt weights p with
      | None ->
          order := p :: !order;
          Hashtbl.replace weights p self
      | Some w -> Hashtbl.replace weights p (w +. self)))
    spans;
  List.map
    (fun p ->
      (* Integer microseconds; weight-0 paths are kept so the stack set
         stays deterministic even when all wall times collapse. *)
      Printf.sprintf "%s %d" p
        (Stdlib.max 0 (int_of_float (Float.round (Hashtbl.find weights p)))))
    (List.sort String.compare !order)

let validate_folded lines =
  let check i line =
    match String.rindex_opt line ' ' with
    | None -> Error (Printf.sprintf "line %d: no weight column" (i + 1))
    | Some sp ->
        let stack = String.sub line 0 sp in
        let weight = String.sub line (sp + 1) (String.length line - sp - 1) in
        if stack = "" then Error (Printf.sprintf "line %d: empty stack" (i + 1))
        else if String.contains stack ' ' then
          Error (Printf.sprintf "line %d: space inside stack" (i + 1))
        else if
          List.exists (fun f -> f = "") (String.split_on_char ';' stack)
        then Error (Printf.sprintf "line %d: empty frame" (i + 1))
        else
          match int_of_string_opt weight with
          | Some w when w >= 0 -> Ok ()
          | Some _ -> Error (Printf.sprintf "line %d: negative weight" (i + 1))
          | None ->
              Error
                (Printf.sprintf "line %d: weight %S is not an integer" (i + 1)
                   weight)
  in
  let rec go i = function
    | [] -> Ok (List.length lines)
    | line :: rest -> (
        match check i line with Ok () -> go (i + 1) rest | Error _ as e -> e)
  in
  go 0 lines

let spans_of_chrome j =
  let ( let* ) = Result.bind in
  let* n_events, _depth = Obs_span.validate_chrome j in
  ignore n_events;
  match Jsonx.member "traceEvents" j with
  | Some (Jsonx.List events) ->
      (* Events are in creation order and nest strictly, so the parent
         of a depth-d span is the most recent span at depth d-1. *)
      let stack = ref [] in
      let spans =
        List.mapi
          (fun i ev ->
            let str name =
              Option.get (Option.bind (Jsonx.member name ev) Jsonx.get_string)
            in
            let flt name =
              Option.get (Option.bind (Jsonx.member name ev) Jsonx.get_float)
            in
            let args =
              match Jsonx.member "args" ev with
              | Some (Jsonx.Obj fields) -> fields
              | _ -> []
            in
            let depth =
              Option.get
                (Option.bind (List.assoc_opt "depth" args) Jsonx.get_int)
            in
            stack := List.filter (fun (_, d) -> d < depth) !stack;
            let parent = match !stack with (id, _) :: _ -> id | [] -> -1 in
            stack := (i, depth) :: !stack;
            {
              Obs_span.id = i;
              parent;
              depth;
              name = str "name";
              start_us = flt "ts";
              dur_us = flt "dur";
              attrs = List.remove_assoc "depth" args;
            })
          events
      in
      Ok spans
  | _ -> Error "missing traceEvents"

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                         *)

let sanitize_metric_name name =
  let mapped =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      name
  in
  match mapped.[0] with
  | '0' .. '9' -> "_" ^ mapped
  | _ -> mapped
  | exception Invalid_argument _ -> "_"

let prom_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Jsonx.to_string (Jsonx.Float v)

let prometheus_of_snapshot ?(namespace = "cs") (s : Obs_metrics.snapshot) =
  let full name = sanitize_metric_name (namespace ^ "_" ^ name) in
  let lines = ref [] in
  let out l = lines := l :: !lines in
  List.iter
    (fun (name, count) ->
      let n = full name ^ "_total" in
      out (Printf.sprintf "# HELP %s Counter %s." n name);
      out (Printf.sprintf "# TYPE %s counter" n);
      out (Printf.sprintf "%s %d" n count))
    s.Obs_metrics.snap_counters;
  List.iter
    (fun (name, v) ->
      let n = full name in
      out (Printf.sprintf "# HELP %s Gauge %s." n name);
      out (Printf.sprintf "# TYPE %s gauge" n);
      out (Printf.sprintf "%s %s" n (prom_float v)))
    s.Obs_metrics.snap_gauges;
  List.iter
    (fun (name, (h : Obs_metrics.hist_stats)) ->
      let n = full name in
      out (Printf.sprintf "# HELP %s Histogram %s." n name);
      out (Printf.sprintf "# TYPE %s summary" n);
      out (Printf.sprintf "%s{quantile=\"0.5\"} %s" n (prom_float h.hs_p50));
      out (Printf.sprintf "%s{quantile=\"0.95\"} %s" n (prom_float h.hs_p95));
      out (Printf.sprintf "%s{quantile=\"0.99\"} %s" n (prom_float h.hs_p99));
      out (Printf.sprintf "%s_sum %s" n (prom_float h.hs_sum));
      out (Printf.sprintf "%s_count %d" n h.hs_count))
    s.Obs_metrics.snap_histograms;
  List.rev !lines

let prometheus ?namespace reg =
  prometheus_of_snapshot ?namespace (Obs_metrics.snapshot reg)

(* --- labeled samples ---------------------------------------------- *)

let escape_label_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prometheus_labeled ?(namespace = "cs") ~name ~help ~typ samples =
  let n = sanitize_metric_name (namespace ^ "_" ^ name) in
  let help =
    String.map (function '\n' | '\r' -> ' ' | c -> c) help
  in
  let labels = function
    | [] -> ""
    | kvs ->
        "{"
        ^ String.concat ","
            (List.map
               (fun (k, v) ->
                 Printf.sprintf "%s=\"%s\"" (sanitize_metric_name k)
                   (escape_label_value v))
               kvs)
        ^ "}"
  in
  Printf.sprintf "# HELP %s %s" n help
  :: Printf.sprintf "# TYPE %s %s" n typ
  :: List.map
       (fun (kvs, v) -> Printf.sprintf "%s%s %s" n (labels kvs) (prom_float v))
       samples

(* --- validation --------------------------------------------------- *)

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | _ -> false

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
  | _ -> false

let valid_metric_name s =
  s <> ""
  && is_name_start s.[0]
  && String.for_all is_name_char (String.sub s 1 (String.length s - 1))

let valid_types =
  [ "counter"; "gauge"; "summary"; "histogram"; "untyped" ]

let parse_value s =
  match s with
  | "NaN" | "+Inf" | "-Inf" -> true
  | _ -> Option.is_some (float_of_string_opt s)

(* An escape-aware scanner over a label block: comma-separated pairs of
   key = double-quoted value, where a value may contain backslash,
   quote and newline escapes (and therefore commas and quotes that a
   naive comma-split would trip over). *)
let valid_label_body body =
  let len = String.length body in
  let rec key i =
    match String.index_from_opt body i '=' with
    | None -> false
    | Some eq ->
        let k = String.sub body i (eq - i) in
        valid_metric_name k && value (eq + 1)
  and value i = i < len && body.[i] = '"' && scan (i + 1)
  and scan i =
    if i >= len then false
    else
      match body.[i] with
      | '\\' ->
          i + 1 < len
          && (match body.[i + 1] with
             | '\\' | '"' | 'n' -> true
             | _ -> false)
          && scan (i + 2)
      | '"' -> after (i + 1)
      | _ -> scan (i + 1)
  and after i =
    if i = len then true else body.[i] = ',' && i + 1 < len && key (i + 1)
  in
  len > 0 && key 0

(* Split "name{labels}" into the name and a validity check on the label
   block. *)
let parse_sample_name s =
  match String.index_opt s '{' with
  | None -> if valid_metric_name s then Some s else None
  | Some lb ->
      if String.length s = 0 || s.[String.length s - 1] <> '}' then None
      else
        let name = String.sub s 0 lb in
        let body = String.sub s (lb + 1) (String.length s - lb - 2) in
        if valid_metric_name name && valid_label_body body then Some name
        else None

let strip_suffix name =
  let drop suffix =
    if String.ends_with ~suffix name then
      Some (String.sub name 0 (String.length name - String.length suffix))
    else None
  in
  match drop "_sum" with
  | Some base -> Some base
  | None -> drop "_count"

let validate_prometheus lines =
  let typed : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let samples = ref 0 in
  let rec go i = function
    | [] -> Ok !samples
    | "" :: rest -> go (i + 1) rest
    | line :: rest ->
        let fail msg = Error (Printf.sprintf "line %d: %s" (i + 1) msg) in
        if String.length line > 0 && line.[0] = '#' then begin
          match String.split_on_char ' ' line with
          | "#" :: "TYPE" :: name :: ty :: [] ->
              if not (valid_metric_name name) then
                fail (Printf.sprintf "invalid metric name %S" name)
              else if not (List.mem ty valid_types) then
                fail (Printf.sprintf "unknown type %S" ty)
              else if Hashtbl.mem typed name then
                fail (Printf.sprintf "duplicate TYPE for %S" name)
              else begin
                Hashtbl.replace typed name ty;
                go (i + 1) rest
              end
          | "#" :: "HELP" :: name :: _ ->
              if not (valid_metric_name name) then
                fail (Printf.sprintf "invalid metric name %S" name)
              else go (i + 1) rest
          | _ -> fail "malformed comment (expected # HELP or # TYPE)"
        end
        else
          match String.rindex_opt line ' ' with
          | None -> fail "no value column"
          | Some sp -> (
              let head = String.sub line 0 sp in
              let value = String.sub line (sp + 1) (String.length line - sp - 1)
              in
              match parse_sample_name head with
              | None -> fail (Printf.sprintf "malformed sample name %S" head)
              | Some name ->
                  let known n = Hashtbl.mem typed n in
                  let series_ok =
                    known name
                    ||
                    match strip_suffix name with
                    | Some base -> (
                        match Hashtbl.find_opt typed base with
                        | Some ("summary" | "histogram") -> true
                        | _ -> false)
                    | None -> false
                  in
                  if not series_ok then
                    fail
                      (Printf.sprintf "sample %S has no preceding # TYPE" name)
                  else if not (parse_value value) then
                    fail (Printf.sprintf "unparsable value %S" value)
                  else begin
                    Stdlib.incr samples;
                    go (i + 1) rest
                  end)
  in
  go 0 lines
