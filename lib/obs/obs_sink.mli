(** Pluggable consumers for the event stream.

    A sink is where {!Obs.emit} delivers {!Obs_event.t} values. [Null]
    consumes nothing and is indistinguishable from tracing being off —
    {!Obs.tracing} reports [false] for it, so instrumented code skips
    event construction entirely and the sink costs one branch. [Jsonl]
    writes one self-describing JSON object per line (the schema
    {!Trace_report} reads back); [Console] pretty-prints for humans;
    [Custom] forwards to arbitrary user code (in-memory collection,
    filtering, fan-out). *)

type t =
  | Null  (** Discard; equivalent to tracing disabled. *)
  | Jsonl of out_channel
      (** One {!Obs_event.to_json} line per event. The channel is owned
          by the caller (open, flush and close around the run). *)
  | Console of Format.formatter  (** {!Obs_event.pp}, one line per event. *)
  | Custom of (Obs_event.t -> unit)

val consumes : t -> bool
(** [false] only for [Null]: whether emitting to this sink does work. *)

val emit : t -> Obs_event.t -> unit

val tee : t list -> t
(** Fan one emit out to every sink in the list (in order). Sinks that
    consume nothing are dropped up front: [tee []] and [tee [Null]]
    are [Null] (so {!Obs.tracing} still reports [false]), and a
    single live sink is returned as itself rather than wrapped. Used
    by [csctl simulate --emit] to write the local JSONL trace and
    stream to a collector from one instrumentation pass. *)

val with_jsonl_file : ?meta:Obs_meta.t -> string -> (t -> 'a) -> 'a
(** [with_jsonl_file path k] opens [path] for writing, runs [k] with a
    [Jsonl] sink over it, and closes the channel on return or
    exception. When [meta] is given, its {!Obs_meta.to_json} line is
    written first, so the trace opens with its provenance header. *)
