(** Framed event protocol for live telemetry streaming.

    A producer (Obs_remote) opens a unix or TCP socket to a collector
    (Obs_collect) and ships frames: one HELLO announcing the run's
    {!Obs_meta.t} provenance, then the run's events each tagged with a
    per-producer sequence number, interleaved heartbeats carrying the
    producer's drop counter, and a final BYE. Each frame is a 4-byte
    big-endian payload length followed by that many bytes of JSON.

    This module is the pure core: codec, frame reader over an abstract
    [read] function, and the per-producer ordering state machine the
    collector runs. It performs no socket I/O itself (the lint R13
    fence nonetheless covers it, together with Obs_remote and
    Obs_collect, as part of the streaming transport). *)

val protocol_version : int
(** Version stamped into every frame payload as ["v"]. *)

val max_frame_bytes : int
(** Default cap on a single frame's payload length (1 MiB). A peer
    announcing a longer frame is rejected before any allocation. *)

type frame =
  | Hello of Obs_meta.t
      (** Stream opener: full provenance header. Re-sent on every
          reconnect; the collector accepts a byte-identical resume and
          rejects a provenance change mid-stream. *)
  | Event of { seq : int; event : Obs_event.t }
      (** One trace event. [seq] starts at 1 and increments by one per
          event {e sent} (events dropped by the producer's ring leave
          gaps only in what was never sent, not in the wire stream). *)
  | Heartbeat of { seq : int; dropped : int }
      (** Liveness + drop accounting: [seq] echoes the last event seq
          sent, [dropped] is the producer's cumulative drop counter. *)
  | Bye of { seq : int; dropped : int }
      (** Clean close; same fields as a heartbeat. A stream that ends
          without BYE is finalized as truncated. *)

(** {1 Codec} *)

val encode : frame -> string
(** Wire bytes for one frame: length prefix + JSON payload. *)

val frame_to_json : frame -> Jsonx.t

val frame_of_json : Jsonx.t -> (frame, string) result

val decode_payload : string -> (frame, string) result
(** Parse one frame payload (the bytes after the length prefix). *)

type read_error = [ `Eof | `Too_large of int | `Malformed of string ]
(** [`Eof] is a clean end-of-stream (connection closed between
    frames); [`Malformed] covers mid-frame EOF and payloads that do
    not parse; [`Too_large n] is a length prefix beyond the cap. *)

val read_frame :
  ?max_len:int -> (bytes -> int -> int -> int) -> (frame, read_error) result
(** [read_frame read] pulls one frame through [read buf pos len]
    (returning the number of bytes read, 0 or negative at EOF),
    tolerating partial reads. [max_len] defaults to
    {!max_frame_bytes}. *)

val pp_read_error : Format.formatter -> read_error -> unit

(** {1 Per-producer ordering machine}

    The collector runs one [ingest] per connection: it enforces
    HELLO-first, strictly consecutive event sequence numbers, and
    heartbeat/BYE positions that agree with the stream, and it
    accumulates the producer's event and drop counts. *)

type ingest

val ingest_create : unit -> ingest

type verdict =
  | Ok_hello of Obs_meta.t
  | Ok_event of Obs_event.t
  | Ok_heartbeat
  | Ok_bye
  | Reject of string
      (** Protocol violation; the collector drops the connection and
          counts the frame as rejected. *)

val ingest : ingest -> frame -> verdict
(** Feed one frame through the state machine. Rejected frames do not
    advance the stream position. *)

val ingest_meta : ingest -> Obs_meta.t option
(** Provenance from the stream's HELLO, once seen. *)

val ingest_events : ingest -> int
(** Events accepted so far. *)

val ingest_dropped : ingest -> int
(** Latest producer-reported cumulative drop count. *)

val ingest_closed : ingest -> bool
(** [true] once BYE was accepted. *)

val ingest_first_seq : ingest -> int option
(** Sequence number of the first accepted event. A value above 1
    means the producer dropped (or sent elsewhere) a prefix of the
    run before this stream started. *)

(** {1 Truncation marker}

    When a stream ends without BYE the collector appends one marker
    line to the stored trace, so downstream loaders can tell a partial
    trace from a complete one. The marker is a transport-level JSON
    line, deliberately {e not} an {!Obs_event.t}: traces written
    locally never contain it, and {!Obs_query.load} surfaces it via
    the trace's [truncated] field. *)

val truncation_marker : events:int -> Jsonx.t
(** Marker recording how many events were ingested before the cut. *)

val is_truncation_json : Jsonx.t -> bool

val truncation_of_json : Jsonx.t -> (int, string) result
(** Returns the marker's ingested-event count. *)
