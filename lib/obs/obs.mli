(** The observability handle threaded through the simulation and
    scheduling layers.

    An [Obs.t] bundles an event {!Obs_sink} with an optional
    {!Obs_metrics} registry. Instrumented functions take it as an
    optional [?obs] parameter defaulting to {!disabled}, so existing call
    sites compile (and behave) unchanged.

    {2 Overhead discipline}

    The disabled handle must cost ~one branch per hot-path call site.
    Instrumented code therefore hoists the activity tests once:

    {[
      let trace = Obs.tracing obs in       (* events wanted? *)
      let meter = Obs.metrics obs in       (* registry attached? *)
      ...
      if trace then Obs.emit obs (Obs.Event.Period_completed { ... });
      (match meter with Some m -> Obs_metrics.incr done_ctr | None -> ());
    ]}

    so that with [obs = disabled] (or a [Null] sink) no event is ever
    constructed and no registry is touched — the [bench/] timing suite
    pins this budget. The convenience wrappers ({!incr}, {!observe},
    {!time}) carry the same one-branch guarantee internally and are fine
    outside inner loops. *)

module Metrics = Obs_metrics
module Event = Obs_event
module Sink = Obs_sink
module Span = Obs_span
module Meta = Obs_meta
module Snapshot = Obs_snapshot
module Resource = Obs_resource
module Health = Obs_health
module Watch = Obs_watch
module Store = Obs_store
module Trend = Obs_trend
module Http = Obs_http
module Stream = Obs_stream
module Remote = Obs_remote
module Collect = Obs_collect

type t

val disabled : t
(** No sink, no metrics, no span recorder: {!tracing} is [false],
    {!metrics} and {!span_recorder} are [None], every operation is a
    cheap no-op. The default everywhere. *)

val create : ?sink:Sink.t -> ?metrics:Metrics.t -> ?spans:Span.t -> unit -> t
(** [create ()] with no argument behaves like {!disabled}. *)

val tracing : t -> bool
(** [true] iff the sink consumes events ([Sink.Null] does not). Hoist
    this test and guard event {e construction} with it. *)

val metrics : t -> Metrics.t option
(** The attached registry, for hot paths that pre-resolve instruments. *)

val span_recorder : t -> Span.t option
(** The attached span recorder. Hot paths hoist this once and call
    {!Obs_span} directly when it is [Some]; cooler paths use {!span}. *)

val instrumented : t -> bool
(** Whether any observation work is wanted at all (sink, registry, or
    span recorder attached). *)

val emit : t -> Event.t -> unit
(** Deliver one event; no-op unless {!tracing}. *)

val incr : t -> string -> unit
(** Bump counter [name]; no-op without a registry. *)

val add : t -> string -> int -> unit

val set_gauge : t -> string -> float -> unit

val observe : t -> string -> float -> unit
(** Record one histogram observation; no-op without a registry. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Span-time [f] into histogram [name] (seconds); runs [f] untimed
    without a registry. *)

val span : ?attrs:(string * Jsonx.t) list -> t -> string -> (unit -> 'a) -> 'a
(** [span t name f] profiles [f] as a {!Obs_span} interval when a
    recorder is attached, and is [f ()] otherwise (one branch — but note
    the closure and any [?attrs] list are built by the caller either
    way, so inner loops should hoist {!span_recorder} instead). *)
