(** The observability handle threaded through the simulation and
    scheduling layers.

    An [Obs.t] bundles an event {!Obs_sink} with an optional
    {!Obs_metrics} registry. Instrumented functions take it as an
    optional [?obs] parameter defaulting to {!disabled}, so existing call
    sites compile (and behave) unchanged.

    {2 Overhead discipline}

    The disabled handle must cost ~one branch per hot-path call site.
    Instrumented code therefore hoists the activity tests once:

    {[
      let trace = Obs.tracing obs in       (* events wanted? *)
      let meter = Obs.metrics obs in       (* registry attached? *)
      ...
      if trace then Obs.emit obs (Obs.Event.Period_completed { ... });
      (match meter with Some m -> Obs_metrics.incr done_ctr | None -> ());
    ]}

    so that with [obs = disabled] (or a [Null] sink) no event is ever
    constructed and no registry is touched — the [bench/] timing suite
    pins this budget. The convenience wrappers ({!incr}, {!observe},
    {!time}) carry the same one-branch guarantee internally and are fine
    outside inner loops. *)

module Metrics = Obs_metrics
module Event = Obs_event
module Sink = Obs_sink

type t

val disabled : t
(** No sink, no metrics: {!tracing} is [false], {!metrics} is [None],
    every operation is a cheap no-op. The default everywhere. *)

val create : ?sink:Sink.t -> ?metrics:Metrics.t -> unit -> t
(** [create ()] with neither argument behaves like {!disabled}. *)

val tracing : t -> bool
(** [true] iff the sink consumes events ([Sink.Null] does not). Hoist
    this test and guard event {e construction} with it. *)

val metrics : t -> Metrics.t option
(** The attached registry, for hot paths that pre-resolve instruments. *)

val instrumented : t -> bool
(** [tracing t || metrics t <> None] — whether any observation work is
    wanted at all. *)

val emit : t -> Event.t -> unit
(** Deliver one event; no-op unless {!tracing}. *)

val incr : t -> string -> unit
(** Bump counter [name]; no-op without a registry. *)

val add : t -> string -> int -> unit

val set_gauge : t -> string -> float -> unit

val observe : t -> string -> float -> unit
(** Record one histogram observation; no-op without a registry. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Span-time [f] into histogram [name] (seconds); runs [f] untimed
    without a registry. *)
