let default_eps = 1e-9

let exactly a b = Float.equal a b

let equal ?(eps = default_eps) a b =
  Float.equal a b
  || Float.abs (a -. b)
     <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let is_zero ?(eps = default_eps) x = Float.abs x <= eps
