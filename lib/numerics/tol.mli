(** Tolerance-aware float comparisons.

    The guarantees reproduced here (Thm 3.1 recurrence, Thm 3.2/3.3
    bounds, Cor 3.2 admissibility) are only as trustworthy as the float
    discipline behind them, and polymorphic [=] on floats is the easiest
    way to break it silently. cslint rule R1 therefore bans polymorphic
    comparison against float operands; this module is the sanctioned
    replacement. Use {!equal} / {!is_zero} when a tolerance is the right
    semantics, and {!exactly} when bit-level equality is genuinely
    intended (sentinel values, exact-zero residuals) — the call site then
    documents that the exactness is deliberate. *)

val default_eps : float
(** Default relative/absolute tolerance used by {!equal} and {!is_zero}
    (1e-9): far looser than one ulp, far tighter than any quantity the
    schedules distinguish. *)

val equal : ?eps:float -> float -> float -> bool
(** [equal a b] is true when [a] and [b] agree to within [eps] scaled by
    [max 1 (max |a| |b|)] (a mixed absolute/relative test), or when they
    are exactly equal (covering infinities of the same sign). NaN equals
    nothing. *)

val is_zero : ?eps:float -> float -> bool
(** [is_zero x] is [|x| <= eps]: an absolute test, appropriate for
    residuals and probability masses that should vanish. *)

val exactly : float -> float -> bool
(** [exactly a b] is bitwise-intent equality ([Float.equal], so [-0.]
    equals [0.] and NaN equals NaN). Use it where an algorithm really
    does test for an exact value, e.g. a root residual of exactly [0.]
    or a quadrature node at the interval midpoint. *)
