(** Numerical integration.

    Used to compute the mean reclaim time [∫ p(t) dt] of a life function
    (a survival-function identity), normalisation constants for trace
    densities, and cross-checks of Monte-Carlo estimates. *)

val simpson : (float -> float) -> lo:float -> hi:float -> n:int -> float
(** [simpson f ~lo ~hi ~n] is composite Simpson's rule on [n] panels ([n]
    rounded up to even). O(h⁴) on smooth integrands. Requires [n >= 2]. *)

val adaptive_simpson :
  ?tol:float -> ?max_depth:int -> (float -> float) -> lo:float -> hi:float ->
  float
(** [adaptive_simpson f ~lo ~hi] recursively bisects panels until the local
    Richardson error estimate is below [tol] (default 1e-10), to depth at
    most [max_depth] (default 50). *)

val gauss_legendre : (float -> float) -> lo:float -> hi:float -> order:int ->
  float
(** [gauss_legendre f ~lo ~hi ~order] applies a fixed Gauss–Legendre rule of
    [order] points ∈ {2..8} mapped to [[lo, hi]]; exact for polynomials of
    degree [2·order - 1].
    @raise Invalid_argument for unsupported orders. *)

val integrate_to_infinity :
  ?tol:float -> (float -> float) -> lo:float -> float
(** [integrate_to_infinity f ~lo] integrates a nonnegative, eventually
    decaying [f] on [[lo, ∞)] by doubling panels [[x, 2x]] until a panel
    contributes less than [tol] (default 1e-12) relatively. Intended for
    survival functions with exponential-type tails (e.g. [a^{-t}]). *)
