type summary = {
  n : int;
  mean : float;
  variance : float;
  stddev : float;
  min : float;
  max : float;
}

let require_nonempty name a =
  if Array.length a = 0 then
    invalid_arg (Printf.sprintf "Stats.%s: empty input" name)

let mean a =
  require_nonempty "mean" a;
  Kahan.sum a /. float_of_int (Array.length a)

let summarize a =
  require_nonempty "summarize" a;
  let n = Array.length a in
  let mu = mean a in
  let acc = Kahan.create () in
  let mn = ref a.(0) and mx = ref a.(0) in
  Array.iter
    (fun x ->
      let d = x -. mu in
      Kahan.add acc (d *. d);
      if x < !mn then mn := x;
      if x > !mx then mx := x)
    a;
  let variance =
    if n < 2 then 0.0 else Kahan.total acc /. float_of_int (n - 1)
  in
  { n; mean = mu; variance; stddev = sqrt variance; min = !mn; max = !mx }

let standard_error a =
  if Array.length a < 2 then
    invalid_arg "Stats.standard_error: need at least 2 samples";
  let s = summarize a in
  s.stddev /. sqrt (float_of_int s.n)

let confidence_interval_95 a =
  let se = standard_error a in
  let mu = mean a in
  (mu -. (1.96 *. se), mu +. (1.96 *. se))

let quantile a ~q =
  require_nonempty "quantile" a;
  if q < 0.0 || q > 1.0 then
    invalid_arg "Stats.quantile: q must lie in [0, 1]";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Int.min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let histogram a ~bins ~lo ~hi =
  if bins < 1 then invalid_arg "Stats.histogram: bins must be >= 1";
  if not (lo < hi) then invalid_arg "Stats.histogram: requires lo < hi";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let i = int_of_float (Float.floor ((x -. lo) /. width)) in
      let i = Int.max 0 (Int.min (bins - 1) i) in
      counts.(i) <- counts.(i) + 1)
    a;
  counts

let ecdf_survival samples =
  require_nonempty "ecdf_survival" samples;
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let nf = float_of_int n in
  (* Collapse ties: survival after x = fraction of samples strictly > x. *)
  let points = ref [] in
  let i = ref 0 in
  while !i < n do
    let x = sorted.(!i) in
    let j = ref !i in
    while !j < n && sorted.(!j) = x do
      incr j
    done;
    points := (x, float_of_int (n - !j) /. nf) :: !points;
    i := !j
  done;
  Array.of_list (List.rev !points)

let kaplan_meier observations =
  if Array.length observations = 0 then
    invalid_arg "Stats.kaplan_meier: empty input";
  let obs = Array.copy observations in
  Array.sort (fun (a, _) (b, _) -> Float.compare a b) obs;
  let n = Array.length obs in
  let at_risk = ref n in
  let survival = ref 1.0 in
  let steps = ref [] in
  let i = ref 0 in
  while !i < n do
    let t, _ = obs.(!i) in
    (* Gather everyone with this exact time: events first, then censored. *)
    let events = ref 0 and total = ref 0 in
    let j = ref !i in
    while !j < n && fst obs.(!j) = t do
      incr total;
      if snd obs.(!j) then incr events;
      incr j
    done;
    if !events > 0 then begin
      survival :=
        !survival
        *. (1.0 -. (float_of_int !events /. float_of_int !at_risk));
      steps := (t, !survival) :: !steps
    end;
    at_risk := !at_risk - !total;
    i := !j
  done;
  Array.of_list (List.rev !steps)

let kaplan_meier_greenwood observations =
  if Array.length observations = 0 then
    invalid_arg "Stats.kaplan_meier_greenwood: empty input";
  let obs = Array.copy observations in
  Array.sort (fun (a, _) (b, _) -> Float.compare a b) obs;
  let n = Array.length obs in
  let at_risk = ref n in
  let survival = ref 1.0 in
  let greenwood_sum = Kahan.create () in
  let steps = ref [] in
  let i = ref 0 in
  while !i < n do
    let t, _ = obs.(!i) in
    let events = ref 0 and total = ref 0 in
    let j = ref !i in
    while !j < n && fst obs.(!j) = t do
      incr total;
      if snd obs.(!j) then incr events;
      incr j
    done;
    if !events > 0 then begin
      let d = float_of_int !events and r = float_of_int !at_risk in
      survival := !survival *. (1.0 -. (d /. r));
      if r -. d > 0.0 then Kahan.add greenwood_sum (d /. (r *. (r -. d)));
      let variance = !survival *. !survival *. Kahan.total greenwood_sum in
      steps := (t, !survival, sqrt (Float.max 0.0 variance)) :: !steps
    end;
    at_risk := !at_risk - !total;
    i := !j
  done;
  Array.of_list (List.rev !steps)

let linear_regression ~xs ~ys =
  let n = Array.length xs in
  if n <> Array.length ys then
    invalid_arg "Stats.linear_regression: length mismatch";
  if n < 2 then invalid_arg "Stats.linear_regression: need >= 2 points";
  let mx = mean xs and my = mean ys in
  let sxy = Kahan.create () and sxx = Kahan.create () in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx in
    Kahan.add sxy (dx *. (ys.(i) -. my));
    Kahan.add sxx (dx *. dx)
  done;
  let sxx = Kahan.total sxx in
  if Tol.exactly sxx 0.0 then
    invalid_arg "Stats.linear_regression: zero-variance abscissae";
  let slope = Kahan.total sxy /. sxx in
  (slope, my -. (slope *. mx))

let paired_check name predicted actual =
  let n = Array.length predicted in
  if n <> Array.length actual then
    invalid_arg (Printf.sprintf "Stats.%s: length mismatch" name);
  if n = 0 then invalid_arg (Printf.sprintf "Stats.%s: empty input" name);
  n

let rmse ~predicted ~actual =
  let n = paired_check "rmse" predicted actual in
  let acc = Kahan.create () in
  for i = 0 to n - 1 do
    let d = predicted.(i) -. actual.(i) in
    Kahan.add acc (d *. d)
  done;
  sqrt (Kahan.total acc /. float_of_int n)

let max_abs_error ~predicted ~actual =
  let n = paired_check "max_abs_error" predicted actual in
  let m = ref 0.0 in
  for i = 0 to n - 1 do
    m := Float.max !m (Float.abs (predicted.(i) -. actual.(i)))
  done;
  !m
