exception Bad_grid of string

type kind =
  | Linear
  | Pchip of float array (* knot derivatives d.(i) *)

type t = { xs : float array; ys : float array; kind : kind }

let validate ~xs ~ys =
  let n = Array.length xs in
  if n <> Array.length ys then
    raise (Bad_grid "Interp: xs and ys lengths differ");
  if n < 2 then raise (Bad_grid "Interp: need at least 2 points");
  for i = 0 to n - 2 do
    if not (xs.(i) < xs.(i + 1)) then
      raise
        (Bad_grid
           (Printf.sprintf "Interp: grid not strictly increasing at index %d"
              i))
  done

let linear ~xs ~ys =
  validate ~xs ~ys;
  { xs = Array.copy xs; ys = Array.copy ys; kind = Linear }

(* Fritsch–Carlson (1980) monotone cubic Hermite tangents. *)
let pchip_tangents xs ys =
  let n = Array.length xs in
  let h = Array.init (n - 1) (fun i -> xs.(i + 1) -. xs.(i)) in
  let delta = Array.init (n - 1) (fun i -> (ys.(i + 1) -. ys.(i)) /. h.(i)) in
  let d = Array.make n 0.0 in
  if n = 2 then begin
    d.(0) <- delta.(0);
    d.(1) <- delta.(0)
  end
  else begin
    (* Interior tangents: weighted harmonic mean when slopes agree in sign. *)
    for i = 1 to n - 2 do
      if delta.(i - 1) *. delta.(i) <= 0.0 then d.(i) <- 0.0
      else begin
        let w1 = (2.0 *. h.(i)) +. h.(i - 1) in
        let w2 = h.(i) +. (2.0 *. h.(i - 1)) in
        d.(i) <- (w1 +. w2) /. ((w1 /. delta.(i - 1)) +. (w2 /. delta.(i)))
      end
    done;
    (* One-sided endpoint tangents (shape-preserving form). *)
    let endpoint h0 h1 d0 d1 =
      let t = ((((2.0 *. h0) +. h1) *. d0) -. (h0 *. d1)) /. (h0 +. h1) in
      if t *. d0 <= 0.0 then 0.0
      else if d0 *. d1 <= 0.0 && Float.abs t > 3.0 *. Float.abs d0 then
        3.0 *. d0
      else t
    in
    d.(0) <- endpoint h.(0) h.(1) delta.(0) delta.(1);
    d.(n - 1) <- endpoint h.(n - 2) h.(n - 3) delta.(n - 2) delta.(n - 3)
  end;
  d

let pchip ~xs ~ys =
  validate ~xs ~ys;
  let xs = Array.copy xs and ys = Array.copy ys in
  { xs; ys; kind = Pchip (pchip_tangents xs ys) }

(* Index of the segment containing x: largest i with xs.(i) <= x, clamped to
   [0, n-2] so that boundary segments extrapolate. *)
let segment t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then 0
  else if x >= t.xs.(n - 1) then n - 2
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let eval t x =
  let i = segment t x in
  let x0 = t.xs.(i) and x1 = t.xs.(i + 1) in
  let y0 = t.ys.(i) and y1 = t.ys.(i + 1) in
  match t.kind with
  | Linear -> y0 +. ((y1 -. y0) *. (x -. x0) /. (x1 -. x0))
  | Pchip d ->
      let h = x1 -. x0 in
      let s = (x -. x0) /. h in
      let s2 = s *. s in
      let s3 = s2 *. s in
      let h00 = (2.0 *. s3) -. (3.0 *. s2) +. 1.0 in
      let h10 = s3 -. (2.0 *. s2) +. s in
      let h01 = (-2.0 *. s3) +. (3.0 *. s2) in
      let h11 = s3 -. s2 in
      (h00 *. y0) +. (h10 *. h *. d.(i)) +. (h01 *. y1) +. (h11 *. h *. d.(i + 1))

let derivative t x =
  let i = segment t x in
  let x0 = t.xs.(i) and x1 = t.xs.(i + 1) in
  let y0 = t.ys.(i) and y1 = t.ys.(i + 1) in
  match t.kind with
  | Linear -> (y1 -. y0) /. (x1 -. x0)
  | Pchip d ->
      let h = x1 -. x0 in
      let s = (x -. x0) /. h in
      let s2 = s *. s in
      let dh00 = ((6.0 *. s2) -. (6.0 *. s)) /. h in
      let dh10 = ((3.0 *. s2) -. (4.0 *. s) +. 1.0) /. h in
      let dh01 = ((-6.0 *. s2) +. (6.0 *. s)) /. h in
      let dh11 = ((3.0 *. s2) -. (2.0 *. s)) /. h in
      (dh00 *. y0) +. (dh10 *. h *. d.(i)) +. (dh01 *. y1)
      +. (dh11 *. h *. d.(i + 1))

let domain t = (t.xs.(0), t.xs.(Array.length t.xs - 1))

let knots t = Array.init (Array.length t.xs) (fun i -> (t.xs.(i), t.ys.(i)))
