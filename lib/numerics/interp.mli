(** Interpolation on sampled grids.

    Trace-estimated survival curves arrive as a monotone sequence of sample
    points; the scheduler needs a differentiable life function through them.
    The monotone cubic (Fritsch–Carlson PCHIP) interpolant preserves
    monotonicity — essential because a life function must decrease — while
    providing a continuous derivative for the recurrence engine. *)

type t
(** An interpolant over a fixed strictly-increasing knot grid. *)

exception Bad_grid of string
(** Raised by constructors on unsorted, duplicated or too-short grids. *)

val linear : xs:float array -> ys:float array -> t
(** [linear ~xs ~ys] is the piecewise-linear interpolant through the points
    [(xs.(i), ys.(i))]. Requires [xs] strictly increasing and arrays of equal
    length >= 2.
    @raise Bad_grid otherwise. *)

val pchip : xs:float array -> ys:float array -> t
(** [pchip ~xs ~ys] is the Fritsch–Carlson monotone piecewise-cubic Hermite
    interpolant: C¹, and monotone on every interval where the data are.
    Requirements as for {!linear}.
    @raise Bad_grid otherwise. *)

val eval : t -> float -> float
(** [eval ip x] evaluates the interpolant. Outside the grid, the boundary
    segment is extrapolated (linearly for {!linear}; by the boundary cubic
    for {!pchip}); callers who need clamping should compose with
    {!val-domain}. *)

val derivative : t -> float -> float
(** [derivative ip x] is the exact derivative of the interpolant at [x]
    (piecewise-constant for {!linear}). *)

val domain : t -> float * float
(** [domain ip] is the [(min, max)] of the knot grid. *)

val knots : t -> (float * float) array
(** [knots ip] returns a copy of the defining points. *)
