let inv_e = exp (-1.0)

(* Halley iteration for w·e^w = x from a branch-appropriate seed. Guards:
   stop once the residual is negligible, and never divide by a vanishing
   or non-finite denominator (which occurs exactly at the w = -1 branch
   point, where the seed is already the answer). *)
let halley_w x w0 =
  let w = ref w0 in
  (try
     for _ = 1 to 60 do
       let ew = exp !w in
       let f = (!w *. ew) -. x in
       if Float.abs f <= 1e-17 *. Float.max 1.0 (Float.abs x) then raise Exit;
       let w1 = !w +. 1.0 in
       if not (Tol.exactly w1 0.0) then begin
         let denom = (ew *. w1) -. ((!w +. 2.0) *. f /. (2.0 *. w1)) in
         if (not (Tol.exactly denom 0.0)) && Float.is_finite denom then
           w := !w -. (f /. denom)
       end
     done
   with Exit -> ());
  !w

let lambert_w0 x =
  if x < -.inv_e -. 1e-12 then
    invalid_arg "Special.lambert_w0: argument below -1/e";
  let x = Float.max x (-.inv_e) in
  if Tol.exactly x 0.0 then 0.0
  else begin
    (* Seed by region: the branch-point series is accurate only near
       -1/e; log(1+x) is a serviceable mid-range seed (exact at x = 0,
       within ~25% up to x ~ 10); the log-log asymptotic needs log x
       comfortably positive or it explodes (log log x -> -inf at x = 1). *)
    let seed =
      if x < -0.25 then begin
        let p = sqrt (2.0 *. ((Float.exp 1.0 *. x) +. 1.0)) in
        -1.0 +. p -. (p *. p /. 3.0) +. (11.0 /. 72.0 *. p *. p *. p)
      end
      else if x < 10.0 then Float.log1p x
      else begin
        let l1 = log x in
        let l2 = log l1 in
        l1 -. l2 +. (l2 /. l1)
      end
    in
    halley_w x seed
  end

let lambert_wm1 x =
  if x < -.inv_e -. 1e-12 || x >= 0.0 then
    invalid_arg "Special.lambert_wm1: argument must lie in [-1/e, 0)";
  let x = Float.max x (-.inv_e) in
  let seed =
    if x > -.inv_e /. 2.0 then begin
      (* asymptotic seed: w ~ ln(-x) - ln(-ln(-x)) as x -> 0^- *)
      let l1 = log (-.x) in
      let l2 = log (-.l1) in
      l1 -. l2
    end
    else begin
      let p = -.sqrt (2.0 *. ((Float.exp 1.0 *. x) +. 1.0)) in
      -1.0 +. p -. (p *. p /. 3.0)
    end
  in
  halley_w x seed

let log2 x = log x /. log 2.0

let logsumexp a =
  let n = Array.length a in
  if n = 0 then neg_infinity
  else begin
    let m = Array.fold_left Float.max neg_infinity a in
    if m = neg_infinity then neg_infinity
    else begin
      let acc = Kahan.create () in
      Array.iter (fun v -> Kahan.add acc (exp (v -. m))) a;
      m +. log (Kahan.total acc)
    end
  end

let smooth_clamp01 x =
  if Float.is_nan x then 0.0 else Float.min 1.0 (Float.max 0.0 x)
