let simpson f ~lo ~hi ~n =
  if n < 2 then invalid_arg "Quadrature.simpson: n must be >= 2";
  let n = if n mod 2 = 0 then n else n + 1 in
  let h = (hi -. lo) /. float_of_int n in
  let acc = Kahan.create () in
  Kahan.add acc (f lo);
  Kahan.add acc (f hi);
  for i = 1 to n - 1 do
    let x = lo +. (float_of_int i *. h) in
    let w = if i mod 2 = 1 then 4.0 else 2.0 in
    Kahan.add acc (w *. f x)
  done;
  Kahan.total acc *. h /. 3.0

let adaptive_simpson ?(tol = 1e-10) ?(max_depth = 50) f ~lo ~hi =
  let simpson3 a fa b fb fm = (b -. a) /. 6.0 *. (fa +. (4.0 *. fm) +. fb) in
  let rec go a fa b fb m fm whole tol depth =
    let lm = 0.5 *. (a +. m) and rm = 0.5 *. (m +. b) in
    let flm = f lm and frm = f rm in
    let left = simpson3 a fa m fm flm in
    let right = simpson3 m fm b fb frm in
    let delta = left +. right -. whole in
    if depth <= 0 || Float.abs delta <= 15.0 *. tol then
      left +. right +. (delta /. 15.0)
    else
      go a fa m fm lm flm left (tol /. 2.0) (depth - 1)
      +. go m fm b fb rm frm right (tol /. 2.0) (depth - 1)
  in
  let fa = f lo and fb = f hi in
  let m = 0.5 *. (lo +. hi) in
  let fm = f m in
  go lo fa hi fb m fm (simpson3 lo fa hi fb fm) tol max_depth

(* Abscissae/weights on [-1, 1] for orders 2..8 (symmetric halves listed). *)
let gl_nodes = function
  | 2 -> [| (0.5773502691896257, 1.0) |]
  | 3 -> [| (0.0, 0.8888888888888888); (0.7745966692414834, 0.5555555555555556) |]
  | 4 ->
      [|
        (0.3399810435848563, 0.6521451548625461);
        (0.8611363115940526, 0.3478548451374538);
      |]
  | 5 ->
      [|
        (0.0, 0.5688888888888889);
        (0.5384693101056831, 0.47862867049936647);
        (0.906179845938664, 0.23692688505618908);
      |]
  | 6 ->
      [|
        (0.2386191860831969, 0.46791393457269104);
        (0.6612093864662645, 0.3607615730481386);
        (0.932469514203152, 0.17132449237917036);
      |]
  | 7 ->
      [|
        (0.0, 0.4179591836734694);
        (0.4058451513773972, 0.3818300505051189);
        (0.7415311855993945, 0.27970539148927664);
        (0.9491079123427585, 0.1294849661688697);
      |]
  | 8 ->
      [|
        (0.1834346424956498, 0.362683783378362);
        (0.525532409916329, 0.31370664587788727);
        (0.7966664774136267, 0.22238103445337448);
        (0.9602898564975363, 0.10122853629037626);
      |]
  | n ->
      invalid_arg
        (Printf.sprintf "Quadrature.gauss_legendre: unsupported order %d" n)

let gauss_legendre f ~lo ~hi ~order =
  let nodes = gl_nodes order in
  let half = 0.5 *. (hi -. lo) in
  let mid = 0.5 *. (hi +. lo) in
  let acc = Kahan.create () in
  Array.iter
    (fun (x, w) ->
      if Tol.exactly x 0.0 then Kahan.add acc (w *. f mid)
      else begin
        Kahan.add acc (w *. f (mid +. (half *. x)));
        Kahan.add acc (w *. f (mid -. (half *. x)))
      end)
    nodes;
  half *. Kahan.total acc

let integrate_to_infinity ?(tol = 1e-12) f ~lo =
  let acc = Kahan.create () in
  let a = ref lo in
  let width = ref (Float.max 1.0 (Float.abs lo)) in
  let continue = ref true in
  let panels = ref 0 in
  while !continue && !panels < 200 do
    incr panels;
    let b = !a +. !width in
    let piece = adaptive_simpson ~tol:(tol /. 10.0) f ~lo:!a ~hi:b in
    Kahan.add acc piece;
    let total = Float.abs (Kahan.total acc) in
    if Float.abs piece <= tol *. Float.max 1.0 total then continue := false
    else begin
      a := b;
      width := !width *. 2.0
    end
  done;
  Kahan.total acc
