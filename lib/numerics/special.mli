(** Special functions needed by the closed-form schedules.

    The optimal equal-period equation of the geometric-decreasing scenario
    (paper §4.2), [t + a^{-t}/ln a = c + 1/ln a], is solved exactly with the
    Lambert W function; the trace-fitting code uses the numerically-stable
    log/exp helpers. *)

val lambert_w0 : float -> float
(** [lambert_w0 x] is the principal branch W₀ of the Lambert W function —
    the solution [w >= -1] of [w · e^w = x] — for [x >= -1/e], computed by
    Halley iteration to near machine precision.
    @raise Invalid_argument for [x < -1/e]. *)

val lambert_wm1 : float -> float
(** [lambert_wm1 x] is the secondary branch W₋₁ — the solution [w <= -1] of
    [w · e^w = x] — defined for [-1/e <= x < 0].
    @raise Invalid_argument outside that range. *)

val log2 : float -> float
(** Base-2 logarithm. *)

val logsumexp : float array -> float
(** [logsumexp a] is [log (Σ exp a.(i))] computed without overflow, used by
    the Weibull/exponential maximum-likelihood fitters.
    Returns [neg_infinity] on the empty array. *)

val smooth_clamp01 : float -> float
(** [smooth_clamp01 x] clamps [x] into [[0, 1]]; NaN maps to [0.]. Survival
    estimates assembled from noisy traces pass through this before being
    promoted to life functions. *)
