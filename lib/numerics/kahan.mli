(** Compensated (Kahan–Babuška–Neumaier) floating-point summation.

    Expected-work sums over schedules with hundreds of periods mix terms of
    very different magnitudes; naive summation loses the low-order bits that
    the optimality comparisons in the benchmark tables depend on. *)

type t
(** A running compensated sum. *)

val create : unit -> t
(** [create ()] is a fresh accumulator holding [0.0]. *)

val add : t -> float -> unit
(** [add acc x] folds [x] into the running sum using Neumaier's variant,
    which remains correct when the addend exceeds the running total. *)

val total : t -> float
(** [total acc] is the compensated value of everything added so far. *)

val sum : float array -> float
(** [sum a] is the compensated sum of all elements of [a]. *)

val sum_seq : float Seq.t -> float
(** [sum_seq s] is the compensated sum of the (finite) sequence [s]. *)

val sum_list : float list -> float
(** [sum_list l] is the compensated sum of all elements of [l]. *)

val sum_by : ('a -> float) -> 'a array -> float
(** [sum_by f a] is the compensated sum of [f a.(i)] over all [i]. *)

val cumulative : float array -> float array
(** [cumulative a] is the array of prefix sums [s] with
    [s.(i) = a.(0) + ... + a.(i)], each computed with compensation.
    Returns [[||]] on empty input. *)
