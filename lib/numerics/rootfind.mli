(** One-dimensional root finding.

    The guideline recurrence (paper eq. 3.6) solves
    [p (T_{k-1} + t_k) = rhs] once per period, and the [t_0] bounds
    (Theorems 3.2/3.3) are implicit inequalities solved as fixed points, so
    robust bracketed solvers are on the hot path of every scheduler in this
    repository. All solvers are derivative-free except [newton]. *)

type outcome = {
  root : float;  (** Final abscissa. *)
  residual : float;  (** [f root] at termination. *)
  iterations : int;  (** Function-evaluation driven iteration count. *)
}

exception No_bracket of string
(** Raised when a bracketing precondition [f lo * f hi <= 0] fails or when
    bracket expansion exhausts its budget. *)

exception Did_not_converge of string
(** Raised when an iterative method exceeds its iteration budget without
    meeting its tolerance. *)

val default_tol : float
(** Absolute abscissa tolerance used when [?tol] is omitted (1e-12). *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float ->
  outcome
(** [bisect f ~lo ~hi] finds a sign change of [f] in [[lo, hi]] by interval
    halving. Requires [f lo] and [f hi] of opposite sign (or one of them
    zero). Guaranteed to converge; ~60 iterations suffice for [tol] 1e-12
    on unit-scale intervals.
    @raise No_bracket if the endpoint signs agree. *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float ->
  outcome
(** [brent f ~lo ~hi] is Brent's method: inverse quadratic interpolation and
    secant steps guarded by bisection, converging superlinearly on smooth
    [f] while retaining the bisection guarantee.
    @raise No_bracket if the endpoint signs agree. *)

val secant :
  ?tol:float -> ?max_iter:int -> (float -> float) -> x0:float -> x1:float ->
  outcome
(** [secant f ~x0 ~x1] iterates unbracketed secant steps from the two seeds.
    Fast on locally-linear residuals but may diverge; prefer [brent] when a
    bracket is available.
    @raise Did_not_converge on iteration exhaustion or a flat step. *)

val newton :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> df:(float -> float) ->
  float -> outcome
(** [newton ~f ~df x0] is damped Newton iteration: full steps, halved up to
    20 times whenever the residual fails to decrease.
    @raise Did_not_converge on iteration exhaustion or a vanishing
    derivative. *)

val expand_bracket :
  ?grow:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float ->
  float * float
(** [expand_bracket f ~lo ~hi] grows the interval geometrically (factor
    [grow], default 1.6) alternating on both sides until [f] changes sign,
    returning the bracketing pair.
    @raise No_bracket if the budget (default 60 doublings) is exhausted. *)

val find_sign_change :
  (float -> float) -> lo:float -> hi:float -> steps:int ->
  (float * float) option
(** [find_sign_change f ~lo ~hi ~steps] scans the interval left-to-right on a
    uniform grid of [steps] cells and returns the first cell on which [f]
    changes sign, or [None]. Useful to seed [brent] when [f] has several
    roots and the leftmost is wanted. *)
