(** Descriptive statistics, confidence intervals and survival estimation.

    The Monte-Carlo validation experiments (E8) need means with confidence
    intervals; the trace pipeline (E10) needs empirical survival curves —
    both the plain ECDF complement and the Kaplan–Meier estimator for
    right-censored absence intervals — plus simple regression for fitting
    life-function families to log-survival data. *)

type summary = {
  n : int;
  mean : float;
  variance : float;  (** Unbiased (n-1) sample variance; 0 when n < 2. *)
  stddev : float;
  min : float;
  max : float;
}

val summarize : float array -> summary
(** [summarize a] computes all fields in one compensated pass.
    @raise Invalid_argument on the empty array. *)

val mean : float array -> float
(** Compensated arithmetic mean. @raise Invalid_argument on empty input. *)

val confidence_interval_95 : float array -> float * float
(** [confidence_interval_95 a] is the normal-approximation 95% CI
    [(mean - 1.96·se, mean + 1.96·se)] for the population mean.
    @raise Invalid_argument when [n < 2]. *)

val standard_error : float array -> float
(** [standard_error a] is [stddev / sqrt n].
    @raise Invalid_argument when [n < 2]. *)

val quantile : float array -> q:float -> float
(** [quantile a ~q] is the linearly-interpolated empirical [q]-quantile
    (type-7). Requires [0 <= q <= 1]; sorts a copy.
    @raise Invalid_argument on empty input or [q] out of range. *)

val histogram :
  float array -> bins:int -> lo:float -> hi:float -> int array
(** [histogram a ~bins ~lo ~hi] counts samples per uniform bin over
    [[lo, hi]]; out-of-range samples are clamped to the edge bins.
    Requires [bins >= 1] and [lo < hi]. *)

val ecdf_survival : float array -> (float * float) array
(** [ecdf_survival samples] is the right-continuous empirical survival
    function of the (uncensored) samples: sorted distinct abscissae paired
    with [Pr(X > x)]. @raise Invalid_argument on empty input. *)

val kaplan_meier : (float * bool) array -> (float * float) array
(** [kaplan_meier observations] is the Kaplan–Meier product-limit survival
    estimate from [(duration, observed)] pairs where [observed = false]
    marks right-censoring (e.g. a trace that ended while the owner was still
    absent). Returns event-time/survival steps.
    @raise Invalid_argument on empty input. *)

val kaplan_meier_greenwood :
  (float * bool) array -> (float * float * float) array
(** [kaplan_meier_greenwood observations] augments {!kaplan_meier} with
    Greenwood's variance estimate: each step is
    [(t, S(t), stddev(S(t)))] where
    [Var(S) = S² · Σ_{events ≤ t} d_i / (n_i·(n_i − d_i))] ([d_i] deaths
    among [n_i] at risk). Steps where the at-risk set is exhausted get the
    last finite variance. @raise Invalid_argument on empty input. *)

val linear_regression : xs:float array -> ys:float array -> float * float
(** [linear_regression ~xs ~ys] fits [y = slope·x + intercept] by ordinary
    least squares, returning [(slope, intercept)].
    @raise Invalid_argument on mismatched lengths, [n < 2], or
    zero-variance [xs]. *)

val rmse : predicted:float array -> actual:float array -> float
(** Root-mean-square error between two equal-length vectors.
    @raise Invalid_argument on mismatch or empty input. *)

val max_abs_error : predicted:float array -> actual:float array -> float
(** L∞ error between two equal-length vectors.
    @raise Invalid_argument on mismatch or empty input. *)
