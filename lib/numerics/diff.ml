let base_step x h =
  match h with
  | Some h -> h
  | None ->
      (* cbrt(eps) balances truncation vs roundoff for central differences *)
      6e-6 *. Float.max 1.0 (Float.abs x)

let central ?h f x =
  let h = base_step x h in
  (f (x +. h) -. f (x -. h)) /. (2.0 *. h)

let forward ?h f x =
  let h = base_step x h in
  (f (x +. h) -. f x) /. h

let backward ?h f x =
  let h = base_step x h in
  (f x -. f (x -. h)) /. h

let richardson ?h ?(levels = 4) f x =
  if levels < 1 then invalid_arg "Diff.richardson: levels must be >= 1";
  let h0 =
    match h with Some h -> h | None -> 1e-3 *. Float.max 1.0 (Float.abs x)
  in
  (* Romberg-style tableau over central differences with halving steps. *)
  let tab = Array.make levels 0.0 in
  for i = 0 to levels - 1 do
    let hi = h0 /. Float.pow 2.0 (float_of_int i) in
    let d = (f (x +. hi) -. f (x -. hi)) /. (2.0 *. hi) in
    tab.(i) <- d
  done;
  let tab = ref (Array.to_list tab) in
  let pow4 = ref 4.0 in
  while List.length !tab > 1 do
    let rec combine = function
      | a :: (b :: _ as rest) ->
          (((!pow4 *. b) -. a) /. (!pow4 -. 1.0)) :: combine rest
      | [ _ ] | [] -> []
    in
    tab := combine !tab;
    pow4 := !pow4 *. 4.0
  done;
  match !tab with [ d ] -> d | _ -> assert false

let second ?h f x =
  let h =
    match h with
    | Some h -> h
    | None -> 1e-4 *. Float.max 1.0 (Float.abs x)
  in
  (f (x +. h) -. (2.0 *. f x) +. f (x -. h)) /. (h *. h)

let derivative_on_support ~lo ~hi f x =
  if x < lo || x > hi then
    invalid_arg "Diff.derivative_on_support: point outside support";
  let scale = Float.max 1.0 (Float.abs x) in
  let h = 6e-6 *. scale in
  let room_left = x -. lo in
  let room_right = hi -. x in
  if room_left >= h && room_right >= h then central ~h f x
  else if room_right >= 2.0 *. h || room_left < room_right then
    let h = Float.min h (Float.max 1e-12 (room_right /. 2.0)) in
    forward ~h f x
  else
    let h = Float.min h (Float.max 1e-12 (room_left /. 2.0)) in
    backward ~h f x
