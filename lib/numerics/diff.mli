(** Numerical differentiation.

    Trace-estimated life functions come without an analytic derivative, yet
    the recurrence (paper eq. 3.6) and every [t_0] bound consume [p'].
    These finite-difference schemes supply the fallback derivative; the
    Richardson variants give near machine-precision accuracy on smooth
    functions at the cost of extra evaluations. *)

val central : ?h:float -> (float -> float) -> float -> float
(** [central f x] is the central difference
    [(f (x+h) - f (x-h)) / 2h] with a step scaled to [x] (default base step
    [~cbrt eps * max 1 |x|]), the O(h²) workhorse. *)

val forward : ?h:float -> (float -> float) -> float -> float
(** [forward f x] is the one-sided O(h) difference, for points on the left
    edge of a function's support where [x - h] would be invalid. *)

val backward : ?h:float -> (float -> float) -> float -> float
(** [backward f x] is the one-sided O(h) difference from the left, for the
    right edge of a support interval. *)

val richardson : ?h:float -> ?levels:int -> (float -> float) -> float -> float
(** [richardson f x] extrapolates central differences at step sizes
    [h, h/2, h/4, ...] through [levels] (default 4) Richardson levels,
    achieving O(h^(2·levels)) accuracy on smooth functions. *)

val second : ?h:float -> (float -> float) -> float -> float
(** [second f x] is the standard O(h²) three-point second derivative,
    used by the shape classifier to test concavity/convexity. *)

val derivative_on_support :
  lo:float -> hi:float -> (float -> float) -> float -> float
(** [derivative_on_support ~lo ~hi f x] picks central, forward or backward
    differencing so that no evaluation leaves [[lo, hi]]; [hi] may be
    [infinity]. Steps shrink automatically near the edges. *)
