type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

(* splitmix64: used only to expand a user seed into the 256-bit xoshiro
   state, per the xoshiro authors' seeding recommendation. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let st = ref seed in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ step. *)
let next_int64 g =
  let open Int64 in
  let result = add (rotl (add g.s0 g.s3) 23) g.s0 in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g =
  let seed = next_int64 g in
  let st = ref (Int64.logxor seed 0xA5A5A5A5A5A5A5A5L) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let split_n g n =
  if n < 0 then invalid_arg "Prng.split_n: n must be >= 0";
  if n = 0 then [||]
  else begin
    (* Explicit loop: the children must be drawn from [g] in index
       order, and Array.init's evaluation order is unspecified. *)
    let a = Array.make n g in
    for i = 0 to n - 1 do
      a.(i) <- split g
    done;
    a
  end

let float g =
  (* Top 53 bits give a uniform dyadic rational in [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 g) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float_range g ~lo ~hi =
  if not (lo < hi) then
    invalid_arg "Prng.float_range: requires lo < hi";
  lo +. ((hi -. lo) *. float g)

let int g ~bound =
  if bound <= 0 then invalid_arg "Prng.int: requires bound > 0";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let limit = Int64.sub Int64.max_int (Int64.rem Int64.max_int b) in
  let rec draw () =
    let r = Int64.shift_right_logical (next_int64 g) 1 in
    if r >= limit then draw () else Int64.to_int (Int64.rem r b)
  in
  draw ()

let bool g = Int64.compare (next_int64 g) 0L < 0

let exponential g ~rate =
  if rate <= 0.0 then invalid_arg "Prng.exponential: requires rate > 0";
  let u = float g in
  (* log1p (-u) is exact near u = 0 where -log (1 - u) cancels. *)
  -.Float.log1p (-.u) /. rate

let normal g ~mu ~sigma =
  if sigma < 0.0 then invalid_arg "Prng.normal: requires sigma >= 0";
  let rec polar () =
    let u = float_range g ~lo:(-1.0) ~hi:1.0 in
    let v = float_range g ~lo:(-1.0) ~hi:1.0 in
    let s = (u *. u) +. (v *. v) in
    if s >= 1.0 || Tol.exactly s 0.0 then polar ()
    else u *. sqrt (-2.0 *. log s /. s)
  in
  mu +. (sigma *. polar ())

let weibull g ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then
    invalid_arg "Prng.weibull: requires shape > 0 and scale > 0";
  let u = float g in
  scale *. Float.pow (-.Float.log1p (-.u)) (1.0 /. shape)

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
