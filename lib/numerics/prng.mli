(** Deterministic pseudo-random number generation.

    Every stochastic component in this repository (reclaim-time sampling,
    trace synthesis, Monte-Carlo trials, property-test fixtures) takes an
    explicit generator state so experiments are exactly reproducible from a
    seed. The core generator is xoshiro256++, seeded through splitmix64 as
    its authors recommend; [split] derives statistically independent child
    streams for parallel or per-workstation use. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] builds a generator whose 256-bit state is expanded from
    [seed] with splitmix64. Any seed, including [0L], is valid. *)

val copy : t -> t
(** [copy g] is an independent generator starting from [g]'s current state. *)

val split : t -> t
(** [split g] advances [g] and returns a child generator seeded from fresh
    output of [g]; child and parent streams do not overlap in practice. *)

val split_n : t -> int -> t array
(** [split_n g n] is [n] child generators drawn from [g] by {!split} in
    index order — the chunk-stream grid of the parallel execution layer:
    chunk [k] of a partitioned computation always owns stream [k],
    whatever domain runs it, so results cannot depend on the domain
    count. Requires [n >= 0]. *)

val next_int64 : t -> int64
(** [next_int64 g] is the next raw 64-bit output. *)

val float : t -> float
(** [float g] is uniform on [[0, 1)] with 53 random bits of mantissa. *)

val float_range : t -> lo:float -> hi:float -> float
(** [float_range g ~lo ~hi] is uniform on [[lo, hi)]. Requires [lo < hi]. *)

val int : t -> bound:int -> int
(** [int g ~bound] is uniform on [{0, ..., bound-1}] without modulo bias.
    Requires [bound > 0]. *)

val bool : t -> bool
(** [bool g] is a fair coin flip. *)

val exponential : t -> rate:float -> float
(** [exponential g ~rate] samples Exp(rate) by inversion.
    Requires [rate > 0]. *)

val normal : t -> mu:float -> sigma:float -> float
(** [normal g ~mu ~sigma] samples a Gaussian by Marsaglia's polar method.
    Requires [sigma >= 0]. *)

val weibull : t -> shape:float -> scale:float -> float
(** [weibull g ~shape ~scale] samples Weibull(shape, scale) by inversion.
    Requires [shape > 0] and [scale > 0]. *)

val shuffle : t -> 'a array -> unit
(** [shuffle g a] permutes [a] uniformly in place (Fisher–Yates). *)
