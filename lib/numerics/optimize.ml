type point = { x : float; fx : float }

let invphi = (sqrt 5.0 -. 1.0) /. 2.0 (* 1/phi *)

let golden_section_min ?(tol = 1e-10) ?(max_iter = 200) f ~lo ~hi =
  if not (lo <= hi) then
    invalid_arg "Optimize.golden_section: requires lo <= hi";
  let a = ref lo and b = ref hi in
  let c = ref (!b -. (invphi *. (!b -. !a))) in
  let d = ref (!a +. (invphi *. (!b -. !a))) in
  let fc = ref (f !c) and fd = ref (f !d) in
  let iter = ref 0 in
  while !b -. !a > tol && !iter < max_iter do
    incr iter;
    if !fc < !fd then begin
      b := !d;
      d := !c;
      fd := !fc;
      c := !b -. (invphi *. (!b -. !a));
      fc := f !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      d := !a +. (invphi *. (!b -. !a));
      fd := f !d
    end
  done;
  let x = 0.5 *. (!a +. !b) in
  { x; fx = f x }

let golden_section_max ?tol ?max_iter f ~lo ~hi =
  let p = golden_section_min ?tol ?max_iter (fun x -> -.f x) ~lo ~hi in
  { p with fx = -.p.fx }

(* Brent's parabolic-interpolation minimiser (Numerical Recipes form). *)
let brent_min ?(tol = 1e-10) ?(max_iter = 200) f ~lo ~hi =
  if not (lo <= hi) then invalid_arg "Optimize.brent: requires lo <= hi";
  let cgold = 0.3819660 in
  let zeps = 1e-18 in
  let a = ref lo and b = ref hi in
  let x = ref (lo +. (cgold *. (hi -. lo))) in
  let w = ref !x and v = ref !x in
  let fx = ref (f !x) in
  let fw = ref !fx and fv = ref !fx in
  let d = ref 0.0 and e = ref 0.0 in
  let iter = ref 0 in
  let finished = ref false in
  while (not !finished) && !iter < max_iter do
    incr iter;
    let xm = 0.5 *. (!a +. !b) in
    let tol1 = (tol *. Float.abs !x) +. zeps in
    let tol2 = 2.0 *. tol1 in
    if Float.abs (!x -. xm) <= tol2 -. (0.5 *. (!b -. !a)) then finished := true
    else begin
      let use_golden = ref true in
      if Float.abs !e > tol1 then begin
        let r = (!x -. !w) *. (!fx -. !fv) in
        let q = (!x -. !v) *. (!fx -. !fw) in
        let p = ((!x -. !v) *. q) -. ((!x -. !w) *. r) in
        let q = 2.0 *. (q -. r) in
        let p = if q > 0.0 then -.p else p in
        let q = Float.abs q in
        let etemp = !e in
        e := !d;
        if
          Float.abs p < Float.abs (0.5 *. q *. etemp)
          && p > q *. (!a -. !x)
          && p < q *. (!b -. !x)
        then begin
          d := p /. q;
          let u = !x +. !d in
          if u -. !a < tol2 || !b -. u < tol2 then
            d := if xm >= !x then tol1 else -.tol1;
          use_golden := false
        end
      end;
      if !use_golden then begin
        e := (if !x >= xm then !a -. !x else !b -. !x);
        d := cgold *. !e
      end;
      let u =
        if Float.abs !d >= tol1 then !x +. !d
        else !x +. (if !d >= 0.0 then tol1 else -.tol1)
      in
      let fu = f u in
      if fu <= !fx then begin
        if u >= !x then a := !x else b := !x;
        v := !w;
        fv := !fw;
        w := !x;
        fw := !fx;
        x := u;
        fx := fu
      end
      else begin
        if u < !x then a := u else b := u;
        if fu <= !fw || !w = !x then begin
          v := !w;
          fv := !fw;
          w := u;
          fw := fu
        end
        else if fu <= !fv || !v = !x || !v = !w then begin
          v := u;
          fv := fu
        end
      end
    end
  done;
  { x = !x; fx = !fx }

let brent_max ?tol ?max_iter f ~lo ~hi =
  let p = brent_min ?tol ?max_iter (fun x -> -.f x) ~lo ~hi in
  { p with fx = -.p.fx }

let grid_max f ~lo ~hi ~steps =
  if steps < 1 then invalid_arg "Optimize.grid_max: steps must be >= 1";
  if not (lo <= hi) then invalid_arg "Optimize.grid_max: requires lo <= hi";
  let h = (hi -. lo) /. float_of_int steps in
  let best = ref { x = lo; fx = f lo } in
  for i = 1 to steps do
    let x = lo +. (float_of_int i *. h) in
    let fx = f x in
    if fx > !best.fx then best := { x; fx }
  done;
  !best

let grid_then_refine ?tol f ~lo ~hi ~steps =
  let coarse = grid_max f ~lo ~hi ~steps in
  if lo = hi then coarse
  else begin
    let h = (hi -. lo) /. float_of_int steps in
    let a = Float.max lo (coarse.x -. h) in
    let b = Float.min hi (coarse.x +. h) in
    let refined = brent_max ?tol f ~lo:a ~hi:b in
    if refined.fx >= coarse.fx then refined else coarse
  end

let coordinate_ascent ?(tol = 1e-10) ?(max_sweeps = 200) ~f ~lower ~upper init =
  let n = Array.length init in
  if Array.length lower <> n || Array.length upper <> n then
    invalid_arg "Optimize.coordinate_ascent: dimension mismatch";
  Array.iteri
    (fun i lo ->
      if not (lo <= upper.(i)) then
        invalid_arg "Optimize.coordinate_ascent: empty box")
    lower;
  let x = Array.copy init in
  Array.iteri
    (fun i v -> x.(i) <- Float.min upper.(i) (Float.max lower.(i) v))
    init;
  let best = ref (f x) in
  let sweep = ref 0 in
  let improved = ref true in
  while !improved && !sweep < max_sweeps do
    incr sweep;
    improved := false;
    for i = 0 to n - 1 do
      let objective v =
        let saved = x.(i) in
        x.(i) <- v;
        let r = f x in
        x.(i) <- saved;
        r
      in
      if upper.(i) > lower.(i) then begin
        let p = grid_then_refine ~tol objective ~lo:lower.(i) ~hi:upper.(i) ~steps:48 in
        if p.fx > !best +. tol then begin
          x.(i) <- p.x;
          best := p.fx;
          improved := true
        end
      end
    done
  done;
  (x, !best)

let maximize_unbounded_right ?(tol = 1e-10) f ~lo ~init_width =
  if init_width <= 0.0 then
    invalid_arg "Optimize.maximize_unbounded_right: init_width must be > 0";
  let hi = ref (lo +. init_width) in
  let steps = 64 in
  let coarse = ref (grid_max f ~lo ~hi:!hi ~steps) in
  (* Keep widening while the winner sits near the right edge of the grid. *)
  let guard = ref 0 in
  while !coarse.x > !hi -. ((!hi -. lo) /. float_of_int steps) && !guard < 60 do
    incr guard;
    hi := lo +. (2.0 *. (!hi -. lo));
    coarse := grid_max f ~lo ~hi:!hi ~steps
  done;
  grid_then_refine ~tol f ~lo ~hi:!hi ~steps
