type outcome = { root : float; residual : float; iterations : int }

exception No_bracket of string
exception Did_not_converge of string

let default_tol = 1e-12

let same_sign a b = (a > 0.0 && b > 0.0) || (a < 0.0 && b < 0.0)

let bisect ?(tol = default_tol) ?(max_iter = 200) f ~lo ~hi =
  let flo = f lo and fhi = f hi in
  if Tol.exactly flo 0.0 then { root = lo; residual = 0.0; iterations = 0 }
  else if Tol.exactly fhi 0.0 then { root = hi; residual = 0.0; iterations = 0 }
  else if same_sign flo fhi then
    raise
      (No_bracket
         (Printf.sprintf "Rootfind.bisect: f(%g)=%g and f(%g)=%g agree in sign"
            lo flo hi fhi))
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let iter = ref 0 in
    while !hi -. !lo > tol && !iter < max_iter do
      incr iter;
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      if Tol.exactly fmid 0.0 then begin
        lo := mid;
        hi := mid
      end
      else if same_sign !flo fmid then begin
        lo := mid;
        flo := fmid
      end
      else hi := mid
    done;
    let root = 0.5 *. (!lo +. !hi) in
    { root; residual = f root; iterations = !iter }
  end

(* Brent's method, following the classic Brent (1973) organization:
   [b] is the current best root estimate, [a] the previous iterate, and
   [c] chosen so that f(b) and f(c) have opposite signs. *)
let brent ?(tol = default_tol) ?(max_iter = 200) f ~lo ~hi =
  let fa = f lo and fb = f hi in
  if Tol.exactly fa 0.0 then { root = lo; residual = 0.0; iterations = 0 }
  else if Tol.exactly fb 0.0 then { root = hi; residual = 0.0; iterations = 0 }
  else if same_sign fa fb then
    raise
      (No_bracket
         (Printf.sprintf "Rootfind.brent: f(%g)=%g and f(%g)=%g agree in sign"
            lo fa hi fb))
  else begin
    let a = ref lo and b = ref hi and fa = ref fa and fb = ref fb in
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in
      a := !b;
      b := t;
      let t = !fa in
      fa := !fb;
      fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) in
    let mflag = ref true in
    let iter = ref 0 in
    let result = ref None in
    while !result = None && !iter < max_iter do
      incr iter;
      if Tol.exactly !fb 0.0 || Float.abs (!b -. !a) < tol then
        result := Some { root = !b; residual = !fb; iterations = !iter }
      else begin
        let s =
          if !fa <> !fc && !fb <> !fc then
            (* inverse quadratic interpolation *)
            (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
            +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
            +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
          else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
        in
        let lo_guard = ((3.0 *. !a) +. !b) /. 4.0 in
        let cond1 =
          not
            ((s > Float.min lo_guard !b && s < Float.max lo_guard !b)
            || (s < Float.min lo_guard !b && s > Float.max lo_guard !b))
        in
        let cond2 = !mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.0 in
        let cond3 =
          (not !mflag) && Float.abs (s -. !b) >= Float.abs (!c -. !d) /. 2.0
        in
        let cond4 = !mflag && Float.abs (!b -. !c) < tol in
        let cond5 = (not !mflag) && Float.abs (!c -. !d) < tol in
        let s =
          if cond1 || cond2 || cond3 || cond4 || cond5 then begin
            mflag := true;
            0.5 *. (!a +. !b)
          end
          else begin
            mflag := false;
            s
          end
        in
        let fs = f s in
        d := !c;
        c := !b;
        fc := !fb;
        if same_sign !fa fs then begin
          a := s;
          fa := fs
        end
        else begin
          b := s;
          fb := fs
        end;
        if Float.abs !fa < Float.abs !fb then begin
          let t = !a in
          a := !b;
          b := t;
          let t = !fa in
          fa := !fb;
          fb := t
        end
      end
    done;
    match !result with
    | Some r -> r
    | None -> { root = !b; residual = !fb; iterations = !iter }
  end

let secant ?(tol = default_tol) ?(max_iter = 100) f ~x0 ~x1 =
  let x0 = ref x0 and x1 = ref x1 in
  let f0 = ref (f !x0) and f1 = ref (f !x1) in
  let iter = ref 0 in
  let result = ref None in
  while !result = None && !iter < max_iter do
    incr iter;
    if Tol.exactly !f1 0.0 || Float.abs (!x1 -. !x0) < tol then
      result := Some { root = !x1; residual = !f1; iterations = !iter }
    else begin
      let denom = !f1 -. !f0 in
      if Tol.exactly denom 0.0 then
        raise (Did_not_converge "Rootfind.secant: flat step (f1 = f0)");
      let x2 = !x1 -. (!f1 *. (!x1 -. !x0) /. denom) in
      x0 := !x1;
      f0 := !f1;
      x1 := x2;
      f1 := f x2
    end
  done;
  match !result with
  | Some r -> r
  | None ->
      raise
        (Did_not_converge
           (Printf.sprintf "Rootfind.secant: %d iterations, |f|=%g" !iter
              (Float.abs !f1)))

let newton ?(tol = default_tol) ?(max_iter = 100) ~f ~df x0 =
  let x = ref x0 in
  let fx = ref (f !x) in
  let iter = ref 0 in
  let result = ref None in
  while !result = None && !iter < max_iter do
    incr iter;
    if Float.abs !fx < tol then
      result := Some { root = !x; residual = !fx; iterations = !iter }
    else begin
      let d = df !x in
      if Tol.exactly d 0.0 then
        raise (Did_not_converge "Rootfind.newton: derivative vanished");
      let step = ref (!fx /. d) in
      (* Damping: halve the step until the residual magnitude decreases. *)
      let attempts = ref 0 in
      let accepted = ref false in
      while (not !accepted) && !attempts < 20 do
        incr attempts;
        let cand = !x -. !step in
        let fc = f cand in
        if Float.abs fc < Float.abs !fx then begin
          x := cand;
          fx := fc;
          accepted := true
        end
        else step := !step /. 2.0
      done;
      if not !accepted then begin
        (* Accept the smallest damped step anyway to escape plateaus. *)
        x := !x -. !step;
        fx := f !x
      end
    end
  done;
  match !result with
  | Some r -> r
  | None ->
      raise
        (Did_not_converge
           (Printf.sprintf "Rootfind.newton: %d iterations, |f|=%g" !iter
              (Float.abs !fx)))

let expand_bracket ?(grow = 1.6) ?(max_iter = 60) f ~lo ~hi =
  if not (lo < hi) then
    invalid_arg "Rootfind.expand_bracket: requires lo < hi";
  let lo = ref lo and hi = ref hi in
  let flo = ref (f !lo) and fhi = ref (f !hi) in
  let iter = ref 0 in
  while same_sign !flo !fhi && !iter < max_iter do
    incr iter;
    let width = !hi -. !lo in
    if Float.abs !flo < Float.abs !fhi then begin
      lo := !lo -. (grow *. width);
      flo := f !lo
    end
    else begin
      (* Geometric bracket expansion, not a running sum: each step is a
         fresh O(width) displacement, so compensation buys nothing. *)
      (hi := !hi +. (grow *. width)) [@lint.allow "R2"];
      fhi := f !hi
    end
  done;
  if same_sign !flo !fhi then
    raise
      (No_bracket
         (Printf.sprintf "Rootfind.expand_bracket: no sign change in [%g, %g]"
            !lo !hi))
  else (!lo, !hi)

let find_sign_change f ~lo ~hi ~steps =
  if steps <= 0 then invalid_arg "Rootfind.find_sign_change: steps must be > 0";
  let h = (hi -. lo) /. float_of_int steps in
  let rec scan i x fx =
    if i > steps then None
    else
      let x' = lo +. (float_of_int i *. h) in
      let fx' = f x' in
      if Tol.exactly fx 0.0 then Some (x, x)
      else if not (same_sign fx fx') then Some (x, x')
      else scan (i + 1) x' fx'
  in
  scan 1 lo (f lo)
