type t = { mutable sum : float; mutable comp : float }

let create () = { sum = 0.0; comp = 0.0 }

(* Neumaier's improvement on Kahan: swap roles when the addend dominates,
   so cancellation is captured on whichever operand is smaller. *)
let add acc x =
  let t = acc.sum +. x in
  if Float.abs acc.sum >= Float.abs x then
    acc.comp <- acc.comp +. ((acc.sum -. t) +. x)
  else acc.comp <- acc.comp +. ((x -. t) +. acc.sum);
  acc.sum <- t

let total acc = acc.sum +. acc.comp

let sum a =
  let acc = create () in
  Array.iter (add acc) a;
  total acc

let sum_seq s =
  let acc = create () in
  Seq.iter (add acc) s;
  total acc

let sum_list l =
  let acc = create () in
  List.iter (add acc) l;
  total acc

let sum_by f a =
  let acc = create () in
  Array.iter (fun x -> add acc (f x)) a;
  total acc

let cumulative a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n 0.0 in
    let acc = create () in
    for i = 0 to n - 1 do
      add acc a.(i);
      out.(i) <- total acc
    done;
    out
  end
