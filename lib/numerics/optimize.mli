(** One-dimensional and coordinate-wise numerical optimisation.

    Two scheduler components depend on this module: the guideline scheduler
    searches for the best initial period [t_0] inside the Theorem 3.2/3.3
    bracket (a smooth unimodal 1-D problem), and the independent ground-truth
    optimiser maximises expected work over whole period vectors by cyclic
    coordinate ascent with golden-section line searches. *)

type point = { x : float; fx : float }
(** An abscissa paired with its objective value. *)

val golden_section_max :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float ->
  point
(** [golden_section_max f ~lo ~hi] maximises [f] on [[lo, hi]] assuming
    unimodality, by golden-section search. Linear convergence, no derivative
    needed, immune to flat spots. Requires [lo <= hi]. *)

val golden_section_min :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float ->
  point
(** Minimising counterpart of {!golden_section_max}. *)

val brent_max :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float ->
  point
(** [brent_max f ~lo ~hi] maximises [f] on [[lo, hi]] by Brent's parabolic
    interpolation guarded by golden-section steps; superlinear on smooth
    unimodal objectives. Requires [lo <= hi]. *)

val grid_max :
  (float -> float) -> lo:float -> hi:float -> steps:int -> point
(** [grid_max f ~lo ~hi ~steps] evaluates [f] on a uniform grid of
    [steps + 1] points and returns the best sample. Use to localise the mode
    of a multimodal objective before refining with {!brent_max}.
    Requires [steps >= 1] and [lo <= hi]. *)

val grid_then_refine :
  ?tol:float -> (float -> float) -> lo:float -> hi:float -> steps:int -> point
(** [grid_then_refine f ~lo ~hi ~steps] runs {!grid_max} and then refines
    with {!brent_max} on the grid cell pair around the winner. This is the
    default [t_0] search: the Theorem 3.2/3.3 bracket is narrow enough that a
    modest grid pins the global mode. *)

val coordinate_ascent :
  ?tol:float -> ?max_sweeps:int ->
  f:(float array -> float) ->
  lower:float array -> upper:float array ->
  float array ->
  float array * float
(** [coordinate_ascent ~f ~lower ~upper init] maximises [f] over the box
    [[lower, upper]] by cyclic coordinate ascent: each sweep line-searches
    every coordinate with {!grid_then_refine} (48-cell grid, robust to
    multimodal slices) while the others stay fixed, until a
    sweep improves the objective by less than [tol] (default 1e-10) or
    [max_sweeps] (default 200) elapse. Returns the best point and value.
    Deterministic; suitable for the smooth concave-ish expected-work
    landscapes of this paper, and validated in tests against closed-form
    optima. Array lengths must agree and the box must be nonempty. *)

val maximize_unbounded_right :
  ?tol:float -> (float -> float) -> lo:float -> init_width:float -> point
(** [maximize_unbounded_right f ~lo ~init_width] maximises a function on
    [[lo, ∞)] that eventually decreases, by geometrically growing the right
    edge from [lo + init_width] until the best grid sample stops moving
    rightward, then refining. Used for [t_0] searches on life functions with
    unbounded support (e.g. the geometric-decreasing scenario). *)
