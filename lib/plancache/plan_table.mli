(** Ahead-of-time plan tables: precomputed optimal start periods over a
    [(c, family-parameter)] grid, with a certified error bound
    (DESIGN §15).

    A table stores the planner's optimal [t0] at every node of a
    rectangular grid. A query bilinearly interpolates [t0] — the product
    of two monotone 1D linear interpolants, so the interpolated value
    stays inside its cell's node range — and regenerates the schedule
    from that period with {!Guideline.plan_with_t0}. The schedule is a
    genuine admissible schedule (the recurrence ran); only its
    optimality is approximate, and the stored {!error_bound} certifies by
    how much: at bake time every interior cell's center — the point of
    maximal interpolation error for a smooth [t0] field — is compared
    against a direct {!Guideline.plan} call, and the worst relative
    expected-work shortfall (doubled for safety, floored at 1e-9) is
    recorded in the table file. *)

type t

val bake :
  ?t0_steps:int ->
  kind:string ->
  ?degree:int ->
  c_lo:float ->
  c_hi:float ->
  c_steps:int ->
  param_lo:float ->
  param_hi:float ->
  param_steps:int ->
  unit ->
  (t, string) result
(** Build a table for family [kind] (["uniform"], ["polynomial"] with
    [~degree], ["geo-dec"], ["geo-inc"]) over [c_steps × param_steps]
    grid nodes spanning the closed ranges, planning each node directly
    and certifying the interpolation error at interior cell centers.
    Both step counts must be ≥ 2. Runs one direct plan per node plus two
    per interior cell, so cost scales with grid area — this is the
    offline path behind [csctl table bake]. *)

val kind : t -> string
val degree : t -> int option
val error_bound : t -> float
(** Certified relative expected-work shortfall of a table-interpolated
    plan against a direct plan, valid anywhere in the covered range. *)

val nodes : t -> int
(** Number of grid nodes ([c_steps × param_steps]). *)

val c_range : t -> float * float
val param_range : t -> float * float

val covers : t -> Plan_key.scenario -> bool
(** Whether the scenario's family matches the table (same kind, same
    fixed degree) and its [(c, param)] falls inside the grid ranges. *)

val t0_of : t -> Plan_key.scenario -> float option
(** Bilinearly interpolated start period, when {!covers}. *)

val plan : t -> Plan_key.scenario -> Guideline.result option
(** Full table-tier answer: interpolate [t0], regenerate the schedule.
    [None] when the table does not cover the scenario. *)

val to_json : t -> Jsonx.t
val of_json : Jsonx.t -> (t, string) result

val save : string -> t -> (unit, string) result
(** Write the table as a single-line JSON file. *)

val load : string -> (t, string) result
