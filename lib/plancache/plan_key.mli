(** Canonical scenario keys for the plan cache (DESIGN §15).

    The planner is pure in [(life function, c)]: everything else a caller
    can vary — [jobs], the domain pool, observability — cannot change the
    answer (DESIGN §10), so none of it appears in the key. A scenario is
    described declaratively (family constructor + parameters) rather than
    by the opaque {!Life_function.t} closure, which lets two callers that
    built "the same" life function independently share one cache line.

    Canonicalization folds aliases onto one representative before the key
    is formed: [exponential ~rate] is stored as geometric-decreasing with
    [a = exp rate], and [polynomial ~d:1] as uniform. Float parameters are
    quantized to the [Tol]-aligned [%.9g] grid, so [L = 100.] and
    [L = 100.0000001] map to the same key and never double-store. *)

type family =
  | Uniform of { lifespan : float }
  | Polynomial of { d : int; lifespan : float }
  | Geo_dec of { a : float }
  | Geo_inc of { lifespan : float }
  | Weibull of { w_shape : float; w_scale : float }
  | Power_law of { d : float }

type scenario = { family : family; c : float }

val exponential : rate:float -> family
(** [exponential ~rate] canonicalizes onto [Geo_dec { a = exp rate }]
    ([p(t) = e^{-rate·t} = a^{-t}]). *)

val canonical : family -> family
(** Fold aliases onto their representative: [Polynomial] with [d = 1]
    becomes [Uniform]; other constructors are returned unchanged. *)

val quantize : float -> float
(** Snap a float to the key grid: the nearest value representable with 9
    significant decimal digits ([%.9g], aligned with [Tol.default_eps]
    = 1e-9 relative). Non-finite values are returned unchanged. *)

val key : scenario -> string
(** Canonical cache key: family tag + quantized parameters in a fixed
    order + quantized [c]. Deliberately excludes [jobs] and every other
    execution knob (see DESIGN §15). *)

val life_function : family -> Life_function.t
(** Materialize the validated {!Life_function.t} for a family. Raises
    [Invalid_argument] (from the {!Families} constructors) on parameters
    outside a family's domain. *)

val family_name : family -> string
(** Short family tag used by plan tables: ["uniform"], ["polynomial"],
    ["geo-dec"], ["geo-inc"], ["weibull"], ["power-law"]. *)

val table_param : family -> float option
(** The scalar axis a plan table grids over: the lifespan for bounded
    families, [a] for geometric-decreasing. [None] for the families
    tables do not cover (Weibull is two-parameter; power-law is
    inadmissible per Corollary 3.2). *)

val with_table_param : family -> float -> family
(** Replace the {!table_param} axis value, keeping fixed parameters
    (e.g. a polynomial's degree). Raises [Invalid_argument] for families
    where {!table_param} is [None]. *)

val pp_scenario : Format.formatter -> scenario -> unit
