(** Three-tier plan cache: the fastest correct answer for a planning
    query (DESIGN §15).

    Tier order on a query, fastest first:

    + {b LRU hit} — the canonical quantized key ({!Plan_key.key}) is
      already resident: return the stored result. Bit-identity invariant:
      a hit returns {e exactly} the value the original miss computed
      (physically the same {!Guideline.result}), whichever tier computed
      it — cram-gated via [cstrace diff].
    + {b Closed form} — families where the paper gives the exact optimal
      period skip the interval search entirely: geometric-decreasing uses
      the Lambert-W [t*] of {!Closed_forms.geo_dec_t_optimal} (the
      recurrence's fixed point, hence exact) and pays only one schedule
      regeneration.
    + {b Plan table} — a loaded {!Plan_table.t} covering the scenario
      answers with an interpolated [t0] within the table's certified
      error bound.
    + {b Direct} — fall through to {!Guideline.plan}.

    Misses from any tier are inserted into the LRU, so repeated queries
    always converge to tier-1 latency. All mutable state lives inside the
    explicit [t] handle — {!Guideline} itself stays pure, which is what
    lint rule R14 enforces.

    Counters [cache.hits] / [cache.misses] / [cache.evictions] (plus the
    per-tier [cache.closed_form] / [cache.table_interp]) are registered
    on the handle's {!Obs.t} and ride the existing Prometheus exposition
    ([cs_cache_hits] etc.) for free. *)

type t

type stats = { hits : int; misses : int; evictions : int; size : int }

val create : ?obs:Obs.t -> ?capacity:int -> ?closed_forms:bool -> unit -> t
(** A fresh cache. [capacity] (default 1024, must be ≥ 1) bounds resident
    entries; the least-recently-used entry is evicted on overflow.
    [closed_forms] (default [true]) enables tier 2. [obs] receives the
    [cache.*] counters and instruments the underlying direct plans. *)

val add_table : t -> Plan_table.t -> unit
(** Register a baked table for tier 3. Tables are consulted in the order
    added; the first one covering a scenario answers. *)

val tables : t -> Plan_table.t list

val plan : t -> Plan_key.scenario -> Guideline.result
(** The cached plan for a scenario, via the tier order above. Serves the
    planner's default configuration ([t0_steps = 128], faithful finish) —
    callers needing non-default knobs use {!Guideline.plan} directly;
    execution knobs like [jobs] never affect the answer (DESIGN §10) and
    are excluded from the key by construction. *)

val plan_batch : t -> Plan_key.scenario list -> Guideline.result list
(** [plan_batch t scenarios] answers each scenario in input order.
    Duplicate scenarios dedup through the cache: the first occurrence
    computes (or table-interpolates), the rest are hits returning the
    identical result. Runs serially — a warm batch is microseconds per
    query, so domain fan-out would cost more than it saves; cold
    heavyweight sweeps belong on {!Guideline.plan_batch}. *)

val stats : t -> stats
(** Counter snapshot ([size] = currently resident entries). *)
