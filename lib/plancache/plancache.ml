(* LRU recency order lives in an intrusive circular doubly-linked list
   of key nodes (sentinel.next = most recent); the index maps a
   canonical key to its cached result and its list node. All of it is
   private to the explicit [t] handle: nothing in lib/sched holds cache
   state (lint rule R14). *)
type node = { n_key : string; mutable prev : node; mutable next : node }

type t = {
  capacity : int;
  obs : Obs.t;
  closed_forms : bool;
  mutable tbls : Plan_table.t list;
  index : (string, Guideline.result * node) Hashtbl.t;
  sentinel : node;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int; size : int }

let create ?(obs = Obs.disabled) ?(capacity = 1024) ?(closed_forms = true) ()
    =
  if capacity < 1 then invalid_arg "Plancache.create: capacity must be >= 1";
  let rec sentinel = { n_key = ""; prev = sentinel; next = sentinel } in
  {
    capacity;
    obs;
    closed_forms;
    tbls = [];
    index = Hashtbl.create (min capacity 64);
    sentinel;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let add_table t tbl = t.tbls <- t.tbls @ [ tbl ]
let tables t = t.tbls

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let push_front t n =
  n.prev <- t.sentinel;
  n.next <- t.sentinel.next;
  t.sentinel.next.prev <- n;
  t.sentinel.next <- n

let touch t n =
  unlink n;
  push_front t n

let evict_lru t =
  let last = t.sentinel.prev in
  if last != t.sentinel then begin
    unlink last;
    Hashtbl.remove t.index last.n_key;
    t.evictions <- t.evictions + 1;
    Obs.incr t.obs "cache.evictions"
  end

let insert t key value =
  if not (Hashtbl.mem t.index key) then begin
    if Hashtbl.length t.index >= t.capacity then evict_lru t;
    let n = { n_key = key; prev = t.sentinel; next = t.sentinel } in
    push_front t n;
    Hashtbl.replace t.index key (value, n);
    Obs.set_gauge t.obs "cache.size" (float_of_int (Hashtbl.length t.index))
  end

(* Tier 2: the paper's exact answers. Geometric-decreasing admits the
   Lambert-W closed form t* (Closed_forms.geo_dec_t_optimal), the fixed
   point of the recurrence — so regenerating from t* is the provably
   optimal schedule, not an approximation. *)
let closed_form t (scen : Plan_key.scenario) =
  if not t.closed_forms then None
  else
    match Plan_key.canonical scen.family with
    | Plan_key.Geo_dec { a } when a > 1.0 && scen.c > 0.0 ->
        let t0 = Closed_forms.geo_dec_t_optimal ~a ~c:scen.c in
        Obs.incr t.obs "cache.closed_form";
        Some
          (Guideline.plan_with_t0
             (Plan_key.life_function scen.family)
             ~c:scen.c ~t0)
    | _ -> None

(* Tier 3: first loaded table covering the scenario answers, within its
   certified error bound. *)
let table_plan t scen =
  let rec go = function
    | [] -> None
    | tbl :: rest -> (
        match Plan_table.plan tbl scen with
        | Some r ->
            Obs.incr t.obs "cache.table_interp";
            Some r
        | None -> go rest)
  in
  go t.tbls

let compute t (scen : Plan_key.scenario) =
  match closed_form t scen with
  | Some r -> r
  | None -> (
      match table_plan t scen with
      | Some r -> r
      | None ->
          Guideline.plan ~obs:t.obs
            (Plan_key.life_function scen.family)
            ~c:scen.c)

let plan t scen =
  let key = Plan_key.key scen in
  match Hashtbl.find_opt t.index key with
  | Some (value, n) ->
      t.hits <- t.hits + 1;
      Obs.incr t.obs "cache.hits";
      touch t n;
      value
  | None ->
      t.misses <- t.misses + 1;
      Obs.incr t.obs "cache.misses";
      let value = compute t scen in
      insert t key value;
      value

let plan_batch t scenarios = List.map (fun s -> plan t s) scenarios

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    size = Hashtbl.length t.index;
  }
