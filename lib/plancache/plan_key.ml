type family =
  | Uniform of { lifespan : float }
  | Polynomial of { d : int; lifespan : float }
  | Geo_dec of { a : float }
  | Geo_inc of { lifespan : float }
  | Weibull of { w_shape : float; w_scale : float }
  | Power_law of { d : float }

type scenario = { family : family; c : float }

let exponential ~rate = Geo_dec { a = exp rate }

let canonical = function
  | Polynomial { d = 1; lifespan } -> Uniform { lifespan }
  | f -> f

(* 9 significant digits matches Tol.default_eps (1e-9 relative): floats
   closer than the planner's own comparison tolerance land on the same
   grid point. %.9g round-trips exactly through float_of_string, so the
   quantized value is itself a representable key coordinate. *)
let fp x = Printf.sprintf "%.9g" x

let quantize x = if Float.is_finite x then float_of_string (fp x) else x

let key { family; c } =
  let body =
    match canonical family with
    | Uniform { lifespan } -> "u:" ^ fp lifespan
    | Polynomial { d; lifespan } -> Printf.sprintf "p:%d:%s" d (fp lifespan)
    | Geo_dec { a } -> "gd:" ^ fp a
    | Geo_inc { lifespan } -> "gi:" ^ fp lifespan
    | Weibull { w_shape; w_scale } ->
        Printf.sprintf "w:%s:%s" (fp w_shape) (fp w_scale)
    | Power_law { d } -> "pl:" ^ fp d
  in
  body ^ "|c:" ^ fp c

let life_function family =
  match canonical family with
  | Uniform { lifespan } -> Families.uniform ~lifespan
  | Polynomial { d; lifespan } -> Families.polynomial ~d ~lifespan
  | Geo_dec { a } -> Families.geometric_decreasing ~a
  | Geo_inc { lifespan } -> Families.geometric_increasing ~lifespan
  | Weibull { w_shape; w_scale } ->
      Families.weibull ~shape:w_shape ~scale:w_scale
  | Power_law { d } -> Families.power_law ~d

let family_name = function
  | Uniform _ -> "uniform"
  | Polynomial _ -> "polynomial"
  | Geo_dec _ -> "geo-dec"
  | Geo_inc _ -> "geo-inc"
  | Weibull _ -> "weibull"
  | Power_law _ -> "power-law"

let table_param f =
  match canonical f with
  | Uniform { lifespan } | Polynomial { lifespan; _ } | Geo_inc { lifespan } ->
      Some lifespan
  | Geo_dec { a } -> Some a
  | Weibull _ | Power_law _ -> None

let with_table_param f v =
  match canonical f with
  | Uniform _ -> Uniform { lifespan = v }
  | Polynomial { d; _ } -> Polynomial { d; lifespan = v }
  | Geo_inc _ -> Geo_inc { lifespan = v }
  | Geo_dec _ -> Geo_dec { a = v }
  | (Weibull _ | Power_law _) as f ->
      invalid_arg
        (Printf.sprintf "Plan_key.with_table_param: %s has no table axis"
           (family_name f))

let pp_scenario ppf { family; c } =
  let pp_family ppf f =
    match canonical f with
    | Uniform { lifespan } -> Format.fprintf ppf "uniform(L=%s)" (fp lifespan)
    | Polynomial { d; lifespan } ->
        Format.fprintf ppf "polynomial(d=%d, L=%s)" d (fp lifespan)
    | Geo_dec { a } -> Format.fprintf ppf "geo-dec(a=%s)" (fp a)
    | Geo_inc { lifespan } -> Format.fprintf ppf "geo-inc(L=%s)" (fp lifespan)
    | Weibull { w_shape; w_scale } ->
        Format.fprintf ppf "weibull(shape=%s, scale=%s)" (fp w_shape)
          (fp w_scale)
    | Power_law { d } -> Format.fprintf ppf "power-law(d=%s)" (fp d)
  in
  Format.fprintf ppf "%a @@ c=%s" pp_family family (fp c)
