type t = {
  t_kind : string;
  t_degree : int option;
  c_grid : float array; (* strictly increasing, length >= 2 *)
  param_grid : float array; (* strictly increasing, length >= 2 *)
  t0 : float array array; (* t0.(i).(j) at (param_grid.(i), c_grid.(j)) *)
  err : float;
}

let kind t = t.t_kind
let degree t = t.t_degree
let error_bound t = t.err
let nodes t = Array.length t.c_grid * Array.length t.param_grid
let c_range t = (t.c_grid.(0), t.c_grid.(Array.length t.c_grid - 1))

let param_range t =
  (t.param_grid.(0), t.param_grid.(Array.length t.param_grid - 1))

let family_of_kind ~kind ~degree ~param =
  match (kind, degree) with
  | "uniform", None -> Ok (Plan_key.Uniform { lifespan = param })
  | "polynomial", Some d -> Ok (Plan_key.Polynomial { d; lifespan = param })
  | "geo-dec", None -> Ok (Plan_key.Geo_dec { a = param })
  | "geo-inc", None -> Ok (Plan_key.Geo_inc { lifespan = param })
  | "polynomial", None -> Error "polynomial tables need a degree"
  | ("uniform" | "geo-dec" | "geo-inc"), Some _ ->
      Error (kind ^ " tables take no degree")
  | k, _ ->
      Error
        ("unsupported table family: " ^ k
       ^ " (supported: uniform, polynomial, geo-dec, geo-inc)")

let linspace lo hi n =
  Array.init n (fun i ->
      if i = n - 1 then hi
      else lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

(* Cell index of [x] in grid [g]: [Some (k, frac)] with
   [g.(k) <= x <= g.(k+1)]. Grids are tiny (tens of nodes), linear scan. *)
let locate g x =
  let n = Array.length g in
  if x < g.(0) || x > g.(n - 1) then None
  else begin
    let k = ref 0 in
    while !k < n - 2 && x > g.(!k + 1) do
      incr k
    done;
    let lo = g.(!k) and hi = g.(!k + 1) in
    let frac = if hi -. lo <= 0.0 then 0.0 else (x -. lo) /. (hi -. lo) in
    Some (!k, frac)
  end

(* Bilinear = the product of two monotone 1D linear interpolants: the
   result is a convex combination of the cell's four node values, so it
   can never leave their range (the monotonicity/bounds guarantee
   DESIGN §15 relies on). *)
let bilinear t ~param ~c =
  match (locate t.param_grid param, locate t.c_grid c) with
  | Some (i, u), Some (j, v) ->
      let g = t.t0 in
      Some
        (((1.0 -. u) *. (((1.0 -. v) *. g.(i).(j)) +. (v *. g.(i).(j + 1))))
        +. (u *. (((1.0 -. v) *. g.(i + 1).(j)) +. (v *. g.(i + 1).(j + 1)))))
  | _ -> None

let covers t (s : Plan_key.scenario) =
  let f = Plan_key.canonical s.family in
  String.equal (Plan_key.family_name f) t.t_kind
  && (match (f, t.t_degree) with
     | Plan_key.Polynomial { d; _ }, Some d' -> d = d'
     | Plan_key.Polynomial _, None | _, Some _ -> false
     | _, None -> true)
  &&
  match Plan_key.table_param f with
  | None -> false
  | Some p ->
      let clo, chi = c_range t and plo, phi = param_range t in
      s.c >= clo && s.c <= chi && p >= plo && p <= phi

let t0_of t (s : Plan_key.scenario) =
  if not (covers t s) then None
  else
    match Plan_key.table_param s.family with
    | None -> None
    | Some param -> bilinear t ~param ~c:s.c

let plan t (s : Plan_key.scenario) =
  match t0_of t s with
  | None -> None
  | Some t0 ->
      Some (Guideline.plan_with_t0 (Plan_key.life_function s.family) ~c:s.c ~t0)

let bake ?t0_steps ~kind ?degree ~c_lo ~c_hi ~c_steps ~param_lo ~param_hi
    ~param_steps () =
  if c_steps < 2 || param_steps < 2 then
    Error "table grids need at least 2 steps per axis"
  else if not (c_lo > 0.0 && c_hi > c_lo) then
    Error "need 0 < c_lo < c_hi"
  else if not (param_lo > 0.0 && param_hi > param_lo) then
    Error "need 0 < param_lo < param_hi"
  else
    match family_of_kind ~kind ~degree ~param:param_lo with
    | Error e -> Error e
    | Ok _ -> (
        let c_grid = linspace c_lo c_hi c_steps in
        let param_grid = linspace param_lo param_hi param_steps in
        let family_at param =
          match family_of_kind ~kind ~degree ~param with
          | Ok f -> f
          | Error e -> invalid_arg e
        in
        try
          let t0 =
            Array.map
              (fun param ->
                let lf = Plan_key.life_function (family_at param) in
                Array.map
                  (fun c -> (Guideline.plan ?t0_steps lf ~c).Guideline.t0)
                  c_grid)
              param_grid
          in
          let t =
            { t_kind = kind; t_degree = degree; c_grid; param_grid; t0; err = 0.0 }
          in
          (* Certification: probe every interior cell at its center — the
             worst point for bilinear error on a smooth t0 field (the
             expected-work shortfall is quadratic in the t0 error, which
             peaks mid-cell). Double the observed maximum for safety. *)
          let worst = ref 0.0 in
          for i = 0 to param_steps - 2 do
            for j = 0 to c_steps - 2 do
              let param = 0.5 *. (param_grid.(i) +. param_grid.(i + 1)) in
              let c = 0.5 *. (c_grid.(j) +. c_grid.(j + 1)) in
              let family = family_at param in
              match t0_of t { Plan_key.family; c } with
              | None -> ()
              | Some t0i ->
                  let lf = Plan_key.life_function family in
                  let direct = Guideline.plan ?t0_steps lf ~c in
                  let interp = Guideline.plan_with_t0 lf ~c ~t0:t0i in
                  let d = direct.Guideline.expected_work in
                  if d > 0.0 then begin
                    let shortfall =
                      (d -. interp.Guideline.expected_work) /. d
                    in
                    if shortfall > !worst then worst := shortfall
                  end
            done
          done;
          Ok { t with err = (2.0 *. !worst) +. 1e-9 }
        with
        | Invalid_argument e -> Error ("table bake: " ^ e)
        | Life_function.Invalid_life_function e -> Error ("table bake: " ^ e))

let json_floats a = Jsonx.List (Array.to_list (Array.map (fun x -> Jsonx.Float x) a))

let to_json t =
  Jsonx.Obj
    [
      ("schema", Jsonx.Int 1);
      ("type", Jsonx.String "cs-plan-table");
      ("family", Jsonx.String t.t_kind);
      ( "degree",
        match t.t_degree with Some d -> Jsonx.Int d | None -> Jsonx.Null );
      ("c_grid", json_floats t.c_grid);
      ("param_grid", json_floats t.param_grid);
      ( "t0",
        Jsonx.List (Array.to_list (Array.map json_floats t.t0)) );
      ("err_bound", Jsonx.Float t.err);
    ]

let floats_of_json = function
  | Jsonx.List l ->
      let rec go acc = function
        | [] -> Some (Array.of_list (List.rev acc))
        | j :: rest -> (
            match Jsonx.get_float j with
            | Some x when Float.is_finite x -> go (x :: acc) rest
            | _ -> None)
      in
      go [] l
  | _ -> None

let increasing g =
  let ok = ref (Array.length g >= 2) in
  for i = 0 to Array.length g - 2 do
    if not (g.(i) < g.(i + 1)) then ok := false
  done;
  !ok

let of_json j =
  let str k = Option.bind (Jsonx.member k j) Jsonx.get_string in
  let err m = Error ("plan table: " ^ m) in
  match str "type" with
  | Some "cs-plan-table" -> (
      match
        ( str "family",
          Option.bind (Jsonx.member "c_grid" j) floats_of_json,
          Option.bind (Jsonx.member "param_grid" j) floats_of_json,
          Option.bind
            (Option.bind (Jsonx.member "err_bound" j) Jsonx.get_float)
            (fun e -> if Float.is_finite e && e >= 0.0 then Some e else None)
        )
      with
      | Some t_kind, Some c_grid, Some param_grid, Some e -> (
          let t_degree =
            Option.bind (Jsonx.member "degree" j) Jsonx.get_int
          in
          if not (increasing c_grid && increasing param_grid) then
            err "grids must be strictly increasing with >= 2 nodes"
          else
            let rows =
              match Jsonx.member "t0" j with
              | Some (Jsonx.List l) ->
                  let rec go acc = function
                    | [] -> Some (Array.of_list (List.rev acc))
                    | r :: rest -> (
                        match floats_of_json r with
                        | Some row
                          when Array.length row = Array.length c_grid ->
                            go (row :: acc) rest
                        | _ -> None)
                  in
                  go [] l
              | _ -> None
            in
            match rows with
            | Some t0 when Array.length t0 = Array.length param_grid ->
                Ok { t_kind; t_degree; c_grid; param_grid; t0; err = e }
            | _ -> err "t0 matrix does not match the grids")
      | _ -> err "missing or malformed family/c_grid/param_grid/err_bound")
  | _ -> err "not a cs-plan-table file"

let save path t =
  match
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (Jsonx.to_string (to_json t));
        Out_channel.output_char oc '\n')
  with
  | () -> Ok ()
  | exception Sys_error e -> Error e

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | content -> (
      match Jsonx.of_string (String.trim content) with
      | Error e -> Error (path ^ ": " ^ e)
      | Ok j -> (
          match of_json j with
          | Error e -> Error (path ^ ": " ^ e)
          | Ok t -> Ok t))
