type entry = { mf_module : string; mf_effects : Lint_effect.set; mf_line : int }

let header =
  "# cslint effects manifest v1 — locked per-module ambient-effect\n\
   # signatures for lib/ (DESIGN.md §13). One line per module:\n\
   #   <Module>: <effect ...> | pure\n\
   # Regenerate after review with: cslint --deep --write-effects\n"

let parse_line lineno line =
  let line = String.trim line in
  if line = "" || (String.length line > 0 && line.[0] = '#') then Ok None
  else
    match String.index_opt line ':' with
    | None -> Error (Printf.sprintf "line %d: expected \"Module: effects\"" lineno)
    | Some i -> (
        let name = String.trim (String.sub line 0 i) in
        let rest = String.sub line (i + 1) (String.length line - i - 1) in
        if name = "" then Error (Printf.sprintf "line %d: empty module name" lineno)
        else
          match Lint_effect.set_of_string rest with
          | Ok s -> Ok (Some { mf_module = name; mf_effects = s; mf_line = lineno })
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | content ->
      let entries = ref [] in
      let err = ref None in
      let seen = Hashtbl.create 64 in
      List.iteri
        (fun i line ->
          if !err = None then
            match parse_line (i + 1) line with
            | Ok None -> ()
            | Ok (Some e) ->
                if Hashtbl.mem seen e.mf_module then
                  err :=
                    Some
                      (Printf.sprintf "line %d: duplicate entry for %s" (i + 1)
                         e.mf_module)
                else begin
                  Hashtbl.replace seen e.mf_module ();
                  entries := e :: !entries
                end
            | Error e -> err := Some e)
        (String.split_on_char '\n' content);
      (match !err with
      | Some e -> Error (Printf.sprintf "%s: %s" path e)
      | None -> Ok (List.rev !entries))

let render sigs =
  let b = Buffer.create 1024 in
  Buffer.add_string b header;
  List.sort (fun (a, _) (b, _) -> String.compare a b) sigs
  |> List.iter (fun (m, s) ->
         Buffer.add_string b
           (Printf.sprintf "%s: %s\n" m (Lint_effect.set_to_string s)));
  Buffer.contents b

let save path sigs =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (render sigs))

type drift =
  | New_effects of string * Lint_effect.set
  | Stale_effects of string * Lint_effect.set * int
  | Missing_module of string
  | Stale_module of string * int

let diff entries sigs =
  let manifest = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace manifest e.mf_module e) entries;
  let inferred = Hashtbl.create 64 in
  List.iter (fun (m, s) -> Hashtbl.replace inferred m s) sigs;
  let drifts = ref [] in
  List.iter
    (fun (m, s) ->
      match Hashtbl.find_opt manifest m with
      | None -> drifts := Missing_module m :: !drifts
      | Some e ->
          let extra = Lint_effect.diff s e.mf_effects in
          let gone = Lint_effect.diff e.mf_effects s in
          if not (Lint_effect.is_empty extra) then
            drifts := New_effects (m, extra) :: !drifts;
          if not (Lint_effect.is_empty gone) then
            drifts := Stale_effects (m, gone, e.mf_line) :: !drifts)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) sigs);
  List.iter
    (fun e ->
      if not (Hashtbl.mem inferred e.mf_module) then
        drifts := Stale_module (e.mf_module, e.mf_line) :: !drifts)
    entries;
  let key = function
    | New_effects (m, _) -> (m, 0)
    | Stale_effects (m, _, _) -> (m, 1)
    | Missing_module m -> (m, 2)
    | Stale_module (m, _) -> (m, 3)
  in
  List.sort (fun a b -> compare (key a) (key b)) !drifts
