type t = Clock | Random | Gc | Io | Domain | Global_mut | Unknown

type set = int

let all = [ Clock; Random; Gc; Io; Domain; Global_mut; Unknown ]

let bit = function
  | Clock -> 1
  | Random -> 2
  | Gc -> 4
  | Io -> 8
  | Domain -> 16
  | Global_mut -> 32
  | Unknown -> 64

let empty = 0
let singleton e = bit e
let add e s = s lor bit e
let mem e s = s land bit e <> 0
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let equal (a : set) b = a = b
let is_empty s = s = 0
let subset a b = a land lnot b = 0
let to_list s = List.filter (fun e -> mem e s) all
let of_list es = List.fold_left (fun s e -> add e s) empty es
let all_set = of_list all

let name = function
  | Clock -> "clock"
  | Random -> "random"
  | Gc -> "gc"
  | Io -> "io"
  | Domain -> "domain"
  | Global_mut -> "global-mut"
  | Unknown -> "unknown"

let of_name s = List.find_opt (fun e -> String.equal (name e) s) all

let set_to_string s =
  if is_empty s then "pure"
  else String.concat " " (List.map name (to_list s))

let set_of_string str =
  let words =
    String.split_on_char ' ' str
    |> List.filter_map (fun w ->
           let w = String.trim w in
           if w = "" then None else Some w)
  in
  match words with
  | [ "pure" ] | [] -> Ok empty
  | ws ->
      List.fold_left
        (fun acc w ->
          match acc with
          | Error _ -> acc
          | Ok s -> (
              match of_name w with
              | Some e -> Ok (add e s)
              | None -> Error (Printf.sprintf "unknown effect %S" w)))
        (Ok empty) ws
