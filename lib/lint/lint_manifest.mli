(** The [.cseffects] manifest: one line per library module locking its
    inferred ambient-effect signature, so any {e new} effect appearing
    anywhere in a module's call graph shows up as a reviewable diff
    (rule R12) instead of sliding in silently.

    Format — comments and blank lines ignored, entries sorted:
    {v
    # cslint effects manifest v1
    Guideline: domain
    Kahan: pure
    Obs_clock: clock global-mut
    v} *)

type entry = { mf_module : string; mf_effects : Lint_effect.set; mf_line : int }

val load : string -> (entry list, string) result
(** Parse a manifest; the error names the file and first offending
    line. Duplicate module entries are an error. *)

val save : string -> (string * Lint_effect.set) list -> unit
(** Write a manifest (header comment plus sorted entries). *)

val render : (string * Lint_effect.set) list -> string
(** The exact text {!save} writes — exposed for tests and [--json]. *)

type drift =
  | New_effects of string * Lint_effect.set
      (** module inferred with effects the manifest does not record *)
  | Stale_effects of string * Lint_effect.set * int
      (** manifest (at line) records effects no longer inferred *)
  | Missing_module of string  (** inferred module absent from manifest *)
  | Stale_module of string * int  (** manifest module (at line) not in tree *)

val diff : entry list -> (string * Lint_effect.set) list -> drift list
(** Compare manifest entries against inferred module signatures; sorted
    by module name. Empty means the manifest is in lock. *)
