(** SARIF 2.1.0 rendering of a lint run, paired with a validator for the
    exact subset of the grammar it emits — the same round-trip
    discipline as {!Obs_export}'s folded-stack and Prometheus
    validators, so the CI artifact is checked before it is uploaded.

    One run, one [tool.driver] (cslint) carrying the rule table, one
    [result] per finding. Columns are converted from cslint's 0-based
    to SARIF's 1-based convention. *)

val render :
  ?tool_version:string ->
  rules:Lint_rules.meta list ->
  findings:Lint_finding.t list ->
  warnings:Lint_finding.t list ->
  unit ->
  Jsonx.t
(** [findings] become [level:"error"] results, [warnings] (downgraded
    unused-suppression reports) [level:"warning"]. Rules referenced by
    a result but absent from [rules] (e.g. [E1]) are synthesized into
    the driver table so the file always validates. *)

val validate : Jsonx.t -> (int, string) result
(** Check the SARIF subset {!render} emits: [version] 2.1.0, a
    [$schema] URI, at least one run whose driver has a name and a rule
    table with unique ids, and every result carrying a declared
    [ruleId], a known [level], a non-empty [message.text] and one
    physical location with a non-empty [uri] and 1-based [startLine]/
    [startColumn]. Returns the result count. *)
