type scope = {
  file : string;
  in_lib : bool;
  in_bench : bool;
  is_prng : bool;
  in_parallel : bool;
  is_clock : bool;
  is_resource : bool;
  is_socket : bool;
  in_sched : bool;
}

type meta = { id : string; title : string; remedy : string }

let all_meta =
  [
    {
      id = "R1";
      title = "no polymorphic =, <> or compare with a float operand";
      remedy = "use Tol.equal / Tol.is_zero, or Tol.exactly when exactness is intended";
    };
    {
      id = "R2";
      title = "no naive float accumulation in lib/ or bench/";
      remedy = "use Kahan.create/add/total or Kahan.sum*";
    };
    {
      id = "R3";
      title = "no stdlib Random outside lib/numerics/prng.ml";
      remedy = "thread an explicit Prng.t seeded from the experiment config";
    };
    {
      id = "R4";
      title = "no direct printing from lib/";
      remedy = "emit through Obs sinks or return values to the caller";
    };
    {
      id = "R5";
      title = "every lib/**/*.ml has a matching .mli";
      remedy = "write the interface; unconstrained modules leak representation";
    };
    {
      id = "R6";
      title = "no Obj.magic / Obj.repr";
      remedy = "restructure the types instead of defeating them";
    };
    {
      id = "R7";
      title = "no raw Domain.spawn outside lib/parallel/";
      remedy =
        "run the work through Domain_pool, which keeps the chunk-grid \
         determinism contract auditable";
    };
    {
      id = "R8";
      title =
        "no wall-clock reads (Unix.gettimeofday, Unix.time, Sys.time) \
         outside lib/obs/obs_clock.ml";
      remedy =
        "route timing through Obs_clock, whose monotonic high-water clamp \
         keeps span durations non-negative";
    };
    {
      id = "R9";
      title =
        "no direct Gc.stat / Gc.quick_stat / Gc.counters outside \
         lib/obs/obs_resource.ml";
      remedy =
        "sample through Obs_resource, whose tick divisor keeps the cost \
         budgeted and the sampling points deterministic";
    };
    {
      id = "R10";
      title =
        "planning core (lib/sched, lib/numerics, lib/lifefn, lib/workload) \
         is effect-free apart from domain (deep)";
      remedy =
        "route instrumentation through the ?obs seam; hoist clock, random, \
         io and shared mutation out of the planning core";
    };
    {
      id = "R11";
      title =
        "closures passed to Domain_pool.run/map/map_reduce/parallel_for \
         capture no toplevel mutable state (deep)";
      remedy =
        "pass state through chunk-local arguments and merge the results on \
         the caller, as Obs_fork.scatter/gather does";
    };
    {
      id = "R12";
      title =
        "each lib module's inferred effect signature matches the committed \
         .cseffects manifest (deep)";
      remedy =
        "review the drift, then re-lock with cslint --deep --write-effects";
    };
    {
      id = "R13";
      title =
        "no socket I/O (Unix.socket, accept, bind, connect, ...) outside \
         the lib/obs transport: obs_http.ml, obs_stream.ml, obs_remote.ml, \
         obs_collect.ml";
      remedy =
        "go through Obs_http / Obs_remote / Obs_collect, whose bounded \
         loops and validated exposition keep the network surface auditable";
    };
    {
      id = "R14";
      title =
        "no toplevel mutable memo/cache state (Hashtbl, Atomic, ref) in \
         lib/sched; plan memoization lives in lib/plancache";
      remedy =
        "hold the state in an explicit Plancache.t handle and pass it \
         through call-sites; the planning core stays pure (R10) and \
         bit-reproducible";
    };
    {
      id = "M1";
      title = "no unused [@lint.allow] suppression";
      remedy =
        "delete the stale attribute, or pass --allow-unused-allows to \
         downgrade the report to a warning";
    };
  ]

(* Rules only the interprocedural pass can fire; in a shallow run an
   unmatched allow naming one of these is not stale, just out of scope. *)
let deep_rule_ids = [ "R10"; "R11"; "R12" ]

open Parsetree

(* A raw finding carries the character span of the offending node so the
   suppression pass can match it against [@lint.allow] attribute spans. *)
type raw = {
  r_rule : string;
  r_loc : Location.t;
  r_msg : string;
  r_start : int;
  r_end : int;
}

type allow_span = {
  a_rule : string;
  a_loc : Location.t;
  a_start : int;
  a_end : int;
}

let float_arith_ops = [ "+."; "-."; "*."; "/."; "~-."; "**" ]

let is_float_operand e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ }, _)
    when List.mem op float_arith_ops ->
      true
  | Pexp_constraint
      ( _,
        {
          ptyp_desc = Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []);
          _;
        } ) ->
      true
  | _ -> false

let rec longident_head = function
  | Longident.Lident s -> s
  | Longident.Ldot (l, _) -> longident_head l
  | Longident.Lapply (l, _) -> longident_head l

let deref_of_var name e =
  match e.pexp_desc with
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident "!"; _ }; _ },
        [ (_, { pexp_desc = Pexp_ident { txt = Longident.Lident v; _ }; _ }) ] )
    ->
      String.equal v name
  | _ -> false

let lib_printers =
  [
    "print_string";
    "print_endline";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
  ]

(* Rules of the [@lint.allow "R2"] payload: one string constant naming one
   or more rule ids, separated by spaces or commas. *)
let allow_payload_rules = function
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                _ );
          _;
        };
      ] ->
      let split c l = List.concat_map (String.split_on_char c) l in
      let rules =
        [ s ] |> split ' ' |> split ','
        |> List.filter_map (fun r ->
               let r = String.trim r in
               if String.length r = 0 then None else Some r)
      in
      if rules = [] then None else Some rules
  | _ -> None

let make_checker (scope : scope) =
  let findings = ref [] in
  let allows = ref [] in
  let report rule loc msg =
    findings :=
      {
        r_rule = rule;
        r_loc = loc;
        r_msg = msg;
        r_start = loc.Location.loc_start.Lexing.pos_cnum;
        r_end = loc.Location.loc_end.Lexing.pos_cnum;
      }
      :: !findings
  in
  let note_attrs attrs (loc : Location.t) =
    List.iter
      (fun (a : attribute) ->
        if String.equal a.attr_name.txt "lint.allow" then
          match allow_payload_rules a.attr_payload with
          | Some rules ->
              List.iter
                (fun r ->
                  allows :=
                    {
                      a_rule = r;
                      a_loc = a.attr_loc;
                      a_start = loc.loc_start.pos_cnum;
                      a_end = loc.loc_end.pos_cnum;
                    }
                    :: !allows)
                rules
          | None ->
              report "E1" a.attr_loc
                "malformed [@lint.allow ...] payload; expected a string of \
                 rule ids like \"R2\" or \"R1,R2\"")
      attrs
  in
  let check_ident lid loc =
    (match lid with
    | Longident.Ldot (Longident.Lident "Obj", ("magic" | "repr")) ->
        report "R6" loc
          "Obj.magic/Obj.repr defeat the type system; restructure the types"
    | _ -> ());
    (match lid with
    | Longident.Ldot (Longident.Lident "Domain", "spawn")
      when not scope.in_parallel ->
        report "R7" loc
          "raw Domain.spawn outside lib/parallel/; run the work through \
           Domain_pool so the determinism contract stays auditable"
    | _ -> ());
    (match lid with
    | Longident.Ldot
        (Longident.Lident "Unix", (("gettimeofday" | "time") as fn))
      when not scope.is_clock ->
        report "R8" loc
          (Printf.sprintf
             "Unix.%s reads the wall clock directly; route timing through \
              Obs_clock"
             fn)
    | Longident.Ldot (Longident.Lident "Sys", "time") when not scope.is_clock
      ->
        report "R8" loc
          "Sys.time reads the process clock directly; route timing through \
           Obs_clock"
    | _ -> ());
    (match lid with
    | Longident.Ldot
        ( Longident.Lident "Unix",
          (( "socket" | "socketpair" | "accept" | "bind" | "listen"
           | "connect" | "setsockopt" | "getsockname" | "getpeername"
           | "send" | "recv" | "sendto" | "recvfrom" ) as fn) )
      when not scope.is_socket ->
        report "R13" loc
          (Printf.sprintf
             "Unix.%s opens a network surface outside the lib/obs \
              transport modules; go through Obs_http / Obs_remote / \
              Obs_collect so the socket code stays in one auditable place"
             fn)
    | _ -> ());
    (match lid with
    | Longident.Ldot
        (Longident.Lident "Gc", (("stat" | "quick_stat" | "counters") as fn))
      when not scope.is_resource ->
        report "R9" loc
          (Printf.sprintf
             "Gc.%s samples the runtime directly; go through Obs_resource, \
              which budgets the cost and keeps sampling points deterministic"
             fn)
    | _ -> ());
    (if (not scope.is_prng) && String.equal (longident_head lid) "Random" then
       report "R3" loc
         "stdlib Random breaks reproducibility; thread an explicit Prng.t");
    if scope.in_lib then
      match lid with
      | Longident.Lident p when List.mem p lib_printers ->
          report "R4" loc
            (Printf.sprintf
               "%s prints directly from lib/; emit through Obs sinks or \
                return values"
               p)
      | Longident.Ldot (Longident.Lident ("Printf" | "Format"), "printf") ->
          report "R4" loc
            "printf prints directly from lib/; emit through Obs sinks or \
             return values"
      | _ -> ()
  in
  let check_expr (e : expression) =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident txt loc
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = fn; _ }; _ },
          ((_ :: _ :: _ | [ _ ]) as args) ) -> (
        let poly_cmp =
          match fn with
          | Longident.Lident (("=" | "<>" | "compare") as s) -> Some s
          | Longident.Ldot
              (Longident.Lident "Stdlib", (("=" | "<>" | "compare") as s)) ->
              Some s
          | _ -> None
        in
        (match (poly_cmp, args) with
        | Some op, [ (_, a); (_, b) ]
          when is_float_operand a || is_float_operand b ->
            report "R1" e.pexp_loc
              (Printf.sprintf
                 "polymorphic %s with a float operand; use Tol.equal, \
                  Tol.is_zero or Tol.exactly"
                 op)
        | _ -> ());
        match (fn, args) with
        | ( Longident.Ldot (Longident.Lident ("List" | "Array" | "Seq"), "fold_left"),
            (_, { pexp_desc = Pexp_ident { txt = Longident.Lident "+."; _ }; _ })
            :: _ )
          when scope.in_lib || scope.in_bench ->
            report "R2" e.pexp_loc
              "naive fold_left (+.) accumulation; use Kahan.sum / \
               Kahan.sum_list / Kahan.sum_by"
        | ( Longident.Lident ":=",
            [
              (_, { pexp_desc = Pexp_ident { txt = Longident.Lident v; _ }; _ });
              ( _,
                {
                  pexp_desc =
                    Pexp_apply
                      ( {
                          pexp_desc =
                            Pexp_ident { txt = Longident.Lident "+."; _ };
                          _;
                        },
                        [ (_, lhs); (_, rhs) ] );
                  _;
                } );
            ] )
          when (scope.in_lib || scope.in_bench)
               && (deref_of_var v lhs || deref_of_var v rhs) ->
            report "R2" e.pexp_loc
              (Printf.sprintf
                 "running float accumulation into %s via := !%s +. ...; use \
                  Kahan.create/add/total"
                 v v)
        | _ -> ())
    | _ -> ()
  in
  (* R14: a structure-level binding in lib/sched whose right-hand side
     allocates a Hashtbl, an Atomic or a ref outside any function body is
     module-lifetime mutable state — memoization smuggled into the pure
     planning core. The scan descends only through constructors that
     evaluate at module init (let/sequence/tuple/record/construct/if/
     apply arguments...); anything else — in particular function and lazy
     bodies, whose allocations are per-call — is skipped, so the local
     scratch tables the planners build inside calls stay legal. *)
  let rec r14_scan_static e =
    let alloc =
      match e.pexp_desc with
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _ :: _) -> (
          match txt with
          | Longident.Ldot
              (Longident.Lident "Hashtbl", (("create" | "of_seq") as fn)) ->
              Some ("Hashtbl." ^ fn)
          | Longident.Ldot (Longident.Lident "Atomic", "make") ->
              Some "Atomic.make"
          | Longident.Lident "ref" -> Some "ref"
          | _ -> None)
      | _ -> None
    in
    (match alloc with
    | Some what ->
        report "R14" e.pexp_loc
          (Printf.sprintf
             "toplevel %s allocates module-lifetime mutable state in \
              lib/sched; plan memoization belongs in lib/plancache \
              (Plancache.create), passed explicitly"
             what)
    | None -> ());
    match e.pexp_desc with
    | Pexp_apply (_, args) -> List.iter (fun (_, a) -> r14_scan_static a) args
    | Pexp_let (_, vbs, body) ->
        List.iter (fun vb -> r14_scan_static vb.pvb_expr) vbs;
        r14_scan_static body
    | Pexp_sequence (a, b) ->
        r14_scan_static a;
        r14_scan_static b
    | Pexp_tuple es | Pexp_array es -> List.iter r14_scan_static es
    | Pexp_record (fields, base) ->
        List.iter (fun (_, v) -> r14_scan_static v) fields;
        Option.iter r14_scan_static base
    | Pexp_construct (_, arg) | Pexp_variant (_, arg) ->
        Option.iter r14_scan_static arg
    | Pexp_constraint (inner, _) | Pexp_open (_, inner) ->
        r14_scan_static inner
    | Pexp_ifthenelse (cond, then_, else_) ->
        r14_scan_static cond;
        r14_scan_static then_;
        Option.iter r14_scan_static else_
    | _ -> ()
  in
  let r14_check_structure str =
    if scope.in_sched then
      List.iter
        (fun si ->
          match si.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter (fun vb -> r14_scan_static vb.pvb_expr) vbs
          | _ -> ())
        str
  in
  let default = Ast_iterator.default_iterator in
  let iter =
    {
      default with
      structure =
        (fun it str ->
          (* Runs for the compilation unit and for each nested [struct]
             — module-lifetime state is module-lifetime wherever the
             module sits. *)
          r14_check_structure str;
          default.structure it str);
      expr =
        (fun it e ->
          note_attrs e.pexp_attributes e.pexp_loc;
          check_expr e;
          default.expr it e);
      value_binding =
        (fun it vb ->
          note_attrs vb.pvb_attributes vb.pvb_loc;
          default.value_binding it vb);
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_attribute a ->
              (* Floating [@@@lint.allow "..."] suppresses for the whole
                 compilation unit. *)
              note_attrs [ a ]
                {
                  si.pstr_loc with
                  loc_start = { si.pstr_loc.loc_start with pos_cnum = 0 };
                  loc_end = { si.pstr_loc.loc_end with pos_cnum = max_int };
                }
          | _ -> ());
          default.structure_item it si);
      module_binding =
        (fun it mb ->
          note_attrs mb.pmb_attributes mb.pmb_loc;
          default.module_binding it mb);
      module_expr =
        (fun it me ->
          (match me.pmod_desc with
          | Pmod_ident { txt; loc } ->
              if (not scope.is_prng) && String.equal (longident_head txt) "Random"
              then
                report "R3" loc
                  "stdlib Random breaks reproducibility; thread an explicit \
                   Prng.t"
          | _ -> ());
          default.module_expr it me);
      (* Interface-side checks: the same R3 fence applies to aliases
         ([module S = Random]) and opens written in a .mli, and attributes
         on declarations still carry [@lint.allow] spans. *)
      module_type =
        (fun it mt ->
          (match mt.pmty_desc with
          | Pmty_alias { txt; loc }
            when (not scope.is_prng)
                 && String.equal (longident_head txt) "Random" ->
              report "R3" loc
                "stdlib Random breaks reproducibility; thread an explicit \
                 Prng.t"
          | _ -> ());
          default.module_type it mt);
      open_description =
        (fun it od ->
          (if
             (not scope.is_prng)
             && String.equal (longident_head od.popen_expr.txt) "Random"
           then
             report "R3" od.popen_expr.loc
               "stdlib Random breaks reproducibility; thread an explicit \
                Prng.t");
          default.open_description it od);
      module_declaration =
        (fun it md ->
          note_attrs md.pmd_attributes md.pmd_loc;
          default.module_declaration it md);
      value_description =
        (fun it vd ->
          note_attrs vd.pval_attributes vd.pval_loc;
          default.value_description it vd);
      signature_item =
        (fun it si ->
          (match si.psig_desc with
          | Psig_attribute a ->
              (* Floating [@@@lint.allow "..."] in a .mli suppresses for
                 the whole interface. *)
              note_attrs [ a ]
                {
                  si.psig_loc with
                  loc_start = { si.psig_loc.loc_start with pos_cnum = 0 };
                  loc_end = { si.psig_loc.loc_end with pos_cnum = max_int };
                }
          | _ -> ());
          default.signature_item it si);
    }
  in
  (findings, allows, iter)

let check_structure (scope : scope) (str : structure) :
    raw list * allow_span list =
  let findings, allows, iter = make_checker scope in
  iter.structure iter str;
  (!findings, !allows)

let check_signature (scope : scope) (sg : signature) :
    raw list * allow_span list =
  let findings, allows, iter = make_checker scope in
  iter.signature iter sg;
  (!findings, !allows)
