type entry = { b_rule : string; b_file : string; b_line : int }

let parse_line line =
  let line = String.trim line in
  if line = "" || String.length line > 0 && line.[0] = '#' then Ok None
  else
    match String.split_on_char ' ' line with
    | [ rule; loc ] -> (
        match String.rindex_opt loc ':' with
        | Some i -> (
            let file = String.sub loc 0 i in
            let ln = String.sub loc (i + 1) (String.length loc - i - 1) in
            match int_of_string_opt ln with
            | Some b_line when b_line >= 1 ->
                Ok (Some { b_rule = rule; b_file = file; b_line })
            | _ -> Error line)
        | None -> Error line)
    | _ -> Error line

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | content ->
      let entries = ref [] in
      let bad = ref None in
      String.split_on_char '\n' content
      |> List.iter (fun l ->
             match parse_line l with
             | Ok (Some e) -> entries := e :: !entries
             | Ok None -> ()
             | Error l -> if !bad = None then bad := Some l);
      (match !bad with
      | Some l -> Error (Printf.sprintf "%s: malformed baseline line %S" path l)
      | None -> Ok (List.rev !entries))

let apply entries findings =
  let remaining = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let k = (e.b_rule, e.b_file, e.b_line) in
      let n = Option.value (Hashtbl.find_opt remaining k) ~default:0 in
      Hashtbl.replace remaining k (n + 1))
    entries;
  let fresh =
    List.filter
      (fun (f : Lint_finding.t) ->
        let k = (f.rule, f.file, f.line) in
        match Hashtbl.find_opt remaining k with
        | Some n when n > 0 ->
            Hashtbl.replace remaining k (n - 1);
            false
        | _ -> true)
      findings
  in
  (fresh, List.length findings - List.length fresh)

let save path findings =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        "# cslint baseline: grandfathered findings, one per line as\n\
         # \"<rule> <file>:<line>\". Regenerate with cslint --write-baseline;\n\
         # burn entries down rather than adding to them.\n";
      List.iter
        (fun (f : Lint_finding.t) ->
          Out_channel.output_string oc
            (Printf.sprintf "%s %s:%d\n" f.rule f.file f.line))
        findings)
