(** Checked-in grandfather list for cslint findings.

    The baseline lets the linter land with the repository still dirty and
    the debt burned down in later changes: a finding matching a baseline
    entry (same rule, file and line) is reported as [baselined] rather
    than failing the run. The shipped [.cslint-baseline] is empty — CI
    fails on any finding — but the mechanism stays for future rules. *)

type entry = { b_rule : string; b_file : string; b_line : int }

val load : string -> (entry list, string) result
(** Parse a baseline file: ["<rule> <file>:<line>"] per line, [#]
    comments and blank lines ignored. Errors on unreadable files or
    malformed lines. *)

val apply : entry list -> Lint_finding.t list -> Lint_finding.t list * int
(** [apply entries findings] is [(fresh, baselined)]: findings not
    covered by an entry, and the count that were. Each entry covers at
    most one finding, so duplicates on one line must be listed twice. *)

val save : string -> Lint_finding.t list -> unit
(** Write a baseline covering exactly [findings], with a header comment
    explaining the format. *)
