type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_human f =
  Printf.sprintf "%s:%d:%d: %s %s" f.file f.line f.col f.rule f.message

let to_json f =
  Jsonx.Obj
    [
      ("rule", Jsonx.String f.rule);
      ("file", Jsonx.String f.file);
      ("line", Jsonx.Int f.line);
      ("col", Jsonx.Int f.col);
      ("message", Jsonx.String f.message);
    ]
