let schema_uri = "https://json.schemastore.org/sarif-2.1.0.json"
let sarif_version = "2.1.0"

let rule_json (m : Lint_rules.meta) =
  Jsonx.Obj
    [
      ("id", Jsonx.String m.Lint_rules.id);
      ( "shortDescription",
        Jsonx.Obj [ ("text", Jsonx.String m.Lint_rules.title) ] );
      ("help", Jsonx.Obj [ ("text", Jsonx.String m.Lint_rules.remedy) ]);
    ]

let result_json level (f : Lint_finding.t) =
  Jsonx.Obj
    [
      ("ruleId", Jsonx.String f.Lint_finding.rule);
      ("level", Jsonx.String level);
      ( "message",
        Jsonx.Obj [ ("text", Jsonx.String f.Lint_finding.message) ] );
      ( "locations",
        Jsonx.List
          [
            Jsonx.Obj
              [
                ( "physicalLocation",
                  Jsonx.Obj
                    [
                      ( "artifactLocation",
                        Jsonx.Obj
                          [ ("uri", Jsonx.String f.Lint_finding.file) ] );
                      ( "region",
                        Jsonx.Obj
                          [
                            ("startLine", Jsonx.Int f.Lint_finding.line);
                            (* cslint columns are 0-based, SARIF's 1-based *)
                            ("startColumn", Jsonx.Int (f.Lint_finding.col + 1));
                          ] );
                    ] );
              ];
          ] );
    ]

let render ?(tool_version = "1.0.0") ~rules ~findings ~warnings () =
  let declared =
    List.map (fun (m : Lint_rules.meta) -> m.Lint_rules.id) rules
  in
  let referenced =
    List.sort_uniq String.compare
      (List.map
         (fun (f : Lint_finding.t) -> f.Lint_finding.rule)
         (findings @ warnings))
  in
  let synthesized =
    List.filter (fun r -> not (List.mem r declared)) referenced
    |> List.map (fun id ->
           {
             Lint_rules.id;
             title = "cslint diagnostic " ^ id;
             remedy = "see cslint --rules";
           })
  in
  let results =
    List.map (result_json "error") findings
    @ List.map (result_json "warning") warnings
  in
  Jsonx.Obj
    [
      ("$schema", Jsonx.String schema_uri);
      ("version", Jsonx.String sarif_version);
      ( "runs",
        Jsonx.List
          [
            Jsonx.Obj
              [
                ( "tool",
                  Jsonx.Obj
                    [
                      ( "driver",
                        Jsonx.Obj
                          [
                            ("name", Jsonx.String "cslint");
                            ("version", Jsonx.String tool_version);
                            ( "informationUri",
                              Jsonx.String
                                "https://example.invalid/cslint" );
                            ( "rules",
                              Jsonx.List
                                (List.map rule_json (rules @ synthesized)) );
                          ] );
                    ] );
                ("results", Jsonx.List results);
                ( "invocations",
                  Jsonx.List
                    [
                      Jsonx.Obj
                        [ ("executionSuccessful", Jsonx.Bool (findings = [])) ];
                    ] );
              ];
          ] );
    ]

let valid_levels = [ "none"; "note"; "warning"; "error" ]

let validate json =
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  let str_member k j what =
    match Option.bind (Jsonx.member k j) Jsonx.get_string with
    | Some s when s <> "" -> Ok s
    | _ -> Error (Printf.sprintf "%s: missing or empty %S" what k)
  in
  let* version = str_member "version" json "top level" in
  let* _ = str_member "$schema" json "top level" in
  if version <> sarif_version then
    Error (Printf.sprintf "version %S is not %S" version sarif_version)
  else
    match Jsonx.member "runs" json with
    | Some (Jsonx.List (_ :: _ as runs)) ->
        let validate_run i run =
          let what = Printf.sprintf "runs[%d]" i in
          let driver =
            Option.bind (Jsonx.member "tool" run) (Jsonx.member "driver")
          in
          match driver with
          | None -> Error (what ^ ": missing tool.driver")
          | Some d -> (
              let* _ = str_member "name" d (what ^ ".tool.driver") in
              let rule_ids =
                match Jsonx.member "rules" d with
                | Some (Jsonx.List rs) ->
                    List.filter_map
                      (fun r ->
                        Option.bind (Jsonx.member "id" r) Jsonx.get_string)
                      rs
                | _ -> []
              in
              if
                List.length (List.sort_uniq String.compare rule_ids)
                <> List.length rule_ids
              then Error (what ^ ": duplicate rule ids in driver table")
              else
                match Jsonx.member "results" run with
                | Some (Jsonx.List results) ->
                    let n = List.length results in
                    let check_result j r =
                      let rwhat = Printf.sprintf "%s.results[%d]" what j in
                      let* rule = str_member "ruleId" r rwhat in
                      let* level = str_member "level" r rwhat in
                      if not (List.mem rule rule_ids) then
                        Error
                          (Printf.sprintf "%s: ruleId %S not declared" rwhat
                             rule)
                      else if not (List.mem level valid_levels) then
                        Error
                          (Printf.sprintf "%s: unknown level %S" rwhat level)
                      else
                        let* _ =
                          match
                            Option.bind (Jsonx.member "message" r)
                              (Jsonx.member "text")
                          with
                          | Some (Jsonx.String s) when s <> "" -> Ok s
                          | _ -> Error (rwhat ^ ": missing message.text")
                        in
                        match Jsonx.member "locations" r with
                        | Some (Jsonx.List (loc :: _)) -> (
                            let phys =
                              Jsonx.member "physicalLocation" loc
                            in
                            let uri =
                              Option.bind phys (fun p ->
                                  Option.bind
                                    (Jsonx.member "artifactLocation" p)
                                    (Jsonx.member "uri"))
                            in
                            let region =
                              Option.bind phys (Jsonx.member "region")
                            in
                            match (uri, region) with
                            | Some (Jsonx.String u), Some reg when u <> "" -> (
                                let geti k =
                                  Option.bind (Jsonx.member k reg)
                                    Jsonx.get_int
                                in
                                match
                                  (geti "startLine", geti "startColumn")
                                with
                                | Some l, Some c when l >= 1 && c >= 1 ->
                                    Ok ()
                                | _ ->
                                    Error
                                      (rwhat
                                     ^ ": region needs 1-based startLine and \
                                        startColumn"))
                            | _ ->
                                Error
                                  (rwhat
                                 ^ ": location needs artifactLocation.uri and \
                                    region"))
                        | _ -> Error (rwhat ^ ": missing locations")
                    in
                    let rec all j = function
                      | [] -> Ok n
                      | r :: rest -> (
                          match check_result j r with
                          | Error e -> Error e
                          | Ok () -> all (j + 1) rest)
                    in
                    all 0 results
                | _ -> Error (what ^ ": missing results array"))
        in
        let rec go i acc = function
          | [] -> Ok acc
          | run :: rest -> (
              match validate_run i run with
              | Error e -> Error e
              | Ok n -> go (i + 1) (acc + n) rest)
        in
        go 0 0 runs
    | _ -> Error "missing or empty runs array"
