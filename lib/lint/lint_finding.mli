(** A single rule violation at a source location. *)

type t = {
  rule : string;  (** "R1" .. "R6", or "E1" for a malformed suppression. *)
  file : string;  (** Path as given to the linter. *)
  line : int;  (** 1-based line of the offending node. *)
  col : int;  (** 0-based column, matching compiler convention. *)
  message : string;  (** Human-readable description with remedy. *)
}

val compare : t -> t -> int
(** Order by file, then line, then column, then rule — the order findings
    are reported in, so output is deterministic. *)

val to_human : t -> string
(** ["file:line:col: RULE message"] — one finding per line. *)

val to_json : t -> Jsonx.t
(** Object with [rule], [file], [line], [col], [message] fields. *)
