(** Whole-program value-reference graph over every parsed implementation
    (DESIGN.md §13). Purely syntactic, like the per-file rules: each
    toplevel binding is a node carrying every value path referenced in
    its body; {!resolve} classifies a reference module-by-module —
    a call edge into a parsed module, a seeded effect primitive, a touch
    of toplevel mutable state, a whitelisted-pure stdlib call, or an
    unknown callee (functor application, first-class module, unparsed
    library) that taints conservatively. *)

type alias =
  | Alias_path of Longident.t  (** [module S = M] or [module S = A.B] *)
  | Alias_functor of Longident.t
      (** [module S = F (X)]; the payload is [F]'s path *)
  | Alias_opaque  (** anything the analysis cannot see through *)

type closure_arg = {
  c_loc : Location.t;  (** the argument expression *)
  c_refs : (Longident.t * Location.t) list;
      (** value paths referenced inside the argument *)
  c_muts : (Longident.t * Location.t * string) list;
      (** mutation sites inside the argument: target path, location,
          and the mutating function's name *)
  c_named : Longident.t option;
      (** the argument {e is} a bare identifier (a named function) *)
}

type pool_site = {
  p_fn : string;  (** [parallel_for], [map], [map_reduce] or [run] *)
  p_loc : Location.t;
  p_args : closure_arg list;
}
(** One application of a [Domain_pool] execution entry point; rule R11
    checks every argument's captures. *)

type binding = {
  b_name : string;
      (** toplevel name; nested-module values are dotted ([Sub.f]);
          bindings of var-less patterns are [<init>] *)
  b_loc : Location.t;
  b_start : int;
  b_end : int;  (** character span for [@lint.allow] matching *)
  b_refs : (Longident.t * Location.t) list;
  b_muts : (Longident.t * Location.t * string) list;
      (** applications of known mutating functions ([:=], [Array.set],
          [Hashtbl.replace], ...) to identifier arguments *)
  b_pool_sites : pool_site list;
}

type modul = {
  m_name : string;  (** capitalized file basename *)
  m_path : string;
  m_mutables : (string * Location.t) list;
      (** toplevel names bound to a shared-mutable constructor ([ref],
          [Hashtbl.create], [Buffer.create], ...): {e any} reference to
          one is a [Global_mut] effect *)
  m_arrays : (string * Location.t) list;
      (** toplevel names bound to arrays/bytes (literals, [Array.make],
          ...): read-only tables are fine, only {e mutation} sites
          count as [Global_mut] *)
  m_aliases : (string * alias) list;
  m_opens : string list;  (** [open M] heads, dotted *)
  m_bindings : binding list;
}

type t

val module_name_of_path : string -> string
(** ["lib/sched/guideline.ml"] -> ["Guideline"]. *)

val build : (string * Parsetree.structure) list -> t
(** [build [(path, ast); ...]] indexes every implementation. Duplicate
    module names (same basename in two directories) are merged under
    the first file's entry and reported by {!duplicates}. *)

val modules : t -> modul list
(** Sorted by module name. *)

val find_module : t -> string -> modul option
val duplicates : t -> string list

type resolved =
  | Edge of string * string  (** call edge to a parsed module's binding *)
  | Module_fallback of string
      (** path into a parsed module whose binding table has no such
          name (re-export, [include], pattern pun): treat as the union
          of the whole module *)
  | Mutable_touch of string * string * string
      (** module, name, kind note — reference to toplevel mutable *)
  | Prim of Lint_effect.t * string  (** seeded effect primitive *)
  | Pure  (** whitelisted stdlib or a local/lexical name *)
  | Unknown_callee of string  (** cannot resolve; taints with Unknown *)

val resolve : t -> current:modul -> ?prefix:string -> Longident.t -> resolved
(** Classify one referenced value path as seen from [current] (inside
    nested module [?prefix] when the referring binding is dotted):
    local binding tables first, then module aliases (chased), opened
    parsed modules, parsed-module paths, the effect-primitive seed
    table, and the stdlib purity whitelist — anything else is an
    unknown callee. *)

val resolve_mutation_target :
  t -> current:modul -> ?prefix:string -> Longident.t -> (string * string) option
(** Resolve the identifier argument of a mutating call against the
    toplevel mutable {e and} array tables; [Some (module, name)] means
    the call mutates module-level state. *)
