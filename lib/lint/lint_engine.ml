type report = { findings : Lint_finding.t list; suppressed : int }

let normalize path =
  let path =
    if String.length path > 2 && String.sub path 0 2 = "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  String.concat "/" (String.split_on_char '\\' path)

(* [dir] counts when it appears as a non-final path segment, so
   "lib/sched/exact.ml" and "repo/lib/x.ml" are under "lib" but
   "lib_old/x.ml" is not. *)
let under dir path =
  let rec go = function
    | [] | [ _ ] -> false
    | seg :: rest -> String.equal seg dir || go rest
  in
  go (String.split_on_char '/' (normalize path))

let scope_of_path path : Lint_rules.scope =
  let n = normalize path in
  {
    file = path;
    in_lib = under "lib" n;
    in_bench = under "bench" n;
    is_prng = String.ends_with ~suffix:"numerics/prng.ml" n;
    in_parallel = under "parallel" n;
    is_clock = String.ends_with ~suffix:"obs/obs_clock.ml" n;
    is_resource = String.ends_with ~suffix:"obs/obs_resource.ml" n;
  }

let finding_of_raw file (r : Lint_rules.raw) : Lint_finding.t =
  let p = r.r_loc.Location.loc_start in
  {
    rule = r.r_rule;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    message = r.r_msg;
  }

let lint_source ~path content =
  if Filename.check_suffix path ".mli" then Ok { findings = []; suppressed = 0 }
  else begin
    let lexbuf = Lexing.from_string content in
    Lexing.set_filename lexbuf path;
    match Parse.implementation lexbuf with
    | exception exn ->
        let detail =
          match Location.error_of_exn exn with
          | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
          | _ -> Printexc.to_string exn
        in
        Error (Printf.sprintf "%s: parse error: %s" path (String.trim detail))
    | str ->
        let scope = scope_of_path path in
        let raws, allows = Lint_rules.check_structure scope str in
        let allowed (r : Lint_rules.raw) =
          List.exists
            (fun (a : Lint_rules.allow_span) ->
              String.equal a.a_rule r.r_rule
              && a.a_start <= r.r_start && r.r_end <= a.a_end)
            allows
        in
        let kept, dropped = List.partition (fun r -> not (allowed r)) raws in
        let findings =
          List.sort Lint_finding.compare
            (List.map (finding_of_raw path) kept)
        in
        Ok { findings; suppressed = List.length dropped }
  end

let lint_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | content -> lint_source ~path content

let missing_mli_findings files =
  let set = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace set (normalize f) ()) files;
  files
  |> List.filter_map (fun f ->
         let n = normalize f in
         if
           Filename.check_suffix n ".ml"
           && (scope_of_path n).in_lib
           && not (Hashtbl.mem set (n ^ "i"))
         then
           Some
             {
               Lint_finding.rule = "R5";
               file = f;
               line = 1;
               col = 0;
               message =
                 "missing interface: every lib/**/*.ml needs a matching .mli";
             }
         else None)
  |> List.sort Lint_finding.compare

let collect_files paths =
  let out = ref [] in
  let rec walk p =
    if Sys.is_directory p then
      Sys.readdir p |> Array.to_list |> List.sort String.compare
      |> List.iter (fun entry ->
             if not (String.starts_with ~prefix:"." entry || entry = "_build")
             then walk (Filename.concat p entry))
    else if Filename.check_suffix p ".ml" || Filename.check_suffix p ".mli"
    then out := p :: !out
  in
  List.iter
    (fun p -> if Sys.file_exists p then walk p else ())
    paths;
  List.sort_uniq String.compare (List.map normalize !out)

type result = {
  all_findings : Lint_finding.t list;
  total_suppressed : int;
  errors : string list;
}

let run paths =
  let files = collect_files paths in
  let findings = ref [] in
  let suppressed = ref 0 in
  let errors = ref [] in
  List.iter
    (fun f ->
      match lint_file f with
      | Ok r ->
          findings := r.findings :: !findings;
          suppressed := !suppressed + r.suppressed
      | Error e -> errors := e :: !errors)
    files;
  findings := [ missing_mli_findings files ] @ !findings;
  {
    all_findings = List.sort Lint_finding.compare (List.concat !findings);
    total_suppressed = !suppressed;
    errors = List.rev !errors;
  }
