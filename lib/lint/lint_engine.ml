type report = { findings : Lint_finding.t list; suppressed : int }

let normalize path =
  let path =
    if String.length path > 2 && String.sub path 0 2 = "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  String.concat "/" (String.split_on_char '\\' path)

(* [dir] counts when it appears as a non-final path segment, so
   "lib/sched/exact.ml" and "repo/lib/x.ml" are under "lib" but
   "lib_old/x.ml" is not. *)
let under dir path =
  let rec go = function
    | [] | [ _ ] -> false
    | seg :: rest -> String.equal seg dir || go rest
  in
  go (String.split_on_char '/' (normalize path))

let ends_with_any suffixes n =
  List.exists (fun s -> String.ends_with ~suffix:s n) suffixes

let scope_of_path path : Lint_rules.scope =
  let n = normalize path in
  {
    file = path;
    in_lib = under "lib" n;
    in_bench = under "bench" n;
    is_prng = ends_with_any [ "numerics/prng.ml"; "numerics/prng.mli" ] n;
    in_parallel = under "parallel" n;
    is_clock = ends_with_any [ "obs/obs_clock.ml"; "obs/obs_clock.mli" ] n;
    is_resource =
      ends_with_any [ "obs/obs_resource.ml"; "obs/obs_resource.mli" ] n;
    is_socket =
      ends_with_any
        [
          "obs/obs_http.ml";
          "obs/obs_http.mli";
          "obs/obs_stream.ml";
          "obs/obs_stream.mli";
          "obs/obs_remote.ml";
          "obs/obs_remote.mli";
          "obs/obs_collect.ml";
          "obs/obs_collect.mli";
        ]
        n;
    in_sched = under "lib" n && under "sched" n;
  }

let finding_of_raw file (r : Lint_rules.raw) : Lint_finding.t =
  let p = r.r_loc.Location.loc_start in
  {
    rule = r.r_rule;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    message = r.r_msg;
  }

type parsed = Impl of Parsetree.structure | Intf of Parsetree.signature

let parse_source ~path content =
  let lexbuf = Lexing.from_string content in
  Lexing.set_filename lexbuf path;
  let fail exn =
    let detail =
      match Location.error_of_exn exn with
      | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
      | _ -> Printexc.to_string exn
    in
    Error (Printf.sprintf "%s: parse error: %s" path (String.trim detail))
  in
  if Filename.check_suffix path ".mli" then
    match Parse.interface lexbuf with
    | exception exn -> fail exn
    | sg -> Ok (Intf sg)
  else
    match Parse.implementation lexbuf with
    | exception exn -> fail exn
    | str -> Ok (Impl str)

let check_parsed ~path parsed =
  let scope = scope_of_path path in
  match parsed with
  | Impl str -> Lint_rules.check_structure scope str
  | Intf sg -> Lint_rules.check_signature scope sg

(* Match raws against allow spans; every matching allow is marked used
   so the M1 pass can report the rest as stale. *)
let apply_allows allows (used : bool array) raws =
  let kept = ref [] in
  let dropped = ref 0 in
  List.iter
    (fun (r : Lint_rules.raw) ->
      let hit = ref false in
      List.iteri
        (fun i (a : Lint_rules.allow_span) ->
          if
            String.equal a.a_rule r.r_rule
            && a.a_start <= r.r_start && r.r_end <= a.a_end
          then begin
            hit := true;
            used.(i) <- true
          end)
        allows;
      if !hit then incr dropped else kept := r :: !kept)
    raws;
  (List.rev !kept, !dropped)

let unused_allow_findings ~deep path allows (used : bool array) =
  let out = ref [] in
  List.iteri
    (fun i (a : Lint_rules.allow_span) ->
      if
        (not used.(i))
        && (deep || not (List.mem a.a_rule Lint_rules.deep_rule_ids))
      then
        let p = a.a_loc.Location.loc_start in
        out :=
          {
            Lint_finding.rule = "M1";
            file = path;
            line = p.Lexing.pos_lnum;
            col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
            message =
              Printf.sprintf
                "unused [@lint.allow %S]: no %s finding falls inside its \
                 span; delete the stale suppression"
                a.a_rule a.a_rule;
          }
          :: !out)
    allows;
  List.rev !out

let lint_source ~path content =
  match parse_source ~path content with
  | Error _ as e -> e
  | Ok parsed ->
      let raws, allows = check_parsed ~path parsed in
      let used = Array.make (List.length allows) false in
      let kept, dropped = apply_allows allows used raws in
      let findings =
        List.map (finding_of_raw path) kept
        @ unused_allow_findings ~deep:false path allows used
      in
      Ok
        {
          findings = List.sort Lint_finding.compare findings;
          suppressed = dropped;
        }

let lint_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | content -> lint_source ~path content

(* R5, both directions: a lib implementation without its interface leaks
   representation; a lib interface without its implementation is a stale
   contract nothing satisfies. *)
let missing_mli_findings files =
  let set = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace set (normalize f) ()) files;
  files
  |> List.filter_map (fun f ->
         let n = normalize f in
         if not (scope_of_path n).in_lib then None
         else if
           Filename.check_suffix n ".ml" && not (Hashtbl.mem set (n ^ "i"))
         then
           Some
             {
               Lint_finding.rule = "R5";
               file = f;
               line = 1;
               col = 0;
               message =
                 "missing interface: every lib/**/*.ml needs a matching .mli";
             }
         else if
           Filename.check_suffix n ".mli"
           && not (Hashtbl.mem set (Filename.chop_suffix n "i"))
         then
           Some
             {
               Lint_finding.rule = "R5";
               file = f;
               line = 1;
               col = 0;
               message =
                 "orphan interface: no matching .ml; the implementation was \
                  removed or renamed without its contract";
             }
         else None)
  |> List.sort Lint_finding.compare

let collect_files paths =
  let out = ref [] in
  let rec walk p =
    if Sys.is_directory p then
      Sys.readdir p |> Array.to_list |> List.sort String.compare
      |> List.iter (fun entry ->
             if not (String.starts_with ~prefix:"." entry || entry = "_build")
             then walk (Filename.concat p entry))
    else if Filename.check_suffix p ".ml" || Filename.check_suffix p ".mli"
    then out := p :: !out
  in
  List.iter
    (fun p -> if Sys.file_exists p then walk p else ())
    paths;
  List.sort_uniq String.compare (List.map normalize !out)

type options = {
  deep : bool;
  manifest_path : string option;
  warn_unused_allows : bool;
}

let default_options =
  { deep = false; manifest_path = None; warn_unused_allows = false }

type result = {
  all_findings : Lint_finding.t list;
  warnings : Lint_finding.t list;
  total_suppressed : int;
  errors : string list;
  effect_signatures : Lint_effects.module_sig list;
}

let run ?(options = default_options) paths =
  let files = collect_files paths in
  let errors = ref [] in
  (* One parse per file, shared by the shallow rules and the deep
     interprocedural pass. *)
  let parsed =
    List.filter_map
      (fun f ->
        match In_channel.with_open_bin f In_channel.input_all with
        | exception Sys_error e ->
            errors := e :: !errors;
            None
        | content -> (
            match parse_source ~path:f content with
            | Ok ast -> Some (f, ast)
            | Error e ->
                errors := e :: !errors;
                None))
      files
  in
  let checked =
    List.map
      (fun (path, ast) ->
        let raws, allows = check_parsed ~path ast in
        (path, raws, allows, Array.make (List.length allows) false))
      parsed
  in
  let deep_by_file = Hashtbl.create 16 in
  let effect_signatures =
    if not options.deep then []
    else begin
      let impls =
        List.filter_map
          (fun (p, ast) ->
            match ast with Impl str -> Some (p, str) | Intf _ -> None)
          parsed
      in
      let graph = Lint_callgraph.build impls in
      let table = Lint_effects.infer graph in
      let manifest, manifest_path =
        match options.manifest_path with
        | None -> (Lint_deep.No_manifest_check, ".cseffects")
        | Some p ->
            if not (Sys.file_exists p) then (Lint_deep.Manifest_missing, p)
            else (
              match Lint_manifest.load p with
              | Ok entries -> (Lint_deep.Manifest entries, p)
              | Error e ->
                  errors := e :: !errors;
                  (Lint_deep.No_manifest_check, p))
      in
      List.iter
        (fun (file, r) ->
          let prev =
            match Hashtbl.find_opt deep_by_file file with
            | Some l -> l
            | None -> []
          in
          Hashtbl.replace deep_by_file file (r :: prev))
        (Lint_deep.run table ~manifest ~manifest_path);
      Lint_effects.signatures table
    end
  in
  let findings = ref [] in
  let warnings = ref [] in
  let suppressed = ref 0 in
  let consumed = Hashtbl.create 16 in
  List.iter
    (fun (path, raws, allows, used) ->
      let deep_raws =
        match Hashtbl.find_opt deep_by_file path with
        | Some l ->
            Hashtbl.replace consumed path ();
            List.rev l
        | None -> []
      in
      let kept, dropped = apply_allows allows used (raws @ deep_raws) in
      suppressed := !suppressed + dropped;
      findings := List.map (finding_of_raw path) kept :: !findings;
      let m1 =
        unused_allow_findings ~deep:options.deep path allows used
      in
      if options.warn_unused_allows then warnings := m1 @ !warnings
      else findings := m1 :: !findings)
    checked;
  (* Deep findings on files with no parsed AST: the manifest itself
     (stale entries) — nothing to suppress against. *)
  Hashtbl.iter
    (fun file raws ->
      if not (Hashtbl.mem consumed file) then
        findings := List.map (finding_of_raw file) (List.rev raws) :: !findings)
    deep_by_file;
  findings := [ missing_mli_findings files ] @ !findings;
  {
    all_findings = List.sort Lint_finding.compare (List.concat !findings);
    warnings = List.sort Lint_finding.compare !warnings;
    total_suppressed = !suppressed;
    errors = List.rev !errors;
    effect_signatures;
  }
