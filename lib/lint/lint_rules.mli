(** The cslint rule set: syntactic checks over the Parsetree.

    Each rule enforces one of the repository's numerical-correctness or
    determinism invariants (see DESIGN.md §8). The checks are purely
    syntactic — the linter runs on unparsed source without type
    information — so they are scoped to the patterns that matter:
    comparisons against float literals or float-arithmetic expressions,
    the [x := !x +. e] accumulation idiom, and module paths rooted at
    [Random] / [Obj]. *)

type scope = {
  file : string;  (** Path as reported in findings. *)
  in_lib : bool;  (** Under [lib/]: R2 and R4 apply. *)
  in_bench : bool;  (** Under [bench/]: R2 applies. *)
  is_prng : bool;  (** [lib/numerics/prng.ml] itself: exempt from R3. *)
  in_parallel : bool;  (** Under [lib/parallel/]: exempt from R7. *)
  is_clock : bool;  (** [lib/obs/obs_clock.ml] itself: exempt from R8. *)
  is_resource : bool;
      (** [lib/obs/obs_resource.ml] itself: exempt from R9. *)
  is_socket : bool;
      (** The lib/obs transport modules ([obs_http.ml], [obs_stream.ml],
          [obs_remote.ml], [obs_collect.ml]): exempt from R13. *)
  in_sched : bool;  (** Under [lib/sched/]: R14 applies. *)
}

type meta = { id : string; title : string; remedy : string }

val all_meta : meta list
(** One entry per rule, in id order (R1–R14 then the M-series
    meta-rules); used by [cslint --rules] and kept in sync with
    DESIGN.md §8 and §13. *)

val deep_rule_ids : string list
(** Rules only [cslint --deep]'s interprocedural pass can fire (R10,
    R11, R12). A shallow run does not report allows naming these as
    unused (M1) — it never looked. *)

type raw = {
  r_rule : string;
  r_loc : Location.t;
  r_msg : string;
  r_start : int;  (** Start character offset of the offending node. *)
  r_end : int;  (** End character offset of the offending node. *)
}

type allow_span = {
  a_rule : string;
  a_loc : Location.t;
      (** The attribute's own location — where an M1 unused-suppression
          report points. *)
  a_start : int;
  a_end : int;
}
(** A [\[@lint.allow "Rn"\]] attribute: findings for [a_rule] whose span
    falls inside [a_start, a_end] are suppressed. *)

val check_structure : scope -> Parsetree.structure -> raw list * allow_span list
(** Walk one implementation and return its raw findings (unordered)
    together with the suppression spans collected from [@lint.allow]
    attributes (including file-wide [@@@lint.allow]). *)

val check_signature : scope -> Parsetree.signature -> raw list * allow_span list
(** The same walk over an interface: R3 on module aliases and opens,
    R6 and friends inside attribute payloads, and [@lint.allow] span
    collection. *)
