module E = Lint_effect
module G = Lint_callgraph

type manifest_status =
  | Manifest of Lint_manifest.entry list
  | Manifest_missing
  | No_manifest_check

let under dir path =
  let rec go = function
    | [] | [ _ ] -> false
    | seg :: rest -> String.equal seg dir || go rest
  in
  go (String.split_on_char '/' path)

let in_lib path = under "lib" path

let core_dirs = [ "sched"; "numerics"; "lifefn"; "workload" ]

let in_core path =
  in_lib path && List.exists (fun d -> under d path) core_dirs

(* Effects the planning core may carry: parallel execution through
   Domain_pool is allowed (R7 fences raw spawns, R11 checks the
   closures, DESIGN §10's chunk grid makes it deterministic); everything
   else must flow through the ?obs seam or not exist. *)
let r10_banned = E.diff E.all_set (E.singleton E.Domain)

let raw rule (loc : Location.t) msg : Lint_rules.raw =
  {
    Lint_rules.r_rule = rule;
    r_loc = loc;
    r_msg = msg;
    r_start = loc.Location.loc_start.Lexing.pos_cnum;
    r_end = loc.Location.loc_end.Lexing.pos_cnum;
  }

let manifest_loc path line =
  let pos =
    { Lexing.pos_fname = path; pos_lnum = line; pos_bol = 0; pos_cnum = 0 }
  in
  { Location.loc_start = pos; loc_end = pos; loc_ghost = true }

let lib_signatures sigs =
  List.filter_map
    (fun (s : Lint_effects.module_sig) ->
      if in_lib s.Lint_effects.ms_path then
        Some (s.Lint_effects.ms_module, s.Lint_effects.ms_effects)
      else None)
    sigs

let r10 table =
  let out = ref [] in
  G.modules (Lint_effects.graph table)
  |> List.iter (fun (m : G.modul) ->
         if in_core m.G.m_path then
           List.iter
             (fun (b : G.binding) ->
               let eff =
                 Lint_effects.effects table ~mdl:m.G.m_name
                   ~binding:b.G.b_name
               in
               let bad = E.inter eff r10_banned in
               List.iter
                 (fun e ->
                   let chain =
                     Lint_effects.witness table ~mdl:m.G.m_name
                       ~binding:b.G.b_name e
                   in
                   out :=
                     ( m.G.m_path,
                       raw "R10" b.G.b_loc
                         (Printf.sprintf
                            "planning-core binding %s.%s is not effect-free: \
                             reaches %s via %s"
                            m.G.m_name b.G.b_name (E.name e) chain) )
                     :: !out)
                 (E.to_list bad))
             m.G.m_bindings)
  |> ignore;
  List.rev !out

let r11 table =
  let graph = Lint_effects.graph table in
  let out = ref [] in
  G.modules graph
  |> List.iter (fun (m : G.modul) ->
         List.iter
           (fun (b : G.binding) ->
             let prefix =
               match String.rindex_opt b.G.b_name '.' with
               | None -> None
               | Some i -> Some (String.sub b.G.b_name 0 i)
             in
             List.iter
               (fun (site : G.pool_site) ->
                 let reported = Hashtbl.create 4 in
                 let report loc msg =
                   if not (Hashtbl.mem reported msg) then begin
                     Hashtbl.replace reported msg ();
                     out := (m.G.m_path, raw "R11" loc msg) :: !out
                   end
                 in
                 List.iter
                   (fun (arg : G.closure_arg) ->
                     List.iter
                       (fun (lid, loc) ->
                         match G.resolve graph ~current:m ?prefix lid with
                         | G.Mutable_touch (cm, name, _) ->
                             report loc
                               (Printf.sprintf
                                  "closure passed to Domain_pool.%s captures \
                                   toplevel mutable %s.%s; pass state through \
                                   chunk-local arguments and merge on the \
                                   caller"
                                  site.G.p_fn cm name)
                         | G.Edge (cm, cb) ->
                             let eff =
                               Lint_effects.effects table ~mdl:cm ~binding:cb
                             in
                             if E.mem E.Global_mut eff then
                               report loc
                                 (Printf.sprintf
                                    "closure passed to Domain_pool.%s calls \
                                     %s.%s which touches toplevel mutable \
                                     state (%s)"
                                    site.G.p_fn cm cb
                                    (Lint_effects.witness table ~mdl:cm
                                       ~binding:cb E.Global_mut))
                         | G.Module_fallback cm ->
                             if
                               E.mem E.Global_mut
                                 (Lint_effects.module_effects table cm)
                             then
                               report loc
                                 (Printf.sprintf
                                    "closure passed to Domain_pool.%s reaches \
                                     module %s, which touches toplevel \
                                     mutable state"
                                    site.G.p_fn cm)
                         | G.Prim _ | G.Pure | G.Unknown_callee _ -> ())
                       arg.G.c_refs;
                     List.iter
                       (fun (lid, loc, fn) ->
                         match
                           G.resolve_mutation_target graph ~current:m ?prefix
                             lid
                         with
                         | Some (cm, name) ->
                             report loc
                               (Printf.sprintf
                                  "closure passed to Domain_pool.%s mutates \
                                   toplevel state %s.%s via %s; chunks must \
                                   only write state disjoint per chunk index"
                                  site.G.p_fn cm name fn)
                         | None -> ())
                       arg.G.c_muts)
                   site.G.p_args)
               b.G.b_pool_sites)
           m.G.m_bindings)
  |> ignore;
  List.rev !out

let r12 table ~manifest ~manifest_path =
  let sigs = lib_signatures (Lint_effects.signatures table) in
  match manifest with
  | No_manifest_check -> []
  | Manifest_missing ->
      [
        ( manifest_path,
          raw "R12"
            (manifest_loc manifest_path 1)
            (Printf.sprintf
               "effects manifest %s not found; review the inferred table \
                (cslint effects) and write it with cslint --deep \
                --write-effects"
               manifest_path) );
      ]
  | Manifest entries ->
      let module_path m =
        match G.find_module (Lint_effects.graph table) m with
        | Some md -> md.G.m_path
        | None -> manifest_path
      in
      Lint_manifest.diff entries sigs
      |> List.map (function
           | Lint_manifest.New_effects (m, extra) ->
               let p = module_path m in
               ( p,
                 raw "R12" (manifest_loc p 1)
                   (Printf.sprintf
                      "module %s acquired ambient effect(s) %s not recorded \
                       in %s; burn the effect down or re-lock the manifest \
                       with --write-effects after review"
                      m (E.set_to_string extra) manifest_path) )
           | Lint_manifest.Stale_effects (m, gone, line) ->
               ( manifest_path,
                 raw "R12"
                   (manifest_loc manifest_path line)
                   (Printf.sprintf
                      "manifest records effect(s) %s for module %s that are \
                       no longer inferred; re-lock with --write-effects"
                      (E.set_to_string gone) m) )
           | Lint_manifest.Missing_module m ->
               ( manifest_path,
                 raw "R12"
                   (manifest_loc manifest_path 1)
                   (Printf.sprintf
                      "module %s has no entry in %s; re-lock with \
                       --write-effects"
                      m manifest_path) )
           | Lint_manifest.Stale_module (m, line) ->
               ( manifest_path,
                 raw "R12"
                   (manifest_loc manifest_path line)
                   (Printf.sprintf
                      "manifest entry for %s matches no module in the tree; \
                       remove it or re-lock with --write-effects"
                      m) ))

let run table ~manifest ~manifest_path =
  r10 table @ r11 table @ r12 table ~manifest ~manifest_path
