(** Interprocedural effect inference (DESIGN.md §13): a monotone
    fixpoint over the {!Lint_callgraph} assigning every toplevel binding
    a {!Lint_effect.set}. Direct seeds come from the resolved primitive
    sites (clock/random/gc/io/domain), touches of toplevel mutable
    state, and unknown callees; propagation follows call edges until no
    set grows. Mutual recursion converges because the lattice is a
    finite powerset and transfer is a union.

    {b The obs seam.} Effects do {e not} propagate across a call edge
    from a non-observability module into [lib/obs]: the planning core is
    instrumented through the [?obs] seam, and the invariant that obs
    writes never feed back into planning values is enforced elsewhere
    (R4/R8/R9 fence the primitives inside obs; the CI trace diff checks
    bit-identity end to end). Everything inside [lib/obs] still
    propagates normally, so obs modules' own manifest signatures stay
    honest. *)

type table

val infer :
  ?seam:(Lint_callgraph.modul -> bool) -> Lint_callgraph.t -> table
(** Run the fixpoint. [seam] decides which callee modules absorb their
    effects at the call boundary as seen from non-seam callers; the
    default marks modules whose path has an [obs] directory segment. *)

val effects : table -> mdl:string -> binding:string -> Lint_effect.set
(** Inferred set for one binding; empty for unknown names. *)

val module_effects : table -> string -> Lint_effect.set
(** Union over the module's bindings. *)

type module_sig = {
  ms_module : string;
  ms_path : string;
  ms_effects : Lint_effect.set;
  ms_bindings : (string * Lint_effect.set) list;  (** sorted by name *)
}

val signatures : table -> module_sig list
(** One per module, sorted by module name. *)

val witness : table -> mdl:string -> binding:string -> Lint_effect.t -> string
(** A human-readable acquisition chain,
    ["Guideline.plan -> Recurrence.generate -> Unix.gettimeofday (lib/sched/recurrence.ml:12)"],
    reconstructed from the origin recorded when the fixpoint first added
    the effect. Falls back to just the binding name when no origin is
    known. *)

val graph : table -> Lint_callgraph.t
(** The call graph the table was inferred from. *)
