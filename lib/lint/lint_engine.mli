(** The cslint driver: parse sources with compiler-libs (once per file),
    run the shallow rule set, optionally the deep interprocedural pass
    ({!Lint_effects} / {!Lint_deep}), honour [@lint.allow] suppressions,
    report the stale ones (M1), and enforce the .mli pairing rule over a
    file set.

    Everything here is pure over its inputs apart from {!lint_file},
    {!collect_files} and {!run}, which read the filesystem — tests
    exercise the rules through {!lint_source} with inline fixtures. *)

type report = { findings : Lint_finding.t list; suppressed : int }

val scope_of_path : string -> Lint_rules.scope
(** Classify a path: under [lib/], under [bench/], or the PRNG module
    itself (either side of the pair — [prng.ml] and [prng.mli] are both
    exempt from R3). Leading "./" and backslash separators are
    normalized. *)

val lint_source : path:string -> string -> (report, string) result
(** [lint_source ~path content] lints one compilation unit held in
    memory — an implementation, or an interface when [path] ends in
    [.mli] (R3 on aliases/opens, attribute payloads, suppression
    spans). [path] determines rule scoping and appears in findings.
    Findings are sorted and include M1 reports for [@lint.allow]
    attributes that suppressed nothing (allows naming deep-only rules
    are exempt here: this entry point never runs the deep pass);
    [suppressed] counts findings silenced by [@lint.allow]. Errors are
    unparsable source. *)

val lint_file : string -> (report, string) result
(** {!lint_source} over a file's contents. *)

val missing_mli_findings : string list -> Lint_finding.t list
(** Rule R5 over a file set, both directions: one finding per
    [lib/**/*.ml] with no matching [.mli] in the same set, and one per
    orphan [lib/**/*.mli] whose implementation is gone. *)

val collect_files : string list -> string list
(** Walk files and directories (skipping [_build] and dotted entries) and
    return the sorted [.ml]/[.mli] paths beneath them. Nonexistent paths
    are ignored. *)

type options = {
  deep : bool;  (** Run the interprocedural pass (R10, R11, R12). *)
  manifest_path : string option;
      (** [Some p]: R12 diffs the inferred lib signatures against the
          manifest at [p] (a missing file is itself an R12 finding).
          [None]: R12 is skipped — the [--write-effects] run, which
          regenerates the manifest instead of checking it. *)
  warn_unused_allows : bool;
      (** Demote M1 to {!result.warnings} (reported, never failing). *)
}

val default_options : options
(** Shallow, no manifest check, M1 as findings. *)

type result = {
  all_findings : Lint_finding.t list;  (** Sorted, post-suppression. *)
  warnings : Lint_finding.t list;
      (** Sorted; M1 reports when [warn_unused_allows]. *)
  total_suppressed : int;
  errors : string list;  (** Unreadable or unparsable files. *)
  effect_signatures : Lint_effects.module_sig list;
      (** Inferred per-module effect signatures; [[]] unless [deep]. *)
}

val run : ?options:options -> string list -> result
(** [collect_files], parse each file once, lint shallow (and deep when
    asked) off the shared ASTs, and append the R5 pairing check.
    Deep findings attach to their source file and go through the same
    [@lint.allow] suppression as shallow ones; manifest-file findings
    (stale entries) cannot be suppressed. *)
