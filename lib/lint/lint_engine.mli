(** The cslint driver: parse sources with compiler-libs, run the rule
    set, honour [@lint.allow] suppressions, and enforce the .mli pairing
    rule over a file set.

    Everything here is pure over its inputs apart from {!lint_file},
    {!collect_files} and {!run}, which read the filesystem — tests
    exercise the rules through {!lint_source} with inline fixtures. *)

type report = { findings : Lint_finding.t list; suppressed : int }

val scope_of_path : string -> Lint_rules.scope
(** Classify a path: under [lib/], under [bench/], or the PRNG module
    itself. Leading "./" and backslash separators are normalized. *)

val lint_source : path:string -> string -> (report, string) result
(** [lint_source ~path content] lints one implementation held in memory.
    [path] determines rule scoping and appears in findings. [.mli]
    sources are skipped (no expression rules apply). Findings are sorted;
    [suppressed] counts findings silenced by [@lint.allow]. Errors are
    unparsable source. *)

val lint_file : string -> (report, string) result
(** {!lint_source} over a file's contents. *)

val missing_mli_findings : string list -> Lint_finding.t list
(** Rule R5 over a file set: one finding per [lib/**/*.ml] with no
    matching [.mli] in the same set. *)

val collect_files : string list -> string list
(** Walk files and directories (skipping [_build] and dotted entries) and
    return the sorted [.ml]/[.mli] paths beneath them. Nonexistent paths
    are ignored. *)

type result = {
  all_findings : Lint_finding.t list;  (** Sorted, post-suppression. *)
  total_suppressed : int;
  errors : string list;  (** Unreadable or unparsable files. *)
}

val run : string list -> result
(** [collect_files], lint each file, and append the R5 pairing check. *)
