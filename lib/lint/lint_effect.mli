(** The ambient-effect lattice the deep lint pass (DESIGN.md §13) infers
    over: a tiny powerset domain whose points name the ways a binding can
    observe or disturb state outside its arguments. [Unknown] is the top
    taint for callees the call-graph cannot resolve (functor
    applications, first-class modules, unparsed libraries): a binding
    that reaches one cannot be proved pure, so it must be treated as
    having every effect. *)

type t =
  | Clock  (** reads a wall/process clock (Unix.gettimeofday, Sys.time) *)
  | Random  (** draws from stdlib [Random]'s hidden global state *)
  | Gc  (** probes or drives the garbage collector *)
  | Io  (** reads or writes channels, files, or the environment *)
  | Domain  (** creates execution domains ([Domain.spawn]) *)
  | Global_mut  (** touches (reads or writes) toplevel mutable state *)
  | Unknown  (** reaches a callee the analysis cannot resolve *)

type set
(** A set of effects. The empty set is printed as ["pure"]. *)

val empty : set
val singleton : t -> set
val add : t -> set -> set
val mem : t -> set -> bool
val union : set -> set -> set
val inter : set -> set -> set
val diff : set -> set -> set
val equal : set -> set -> bool
val is_empty : set -> bool
val subset : set -> set -> bool
val to_list : set -> t list
(** In the fixed declaration order above, so renderings are stable. *)

val of_list : t list -> set

val all : t list
(** Every effect, in declaration order. *)

val all_set : set

val name : t -> string
(** ["clock"], ["random"], ["gc"], ["io"], ["domain"], ["global-mut"],
    ["unknown"] — the vocabulary of the [.cseffects] manifest. *)

val of_name : string -> t option

val set_to_string : set -> string
(** Space-separated names in declaration order; ["pure"] when empty. *)

val set_of_string : string -> (set, string) result
(** Parse [set_to_string] output (["pure"] or effect names separated by
    spaces); the error names the first unknown word. *)
