(** The interprocedural rules layered on {!Lint_effects} (DESIGN.md §13):

    - {b R10} — the planning core ([lib/sched], [lib/numerics],
      [lib/lifefn], [lib/workload]) must be effect-free apart from the
      [domain] effect (parallel execution is delegated to [Domain_pool],
      whose chunk-grid determinism contract is DESIGN §10's and whose
      closures R11 checks). Any other inferred effect — clock, random,
      gc, io, global-mut, or an unresolvable callee — is reported with
      its acquisition chain.
    - {b R11} — closures passed to [Domain_pool.parallel_for]/[map]/
      [map_reduce]/[run] must not capture toplevel mutable state, read
      or write, directly or through any callee: the static face of the
      scatter/gather discipline [Obs_fork] exists to enforce.
    - {b R12} — each lib module's inferred effect signature must match
      the committed [.cseffects] manifest, so a new ambient effect is a
      reviewable diff rather than a silent drift. *)

type manifest_status =
  | Manifest of Lint_manifest.entry list
  | Manifest_missing
  | No_manifest_check  (** [--write-effects] run: R12 skipped *)

val lib_signatures :
  Lint_effects.module_sig list -> (string * Lint_effect.set) list
(** Restrict per-module inferred signatures to modules under [lib/]
    — the manifest's domain. Order preserved (sorted by module name
    when the input came from {!Lint_effects.signatures}). *)

val run :
  Lint_effects.table ->
  manifest:manifest_status ->
  manifest_path:string ->
  (string * Lint_rules.raw) list
(** Evaluate R10, R11 and R12; each raw finding is paired with the file
    it belongs to (source file for R10/R11 and new-effect R12 drift,
    the manifest itself for stale entries). *)
