open Parsetree

type alias =
  | Alias_path of Longident.t
  | Alias_functor of Longident.t
  | Alias_opaque

type closure_arg = {
  c_loc : Location.t;
  c_refs : (Longident.t * Location.t) list;
  c_muts : (Longident.t * Location.t * string) list;
  c_named : Longident.t option;
}

type pool_site = {
  p_fn : string;
  p_loc : Location.t;
  p_args : closure_arg list;
}

type binding = {
  b_name : string;
  b_loc : Location.t;
  b_start : int;
  b_end : int;
  b_refs : (Longident.t * Location.t) list;
  b_muts : (Longident.t * Location.t * string) list;
  b_pool_sites : pool_site list;
}

type modul = {
  m_name : string;
  m_path : string;
  m_mutables : (string * Location.t) list;
  m_arrays : (string * Location.t) list;
  m_aliases : (string * alias) list;
  m_opens : string list;
  m_bindings : binding list;
}

type entry = {
  e_mod : modul;
  e_bindings : (string, unit) Hashtbl.t;
  e_mutables : (string, unit) Hashtbl.t;
  e_arrays : (string, unit) Hashtbl.t;
}

type t = { mods : modul list; index : (string, entry) Hashtbl.t; dups : string list }

let module_name_of_path path =
  let base = Filename.remove_extension (Filename.basename path) in
  String.capitalize_ascii base

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                   *)

(* Flatten a path to its segments; a [Lapply] anywhere marks the path
   as a functor application (only the functor's head survives). *)
let rec flat = function
  | Longident.Lident s -> ([ s ], false)
  | Longident.Ldot (l, s) ->
      let segs, ap = flat l in
      (segs @ [ s ], ap)
  | Longident.Lapply (f, _) ->
      let segs, _ = flat f in
      (segs, true)

let dotted lid = String.concat "." (fst (flat lid))

(* ------------------------------------------------------------------ *)
(* Seed tables                                                         *)

(* Stdlib modules whose members are effect-free unless the primitive
   seed table below says otherwise. Everything not listed here and not
   parsed from the tree is an unknown callee. The compiler-libs names at
   the end are what lib/lint itself links against. *)
let whitelist =
  [
    "List"; "ListLabels"; "Array"; "ArrayLabels"; "Seq"; "String";
    "StringLabels"; "Bytes"; "BytesLabels"; "Char"; "Uchar"; "Int"; "Int32";
    "Int64"; "Nativeint"; "Float"; "Bool"; "Unit"; "Option"; "Result";
    "Either"; "Fun"; "Lazy"; "Map"; "Set"; "Hashtbl"; "Queue"; "Stack";
    "Buffer"; "Printf"; "Format"; "Scanf"; "Filename"; "Sys"; "Stdlib";
    "Arg"; "Lexing"; "Parsing"; "Printexc"; "Atomic"; "Mutex"; "Condition";
    "Semaphore"; "Domain"; "Gc"; "Random"; "Unix"; "Obj"; "Marshal";
    "Digest"; "Complex"; "Bigarray"; "Weak"; "Ephemeron"; "Callback";
    "In_channel"; "Out_channel"; "Not_found"; "Exit";
    "Parse"; "Location"; "Longident"; "Ast_iterator"; "Ast_helper";
    "Parsetree"; "Asttypes"; "Pprintast"; "Warnings";
  ]

let whitelisted head = List.mem head whitelist

let io_idents =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "print_float"; "print_bytes"; "prerr_string";
    "prerr_endline"; "prerr_newline"; "prerr_char"; "prerr_int";
    "prerr_float"; "prerr_bytes"; "read_line"; "read_int"; "read_int_opt";
    "read_float"; "read_float_opt"; "input_line"; "input_char";
    "input_byte"; "input_value"; "really_input"; "really_input_string";
    "output_string"; "output_char"; "output_byte"; "output_value";
    "output_bytes"; "output_substring"; "open_in"; "open_in_bin";
    "open_out"; "open_out_bin"; "close_in"; "close_out"; "flush";
    "flush_all"; "stdin"; "stdout"; "stderr"; "exit"; "at_exit";
  ]

let sys_io =
  [
    "command"; "getenv"; "getenv_opt"; "file_exists"; "is_directory";
    "is_regular_file"; "readdir"; "remove"; "rename"; "getcwd"; "chdir";
    "mkdir"; "rmdir"; "set_signal"; "signal";
  ]

let gc_probes =
  [
    "stat"; "quick_stat"; "counters"; "minor_words"; "major"; "minor";
    "full_major"; "major_slice"; "compact"; "set"; "create_alarm";
    "delete_alarm"; "finalise"; "finalise_last";
  ]

(* One seeded primitive: [head :: rest] is the alias-chased path. *)
let prim_of_path head rest : (Lint_effect.t * string) option =
  let full = String.concat "." (head :: rest) in
  match (head, rest) with
  | "Unix", [ ("gettimeofday" | "time") ] -> Some (Lint_effect.Clock, full)
  | "Sys", [ "time" ] -> Some (Lint_effect.Clock, full)
  | "Random", _ -> Some (Lint_effect.Random, full)
  | "Gc", [ p ] when List.mem p gc_probes -> Some (Lint_effect.Gc, full)
  | "Domain", [ "spawn" ] -> Some (Lint_effect.Domain, full)
  | ("In_channel" | "Out_channel"), _ -> Some (Lint_effect.Io, full)
  (* fprintf-family functions write to the channel/formatter the caller
     passes: the effect belongs to whoever supplied it, not to the
     printer — only the ambient-channel printers are io. *)
  | "Printf", [ ("printf" | "eprintf") ] -> Some (Lint_effect.Io, full)
  | "Format", [ ("printf" | "eprintf") ] -> Some (Lint_effect.Io, full)
  | "Sys", [ p ] when List.mem p sys_io -> Some (Lint_effect.Io, full)
  | "Filename", [ ("temp_file" | "open_temp_file" | "temp_dir"
                  | "set_temp_dir_name") ] ->
      Some (Lint_effect.Io, full)
  | "Unix", _ -> Some (Lint_effect.Io, full)
  | "Marshal", [ ("to_channel" | "from_channel") ] ->
      Some (Lint_effect.Io, full)
  | "Scanf", [ ("scanf" | "kscanf") ] -> Some (Lint_effect.Io, full)
  | _ -> None

(* Functions that mutate one of their arguments in place. When such a
   call's identifier argument resolves to a toplevel mutable or array,
   the caller gets [Global_mut]. *)
let mutating_fns =
  [
    ("Array", [ "set"; "unsafe_set"; "fill"; "blit"; "sort"; "stable_sort";
                "fast_sort"; "shuffle" ]);
    ("Bytes", [ "set"; "unsafe_set"; "fill"; "blit"; "blit_string" ]);
    ("Hashtbl", [ "add"; "replace"; "remove"; "reset"; "clear";
                  "filter_map_inplace" ]);
    ("Buffer", [ "add_string"; "add_char"; "add_bytes"; "add_substring";
                 "add_subbytes"; "add_buffer"; "add_channel"; "clear";
                 "reset"; "truncate" ]);
    ("Queue", [ "push"; "add"; "pop"; "take"; "clear"; "transfer" ]);
    ("Stack", [ "push"; "pop"; "clear" ]);
    ("Atomic", [ "set"; "exchange"; "compare_and_set"; "fetch_and_add";
                 "incr"; "decr" ]);
  ]

(* Toplevel [let]s whose right-hand side is one of these constructors
   introduce module-level mutable state. [`Shared] names are tainted on
   any reference; [`Table] names (arrays/bytes, usually precomputed
   read-only tables) only on mutation. *)
let ctor_kind head rest =
  match (head, rest) with
  | "ref", [] -> Some `Shared
  | ( ("Hashtbl" | "Queue" | "Stack" | "Buffer" | "Atomic" | "Weak"),
      [ ("create" | "make") ] ) ->
      Some `Shared
  | "Array", [ ("make" | "create" | "create_float" | "init" | "of_list"
               | "copy" | "make_matrix" | "concat" | "append") ] ->
      Some `Table
  | "Bytes", [ ("create" | "make" | "of_string") ] -> Some `Table
  | _ -> None

let pool_fns = [ "parallel_for"; "map"; "map_reduce"; "run" ]

(* ------------------------------------------------------------------ *)
(* Per-file harvesting                                                 *)

let pattern_vars pat =
  let out = ref [] in
  let default = Ast_iterator.default_iterator in
  let iter =
    {
      default with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> out := txt :: !out
          | Ppat_alias (_, { txt; _ }) -> out := txt :: !out
          | _ -> ());
          default.pat it p);
    }
  in
  iter.pat iter pat;
  List.rev !out

let rec strip_expr e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> strip_expr e
  | Pexp_coerce (e, _, _) -> strip_expr e
  | _ -> e

(* Chase module aliases on the head segment of a path. Returns the
   rewritten segments, or a terminal classification for functor-made
   and opaque aliases. *)
let chase_aliases aliases segs =
  let rec go fuel segs =
    if fuel = 0 then `Opaque
    else
      match segs with
      | [] -> `Segs []
      | head :: rest -> (
          match List.assoc_opt head aliases with
          | None -> `Segs segs
          | Some (Alias_path lid) ->
              let tsegs, ap = flat lid in
              if ap then `Functor (List.hd tsegs)
              else go (fuel - 1) (tsegs @ rest)
          | Some (Alias_functor lid) ->
              let tsegs, _ = flat lid in
              `Functor (List.hd tsegs)
          | Some Alias_opaque -> `Opaque)
  in
  go 8 segs

type harvest = {
  mutable h_mutables : (string * Location.t) list;
  mutable h_arrays : (string * Location.t) list;
  mutable h_aliases : (string * alias) list;
  mutable h_opens : string list;
  (* binding skeleton + its body, refs collected in a second pass once
     every alias in the file is known *)
  mutable h_raw : (binding * expression) list;
}

let classify_ctor h expr =
  match (strip_expr expr).pexp_desc with
  | Pexp_array _ -> Some `Table
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      let segs, ap = flat txt in
      if ap then None
      else
        match chase_aliases h.h_aliases segs with
        | `Segs (head :: rest) -> ctor_kind head rest
        | `Segs [] | `Functor _ | `Opaque -> None)
  | _ -> None

let harvest_structure str =
  let h =
    { h_mutables = []; h_arrays = []; h_aliases = []; h_opens = []; h_raw = [] }
  in
  let add_binding ~prefix vb_like_loc start_end names expr =
    let name = match names with [] -> "<init>" | n :: _ -> prefix ^ n in
    let s, e = start_end in
    let b =
      {
        b_name = name;
        b_loc = vb_like_loc;
        b_start = s;
        b_end = e;
        b_refs = [];
        b_muts = [];
        b_pool_sites = [];
      }
    in
    h.h_raw <- (b, expr) :: h.h_raw;
    names
  in
  let rec walk prefix str =
    List.iter
      (fun si ->
        match si.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                let vars = pattern_vars vb.pvb_pat in
                let names =
                  add_binding ~prefix vb.pvb_loc
                    ( vb.pvb_loc.Location.loc_start.Lexing.pos_cnum,
                      vb.pvb_loc.Location.loc_end.Lexing.pos_cnum )
                    vars vb.pvb_expr
                in
                match classify_ctor h vb.pvb_expr with
                | Some `Shared ->
                    h.h_mutables <-
                      h.h_mutables
                      @ List.map
                          (fun v -> (prefix ^ v, vb.pvb_loc))
                          names
                | Some `Table ->
                    h.h_arrays <-
                      h.h_arrays
                      @ List.map (fun v -> (prefix ^ v, vb.pvb_loc)) names
                | None -> ())
              vbs
        | Pstr_module mb -> (
            match mb.pmb_name.txt with
            | None -> ()
            | Some n -> (
                let full = prefix ^ n in
                match mb.pmb_expr.pmod_desc with
                | Pmod_ident { txt; _ } ->
                    h.h_aliases <- (full, Alias_path txt) :: h.h_aliases
                | Pmod_apply (f, _) -> (
                    match f.pmod_desc with
                    | Pmod_ident { txt; _ } ->
                        h.h_aliases <-
                          (full, Alias_functor txt) :: h.h_aliases
                    | _ -> h.h_aliases <- (full, Alias_opaque) :: h.h_aliases)
                | Pmod_structure s -> walk (full ^ ".") s
                | _ -> h.h_aliases <- (full, Alias_opaque) :: h.h_aliases))
        | Pstr_open
            { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ } ->
            h.h_opens <- h.h_opens @ [ dotted txt ]
        | Pstr_eval (e, _) ->
            ignore
              (add_binding ~prefix si.pstr_loc
                 ( si.pstr_loc.Location.loc_start.Lexing.pos_cnum,
                   si.pstr_loc.Location.loc_end.Lexing.pos_cnum )
                 [] e)
        | _ -> ())
      str
  in
  walk "" str;
  h

(* Names let-bound anywhere inside a body (local functions, fun
   parameters, match variables). A reference to a bare [Lident] in the
   local set is lexical, not ambient — [Uniqueness.probe]'s local
   [flush] closure must not read as [Stdlib.flush]. The approximation
   is body-wide rather than scope-exact (a syntactic analyzer has no
   environments), which can hide a same-named toplevel sibling; the
   trade is documented in DESIGN.md §13. *)
let local_names expr =
  let tbl = Hashtbl.create 32 in
  let default = Ast_iterator.default_iterator in
  let iter =
    {
      default with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
              Hashtbl.replace tbl txt ()
          | _ -> ());
          default.pat it p);
    }
  in
  iter.expr iter expr;
  tbl

(* Second pass: collect value references, mutation sites, and
   Domain_pool call sites from one binding's body. *)
let collect_refs aliases expr =
  let locals = local_names expr in
  let shadowed = function
    | Longident.Lident x -> Hashtbl.mem locals x
    | _ -> false
  in
  let refs = ref [] in
  let muts = ref [] in
  let pools = ref [] in
  let pool_target fn =
    let segs, ap = flat fn in
    if ap then None
    else
      match chase_aliases aliases segs with
      | `Segs segs when List.length segs >= 2 -> (
          match (List.hd segs, List.rev segs) with
          | "Domain_pool", last :: _ when List.mem last pool_fns -> Some last
          | _ -> None)
      | _ -> None
  in
  let mutating fn =
    match fn with
    | Longident.Lident (":=" as op) -> Some op
    | Longident.Lident (("incr" | "decr") as op) -> Some op
    | _ -> (
        let segs, ap = flat fn in
        if ap then None
        else
          match chase_aliases aliases segs with
          | `Segs [ m; f ] -> (
              match List.assoc_opt m mutating_fns with
              | Some fns when List.mem f fns -> Some (m ^ "." ^ f)
              | _ -> None)
          | _ -> None)
  in
  let note_mutation fname args =
    List.iter
      (fun (_, a) ->
        match (strip_expr a).pexp_desc with
        | Pexp_ident { txt; loc } when not (shadowed txt) ->
            muts := (txt, loc, fname) :: !muts
        | _ -> ())
      args
  in
  let default = Ast_iterator.default_iterator in
  let iter =
    {
      default with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } ->
              if not (shadowed txt) then refs := (txt, loc) :: !refs
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt = fn; _ }; _ }, args)
            -> (
              (match mutating fn with
              | Some fname -> note_mutation fname args
              | None -> ());
              match pool_target fn with
              | Some pfn ->
                  let arg_info (_, a) =
                    let a_refs = ref [] and a_muts = ref [] in
                    let d = Ast_iterator.default_iterator in
                    let sub =
                      {
                        d with
                        expr =
                          (fun it e ->
                            (match e.pexp_desc with
                            | Pexp_ident { txt; loc } ->
                                if not (shadowed txt) then
                                  a_refs := (txt, loc) :: !a_refs
                            | Pexp_apply
                                ( {
                                    pexp_desc = Pexp_ident { txt = fn; _ };
                                    _;
                                  },
                                  args ) -> (
                                match mutating fn with
                                | Some fname ->
                                    List.iter
                                      (fun (_, x) ->
                                        match (strip_expr x).pexp_desc with
                                        | Pexp_ident { txt; loc }
                                          when not (shadowed txt) ->
                                            a_muts :=
                                              (txt, loc, fname) :: !a_muts
                                        | _ -> ())
                                      args
                                | None -> ());
                            | _ -> ());
                            d.expr it e);
                      }
                    in
                    sub.expr sub a;
                    {
                      c_loc = a.pexp_loc;
                      c_refs = List.rev !a_refs;
                      c_muts = List.rev !a_muts;
                      c_named =
                        (match (strip_expr a).pexp_desc with
                        | Pexp_ident { txt; _ } -> Some txt
                        | _ -> None);
                    }
                  in
                  pools :=
                    {
                      p_fn = pfn;
                      p_loc = e.pexp_loc;
                      p_args = List.map arg_info args;
                    }
                    :: !pools
              | None -> ())
          | _ -> ());
          default.expr it e);
    }
  in
  iter.expr iter expr;
  (List.rev !refs, List.rev !muts, List.rev !pools)

let build_module path str =
  let h = harvest_structure str in
  let aliases = h.h_aliases in
  let bindings =
    List.rev_map
      (fun (b, expr) ->
        let refs, muts, pools = collect_refs aliases expr in
        { b with b_refs = refs; b_muts = muts; b_pool_sites = pools })
      h.h_raw
  in
  {
    m_name = module_name_of_path path;
    m_path = path;
    m_mutables = h.h_mutables;
    m_arrays = h.h_arrays;
    m_aliases = aliases;
    m_opens = h.h_opens;
    m_bindings = bindings;
  }

let build parsed =
  let index = Hashtbl.create 64 in
  let dups = ref [] in
  List.iter
    (fun (path, str) ->
      let m = build_module path str in
      match Hashtbl.find_opt index m.m_name with
      | Some prior ->
          (* merge: keep the first file's path, union the tables *)
          dups := m.m_name :: !dups;
          let merged =
            {
              prior.e_mod with
              m_mutables = prior.e_mod.m_mutables @ m.m_mutables;
              m_arrays = prior.e_mod.m_arrays @ m.m_arrays;
              m_aliases = prior.e_mod.m_aliases @ m.m_aliases;
              m_opens = prior.e_mod.m_opens @ m.m_opens;
              m_bindings = prior.e_mod.m_bindings @ m.m_bindings;
            }
          in
          List.iter
            (fun b -> Hashtbl.replace prior.e_bindings b.b_name ())
            m.m_bindings;
          List.iter
            (fun (n, _) -> Hashtbl.replace prior.e_mutables n ())
            m.m_mutables;
          List.iter
            (fun (n, _) -> Hashtbl.replace prior.e_arrays n ())
            m.m_arrays;
          Hashtbl.replace index m.m_name { prior with e_mod = merged }
      | None ->
          let e_bindings = Hashtbl.create 16 in
          List.iter
            (fun b -> Hashtbl.replace e_bindings b.b_name ())
            m.m_bindings;
          let e_mutables = Hashtbl.create 4 in
          List.iter
            (fun (n, _) -> Hashtbl.replace e_mutables n ())
            m.m_mutables;
          let e_arrays = Hashtbl.create 4 in
          List.iter (fun (n, _) -> Hashtbl.replace e_arrays n ()) m.m_arrays;
          Hashtbl.replace index m.m_name
            { e_mod = m; e_bindings; e_mutables; e_arrays })
    parsed;
  let all =
    Hashtbl.fold (fun _ e acc -> e.e_mod :: acc) index []
    |> List.sort (fun a b -> String.compare a.m_name b.m_name)
  in
  { mods = all; index; dups = List.sort_uniq String.compare !dups }

let modules t = t.mods
let find_module t name = Option.map (fun e -> e.e_mod) (Hashtbl.find_opt t.index name)
let duplicates t = t.dups

type resolved =
  | Edge of string * string
  | Module_fallback of string
  | Mutable_touch of string * string * string
  | Prim of Lint_effect.t * string
  | Pure
  | Unknown_callee of string

(* Successively shorter nesting prefixes: "A.B" -> ["A.B."; "A."; ""] *)
let prefix_chain prefix =
  match prefix with
  | None -> [ "" ]
  | Some p ->
      let segs = String.split_on_char '.' p in
      let rec go acc = function
        | [] -> acc @ [ "" ]
        | segs ->
            go (acc @ [ String.concat "." segs ^ "." ])
              (List.rev (List.tl (List.rev segs)))
      in
      go [] segs

let lookup_in t mname key =
  match Hashtbl.find_opt t.index mname with
  | None -> None
  | Some e ->
      (* A toplevel [let x = ref ...] is both a binding and a mutable;
         the mutable classification must win, else reads resolve as
         calls to a pure binding and the Global_mut taint is lost. *)
      if Hashtbl.mem e.e_mutables key then
        Some (Mutable_touch (mname, key, "mutable"))
      else if Hashtbl.mem e.e_bindings key then Some (Edge (mname, key))
      else None

let lookup_mut_in t mname key =
  match Hashtbl.find_opt t.index mname with
  | None -> None
  | Some e ->
      if Hashtbl.mem e.e_mutables key || Hashtbl.mem e.e_arrays key then
        Some (mname, key)
      else None

let resolve t ~current ?prefix lid =
  let segs, ap = flat lid in
  if ap then
    if whitelisted (List.hd segs) then Pure
    else Unknown_callee (dotted lid)
  else
    match segs with
    | [] -> Pure
    | [ x ] -> (
        (* unqualified: nesting prefixes, own module, opened parsed
           modules, stdlib printing primitives, else lexically local *)
        let rec try_prefixes = function
          | [] -> None
          | p :: rest -> (
              match lookup_in t current.m_name (p ^ x) with
              | Some r -> Some r
              | None -> try_prefixes rest)
        in
        match try_prefixes (prefix_chain prefix) with
        | Some r -> r
        | None -> (
            let rec try_opens = function
              | [] -> None
              | m :: rest -> (
                  match lookup_in t m x with
                  | Some r -> Some r
                  | None -> try_opens rest)
            in
            match try_opens current.m_opens with
            | Some r -> r
            | None ->
                if List.mem x io_idents then Prim (Lint_effect.Io, x) else Pure)
        )
    | _ :: _ -> (
        match chase_aliases current.m_aliases segs with
        | `Functor h ->
            if whitelisted h then Pure else Unknown_callee (dotted lid)
        | `Opaque -> Unknown_callee (dotted lid)
        | `Segs [] -> Pure
        | `Segs (head :: rest) -> (
            if Hashtbl.mem t.index head then
              let key = String.concat "." rest in
              match lookup_in t head key with
              | Some r -> r
              | None -> Module_fallback head
            else
              match prim_of_path head rest with
              | Some (e, what) -> Prim (e, what)
              | None ->
                  if whitelisted head then Pure
                  else Unknown_callee (String.concat "." (head :: rest))))

let resolve_mutation_target t ~current ?prefix lid =
  let segs, ap = flat lid in
  if ap then None
  else
    match segs with
    | [ x ] ->
        let rec try_prefixes = function
          | [] -> None
          | p :: rest -> (
              match lookup_mut_in t current.m_name (p ^ x) with
              | Some r -> Some r
              | None -> try_prefixes rest)
        in
        (match try_prefixes (prefix_chain prefix) with
        | Some r -> Some r
        | None ->
            let rec try_opens = function
              | [] -> None
              | m :: rest -> (
                  match lookup_mut_in t m x with
                  | Some r -> Some r
                  | None -> try_opens rest)
            in
            try_opens current.m_opens)
    | _ -> (
        match chase_aliases current.m_aliases segs with
        | `Segs (head :: rest) when Hashtbl.mem t.index head ->
            lookup_mut_in t head (String.concat "." rest)
        | _ -> None)
