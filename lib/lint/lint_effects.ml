module E = Lint_effect
module G = Lint_callgraph

type origin =
  | Oprim of string * Location.t  (** description of the primitive site *)
  | Ocall of string * string  (** acquired from callee module.binding *)

type node = {
  nd_module : string;
  nd_binding : string;
  nd_direct : (E.t * string * Location.t) list;
  nd_edges : (string * string) list;
  nd_fallbacks : string list;
}

type table = {
  t_graph : G.t;
  t_eff : (string * string, E.set) Hashtbl.t;
  t_origin : (string * string * E.t, origin) Hashtbl.t;
  t_nodes : node list;
}

let default_seam (m : G.modul) =
  let segs = String.split_on_char '/' m.G.m_path in
  let rec non_final = function
    | [] | [ _ ] -> false
    | s :: rest -> String.equal s "obs" || non_final rest
  in
  non_final segs

let prefix_of binding =
  match String.rindex_opt binding '.' with
  | None -> None
  | Some i -> Some (String.sub binding 0 i)

(* Resolve one binding's references into direct seeds and call edges. *)
let node_of_binding graph ~seam ~is_seam_caller (m : G.modul) (b : G.binding) =
  let prefix = prefix_of b.G.b_name in
  let direct = ref [] in
  let edges = ref [] in
  let fallbacks = ref [] in
  let seam_masked callee_module =
    (not is_seam_caller)
    &&
    match G.find_module graph callee_module with
    | Some cm -> seam cm
    | None -> false
  in
  List.iter
    (fun (lid, loc) ->
      match G.resolve graph ~current:m ?prefix lid with
      | G.Edge (cm, cb) ->
          if not (seam_masked cm) then edges := (cm, cb) :: !edges
      | G.Module_fallback cm ->
          if not (seam_masked cm) then fallbacks := cm :: !fallbacks
      | G.Mutable_touch (cm, name, _) ->
          direct :=
            ( E.Global_mut,
              Printf.sprintf "touches toplevel mutable %s.%s" cm name,
              loc )
            :: !direct
      | G.Prim (e, what) -> direct := (e, what, loc) :: !direct
      | G.Pure -> ()
      | G.Unknown_callee what ->
          direct :=
            (E.Unknown, Printf.sprintf "unresolved callee %s" what, loc)
            :: !direct)
    b.G.b_refs;
  List.iter
    (fun (lid, loc, fn) ->
      match G.resolve_mutation_target graph ~current:m ?prefix lid with
      | Some (cm, name) ->
          direct :=
            ( E.Global_mut,
              Printf.sprintf "%s mutates toplevel state %s.%s" fn cm name,
              loc )
            :: !direct
      | None -> ())
    b.G.b_muts;
  {
    nd_module = m.G.m_name;
    nd_binding = b.G.b_name;
    nd_direct = List.rev !direct;
    nd_edges = List.sort_uniq compare (List.rev !edges);
    nd_fallbacks = List.sort_uniq String.compare (List.rev !fallbacks);
  }

let infer ?(seam = default_seam) graph =
  let nodes =
    List.concat_map
      (fun (m : G.modul) ->
        let is_seam_caller = seam m in
        List.map (node_of_binding graph ~seam ~is_seam_caller m) m.G.m_bindings)
      (G.modules graph)
  in
  let eff = Hashtbl.create 256 in
  let origin = Hashtbl.create 256 in
  let get k = Option.value (Hashtbl.find_opt eff k) ~default:E.empty in
  let module_union mname =
    match G.find_module graph mname with
    | None -> E.empty
    | Some m ->
        List.fold_left
          (fun acc (b : G.binding) ->
            E.union acc (get (mname, b.G.b_name)))
          E.empty m.G.m_bindings
  in
  (* Seed direct effects with their origins. *)
  List.iter
    (fun n ->
      let k = (n.nd_module, n.nd_binding) in
      List.iter
        (fun (e, what, loc) ->
          let s = get k in
          if not (E.mem e s) then begin
            Hashtbl.replace eff k (E.add e s);
            Hashtbl.replace origin
              (n.nd_module, n.nd_binding, e)
              (Oprim (what, loc))
          end)
        n.nd_direct)
    nodes;
  (* Propagate along edges until no set grows. The lattice is a finite
     powerset, transfer is a union — termination is by monotonicity. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        let k = (n.nd_module, n.nd_binding) in
        let absorb src_name src_set =
          let cur = get k in
          let extra = E.diff src_set cur in
          if not (E.is_empty extra) then begin
            Hashtbl.replace eff k (E.union cur src_set);
            List.iter
              (fun e ->
                let ok = (n.nd_module, n.nd_binding, e) in
                if not (Hashtbl.mem origin ok) then
                  Hashtbl.replace origin ok src_name)
              (E.to_list extra);
            changed := true
          end
        in
        List.iter
          (fun (cm, cb) -> absorb (Ocall (cm, cb)) (get (cm, cb)))
          n.nd_edges;
        List.iter
          (fun cm ->
            (* whole-module fallback: attribute to the module's first
               binding carrying the effect, best-effort *)
            let u = module_union cm in
            let rep =
              match G.find_module graph cm with
              | Some m -> (
                  match m.G.m_bindings with
                  | b :: _ -> b.G.b_name
                  | [] -> "<init>")
              | None -> "<init>"
            in
            absorb (Ocall (cm, rep)) u)
          n.nd_fallbacks)
      nodes
  done;
  { t_graph = graph; t_eff = eff; t_origin = origin; t_nodes = nodes }

let effects t ~mdl ~binding =
  Option.value (Hashtbl.find_opt t.t_eff (mdl, binding)) ~default:E.empty

let module_effects t mname =
  match G.find_module t.t_graph mname with
  | None -> E.empty
  | Some m ->
      List.fold_left
        (fun acc (b : G.binding) -> E.union acc (effects t ~mdl:mname ~binding:b.G.b_name))
        E.empty m.G.m_bindings

type module_sig = {
  ms_module : string;
  ms_path : string;
  ms_effects : E.set;
  ms_bindings : (string * E.set) list;
}

let signatures t =
  G.modules t.t_graph
  |> List.map (fun (m : G.modul) ->
         let bindings =
           m.G.m_bindings
           |> List.map (fun (b : G.binding) ->
                  (b.G.b_name, effects t ~mdl:m.G.m_name ~binding:b.G.b_name))
           |> List.sort (fun (a, _) (b, _) -> String.compare a b)
         in
         {
           ms_module = m.G.m_name;
           ms_path = m.G.m_path;
           ms_effects = module_effects t m.G.m_name;
           ms_bindings = bindings;
         })

let loc_string (loc : Location.t) =
  let p = loc.Location.loc_start in
  Printf.sprintf "%s:%d" p.Lexing.pos_fname p.Lexing.pos_lnum

let witness t ~mdl ~binding e =
  let rec go seen mdl binding =
    let name = mdl ^ "." ^ binding in
    if List.mem (mdl, binding) seen || List.length seen > 20 then [ name; "..." ]
    else
      match Hashtbl.find_opt t.t_origin (mdl, binding, e) with
      | None -> [ name ]
      | Some (Oprim (what, loc)) ->
          [ name; Printf.sprintf "%s (%s)" what (loc_string loc) ]
      | Some (Ocall (cm, cb)) -> name :: go ((mdl, binding) :: seen) cm cb
  in
  String.concat " -> " (go [] mdl binding)

let graph t = t.t_graph
