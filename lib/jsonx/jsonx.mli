(** A minimal, dependency-free JSON value type with a compact one-line
    printer and a strict parser.

    The observability layer ({!Obs_sink}'s [Jsonl] sink, the bench
    harness's [BENCH_T1.json]) must serialize without pulling an external
    JSON library into the runtime dependency set, and {!Trace_report} must
    parse those files back. This module is deliberately small: values,
    [to_string], [of_string], and a few accessors — not a general-purpose
    JSON toolkit.

    Floats are printed with the shortest [%g] precision (15–17 digits)
    that round-trips exactly through [float_of_string], so a value written
    by {!to_string} and re-read by {!of_string} is bit-identical; this is
    what lets a JSONL trace reproduce a simulation's accounting to float
    tolerance. Non-finite floats have no JSON representation and are
    printed as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line, no spaces) JSON text. Strings are escaped per
    RFC 8259; non-finite floats become [null]. *)

val of_string : string -> (t, string) result
(** [of_string s] parses exactly one JSON value (surrounding whitespace
    allowed; trailing garbage is an error). Numbers without [.], [e] or
    [E] that fit in an OCaml [int] parse as [Int], everything else as
    [Float]. [\uXXXX] escapes are decoded to UTF-8 (surrogate pairs
    supported). *)

val member : string -> t -> t option
(** [member k j] is the value bound to key [k] when [j] is an [Obj]. *)

val get_string : t -> string option
val get_bool : t -> bool option

val get_int : t -> int option
(** Accepts [Float] values that are exactly integral. *)

val get_float : t -> float option
(** Accepts [Int] (JSON does not distinguish [5] from [5.0]). *)
