type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)

let float_repr x =
  if Float.is_integer x && Float.abs x < 1e16 then Printf.sprintf "%.1f" x
  else
    let s = Printf.sprintf "%.15g" x in
    if float_of_string s = x then s
    else
      let s = Printf.sprintf "%.16g" x in
      if float_of_string s = x then s else Printf.sprintf "%.17g" x

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x ->
      if Float.is_finite x then Buffer.add_string buf (float_repr x)
      else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 128 in
  write buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over the input string.                  *)

exception Fail of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect ch =
    match peek () with
    | Some c when c = ch -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" ch)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let utf8_encode buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; loop ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; loop ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; loop ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; loop ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; loop ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; loop ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; loop ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; loop ()
          | Some 'u' ->
              advance ();
              let cp = hex4 () in
              let cp =
                (* High surrogate: fold in the trailing low surrogate. *)
                if cp >= 0xD800 && cp <= 0xDBFF
                   && !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                end
                else cp
              in
              utf8_encode buf cp;
              loop ()
          | _ -> fail "invalid escape")
      | c -> advance (); Buffer.add_char buf c; loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    let text = String.sub s start (!pos - start) in
    let has_frac =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
    in
    if has_frac then
      match float_of_string_opt text with
      | Some x -> Float x
      | None -> fail (Printf.sprintf "invalid number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some x -> Float x
          | None -> fail (Printf.sprintf "invalid number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let get_string = function String s -> Some s | _ -> None
let get_bool = function Bool b -> Some b | _ -> None

let get_int = function
  | Int i -> Some i
  | Float x when Float.is_integer x && Float.abs x <= 1e15 ->
      Some (int_of_float x)
  | _ -> None

let get_float = function
  | Float x -> Some x
  | Int i -> Some (float_of_int i)
  | _ -> None
