(** Indivisible tasks — the work units of the paper's data-parallel model.

    §2.1: computations "consist of a massive number of independent
    repetitive tasks of known durations", tasks are indivisible, and a
    task's time includes the marginal cost of moving its own data (keeping
    the per-period overhead [c] size-independent). *)

type t = {
  task_id : int;
  duration : float;  (** Known, strictly positive; includes marginal data
                         transfer per the model convention. *)
  label : string;  (** Provenance tag from the generating application. *)
}

val make : task_id:int -> duration:float -> ?label:string -> unit -> t
(** @raise Invalid_argument when [duration <= 0] or not finite. *)

val uniform_batch :
  n:int -> duration:float -> ?label:string -> unit -> t list
(** [uniform_batch ~n ~duration ()] is [n] identical tasks — the paper's
    canonical workload. Requires [n >= 0]. *)

val jittered_batch :
  n:int -> mean:float -> jitter:float -> Prng.t -> ?label:string -> unit ->
  t list
(** [jittered_batch ~n ~mean ~jitter g ()] draws durations uniformly from
    [[mean·(1−jitter), mean·(1+jitter)]] — "task times may vary but are
    known perfectly". Requires [0 <= jitter < 1] and [mean > 0]. *)

val total_duration : t list -> float
(** Compensated sum of durations. *)
