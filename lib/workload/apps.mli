(** Synthetic data-parallel applications.

    §1: "computations that are data-parallel, in that they consist of a
    massive number of independent repetitive tasks of known durations. One
    encounters such computations in many scientific applications." These
    generators model three such applications with realistic duration
    structure; the examples and the discrete experiments draw their task
    lists from here. *)

val matrix_blocks : n:int -> block:int -> flop_time:float -> Task.t list
(** [matrix_blocks ~n ~block ~flop_time] models a blocked matrix-matrix
    multiply: [n × n] result blocks, each an independent task of duration
    [2·block³·flop_time] (the classical flop count for one block product).
    Requires all arguments positive. *)

val monte_carlo_batches :
  batches:int -> samples_per_batch:int -> sample_time:float -> Task.t list
(** [monte_carlo_batches ~batches ~samples_per_batch ~sample_time] models a
    Monte-Carlo integration split into identical batches — the paper's
    ideal workload (equal, known durations). *)

val parameter_sweep :
  configs:int -> base_time:float -> spread:float -> Prng.t -> Task.t list
(** [parameter_sweep ~configs ~base_time ~spread g] models a parameter
    sweep whose per-configuration run time varies log-uniformly within
    [[base_time/(1+spread), base_time·(1+spread)]] — known (pre-profiled)
    but heterogeneous durations. Requires [spread >= 0]. *)
