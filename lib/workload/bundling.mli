(** Packing real (heterogeneous) tasks into a continuous schedule's
    periods — the deployment step between the paper's continuous guidelines
    and its §2.1 task model ("tasks are indivisible; task times may vary
    but are known perfectly").

    {!Discretize} handles the uniform-duration case analytically; this
    module packs an actual task list first-fit into each period's
    productive budget, yielding the realized (shrunken) schedule, the
    per-period bundles, and the expected banked work. Together with
    {!Pool} it is what a master actually executes. *)

type bundle = {
  period_index : int;  (** Index into the source schedule. *)
  tasks : Task.t list;  (** Tasks dispatched in this period, in order. *)
  work : float;  (** Their total duration. *)
}

type t = {
  bundles : bundle list;  (** One per kept period (empty periods dropped). *)
  realized : Schedule.t;
      (** Periods shrunk to [c + bundle work] — what actually runs. *)
  leftover : Task.t list;  (** Tasks that did not fit anywhere. *)
  expected_work : float;  (** Eq. 2.1 on the realized schedule. *)
  continuous_expected_work : float;  (** Eq. 2.1 on the source schedule. *)
}

val pack :
  Life_function.t -> c:float -> Schedule.t -> Task.t list -> t
(** [pack p ~c s tasks] fills each period of [s] greedily in task-list
    order: a task joins the current period while the period's productive
    budget ([t_i − c]) is not exceeded, otherwise it waits for the next
    period. Periods that receive no task are dropped (their time is not
    spent). Requires [c >= 0].
    @raise Invalid_argument if [tasks] is empty. *)

val efficiency : t -> float
(** [efficiency b] is
    [expected_work / continuous_expected_work] ([1.0] when the continuous
    value is 0) — how much of the continuous plan's value the real task
    granularity preserves. *)
