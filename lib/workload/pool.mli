(** A task pool with bundle checkout and kill-return — the master's side of
    the draconian contract at task granularity.

    {!Farm} tracks work as a scalar; this pool refines that to whole tasks
    so discrete experiments (E12) and the task-farm example can account for
    exactly which tasks were banked, lost, or still pending. Checked-out
    bundles are either committed (tasks done) or returned (period killed);
    the pool preserves the invariant that every task is in exactly one of
    pending / checked-out / done. *)

type t

type bundle = {
  bundle_id : int;
  tasks : Task.t list;
  work : float;  (** Total duration of the bundle's tasks. *)
}

val create : Task.t list -> t
(** [create tasks] builds a pool holding all tasks as pending. *)

val pending_work : t -> float
val done_work : t -> float
val checked_out_work : t -> float
val pending_count : t -> int
val done_count : t -> int
val is_finished : t -> bool
(** [is_finished p] is [true] when no tasks are pending or checked out. *)

val checkout : t -> budget:float -> bundle option
(** [checkout p ~budget] removes pending tasks first-fit in order until the
    next task would exceed [budget], and registers them as checked out.
    [None] when no pending task fits (or the pool is empty). Requires
    [budget >= 0]. *)

val commit : t -> bundle -> unit
(** [commit p b] marks the bundle's tasks done.
    @raise Invalid_argument if [b] is not currently checked out. *)

val return_bundle : t -> bundle -> unit
(** [return_bundle p b] puts a killed bundle's tasks back at the tail of
    the pending queue.
    @raise Invalid_argument if [b] is not currently checked out. *)
