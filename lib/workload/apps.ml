let matrix_blocks ~n ~block ~flop_time =
  if n <= 0 || block <= 0 || flop_time <= 0.0 then
    invalid_arg "Apps.matrix_blocks: all arguments must be positive";
  let per_block =
    2.0 *. Float.pow (float_of_int block) 3.0 *. flop_time
  in
  List.init (n * n) (fun i ->
      Task.make ~task_id:i ~duration:per_block
        ~label:(Printf.sprintf "block(%d,%d)" (i / n) (i mod n))
        ())

let monte_carlo_batches ~batches ~samples_per_batch ~sample_time =
  if batches <= 0 || samples_per_batch <= 0 || sample_time <= 0.0 then
    invalid_arg "Apps.monte_carlo_batches: all arguments must be positive";
  let per_batch = float_of_int samples_per_batch *. sample_time in
  Task.uniform_batch ~n:batches ~duration:per_batch ~label:"mc-batch" ()

let parameter_sweep ~configs ~base_time ~spread g =
  if configs <= 0 || base_time <= 0.0 then
    invalid_arg "Apps.parameter_sweep: configs and base_time must be positive";
  if spread < 0.0 then
    invalid_arg "Apps.parameter_sweep: spread must be >= 0";
  List.init configs (fun i ->
      let duration =
        if Tol.exactly spread 0.0 then base_time
        else begin
          let lo = log (base_time /. (1.0 +. spread)) in
          let hi = log (base_time *. (1.0 +. spread)) in
          exp (Prng.float_range g ~lo ~hi)
        end
      in
      Task.make ~task_id:i ~duration
        ~label:(Printf.sprintf "config-%d" i)
        ())
