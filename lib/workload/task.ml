type t = { task_id : int; duration : float; label : string }

let make ~task_id ~duration ?(label = "") () =
  if not (Float.is_finite duration) || duration <= 0.0 then
    invalid_arg
      (Printf.sprintf "Task.make: duration %g must be positive and finite"
         duration);
  { task_id; duration; label }

let uniform_batch ~n ~duration ?(label = "uniform") () =
  if n < 0 then invalid_arg "Task.uniform_batch: n must be >= 0";
  List.init n (fun i -> make ~task_id:i ~duration ~label ())

let jittered_batch ~n ~mean ~jitter g ?(label = "jittered") () =
  if n < 0 then invalid_arg "Task.jittered_batch: n must be >= 0";
  if mean <= 0.0 then invalid_arg "Task.jittered_batch: mean must be > 0";
  if jitter < 0.0 || jitter >= 1.0 then
    invalid_arg "Task.jittered_batch: jitter must lie in [0, 1)";
  List.init n (fun i ->
      let lo = mean *. (1.0 -. jitter) and hi = mean *. (1.0 +. jitter) in
      let duration =
        if Tol.exactly jitter 0.0 then mean else Prng.float_range g ~lo ~hi
      in
      make ~task_id:i ~duration ~label ())

let total_duration tasks =
  Kahan.sum_by (fun t -> t.duration) (Array.of_list tasks)
