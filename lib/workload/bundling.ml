type bundle = { period_index : int; tasks : Task.t list; work : float }

type t = {
  bundles : bundle list;
  realized : Schedule.t;
  leftover : Task.t list;
  expected_work : float;
  continuous_expected_work : float;
}

let pack lf ~c s tasks =
  if c < 0.0 then invalid_arg "Bundling.pack: c must be >= 0";
  if tasks = [] then invalid_arg "Bundling.pack: empty task list";
  let continuous = Schedule.expected_work ~c lf s in
  let periods = Schedule.periods s in
  let remaining = ref tasks in
  let bundles = ref [] in
  Array.iteri
    (fun i t ->
      let budget = Schedule.positive_sub t c in
      let rec fill acc used = function
        | task :: rest when used +. task.Task.duration <= budget +. 1e-12 ->
            fill (task :: acc) (used +. task.Task.duration) rest
        | rest -> (List.rev acc, used, rest)
      in
      let chosen, work, rest = fill [] 0.0 !remaining in
      remaining := rest;
      if chosen <> [] then
        bundles := { period_index = i; tasks = chosen; work } :: !bundles)
    periods;
  let bundles = List.rev !bundles in
  let realized_periods =
    List.map (fun b -> c +. b.work) bundles |> Array.of_list
  in
  let realized =
    if Array.length realized_periods = 0 then
      (* No task fit anywhere: degenerate single overhead-only period keeps
         the type total; it banks nothing. *)
      Schedule.of_periods [| Float.max c 1e-9 |]
    else Schedule.of_periods realized_periods
  in
  {
    bundles;
    realized;
    leftover = !remaining;
    expected_work = Schedule.expected_work ~c lf realized;
    continuous_expected_work = continuous;
  }

let efficiency b =
  if b.continuous_expected_work <= 0.0 then 1.0
  else b.expected_work /. b.continuous_expected_work
