type bundle = { bundle_id : int; tasks : Task.t list; work : float }

type t = {
  mutable pending : Task.t list;  (** FIFO: head is next to schedule. *)
  mutable pending_tail : Task.t list;  (** Reversed tail for O(1) append. *)
  mutable out : (int * bundle) list;  (** Checked-out bundles by id. *)
  mutable done_ : Task.t list;
  mutable next_bundle : int;
  mutable pending_work : float;
  mutable done_work : float;
  mutable out_work : float;
}

let create tasks =
  {
    pending = tasks;
    pending_tail = [];
    out = [];
    done_ = [];
    next_bundle = 0;
    pending_work = Kahan.sum_by (fun t -> t.Task.duration) (Array.of_list tasks);
    done_work = 0.0;
    out_work = 0.0;
  }

let pending_work p = p.pending_work
let done_work p = p.done_work
let checked_out_work p = p.out_work
let done_count p = List.length p.done_

(* Merge returned tasks back into scheduling order so a checkout sees the
   whole pending set, not just the head segment. *)
let normalize p =
  if p.pending_tail <> [] then begin
    p.pending <- p.pending @ List.rev p.pending_tail;
    p.pending_tail <- []
  end

let pending_count p = List.length p.pending + List.length p.pending_tail
let is_finished p = pending_count p = 0 && p.out = []

let checkout p ~budget =
  if budget < 0.0 then invalid_arg "Pool.checkout: budget must be >= 0";
  normalize p;
  let rec take acc used = function
    | t :: rest when used +. t.Task.duration <= budget +. 1e-12 ->
        take (t :: acc) (used +. t.Task.duration) rest
    | rest -> (List.rev acc, used, rest)
  in
  let chosen, work, rest = take [] 0.0 p.pending in
  match chosen with
  | [] -> None
  | tasks ->
      p.pending <- rest;
      p.pending_work <- p.pending_work -. work;
      p.out_work <- p.out_work +. work;
      let b = { bundle_id = p.next_bundle; tasks; work } in
      p.next_bundle <- p.next_bundle + 1;
      p.out <- (b.bundle_id, b) :: p.out;
      Some b

let remove_out p b =
  if not (List.mem_assoc b.bundle_id p.out) then
    invalid_arg "Pool: bundle is not checked out";
  p.out <- List.remove_assoc b.bundle_id p.out;
  p.out_work <- p.out_work -. b.work

let commit p b =
  remove_out p b;
  p.done_ <- List.rev_append b.tasks p.done_;
  p.done_work <- p.done_work +. b.work

let return_bundle p b =
  remove_out p b;
  (* Back of the queue: killed work retries after currently pending work. *)
  p.pending_tail <- List.rev_append b.tasks p.pending_tail;
  p.pending_work <- p.pending_work +. b.work
