(* Common core of the Theorem 3.2/3.3 bounds:
   radical c t = sqrt(c^2/4 - c * p(t) / p'(at t or t/2)). p' < 0 on the
   support interior, so the radicand is >= c^2/4 and the square root is
   always defined there. *)

let radical lf ~c ~deriv_at t =
  let p = Life_function.eval lf t in
  let dp = Life_function.deriv lf deriv_at in
  if dp >= 0.0 then
    (* Flat or invalid derivative: treat the ratio as +infinity, meaning the
       bound degenerates; callers fall back to support-based limits. *)
    infinity
  else sqrt ((c *. c /. 4.0) -. (c *. p /. dp))

let guard_domain name lf ~c =
  if c <= 0.0 then invalid_arg (name ^ ": c must be > 0");
  let hi = Life_function.horizon lf in
  if c >= hi then invalid_arg (name ^ ": c >= horizon");
  hi

(* Solve t = rhs(t) as the root of g(t) = t - rhs(t), scanning (c, hi) for
   the sign change requested by [pick] (`First or `Last). *)
let fixed_point ~pick ~lo ~hi g =
  let steps = 512 in
  let h = (hi -. lo) /. float_of_int steps in
  let changes = ref [] in
  let prev = ref (g lo) in
  for i = 1 to steps do
    let x = lo +. (float_of_int i *. h) in
    let v = g x in
    if (!prev <= 0.0 && v > 0.0) || (!prev >= 0.0 && v < 0.0) then
      changes := (x -. h, x) :: !changes;
    prev := v
  done;
  let bracket =
    match (pick, List.rev !changes) with
    | _, [] -> None
    | `First, b :: _ -> Some b
    | `Last, l -> Some (List.hd (List.rev l))
  in
  Option.map
    (fun (a, b) ->
      let r = Rootfind.brent g ~lo:a ~hi:b in
      r.Rootfind.root)
    bracket

let lower_t0 lf ~c =
  let hi = guard_domain "Bounds.lower_t0" lf ~c in
  let g t =
    let r = radical lf ~c ~deriv_at:t t in
    if Float.is_finite r then t -. r -. (c /. 2.0) else neg_infinity
  in
  (* g < 0 just above c and g > 0 near the horizon; take the first root so
     the bracket stays conservative (every optimal t0 is above it). *)
  match fixed_point ~pick:`First ~lo:(c *. (1.0 +. 1e-9)) ~hi g with
  | Some t -> t
  | None -> c

let upper_generic name lf ~c ~deriv_of =
  let hi = guard_domain name lf ~c in
  let g t =
    let r = radical lf ~c ~deriv_at:(deriv_of t) t in
    if Float.is_finite r then t -. (2.0 *. r) -. c else neg_infinity
  in
  (* The theorem says the optimal t0 (if > 2c) satisfies g(t0) <= 0; the
     bound is the last crossing, above which g stays positive. *)
  match fixed_point ~pick:`Last ~lo:(c *. (1.0 +. 1e-9)) ~hi g with
  | Some t -> Float.max (2.0 *. c) t
  | None -> hi

let upper_t0_convex lf ~c =
  upper_generic "Bounds.upper_t0_convex" lf ~c ~deriv_of:(fun t -> t)

let upper_t0_concave lf ~c =
  upper_generic "Bounds.upper_t0_concave" lf ~c ~deriv_of:(fun t -> t /. 2.0)

let bracket lf ~c =
  let hi = guard_domain "Bounds.bracket" lf ~c in
  let lower = Float.max (lower_t0 lf ~c) (c *. (1.0 +. 1e-12)) in
  let upper =
    match Life_function.shape lf with
    | Life_function.Convex -> upper_t0_convex lf ~c
    | Life_function.Concave -> upper_t0_concave lf ~c
    | Life_function.Linear ->
        Float.min (upper_t0_convex lf ~c) (upper_t0_concave lf ~c)
    | Life_function.Unknown -> hi
  in
  let upper = Float.min upper hi in
  if upper <= lower then (lower, Float.min (2.0 *. lower) hi) else (lower, upper)

let lower_t0_concave_lifespan ~c ~lifespan =
  if c <= 0.0 || lifespan <= 0.0 then
    invalid_arg "Bounds.lower_t0_concave_lifespan: c and lifespan must be > 0";
  sqrt (c *. lifespan /. 2.0) +. (0.75 *. c)

let lower_t0_concave_periods ~c ~lifespan ~m =
  if m < 1 then invalid_arg "Bounds.lower_t0_concave_periods: m must be >= 1";
  if c <= 0.0 || lifespan <= 0.0 then
    invalid_arg "Bounds.lower_t0_concave_periods: c and lifespan must be > 0";
  (lifespan /. float_of_int m) +. (float_of_int (m - 1) *. c /. 2.0)

let max_periods_concave ~c ~lifespan =
  if c <= 0.0 || lifespan <= 0.0 then
    invalid_arg "Bounds.max_periods_concave: c and lifespan must be > 0";
  int_of_float
    (Float.ceil (sqrt ((2.0 *. lifespan /. c) +. 0.25) +. 0.5))
