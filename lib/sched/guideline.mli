(** The paper's scheduling guidelines assembled into a scheduler.

    The recipe (§3, applied in §4): bracket the optimal initial period with
    Theorems 3.2/3.3, search that "manageably narrow" interval for the
    [t_0] whose recurrence-generated schedule has maximal expected work,
    and emit that schedule. This is exactly the workflow the paper
    prescribes to a practitioner; the independent {!Optimizer} exists to
    measure how close it lands. *)

type result = {
  schedule : Schedule.t;  (** The guideline-generated schedule. *)
  t0 : float;  (** The chosen initial period. *)
  expected_work : float;  (** [E(schedule; p)] per eq. 2.1. *)
  bracket : float * float;  (** The Theorem 3.2/3.3 search interval. *)
  stop : Recurrence.stop_reason;  (** Why generation ended. *)
}

val plan :
  ?obs:Obs.t ->
  ?t0_steps:int ->
  ?finish:Recurrence.finish ->
  Life_function.t -> c:float ->
  result
(** [plan p ~c] runs the full guideline pipeline. [t0_steps] (default 128)
    is the grid resolution of the [t_0] search inside the bracket before
    Brent refinement. Requires [0 < c < horizon p].

    [?obs] (default {!Obs.disabled}) records the planning step: a
    [Plan_computed] event (source ["guideline"], with the chosen [t_0],
    period count, expected work, and wall seconds spent) and the
    [plan.guideline_calls] / [plan.guideline_seconds] metrics. With a
    span recorder attached it also profiles where the time goes — a
    [guideline.plan] root span over [plan.bracket] (Thm 3.2/3.3),
    [plan.search], and per-candidate [plan.evaluate] /
    [recurrence.generate] / [plan.expected_work] children. The returned
    plan is unaffected.
    @raise Invalid_argument when [c] is out of range. *)

val plan_batch :
  ?obs:Obs.t ->
  ?pool:Domain_pool.t ->
  ?domains:int ->
  ?t0_steps:int ->
  ?finish:Recurrence.finish ->
  (Life_function.t * float) list ->
  result list
(** [plan_batch scenarios] is [List.map (fun (p, c) -> plan p ~c)
    scenarios], except the scenarios may run concurrently — one chunk per
    scenario on [?pool] (or a transient [?domains]-wide {!Domain_pool};
    default inline). Plans are pure in [(p, c)], so the returned list is
    bit-identical for any domain count and keeps the input order. This is
    the batch entry point [csctl table] uses to sweep an overhead grid.

    Identical scenarios — the same life function (physical equality) at
    the same overhead (bitwise, {!Tol.exactly}) — are deduplicated before
    the fan-out: each canonical scenario plans once and its single result
    is fanned back out to every occurrence (physically shared), keeping
    input order. Scenario-count-dependent accounting below therefore
    counts {e unique} scenarios.

    [?obs] observes the whole batch: each unique scenario records into a
    private child handle, merged back in first-occurrence order under a
    [guideline.plan_batch] span ({!Obs_fork}), so counters like
    [plan.guideline_calls] count unique scenarios and the profile groups
    per-scenario [guideline.plan] spans. *)

val plan_with_t0 :
  ?finish:Recurrence.finish ->
  Life_function.t -> c:float -> t0:float ->
  result
(** [plan_with_t0 p ~c ~t0] skips the search and generates from a caller-
    chosen initial period — used when comparing specific [t_0] choices
    (e.g. the closed-form §4 values) under the same machinery. *)

val plan_risk_averse :
  ?t0_steps:int ->
  lambda_:float ->
  Life_function.t -> c:float ->
  result
(** [plan_risk_averse ~lambda_ p ~c] searches the same Theorem 3.2/3.3
    bracket and recurrence family as {!plan}, but scores each candidate
    schedule by the mean–deviation objective
    [mean − lambda_ · stddev] of its exact banked-work law
    ({!Work_distribution}). [lambda_ = 0] reduces to {!plan} (the reported
    [expected_work] is always the plain eq. 2.1 mean); larger [lambda_]
    trades expected work for a thinner low tail — e.g. a smaller
    probability of a wasted episode. Requires [lambda_ >= 0] and
    [0 < c < horizon p]. *)

val next_period_online :
  ?t0_steps:int ->
  Life_function.t -> c:float -> elapsed:float ->
  float option
(** [next_period_online p ~c ~elapsed] supports the §6 "progressive"
    mode: given that the workstation has survived to [elapsed], it plans
    against the conditional life function
    [s ↦ p(elapsed + s)/p(elapsed)] and returns only the first period of
    that plan, or [None] when no productive period remains. The simulator's
    adaptive policy calls this after every completed period. *)
