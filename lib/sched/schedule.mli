(** Cycle-stealing schedules and the expected-work functional (§2.1).

    A schedule is the sequence of period lengths [t_0, t_1, ...] into which
    workstation A partitions workstation B's potential availability. Each
    period of length [t] yields [t ⊖ c] work if B survives to the period's
    end, where [c] is the combined communication overhead and [⊖] is
    positive subtraction. The paper's objective (eq. 2.1) is

    [E(S; p) = Σ_i (t_i ⊖ c) · p(T_i)],   [T_i = t_0 + ... + t_i].

    Infinite schedules (needed by the geometric-decreasing scenario) are
    represented by finite truncations: generators in this library cut the
    tail once [p(T_i)] falls below 1e-15, whose contribution to [E] is below
    any tolerance used elsewhere. *)

type t
(** A finite schedule; immutable. *)

exception Invalid_schedule of string

val of_periods : float array -> t
(** [of_periods ts] validates that every period is finite and strictly
    positive and copies the array.
    @raise Invalid_schedule otherwise (including on the empty array). *)

val of_list : float list -> t
(** List counterpart of {!of_periods}. *)

val periods : t -> float array
(** A copy of the period lengths. *)

val num_periods : t -> int

val period : t -> int -> float
(** [period s k] is [t_k]. @raise Invalid_argument when out of range. *)

val completion_times : t -> float array
(** [completion_times s] is the array of [T_i = t_0 + ... + t_i]
    (compensated prefix sums). *)

val total_duration : t -> float
(** [total_duration s] is [T_{m-1}], the episode time the schedule uses. *)

val positive_sub : float -> float -> float
(** [positive_sub x y] is the paper's [x ⊖ y = max 0 (x - y)]. *)

val work_capacity : c:float -> t -> float
(** [work_capacity ~c s] is [Σ (t_i ⊖ c)] — the work accomplished if the
    workstation is never reclaimed. *)

val expected_work : c:float -> Life_function.t -> t -> float
(** [expected_work ~c p s] is the paper's objective (eq. 2.1), computed with
    compensated summation. Requires [c >= 0]. *)

val expected_work_detail :
  c:float -> Life_function.t -> t -> (float * float * float) array
(** [expected_work_detail ~c p s] returns per-period rows
    [(t_i, T_i, (t_i ⊖ c)·p(T_i))] — the summands of {!expected_work} —
    for reporting and debugging. *)

val productive_normal_form : c:float -> t -> t
(** [productive_normal_form ~c s] applies the Proposition 2.1
    transformation: every period of length [<= c] (which can complete no
    work) is merged into its successor, so that all periods except possibly
    the last exceed [c]. The result satisfies
    [expected_work ~c p s' >= expected_work ~c p s] for every life function
    [p], because merging preserves later completion times and can only
    lengthen the productive part of the absorbing period. *)

val is_productive : c:float -> t -> bool
(** [is_productive ~c s] checks the Proposition 2.1 normal form: all periods
    strictly exceed [c], except possibly the last. *)

val truncate_after : t -> duration:float -> t option
(** [truncate_after s ~duration] keeps the maximal prefix of periods that
    complete within [duration]; [None] if even the first period does not. *)

val append : t -> float -> t
(** [append s t] extends the schedule with one final period of length [t].
    @raise Invalid_schedule if [t <= 0] or not finite. *)

val equal : ?tol:float -> t -> t -> bool
(** Period-wise comparison within absolute tolerance [tol] (default 1e-9). *)

val pp : Format.formatter -> t -> unit
(** Prints up to the first 8 periods and the total duration. *)
