(** Worst-case (competitive) cycle-stealing schedules — the direction of
    the paper's announced sequel ("In a forthcoming sequel to this paper,
    we focus on (nearly) optimizing a worst-case, rather than expected,
    measure of a cycle-stealing episode's work output", §1 fn. 1), in the
    adversarial spirit of Awerbuch–Azar–Fiat–Leighton (the paper's [2]).

    Setting: an adversary, not a distribution, chooses the reclaim time
    [t]. The schedule banks the step function [W_S(t)] (completed periods'
    productive time); the omniscient benchmark, knowing [t], runs a single
    period ending exactly at [t] and banks [t − c]. Because any schedule
    can be killed before its first completion, an unconditional ratio is
    identically 0; the guarantee therefore carries an explicit {e grace}
    period (default [5c]): after time [grace], at every kill instant up to
    the design [horizon],

    [W_S(t) >= ratio · (t − c)].

    Geometric (doubling-style) schedules are the classic shape for such
    guarantees; {!plan} optimises the growth factor and first period
    numerically and then polishes the raw period vector by coordinate
    ascent. Experiment E15 tabulates the guarantee and what it costs in
    expected work on the paper's distributional scenarios. *)

type t = {
  schedule : Schedule.t;
  ratio : float;  (** Guaranteed fraction of the omniscient work. *)
  grace : float;  (** Warm-up before the guarantee applies. *)
  horizon : float;  (** Adversary's latest kill time used in the design. *)
}

val work_if_killed_at : Schedule.t -> c:float -> float -> float
(** [work_if_killed_at s ~c t] is [W_S(t)]: productive time of the periods
    completing by [t] (same convention as {!Episode.run} — a period ending
    exactly at [t] counts). *)

val competitive_ratio :
  Schedule.t -> c:float -> grace:float -> horizon:float -> float
(** [competitive_ratio s ~c ~grace ~horizon] evaluates the infimum of
    [W_S(t)/(t − c)] over [t ∈ [grace, horizon]]. The ratio is piecewise
    decreasing between completions, so the infimum is evaluated exactly at
    the critical instants (grace, just-before each completion, horizon).
    Requires [c < grace <= horizon]. *)

val geometric_schedule :
  horizon:float -> t0:float -> factor:float -> Schedule.t
(** [geometric_schedule ~horizon ~t0 ~factor] is periods
    [t0, t0·γ, t0·γ², ...] until [horizon] is covered (last period clipped
    to end exactly at [horizon]). Requires [t0 > 0], [factor >= 1],
    [horizon >= t0]. *)

val plan : ?polish:bool -> ?grace:float -> c:float -> horizon:float -> unit -> t
(** [plan ~c ~horizon ()] maximises the competitive ratio over geometric
    schedules (grid + refine over [(t0, γ)]), then (when [polish], default
    [true]) runs coordinate ascent directly on the period vector. [grace]
    defaults to [5c]. Requires [c < grace < horizon]. *)
