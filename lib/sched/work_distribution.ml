type t = {
  outcomes : (float * float) array;
  mean : float;
  variance : float;
  stddev : float;
}

let of_schedule lf ~c s =
  if c < 0.0 then invalid_arg "Work_distribution.of_schedule: c must be >= 0";
  let periods = Schedule.periods s in
  let ends = Schedule.completion_times s in
  let n = Array.length periods in
  (* Cumulative banked work after each completed period. *)
  let cum = Array.make n 0.0 in
  let acc = Kahan.create () in
  Array.iteri
    (fun i t ->
      Kahan.add acc (Schedule.positive_sub t c);
      cum.(i) <- Kahan.total acc)
    periods;
  (* Outcome probabilities: reclaim in (T_k, T_{k+1}] yields W_k; reclaim
     before T_0 yields 0; surviving past T_{m-1} yields W_{m-1}. Merge
     equal-work neighbours (unproductive periods). *)
  let raw = ref [] in
  let p_at i = Life_function.eval lf ends.(i) in
  let push w pr = if pr > 1e-15 then raw := (w, pr) :: !raw in
  push 0.0 (1.0 -. p_at 0);
  for k = 0 to n - 2 do
    push cum.(k) (p_at k -. p_at (k + 1))
  done;
  push cum.(n - 1) (p_at (n - 1));
  let merged = Hashtbl.create 16 in
  List.iter
    (fun (w, pr) ->
      let cur = Option.value (Hashtbl.find_opt merged w) ~default:0.0 in
      Hashtbl.replace merged w (cur +. pr))
    !raw;
  let outcomes =
    Hashtbl.fold (fun w pr l -> (w, pr) :: l) merged []
    |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
    |> Array.of_list
  in
  let mean_acc = Kahan.create () in
  Array.iter (fun (w, pr) -> Kahan.add mean_acc (w *. pr)) outcomes;
  let mean = Kahan.total mean_acc in
  let var_acc = Kahan.create () in
  Array.iter
    (fun (w, pr) ->
      let d = w -. mean in
      Kahan.add var_acc (pr *. d *. d))
    outcomes;
  let variance = Float.max 0.0 (Kahan.total var_acc) in
  { outcomes; mean; variance; stddev = sqrt variance }

let prob_at_least d w =
  Array.fold_left
    (fun acc (x, pr) -> if x >= w then acc +. pr else acc)
    0.0 d.outcomes

let quantile d ~q =
  if q < 0.0 || q > 1.0 then
    invalid_arg "Work_distribution.quantile: q must lie in [0, 1]";
  let acc = Kahan.create () in
  let result = ref None in
  Array.iter
    (fun (w, pr) ->
      Kahan.add acc pr;
      if !result = None && Kahan.total acc >= q -. 1e-12 then result := Some w)
    d.outcomes;
  match !result with
  | Some w -> w
  | None -> fst d.outcomes.(Array.length d.outcomes - 1)

let prob_zero d =
  Array.fold_left
    (fun acc (w, pr) -> if w <= 1e-12 then acc +. pr else acc)
    0.0 d.outcomes
