(** Naive scheduling policies a practitioner might use instead of the
    guidelines — the comparison set for experiment E9.

    None of these look at the shape of the life function beyond its
    horizon: fixed chunks, equal splits, a single all-or-nothing period,
    and geometric (doubling) chunks in the spirit of the randomised
    commitment strategies of Awerbuch–Azar–Fiat–Leighton (the paper's
    reference [2]). [best_fixed_chunk] is the strongest member: the optimal
    policy within the fixed-chunk family, found numerically. *)

type t = {
  name : string;
  schedule : Schedule.t;
  expected_work : float;
}

val fixed_chunk : Life_function.t -> c:float -> chunk:float -> t
(** [fixed_chunk p ~c ~chunk] repeats periods of length [chunk] until the
    horizon is exhausted (at least one period). Requires [chunk > 0]. *)

val best_fixed_chunk : Life_function.t -> c:float -> t
(** [best_fixed_chunk p ~c] optimises the chunk length of {!fixed_chunk}
    for expected work by grid + Brent refinement over [(c, horizon]]. *)

val equal_split : Life_function.t -> c:float -> m:int -> t
(** [equal_split p ~c ~m] divides the horizon into [m] equal periods.
    Requires [m >= 1]. *)

val single_period : Life_function.t -> c:float -> t
(** [single_period p ~c] risks everything on one period spanning the whole
    horizon — maximal work if never reclaimed, zero otherwise. *)

val doubling : Life_function.t -> c:float -> first:float -> t
(** [doubling p ~c ~first] uses periods [first, 2·first, 4·first, ...]
    until the horizon is exhausted (at least one period).
    Requires [first > 0]. *)

val all : Life_function.t -> c:float -> t list
(** [all p ~c] is the standard comparison set used by E9: best fixed chunk,
    fixed chunks of [2c], [5c] and [10c], equal splits with 4 and 16
    periods, the single period, and doubling from [2c]. *)
