type t = { periods : float array; ends : float array }

exception Invalid_schedule of string

let build periods =
  { periods; ends = Kahan.cumulative periods }

let of_periods ts =
  let n = Array.length ts in
  if n = 0 then raise (Invalid_schedule "Schedule.of_periods: empty schedule");
  Array.iteri
    (fun i t ->
      if not (Float.is_finite t) || t <= 0.0 then
        raise
          (Invalid_schedule
             (Printf.sprintf "Schedule.of_periods: period %d is %g" i t)))
    ts;
  build (Array.copy ts)

let of_list ts = of_periods (Array.of_list ts)
let periods s = Array.copy s.periods
let num_periods s = Array.length s.periods

let period s k =
  if k < 0 || k >= Array.length s.periods then
    invalid_arg "Schedule.period: index out of range";
  s.periods.(k)

let completion_times s = Array.copy s.ends
let total_duration s = s.ends.(Array.length s.ends - 1)
let positive_sub x y = Float.max 0.0 (x -. y)

let work_capacity ~c s =
  Kahan.sum_by (fun t -> positive_sub t c) s.periods

let expected_work ~c lf s =
  if c < 0.0 then invalid_arg "Schedule.expected_work: c must be >= 0";
  let acc = Kahan.create () in
  Array.iteri
    (fun i t ->
      let w = positive_sub t c in
      if w > 0.0 then
        Kahan.add acc (w *. Life_function.eval lf s.ends.(i)))
    s.periods;
  Kahan.total acc

let expected_work_detail ~c lf s =
  Array.mapi
    (fun i t ->
      (t, s.ends.(i), positive_sub t c *. Life_function.eval lf s.ends.(i)))
    s.periods

(* Proposition 2.1: merge every unproductive period (length <= c) into its
   successor. The merged period ends at the same instant the successor did
   and carries strictly more productive time, so E can only improve. The
   last period is kept as is: with no successor, merging is undefined, and
   the proposition explicitly exempts it. *)
let productive_normal_form ~c s =
  let n = Array.length s.periods in
  let out = ref [] in
  let carry = ref 0.0 in
  for i = 0 to n - 1 do
    let t = s.periods.(i) +. !carry in
    if t <= c && i < n - 1 then carry := t
    else begin
      out := t :: !out;
      carry := 0.0
    end
  done;
  build (Array.of_list (List.rev !out))

let is_productive ~c s =
  let n = Array.length s.periods in
  let ok = ref true in
  for i = 0 to n - 2 do
    if s.periods.(i) <= c then ok := false
  done;
  !ok && n > 0

let truncate_after s ~duration =
  let n = Array.length s.periods in
  let keep = ref 0 in
  (* ends is increasing: count the prefix of periods completing in time. *)
  while !keep < n && s.ends.(!keep) <= duration do
    incr keep
  done;
  if !keep = 0 then None
  else Some (build (Array.sub s.periods 0 !keep))

let append s t =
  if not (Float.is_finite t) || t <= 0.0 then
    raise (Invalid_schedule (Printf.sprintf "Schedule.append: period %g" t));
  build (Array.append s.periods [| t |])

let equal ?(tol = 1e-9) s1 s2 =
  Array.length s1.periods = Array.length s2.periods
  && Array.for_all2
       (fun a b -> Float.abs (a -. b) <= tol)
       s1.periods s2.periods

let pp ppf s =
  let n = Array.length s.periods in
  let shown = Int.min n 8 in
  Format.fprintf ppf "@[<h>[";
  for i = 0 to shown - 1 do
    if i > 0 then Format.fprintf ppf "; ";
    Format.fprintf ppf "%.4g" s.periods.(i)
  done;
  if n > shown then Format.fprintf ppf "; ... (%d periods)" n;
  Format.fprintf ppf "] duration %.4g@]" (total_duration s)
