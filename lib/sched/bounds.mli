(** Bounds on the optimal initial period length [t_0] (§3.3, §5.2).

    The recurrence determines every period except the first; the paper
    brackets the optimal [t_0] instead:

    - Theorem 3.2 (all differentiable [p]):
      [t_0 >= sqrt(c²/4 − c·p(t_0)/p'(t_0)) + c/2];
    - Theorem 3.3, convex [p], when [t_0 > 2c]:
      [t_0 <= 2·sqrt(c²/4 − c·p(t_0)/p'(t_0)) + c];
    - Theorem 3.3, concave [p], when [t_0 > 2c]: same with [p'(t_0/2)];
    - Corollaries 5.4/5.5 (concave [p] with lifespan [L]):
      [t_0 > sqrt(cL/2) + 3c/4] and [t_0 >= L/m + (m−1)c/2] given the
      period count [m].

    The theorem bounds are implicit (both sides mention [t_0]); this module
    resolves them as fixed points with bracketed root finding, and assembles
    a search bracket for {!Guideline}. *)

val lower_t0 : Life_function.t -> c:float -> float
(** [lower_t0 p ~c] solves the Theorem 3.2 relation as an equality: the
    returned value [t] satisfies [t = sqrt(c²/4 − c·p(t)/p'(t)) + c/2], and
    every optimal [t_0] is [>= t]. Requires [0 < c < horizon p]. Falls back
    to [c] if no fixed point is found (the trivial lower bound, since
    productive periods exceed [c]). *)

val upper_t0_convex : Life_function.t -> c:float -> float
(** [upper_t0_convex p ~c] resolves the convex Theorem 3.3 bound; the
    result is [max 2c t*] where [t*] is the largest fixed point of the
    bound (the theorem assumes [t_0 > 2c]). Falls back to [horizon p] when
    the fixed-point search fails. *)

val upper_t0_concave : Life_function.t -> c:float -> float
(** Concave counterpart of {!upper_t0_convex} (eq. 3.14, with [p'(t_0/2)]). *)

val bracket : Life_function.t -> c:float -> float * float
(** [bracket p ~c] is the [(lower, upper)] search interval for the optimal
    [t_0], dispatching on the declared shape of [p]: concave/convex pick
    their Theorem 3.3 bound, {!Life_function.Linear} takes the tighter of
    the two, {!Life_function.Unknown} falls back to [horizon p]. The
    interval is clipped to [(c, horizon p]] and is always nonempty. *)

val lower_t0_concave_lifespan : c:float -> lifespan:float -> float
(** Corollary 5.5's explicit lower bound [sqrt(cL/2) + 3c/4] for concave
    life functions with potential lifespan [L]. *)

val lower_t0_concave_periods : c:float -> lifespan:float -> m:int -> float
(** Corollary 5.4: [t_0 >= L/m + (m−1)·c/2] when the optimal schedule is
    known to have [m] periods. Requires [m >= 1]. *)

val max_periods_concave : c:float -> lifespan:float -> int
(** Corollary 5.3: the number of periods of an optimal schedule for a
    concave life function is [< ceil(sqrt(2L/c + 1/4) + 1/2)]; this returns
    that ceiling (an exclusive bound). Requires [c > 0] and [lifespan > 0]. *)
