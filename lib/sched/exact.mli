(** Provably-optimal comparator schedules, re-derived from
    Bhatt–Chung–Leighton–Rosenberg, "On optimal strategies for
    cycle-stealing in networks of workstations" (IEEE Trans. Computers 46,
    1997) — the paper's reference [3] and the yardstick of §4.

    These constructions are independent of the guideline machinery; the E3–E5
    experiments (and the test suite) compare both against each other and
    against the brute-force {!Optimizer}. *)

type t = {
  schedule : Schedule.t;
  expected_work : float;
  t0 : float;
  description : string;
}

val uniform : c:float -> lifespan:float -> t
(** Optimal schedule for the uniform-risk scenario [p(t) = 1 − t/L]:
    periods in arithmetic progression with decrement exactly [c]
    ([3]; eq. 4.1 here), [m] periods with
    [t_0 = L/m + (m−1)c/2] so they exactly exhaust [L]. The period count is
    [⌊sqrt(2L/c + 1/4) + 1/2⌋], cross-checked by evaluating neighbouring
    [m]; requires [0 < c < lifespan]. *)

val geometric_decreasing : c:float -> a:float -> t
(** Optimal schedule for [p_a(t) = a^{−t}]: all periods equal to the
    Lambert-W closed form of {!Closed_forms.geo_dec_t_optimal} ([3] proves
    equal periods are optimal because the conditional risk is time-
    invariant). The schedule is infinite; the returned truncation stops
    once the surviving probability is below 1e-15, and [expected_work] uses
    the exact geometric-series closed form
    [(t* − c)·a^{−t*}/(1 − a^{−t*})]. Requires [a > 1] and [c > 0], with
    [t* > c] (i.e. [c] small enough for any work to be possible). *)

val geometric_increasing : c:float -> lifespan:float -> t
(** Optimal-structure schedule for the geometric-increasing scenario:
    period lengths follow [3]'s recurrence [t_{k+1} = log₂(t_k − c + 2)]
    (§4.3), with the initial period chosen by exhaustive 1-D optimisation
    of expected work subject to the total fitting in [L]. [3] gives no
    closed-form [t_0]; within its recurrence family this search is exact to
    numerical tolerance. Requires [0 < c < lifespan]. *)
