type cluster = {
  t0_low : float;
  t0_high : float;
  best_t0 : float;
  best_value : float;
}

type probe = {
  clusters : cluster list;
  max_value : float;
  samples : int;
  rel_tol : float;
}

let probe ?(samples = 512) ?(rel_tol = 1e-4) lf ~c =
  if samples < 8 then invalid_arg "Uniqueness.probe: samples must be >= 8";
  let lo, hi = Bounds.bracket lf ~c in
  let value t0 =
    let g = Recurrence.generate lf ~c ~t0 in
    Schedule.expected_work ~c lf g.Recurrence.schedule
  in
  let xs =
    Array.init samples (fun i ->
        lo +. (float_of_int i /. float_of_int (samples - 1) *. (hi -. lo)))
  in
  let vs = Array.map value xs in
  let max_value = Array.fold_left Float.max neg_infinity vs in
  let threshold = (1.0 -. rel_tol) *. max_value in
  (* Sweep the grid, merging consecutive above-threshold points. *)
  let clusters = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some cl -> begin
        clusters := cl :: !clusters;
        current := None
      end
    | None -> ()
  in
  Array.iteri
    (fun i v ->
      if v >= threshold then begin
        match !current with
        | None ->
            current :=
              Some { t0_low = xs.(i); t0_high = xs.(i); best_t0 = xs.(i); best_value = v }
        | Some cl ->
            let best_t0, best_value =
              if v > cl.best_value then (xs.(i), v)
              else (cl.best_t0, cl.best_value)
            in
            current := Some { cl with t0_high = xs.(i); best_t0; best_value }
      end
      else flush ())
    vs;
  flush ();
  { clusters = List.rev !clusters; max_value; samples; rel_tol }

let unique ?samples ?rel_tol lf ~c =
  match (probe ?samples ?rel_tol lf ~c).clusters with
  | [ _ ] -> true
  | _ -> false
