type t = { name : string; schedule : Schedule.t; expected_work : float }

let finish name lf ~c schedule =
  { name; schedule; expected_work = Schedule.expected_work ~c lf schedule }

let repeat_until_horizon ~horizon next =
  (* Collect periods from [next] until they would overrun the horizon,
     always keeping at least one. *)
  let rev = ref [] in
  let elapsed = ref 0.0 in
  let continue = ref true in
  let k = ref 0 in
  while !continue do
    let t = next !k in
    if (!elapsed +. t > horizon && !rev <> []) || !k > 1_000_000 then
      continue := false
    else begin
      rev := t :: !rev;
      (* Running end-time against a fixed horizon; baseline schedules are
         short and the horizon check is the semantics being reproduced. *)
      (elapsed := !elapsed +. t) [@lint.allow "R2"];
      incr k;
      if !elapsed >= horizon then continue := false
    end
  done;
  Schedule.of_periods (Array.of_list (List.rev !rev))

let fixed_chunk lf ~c ~chunk =
  if chunk <= 0.0 then invalid_arg "Baselines.fixed_chunk: chunk must be > 0";
  let horizon = Life_function.horizon lf in
  let s = repeat_until_horizon ~horizon (fun _ -> chunk) in
  finish (Printf.sprintf "fixed-chunk(%g)" chunk) lf ~c s

let best_fixed_chunk lf ~c =
  let horizon = Life_function.horizon lf in
  if c >= horizon then
    invalid_arg "Baselines.best_fixed_chunk: c >= horizon";
  let objective chunk =
    let s = repeat_until_horizon ~horizon (fun _ -> chunk) in
    Schedule.expected_work ~c lf s
  in
  let best =
    Optimize.grid_then_refine objective ~lo:(c *. (1.0 +. 1e-9)) ~hi:horizon
      ~steps:256
  in
  let s = repeat_until_horizon ~horizon (fun _ -> best.Optimize.x) in
  finish (Printf.sprintf "best-fixed-chunk(%.4g)" best.Optimize.x) lf ~c s

let equal_split lf ~c ~m =
  if m < 1 then invalid_arg "Baselines.equal_split: m must be >= 1";
  let horizon = Life_function.horizon lf in
  let s = Schedule.of_periods (Array.make m (horizon /. float_of_int m)) in
  finish (Printf.sprintf "equal-split(m=%d)" m) lf ~c s

let single_period lf ~c =
  let horizon = Life_function.horizon lf in
  let s = Schedule.of_periods [| horizon |] in
  finish "single-period" lf ~c s

let doubling lf ~c ~first =
  if first <= 0.0 then invalid_arg "Baselines.doubling: first must be > 0";
  let horizon = Life_function.horizon lf in
  let s =
    repeat_until_horizon ~horizon (fun k ->
        first *. Float.pow 2.0 (float_of_int k))
  in
  finish (Printf.sprintf "doubling(from %g)" first) lf ~c s

let all lf ~c =
  [
    best_fixed_chunk lf ~c;
    fixed_chunk lf ~c ~chunk:(2.0 *. c);
    fixed_chunk lf ~c ~chunk:(5.0 *. c);
    fixed_chunk lf ~c ~chunk:(10.0 *. c);
    equal_split lf ~c ~m:4;
    equal_split lf ~c ~m:16;
    single_period lf ~c;
    doubling lf ~c ~first:(2.0 *. c);
  ]
