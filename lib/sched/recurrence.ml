type stop_reason =
  | Exhausted_support
  | Unproductive
  | Tail_negligible
  | Period_cap

type generated = { schedule : Schedule.t; stop : stop_reason }

let tail_threshold = 1e-15

let next_period lf ~c ~prev_period ~prev_end =
  if c < 0.0 then invalid_arg "Recurrence.next_period: c must be >= 0";
  if prev_period <= 0.0 then
    invalid_arg "Recurrence.next_period: prev_period must be > 0";
  if prev_end < prev_period -. 1e-9 then
    invalid_arg "Recurrence.next_period: prev_end < prev_period";
  let p_end = Life_function.eval lf prev_end in
  let rhs =
    p_end +. ((prev_period -. c) *. Life_function.deriv lf prev_end)
  in
  if rhs <= 0.0 || rhs >= p_end then None
  else begin
    (* p is monotone decreasing, so p(prev_end + t) = rhs has a unique
       positive root; bracket it inside the support. *)
    let f t = Life_function.eval lf (prev_end +. t) -. rhs in
    let hi =
      match Life_function.support lf with
      | Life_function.Bounded l -> l -. prev_end
      | Life_function.Unbounded ->
          (* Expand until p drops below rhs. *)
          let h = ref (Float.max prev_period 1.0) in
          let guard = ref 0 in
          while f !h > 0.0 && !guard < 200 do
            incr guard;
            h := !h *. 2.0
          done;
          !h
    in
    if hi <= 0.0 || f hi > 0.0 then None
    else begin
      let r = Rootfind.brent f ~lo:0.0 ~hi in
      let t = r.Rootfind.root in
      if t <= 0.0 then None else Some t
    end
  end

type finish = Faithful | Greedy_tail

let greedy_tail lf ~c ~elapsed =
  (* Best single final period: maximize (t - c) p(elapsed + t) over t > c. *)
  let objective t = (t -. c) *. Life_function.eval lf (elapsed +. t) in
  let hi =
    match Life_function.support lf with
    | Life_function.Bounded l -> l -. elapsed
    | Life_function.Unbounded -> Life_function.horizon lf -. elapsed
  in
  if hi <= c then None
  else begin
    let best = Optimize.grid_then_refine objective ~lo:c ~hi ~steps:256 in
    if best.Optimize.fx > 0.0 then Some best.Optimize.x else None
  end

let stop_label = function
  | Exhausted_support -> "exhausted-support"
  | Unproductive -> "unproductive"
  | Tail_negligible -> "tail-negligible"
  | Period_cap -> "period-cap"

let generate_body ~max_periods ~finish lf ~c ~t0 =
  let rev_periods = ref [ t0 ] in
  let count = ref 1 in
  let prev_period = ref t0 in
  let prev_end = ref t0 in
  let stop = ref None in
  while !stop = None do
    if !count >= max_periods then stop := Some Period_cap
    else if Life_function.eval lf !prev_end < tail_threshold then
      stop := Some Tail_negligible
    else if !prev_period <= c then stop := Some Unproductive
    else begin
      match next_period lf ~c ~prev_period:!prev_period ~prev_end:!prev_end with
      | None -> stop := Some Exhausted_support
      | Some t ->
          rev_periods := t :: !rev_periods;
          incr count;
          prev_period := t;
          (* Thm 3.1 defines T_k = T_{k-1} + t_k; the uncompensated
             recurrence IS the object under study, and test_recurrence
             pins its fixed points to 1e-9. *)
          (prev_end := !prev_end +. t) [@lint.allow "R2"]
    end
  done;
  let stop = Option.get !stop in
  (* Optional ad-hoc improvement: fill leftover lifespan with one greedy
     period when the recurrence stopped early. *)
  let rev_periods =
    match (finish, stop) with
    | Greedy_tail, (Exhausted_support | Unproductive) -> begin
        match greedy_tail lf ~c ~elapsed:!prev_end with
        | Some t -> t :: !rev_periods
        | None -> !rev_periods
      end
    | Greedy_tail, (Tail_negligible | Period_cap)
    | Faithful, _ ->
        !rev_periods
  in
  let schedule =
    Schedule.of_periods (Array.of_list (List.rev rev_periods))
  in
  { schedule; stop }

let generate ?(obs = Obs.disabled) ?(max_periods = 100_000)
    ?(finish = Faithful) lf ~c ~t0 =
  if t0 <= 0.0 then invalid_arg "Recurrence.generate: t0 must be > 0";
  if c < 0.0 then invalid_arg "Recurrence.generate: c must be >= 0";
  match Obs.span_recorder obs with
  | None -> generate_body ~max_periods ~finish lf ~c ~t0
  | Some r ->
      Obs.Span.enter r "recurrence.generate";
      let g =
        try generate_body ~max_periods ~finish lf ~c ~t0
        with e ->
          Obs.Span.exit r;
          raise e
      in
      Obs.Span.exit r
        ~attrs:
          [
            ("periods", Jsonx.Int (Schedule.num_periods g.schedule));
            ("stop", Jsonx.String (stop_label g.stop));
          ];
      g

let residuals lf ~c s =
  let periods = Schedule.periods s in
  let ends = Schedule.completion_times s in
  let n = Array.length periods in
  Array.init (Int.max 0 (n - 1)) (fun k ->
      (* defect of eq. 3.6 at step k+1 *)
      Life_function.eval lf ends.(k + 1)
      -. Life_function.eval lf ends.(k)
      -. ((periods.(k) -. c) *. Life_function.deriv lf ends.(k)))
