type check = { name : string; holds : bool; detail : string }

let pass name detail = { name; holds = true; detail }
let fail name detail = { name; holds = false; detail }

let decrement_check ?(tol = 1e-7) lf ~c s =
  let name = "thm-5.2-decrement" in
  let ts = Schedule.periods s in
  let n = Array.length ts in
  if n < 2 then pass name "single period: vacuous"
  else begin
    match Life_function.shape lf with
    | Life_function.Unknown -> pass name "unknown shape: vacuous"
    | Life_function.Concave | Life_function.Linear | Life_function.Convex -> (
        let concave =
          match Life_function.shape lf with
          | Life_function.Concave | Life_function.Linear -> true
          | Life_function.Convex | Life_function.Unknown -> false
        in
        (* Thm 5.2 constrains internal periods; the last one is exempt. *)
        let worst = ref 0.0 and worst_i = ref (-1) in
        for i = 0 to n - 3 do
          let gap = ts.(i + 1) -. (ts.(i) -. c) in
          let violation = if concave then gap else -.gap in
          if violation > !worst then begin
            worst := violation;
            worst_i := i
          end
        done;
        if !worst <= tol then
          pass name
            (Printf.sprintf "%s: all internal decrements respect %s c"
               (if concave then "concave" else "convex")
               (if concave then ">=" else "<="))
        else
          fail name
            (Printf.sprintf "period %d violates by %g" !worst_i !worst))
  end

let period_count_check lf ~c s =
  let name = "cor-5.2/5.3-period-count" in
  match (Life_function.shape lf, Life_function.support lf) with
  | (Life_function.Concave | Life_function.Linear), Life_function.Bounded l ->
      let m = Schedule.num_periods s in
      let bound = Bounds.max_periods_concave ~c ~lifespan:l in
      let t0 = Schedule.period s 0 in
      let t0_bound = int_of_float (Float.ceil (t0 /. c)) in
      if m < bound && m <= Int.max 1 t0_bound then
        pass name (Printf.sprintf "m = %d < %d and m <= t0/c = %d" m bound t0_bound)
      else
        fail name
          (Printf.sprintf "m = %d vs bound %d (t0/c = %d)" m bound t0_bound)
  | _, _ -> pass name "not concave-bounded: vacuous"

let t0_bounds_check ?(tol = 1e-6) lf ~c s =
  let name = "thm-3.2/3.3-t0-bracket" in
  let lo, hi = Bounds.bracket lf ~c in
  let t0 = Schedule.period s 0 in
  let slack = tol *. Float.max 1.0 (Float.abs t0) in
  if t0 >= lo -. slack && t0 <= hi +. slack then
    pass name (Printf.sprintf "t0 = %.6g inside [%.6g, %.6g]" t0 lo hi)
  else fail name (Printf.sprintf "t0 = %.6g outside [%.6g, %.6g]" t0 lo hi)

let recurrence_check ?(tol = 1e-6) lf ~c s =
  let name = "cor-3.1-recurrence" in
  let res = Recurrence.residuals lf ~c s in
  if Array.length res = 0 then pass name "single period: vacuous"
  else begin
    let worst = Array.fold_left (fun acc r -> Float.max acc (Float.abs r)) 0.0 res in
    if worst <= tol then
      pass name (Printf.sprintf "max |residual| = %.3g" worst)
    else fail name (Printf.sprintf "max |residual| = %.3g > %g" worst tol)
  end

(* Theorem 5.1 is proved for expected work with ordinary subtraction, which
   Proposition 2.1 justifies for all periods except a possibly-sub-c final
   one. Under positive subtraction that trailing period is worthless dead
   time and perturbing into it can "win", so the check strips it first. *)
let strip_trailing_unproductive ~c s =
  let ps = Schedule.periods s in
  let n = Array.length ps in
  if n >= 2 && ps.(n - 1) <= c then
    Schedule.of_periods (Array.sub ps 0 (n - 1))
  else s

let local_optimality_check lf ~c s =
  let name = "thm-5.1-local-optimality" in
  let s = strip_trailing_unproductive ~c s in
  if Schedule.num_periods s < 2 then pass name "single period: vacuous"
  else begin
    match Life_function.shape lf with
    | Life_function.Concave | Life_function.Linear ->
        let m = Perturb.perturbation_margin ~min_period:c lf ~c s in
        if m.Perturb.margin >= -1e-9 then
          pass name
            (Printf.sprintf "min margin %.3g at period %d" m.Perturb.margin
               m.Perturb.worst_k)
        else
          fail name
            (Printf.sprintf "perturbation at period %d (delta %.3g) improves E by %.3g"
               m.Perturb.worst_k m.Perturb.worst_delta (-.m.Perturb.margin))
    | Life_function.Convex | Life_function.Unknown ->
        pass name "not concave: vacuous"
  end

let full_report lf ~c s =
  [
    decrement_check lf ~c s;
    period_count_check lf ~c s;
    t0_bounds_check lf ~c s;
    recurrence_check lf ~c s;
    local_optimality_check lf ~c s;
  ]

let pp_check ppf { name; holds; detail } =
  Format.fprintf ppf "%-28s %s  %s" name (if holds then "PASS" else "FAIL")
    detail
