(** Discrete (task-quantised) analogues of continuous schedules — the §6
    open question "can one show that our continuous guidelines yield
    valuable discrete analogues?", answered empirically by experiment E12.

    The paper's tasks are indivisible with known durations (§2.1); a real
    deployment must round each continuous period [t_k] down to
    [c + w_k·τ], where [τ] is the task duration and [w_k] the whole number
    of tasks that fit. This module performs that rounding and measures the
    expected-work loss. *)

type t = {
  schedule : Schedule.t;  (** The quantised schedule. *)
  tasks_per_period : int array;  (** [w_k] for each kept period. *)
  total_tasks : int;
  expected_work : float;
  continuous_expected_work : float;
      (** [E] of the input schedule, for loss reporting. *)
}

val quantize :
  Life_function.t -> c:float -> task:float -> Schedule.t -> t
(** [quantize p ~c ~task s] rounds every period of [s] to a whole number of
    tasks: periods that cannot fit even one task are dropped (their time is
    simply not scheduled — the discrete analogue of Prop 2.1's merge).
    Requires [task > 0] and [c >= 0].
    @raise Invalid_argument if no period of [s] fits a single task. *)

val efficiency : t -> float
(** [efficiency q] is [expected_work / continuous_expected_work], in
    [[0, 1]] up to rounding benefits (shorter periods complete earlier, so
    values slightly above 1 are possible when rounding down helps).
    Returns [1.0] when the continuous expected work is 0. *)

val tasks_capacity : t -> task:float -> float
(** [tasks_capacity q ~task] is the total task time scheduled,
    [Σ w_k·τ] — the discrete counterpart of {!Schedule.work_capacity}. *)
