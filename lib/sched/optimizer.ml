type t = {
  schedule : Schedule.t;
  expected_work : float;
  m : int;
  sweeps : int;
}

let expected_work_of_vector lf ~c ts =
  let acc = Kahan.create () in
  let elapsed = Kahan.create () in
  Array.iter
    (fun ti ->
      let ti = Float.max 0.0 ti in
      Kahan.add elapsed ti;
      let w = Schedule.positive_sub ti c in
      if w > 0.0 then
        Kahan.add acc (w *. Life_function.eval lf (Kahan.total elapsed)))
    ts;
  Kahan.total acc

(* Deterministic multi-start: expected work has local optima in which a
   prefix of periods already exhausts a bounded lifespan and the rest sit
   dead beyond it, so we ascend from several qualitatively different
   splits — flat over the horizon, flat over half of it, arithmetic
   decreasing, and geometric decreasing — and keep the best. *)
let seeds ~horizon ~m =
  let mf = float_of_int m in
  let flat frac = Array.make m (frac *. horizon /. mf) in
  let arithmetic =
    let total = mf *. (mf +. 1.0) /. 2.0 in
    Array.init m (fun i -> float_of_int (m - i) /. total *. horizon)
  in
  let geometric =
    let total = 2.0 -. Float.pow 2.0 (-.float_of_int (m - 1)) in
    Array.init m (fun i -> Float.pow 2.0 (-.float_of_int i) /. total *. horizon)
  in
  [ flat 1.0; flat 0.5; arithmetic; geometric ]

let n_seeds = 4 (* length of [seeds] *)

let ascend_seed lf ~c ~horizon ~m ~tol init =
  let eps = 1e-9 in
  let lower = Array.make m eps in
  let upper = Array.make m horizon in
  let objective ts = expected_work_of_vector lf ~c ts in
  Optimize.coordinate_ascent ~tol ~f:objective ~lower ~upper init

let best_candidate candidates =
  List.fold_left
    (fun (bx, bew) (x, ew) -> if ew > bew then (x, ew) else (bx, bew))
    (List.hd candidates) (List.tl candidates)

let ascend lf ~c ~horizon ~m ~tol =
  best_candidate
    (List.map (ascend_seed lf ~c ~horizon ~m ~tol) (seeds ~horizon ~m))

(* Speculative block: evaluate every (m, seed) ascent for [count]
   consecutive period counts starting at [m0] as one flat job grid, then
   reduce each m's seed candidates in seed order — the exact fold
   [ascend] performs, so each per-m result is bit-identical to the
   serial one. Ascents are pure float computations from their seed
   vector; which domain runs which job cannot change a bit. *)
let ascend_block pool lf ~c ~horizon ~tol ~m0 ~count =
  let jobs = count * n_seeds in
  let slots = Array.make jobs None in
  Domain_pool.parallel_for pool ~chunks:jobs (fun j ->
      let m = m0 + (j / n_seeds) and si = j mod n_seeds in
      let init = List.nth (seeds ~horizon ~m) si in
      slots.(j) <- Some (ascend_seed lf ~c ~horizon ~m ~tol init));
  Array.init count (fun i ->
      best_candidate
        (List.init n_seeds (fun si -> Option.get slots.((i * n_seeds) + si))))

let optimal_schedule ?(obs = Obs.disabled) ?pool ?m_max ?(patience = 3)
    ?(tol = 1e-10) lf ~c =
  if c <= 0.0 then invalid_arg "Optimizer.optimal_schedule: c must be > 0";
  let horizon = Life_function.horizon lf in
  if c >= horizon then
    invalid_arg "Optimizer.optimal_schedule: c >= horizon";
  let t_start = if Obs.instrumented obs then Obs_clock.now () else 0.0 in
  let m_cap =
    match m_max with
    | Some m -> m
    | None -> begin
        match Life_function.shape lf with
        | Life_function.Concave | Life_function.Linear ->
            Bounds.max_periods_concave ~c ~lifespan:horizon
        | Life_function.Convex | Life_function.Unknown -> 64
      end
  in
  let spanner = Obs.span_recorder obs in
  (match spanner with
  | Some r -> Obs.Span.enter r "optimizer.optimal_schedule"
  | None -> ());
  let best = ref None in
  let stale = ref 0 in
  let m = ref 1 in
  let sweeps = ref 0 in
  (* Replay of the serial improvement rule on the result for count [mi];
     shared by both execution paths below. *)
  let consider mi (xs, ew) =
    incr sweeps;
    let improved =
      match !best with
      | Some (_, best_ew, _) -> ew > best_ew +. tol
      | None -> true
    in
    if improved then begin
      best := Some (xs, ew, mi);
      stale := 0
    end
    else incr stale
  in
  (match pool with
  | Some p when Domain_pool.domains p > 1 ->
      (* Speculate up to [patience - stale] consecutive counts per block:
         the serial scan provably evaluates every one of them before it
         can stop (stale resets on improvement and the block is no longer
         than the remaining patience), so replaying the blocks in m-order
         yields the identical best schedule and the identical sweep
         count — speculation buys concurrency, never extra sweeps. *)
      while !m <= m_cap && !stale < patience do
        let m0 = !m in
        let count = Int.min (m_cap - m0 + 1) (patience - !stale) in
        let results =
          match spanner with
          | None -> ascend_block p lf ~c ~horizon ~tol ~m0 ~count
          | Some r ->
              Obs.Span.record
                ~attrs:
                  [ ("m_first", Jsonx.Int m0); ("count", Jsonx.Int count) ]
                r "optimizer.block"
                (fun () -> ascend_block p lf ~c ~horizon ~tol ~m0 ~count)
        in
        Array.iteri (fun i result -> consider (m0 + i) result) results;
        m := m0 + count
      done;
      (match Obs.metrics obs with
      | Some meter -> Domain_pool.publish p meter
      | None -> ())
  | Some _ | None ->
      while !m <= m_cap && !stale < patience do
        let result =
          match spanner with
          | None -> ascend lf ~c ~horizon ~m:!m ~tol
          | Some r ->
              Obs.Span.record ~attrs:[ ("m", Jsonx.Int !m) ] r
                "optimizer.sweep" (fun () -> ascend lf ~c ~horizon ~m:!m ~tol)
        in
        consider !m result;
        incr m
      done);
  match !best with
  | None -> assert false (* m = 1 always evaluated *)
  | Some (xs, _, m) ->
      (* Clean the raw vector: clamp positives, drop zeros, normalise. *)
      let positive = Array.of_list (List.filter (fun t -> t > 1e-9) (Array.to_list xs)) in
      let schedule =
        if Array.length positive = 0 then
          Schedule.of_periods [| Float.min horizon (Float.max c 1.0) |]
        else
          Schedule.productive_normal_form ~c (Schedule.of_periods positive)
      in
      let r =
        {
          schedule;
          expected_work = Schedule.expected_work ~c lf schedule;
          m;
          sweeps = !sweeps;
        }
      in
      (match spanner with
      | Some rec_ ->
          Obs.Span.exit rec_
            ~attrs:
              [ ("m", Jsonx.Int m); ("sweeps", Jsonx.Int !sweeps) ]
      | None -> ());
      if Obs.instrumented obs then begin
        let elapsed = Obs_clock.elapsed_since t_start in
        Obs.incr obs "plan.optimizer_calls";
        Obs.add obs "optimizer.sweeps" !sweeps;
        Obs.observe obs "plan.optimizer_seconds" elapsed;
        Obs.emit obs
          (Obs.Event.Plan_computed
             {
               source = "optimizer";
               t0 = Schedule.period schedule 0;
               periods = Schedule.num_periods schedule;
               expected_work = r.expected_work;
               elapsed;
             })
      end;
      r
