let ln2 = log 2.0

let poly_next_period ~d ~t_prev ~t_end_prev ~c =
  if d < 1 then invalid_arg "Closed_forms.poly_next_period: d must be >= 1";
  if t_end_prev <= 0.0 then
    invalid_arg "Closed_forms.poly_next_period: T_{k-1} must be > 0";
  let df = float_of_int d in
  let ratio = 1.0 +. (df *. (t_prev -. c) /. t_end_prev) in
  (Float.pow ratio (1.0 /. df) -. 1.0) *. t_end_prev

let poly_scale ~d ~c ~lifespan =
  let df = float_of_int d in
  Float.pow (c /. df) (1.0 /. (df +. 1.0))
  *. Float.pow lifespan (df /. (df +. 1.0))

let poly_t0_lower ~d ~c ~lifespan = poly_scale ~d ~c ~lifespan

let poly_t0_upper ~d ~c ~lifespan = (2.0 *. poly_scale ~d ~c ~lifespan) +. 1.0

let uniform_next_period ~t_prev ~c = t_prev -. c

let uniform_t0_lower ~c ~lifespan = sqrt (c *. lifespan)

let uniform_t0_upper ~c ~lifespan = (2.0 *. sqrt (c *. lifespan)) +. 1.0

let uniform_t0_optimal ~c ~lifespan = sqrt (2.0 *. c *. lifespan)

let uniform_optimal_m ~c ~lifespan =
  int_of_float
    (Float.floor (sqrt ((2.0 *. lifespan /. c) +. 0.25) +. 0.5))

let geo_dec_next_period ~a ~t_prev ~c =
  if a <= 1.0 then
    invalid_arg "Closed_forms.geo_dec_next_period: requires a > 1";
  let lna = log a in
  let rhs = 1.0 +. ((c -. t_prev) *. lna) in
  if rhs <= 0.0 || rhs > 1.0 then None else Some (-.log rhs /. lna)

let geo_dec_t0_lower ~a ~c =
  let lna = log a in
  sqrt ((c *. c /. 4.0) +. (c /. lna)) +. (c /. 2.0)

let geo_dec_t0_upper ~a ~c =
  let lna = log a in
  c +. (1.0 /. lna)

(* t + a^{-t}/ln a = c + 1/ln a. Substituting u = t ln a and R = 1 + c ln a
   gives u + e^{-u} = R, whose positive solution is u = R + W0(-e^{-R}):
   the principal branch, because the positive root has u > R - 1, i.e.
   v = u - R in (-1, 0). *)
let geo_dec_t_optimal ~a ~c =
  if a <= 1.0 then
    invalid_arg "Closed_forms.geo_dec_t_optimal: requires a > 1";
  if c <= 0.0 then
    invalid_arg "Closed_forms.geo_dec_t_optimal: requires c > 0";
  let lna = log a in
  let r = 1.0 +. (c *. lna) in
  let v = Special.lambert_w0 (-.exp (-.r)) in
  (r +. v) /. lna

let geo_inc_next_period_guideline ~t_prev ~c =
  let arg = ((t_prev -. c) *. ln2) +. 1.0 in
  if arg <= 1.0 then None else Some (Special.log2 arg)

let geo_inc_next_period_optimal ~t_prev ~c =
  let arg = t_prev -. c +. 2.0 in
  if arg <= 1.0 then None else Some (Special.log2 arg)

let geo_inc_t0_estimate ~lifespan =
  if lifespan <= 1.0 then
    invalid_arg "Closed_forms.geo_inc_t0_estimate: lifespan must be > 1";
  let lg = Special.log2 lifespan in
  lifespan /. (lg *. lg)
