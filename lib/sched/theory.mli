(** Executable checks of the paper's structural theorems (§5).

    Each check takes a schedule believed optimal (or guideline-generated)
    and reports whether the corresponding claim holds, with the worst
    violation when it does not. They back the property-based test suite and
    experiment E7, and serve downstream users as sanity assertions when
    applying the library to new life functions. *)

type check = {
  name : string;
  holds : bool;
  detail : string;  (** Human-readable witness or worst-violation report. *)
}

val decrement_check : ?tol:float -> Life_function.t -> c:float ->
  Schedule.t -> check
(** Theorem 5.2 / Corollary 5.1: for concave [p], every internal period
    satisfies [t_{i+1} <= t_i − c] (and hence strict decrease); for convex
    [p], [t_{i+1} >= t_i − c]. Dispatches on the declared shape; for
    {!Life_function.Unknown} the check passes vacuously with a note. *)

val period_count_check : Life_function.t -> c:float -> Schedule.t -> check
(** Corollary 5.2/5.3: for concave [p] with lifespan [L], the schedule has
    fewer than [⌈sqrt(2L/c + 1/4) + 1/2⌉] periods and at most [t_0/c]
    periods. Vacuous for non-concave shapes. *)

val t0_bounds_check : ?tol:float -> Life_function.t -> c:float ->
  Schedule.t -> check
(** Theorems 3.2/3.3 (+ Corollary 5.5 for concave [p]): the schedule's
    initial period lies inside the computed bracket, within a relative
    [tol] (default 1e-6). *)

val recurrence_check : ?tol:float -> Life_function.t -> c:float ->
  Schedule.t -> check
(** Corollary 3.1: consecutive periods satisfy eq. 3.6 with residual below
    [tol] (default 1e-6) relative to [p]'s scale. *)

val local_optimality_check : Life_function.t -> c:float -> Schedule.t -> check
(** Theorem 5.1: for concave [p], a schedule satisfying the recurrence
    beats all its [±δ]-perturbations ({!Perturb.perturbation_margin} is
    [>= −tol]). Vacuous for single-period schedules and non-concave
    shapes. A trailing period of length [<= c] is stripped before the
    check: the theorem's algebra uses ordinary subtraction (justified by
    Prop 2.1 for all but the last period), and under positive subtraction
    such dead tails admit improving perturbations without contradicting
    the theorem. *)

val full_report : Life_function.t -> c:float -> Schedule.t -> check list
(** All checks above, in order. *)

val pp_check : Format.formatter -> check -> unit
