type t = { schedule : Schedule.t; expected_work : float }

let first_period lf ~c ~elapsed =
  let hi =
    match Life_function.support lf with
    | Life_function.Bounded l -> l -. elapsed
    | Life_function.Unbounded -> Life_function.horizon lf -. elapsed
  in
  if hi <= c then None
  else begin
    let objective t = (t -. c) *. Life_function.eval lf (elapsed +. t) in
    let best = Optimize.grid_then_refine objective ~lo:c ~hi ~steps:256 in
    if best.Optimize.fx > 0.0 then Some best.Optimize.x else None
  end

let plan ?(max_periods = 100_000) lf ~c =
  if c <= 0.0 then invalid_arg "Greedy.plan: c must be > 0";
  if c >= Life_function.horizon lf then invalid_arg "Greedy.plan: c >= horizon";
  let rev = ref [] in
  let elapsed = ref 0.0 in
  let count = ref 0 in
  let continue = ref true in
  while !continue && !count < max_periods do
    if Life_function.eval lf !elapsed < 1e-15 then continue := false
    else begin
      match first_period lf ~c ~elapsed:!elapsed with
      | None -> continue := false
      | Some t ->
          rev := t :: !rev;
          (* Running end-time fed back into the greedy objective; periods
             are same-scale and few, and the 1e-15 tail cutoff dwarfs any
             rounding drift. *)
          (elapsed := !elapsed +. t) [@lint.allow "R2"];
          incr count
    end
  done;
  match !rev with
  | [] ->
      invalid_arg "Greedy.plan: no productive greedy period exists"
  | l ->
      let schedule = Schedule.of_periods (Array.of_list (List.rev l)) in
      { schedule; expected_work = Schedule.expected_work ~c lf schedule }
