(** Sensitivity of guideline schedules to misspecified inputs.

    A practitioner measures the communication overhead [c] and estimates
    the life function; both carry error. These utilities quantify how much
    expected work survives planning with wrong inputs while the world runs
    with the true ones — the robustness question any deployment of the
    paper's guidelines faces (experiment E18). *)

type point = {
  perturbation : float;
      (** Multiplicative factor applied to the planner's input. *)
  planned_with : float;  (** The perturbed value the planner saw. *)
  efficiency : float;
      (** E(plan(perturbed); truth) / E(plan(truth); truth) — 1.0 means no
          loss. *)
}

val c_misspecification :
  ?factors:float array -> Life_function.t -> c:float -> point list
(** [c_misspecification p ~c] plans with [c' = factor·c] for each factor
    (default [{0.25, 0.5, 0.8, 1.0, 1.25, 2.0, 4.0}]) and evaluates every
    resulting schedule under the true [(p, c)]. Factors making [c']
    infeasible (at or beyond the horizon) are skipped.
    Requires [0 < c < horizon p]. *)

val lifespan_misspecification :
  ?factors:float array -> lifespan:float -> float -> point list
(** [lifespan_misspecification ~lifespan c] is the same exercise for a
    uniform-risk planner that believes the episode lasts
    [factor · lifespan]: plans against [uniform(factor·L)], evaluated
    under [uniform(L)]. Quantifies the cost of optimistic/pessimistic
    horizon estimates. Requires [0 < c < lifespan]. *)
