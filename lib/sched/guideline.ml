type result = {
  schedule : Schedule.t;
  t0 : float;
  expected_work : float;
  bracket : float * float;
  stop : Recurrence.stop_reason;
}

let evaluate ?(obs = Obs.disabled) ?finish lf ~c ~t0 =
  Obs.span obs "plan.evaluate" (fun () ->
      let g = Recurrence.generate ~obs ?finish lf ~c ~t0 in
      let ew =
        Obs.span obs "plan.expected_work" (fun () ->
            Schedule.expected_work ~c lf g.Recurrence.schedule)
      in
      (g, ew))

let plan_with_t0 ?finish lf ~c ~t0 =
  let g, ew = evaluate ?finish lf ~c ~t0 in
  {
    schedule = g.Recurrence.schedule;
    t0;
    expected_work = ew;
    bracket = (t0, t0);
    stop = g.Recurrence.stop;
  }

let plan ?(obs = Obs.disabled) ?(t0_steps = 128) ?finish lf ~c =
  let compute () =
    (* The guideline's three phases, each its own span: Thm 3.2/3.3
       bracketing, the t0 grid-and-refine search (whose evaluations span
       themselves), and the final regeneration at the winner. *)
    let lo, hi =
      Obs.span obs "plan.bracket" (fun () -> Bounds.bracket lf ~c)
    in
    let objective t0 = snd (evaluate ~obs ?finish lf ~c ~t0) in
    let best =
      Obs.span obs "plan.search" (fun () ->
          Optimize.grid_then_refine objective ~lo ~hi ~steps:t0_steps)
    in
    let g, ew = evaluate ~obs ?finish lf ~c ~t0:best.Optimize.x in
    {
      schedule = g.Recurrence.schedule;
      t0 = best.Optimize.x;
      expected_work = ew;
      bracket = (lo, hi);
      stop = g.Recurrence.stop;
    }
  in
  if not (Obs.instrumented obs) then compute ()
  else begin
    let t_start = Obs_clock.now () in
    let r = Obs.span obs "guideline.plan" compute in
    let elapsed = Obs_clock.elapsed_since t_start in
    Obs.incr obs "plan.guideline_calls";
    Obs.observe obs "plan.guideline_seconds" elapsed;
    Obs.emit obs
      (Obs.Event.Plan_computed
         {
           source = "guideline";
           t0 = r.t0;
           periods = Schedule.num_periods r.schedule;
           expected_work = r.expected_work;
           elapsed;
         });
    r
  end

let plan_batch ?(obs = Obs.disabled) ?pool ?domains ?t0_steps ?finish scenarios
    =
  match scenarios with
  | [] -> []
  | _ :: _ ->
      let scen = Array.of_list scenarios in
      let n = Array.length scen in
      (* Dedup identical scenarios (same life function physically, same
         overhead bitwise) before the fan-out: each canonical scenario
         plans once and the result fans back out in input order. The
         unique list keeps first-occurrence order, so the chunk grid —
         and with it bit-identity across domain counts (DESIGN §10) —
         depends only on the scenario list, never on the assignment. *)
      let canon = Array.make n 0 in
      let uniq_rev = ref [] in
      let n_uniq = ref 0 in
      for i = 0 to n - 1 do
        let lf, c = scen.(i) in
        let rec find = function
          | [] -> None
          | j :: rest ->
              let lf', c' = scen.(j) in
              if lf == lf' && Tol.exactly c c' then Some canon.(j)
              else find rest
        in
        match find !uniq_rev with
        | Some u -> canon.(i) <- u
        | None ->
            canon.(i) <- !n_uniq;
            incr n_uniq;
            uniq_rev := i :: !uniq_rev
      done;
      let uniq = Array.of_list (List.rev !uniq_rev) in
      let m = Array.length uniq in
      let slots = Array.make m None in
      (* One unique scenario per chunk: plans are pure in (lf, c), so any
         domain assignment yields the same slot contents; observability
         goes to per-unique-scenario children gathered in that order. *)
      let kids = Obs_fork.scatter obs ~n:m in
      let meter = Obs.metrics obs in
      let accounting = Option.is_some meter || Option.is_some pool in
      Obs.span obs "guideline.plan_batch" (fun () ->
          Domain_pool.run ?pool ?domains ?metrics:meter ~chunks:m (fun u ->
              let lf, c = scen.(uniq.(u)) in
              slots.(u) <-
                Some (plan ~obs:(Obs_fork.child kids u) ?t0_steps ?finish lf ~c));
          let merge_t0 = if accounting then Obs_clock.now () else 0.0 in
          Obs_fork.gather obs kids;
          if accounting then
            Domain_pool.note_merge ?pool ?metrics:meter
              ~seconds:(Obs_clock.elapsed_since merge_t0) ());
      List.init n (fun i ->
          match slots.(canon.(i)) with
          | Some r -> r
          | None -> assert false (* every chunk filled its slot *))

let plan_risk_averse ?(t0_steps = 128) ~lambda_ lf ~c =
  if lambda_ < 0.0 then
    invalid_arg "Guideline.plan_risk_averse: lambda_ must be >= 0";
  let lo, hi = Bounds.bracket lf ~c in
  let score t0 =
    let g = Recurrence.generate lf ~c ~t0 in
    let d = Work_distribution.of_schedule lf ~c g.Recurrence.schedule in
    d.Work_distribution.mean -. (lambda_ *. d.Work_distribution.stddev)
  in
  let best = Optimize.grid_then_refine score ~lo ~hi ~steps:t0_steps in
  let g, ew = evaluate lf ~c ~t0:best.Optimize.x in
  {
    schedule = g.Recurrence.schedule;
    t0 = best.Optimize.x;
    expected_work = ew;
    bracket = (lo, hi);
    stop = g.Recurrence.stop;
  }

let next_period_online ?t0_steps lf ~c ~elapsed =
  if elapsed < 0.0 then
    invalid_arg "Guideline.next_period_online: elapsed must be >= 0";
  let p_elapsed = Life_function.eval lf elapsed in
  if p_elapsed <= 0.0 then None
  else begin
    (* Conditional life function given survival to [elapsed]. Shape is
       inherited: conditioning rescales p by a constant and shifts time,
       both of which preserve concavity/convexity. *)
    let support =
      match Life_function.support lf with
      | Life_function.Bounded l ->
          if l -. elapsed <= c then None
          else Some (Life_function.Bounded (l -. elapsed))
      | Life_function.Unbounded -> Some Life_function.Unbounded
    in
    match support with
    | None -> None
    | Some support ->
        let conditional =
          Life_function.make
            ~name:(Life_function.name lf ^ " | survived")
            ~support
            ~dp:(fun s -> Life_function.deriv lf (elapsed +. s) /. p_elapsed)
            ~shape:(Life_function.shape lf)
            ~validate:false
            (fun s -> Life_function.eval lf (elapsed +. s) /. p_elapsed)
        in
        let r = plan ?t0_steps conditional ~c in
        if r.expected_work > 0.0 && r.t0 > c then Some r.t0 else None
  end
