(** The guideline recurrence — Theorem 3.1 / Corollary 3.1 (eq. 3.6).

    If a schedule is optimal for a differentiable life function [p], its
    period lengths obey

    [p(T_k) = p(T_{k-1}) + (t_{k-1} − c) · p'(T_{k-1})],

    which determines each non-initial period from its predecessor: given the
    previous period's length and end time, the next period [t_k] is the
    unique positive solution of [p(T_{k-1} + t_k) = rhs]. This module solves
    that equation robustly (bracketed Brent on the monotone [p]) and iterates
    it into full schedules; choosing [t_0] is {!Guideline}'s job. *)

type stop_reason =
  | Exhausted_support
      (** The recurrence's right-hand side dropped to [<= 0]: the next
          period would have to end beyond the potential lifespan. *)
  | Unproductive
      (** The previous period was [<= c], so the right-hand side is at
          least [p(T_{k-1})] and no positive solution exists. *)
  | Tail_negligible
      (** [p(T_{k-1})] fell below the truncation threshold (1e-15); further
          periods contribute nothing measurable to expected work. *)
  | Period_cap  (** The [max_periods] budget was hit. *)

type generated = {
  schedule : Schedule.t;
  stop : stop_reason;
}

val next_period :
  Life_function.t -> c:float -> prev_period:float -> prev_end:float ->
  float option
(** [next_period p ~c ~prev_period ~prev_end] solves eq. 3.6 for [t_k],
    where the previous period had length [prev_period] and completed at
    [prev_end]. Returns [None] when the equation has no positive solution
    (right-hand side [<= 0] or [>= p prev_end]). Requires [c >= 0],
    [prev_period > 0], [prev_end >= prev_period]. *)

type finish =
  | Faithful
      (** Stop exactly when the recurrence stops — the paper's guideline. *)
  | Greedy_tail
      (** When the recurrence stops with usable lifespan left, append one
          final period chosen to maximise its own expected contribution
          [(t − c) · p(T + t)] — one of the "ad hoc improvements" the paper
          invites in §5. *)

val generate :
  ?obs:Obs.t ->
  ?max_periods:int ->
  ?finish:finish ->
  Life_function.t -> c:float -> t0:float ->
  generated
(** [generate p ~c ~t0] iterates {!next_period} from the initial period
    [t0], truncating unbounded tails at survival 1e-15 and capping at
    [max_periods] (default 100_000). Periods that come out [<= c] end the
    iteration ({!Unproductive}) but the final sub-[c] period is kept only
    if it still contributes work ([> c] check), matching the Prop 2.1
    normal form. Requires [t0 > 0] and [c >= 0].

    [?obs] (default {!Obs.disabled}): when a span recorder is attached,
    the whole generation is profiled as a [recurrence.generate] span
    carrying the period count and stop reason. *)

val residuals : Life_function.t -> c:float -> Schedule.t -> float array
(** [residuals p ~c s] evaluates, for each consecutive pair of periods, the
    defect [p(T_k) − p(T_{k-1}) − (t_{k-1} − c)·p'(T_{k-1})] — zero (to
    solver tolerance) exactly when the schedule satisfies the guideline
    system. Length is [num_periods s − 1]. *)
