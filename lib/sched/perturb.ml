let shift s ~k ~delta =
  let ts = Schedule.periods s in
  if k < 0 || k >= Array.length ts then
    invalid_arg "Perturb.shift: index out of range";
  let t' = ts.(k) +. delta in
  if t' <= 0.0 then None
  else begin
    ts.(k) <- t';
    Some (Schedule.of_periods ts)
  end

let perturb s ~k ~delta =
  let ts = Schedule.periods s in
  if k < 0 || k + 1 >= Array.length ts then
    invalid_arg "Perturb.perturb: index out of range";
  let a = ts.(k) +. delta and b = ts.(k + 1) -. delta in
  if a <= 0.0 || b <= 0.0 then None
  else begin
    ts.(k) <- a;
    ts.(k + 1) <- b;
    Some (Schedule.of_periods ts)
  end

type margin = { worst_delta : float; worst_k : int; margin : float }

let default_deltas s =
  let ts = Schedule.periods s in
  let tmin = Array.fold_left Float.min ts.(0) ts in
  Array.map (fun f -> f *. tmin) [| 0.001; 0.01; 0.05; 0.25 |]

let sweep ~make ~min_period lf ~c s deltas ~k_limit =
  let e0 = Schedule.expected_work ~c lf s in
  let worst = ref { worst_delta = 0.0; worst_k = -1; margin = infinity } in
  for k = 0 to k_limit - 1 do
    Array.iter
      (fun d ->
        List.iter
          (fun delta ->
            match make s ~k ~delta with
            | None -> ()
            | Some s' ->
                let admissible =
                  Array.for_all (fun t -> t > min_period) (Schedule.periods s')
                in
                if admissible then begin
                  let m = e0 -. Schedule.expected_work ~c lf s' in
                  if m < !worst.margin then
                    worst := { worst_delta = delta; worst_k = k; margin = m }
                end)
          [ d; -.d ])
      deltas
  done;
  if !worst.worst_k < 0 then { worst_delta = 0.0; worst_k = 0; margin = 0.0 }
  else !worst

let perturbation_margin ?deltas ?(min_period = 0.0) lf ~c s =
  let n = Schedule.num_periods s in
  if n < 2 then
    invalid_arg "Perturb.perturbation_margin: need at least 2 periods";
  let deltas = match deltas with Some d -> d | None -> default_deltas s in
  sweep ~make:perturb ~min_period lf ~c s deltas ~k_limit:(n - 1)

let shift_margin ?deltas lf ~c s =
  let n = Schedule.num_periods s in
  let deltas = match deltas with Some d -> d | None -> default_deltas s in
  sweep ~make:shift ~min_period:0.0 lf ~c s deltas ~k_limit:n
