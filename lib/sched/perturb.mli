(** Shifts and perturbations of schedules — the proof machinery of
    Theorems 3.1 and 5.1, made executable.

    A [⟨k, ±δ⟩]-shift lengthens or shortens period [k] alone (changing the
    schedule's total duration); a [[k, ±δ]]-perturbation moves [δ] between
    periods [k] and [k+1] (preserving total duration). Theorem 3.1 derives
    the recurrence by showing optimal schedules beat all shifts; Theorem 5.1
    shows schedules satisfying the recurrence beat all perturbations when
    [p] is concave. The test suite and experiment E7 verify both claims on
    generated schedules. *)

val shift : Schedule.t -> k:int -> delta:float -> Schedule.t option
(** [shift s ~k ~delta] is [S^⟨k,+δ⟩] (or [S^⟨k,−δ⟩] for negative
    [delta]): period [k] becomes [t_k + delta]. [None] if the new period
    would be nonpositive. @raise Invalid_argument if [k] is out of range. *)

val perturb : Schedule.t -> k:int -> delta:float -> Schedule.t option
(** [perturb s ~k ~delta] is [S^[k,+δ]] (negative [delta] gives
    [S^[k,−δ]]): period [k] becomes [t_k + delta] and period [k+1] becomes
    [t_{k+1} − delta]. [None] if either new period would be nonpositive.
    @raise Invalid_argument if [k+1] is out of range. *)

type margin = {
  worst_delta : float;  (** The δ achieving the minimum margin. *)
  worst_k : int;  (** The period index achieving it. *)
  margin : float;
      (** [min E(S) − E(S')] over tested perturbations; nonnegative iff [S]
          beat them all. *)
}

val perturbation_margin :
  ?deltas:float array -> ?min_period:float ->
  Life_function.t -> c:float -> Schedule.t -> margin
(** [perturbation_margin p ~c s] evaluates [E(S) − E(S')] for every
    [[k, ±δ]]-perturbation with δ drawn from [deltas] (default
    [{0.001, 0.01, 0.05, 0.25} × min period]) and returns the worst case —
    the empirical Theorem 5.1 check. Requires at least 2 periods.

    Theorem 5.1 is proved with ordinary subtraction, valid exactly while
    every period stays above [c]; a perturbation that drags a period below
    [c] converts part of it into dead time under eq. 2.1's positive
    subtraction and can "win" without contradicting the theorem. Pass
    [~min_period:c] (as {!Theory.local_optimality_check} does) to restrict
    the sweep to the theorem's domain; the default [0.] sweeps all valid
    schedules. *)

val shift_margin :
  ?deltas:float array -> Life_function.t -> c:float -> Schedule.t -> margin
(** [shift_margin p ~c s] is the same sweep over [⟨k, ±δ⟩]-shifts — the
    empirical Theorem 3.1 optimality precondition. *)
