type t = {
  schedule : Schedule.t;
  tasks_per_period : int array;
  total_tasks : int;
  expected_work : float;
  continuous_expected_work : float;
}

let quantize lf ~c ~task s =
  if task <= 0.0 then invalid_arg "Discretize.quantize: task must be > 0";
  if c < 0.0 then invalid_arg "Discretize.quantize: c must be >= 0";
  let continuous = Schedule.expected_work ~c lf s in
  let periods = Schedule.periods s in
  let kept = ref [] in
  Array.iter
    (fun tk ->
      let w = int_of_float (Float.floor ((tk -. c) /. task)) in
      if w >= 1 then kept := (c +. (float_of_int w *. task), w) :: !kept)
    periods;
  match List.rev !kept with
  | [] ->
      invalid_arg "Discretize.quantize: no period fits a single task"
  | kept ->
      let qs = Schedule.of_periods (Array.of_list (List.map fst kept)) in
      let ws = Array.of_list (List.map snd kept) in
      {
        schedule = qs;
        tasks_per_period = ws;
        total_tasks = Array.fold_left ( + ) 0 ws;
        expected_work = Schedule.expected_work ~c lf qs;
        continuous_expected_work = continuous;
      }

let efficiency q =
  if q.continuous_expected_work <= 0.0 then 1.0
  else q.expected_work /. q.continuous_expected_work

let tasks_capacity q ~task = float_of_int q.total_tasks *. task
