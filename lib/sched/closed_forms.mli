(** The explicit §4 formulas: per-family recurrences, [t_0] brackets, and
    the provably-optimal values re-derived from Bhatt–Chung–Leighton–
    Rosenberg [3]. These are the "paper numbers" that the E1–E5 experiments
    print next to what the generic machinery ({!Bounds}, {!Recurrence},
    {!Optimizer}) computes. *)

(** {1 Polynomial family [p_{d,L}(t) = 1 − t^d/L^d] (§4.1)} *)

val poly_next_period : d:int -> t_prev:float -> t_end_prev:float -> c:float ->
  float
(** The §4.1 instantiation of eq. 3.6:
    [t_k = ((1 + d(t_{k−1}−c)/T_{k−1})^{1/d} − 1) · T_{k−1}].
    Requires [d >= 1], [t_end_prev > 0]. *)

val poly_t0_lower : d:int -> c:float -> lifespan:float -> float
(** The simplified §4.1 lower bound [(c/d)^{1/(d+1)} · L^{d/(d+1)}]. *)

val poly_t0_upper : d:int -> c:float -> lifespan:float -> float
(** The simplified §4.1 upper bound [2·(c/d)^{1/(d+1)} · L^{d/(d+1)} + 1]. *)

(** {1 Uniform risk [p(t) = 1 − t/L] (d = 1 case; §4.1, eqs. 4.4–4.5)} *)

val uniform_next_period : t_prev:float -> c:float -> float
(** Eq. 4.1: [t_k = t_{k−1} − c] — identical to [3]'s optimal recurrence. *)

val uniform_t0_lower : c:float -> lifespan:float -> float
(** [sqrt(cL)] (eq. 4.4, left). *)

val uniform_t0_upper : c:float -> lifespan:float -> float
(** [2·sqrt(cL) + 1] (eq. 4.4, right). *)

val uniform_t0_optimal : c:float -> lifespan:float -> float
(** [sqrt(2cL)] — [3]'s optimal initial period up to low-order terms
    (eq. 4.5). *)

val uniform_optimal_m : c:float -> lifespan:float -> int
(** [⌊sqrt(2L/c + 1/4) + 1/2⌋] — the optimal period count for the uniform
    scenario ([3]; the paper notes Cor 5.3 is this with ceilings). *)

(** {1 Geometric-decreasing [p_a(t) = a^{−t}] (§4.2)} *)

val geo_dec_next_period : a:float -> t_prev:float -> c:float -> float option
(** The guideline recurrence in explicit form (eq. 4.6):
    [a^{−t_k} = 1 + c·ln a − t_{k−1}·ln a], hence
    [t_k = −log_a(1 + (c − t_{k−1})·ln a)]. [None] when the right-hand side
    leaves [(0, 1]], i.e. when [t_{k−1} >= c + 1/ln a]. Requires [a > 1]. *)

val geo_dec_t0_lower : a:float -> c:float -> float
(** [sqrt(c²/4 + c/ln a) + c/2] (§4.2). *)

val geo_dec_t0_upper : a:float -> c:float -> float
(** [c + 1/ln a] (§4.2) — remarkably close to the optimal value. *)

val geo_dec_t_optimal : a:float -> c:float -> float
(** The exact optimal (all-equal) period from [3]: the unique positive
    solution of [t + a^{−t}/ln a = c + 1/ln a], obtained in closed form via
    the principal Lambert-W branch. Requires [a > 1], [c > 0]. *)

(** {1 Geometric-increasing risk [p(t) = (2^L − 2^t)/(2^L − 1)] (§4.3)} *)

val geo_inc_next_period_guideline : t_prev:float -> c:float -> float option
(** Eq. 4.7: [t_{k+1} = log₂((t_k − c)·ln 2 + 1)]; [None] when the argument
    is [<= 1] (period would not be positive). *)

val geo_inc_next_period_optimal : t_prev:float -> c:float -> float option
(** [3]'s optimal recurrence: [t_{k+1} = log₂(t_k − c + 2)]; [None] when
    the argument is [<= 1]. *)

val geo_inc_t0_estimate : lifespan:float -> float
(** The §4.3 asymptotic estimate [t_0 ≈ L / (log₂ L)²] (up to low-order
    additive terms). Requires [lifespan > 1]. *)
