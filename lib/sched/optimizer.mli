(** Brute-force ground truth: direct numerical maximisation of expected
    work over period vectors.

    Knows nothing about the recurrence or the [t_0] bounds — it ascends
    [E(t_0, ..., t_{m−1}; p)] coordinate-wise for each candidate period
    count [m] and keeps the best. The agreement between this optimiser, the
    {!Exact} re-derivations, and the {!Guideline} pipeline is the central
    validation of the reproduction (experiments E1–E6). Exhaustive, so
    intended for the modest problem sizes of the paper's scenarios. *)

type t = {
  schedule : Schedule.t;
  expected_work : float;
  m : int;  (** Period count of the winning schedule. *)
  sweeps : int;  (** Total coordinate-ascent sweeps spent. *)
}

val optimal_schedule :
  ?obs:Obs.t ->
  ?pool:Domain_pool.t ->
  ?m_max:int ->
  ?patience:int ->
  ?tol:float ->
  Life_function.t -> c:float ->
  t
(** [optimal_schedule p ~c] searches period counts [m = 1, 2, ...]:
    for each [m] it seeds an equal split of the horizon and runs coordinate
    ascent (periods bounded in [(0, horizon]]; completion times beyond a
    bounded lifespan are harmless since [p] is 0 there). The [m]-scan stops
    after [patience] (default 3) consecutive counts without improvement, or
    at [m_max] (default: the Corollary 5.3 bound for concave [p], else 64).
    Requires [0 < c < horizon p].

    The returned schedule is in Proposition 2.1 productive normal form.

    [?pool] runs the search on a {!Domain_pool}: the four multi-start
    seeds of each count ascend concurrently, and consecutive counts are
    evaluated speculatively in blocks sized by the patience still
    remaining — a block the serial scan would provably also have
    evaluated in full. The winning schedule, [m] and [sweeps] are
    bit-identical to the serial search; only wall time changes. A
    one-domain pool (or no pool) takes the untouched serial path.

    [?obs] (default {!Obs.disabled}) records the search: a
    [Plan_computed] event (source ["optimizer"]) plus the
    [plan.optimizer_calls], [optimizer.sweeps], and
    [plan.optimizer_seconds] metrics; a span recorder sees per-count
    [optimizer.sweep] spans (serial) or per-block [optimizer.block]
    spans (parallel). The result is unaffected. *)

val expected_work_of_vector :
  Life_function.t -> c:float -> float array -> float
(** [expected_work_of_vector p ~c ts] evaluates eq. 2.1 directly on a raw
    period vector (no positivity validation; nonpositive entries contribute
    no work but still consume time). Exposed for property tests comparing
    optimisation objectives. *)
