(** A numerical probe of the paper's §6 open question: {e are optimal
    cycle-stealing schedules unique?}

    Theorem 3.1 reduces the question to initial periods: distinct optimal
    schedules must have distinct [t_0] (each [t_0] determines the rest via
    eq. 3.6). This probe therefore maps the value function
    [V(t_0) = E(recurrence-schedule from t_0; p)] over the Theorem 3.2/3.3
    bracket and reports the set of near-optimal [t_0] as clusters: a single
    narrow cluster is (numerical) evidence of uniqueness, several separated
    clusters would witness non-uniqueness.

    The paper notes each of its [3]-scenarios admits a unique optimal
    schedule, proved by scenario-specific arguments; experiment E17 runs
    this probe across all of them and finds a single cluster each time. *)

type cluster = {
  t0_low : float;  (** Left edge of the near-optimal t0 interval. *)
  t0_high : float;  (** Right edge. *)
  best_t0 : float;  (** The best sample inside the cluster. *)
  best_value : float;  (** Expected work at [best_t0]. *)
}

type probe = {
  clusters : cluster list;  (** Near-optimal clusters, left to right. *)
  max_value : float;  (** The global maximum of the value map. *)
  samples : int;  (** Grid resolution used. *)
  rel_tol : float;  (** Near-optimality threshold used. *)
}

val probe :
  ?samples:int -> ?rel_tol:float -> Life_function.t -> c:float -> probe
(** [probe p ~c] samples [V] on [samples] (default 512) grid points of the
    t0 bracket and clusters the points with
    [V >= (1 − rel_tol) · max V] (default [rel_tol] 1e-4; adjacent
    near-optimal grid points join the same cluster).
    Requires [0 < c < horizon p]. *)

val unique : ?samples:int -> ?rel_tol:float -> Life_function.t -> c:float ->
  bool
(** [unique p ~c] is [true] iff {!probe} finds exactly one cluster. *)
