type t = {
  schedule : Schedule.t;
  ratio : float;
  grace : float;
  horizon : float;
}

let work_if_killed_at s ~c t =
  let ends = Schedule.completion_times s in
  let periods = Schedule.periods s in
  let acc = Kahan.create () in
  (try
     Array.iteri
       (fun i e ->
         if e <= t then Kahan.add acc (Schedule.positive_sub periods.(i) c)
         else raise Exit)
       ends
   with Exit -> ());
  Kahan.total acc

(* The ratio W_S(t)/(t - c) is piecewise decreasing in t between
   completions (numerator constant, denominator growing), so the infimum
   over [grace, horizon] is attained at t = grace, just before each later
   completion, and at the horizon. "Just before T_k" compares the work
   banked strictly before T_k against an omniscient run to that instant. *)
let competitive_ratio s ~c ~grace ~horizon =
  if not (grace > c) then
    invalid_arg "Worst_case.competitive_ratio: grace must exceed c";
  if not (horizon >= grace) then
    invalid_arg "Worst_case.competitive_ratio: horizon must be >= grace";
  let ends = Schedule.completion_times s in
  let periods = Schedule.periods s in
  let n = Array.length periods in
  let denom t = Float.max 1e-300 (t -. c) in
  let worst = ref (work_if_killed_at s ~c grace /. denom grace) in
  for k = 0 to n - 1 do
    if ends.(k) > grace && ends.(k) <= horizon then begin
      let w_before =
        work_if_killed_at s ~c (ends.(k) *. (1.0 -. 1e-12) -. 1e-12)
      in
      worst := Float.min !worst (w_before /. denom ends.(k))
    end
  done;
  worst := Float.min !worst (work_if_killed_at s ~c horizon /. denom horizon);
  Float.max 0.0 !worst

let geometric_schedule ~horizon ~t0 ~factor =
  if t0 <= 0.0 then invalid_arg "Worst_case.geometric_schedule: t0 must be > 0";
  if factor < 1.0 then
    invalid_arg "Worst_case.geometric_schedule: factor must be >= 1";
  if horizon < t0 then
    invalid_arg "Worst_case.geometric_schedule: horizon < t0";
  let rev = ref [] in
  let elapsed = ref 0.0 in
  let t = ref t0 in
  let continue = ref true in
  while !continue do
    if !elapsed +. !t >= horizon then begin
      let last = horizon -. !elapsed in
      if last > 0.0 then rev := last :: !rev;
      continue := false
    end
    else begin
      rev := !t :: !rev;
      (* Running end-time for a geometric schedule; the final period is
         clamped to [horizon -. elapsed], so drift cannot overrun. *)
      (elapsed := !elapsed +. !t) [@lint.allow "R2"];
      t := !t *. factor;
      if List.length !rev > 10_000 then continue := false
    end
  done;
  Schedule.of_periods (Array.of_list (List.rev !rev))

let plan ?(polish = true) ?grace ~c ~horizon () =
  let grace = match grace with Some g -> g | None -> 5.0 *. c in
  if not (grace > c) then invalid_arg "Worst_case.plan: grace must exceed c";
  if not (horizon > grace) then
    invalid_arg "Worst_case.plan: horizon must exceed grace";
  let eval t0 factor =
    if t0 <= 0.0 || t0 > horizon then neg_infinity
    else
      competitive_ratio
        (geometric_schedule ~horizon ~t0 ~factor)
        ~c ~grace ~horizon
  in
  (* Outer grid over the growth factor, inner 1-D refinement over t0. The
     first period must complete within the grace window to bank anything
     by then, so t0 ranges over (c, grace]. *)
  let best = ref (neg_infinity, grace, 1.5) in
  List.iter
    (fun factor ->
      let p =
        Optimize.grid_then_refine
          (fun t0 -> eval t0 factor)
          ~lo:(c *. 1.001) ~hi:grace ~steps:128
      in
      let r, _, _ = !best in
      if p.Optimize.fx > r then best := (p.Optimize.fx, p.Optimize.x, factor))
    [ 1.0; 1.1; 1.2; 1.3; 1.4; 1.5; 1.6; 1.8; 2.0; 2.2; 2.5; 3.0; 4.0 ];
  let ratio0, t0, factor = !best in
  let seed = geometric_schedule ~horizon ~t0 ~factor in
  let schedule, ratio =
    if not polish then (seed, ratio0)
    else begin
      (* Coordinate ascent on the raw periods; the objective is piecewise
         smooth in each period so the grid+refine line search applies. *)
      let m = Schedule.num_periods seed in
      let objective ts =
        if Array.exists (fun t -> t <= 0.0) ts then neg_infinity
        else competitive_ratio (Schedule.of_periods ts) ~c ~grace ~horizon
      in
      let lower = Array.make m (c /. 100.0) in
      let upper = Array.make m horizon in
      let xs, r =
        Optimize.coordinate_ascent ~f:objective ~lower ~upper
          (Schedule.periods seed)
      in
      if r > ratio0 then (Schedule.of_periods xs, r) else (seed, ratio0)
    end
  in
  { schedule; ratio; grace; horizon }
