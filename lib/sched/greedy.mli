(** The §6 "greedy" scheduling recipe.

    Choose each period myopically: [t_k] maximises that period's own
    expected contribution [(t − c)·p(T_{k−1} + t)], ignoring everything
    after it. The paper poses as an open question how good greedy schedules
    are, noting they are optimal for the geometric-decreasing scenario but
    not for uniform risk; experiment E9 quantifies both claims. *)

type t = {
  schedule : Schedule.t;
  expected_work : float;
}

val plan : ?max_periods:int -> Life_function.t -> c:float -> t
(** [plan p ~c] builds the greedy schedule, stopping when no remaining
    period has positive expected contribution, when survival falls below
    1e-15, or at [max_periods] (default 100_000).
    Requires [0 < c < horizon p].
    @raise Invalid_argument if even the first greedy period cannot be
    productive (i.e. [c] at or beyond the horizon). *)

val first_period : Life_function.t -> c:float -> elapsed:float -> float option
(** [first_period p ~c ~elapsed] is the single greedy step from time
    [elapsed]: the maximiser of [(t − c)·p(elapsed + t)] over [t > c], or
    [None] when no choice has positive value. *)
