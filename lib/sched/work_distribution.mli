(** The full probability distribution of an episode's banked work — the
    risk profile behind the paper's expectation objective.

    Under the draconian contract the banked work of schedule
    [S = t_0, ..., t_{m-1}] is a discrete random variable: it equals the
    cumulative work [W_k = Σ_{i<=k} (t_i ⊖ c)] exactly when the owner
    returns in [(T_k, T_{k+1}]] (and [W_{m-1}] when never returning within
    the support). Its law is therefore closed-form in [p]:

    [P(work = W_k) = p(T_k) − p(T_{k+1})], with [P(work = 0) = 1 − p(T_0)]
    and [P(work = W_{m-1}) = p(T_{m-1})].

    Expectations recover eq. 2.1 (the test suite enforces the identity),
    and quantiles/variance expose what the expectation hides: e.g. the
    all-or-nothing risk of long periods. Experiment E21 compares policies
    on this risk profile. *)

type t = {
  outcomes : (float * float) array;
      (** [(work, probability)] pairs, work strictly increasing, starting
          with the zero-work outcome when it has positive probability;
          probabilities sum to 1. *)
  mean : float;
  variance : float;
  stddev : float;
}

val of_schedule : Life_function.t -> c:float -> Schedule.t -> t
(** [of_schedule p ~c s] computes the exact law. Consecutive periods with
    equal cumulative work (unproductive periods) are merged into one
    outcome. Requires [c >= 0]. *)

val prob_at_least : t -> float -> float
(** [prob_at_least d w] is [P(work >= w)]. *)

val quantile : t -> q:float -> float
(** [quantile d ~q] is the smallest outcome [w] with [P(work <= w) >= q].
    Requires [0 <= q <= 1]. *)

val prob_zero : t -> float
(** [prob_zero d] is [P(work = 0)] — the chance the whole episode is
    wasted. *)
