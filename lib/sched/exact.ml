type t = {
  schedule : Schedule.t;
  expected_work : float;
  t0 : float;
  description : string;
}

let arithmetic_schedule ~c ~lifespan ~m =
  (* m periods summing exactly to L with decrement c:
     t_0 = L/m + (m-1)c/2, t_i = t_0 - i*c. Valid iff t_{m-1} > 0. *)
  let mf = float_of_int m in
  let t0 = (lifespan /. mf) +. ((mf -. 1.0) *. c /. 2.0) in
  let last = t0 -. ((mf -. 1.0) *. c) in
  if last <= 0.0 then None
  else
    Some (Schedule.of_periods (Array.init m (fun i -> t0 -. (float_of_int i *. c))))

let uniform ~c ~lifespan =
  if not (c > 0.0 && c < lifespan) then
    invalid_arg "Exact.uniform: requires 0 < c < lifespan";
  let lf = Families.uniform ~lifespan in
  let m_formula = Closed_forms.uniform_optimal_m ~c ~lifespan in
  (* The closed-form m is optimal; evaluating m-2 .. m+2 guards against the
     floor/ceil boundary and costs nothing. *)
  let best = ref None in
  for m = Int.max 1 (m_formula - 2) to m_formula + 2 do
    match arithmetic_schedule ~c ~lifespan ~m with
    | None -> ()
    | Some s ->
        let ew = Schedule.expected_work ~c lf s in
        (match !best with
        | Some (_, best_ew, _) when best_ew >= ew -> ()
        | Some _ | None -> best := Some (s, ew, m))
  done;
  match !best with
  | None ->
      (* c so large that even a single period cannot be positive: cannot
         happen since m = 1 always yields t_0 = L > 0. *)
      assert false
  | Some (s, ew, m) ->
      {
        schedule = s;
        expected_work = ew;
        t0 = Schedule.period s 0;
        description =
          Printf.sprintf
            "uniform-risk optimal: %d arithmetic periods, decrement c" m;
      }

let geometric_decreasing ~c ~a =
  if a <= 1.0 then invalid_arg "Exact.geometric_decreasing: requires a > 1";
  if c <= 0.0 then invalid_arg "Exact.geometric_decreasing: requires c > 0";
  let t_star = Closed_forms.geo_dec_t_optimal ~a ~c in
  if t_star <= c then
    invalid_arg
      "Exact.geometric_decreasing: optimal period does not exceed c (no \
       productive schedule exists)";
  let q = Float.pow a (-.t_star) in
  (* Exact E for the infinite equal-period schedule:
     sum_{k>=1} (t*-c) q^k = (t*-c) q / (1-q). *)
  let exact_ew = (t_star -. c) *. q /. (1.0 -. q) in
  let n_periods =
    (* q^n < 1e-15: periods beyond this contribute nothing at double
       precision. *)
    Int.max 1 (int_of_float (Float.ceil (log 1e-15 /. log q)))
  in
  let n_periods = Int.min n_periods 2_000_000 in
  let schedule = Schedule.of_periods (Array.make n_periods t_star) in
  {
    schedule;
    expected_work = exact_ew;
    t0 = t_star;
    description =
      Printf.sprintf
        "geometric-decreasing optimal: equal periods t* = %.6g (Lambert W)"
        t_star;
  }

let geo_inc_schedule ~c ~lifespan ~t0 =
  (* Follow [3]'s recurrence while periods are productive and fit in L. *)
  let rev = ref [] in
  let elapsed = ref 0.0 in
  let t = ref t0 in
  let continue = ref true in
  while !continue do
    if !t <= 0.0 || !elapsed +. !t > lifespan +. 1e-12 then continue := false
    else begin
      rev := !t :: !rev;
      (* Running end-time over a handful of same-scale periods, checked
         against the lifespan with an explicit 1e-12 slack; compensation
         could not move the truncation decision. *)
      (elapsed := !elapsed +. !t) [@lint.allow "R2"];
      match Closed_forms.geo_inc_next_period_optimal ~t_prev:!t ~c with
      | None -> continue := false
      | Some next -> t := next
    end
  done;
  match !rev with
  | [] -> None
  | l -> Some (Schedule.of_periods (Array.of_list (List.rev l)))

let geometric_increasing ~c ~lifespan =
  if not (c > 0.0 && c < lifespan) then
    invalid_arg "Exact.geometric_increasing: requires 0 < c < lifespan";
  let lf = Families.geometric_increasing ~lifespan in
  let objective t0 =
    match geo_inc_schedule ~c ~lifespan ~t0 with
    | None -> neg_infinity
    | Some s -> Schedule.expected_work ~c lf s
  in
  let best =
    Optimize.grid_then_refine objective ~lo:(c *. (1.0 +. 1e-9)) ~hi:lifespan
      ~steps:512
  in
  match geo_inc_schedule ~c ~lifespan ~t0:best.Optimize.x with
  | None ->
      invalid_arg
        "Exact.geometric_increasing: no productive schedule exists for these \
         parameters"
  | Some s ->
      {
        schedule = s;
        expected_work = Schedule.expected_work ~c lf s;
        t0 = best.Optimize.x;
        description =
          Printf.sprintf
            "geometric-increasing optimal structure: recurrence t' = \
             log2(t - c + 2), %d periods"
            (Schedule.num_periods s);
      }
