type point = {
  perturbation : float;
  planned_with : float;
  efficiency : float;
}

let default_factors = [| 0.25; 0.5; 0.8; 1.0; 1.25; 2.0; 4.0 |]

let c_misspecification ?(factors = default_factors) lf ~c =
  if c <= 0.0 then invalid_arg "Sensitivity.c_misspecification: c must be > 0";
  let horizon = Life_function.horizon lf in
  if c >= horizon then
    invalid_arg "Sensitivity.c_misspecification: c >= horizon";
  let baseline =
    Schedule.expected_work ~c lf (Guideline.plan lf ~c).Guideline.schedule
  in
  Array.to_list factors
  |> List.filter_map (fun factor ->
         let c' = factor *. c in
         if c' <= 0.0 || c' >= horizon then None
         else begin
           let plan = Guideline.plan lf ~c:c' in
           (* The plan was built believing c'; reality charges c. *)
           let achieved = Schedule.expected_work ~c lf plan.Guideline.schedule in
           Some
             {
               perturbation = factor;
               planned_with = c';
               efficiency =
                 (if baseline > 0.0 then achieved /. baseline else 1.0);
             }
         end)

let lifespan_misspecification ?(factors = default_factors) ~lifespan c =
  if not (c > 0.0 && c < lifespan) then
    invalid_arg
      "Sensitivity.lifespan_misspecification: requires 0 < c < lifespan";
  let truth = Families.uniform ~lifespan in
  let baseline =
    Schedule.expected_work ~c truth (Guideline.plan truth ~c).Guideline.schedule
  in
  Array.to_list factors
  |> List.filter_map (fun factor ->
         let l' = factor *. lifespan in
         if l' <= c then None
         else begin
           let believed = Families.uniform ~lifespan:l' in
           let plan = Guideline.plan believed ~c in
           let achieved =
             Schedule.expected_work ~c truth plan.Guideline.schedule
           in
           Some
             {
               perturbation = factor;
               planned_with = l';
               efficiency =
                 (if baseline > 0.0 then achieved /. baseline else 1.0);
             }
         end)
