(** The noise-aware bench regression gate: compare two
    {!Bench_record} runs and classify every shared benchmark as a
    regression, an improvement, or within noise.

    The tolerance is per-benchmark: a fit you can trust (r² near 1) is
    held to the base tolerance, while a noisy fit widens its own band —
    [tol = base + noise_scale · (1 − min(r²_old, r²_new))]. With the
    defaults (base 0.15, noise_scale 0.85) a clean benchmark flags at a
    ±15% shift, while the seed's [reclaim-draw] at r² ≈ 0.34 would need
    a ~71% shift — the gate never cries wolf on a benchmark whose own
    timing data is mush. Verdicts are symmetric in log-space: regression
    when [new/old > 1 + tol], improvement when [new/old < 1/(1 + tol)].

    A fit that fails {!Bench_fit.reliable_r2} on either side (r² nan or
    negative — degenerate sampling, not mere noise) is not compared at
    all: it lands in {!report.unreliable} and is reported as an
    advisory, because the maximal widening such an r² would earn is
    indistinguishable from switching the gate off while still printing
    a verdict. *)

type verdict = Regression | Improvement | Within_noise

type comparison = {
  bench_name : string;
  old_ns : float;
  new_ns : float;
  ratio : float;  (** [new_ns / old_ns]. *)
  tolerance : float;  (** The widened fractional tolerance applied. *)
  verdict : verdict;
}

type report = {
  compared : comparison list;  (** Name-sorted. *)
  only_old : string list;  (** Benchmarks that disappeared. *)
  only_new : string list;  (** Benchmarks that appeared. *)
  skipped : string list;  (** Shared but with non-positive/NaN ns. *)
  unreliable : string list;
      (** Shared, timing usable, but one side's fit fails
          {!Bench_fit.reliable_r2}; excluded from verdicts, listed as an
          advisory note by {!pp}. *)
  regressions : int;
  improvements : int;
}

val compare_runs :
  ?base_tolerance:float ->
  ?noise_scale:float ->
  old_run:Bench_record.t ->
  new_run:Bench_record.t ->
  unit ->
  report
(** Requires [base_tolerance > 0] and [noise_scale >= 0]. *)

val has_regressions : report -> bool

val verdict_label : verdict -> string
(** ["REGRESSION"], ["improvement"], ["ok"]. *)

val pp : Format.formatter -> report -> unit
(** The diff table: one line per compared benchmark (old, new, ratio,
    tolerance, verdict), then appeared/disappeared/skipped notes and a
    one-line summary. Deterministic given the two records. *)
