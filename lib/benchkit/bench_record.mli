(** Machine-readable benchmark run records: the schema behind
    [BENCH_T1.json] and the append-only [BENCH_HISTORY.jsonl]
    trajectory.

    A record stamps one timing-suite run with enough environment to make
    cross-run comparison honest — git SHA, OCaml version, hostname,
    sampling quota — plus the per-benchmark estimates (ns/call and the
    fit's r², which {!Bench_gate} uses to widen tolerances for noisy
    fits). Schema v2; v1 files (PR 1, no SHA/hostname) still load with
    ["unknown"] placeholders so the gate can diff across the boundary. *)

type entry = {
  ns_per_call : float;
  r_square : float;
  advisory : bool;
      (** The fit behind this estimate was not {!Bench_fit.reliable} —
          too few kept samples or worse-than-constant r². Consumers that
          divide through the fit quality ([csbench trend], {!Bench_gate})
          must treat the point as informational, never as a gating or
          slope input. Serialized as an explicit ["advisory": true]
          field; absent means derived from [r_square] on load, so v1/v2
          files without the field still classify correctly. *)
}

type t = {
  schema : int;
  suite : string;
  ocaml : string;
  git_sha : string;
  hostname : string;
  quota_seconds : float;
  unix_time : float;
  results : (string * entry) list;  (** Sorted by benchmark name. *)
}

val schema_version : int
(** Currently [2]. *)

val make :
  ?suite:string ->
  ocaml:string ->
  git_sha:string ->
  hostname:string ->
  quota_seconds:float ->
  unix_time:float ->
  (string * entry) list ->
  t
(** Build a v2 record (suite defaults to ["T1"]); results are sorted. *)

val to_json : t -> Jsonx.t

val of_json : Jsonx.t -> (t, string) result
(** Accepts schema v1 (missing [git_sha]/[hostname] become ["unknown"])
    and v2; rejects anything else or ill-typed fields. *)

val load : string -> (t, string) result
(** Read and parse one record from a JSON file. *)

val save : string -> t -> unit
(** Write the record (one line + newline) to a file, replacing it. *)

val append_history : string -> t -> unit
(** Append the record as one JSONL line, creating the file if needed —
    the bench trajectory grows by one point per timing run. *)

val load_history : string -> (t list, string) result
(** All records of a JSONL history file, oldest first; blank lines are
    ignored and the error names the first malformed line. *)
