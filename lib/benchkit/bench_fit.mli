(** Robust per-call time estimation for microbenchmark samples.

    A Bechamel-style sampler hands us pairs [(runs_i, nanos_i)]: the
    wall nanoseconds [nanos_i] spent executing the benchmarked thunk
    [runs_i] times. The per-call cost is the slope of the
    through-the-origin regression [nanos ≈ slope · runs]. On a quiet
    machine plain OLS is fine; on a shared one, preemption and GC pauses
    inject large upward outliers that both bias the slope and destroy
    [r²] — [reclaim-draw] fitting at r² ≈ 0.34 in the seed BENCH_T1 is
    exactly this failure. {!trimmed} discards samples whose per-call rate
    falls outside central quantiles before fitting, which restores the
    fit on noisy hosts while being a no-op on clean data. *)

type fit = {
  ns_per_run : float;  (** Through-origin OLS slope over the kept samples. *)
  r_square : float;
      (** Coefficient of determination of the kept samples about their
          mean; [nan] when undefined (fewer than {!min_samples} samples
          or zero variance). *)
  kept : int;  (** Samples surviving the trim. *)
  total : int;  (** Samples supplied. *)
}

val min_samples : int
(** Minimum kept samples ([4]) for [r_square] to be reported at all.
    Below this the residual has too few degrees of freedom: a single
    straggler can drive r² arbitrarily negative (the seed BENCH_T1
    carried an r² of −5.5 from a 2-sample fit), which is noise
    masquerading as a diagnosis. Such fits keep their slope but report
    [r_square = nan]. *)

val reliable : fit -> bool
(** A fit whose [r_square] is finite and non-negative — i.e. measured
    from enough samples and not worse-than-constant. {!Bench_gate}
    refuses to classify comparisons involving unreliable fits instead of
    silently widening tolerance to the maximum. *)

val reliable_r2 : float -> bool
(** {!reliable} on a bare r² (for callers holding a recorded r² rather
    than a full fit, e.g. {!Bench_gate} reading [BENCH_T1.json]). *)

val ols : runs:float array -> nanos:float array -> fit
(** Plain through-the-origin least squares over all samples. Arrays must
    have equal positive length; runs must be [> 0].
    @raise Invalid_argument otherwise. *)

val trimmed :
  ?lo_q:float -> ?hi_q:float -> runs:float array -> nanos:float array -> unit ->
  fit
(** [trimmed ~runs ~nanos ()] drops samples whose rate [nanos/runs] lies
    below the [lo_q] (default [0.02]) or above the [hi_q] (default
    [0.85]) quantile of all rates — microbenchmark noise is one-sided, so
    the upper trim is the aggressive one — then fits {!ols} on the rest.
    With fewer than 8 samples no trimming is applied. Requires
    [0 <= lo_q < hi_q <= 1]. *)
