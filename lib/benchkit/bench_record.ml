type entry = { ns_per_call : float; r_square : float; advisory : bool }

type t = {
  schema : int;
  suite : string;
  ocaml : string;
  git_sha : string;
  hostname : string;
  quota_seconds : float;
  unix_time : float;
  results : (string * entry) list;
}

let schema_version = 2

let make ?(suite = "T1") ~ocaml ~git_sha ~hostname ~quota_seconds ~unix_time
    results =
  {
    schema = schema_version;
    suite;
    ocaml;
    git_sha;
    hostname;
    quota_seconds;
    unix_time;
    results =
      List.sort (fun (a, _) (b, _) -> String.compare a b) results;
  }

let json_num x = if Float.is_finite x then Jsonx.Float x else Jsonx.Null

let to_json t =
  Jsonx.Obj
    [
      ("v", Jsonx.Int t.schema);
      ("suite", Jsonx.String t.suite);
      ("ocaml", Jsonx.String t.ocaml);
      ("git_sha", Jsonx.String t.git_sha);
      ("hostname", Jsonx.String t.hostname);
      ("quota_seconds", Jsonx.Float t.quota_seconds);
      ("unix_time", Jsonx.Float t.unix_time);
      ( "results",
        Jsonx.Obj
          (List.map
             (fun (name, r) ->
               ( name,
                 Jsonx.Obj
                   (("ns_per_call", json_num r.ns_per_call)
                   :: ("r_square", json_num r.r_square)
                   ::
                   (if r.advisory then [ ("advisory", Jsonx.Bool true) ]
                    else [])) ))
             t.results) );
    ]

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (Jsonx.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let num_or_nan name j =
  (* ns_per_call / r_square are written as null when non-finite. *)
  match Jsonx.member name j with
  | Some Jsonx.Null -> Ok Float.nan
  | Some v -> (
      match Jsonx.get_float v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S is not a number" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let of_json j =
  let* v = field "v" Jsonx.get_int j in
  let* () =
    if v = 1 || v = schema_version then Ok ()
    else Error (Printf.sprintf "unsupported bench schema v%d" v)
  in
  let* suite = field "suite" Jsonx.get_string j in
  let* ocaml = field "ocaml" Jsonx.get_string j in
  let str_default name default =
    match Jsonx.member name j with
    | None -> Ok default
    | Some s -> (
        match Jsonx.get_string s with
        | Some s -> Ok s
        | None -> Error (Printf.sprintf "field %S is not a string" name))
  in
  let* git_sha = str_default "git_sha" "unknown" in
  let* hostname = str_default "hostname" "unknown" in
  let* quota_seconds = field "quota_seconds" Jsonx.get_float j in
  let* unix_time = field "unix_time" Jsonx.get_float j in
  let* results =
    match Jsonx.member "results" j with
    | Some (Jsonx.Obj kvs) ->
        List.fold_left
          (fun acc (name, rj) ->
            let* acc = acc in
            let* ns_per_call = num_or_nan "ns_per_call" rj in
            let* r_square = num_or_nan "r_square" rj in
            let* advisory =
              match Jsonx.member "advisory" rj with
              | None -> Ok (not (Bench_fit.reliable_r2 r_square))
              | Some b -> (
                  match Jsonx.get_bool b with
                  | Some b -> Ok b
                  | None -> Error "field \"advisory\" is not a boolean")
            in
            Ok ((name, { ns_per_call; r_square; advisory }) :: acc))
          (Ok []) kvs
    | Some _ | None -> Error "missing or ill-typed field \"results\""
  in
  Ok
    {
      schema = v;
      suite;
      ocaml;
      git_sha;
      hostname;
      quota_seconds;
      unix_time;
      results =
        List.sort (fun (a, _) (b, _) -> String.compare a b) results;
    }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | text ->
      let* j = Jsonx.of_string text in
      Result.map_error (fun e -> path ^ ": " ^ e) (of_json j)

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Jsonx.to_string (to_json t) ^ "\n"))

let append_history path t =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Jsonx.to_string (to_json t) ^ "\n"))

let load_history path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | text ->
      let lines = String.split_on_char '\n' text in
      let rec go n acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest ->
            if String.trim line = "" then go (n + 1) acc rest
            else begin
              match Result.bind (Jsonx.of_string line) of_json with
              | Ok t -> go (n + 1) (t :: acc) rest
              | Error e -> Error (Printf.sprintf "%s:%d: %s" path n e)
            end
      in
      go 1 [] lines
