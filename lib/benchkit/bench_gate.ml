type verdict = Regression | Improvement | Within_noise

type comparison = {
  bench_name : string;
  old_ns : float;
  new_ns : float;
  ratio : float;
  tolerance : float;
  verdict : verdict;
}

type report = {
  compared : comparison list;
  only_old : string list;
  only_new : string list;
  skipped : string list;
  unreliable : string list;
  regressions : int;
  improvements : int;
}

let usable x = Float.is_finite x && x > 0.0

let r2_effective a b =
  Float.min (Float.max 0.0 (Float.min 1.0 a)) (Float.max 0.0 (Float.min 1.0 b))

let compare_runs ?(base_tolerance = 0.15) ?(noise_scale = 0.85) ~old_run
    ~new_run () =
  if not (base_tolerance > 0.0) then
    invalid_arg "Bench_gate.compare_runs: base_tolerance must be > 0";
  if noise_scale < 0.0 then
    invalid_arg "Bench_gate.compare_runs: noise_scale must be >= 0";
  let old_results = old_run.Bench_record.results in
  let new_results = new_run.Bench_record.results in
  let only_old =
    List.filter_map
      (fun (name, _) ->
        if List.mem_assoc name new_results then None else Some name)
      old_results
  in
  let only_new =
    List.filter_map
      (fun (name, _) ->
        if List.mem_assoc name old_results then None else Some name)
      new_results
  in
  let compared, skipped, unreliable =
    List.fold_left
      (fun (cmp, skip, unrel) (name, (o : Bench_record.entry)) ->
        match List.assoc_opt name new_results with
        | None -> (cmp, skip, unrel)
        | Some (n : Bench_record.entry) ->
            if not (usable o.Bench_record.ns_per_call && usable n.Bench_record.ns_per_call)
            then (cmp, name :: skip, unrel)
            else if
              not
                (Bench_fit.reliable_r2 o.Bench_record.r_square
                && Bench_fit.reliable_r2 n.Bench_record.r_square)
            then
              (* A nan or negative r² means the fit never measured
                 anything — folding it into the tolerance (old
                 behaviour) silently turned the gate off for that
                 benchmark while still printing a verdict. Refuse to
                 classify instead and say so. *)
              (cmp, skip, name :: unrel)
            else begin
              let ratio = n.Bench_record.ns_per_call /. o.Bench_record.ns_per_call in
              let tolerance =
                base_tolerance
                +. noise_scale
                   *. (1.0
                      -. r2_effective o.Bench_record.r_square
                           n.Bench_record.r_square)
              in
              let verdict =
                if ratio > 1.0 +. tolerance then Regression
                else if ratio < 1.0 /. (1.0 +. tolerance) then Improvement
                else Within_noise
              in
              ( {
                  bench_name = name;
                  old_ns = o.Bench_record.ns_per_call;
                  new_ns = n.Bench_record.ns_per_call;
                  ratio;
                  tolerance;
                  verdict;
                }
                :: cmp,
                skip,
                unrel )
            end)
      ([], [], []) old_results
  in
  let compared = List.rev compared in
  let count v =
    List.length (List.filter (fun c -> c.verdict = v) compared)
  in
  {
    compared;
    only_old;
    only_new;
    skipped = List.rev skipped;
    unreliable = List.rev unreliable;
    regressions = count Regression;
    improvements = count Improvement;
  }

let has_regressions r = r.regressions > 0

let verdict_label = function
  | Regression -> "REGRESSION"
  | Improvement -> "improvement"
  | Within_noise -> "ok"

let ns_pretty ns =
  if ns < 1e3 then Printf.sprintf "%.1fns" ns
  else if ns < 1e6 then Printf.sprintf "%.2fus" (ns /. 1e3)
  else Printf.sprintf "%.2fms" (ns /. 1e6)

let pp ppf r =
  Format.fprintf ppf "%-52s %10s %10s %7s %6s  %s@." "benchmark" "old" "new"
    "ratio" "tol" "verdict";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-52s %10s %10s %7.3f %5.0f%%  %s@." c.bench_name
        (ns_pretty c.old_ns) (ns_pretty c.new_ns) c.ratio
        (100.0 *. c.tolerance)
        (verdict_label c.verdict))
    r.compared;
  let listing label names =
    if names <> [] then
      Format.fprintf ppf "%s: %s@." label (String.concat ", " names)
  in
  listing "appeared" r.only_new;
  listing "disappeared" r.only_old;
  listing "skipped (unusable timing)" r.skipped;
  listing "skipped (unreliable fit, advisory only — rerun with a larger quota)"
    r.unreliable;
  Format.fprintf ppf
    "summary: %d compared, %d regression(s), %d improvement(s)@."
    (List.length r.compared) r.regressions r.improvements
