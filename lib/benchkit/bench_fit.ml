type fit = { ns_per_run : float; r_square : float; kept : int; total : int }

let min_samples = 4

let reliable_r2 r = Float.is_finite r && r >= 0.0

let reliable f = reliable_r2 f.r_square

let ols_kept ~runs ~nanos ~keep ~total =
  (* Through-origin slope: argmin_b Σ (y_i − b·x_i)², i.e.
     b = Σ x·y / Σ x². r² is measured about the mean of the kept y so a
     constant-y degenerate set reads as undefined, not perfect. *)
  let sxx = Kahan.create () in
  let sxy = Kahan.create () in
  let sy = Kahan.create () in
  let n = ref 0 in
  Array.iteri
    (fun i keep_i ->
      if keep_i then begin
        incr n;
        Kahan.add sxx (runs.(i) *. runs.(i));
        Kahan.add sxy (runs.(i) *. nanos.(i));
        Kahan.add sy nanos.(i)
      end)
    keep;
  let kept = !n in
  if kept = 0 then { ns_per_run = Float.nan; r_square = Float.nan; kept; total }
  else begin
    let slope = Kahan.total sxy /. Kahan.total sxx in
    let mean_y = Kahan.total sy /. float_of_int kept in
    let ss_res = Kahan.create () in
    let ss_tot = Kahan.create () in
    Array.iteri
      (fun i keep_i ->
        if keep_i then begin
          let r = nanos.(i) -. (slope *. runs.(i)) in
          Kahan.add ss_res (r *. r);
          let d = nanos.(i) -. mean_y in
          Kahan.add ss_tot (d *. d)
        end)
      keep;
    let r_square =
      (* Below [min_samples] the residual has too few degrees of freedom
         to mean anything — one straggler can swing r² to any value,
         including the absurd negatives a quota-starved sampler produces
         — so the fit declares itself undefined rather than confident. *)
      if kept < min_samples || Tol.is_zero (Kahan.total ss_tot) then Float.nan
      else 1.0 -. (Kahan.total ss_res /. Kahan.total ss_tot)
    in
    { ns_per_run = slope; r_square; kept; total }
  end

let validate ~runs ~nanos =
  let n = Array.length runs in
  if n = 0 || Array.length nanos <> n then
    invalid_arg "Bench_fit: runs and nanos must have equal positive length";
  Array.iter
    (fun x -> if not (x > 0.0) then invalid_arg "Bench_fit: runs must be > 0")
    runs;
  n

let ols ~runs ~nanos =
  let n = validate ~runs ~nanos in
  ols_kept ~runs ~nanos ~keep:(Array.make n true) ~total:n

let trimmed ?(lo_q = 0.02) ?(hi_q = 0.85) ~runs ~nanos () =
  if not (lo_q >= 0.0 && lo_q < hi_q && hi_q <= 1.0) then
    invalid_arg "Bench_fit.trimmed: need 0 <= lo_q < hi_q <= 1";
  let n = validate ~runs ~nanos in
  if n < 8 then ols_kept ~runs ~nanos ~keep:(Array.make n true) ~total:n
  else begin
    let rates = Array.init n (fun i -> nanos.(i) /. runs.(i)) in
    let lo = Stats.quantile rates ~q:lo_q in
    let hi = Stats.quantile rates ~q:hi_q in
    let keep = Array.map (fun r -> r >= lo && r <= hi) rates in
    ols_kept ~runs ~nanos ~keep ~total:n
  end
