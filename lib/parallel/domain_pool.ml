(* Determinism lives in the protocol, not the scheduler: chunks are
   claimed from an atomic counter (dynamic load balance), every partial
   effect is confined to the chunk's own state, and reduction happens on
   the caller in chunk-index order. See domain_pool.mli for the
   contract.

   Utilization accounting rides along: each domain writes only its own
   slot of the per-job arrays while a job is in flight, and the caller
   folds the job's numbers into the pool's compensated cumulative totals
   after the completion barrier — so the accounting is as race-free as
   the results. A per-chunk execution tripwire (one byte per chunk)
   turns any claim-protocol breakage into a counted
   [chunk_order_violations], the invariant the health rules pin at 0. *)

type job = {
  j_fn : int -> unit;
  j_chunks : int;
  j_next : int Atomic.t;  (* next unclaimed chunk index *)
  j_left : int Atomic.t;  (* chunks not yet completed *)
  mutable j_failures : (int * exn * Printexc.raw_backtrace) list;
      (* guarded by the pool mutex *)
  j_t0 : float;  (* submission time *)
  j_busy : float array;  (* per-domain in-chunk seconds *)
  j_first : float array;  (* per-domain first-claim time; nan = never *)
  j_nchunks : int array;  (* per-domain executed chunks *)
  j_done : Bytes.t;  (* per-chunk execution tripwire *)
  j_viol : int Atomic.t;  (* double-executed chunks *)
}

type domain_stat = {
  d_domain : int;
  d_chunks : int;
  d_busy_s : float;
  d_idle_s : float;
  d_queue_wait_s : float;
  d_merge_s : float;
}

type t = {
  n_domains : int;
  mutex : Mutex.t;
  work_cv : Condition.t;  (* workers: a new job arrived, or shutdown *)
  done_cv : Condition.t;  (* caller: the current job completed *)
  mutable current : job option;
  mutable generation : int;  (* bumped once per submitted job *)
  mutable shutting_down : bool;
  mutable workers : unit Domain.t list;
  (* cumulative utilization, written only by the caller between jobs *)
  u_chunks : int array;
  u_busy : Kahan.t array;
  u_idle : Kahan.t array;
  u_wait : Kahan.t array;
  u_merge : Kahan.t;
  mutable u_runs : int;
  mutable u_violations : int;
}

(* Run chunks of [job] until the claim counter is exhausted. Failures are
   recorded (never propagated out of a worker); completion of the last
   chunk flips [current] back to [None] and wakes the caller. Busy time
   and chunk counts go to this domain's private slot; the slot writes
   happen before this domain's final [j_left] decrement, so the caller's
   read of [j_left = 0] orders them. *)
let run_chunks t job ~dom =
  let rec claim () =
    let i = Atomic.fetch_and_add job.j_next 1 in
    if i < job.j_chunks then begin
      let t_claim = Obs_clock.now () in
      if Float.is_nan job.j_first.(dom) then job.j_first.(dom) <- t_claim;
      if Bytes.get job.j_done i <> '\000' then Atomic.incr job.j_viol;
      Bytes.set job.j_done i '\001';
      (try job.j_fn i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock t.mutex;
         job.j_failures <- (i, e, bt) :: job.j_failures;
         Mutex.unlock t.mutex);
      job.j_busy.(dom) <- job.j_busy.(dom) +. Obs_clock.elapsed_since t_claim;
      job.j_nchunks.(dom) <- job.j_nchunks.(dom) + 1;
      if Atomic.fetch_and_add job.j_left (-1) = 1 then begin
        Mutex.lock t.mutex;
        t.current <- None;
        Condition.signal t.done_cv;
        Mutex.unlock t.mutex
      end;
      claim ()
    end
  in
  claim ()

let worker t dom =
  let rec loop last_gen =
    Mutex.lock t.mutex;
    while
      (not t.shutting_down)
      && (t.generation = last_gen || Option.is_none t.current)
    do
      Condition.wait t.work_cv t.mutex
    done;
    if t.shutting_down then Mutex.unlock t.mutex
    else begin
      let gen = t.generation in
      let job = Option.get t.current in
      Mutex.unlock t.mutex;
      run_chunks t job ~dom;
      loop gen
    end
  in
  loop 0

let create ~domains =
  if domains < 1 || domains > 128 then
    invalid_arg
      (Printf.sprintf "Domain_pool.create: domains must be in [1, 128] (got %d)"
         domains);
  let t =
    {
      n_domains = domains;
      mutex = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      current = None;
      generation = 0;
      shutting_down = false;
      workers = [];
      u_chunks = Array.make domains 0;
      u_busy = Array.init domains (fun _ -> Kahan.create ());
      u_idle = Array.init domains (fun _ -> Kahan.create ());
      u_wait = Array.init domains (fun _ -> Kahan.create ());
      u_merge = Kahan.create ();
      u_runs = 0;
      u_violations = 0;
    }
  in
  t.workers <-
    List.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

let domains t = t.n_domains

let check_alive t op =
  if t.shutting_down then
    invalid_arg (Printf.sprintf "Domain_pool.%s: pool is shut down" op)

let reraise_first_failure job =
  match
    List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) job.j_failures
  with
  | [] -> ()
  | (_, e, bt) :: _ -> Printexc.raise_with_backtrace e bt

(* Fold a completed job's per-domain numbers into the pool's cumulative
   totals. Runs on the caller after the completion barrier; [window] is
   the job's submit-to-done span. A domain that never claimed a chunk
   spent the whole window idle (it was awake but lost every race); one
   that did claim waited [first - t0] for its first chunk and idled for
   whatever remains. *)
let account t job =
  let window = Obs_clock.elapsed_since job.j_t0 in
  for d = 0 to t.n_domains - 1 do
    let busy = job.j_busy.(d) in
    let wait =
      if Float.is_nan job.j_first.(d) then 0.0
      else Float.max 0.0 (job.j_first.(d) -. job.j_t0)
    in
    let idle = Float.max 0.0 (window -. wait -. busy) in
    t.u_chunks.(d) <- t.u_chunks.(d) + job.j_nchunks.(d);
    Kahan.add t.u_busy.(d) busy;
    Kahan.add t.u_wait.(d) wait;
    Kahan.add t.u_idle.(d) idle
  done;
  let unexecuted = ref 0 in
  Bytes.iter (fun c -> if c = '\000' then incr unexecuted) job.j_done;
  t.u_violations <- t.u_violations + Atomic.get job.j_viol + !unexecuted;
  t.u_runs <- t.u_runs + 1

let parallel_for t ~chunks fn =
  check_alive t "parallel_for";
  if chunks < 0 then
    invalid_arg "Domain_pool.parallel_for: chunks must be >= 0";
  if chunks = 0 then ()
  else if t.n_domains = 1 || chunks = 1 then begin
    (* Serial path: no pool machinery at all. A raising chunk propagates
       immediately, which is the lowest-index failure by construction.
       Two clock reads for the whole loop, all of it caller busy time. *)
    let t0 = Obs_clock.now () in
    let finish () =
      Kahan.add t.u_busy.(0) (Obs_clock.elapsed_since t0);
      t.u_chunks.(0) <- t.u_chunks.(0) + chunks;
      t.u_runs <- t.u_runs + 1
    in
    (try
       for i = 0 to chunks - 1 do
         fn i
       done
     with e ->
       finish ();
       raise e);
    finish ()
  end
  else begin
    let job =
      {
        j_fn = fn;
        j_chunks = chunks;
        j_next = Atomic.make 0;
        j_left = Atomic.make chunks;
        j_failures = [];
        j_t0 = Obs_clock.now ();
        j_busy = Array.make t.n_domains 0.0;
        j_first = Array.make t.n_domains nan;
        j_nchunks = Array.make t.n_domains 0;
        j_done = Bytes.make chunks '\000';
        j_viol = Atomic.make 0;
      }
    in
    Mutex.lock t.mutex;
    if Option.is_some t.current then begin
      Mutex.unlock t.mutex;
      invalid_arg "Domain_pool.parallel_for: a parallel operation is already \
                   in flight on this pool"
    end;
    t.current <- Some job;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.mutex;
    (* The caller is a worker too. *)
    run_chunks t job ~dom:0;
    Mutex.lock t.mutex;
    while Atomic.get job.j_left > 0 do
      Condition.wait t.done_cv t.mutex
    done;
    Mutex.unlock t.mutex;
    account t job;
    reraise_first_failure job
  end

let map t ~chunks f =
  if chunks < 0 then invalid_arg "Domain_pool.map: chunks must be >= 0";
  if chunks = 0 then [||]
  else begin
    let slots = Array.make chunks None in
    parallel_for t ~chunks (fun i -> slots.(i) <- Some (f i));
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Domain_pool.map: chunk produced no result")
      slots
  end

let map_reduce t ~chunks ~map:f ~reduce ~init =
  Array.fold_left reduce init (map t ~chunks f)

let shutdown t =
  Mutex.lock t.mutex;
  if t.shutting_down then Mutex.unlock t.mutex
  else begin
    t.shutting_down <- true;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* --- utilization reporting ---------------------------------------- *)

let utilization t =
  Array.init t.n_domains (fun d ->
      {
        d_domain = d;
        d_chunks = t.u_chunks.(d);
        d_busy_s = Kahan.total t.u_busy.(d);
        d_idle_s = Kahan.total t.u_idle.(d);
        d_queue_wait_s = Kahan.total t.u_wait.(d);
        d_merge_s = (if d = 0 then Kahan.total t.u_merge else 0.0);
      })

let runs t = t.u_runs
let chunk_order_violations t = t.u_violations
let merge_seconds t = Kahan.total t.u_merge
let add_merge_seconds t s = Kahan.add t.u_merge s

let pp_utilization ppf t =
  Array.iter
    (fun d ->
      Format.fprintf ppf
        "domain %d: %d chunk(s), busy %.6fs, idle %.6fs, wait %.6fs%s@."
        d.d_domain d.d_chunks d.d_busy_s d.d_idle_s d.d_queue_wait_s
        (if d.d_domain = 0 then Printf.sprintf ", merge %.6fs" d.d_merge_s
         else ""))
    (utilization t);
  Format.fprintf ppf
    "pool: %d domain(s), %d run(s), %d chunk-order violation(s)@." t.n_domains
    t.u_runs t.u_violations

(* --- obs metrics bridge ------------------------------------------- *)

(* All pool series are gauges, never counters or histograms: their
   values are wall-time-like (nondeterministic across domain counts and
   machines), and the determinism gates compare counter sets
   bit-for-bit. Gauges carry the diagnosis without entering any
   deterministic comparison. *)

let bump m name v =
  let g = Obs_metrics.gauge m name in
  let cur = Obs_metrics.gauge_value g in
  Obs_metrics.set g ((if Float.is_nan cur then 0.0 else cur) +. v)

let set m name v = Obs_metrics.set (Obs_metrics.gauge m name) v

let publish t m =
  set m "pool.domains" (float_of_int t.n_domains);
  set m "pool.runs" (float_of_int t.u_runs);
  set m "pool.chunks" (float_of_int (Array.fold_left ( + ) 0 t.u_chunks));
  set m "pool.busy_seconds" (Kahan.sum_by Kahan.total t.u_busy);
  set m "pool.idle_seconds" (Kahan.sum_by Kahan.total t.u_idle);
  set m "pool.queue_wait_seconds" (Kahan.sum_by Kahan.total t.u_wait);
  set m "pool.merge_seconds" (Kahan.total t.u_merge);
  set m "pool.chunk_order_violations" (float_of_int t.u_violations)

let note_merge ?pool ?metrics ~seconds () =
  match pool with
  | Some t -> (
      Kahan.add t.u_merge seconds;
      match metrics with
      | Some m -> set m "pool.merge_seconds" (Kahan.total t.u_merge)
      | None -> ())
  | None -> (
      match metrics with
      | Some m -> bump m "pool.merge_seconds" seconds
      | None -> ())

let run ?pool ?domains ?metrics ~chunks fn =
  match (pool, domains) with
  | Some t, _ ->
      parallel_for t ~chunks fn;
      (match metrics with Some m -> publish t m | None -> ())
  | None, Some d when d <> 1 ->
      (* [create] validates the range and spawns the transient workers;
         d = 1 skips it entirely so the common serial call stays free.
         A transient pool's totals are this run's totals, so they bump
         the registry's running aggregates rather than overwrite. *)
      with_pool ~domains:d (fun t ->
          parallel_for t ~chunks fn;
          match metrics with
          | Some m ->
              set m "pool.domains" (float_of_int d);
              bump m "pool.runs" (float_of_int t.u_runs);
              bump m "pool.chunks"
                (float_of_int (Array.fold_left ( + ) 0 t.u_chunks));
              bump m "pool.busy_seconds" (Kahan.sum_by Kahan.total t.u_busy);
              bump m "pool.idle_seconds" (Kahan.sum_by Kahan.total t.u_idle);
              bump m "pool.queue_wait_seconds"
                (Kahan.sum_by Kahan.total t.u_wait);
              bump m "pool.chunk_order_violations"
                (float_of_int t.u_violations)
          | None -> ())
  | None, (Some _ | None) -> (
      if chunks < 0 then invalid_arg "Domain_pool.run: chunks must be >= 0";
      match metrics with
      | None ->
          for i = 0 to chunks - 1 do
            fn i
          done
      | Some m ->
          let t0 = Obs_clock.now () in
          (for i = 0 to chunks - 1 do
             fn i
           done);
          set m "pool.domains" 1.0;
          bump m "pool.runs" 1.0;
          bump m "pool.chunks" (float_of_int chunks);
          bump m "pool.busy_seconds" (Obs_clock.elapsed_since t0);
          bump m "pool.idle_seconds" 0.0;
          bump m "pool.queue_wait_seconds" 0.0;
          bump m "pool.chunk_order_violations" 0.0)
