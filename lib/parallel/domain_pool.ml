(* Determinism lives in the protocol, not the scheduler: chunks are
   claimed from an atomic counter (dynamic load balance), every partial
   effect is confined to the chunk's own state, and reduction happens on
   the caller in chunk-index order. See domain_pool.mli for the
   contract. *)

type job = {
  j_fn : int -> unit;
  j_chunks : int;
  j_next : int Atomic.t;  (* next unclaimed chunk index *)
  j_left : int Atomic.t;  (* chunks not yet completed *)
  mutable j_failures : (int * exn * Printexc.raw_backtrace) list;
      (* guarded by the pool mutex *)
}

type t = {
  n_domains : int;
  mutex : Mutex.t;
  work_cv : Condition.t;  (* workers: a new job arrived, or shutdown *)
  done_cv : Condition.t;  (* caller: the current job completed *)
  mutable current : job option;
  mutable generation : int;  (* bumped once per submitted job *)
  mutable shutting_down : bool;
  mutable workers : unit Domain.t list;
}

(* Run chunks of [job] until the claim counter is exhausted. Failures are
   recorded (never propagated out of a worker); completion of the last
   chunk flips [current] back to [None] and wakes the caller. *)
let run_chunks t job =
  let rec claim () =
    let i = Atomic.fetch_and_add job.j_next 1 in
    if i < job.j_chunks then begin
      (try job.j_fn i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock t.mutex;
         job.j_failures <- (i, e, bt) :: job.j_failures;
         Mutex.unlock t.mutex);
      if Atomic.fetch_and_add job.j_left (-1) = 1 then begin
        Mutex.lock t.mutex;
        t.current <- None;
        Condition.signal t.done_cv;
        Mutex.unlock t.mutex
      end;
      claim ()
    end
  in
  claim ()

let worker t =
  let rec loop last_gen =
    Mutex.lock t.mutex;
    while
      (not t.shutting_down)
      && (t.generation = last_gen || Option.is_none t.current)
    do
      Condition.wait t.work_cv t.mutex
    done;
    if t.shutting_down then Mutex.unlock t.mutex
    else begin
      let gen = t.generation in
      let job = Option.get t.current in
      Mutex.unlock t.mutex;
      run_chunks t job;
      loop gen
    end
  in
  loop 0

let create ~domains =
  if domains < 1 || domains > 128 then
    invalid_arg
      (Printf.sprintf "Domain_pool.create: domains must be in [1, 128] (got %d)"
         domains);
  let t =
    {
      n_domains = domains;
      mutex = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      current = None;
      generation = 0;
      shutting_down = false;
      workers = [];
    }
  in
  t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let domains t = t.n_domains

let check_alive t op =
  if t.shutting_down then
    invalid_arg (Printf.sprintf "Domain_pool.%s: pool is shut down" op)

let reraise_first_failure job =
  match
    List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) job.j_failures
  with
  | [] -> ()
  | (_, e, bt) :: _ -> Printexc.raise_with_backtrace e bt

let parallel_for t ~chunks fn =
  check_alive t "parallel_for";
  if chunks < 0 then
    invalid_arg "Domain_pool.parallel_for: chunks must be >= 0";
  if chunks = 0 then ()
  else if t.n_domains = 1 || chunks = 1 then
    (* Serial path: no pool machinery at all. A raising chunk propagates
       immediately, which is the lowest-index failure by construction. *)
    for i = 0 to chunks - 1 do
      fn i
    done
  else begin
    let job =
      {
        j_fn = fn;
        j_chunks = chunks;
        j_next = Atomic.make 0;
        j_left = Atomic.make chunks;
        j_failures = [];
      }
    in
    Mutex.lock t.mutex;
    if Option.is_some t.current then begin
      Mutex.unlock t.mutex;
      invalid_arg "Domain_pool.parallel_for: a parallel operation is already \
                   in flight on this pool"
    end;
    t.current <- Some job;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.mutex;
    (* The caller is a worker too. *)
    run_chunks t job;
    Mutex.lock t.mutex;
    while Atomic.get job.j_left > 0 do
      Condition.wait t.done_cv t.mutex
    done;
    Mutex.unlock t.mutex;
    reraise_first_failure job
  end

let map t ~chunks f =
  if chunks < 0 then invalid_arg "Domain_pool.map: chunks must be >= 0";
  if chunks = 0 then [||]
  else begin
    let slots = Array.make chunks None in
    parallel_for t ~chunks (fun i -> slots.(i) <- Some (f i));
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Domain_pool.map: chunk produced no result")
      slots
  end

let map_reduce t ~chunks ~map:f ~reduce ~init =
  Array.fold_left reduce init (map t ~chunks f)

let shutdown t =
  Mutex.lock t.mutex;
  if t.shutting_down then Mutex.unlock t.mutex
  else begin
    t.shutting_down <- true;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run ?pool ?domains ~chunks fn =
  match (pool, domains) with
  | Some t, _ -> parallel_for t ~chunks fn
  | None, Some d when d <> 1 ->
      (* [create] validates the range and spawns the transient workers;
         d = 1 skips it entirely so the common serial call stays free. *)
      with_pool ~domains:d (fun t -> parallel_for t ~chunks fn)
  | None, (Some _ | None) ->
      if chunks < 0 then invalid_arg "Domain_pool.run: chunks must be >= 0";
      for i = 0 to chunks - 1 do
        fn i
      done
