(** A fixed-size pool of OCaml 5 domains with a deterministic
    map-reduce discipline.

    The repository's parallelism contract (DESIGN.md §10) is that
    {e results are bit-identical for any domain count}. The pool supplies
    the execution half of that contract: callers split work into a fixed
    {e chunk grid} whose geometry depends only on the problem size (never
    on the domain count), each chunk computes an independent partial
    result (with its own {!Prng} stream where randomness is involved),
    and {!map_reduce} folds the partials {e on the calling domain, in
    chunk-index order}. Which domain executed which chunk — and in what
    interleaving — then cannot influence a single bit of the answer; it
    only influences wall time.

    Chunks are claimed dynamically (an atomic counter), so uneven chunk
    costs load-balance automatically. The caller participates in chunk
    execution, so a pool of [n] domains applies [n] cores, not [n + 1]
    and not [n - 1]; [create ~domains:1] spawns nothing and runs every
    chunk inline on the caller — the serial path with zero
    synchronisation overhead.

    This module is the only place in the repository allowed to call
    [Domain.spawn] (enforced by cslint rule R7): keeping domain creation
    centralised is what keeps the determinism contract auditable. *)

type t
(** A pool. One parallel operation may be in flight at a time; the pool
    survives exceptions in tasks and is reusable until {!shutdown}. *)

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] worker domains (the caller is
    the remaining worker). Requires [1 <= domains <= 128]. Call
    {!shutdown} when done — worker domains are not garbage-collected. *)

val domains : t -> int
(** The domain count the pool was created with (including the caller). *)

val parallel_for : t -> chunks:int -> (int -> unit) -> unit
(** [parallel_for t ~chunks f] runs [f 0 .. f (chunks - 1)], distributed
    over the pool's domains, and returns when all calls have finished.
    [f] must only write state disjoint per chunk index (e.g. slices of a
    preallocated array).

    If one or more chunks raise, every remaining chunk still runs (or is
    abandoned unclaimed), the pool is left reusable, and the exception of
    the {e lowest-indexed} failing chunk is re-raised on the caller with
    its original backtrace — the same exception a serial in-order
    execution would have surfaced first.

    Nested or concurrent [parallel_for] calls on the same pool are a
    programming error and raise [Invalid_argument]. *)

val map : t -> chunks:int -> (int -> 'a) -> 'a array
(** [map t ~chunks f] is [[| f 0; ...; f (chunks - 1) |]] computed on
    the pool. Exception semantics as {!parallel_for}. *)

val map_reduce :
  t -> chunks:int -> map:(int -> 'a) -> reduce:('b -> 'a -> 'b) -> init:'b -> 'b
(** [map_reduce t ~chunks ~map ~reduce ~init] computes every [map i] on
    the pool, then folds [reduce] over the results {e in chunk-index
    order on the calling domain}: deterministic in the domain count by
    construction, including for non-associative reductions such as
    compensated float sums. *)

val shutdown : t -> unit
(** Join and release the worker domains. Idempotent. Using the pool
    after shutdown raises [Invalid_argument]. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] is [f (create ~domains)] with a guaranteed
    {!shutdown}, also on exceptions. *)

val run : ?pool:t -> ?domains:int -> chunks:int -> (int -> unit) -> unit
(** [run ?pool ?domains ~chunks f] is the execution front-end the
    instrumented hot paths share: with [?pool] it is
    [parallel_for pool ~chunks f]; otherwise with [?domains] [> 1] it
    runs on a transient pool ({!with_pool}); otherwise (the default) it
    is a plain inline [for] loop with zero pool machinery. Because every
    caller splits on the same fixed chunk grid, all three routes produce
    bit-identical results. *)
