(** A fixed-size pool of OCaml 5 domains with a deterministic
    map-reduce discipline.

    The repository's parallelism contract (DESIGN.md §10) is that
    {e results are bit-identical for any domain count}. The pool supplies
    the execution half of that contract: callers split work into a fixed
    {e chunk grid} whose geometry depends only on the problem size (never
    on the domain count), each chunk computes an independent partial
    result (with its own {!Prng} stream where randomness is involved),
    and {!map_reduce} folds the partials {e on the calling domain, in
    chunk-index order}. Which domain executed which chunk — and in what
    interleaving — then cannot influence a single bit of the answer; it
    only influences wall time.

    Chunks are claimed dynamically (an atomic counter), so uneven chunk
    costs load-balance automatically. The caller participates in chunk
    execution, so a pool of [n] domains applies [n] cores, not [n + 1]
    and not [n - 1]; [create ~domains:1] spawns nothing and runs every
    chunk inline on the caller — the serial path with zero
    synchronisation overhead.

    This module is the only place in the repository allowed to call
    [Domain.spawn] (enforced by cslint rule R7): keeping domain creation
    centralised is what keeps the determinism contract auditable.

    {2 Utilization accounting}

    The pool keeps per-domain cumulative accounting — chunks executed,
    busy seconds (inside chunk functions), queue-wait seconds
    (submission to first claim), idle seconds (the rest of each job's
    window) and caller-side merge seconds — folded into compensated
    totals on the caller after each job's completion barrier, so the
    accounting is as race-free as the results. {!utilization} reports
    it post-run; {!publish} mirrors the aggregates into an
    {!Obs_metrics} registry as [pool.*] {e gauges} (never counters:
    the values are wall-time-like and must stay out of the
    deterministic counter comparisons the trace-diff and snapshot
    gates perform). Deterministic invariants of the report — total
    chunks equals chunks submitted, {!chunk_order_violations} is 0 —
    hold for any domain count; the time splits are where the
    26ms-vs-6.8ms question lives (fixed overhead vs idle vs merge). *)

type t
(** A pool. One parallel operation may be in flight at a time; the pool
    survives exceptions in tasks and is reusable until {!shutdown}. *)

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] worker domains (the caller is
    the remaining worker). Requires [1 <= domains <= 128]. Call
    {!shutdown} when done — worker domains are not garbage-collected. *)

val domains : t -> int
(** The domain count the pool was created with (including the caller). *)

val parallel_for : t -> chunks:int -> (int -> unit) -> unit
(** [parallel_for t ~chunks f] runs [f 0 .. f (chunks - 1)], distributed
    over the pool's domains, and returns when all calls have finished.
    [f] must only write state disjoint per chunk index (e.g. slices of a
    preallocated array).

    If one or more chunks raise, every remaining chunk still runs (or is
    abandoned unclaimed), the pool is left reusable, and the exception of
    the {e lowest-indexed} failing chunk is re-raised on the caller with
    its original backtrace — the same exception a serial in-order
    execution would have surfaced first.

    Nested or concurrent [parallel_for] calls on the same pool are a
    programming error and raise [Invalid_argument]. *)

val map : t -> chunks:int -> (int -> 'a) -> 'a array
(** [map t ~chunks f] is [[| f 0; ...; f (chunks - 1) |]] computed on
    the pool. Exception semantics as {!parallel_for}. *)

val map_reduce :
  t -> chunks:int -> map:(int -> 'a) -> reduce:('b -> 'a -> 'b) -> init:'b -> 'b
(** [map_reduce t ~chunks ~map ~reduce ~init] computes every [map i] on
    the pool, then folds [reduce] over the results {e in chunk-index
    order on the calling domain}: deterministic in the domain count by
    construction, including for non-associative reductions such as
    compensated float sums. *)

val shutdown : t -> unit
(** Join and release the worker domains. Idempotent. Using the pool
    after shutdown raises [Invalid_argument]. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] is [f (create ~domains)] with a guaranteed
    {!shutdown}, also on exceptions. *)

val run :
  ?pool:t -> ?domains:int -> ?metrics:Obs_metrics.t -> chunks:int ->
  (int -> unit) -> unit
(** [run ?pool ?domains ?metrics ~chunks f] is the execution front-end
    the instrumented hot paths share: with [?pool] it is
    [parallel_for pool ~chunks f]; otherwise with [?domains] [> 1] it
    runs on a transient pool ({!with_pool}); otherwise (the default) it
    is a plain inline [for] loop with zero pool machinery. Because every
    caller splits on the same fixed chunk grid, all three routes produce
    bit-identical results.

    With [?metrics], utilization is mirrored into the registry as
    [pool.*] gauges after the chunks complete: a persistent pool
    {!publish}es its cumulative totals (idempotent across reuse), while
    the transient and inline routes add this run's totals to the
    registry's running aggregates — either way the registry holds
    consistent totals for the process's chosen execution mode. *)

(** {1 Utilization} *)

type domain_stat = {
  d_domain : int;
  d_chunks : int;  (** chunks this domain executed *)
  d_busy_s : float;  (** seconds inside chunk functions *)
  d_idle_s : float;  (** seconds awake but chunk-less during jobs *)
  d_queue_wait_s : float;  (** seconds from job submission to first claim *)
  d_merge_s : float;
      (** caller-side merge seconds ({!note_merge}); domain 0 only *)
}

val utilization : t -> domain_stat array
(** Cumulative per-domain accounting since {!create}, indexed by domain
    (0 is the caller). Read it between jobs — never while a
    [parallel_for] is in flight. *)

val runs : t -> int
(** Jobs completed (parallel and serial-path alike). *)

val chunk_order_violations : t -> int
(** Chunks observed executed twice or not at all — 0 unless the claim
    protocol is broken. Health rules pin this at 0. *)

val merge_seconds : t -> float
(** Total caller-side merge time recorded via {!note_merge}. *)

val add_merge_seconds : t -> float -> unit
(** Low-level accumulator behind {!note_merge}. *)

val note_merge :
  ?pool:t -> ?metrics:Obs_metrics.t -> seconds:float -> unit -> unit
(** Record [seconds] of caller-side merge/gather time: added to the
    pool's cumulative total when [?pool] is given (and re-published to
    the [pool.merge_seconds] gauge when [?metrics] is too), otherwise
    added directly to the gauge. Merging happens on the caller in
    chunk-index order, outside any chunk, which is why it is not part
    of busy time. *)

val publish : t -> Obs_metrics.t -> unit
(** Overwrite the [pool.domains], [pool.runs], [pool.chunks],
    [pool.busy_seconds], [pool.idle_seconds],
    [pool.queue_wait_seconds], [pool.merge_seconds] and
    [pool.chunk_order_violations] gauges with the pool's cumulative
    totals (domains summed). Idempotent; call after any batch of
    jobs. *)

val pp_utilization : Format.formatter -> t -> unit
(** Human-readable per-domain table plus a pool summary line. *)
