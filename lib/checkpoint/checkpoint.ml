type plan = { intervals : Schedule.t; expected_committed : float }

(* Truncate a schedule so its productive time (sum of t_i - c) covers
   [work] exactly, shortening the final interval as needed. *)
let truncate_to_work schedule ~c ~work =
  let periods = Schedule.periods schedule in
  let rev = ref [] in
  let committed = ref 0.0 in
  (try
     Array.iter
       (fun t ->
         let productive = Schedule.positive_sub t c in
         if !committed +. productive >= work -. 1e-12 then begin
           let needed = work -. !committed in
           if needed > 0.0 then rev := (c +. needed) :: !rev;
           committed := work;
           raise Exit
         end
         else begin
           rev := t :: !rev;
           (* Interleaves accumulation with the clamp-to-[work] assignment
              above; the few same-scale terms are compared with a 1e-12
              slack, so a compensated carrier would change nothing. *)
           (committed := !committed +. productive) [@lint.allow "R2"]
         end)
       periods
   with Exit -> ());
  match !rev with
  | [] -> None
  | l -> Some (Schedule.of_periods (Array.of_list (List.rev l)))

let plan_saves ?work lf ~c =
  if c <= 0.0 then invalid_arg "Checkpoint.plan_saves: c must be > 0";
  if c >= Life_function.horizon lf then
    invalid_arg "Checkpoint.plan_saves: c >= horizon";
  (match work with
  | Some w when w <= 0.0 ->
      invalid_arg "Checkpoint.plan_saves: work must be > 0"
  | Some _ | None -> ());
  let g = Guideline.plan lf ~c in
  let intervals =
    match work with
    | None -> g.Guideline.schedule
    | Some w -> (
        match truncate_to_work g.Guideline.schedule ~c ~work:w with
        | Some s -> s
        | None -> g.Guideline.schedule)
  in
  {
    intervals;
    expected_committed = Schedule.expected_work ~c lf intervals;
  }

type sim_result = {
  makespan : float;
  failures : int;
  work_lost_total : float;
  checkpoints_written : int;
}

let expected_committed_per_attempt ~work ~c lf =
  (plan_saves ~work lf ~c).expected_committed

let simulate_restarts ~work ~c ~restart_cost lf g ~max_failures =
  if work <= 0.0 || c <= 0.0 || restart_cost < 0.0 then
    invalid_arg "Checkpoint.simulate_restarts: nonpositive parameters";
  if max_failures < 0 then
    invalid_arg "Checkpoint.simulate_restarts: max_failures must be >= 0";
  (* Progress is possible iff the guideline plan can commit anything in
     expectation; check once up front rather than misreading an unlucky
     early failure as a dead end. *)
  let first_plan = plan_saves ~work lf ~c in
  if first_plan.expected_committed <= 0.0 then
    invalid_arg
      "Checkpoint.simulate_restarts: no progress possible (c too large for \
       this life function)";
  let sampler = Reclaim.create lf in
  let clock = Kahan.create () in
  let remaining = ref work in
  let failures = ref 0 in
  let lost = Kahan.create () in
  let checkpoints = ref 0 in
  while !remaining > 1e-9 && !failures <= max_failures do
    let plan = plan_saves ~work:!remaining lf ~c in
    let failure_at = Reclaim.draw sampler g in
    let o = Episode.run plan.intervals ~c ~reclaim_at:failure_at in
    Kahan.add clock o.Episode.elapsed;
    remaining := !remaining -. o.Episode.work_done;
    checkpoints := !checkpoints + o.Episode.periods_completed;
    if o.Episode.interrupted && !remaining > 1e-9 then begin
      incr failures;
      Kahan.add lost o.Episode.work_lost;
      Kahan.add clock restart_cost
    end
  done;
  {
    makespan = Kahan.total clock;
    failures = !failures;
    work_lost_total = Kahan.total lost;
    checkpoints_written = !checkpoints;
  }
