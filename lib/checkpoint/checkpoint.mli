(** Scheduling saves in fault-prone computations — the paper's Remark in §1
    maps its model onto the checkpointing problem of
    Coffman–Flatto–Krenin (Acta Informatica 30, 1993), the paper's
    reference [7]. This module realises that adaptation.

    Correspondence: a computation runs on a machine whose time-to-failure
    has survival function [p]; writing a checkpoint costs [c]; work since
    the last completed checkpoint is lost at a failure. Partition the run
    into intervals [t_0, t_1, ...], checkpointing at the end of each: the
    expected work safely committed before the first failure is exactly
    eq. 2.1, so every scheduler in {!Guideline}/{!Exact}/{!Optimizer}
    transfers verbatim. Beyond the single-failure horizon of the paper, the
    simulator here also plays the full repair–restart process to measure
    end-to-end makespan of a job of fixed length. *)

type plan = {
  intervals : Schedule.t;
      (** Interval lengths; a checkpoint (cost [c]) ends each one. *)
  expected_committed : float;
      (** Expected work committed before the first failure (eq. 2.1). *)
}

val plan_saves :
  ?work:float -> Life_function.t -> c:float -> plan
(** [plan_saves p ~c] derives the guideline checkpoint plan for failure
    survival [p] and save cost [c]. With [?work] the plan is truncated once
    the committed (productive) time covers [work]; the final interval is
    shortened to fit exactly. Requires [0 < c < horizon p]; [work > 0]
    when given.
    @raise Invalid_argument otherwise. *)

type sim_result = {
  makespan : float;  (** Wall-clock to finish the whole job. *)
  failures : int;
  work_lost_total : float;
  checkpoints_written : int;
}

val simulate_restarts :
  work:float ->
  c:float ->
  restart_cost:float ->
  Life_function.t ->
  Prng.t ->
  max_failures:int ->
  sim_result
(** [simulate_restarts ~work ~c ~restart_cost p g ~max_failures] plays the
    repeated-failure process: run the guideline plan; on failure, pay
    [restart_cost], resume from the last committed checkpoint with a fresh
    failure clock (machine-renewal assumption), replanning for the
    remaining work. Gives up after [max_failures] failures.
    @raise Invalid_argument if parameters are nonpositive or the job cannot
    make progress (no productive interval exists). *)

val expected_committed_per_attempt :
  work:float -> c:float -> Life_function.t -> float
(** Expected committed work of one attempt under the guideline plan —
    the quantity maximised by the paper's machinery, exposed for analysis
    and tests. *)
