(** From raw absence observations to a smooth, schedulable life function.

    Pipeline: estimate the survival curve (plain ECDF complement for fully
    observed data, Kaplan–Meier under censoring), thin it to quantile-
    spaced knots, enforce the life-function boundary conditions
    ([p(0) = 1], terminal 0 at a horizon), and fit a monotone PCHIP
    interpolant — smooth enough for the recurrence engine's derivative
    queries, monotone by construction. *)

type estimate = {
  life : Life_function.t;  (** The smoothed, validated life function. *)
  knots : (float * float) array;  (** The (time, survival) knots used. *)
  n_observed : int;
  n_censored : int;
}

val of_observations :
  ?knots:int -> Owner_model.observation array -> estimate
(** [of_observations obs] builds the estimate from raw data using [knots]
    interior knots (default 32, reduced automatically for small samples).
    The horizon is placed at the largest observation, extended by one
    inter-knot gap so the fitted survival reaches 0 smoothly rather than
    truncating at a positive value.
    @raise Invalid_argument on empty input or all-censored data. *)

val of_durations : ?knots:int -> float array -> estimate
(** [of_durations ds] is {!of_observations} on fully-observed data. *)

type bands = {
  lower : Life_function.t;
      (** Pessimistic band: survival shifted down by [z] Greenwood standard
          deviations — schedule against this when underestimating the
          owner's absence is costlier than overestimating it. *)
  point : Life_function.t;  (** The Kaplan–Meier point estimate. *)
  upper : Life_function.t;  (** Optimistic band. *)
  z : float;  (** The normal quantile used (1.96 ~ pointwise 95%). *)
}

val confidence_bands :
  ?knots:int -> ?z:float -> Owner_model.observation array -> bands
(** [confidence_bands obs] builds pointwise Greenwood confidence bands
    around the Kaplan–Meier estimate and smooths each into a schedulable
    life function ([z] defaults to 1.96, [knots] to 32). Bands are clamped
    into [[0, 1]] and forced monotone, so each is itself a valid life
    function; the lower band typically reaches 0 earlier (a shorter
    pessimistic horizon). Same input requirements as {!of_observations}.
    Experiment E16 measures the value of scheduling against the lower band
    at small sample sizes. *)

val survival_rmse :
  estimate -> truth:Life_function.t -> float
(** [survival_rmse e ~truth] is the root-mean-square gap between the
    estimated and true survival curves on a 256-point grid over the
    estimate's support — experiment E10's estimation-error metric. *)
