(** Synthetic owner-behaviour models.

    The paper assumes the reclaim-risk function is "garnered possibly from
    trace data that exposes B's owner's computer usage patterns" (§1). No
    1998 usage traces ship with this reproduction, so we synthesise them
    from explicit behavioural models with known ground truth; the E10
    experiment then measures how much scheduling quality survives the
    estimate-from-trace detour. Every generator produces absence durations
    (episode lifetimes), optionally right-censored as real monitoring
    systems would be at collection boundaries. *)

type observation = {
  duration : float;  (** Observed absence length. *)
  observed : bool;  (** [false] when censored (owner still away at the end
                        of the monitoring window). *)
}

type model =
  | Exponential_absence of { mean : float }
      (** Memoryless absences — ground truth for the geometric-decreasing
          scenario. *)
  | Uniform_absence of { max : float }
      (** Absences uniform on [[0, max]] — ground truth for uniform risk. *)
  | Weibull_absence of { shape : float; scale : float }
      (** Ageing (shape > 1) or bursty (shape < 1) absences. *)
  | Coffee_break of { typical : float; spread : float }
      (** Short absences with sharply increasing return risk, mimicking the
          §4.3 scenario: truncated normal around [typical]. *)
  | Day_night of {
      short_mean : float;
      long_mean : float;
      long_fraction : float;
    }
      (** Mixture of brief daytime absences and long overnight ones. *)

val sample : model -> Prng.t -> float
(** [sample m g] draws one absence duration (always [> 0]). *)

val collect :
  ?censor_at:float -> model -> Prng.t -> n:int -> observation array
(** [collect m g ~n] draws [n] absences; with [?censor_at] every draw
    exceeding the monitoring window is recorded as a censored observation
    of that length. Requires [n > 0]. *)

val true_life_function : model -> Life_function.t option
(** [true_life_function m] is the exact survival function of the model when
    it belongs to a family this library represents exactly
    ([Exponential_absence], [Uniform_absence], [Weibull_absence]); [None]
    for the mixture models, whose truth is only available empirically. *)
