(** Fitting parametric life-function families to absence data.

    The paper's guidelines want a {e smooth} [p]; fitting a named family to
    the trace buys smoothness, an exact derivative, and a shape certificate
    (unlocking the Theorem 3.3 bounds) at the price of model bias. This
    module fits each supported family, scores it against the empirical
    survival curve, and selects the best. *)

type fitted = {
  family : string;  (** e.g. ["exponential"], ["weibull"], ["uniform"],
                        ["polynomial(d=2)"]. *)
  life : Life_function.t;
  sse : float;  (** Sum of squared survival errors on the ECDF points. *)
  params : (string * float) list;
}

val exponential_mle : float array -> fitted
(** Maximum-likelihood exponential fit ([rate = 1/mean]).
    @raise Invalid_argument on empty input or nonpositive durations. *)

val uniform_fit : float array -> fitted
(** Uniform-risk fit with the unbiased endpoint estimator
    [L = max · (n+1)/n]. *)

val weibull_mle : ?tol:float -> ?max_iter:int -> float array -> fitted
(** Weibull maximum likelihood: the shape solves the standard profile
    fixed point [Σ x^k ln x / Σ x^k − 1/k = mean(ln x)] (bracketed root
    find), the scale follows in closed form. Requires at least 2 distinct
    positive durations. *)

val geometric_increasing_fit : float array -> fitted
(** Geometric-increasing-risk fit (the §4.3 "coffee break" family): the
    lifespan is chosen by 1-D least squares against the empirical survival
    over [(max duration, 4·max duration]]. Captures absence data whose
    return risk accelerates sharply near a deadline. *)

val polynomial_fit : ?d_max:int -> float array -> fitted
(** Best [p_{d,L}] family member: for each [d <= d_max] (default 5) the
    lifespan is chosen by 1-D least squares against the empirical survival,
    and the best [d] wins. *)

val best_fit : ?d_max:int -> float array -> fitted
(** [best_fit ds] fits all families above (exponential, uniform,
    polynomial, geometric-increasing, and Weibull when the data allow) and
    returns the lowest-SSE one.
    @raise Invalid_argument on fewer than 2 observations. *)

val sse_against_ecdf : Life_function.t -> float array -> float
(** [sse_against_ecdf p ds] scores a candidate life function against the
    empirical survival of the durations: [Σ_i (p(x_(i)) − S_n(x_(i)))²]
    over the sorted sample. Exposed for tests and custom model choice. *)
