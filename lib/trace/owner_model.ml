type observation = { duration : float; observed : bool }

type model =
  | Exponential_absence of { mean : float }
  | Uniform_absence of { max : float }
  | Weibull_absence of { shape : float; scale : float }
  | Coffee_break of { typical : float; spread : float }
  | Day_night of {
      short_mean : float;
      long_mean : float;
      long_fraction : float;
    }

let rec sample model g =
  match model with
  | Exponential_absence { mean } ->
      if mean <= 0.0 then invalid_arg "Owner_model: mean must be > 0";
      Prng.exponential g ~rate:(1.0 /. mean)
  | Uniform_absence { max } ->
      if max <= 0.0 then invalid_arg "Owner_model: max must be > 0";
      (* Strictly positive: a zero-length absence is not an episode. *)
      let rec draw () =
        let x = Prng.float g *. max in
        if x > 0.0 then x else draw ()
      in
      draw ()
  | Weibull_absence { shape; scale } -> Prng.weibull g ~shape ~scale
  | Coffee_break { typical; spread } ->
      if typical <= 0.0 || spread <= 0.0 then
        invalid_arg "Owner_model: typical and spread must be > 0";
      (* Truncated normal: resample until positive. *)
      let rec draw () =
        let x = Prng.normal g ~mu:typical ~sigma:spread in
        if x > 0.0 then x else draw ()
      in
      draw ()
  | Day_night { short_mean; long_mean; long_fraction } ->
      if long_fraction < 0.0 || long_fraction > 1.0 then
        invalid_arg "Owner_model: long_fraction must lie in [0, 1]";
      let mean =
        if Prng.float g < long_fraction then long_mean else short_mean
      in
      sample (Exponential_absence { mean }) g

let collect ?censor_at model g ~n =
  if n <= 0 then invalid_arg "Owner_model.collect: n must be > 0";
  Array.init n (fun _ ->
      let d = sample model g in
      match censor_at with
      | Some limit when d > limit -> { duration = limit; observed = false }
      | Some _ | None -> { duration = d; observed = true })

let true_life_function = function
  | Exponential_absence { mean } -> Some (Families.exponential ~rate:(1.0 /. mean))
  | Uniform_absence { max } -> Some (Families.uniform ~lifespan:max)
  | Weibull_absence { shape; scale } -> Some (Families.weibull ~shape ~scale)
  | Coffee_break _ | Day_night _ -> None
