type estimate = {
  life : Life_function.t;
  knots : (float * float) array;
  n_observed : int;
  n_censored : int;
}

(* Thin a step curve down to ~[target] knots at evenly spaced indices,
   always keeping the first and last point. *)
let thin target steps =
  let n = Array.length steps in
  if n <= target then steps
  else
    Array.init target (fun i ->
        let j =
          int_of_float
            (Float.round
               (float_of_int i /. float_of_int (target - 1)
               *. float_of_int (n - 1)))
        in
        steps.(j))

(* Assemble a life function from (time, survival) steps: prepend the
   boundary knot (0, 1), extend past the last event so the curve reaches
   exactly 0, deduplicate abscissae, force monotone nonincreasing values,
   and fit a monotone PCHIP. *)
let life_of_steps ~name ~knots steps =
  let target = Int.max 4 (Int.min knots (Array.length steps)) in
  let thinned = thin target steps in
  let last_t, last_s = thinned.(Array.length thinned - 1) in
  let gap =
    if Array.length thinned >= 2 then
      Float.max 1e-9
        ((last_t -. fst thinned.(0)) /. float_of_int (Array.length thinned - 1))
    else Float.max 1e-9 (0.1 *. last_t)
  in
  let tail = if last_s > 0.0 then [ (last_t +. gap, 0.0) ] else [] in
  let raw = (0.0, 1.0) :: (Array.to_list thinned @ tail) in
  let cleaned = ref [] in
  let last_x = ref neg_infinity and last_y = ref 1.0 in
  List.iter
    (fun (x, y) ->
      let y = Float.min !last_y (Special.smooth_clamp01 y) in
      if x > !last_x +. 1e-12 then begin
        cleaned := (x, y) :: !cleaned;
        last_x := x;
        last_y := y
      end)
    raw;
  let pts = Array.of_list (List.rev !cleaned) in
  let xs = Array.map fst pts and ys = Array.map snd pts in
  let ip = Interp.pchip ~xs ~ys in
  (Families.of_interpolant ~name ip, pts)

let count_censored obs =
  Array.fold_left
    (fun acc o -> if o.Owner_model.observed then acc else acc + 1)
    0 obs

let raw_steps obs =
  let n = Array.length obs in
  if n = 0 then invalid_arg "Survival.of_observations: empty input";
  let n_censored = count_censored obs in
  if n - n_censored = 0 then
    invalid_arg "Survival.of_observations: all observations censored";
  if n_censored > 0 then
    Stats.kaplan_meier
      (Array.map (fun o -> (o.Owner_model.duration, o.Owner_model.observed)) obs)
  else Stats.ecdf_survival (Array.map (fun o -> o.Owner_model.duration) obs)

let of_observations ?(knots = 32) obs =
  let steps = raw_steps obs in
  let n = Array.length obs in
  let n_censored = count_censored obs in
  let name =
    Printf.sprintf "trace-estimate(n=%d%s)" n
      (if n_censored > 0 then Printf.sprintf ", %d censored" n_censored
       else "")
  in
  let life, pts = life_of_steps ~name ~knots steps in
  { life; knots = pts; n_observed = n - n_censored; n_censored }

let of_durations ?knots ds =
  of_observations ?knots
    (Array.map (fun d -> { Owner_model.duration = d; observed = true }) ds)

type bands = {
  lower : Life_function.t;
  point : Life_function.t;
  upper : Life_function.t;
  z : float;
}

let confidence_bands ?(knots = 32) ?(z = 1.96) obs =
  if z < 0.0 then invalid_arg "Survival.confidence_bands: z must be >= 0";
  let n = Array.length obs in
  if n = 0 then invalid_arg "Survival.confidence_bands: empty input";
  if n - count_censored obs = 0 then
    invalid_arg "Survival.confidence_bands: all observations censored";
  let steps =
    Stats.kaplan_meier_greenwood
      (Array.map (fun o -> (o.Owner_model.duration, o.Owner_model.observed)) obs)
  in
  let shifted sign =
    (* Clamp into [0, 1]; life_of_steps enforces monotonicity. *)
    Array.map
      (fun (t, s, sd) -> (t, Special.smooth_clamp01 (s +. (sign *. z *. sd))))
      steps
  in
  let point_steps = Array.map (fun (t, s, _) -> (t, s)) steps in
  let mk tag curve =
    fst (life_of_steps ~name:(Printf.sprintf "trace-%s(n=%d, z=%g)" tag n z)
           ~knots curve)
  in
  {
    lower = mk "lower" (shifted (-1.0));
    point = mk "point" point_steps;
    upper = mk "upper" (shifted 1.0);
    z;
  }

let survival_rmse e ~truth =
  let hi =
    match Life_function.support e.life with
    | Life_function.Bounded l -> l
    | Life_function.Unbounded -> Life_function.horizon e.life
  in
  let grid = 256 in
  let predicted =
    Array.init grid (fun i ->
        Life_function.eval e.life
          (float_of_int i /. float_of_int (grid - 1) *. hi))
  in
  let actual =
    Array.init grid (fun i ->
        Life_function.eval truth
          (float_of_int i /. float_of_int (grid - 1) *. hi))
  in
  Stats.rmse ~predicted ~actual
