type fitted = {
  family : string;
  life : Life_function.t;
  sse : float;
  params : (string * float) list;
}

let check_durations name ds =
  if Array.length ds = 0 then invalid_arg (name ^ ": empty input");
  Array.iter
    (fun d ->
      if not (Float.is_finite d) || d <= 0.0 then
        invalid_arg (name ^ ": durations must be positive and finite"))
    ds

let sse_against_ecdf lf ds =
  let steps = Stats.ecdf_survival ds in
  let acc = Kahan.create () in
  Array.iter
    (fun (x, s) ->
      let d = Life_function.eval lf x -. s in
      Kahan.add acc (d *. d))
    steps;
  Kahan.total acc

let finish family life params ds =
  { family; life; sse = sse_against_ecdf life ds; params }

let exponential_mle ds =
  check_durations "Fit.exponential_mle" ds;
  let rate = 1.0 /. Stats.mean ds in
  finish "exponential"
    (Families.exponential ~rate)
    [ ("rate", rate) ]
    ds

let uniform_fit ds =
  check_durations "Fit.uniform_fit" ds;
  let n = float_of_int (Array.length ds) in
  let mx = Array.fold_left Float.max ds.(0) ds in
  let l = mx *. (n +. 1.0) /. n in
  finish "uniform" (Families.uniform ~lifespan:l) [ ("lifespan", l) ] ds

let weibull_mle ?(tol = 1e-10) ?(max_iter = 200) ds =
  check_durations "Fit.weibull_mle" ds;
  let n = Array.length ds in
  let distinct = Array.exists (fun d -> d <> ds.(0)) ds in
  if n < 2 || not distinct then
    invalid_arg "Fit.weibull_mle: need >= 2 distinct durations";
  let logs = Array.map log ds in
  let mean_log = Stats.mean logs in
  (* Profile-likelihood equation for the shape k:
     g(k) = sum(x^k ln x)/sum(x^k) - 1/k - mean(ln x) = 0, increasing in k. *)
  let g k =
    let num = Kahan.create () and den = Kahan.create () in
    Array.iteri
      (fun i d ->
        let xk = Float.pow d k in
        Kahan.add num (xk *. logs.(i));
        Kahan.add den xk)
      ds;
    (Kahan.total num /. Kahan.total den) -. (1.0 /. k) -. mean_log
  in
  let lo, hi = Rootfind.expand_bracket g ~lo:0.05 ~hi:5.0 in
  let r = Rootfind.brent ~tol ~max_iter g ~lo ~hi in
  let shape = r.Rootfind.root in
  let scale =
    let acc = Kahan.create () in
    Array.iter (fun d -> Kahan.add acc (Float.pow d shape)) ds;
    Float.pow (Kahan.total acc /. float_of_int n) (1.0 /. shape)
  in
  finish "weibull"
    (Families.weibull ~shape ~scale)
    [ ("shape", shape); ("scale", scale) ]
    ds

let geometric_increasing_fit ds =
  check_durations "Fit.geometric_increasing_fit" ds;
  let mx = Array.fold_left Float.max ds.(0) ds in
  let objective l =
    if l <= mx then infinity
    else sse_against_ecdf (Families.geometric_increasing ~lifespan:l) ds
  in
  let best =
    Optimize.golden_section_min objective ~lo:(mx *. 1.0001) ~hi:(mx *. 4.0)
  in
  let l = best.Optimize.x in
  finish "geometric-increasing"
    (Families.geometric_increasing ~lifespan:l)
    [ ("lifespan", l) ]
    ds

let polynomial_fit ?(d_max = 5) ds =
  check_durations "Fit.polynomial_fit" ds;
  if d_max < 1 then invalid_arg "Fit.polynomial_fit: d_max must be >= 1";
  let mx = Array.fold_left Float.max ds.(0) ds in
  let candidate d =
    let objective l =
      if l <= mx then infinity
      else sse_against_ecdf (Families.polynomial ~d ~lifespan:l) ds
    in
    let best =
      Optimize.golden_section_min objective ~lo:(mx *. 1.0001) ~hi:(mx *. 4.0)
    in
    (d, best.Optimize.x, best.Optimize.fx)
  in
  let d, l, _ =
    List.fold_left
      (fun (bd, bl, bs) dcand ->
        let d, l, s = candidate dcand in
        if s < bs then (d, l, s) else (bd, bl, bs))
      (candidate 1)
      (List.init (d_max - 1) (fun i -> i + 2))
  in
  finish
    (Printf.sprintf "polynomial(d=%d)" d)
    (Families.polynomial ~d ~lifespan:l)
    [ ("d", float_of_int d); ("lifespan", l) ]
    ds

let best_fit ?d_max ds =
  check_durations "Fit.best_fit" ds;
  if Array.length ds < 2 then
    invalid_arg "Fit.best_fit: need at least 2 observations";
  let candidates =
    [
      exponential_mle ds;
      uniform_fit ds;
      polynomial_fit ?d_max ds;
      geometric_increasing_fit ds;
    ]
    @ (try [ weibull_mle ds ] with Invalid_argument _ -> [])
  in
  List.fold_left
    (fun best c -> if c.sse < best.sse then c else best)
    (List.hd candidates) (List.tl candidates)
