(** The Corollary 3.2 admissibility question: does a life function admit an
    optimal schedule at all?

    The paper asserts that heavy-tailed functions such as [1/(t+1)^d],
    [d > 1], admit no optimal schedule. Reproducing this claim uncovered
    two subtleties worth recording (see also EXPERIMENTS.md, E11):

    - The corollary's literal condition — ∃[t > c] with
      [p(t) > -(t-c)·p'(t)] — is vacuous: the margin at [t → c⁺] is
      [p(c) > 0] for every life function, so the condition never excludes
      anything. The {!margin} function is kept because the margin {e
      profile} is still informative (it vanishes exactly at single-period
      optimality points).
    - The full necessary system (3.1) admits a numerical solution even for
      the power laws: a measure-zero "separatrix" initial period whose
      eq.-3.6 orbit stays productive to arbitrary horizons (every other
      [t_0] collapses). At double precision that orbit is indistinguishable
      from an optimum. What {e does} rigorously separate the paper's
      inadmissible examples is their tail weight.

    The executable classification therefore rests on tail analysis:

    - {b Unbounded work}: if [∫ p] diverges ([d <= 1]), expected work is
      unbounded over schedules and no maximiser exists.
    - {b Heavy (polynomial) tail}: if [∫ p] converges but doubling tail
      panels of the integral decay by a ratio that stabilises at a positive
      constant ([2^{1-d}] for a [t^{-d}] tail) instead of rushing to zero
      (exponential, Weibull and all bounded-support functions), the
      function is classified inadmissible, matching the paper's [d > 1]
      examples. Operationally these are also the functions for which the
      guideline recurrence is catastrophically ill-conditioned: the set of
      initial periods with non-collapsing orbits has measure zero.
    - Bounded supports are always admissible (expected work is continuous
      on a compact schedule space).

    The tail probes are numerical (finite panels) and classify all of the
    paper's examples correctly, with a fuzzy band only at near-critical
    tails. *)

type reason =
  | Negative_margin of { max_margin : float }
      (** No sampled [t > c] had a nonnegative Corollary 3.2 margin.
          Unreachable for genuine life functions (see above); retained for
          defensive completeness on user-supplied [p]. *)
  | Unbounded_work of { tail_ratio : float }
      (** [∫ p] appears to diverge: doubling tail panels decay by
          [tail_ratio >= 0.98], so the supremum of expected work is
          infinite and not attained (e.g. [1/(t+1)]). *)
  | Heavy_tail of { tail_ratio : float }
      (** [∫ p] converges but the tail is polynomial: panel ratios
          stabilise at [tail_ratio] ∈ (0.02, 0.98) instead of decaying.
          The paper's [d > 1] power laws land here. *)

type verdict =
  | Admissible of { witness : float; margin : float }
      (** [witness > c] maximises the Corollary 3.2 margin; the tail is
          light enough for an optimal schedule to exist. *)
  | Inadmissible of reason

val margin : Life_function.t -> c:float -> float -> float
(** [margin p ~c t] is [p(t) + (t - c)·p'(t)] — the Corollary 3.2 margin. *)

val test : ?samples:int -> Life_function.t -> c:float -> verdict
(** [test p ~c] runs the margin scan ([samples] points, default 2048) and,
    for unbounded supports, the tail-weight analysis.
    Requires [0 < c < horizon p]. *)

val is_admissible : ?samples:int -> Life_function.t -> c:float -> bool
(** [is_admissible p ~c] is [true] iff {!test} returns {!Admissible}. *)
