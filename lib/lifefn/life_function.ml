
type support = Bounded of float | Unbounded
type shape = Concave | Convex | Linear | Unknown

type t = {
  name : string;
  support : support;
  p : float -> float;
  dp : (float -> float) option;
  shape : shape;
}

exception Invalid_life_function of string

let fail fmt = Format.kasprintf (fun s -> raise (Invalid_life_function s)) fmt

let raw_horizon support p =
  match support with
  | Bounded l -> l
  | Unbounded ->
      (* Geometric search for the 1e-12 survival point. *)
      let t = ref 1.0 in
      let guard = ref 0 in
      while p !t > 1e-12 && !guard < 80 do
        incr guard;
        t := !t *. 2.0
      done;
      !t

let validate_fn ~name ~support p =
  (match support with
  | Bounded l when not (l > 0.0 && Float.is_finite l) ->
      fail "%s: bounded lifespan must be finite and positive" name
  | Bounded _ | Unbounded -> ());
  let p0 = p 0.0 in
  if Float.abs (p0 -. 1.0) > 1e-9 then
    fail "%s: p(0) = %g, expected 1" name p0;
  let hi = raw_horizon support p in
  let samples = 128 in
  let prev = ref p0 in
  for i = 1 to samples do
    let t = float_of_int i /. float_of_int samples *. hi in
    let v = p t in
    if Float.is_nan v then fail "%s: p(%g) is NaN" name t;
    if v < -1e-9 || v > 1.0 +. 1e-9 then
      fail "%s: p(%g) = %g outside [0, 1]" name t v;
    if v > !prev +. 1e-9 then
      fail "%s: p increases near t = %g (%g -> %g)" name t !prev v;
    prev := v
  done

let make ?dp ?(shape = Unknown) ?(validate = true) ~name ~support p =
  if validate then validate_fn ~name ~support p;
  { name; support; p; dp; shape }

let name t = t.name
let support t = t.support
let shape t = t.shape

let eval t x =
  if x <= 0.0 then 1.0
  else
    match t.support with
    | Bounded l when x >= l -> 0.0
    | Bounded _ | Unbounded -> Float.max 0.0 (t.p x)

let deriv t x =
  match t.dp with
  | Some dp -> dp x
  | None ->
      let hi = match t.support with Bounded l -> l | Unbounded -> infinity in
      Diff.derivative_on_support ~lo:0.0 ~hi (eval t) x

let horizon t = raw_horizon t.support t.p

let hazard t x =
  let v = eval t x in
  if v <= 0.0 then infinity else -.deriv t x /. v

let conditional_survival t ~elapsed s =
  let pe = eval t elapsed in
  if pe <= 0.0 then 0.0 else eval t (elapsed +. s) /. pe

let mean_lifetime t =
  match t.support with
  | Bounded l -> Quadrature.adaptive_simpson (eval t) ~lo:0.0 ~hi:l
  | Unbounded -> Quadrature.integrate_to_infinity (eval t) ~lo:0.0

let quantile_time t ~q =
  if not (q > 0.0 && q < 1.0) then
    invalid_arg "Life_function.quantile_time: q must lie in (0, 1)";
  let hi = horizon t in
  if eval t hi > q then hi
  else
    let r = Rootfind.bisect (fun x -> eval t x -. q) ~lo:0.0 ~hi in
    r.Rootfind.root

let classify_shape ?(samples = 256) t =
  let hi = horizon t in
  (* Stay away from the support edges where one-sided noise dominates. *)
  let lo = 0.02 *. hi and span = 0.96 *. hi in
  let tol = 1e-7 in
  let has_pos = ref false and has_neg = ref false in
  for i = 0 to samples - 1 do
    let x = lo +. (float_of_int i /. float_of_int (samples - 1) *. span) in
    let s = Diff.second (eval t) ~h:(1e-4 *. Float.max 1.0 hi) x in
    if s > tol then has_pos := true;
    if s < -.tol then has_neg := true
  done;
  match (!has_pos, !has_neg) with
  | false, false -> Linear
  | true, false -> Convex
  | false, true -> Concave
  | true, true -> Unknown

let is_decreasing_on_grid ?(samples = 256) t =
  let hi = horizon t in
  let ok = ref true in
  let prev = ref (eval t 0.0) in
  for i = 1 to samples do
    let x = float_of_int i /. float_of_int samples *. hi in
    let v = eval t x in
    if v > !prev +. 1e-9 then ok := false;
    prev := v
  done;
  !ok

let pp ppf t =
  let support_str =
    match t.support with
    | Bounded l -> Printf.sprintf "lifespan %g" l
    | Unbounded -> "unbounded"
  in
  let shape_str =
    match t.shape with
    | Concave -> "concave"
    | Convex -> "convex"
    | Linear -> "linear"
    | Unknown -> "unknown shape"
  in
  Format.fprintf ppf "%s (%s, %s)" t.name support_str shape_str
