(** The life-function families of the paper.

    Sections 3.1 and 4 study three scenario families from
    Bhatt–Chung–Leighton–Rosenberg [3] — uniform risk, geometric-decreasing
    lifespan, geometric-increasing risk — plus the polynomial generalisation
    [p_{d,L}] of uniform risk and the inadmissible power-law family of
    Corollary 3.2. All constructors return fully-validated
    {!Life_function.t} values carrying exact derivatives and declared
    shapes. *)

val uniform : lifespan:float -> Life_function.t
(** [uniform ~lifespan] is [p(t) = 1 - t/L] — uniform risk across the
    episode (§3.1 scenario 3). Both concave and convex ({!Life_function.Linear}).
    Requires [lifespan > 0]. *)

val polynomial : d:int -> lifespan:float -> Life_function.t
(** [polynomial ~d ~lifespan] is [p_{d,L}(t) = 1 - t^d/L^d] (§4.1), concave
    for [d >= 2] and equal to {!uniform} at [d = 1].
    Requires [d >= 1] and [lifespan > 0]. *)

val geometric_decreasing : a:float -> Life_function.t
(** [geometric_decreasing ~a] is [p_a(t) = a^{-t}] (§3.1 scenario 2, §4.2):
    an unbounded episode with a "half-life". Convex.
    Requires [a > 1]. *)

val exponential : rate:float -> Life_function.t
(** [exponential ~rate] is [p(t) = e^{-rate·t}], the natural
    parameterisation of {!geometric_decreasing} ([a = e^rate]).
    Requires [rate > 0]. *)

val geometric_increasing : lifespan:float -> Life_function.t
(** [geometric_increasing ~lifespan] is [p(t) = (2^L - 2^t)/(2^L - 1)]
    (§3.1 scenario 1, §4.3): the risk of interruption doubles each time
    unit, the "coffee break" model. Concave. Computed in the
    overflow-stable form [(1 - 2^{t-L})/(1 - 2^{-L})].
    Requires [lifespan > 0]. *)

val weibull : shape:float -> scale:float -> Life_function.t
(** [weibull ~shape ~scale] is [p(t) = exp(-(t/scale)^shape)]: the standard
    lifetime model used when fitting owner traces; convex for [shape <= 1],
    neither convex nor concave globally for [shape > 1] (declared
    {!Life_function.Unknown}). Requires [shape > 0] and [scale > 0]. *)

val power_law : d:float -> Life_function.t
(** [power_law ~d] is [p(t) = 1/(t+1)^d]. For [d > 1] this is the paper's
    Corollary 3.2 example of a life function admitting {e no} optimal
    schedule; kept for the E11 experiment and negative tests. Convex.
    Requires [d > 0]. *)

val of_interpolant : name:string -> Interp.t -> Life_function.t
(** [of_interpolant ~name ip] promotes a monotone interpolant (typically a
    PCHIP fit of a trace survival estimate, see [Cs_trace]) to a life
    function with bounded support at the last knot. Values are clamped to
    [[0, 1]]; the knot at 0 must carry value 1 within 1e-6.
    @raise Life_function.Invalid_life_function if the interpolant is not a
    valid survival curve. *)

val scale_time : factor:float -> Life_function.t -> Life_function.t
(** [scale_time ~factor p] is the life function [t ↦ p(t / factor)] —
    stretches the episode by [factor] (e.g. convert minutes to seconds).
    Preserves shape. Requires [factor > 0]. *)

val all_paper_scenarios :
  c:float -> (string * Life_function.t) list
(** [all_paper_scenarios ~c] is a labelled list of representative instances
    of the three §4 scenarios with lifespans/rates scaled sensibly for
    overhead [c]; used by tests and benches to sweep "every scenario the
    paper evaluates". *)
