(** Life functions — the risk model of the paper (§2.1).

    A life function [p] gives, for each time [t], the probability that the
    borrowed workstation has not yet been reclaimed: [p 0 = 1] and [p]
    decreases monotonically, to [0] at a finite potential lifespan [L]
    (bounded episodes) or in the limit (unbounded episodes). The paper's
    guidelines additionally assume [p] is differentiable ("smooth"), with
    concavity/convexity unlocking the Theorem 3.3 upper bounds; this module
    carries that structure explicitly so every scheduler can dispatch on it. *)

type support =
  | Bounded of float  (** Potential lifespan [L]: [p t = 0] for [t >= L]. *)
  | Unbounded  (** [p] decreases to 0 only in the limit. *)

type shape =
  | Concave  (** [p'] nonincreasing (risk of interruption accelerates). *)
  | Convex  (** [p'] nondecreasing (episodes have a "half-life" flavour). *)
  | Linear  (** Both concave and convex — the uniform-risk scenario. *)
  | Unknown  (** No shape certificate; only the general bounds apply. *)

type t
(** A validated life function. *)

exception Invalid_life_function of string
(** Raised by {!make} when the candidate violates [p 0 = 1], monotonicity,
    or range constraints on a sample grid. *)

val make :
  ?dp:(float -> float) ->
  ?shape:shape ->
  ?validate:bool ->
  name:string ->
  support:support ->
  (float -> float) ->
  t
(** [make ~name ~support p] wraps [p] as a life function. [?dp] supplies the
    exact derivative (otherwise finite differences on the support are used).
    [?shape] declares concavity/convexity — callers are trusted, but
    [?validate] (default [true]) samples [p] on a grid to check
    [p 0 = 1] within 1e-9, values in [[0, 1]], and monotone nonincrease.
    @raise Invalid_life_function on validation failure. *)

val name : t -> string
val support : t -> support
val shape : t -> shape

val eval : t -> float -> float
(** [eval p t] is [p(t)], clamped to [1] for [t <= 0] and to [0] beyond a
    bounded lifespan, so schedulers may probe slightly outside the support
    without special-casing. *)

val deriv : t -> float -> float
(** [deriv p t] is [p'(t)] — exact if supplied to {!make}, otherwise a
    support-aware finite difference. At a bounded lifespan's edge the
    one-sided derivative is used. *)

val horizon : t -> float
(** [horizon p] is the lifespan [L] for bounded support, and for unbounded
    support the abscissa where [p] first drops below 1e-12 (found by
    geometric search) — a practical integration/search limit. *)

val hazard : t -> float -> float
(** [hazard p t] is the instantaneous reclaim rate [-p'(t) / p(t)].
    Returns [infinity] where [p t = 0]. *)

val conditional_survival : t -> elapsed:float -> float -> float
(** [conditional_survival p ~elapsed s] is
    [Pr(alive at elapsed + s | alive at elapsed) = p(elapsed+s)/p(elapsed)].
    Returns [0] if [p elapsed = 0]. *)

val mean_lifetime : t -> float
(** [mean_lifetime p] is [E(reclaim time) = ∫₀^∞ p(t) dt], by adaptive
    quadrature over the support. *)

val quantile_time : t -> q:float -> float
(** [quantile_time p ~q] is the earliest [t] with [p t <= q], i.e. the
    [(1-q)]-quantile of the reclaim time; used by inverse-CDF samplers.
    Requires [0 < q < 1]. *)

val classify_shape : ?samples:int -> t -> shape
(** [classify_shape p] estimates the shape numerically by testing the sign
    of [p''] on a grid over the support interior (default 256 samples),
    ignoring the declared shape. Returns {!Unknown} when the samples mix
    signs beyond tolerance. Useful for trace-derived functions. *)

val is_decreasing_on_grid : ?samples:int -> t -> bool
(** [is_decreasing_on_grid p] re-runs the monotonicity validation; exposed
    for property tests on programmatically-constructed functions. *)

val pp : Format.formatter -> t -> unit
(** Prints name, support and shape. *)
