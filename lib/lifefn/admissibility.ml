type reason =
  | Negative_margin of { max_margin : float }
  | Unbounded_work of { tail_ratio : float }
  | Heavy_tail of { tail_ratio : float }

type verdict =
  | Admissible of { witness : float; margin : float }
  | Inadmissible of reason

let margin lf ~c t =
  Life_function.eval lf t +. ((t -. c) *. Life_function.deriv lf t)

(* Tail-weight analysis: integrate p over doubling panels starting where p
   has decayed to ~0.01 and study the ratios of consecutive panel
   contributions. For a polynomial tail t^{-d} the ratio converges to
   2^{1-d}; for exponential-type tails it rushes to 0; for a divergent
   integral it sits at (or above) 1. Returns (median_ratio, stable) where
   [stable] says the trailing ratios neither decay toward zero nor drift. *)
let tail_profile lf =
  let start =
    try Life_function.quantile_time lf ~q:0.01 with Invalid_argument _ -> 1.0
  in
  let start = Float.max start 1.0 in
  let panels = 24 in
  let ratios = ref [] in
  let prev = ref None in
  let a = ref start in
  for _ = 1 to panels do
    let b = 2.0 *. !a in
    let piece =
      Quadrature.adaptive_simpson ~tol:1e-12 (Life_function.eval lf) ~lo:!a
        ~hi:b
    in
    (match !prev with
    | Some p when p > 0.0 && piece >= 0.0 -> ratios := (piece /. p) :: !ratios
    | Some _ | None -> ());
    prev := Some piece;
    a := b
  done;
  match !ratios with
  | [] -> (0.0, false)
  | newest_first ->
      let last8 = List.filteri (fun i _ -> i < 8) newest_first in
      let sorted = List.sort Float.compare last8 in
      let median = List.nth sorted (List.length sorted / 2) in
      (* Stability: the newest ratio has not collapsed relative to the
         median of the trailing window. *)
      let newest = List.hd newest_first in
      let stable = median > 0.0 && newest >= 0.5 *. median in
      (median, stable)

let test ?(samples = 2048) lf ~c =
  if c <= 0.0 then invalid_arg "Admissibility.test: c must be > 0";
  let hi = Life_function.horizon lf in
  if c >= hi then invalid_arg "Admissibility.test: c >= horizon";
  let g = margin lf ~c in
  (* Log-spaced scan of (c, hi) for the maximal margin and its witness. *)
  let lo = c *. (1.0 +. 1e-9) in
  let ratio = hi /. lo in
  let best_t = ref lo and best_g = ref (g lo) in
  for i = 1 to samples - 1 do
    let t =
      lo *. Float.pow ratio (float_of_int i /. float_of_int (samples - 1))
    in
    let v = g t in
    if v > !best_g then begin
      best_g := v;
      best_t := t
    end
  done;
  let refined =
    Optimize.golden_section_max g
      ~lo:(Float.max lo (!best_t /. 2.0))
      ~hi:(Float.min hi (!best_t *. 2.0))
  in
  let best_t, best_g =
    if refined.Optimize.fx > !best_g then
      (refined.Optimize.x, refined.Optimize.fx)
    else (!best_t, !best_g)
  in
  if best_g < 0.0 then Inadmissible (Negative_margin { max_margin = best_g })
  else begin
    match Life_function.support lf with
    | Life_function.Bounded _ ->
        (* Compactness: finite horizon, bounded period counts, continuous
           E — an optimal schedule always exists. *)
        Admissible { witness = best_t; margin = best_g }
    | Life_function.Unbounded ->
        let tail_ratio, stable = tail_profile lf in
        if tail_ratio >= 0.98 then
          Inadmissible (Unbounded_work { tail_ratio })
        else if stable && tail_ratio > 0.02 then
          Inadmissible (Heavy_tail { tail_ratio })
        else Admissible { witness = best_t; margin = best_g }
  end

let is_admissible ?samples lf ~c =
  match test ?samples lf ~c with
  | Admissible _ -> true
  | Inadmissible _ -> false
