let ln2 = log 2.0

let uniform ~lifespan =
  if lifespan <= 0.0 then invalid_arg "Families.uniform: lifespan must be > 0";
  let l = lifespan in
  Life_function.make
    ~name:(Printf.sprintf "uniform(L=%g)" l)
    ~support:(Life_function.Bounded l)
    ~dp:(fun t -> if t < 0.0 || t > l then 0.0 else -1.0 /. l)
    ~shape:Life_function.Linear
    (fun t -> 1.0 -. (t /. l))

let polynomial ~d ~lifespan =
  if d < 1 then invalid_arg "Families.polynomial: d must be >= 1";
  if lifespan <= 0.0 then
    invalid_arg "Families.polynomial: lifespan must be > 0";
  if d = 1 then uniform ~lifespan
  else begin
    let l = lifespan in
    let df = float_of_int d in
    Life_function.make
      ~name:(Printf.sprintf "polynomial(d=%d, L=%g)" d l)
      ~support:(Life_function.Bounded l)
      ~dp:(fun t ->
        if t < 0.0 || t > l then 0.0
        else -.df *. Float.pow (t /. l) (df -. 1.0) /. l)
      ~shape:Life_function.Concave
      (fun t -> 1.0 -. Float.pow (t /. l) df)
  end

let geometric_decreasing ~a =
  if a <= 1.0 then
    invalid_arg "Families.geometric_decreasing: requires a > 1";
  let lna = log a in
  Life_function.make
    ~name:(Printf.sprintf "geometric-decreasing(a=%g)" a)
    ~support:Life_function.Unbounded
    ~dp:(fun t -> -.lna *. exp (-.lna *. t))
    ~shape:Life_function.Convex
    (fun t -> exp (-.lna *. t))

let exponential ~rate =
  if rate <= 0.0 then invalid_arg "Families.exponential: rate must be > 0";
  Life_function.make
    ~name:(Printf.sprintf "exponential(rate=%g)" rate)
    ~support:Life_function.Unbounded
    ~dp:(fun t -> -.rate *. exp (-.rate *. t))
    ~shape:Life_function.Convex
    (fun t -> exp (-.rate *. t))

let geometric_increasing ~lifespan =
  if lifespan <= 0.0 then
    invalid_arg "Families.geometric_increasing: lifespan must be > 0";
  let l = lifespan in
  (* (2^L - 2^t)/(2^L - 1) = (1 - 2^{t-L})/(1 - 2^{-L}): stable for large L. *)
  let denom = -.Float.expm1 (-.l *. ln2) in
  let p t =
    if t >= l then 0.0 else -.Float.expm1 ((t -. l) *. ln2) /. denom
  in
  let dp t =
    if t < 0.0 || t > l then 0.0
    else -.ln2 *. exp ((t -. l) *. ln2) /. denom
  in
  Life_function.make
    ~name:(Printf.sprintf "geometric-increasing(L=%g)" l)
    ~support:(Life_function.Bounded l) ~dp ~shape:Life_function.Concave p

let weibull ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then
    invalid_arg "Families.weibull: shape and scale must be > 0";
  let sh = shape and sc = scale in
  let declared =
    if sh <= 1.0 then Life_function.Convex else Life_function.Unknown
  in
  Life_function.make
    ~name:(Printf.sprintf "weibull(shape=%g, scale=%g)" sh sc)
    ~support:Life_function.Unbounded
    ~dp:(fun t ->
      if t <= 0.0 then
        if sh < 1.0 then neg_infinity
        else if Tol.exactly sh 1.0 then -1.0 /. sc
        else 0.0
      else
        let z = t /. sc in
        let zs = Float.pow z sh in
        -.sh /. t *. zs *. exp (-.zs))
    ~shape:declared
    (fun t -> if t <= 0.0 then 1.0 else exp (-.Float.pow (t /. sc) sh))

let power_law ~d =
  if d <= 0.0 then invalid_arg "Families.power_law: d must be > 0";
  Life_function.make
    ~name:(Printf.sprintf "power-law(d=%g)" d)
    ~support:Life_function.Unbounded
    ~dp:(fun t -> -.d *. Float.pow (t +. 1.0) (-.d -. 1.0))
    ~shape:Life_function.Convex
    (fun t -> Float.pow (t +. 1.0) (-.d))

let of_interpolant ~name ip =
  let lo, hi = Interp.domain ip in
  if not (Tol.exactly lo 0.0) then
    raise
      (Life_function.Invalid_life_function
         (Printf.sprintf "%s: interpolant domain must start at 0 (got %g)"
            name lo));
  let p t = Special.smooth_clamp01 (Interp.eval ip t) in
  Life_function.make ~name
    ~support:(Life_function.Bounded hi)
    ~dp:(fun t ->
      if t < 0.0 || t > hi then 0.0
      else Float.min 0.0 (Interp.derivative ip t))
    p

let scale_time ~factor lf =
  if factor <= 0.0 then
    invalid_arg "Families.scale_time: factor must be > 0";
  let support =
    match Life_function.support lf with
    | Life_function.Bounded l -> Life_function.Bounded (l *. factor)
    | Life_function.Unbounded -> Life_function.Unbounded
  in
  Life_function.make
    ~name:(Printf.sprintf "%s (time x%g)" (Life_function.name lf) factor)
    ~support
    ~dp:(fun t -> Life_function.deriv lf (t /. factor) /. factor)
    ~shape:(Life_function.shape lf)
    ~validate:false
    (fun t -> Life_function.eval lf (t /. factor))

let all_paper_scenarios ~c =
  if c <= 0.0 then
    invalid_arg "Families.all_paper_scenarios: c must be > 0";
  [
    ("uniform-risk", uniform ~lifespan:(100.0 *. c));
    ("polynomial-d2", polynomial ~d:2 ~lifespan:(100.0 *. c));
    ("polynomial-d3", polynomial ~d:3 ~lifespan:(100.0 *. c));
    ("geometric-decreasing", geometric_decreasing ~a:(exp (0.05 /. c)));
    ("geometric-increasing", geometric_increasing ~lifespan:(30.0 *. c));
  ]
