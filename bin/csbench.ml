(* csbench — the bench-trajectory tool: diff and gate BENCH_T1.json
   records, and summarise the BENCH_HISTORY.jsonl trajectory.

   Subcommands:
     csbench diff    OLD.json NEW.json     # full comparison table
     csbench check   OLD.json NEW.json     # same, exit 1 on regressions
     csbench history BENCH_HISTORY.jsonl   # trajectory summary
     csbench trend   METRIC [--history F] [--store DIR]  # cross-run slope

   [check] is the regression gate: verdicts come from Bench_gate's
   noise-aware tolerances (a benchmark whose fit has low r^2 gets a
   proportionally wider band), and the exit status is 0 when every
   shared benchmark is within its band, 1 otherwise. [--advisory]
   always exits 0 so CI can surface the table without failing the
   build while a baseline machine profile is being established.

   Exit codes: 0 ok, 1 confirmed regression(s), 2 usage / unreadable
   or malformed input. *)

open Cmdliner

let load_or_die path =
  match Bench_record.load path with
  | Ok r -> r
  | Error msg ->
      prerr_endline ("csbench: " ^ msg);
      exit 2

let old_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"OLD" ~doc:"Baseline BENCH_T1.json record.")

let new_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"NEW" ~doc:"Candidate BENCH_T1.json record.")

let tol_term =
  Arg.(
    value & opt float 0.15
    & info [ "tol"; "base-tolerance" ] ~docv:"FRAC"
        ~doc:
          "Base fractional tolerance applied to a perfectly clean fit \
           (r^2 = 1).")

let noise_scale_term =
  Arg.(
    value & opt float 0.85
    & info [ "noise-scale" ] ~docv:"FRAC"
        ~doc:
          "How much the tolerance widens as fit quality degrades: \
           tol = base + scale * (1 - min r^2).")

let header (r : Bench_record.t) =
  Printf.sprintf "%s @ %s (ocaml %s, host %s)" r.Bench_record.suite
    r.Bench_record.git_sha r.Bench_record.ocaml r.Bench_record.hostname

let compare_files ~base_tolerance ~noise_scale old_path new_path =
  let old_run = load_or_die old_path in
  let new_run = load_or_die new_path in
  (try
     Format.printf "old: %s@.new: %s@.@." (header old_run) (header new_run)
   with Sys_error _ -> ());
  let report =
    Bench_gate.compare_runs ~base_tolerance ~noise_scale ~old_run ~new_run ()
  in
  Format.printf "%a" Bench_gate.pp report;
  report

let diff_cmd =
  let run base_tolerance noise_scale old_path new_path =
    ignore (compare_files ~base_tolerance ~noise_scale old_path new_path)
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two bench records and print the per-benchmark verdict \
          table (never fails on regressions; see $(b,check)).")
    Term.(const run $ tol_term $ noise_scale_term $ old_arg $ new_arg)

let check_cmd =
  let advisory =
    Arg.(
      value & flag
      & info [ "advisory" ]
          ~doc:
            "Print the comparison but always exit 0 — for CI runners \
             whose timing baseline is not yet trusted.")
  in
  let run base_tolerance noise_scale advisory old_path new_path =
    let report =
      compare_files ~base_tolerance ~noise_scale old_path new_path
    in
    if Bench_gate.has_regressions report then begin
      if advisory then
        print_endline "advisory mode: regressions reported but not fatal"
      else exit 1
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Gate a candidate record against a baseline: exit 1 when any \
          benchmark regresses beyond its noise-aware tolerance.")
    Term.(
      const run $ tol_term $ noise_scale_term $ advisory $ old_arg $ new_arg)

let history_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"HISTORY"
          ~doc:"BENCH_HISTORY.jsonl trajectory (one record per line).")
  in
  let bench_filter =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench" ] ~docv:"NAME"
          ~doc:"Only show the trajectory of benchmark $(docv).")
  in
  let run file bench_filter =
    match Bench_record.load_history file with
    | Error msg ->
        prerr_endline ("csbench: " ^ msg);
        exit 2
    | Ok [] -> print_endline "history is empty"
    | Ok records -> (
        match bench_filter with
        | None ->
            Format.printf "%d run(s)@." (List.length records);
            List.iter
              (fun (r : Bench_record.t) ->
                Format.printf "  %s — %d benchmark(s), quota %.2fs@."
                  (header r)
                  (List.length r.Bench_record.results)
                  r.Bench_record.quota_seconds)
              records
        | Some name ->
            let shown = ref 0 in
            List.iter
              (fun (r : Bench_record.t) ->
                match List.assoc_opt name r.Bench_record.results with
                | None -> ()
                | Some e ->
                    incr shown;
                    Format.printf "  %-24s %12.1f ns/call  r^2 %s@."
                      r.Bench_record.git_sha e.Bench_record.ns_per_call
                      (if Float.is_nan e.Bench_record.r_square then "n/a"
                       else Printf.sprintf "%.3f" e.Bench_record.r_square))
              records;
            if !shown = 0 then
              Format.printf "benchmark %S not present in any run@." name)
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:"Summarise a BENCH_HISTORY.jsonl bench trajectory.")
    Term.(const run $ file $ bench_filter)

let trend_cmd =
  let metric =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"METRIC"
          ~doc:"Benchmark whose cross-run trajectory to analyse.")
  in
  let file =
    Arg.(
      value
      & opt string "BENCH_HISTORY.jsonl"
      & info [ "history" ] ~docv:"FILE"
          ~doc:"Bench trajectory (one record per line).")
  in
  let threshold =
    Arg.(
      value & opt float 1.25
      & info [ "threshold" ] ~docv:"RATIO"
          ~doc:
            "Adjacent-run ratio beyond which a jump is significant \
             (applied both ways: a 1.25 threshold also fires on a \
             1/1.25 speedup).")
  in
  let store_root =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Attribute the first significant jump against the traces \
             filed in this .csobs store: the jump's two commits are \
             looked up by git sha and their traces diffed to the first \
             diverging event.")
  in
  let run metric file threshold store_root =
    if not (threshold > 1.0) then begin
      prerr_endline "csbench: --threshold must be > 1";
      exit 2
    end;
    match Bench_record.load_history file with
    | Error msg ->
        prerr_endline ("csbench: " ^ msg);
        exit 2
    | Ok [] ->
        prerr_endline ("csbench: " ^ file ^ ": history is empty");
        exit 2
    | Ok records -> (
        let tr = Obs_trend.trajectory ~metric records in
        if tr.Obs_trend.points = [] then begin
          prerr_endline
            (Printf.sprintf
               "csbench: benchmark %S not present in any run (have: %s)"
               metric
               (String.concat ", " (Obs_trend.metrics_of records)));
          exit 2
        end;
        Format.printf "%a" Obs_trend.pp_trajectory tr;
        match store_root with
        | None -> ()
        | Some root -> (
            match Obs_store.open_store ~root () with
            | Error msg ->
                prerr_endline ("csbench: " ^ msg);
                exit 2
            | Ok store -> (
                match Obs_trend.attribute ~threshold ~store tr with
                | None ->
                    Format.printf
                      "no jump beyond %.2fx between adjacent usable \
                       points@."
                      threshold
                | Some a -> Format.printf "%a" Obs_trend.pp_attribution a)))
  in
  Cmd.v
    (Cmd.info "trend"
       ~doc:
         "Cross-run trend analytics for one benchmark: the trajectory \
          table, a noise-aware slope over the usable points (advisory \
          entries are shown but never steer the fit), and — with \
          $(b,--store) — attribution of the first significant jump to \
          the first diverging trace event."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Points whose fit was advisory (recorded with \
              \"advisory\": true, or a null/unreliable r^2 in older \
              records) are excluded from the slope and from jump \
              detection: a measurement with unbounded error bars can \
              neither steer a slope nor convict a commit.";
         ])
    Term.(const run $ metric $ file $ threshold $ store_root)

let () =
  let doc = "bench-record diffing and the noise-aware regression gate" in
  let info = Cmd.info "csbench" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ diff_cmd; check_cmd; history_cmd; trend_cmd ]))
