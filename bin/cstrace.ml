(* cstrace — trace analytics for the observability layer.

   Subcommands:
     cstrace report   trace.jsonl [--kind K] [--ws N] [--ep N]
                      [--since T] [--until T] [--episodes]
     cstrace diff     a.jsonl b.jsonl [--context N] [--force]
     cstrace flame    profile_trace.json -o profile.folded
     cstrace prom     trace.jsonl [-o FILE]
     cstrace timeline snapshots.jsonl --metric NAME
     cstrace store    add|ls|rm|gc [--root DIR]
     cstrace serve    --addr ADDR [--snapshots F|--trace F] [--once]
     cstrace fetch    ADDR [PATH] [--validate-prom]
     cstrace collect  --listen ADDR [--http ADDR] [--once] [--store DIR]

   [report] filters and summarises one JSONL event trace; [diff]
   compares two runs event-by-event and pinpoints the first divergence
   (exit 1) — the semantic form of the DESIGN.md §10 determinism check;
   [flame] folds a Chrome span profile into flamegraph.pl/speedscope
   input; [prom] reconstructs deterministic trace.* metrics from the
   events and renders Prometheus text exposition; [timeline] plots one
   metric's trajectory from a --snapshot-every capture file; [store]
   files artifacts in the content-addressed .csobs registry; [serve]
   exposes /metrics, /health and /runs over HTTP; [fetch] is the
   matching one-shot scrape client.

   Exit codes: 0 success (and "traces are identical" for diff), 1 data
   error or divergence, 2 usage error (including a refused
   different-seed diff). *)

open Cmdliner

let die_data msg =
  prerr_endline ("error: " ^ msg);
  exit 1

let load_trace path =
  match Obs_query.load path with Ok t -> t | Error msg -> die_data msg

let write_lines path lines =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          lines)
  with Sys_error msg -> die_data msg

let trace_pos ~docv ~idx =
  Arg.(
    required
    & pos idx (some string) None
    & info [] ~docv ~doc:"JSONL event trace file (written by --trace).")

(* ------------------------------------------------------------------ *)
(* report                                                              *)

let report_cmd =
  let kind =
    Arg.(
      value
      & opt (some string) None
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            "Keep only events of this kind (period_completed, \
             episode_finished, ...).")
  in
  let ws =
    Arg.(
      value
      & opt (some int) None
      & info [ "ws" ] ~docv:"N" ~doc:"Keep only events of workstation $(docv).")
  in
  let ep =
    Arg.(
      value
      & opt (some int) None
      & info [ "ep" ] ~docv:"N" ~doc:"Keep only events of episode $(docv).")
  in
  let since =
    Arg.(
      value
      & opt (some float) None
      & info [ "since" ] ~docv:"T"
          ~doc:"Keep only events at simulated time >= $(docv).")
  in
  let until =
    Arg.(
      value
      & opt (some float) None
      & info [ "until" ] ~docv:"T"
          ~doc:"Keep only events at simulated time <= $(docv).")
  in
  let episodes =
    Arg.(
      value & flag
      & info [ "episodes" ]
          ~doc:"Also print the per-episode timeline table.")
  in
  let run file kind ws ep since until episodes =
    let t = load_trace file in
    (match t.Obs_query.meta with
    | Some m ->
        (* The git sha varies build to build; keep the header line
           reproducible for the cram tests and leave the sha in the
           file. *)
        Format.printf "meta          : %a@." Obs.Meta.pp
          { m with Obs.Meta.git_sha = None }
    | None -> ());
    (match t.Obs_query.truncated with
    | Some n ->
        Format.printf
          "truncated     : stream ended without BYE after %d event(s)@." n
    | None -> ());
    let events =
      Obs_query.filter ?kind ?ws ?ep ?since ?until t.Obs_query.events
    in
    Format.printf "%a" Trace_report.pp (Trace_report.of_events events);
    if episodes then
      Format.printf "per-episode timeline:@.%a" Obs_query.pp_episodes
        (Obs_query.episodes events)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Filter and summarise a JSONL event trace (totals, quantiles, \
          per-episode timelines).")
    Term.(
      const run $ trace_pos ~docv:"TRACE" ~idx:0 $ kind $ ws $ ep $ since
      $ until $ episodes)

(* ------------------------------------------------------------------ *)
(* diff                                                                *)

let diff_cmd =
  let context =
    Arg.(
      value & opt int 3
      & info [ "context" ] ~docv:"N"
          ~doc:"Shared events to show before the divergence point.")
  in
  let force =
    Arg.(
      value & flag
      & info [ "force" ]
          ~doc:
            "Compare even when the traces record different seeds (normally \
             refused: different seeds are expected to diverge).")
  in
  let run left right context force =
    let a = load_trace left and b = load_trace right in
    let seed_of (t : Obs_query.trace) =
      Option.bind t.Obs_query.meta (fun m -> m.Obs.Meta.seed)
    in
    (match (seed_of a, seed_of b) with
    | Some sa, Some sb when (not (Int64.equal sa sb)) && not force ->
        prerr_endline
          (Printf.sprintf
             "error: traces were recorded with different seeds (%Ld vs %Ld); \
              a divergence is expected, not a determinism bug. Pass --force \
              to compare anyway."
             sa sb);
        exit 2
    | _ -> ());
    List.iter
      (fun (name, (t : Obs_query.trace)) ->
        match t.Obs_query.truncated with
        | Some n ->
            Format.eprintf
              "note: %s is truncated (%d event(s) before the producer \
               vanished); a divergence may just be the missing tail@."
              name n
        | None -> ())
      [ (left, a); (right, b) ];
    match Obs_query.diff ~context a.Obs_query.events b.Obs_query.events with
    | None ->
        Format.printf "traces are identical (%d events)@."
          (List.length a.Obs_query.events)
    | Some d ->
        Format.printf "%a" Obs_query.pp_divergence d;
        exit 1
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two runs event-by-event; exit 0 when identical, exit 1 \
          with the first divergence pinpointed otherwise."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Two same-seed runs must produce identical event streams for \
              any --jobs value (DESIGN.md \xc2\xa710). $(tname) checks that \
              contract semantically: provenance headers and wall-time \
              fields (planning elapsed seconds) are not compared (so a \
              --jobs 1 and a --jobs 2 trace of the same run compare \
              equal), and the first differing event is printed with its \
              surrounding context.";
         ])
    Term.(
      const run
      $ trace_pos ~docv:"LEFT" ~idx:0
      $ trace_pos ~docv:"RIGHT" ~idx:1
      $ context $ force)

(* ------------------------------------------------------------------ *)
(* flame                                                               *)

let flame_cmd =
  let file =
    Arg.(
      required
      & Arg.pos 0 (some string) None
      & info [] ~docv:"PROFILE"
          ~doc:"Chrome trace-event JSON written by $(b,csctl profile).")
  in
  let out =
    Arg.(
      value
      & opt string "profile.folded"
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Where to write the folded stacks (feed to flamegraph.pl or \
             speedscope).")
  in
  let run file out =
    let text =
      try In_channel.with_open_text file In_channel.input_all
      with Sys_error msg -> die_data msg
    in
    let j =
      match Jsonx.of_string text with
      | Ok j -> j
      | Error msg -> die_data (file ^ ": " ^ msg)
    in
    let spans =
      match Obs_export.spans_of_chrome j with
      | Ok s -> s
      | Error msg -> die_data (file ^ ": " ^ msg)
    in
    let folded = Obs_export.folded_of_spans spans in
    let stacks =
      match Obs_export.validate_folded folded with
      | Ok n -> n
      | Error msg -> die_data ("internal: invalid folded output: " ^ msg)
    in
    write_lines out folded;
    Format.printf "wrote %s (%d stacks)@." out stacks
  in
  Cmd.v
    (Cmd.info "flame"
       ~doc:
         "Fold a Chrome span profile into flamegraph.pl / speedscope input \
          (self time per call path).")
    Term.(const run $ file $ out)

(* ------------------------------------------------------------------ *)
(* prom                                                                *)

let prom_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write to $(docv) instead of standard output.")
  in
  let namespace =
    Arg.(
      value & opt string "cs"
      & info [ "namespace" ] ~docv:"NS" ~doc:"Metric name prefix.")
  in
  let run file out namespace =
    let t = load_trace file in
    let reg = Obs_query.metrics_of_events t.Obs_query.events in
    let lines = Obs_export.prometheus ~namespace reg in
    let samples =
      match Obs_export.validate_prometheus lines with
      | Ok n -> n
      | Error msg -> die_data ("internal: invalid exposition: " ^ msg)
    in
    match out with
    | None -> List.iter print_endline lines
    | Some path ->
        write_lines path lines;
        Format.printf "wrote %d sample(s) to %s@." samples path
  in
  Cmd.v
    (Cmd.info "prom"
       ~doc:
         "Reconstruct deterministic trace.* metrics from an event trace \
          and render Prometheus text exposition.")
    Term.(const run $ trace_pos ~docv:"TRACE" ~idx:0 $ out $ namespace)

(* ------------------------------------------------------------------ *)
(* timeline                                                            *)

let timeline_cmd =
  let file =
    Arg.(
      required
      & Arg.pos 0 (some string) None
      & info [] ~docv:"SNAPSHOTS"
          ~doc:"Snapshot JSONL written by $(b,csctl simulate --snapshot-every).")
  in
  let metric =
    Arg.(
      required
      & opt (some string) None
      & info [ "metric" ] ~docv:"NAME"
          ~doc:
            "Metric to plot: a counter (its count), a gauge (its value) or \
             a histogram (its mean).")
  in
  let width = 40 in
  let run file metric =
    let entries =
      match Obs_snapshot.load file with
      | Ok es -> es
      | Error msg -> die_data msg
    in
    if entries = [] then die_data (file ^ ": no snapshots");
    let value (s : Obs.Metrics.snapshot) =
      match List.assoc_opt metric s.Obs.Metrics.snap_counters with
      | Some c -> Some (float_of_int c)
      | None -> (
          match List.assoc_opt metric s.Obs.Metrics.snap_gauges with
          | Some g -> Some g
          | None ->
              Option.map
                (fun (h : Obs.Metrics.hist_stats) -> h.Obs.Metrics.hs_mean)
                (List.assoc_opt metric s.Obs.Metrics.snap_histograms))
    in
    let points =
      List.map
        (fun (e : Obs_snapshot.entry) ->
          match value e.Obs_snapshot.metrics with
          | Some v -> (e.Obs_snapshot.at, v)
          | None ->
              let names (s : Obs.Metrics.snapshot) =
                List.map fst s.Obs.Metrics.snap_counters
                @ List.map fst s.Obs.Metrics.snap_gauges
                @ List.map fst s.Obs.Metrics.snap_histograms
              in
              die_data
                (Printf.sprintf "metric %S not in snapshots (have: %s)" metric
                   (String.concat ", " (names e.Obs_snapshot.metrics))))
        entries
    in
    let finite = List.filter (fun (_, v) -> Float.is_finite v) points in
    let vmax =
      List.fold_left (fun m (_, v) -> Float.max m v) 0.0 finite
    in
    Format.printf "%s@." metric;
    List.iter
      (fun (at, v) ->
        let bar =
          if not (Float.is_finite v) then "?"
          else if vmax <= 0.0 then ""
          else
            String.make
              (Stdlib.max 0
                 (int_of_float
                    (Float.round (float_of_int width *. v /. vmax))))
              '#'
        in
        Format.printf "%10d | %-*s %g@." at width bar v)
      points
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Plot one metric's trajectory over a run from a snapshot JSONL \
          file (text bars).")
    Term.(const run $ file $ metric)

(* ------------------------------------------------------------------ *)
(* check                                                               *)

(* [check] owes exits 0/1/2 to the health verdict, so its own failures
   (unreadable data, bad rules) use exit 3 instead of the usual 1. *)
let die_check msg =
  prerr_endline ("error: " ^ msg);
  exit 3

let gather_rules rules_file rule_flags =
  let from_file =
    match rules_file with
    | None -> []
    | Some path -> (
        let text =
          try In_channel.with_open_text path In_channel.input_all
          with Sys_error msg -> die_check msg
        in
        match Obs_health.parse text with
        | Ok rs -> rs
        | Error msg -> die_check (path ^ ": " ^ msg))
  in
  let from_flags =
    List.map
      (fun r ->
        match Obs_health.parse_rule r with
        | Ok rule -> rule
        | Error msg -> die_check (Printf.sprintf "--rule %S: %s" r msg))
      rule_flags
  in
  match from_file @ from_flags with
  | [] -> die_check "no rules given; pass --rules FILE and/or --rule RULE"
  | rules -> rules

(* A snapshot-ring file is the one whose first data line is
   {"type":"snapshot",...}; an event trace's is an event object. Both
   may open with (and, for rotated shards, re-emit) provenance
   headers, which say nothing about the payload kind — skip them. *)
let data_is_snapshot_ring path =
  try
    In_channel.with_open_text path (fun ic ->
        let rec next () =
          match In_channel.input_line ic with
          | None -> None
          | Some l when String.trim l = "" -> next ()
          | Some l -> (
              match Jsonx.of_string l with
              | Error msg -> die_check (path ^ ": " ^ msg)
              | Ok j -> (
                  match
                    Option.bind (Jsonx.member "type" j) Jsonx.get_string
                  with
                  | Some "meta" -> next ()
                  | t -> Some (t = Some "snapshot")))
        in
        match next () with
        | Some is_ring -> is_ring
        | None -> die_check (path ^ ": empty file"))
  with Sys_error msg -> die_check msg

let load_check_entries path =
  if data_is_snapshot_ring path then
    match Obs_snapshot.load path with
    | Error msg -> die_check msg
    | Ok entries ->
        List.map
          (fun (e : Obs_snapshot.entry) ->
            (Some e.Obs_snapshot.at, e.Obs_snapshot.metrics))
          entries
  else
    match Obs_query.load path with
    | Error msg -> die_check msg
    | Ok t ->
        let reg = Obs_query.metrics_of_events t.Obs_query.events in
        [ (None, Obs.Metrics.snapshot reg) ]

let check_cmd =
  let rules_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "rules" ] ~docv:"FILE"
          ~doc:"Health rules file (one SEVERITY SELECTOR OP VALUE per line).")
  in
  let rule_flags =
    Arg.(
      value & opt_all string []
      & info [ "rule" ] ~docv:"RULE"
          ~doc:"Inline rule, e.g. $(b,\"critical trace.periods_killed <= 5\"); \
                repeatable.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the verdict report as one JSON object instead of text.")
  in
  let data =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DATA"
          ~doc:
            "What to evaluate: a JSONL event trace (rules see the \
             reconstructed trace.* metrics) or a snapshot-ring JSONL \
             (rules see every captured frame).")
  in
  let run data rules_file rule_flags json =
    let rules = gather_rules rules_file rule_flags in
    let entries = load_check_entries data in
    let report = Obs_health.evaluate ~rules entries in
    if json then print_endline (Jsonx.to_string (Obs_health.report_to_json report))
    else Format.printf "%a" Obs_health.pp_report report;
    exit (Obs_health.exit_code report)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Evaluate declarative health rules against a finished trace or a \
          snapshot ring; exit 0 ok / 1 warn / 2 critical (3 on unreadable \
          input)."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Rules come from a --rules file and/or repeated --rule flags. \
              A selector reads a counter's count, a gauge's value, a \
              histogram's mean, or a named stat (name.p99, name.count, \
              ...). A trailing ? makes a rule skip silently when its \
              metric is absent, letting one rules file serve both trace \
              and snapshot sources. Against a snapshot ring every frame \
              must satisfy every rule.";
         ])
    Term.(const run $ data $ rules_file $ rule_flags $ json)

(* ------------------------------------------------------------------ *)
(* watch                                                               *)

let watch_cmd =
  let rules_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "rules" ] ~docv:"FILE" ~doc:"Health rules file to evaluate live.")
  in
  let rule_flags =
    Arg.(
      value & opt_all string []
      & info [ "rule" ] ~docv:"RULE" ~doc:"Inline rule; repeatable.")
  in
  let interval =
    Arg.(
      value & opt float 0.5
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Poll cadence while the trace is still growing.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Poll once, render once, exit — the deterministic mode for \
             scripts and tests.")
  in
  let data =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:
            "JSONL event trace being written by a live run (need not exist \
             yet; it is tailed as it grows).")
  in
  let run data rules_file rule_flags interval once =
    let rules =
      if rules_file = None && rule_flags = [] then []
      else gather_rules rules_file rule_flags
    in
    let w = Obs_watch.create ~path:data () in
    let render () =
      let frame = Obs_watch.render ~rules w in
      if not once then print_string "\027[2J\027[H";
      print_string frame;
      flush stdout
    in
    let rec loop () =
      ignore (Obs_watch.poll w);
      render ();
      if once || Obs_watch.finished w then ()
      else begin
        Unix.sleepf (Float.max 0.01 interval);
        loop ()
      end
    in
    loop ();
    if rules = [] then exit 0
    else exit (Obs_health.exit_code (Obs_watch.health w ~rules))
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Tail a growing JSONL trace and re-render a live metrics + health \
          dashboard; exits with the final health verdict (0/1/2) once the \
          run finishes."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "The dashboard shows the deterministic trace.* metrics \
              reconstructed incrementally from the event stream, plus the \
              rule verdicts when --rules/--rule are given. Polling is \
              byte-offset based: partial lines are carried, malformed \
              lines are counted but never fatal, and a vanished file \
              simply reads as no new bytes — the loop a farm daemon's \
              monitor inherits.";
         ])
    Term.(const run $ data $ rules_file $ rule_flags $ interval $ once)

(* ------------------------------------------------------------------ *)
(* store                                                               *)

let root_term =
  Arg.(
    value
    & opt string Obs_store.default_root
    & info [ "root" ] ~docv:"DIR"
        ~doc:"Observability store directory (default $(b,.csobs)).")

let open_store_or_die root =
  match Obs_store.open_store ~root () with
  | Ok t -> t
  | Error msg -> die_data msg

let kind_conv =
  Arg.conv
    ( (fun s ->
        Result.map_error (fun e -> `Msg e) (Obs_store.kind_of_string s)),
      fun ppf k ->
        Format.pp_print_string ppf (Obs_store.kind_to_string k) )

let describe_record (r : Obs_store.record) =
  String.concat "  "
    (List.filter_map Fun.id
       [
         Option.map (fun s -> "sha " ^ s) r.Obs_store.git_sha;
         Option.map (Printf.sprintf "seed %Ld") r.Obs_store.seed;
         Option.map (Printf.sprintf "scenario %S") r.Obs_store.scenario;
       ])

let store_add_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "Artifact to file: a JSONL event trace, a snapshot-ring \
             JSONL, or a bench record.")
  in
  let kind =
    Arg.(
      value
      & opt kind_conv Obs_store.Trace
      & info [ "kind" ] ~docv:"KIND"
          ~doc:"Artifact kind: $(b,trace), $(b,snapshots) or $(b,bench).")
  in
  let git_sha =
    Arg.(
      value
      & opt (some string) None
      & info [ "git-sha" ] ~docv:"SHA"
          ~doc:
            "Provenance override for artifacts without an embedded meta \
             header (bench records).")
  in
  let seed =
    Arg.(
      value
      & opt (some int64) None
      & info [ "seed" ] ~docv:"N" ~doc:"Provenance seed override.")
  in
  let scenario =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"STR" ~doc:"Provenance scenario override.")
  in
  let run root kind file git_sha seed scenario =
    let store = open_store_or_die root in
    let meta =
      (* Only synthesize a header when the caller overrode provenance;
         otherwise the artifact's own header is authoritative (and its
         absence is a refusal, not a guess). *)
      if git_sha = None && seed = None && scenario = None then None
      else
        Some
          (Obs.Meta.make
             ~git_sha:(Option.value git_sha ~default:"-")
             ?seed ?scenario ())
    in
    match Obs_store.add store ?meta ~kind file with
    | Error msg -> die_data msg
    | Ok r ->
        Format.printf "stored %s as run %s (%s)@."
          (Obs_store.kind_to_string r.Obs_store.kind)
          r.Obs_store.id
          (Obs_store.artifact_path store r)
  in
  Cmd.v
    (Cmd.info "add"
       ~doc:
         "File an artifact under its run id (derived from the \
          provenance header: same sha+seed+scenario, same id).")
    Term.(const run $ root_term $ kind $ file $ git_sha $ seed $ scenario)

let store_ls_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the index as one JSON array.")
  in
  let run root json =
    let store = open_store_or_die root in
    match Obs_store.ls store with
    | Error msg -> die_data msg
    | Ok records ->
        if json then
          print_endline (Jsonx.to_string (Obs_store.index_to_json records))
        else if records = [] then print_endline "store is empty"
        else
          List.iter
            (fun (r : Obs_store.record) ->
              Format.printf "%s  %-9s  %s@." r.Obs_store.id
                (Obs_store.kind_to_string r.Obs_store.kind)
                (describe_record r))
            records
  in
  Cmd.v
    (Cmd.info "ls" ~doc:"List the live records of the store.")
    Term.(const run $ root_term $ json)

let store_rm_cmd =
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"RUN_ID" ~doc:"Run id to remove.")
  in
  let run root id =
    let store = open_store_or_die root in
    match Obs_store.rm store ~id with
    | Error msg -> die_data msg
    | Ok 0 -> Format.printf "run %s not in store@." id
    | Ok n -> Format.printf "removed run %s (%d artifact(s))@." id n
  in
  Cmd.v
    (Cmd.info "rm"
       ~doc:
         "Remove a run: tombstone its index records and delete its \
          artifacts (idempotent).")
    Term.(const run $ root_term $ id)

let store_gc_cmd =
  let keep =
    Arg.(
      value
      & opt (some int) None
      & info [ "keep" ] ~docv:"N"
          ~doc:"Retain only the $(docv) most recently added runs.")
  in
  let max_age =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-age" ] ~docv:"SECONDS"
          ~doc:
            "Remove runs whose newest artifact lags the store's newest \
             mtime by more than $(docv) seconds.")
  in
  let run root keep max_age =
    let store = open_store_or_die root in
    match Obs_store.gc store ?keep ?max_age_s:max_age () with
    | Error msg -> die_data msg
    | Ok [] -> print_endline "nothing to remove"
    | Ok ids ->
        List.iter (fun id -> Format.printf "removed run %s@." id) ids
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:
         "Retention sweep: drop runs beyond a count or age bound \
          (age is relative to the store's own newest artifact, never \
          the wall clock).")
    Term.(const run $ root_term $ keep $ max_age)

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:
         "The content-addressed run registry (.csobs): file, list, \
          remove and garbage-collect run artifacts.")
    [ store_add_cmd; store_ls_cmd; store_rm_cmd; store_gc_cmd ]

(* ------------------------------------------------------------------ *)
(* serve / fetch                                                       *)

let addr_of_string_or_die s =
  match Obs_http.addr_of_string s with
  | Ok a -> a
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      exit 2

(* The three endpoint thunks re-read their files per request, so a
   scrape of a still-running csctl sees the latest flushed state. *)
let http_source ~snapshots ~trace ~rules ~root () =
  let frames () =
    match (snapshots, trace) with
    | Some path, _ ->
        Result.map
          (List.map (fun (e : Obs_snapshot.entry) ->
               (Some e.Obs_snapshot.at, e.Obs_snapshot.metrics)))
          (Obs_snapshot.load path)
    | None, Some path ->
        Result.map
          (fun (t : Obs_query.trace) ->
            [
              ( None,
                Obs.Metrics.snapshot
                  (Obs_query.metrics_of_events t.Obs_query.events) );
            ])
          (Obs_query.load path)
    | None, None -> Ok []
  in
  {
    Obs_http.metrics =
      (fun () ->
        match frames () with
        | Ok [] -> []
        | Ok fs ->
            let _, last = List.nth fs (List.length fs - 1) in
            Obs_export.prometheus_of_snapshot last
        | Error msg ->
            (* Not valid exposition, deliberately: the validator in the
               handler turns an unreadable source into a loud 500. *)
            [ "unreadable metrics source: " ^ msg ]);
    health =
      (fun () ->
        match frames () with
        | Error msg -> (503, "error: " ^ msg ^ "\n")
        | Ok fs ->
            if rules = [] then (200, "ok\n")
            else
              let report = Obs_health.evaluate ~rules fs in
              let body =
                Format.asprintf "%a" Obs_health.pp_report report
              in
              if Obs_health.exit_code report = 0 then (200, body)
              else (503, body));
    runs =
      (fun () ->
        if not (Sys.file_exists root) then Ok (Jsonx.List [])
        else
          Result.bind (Obs_store.open_store ~root ()) (fun store ->
              Result.map Obs_store.index_to_json (Obs_store.ls store)));
  }

let serve_cmd =
  let addr =
    Arg.(
      required
      & opt (some string) None
      & info [ "addr" ] ~docv:"ADDR"
          ~doc:
            "Where to listen: $(b,unix:PATH) for a Unix-domain socket \
             or $(b,HOST:PORT) for TCP (port 0 picks one).")
  in
  let snapshots =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshots" ] ~docv:"FILE"
          ~doc:
            "Snapshot-ring JSONL backing /metrics and /health (the \
             newest frame is the current state).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "JSONL event trace backing /metrics and /health via the \
             reconstructed trace.* registry.")
  in
  let rules_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "rules" ] ~docv:"FILE"
          ~doc:"Health rules file backing /health.")
  in
  let rule_flags =
    Arg.(
      value & opt_all string []
      & info [ "rule" ] ~docv:"RULE" ~doc:"Inline health rule; repeatable.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Answer exactly one request and exit — the deterministic \
             mode for tests and smoke probes.")
  in
  let requests =
    Arg.(
      value
      & opt (some int) None
      & info [ "requests" ] ~docv:"N"
          ~doc:"Answer $(docv) requests, then exit.")
  in
  let addr_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "addr-file" ] ~docv:"FILE"
          ~doc:
            "Write the bound address here once listening — lets a \
             script poll for readiness instead of racing the bind.")
  in
  let run addr snapshots trace rules_file rule_flags root once requests
      addr_file =
    let addr = addr_of_string_or_die addr in
    let rules =
      if rules_file = None && rule_flags = [] then []
      else gather_rules rules_file rule_flags
    in
    let source = http_source ~snapshots ~trace ~rules ~root () in
    let max_requests = if once then Some 1 else requests in
    let ready bound =
      (match addr_file with
      | Some f ->
          write_lines f [ Format.asprintf "%a" Obs_http.pp_addr bound ]
      | None -> ());
      Format.printf "serving on %a@." Obs_http.pp_addr bound;
      Format.pp_print_flush Format.std_formatter ()
    in
    match Obs_http.serve ?max_requests ~ready ~addr source with
    | Ok () -> ()
    | Error msg -> die_data msg
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Expose /metrics (validated Prometheus text), /health (SLO \
          verdict, 200/503) and /runs (store index) over HTTP."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "One request per connection, bodies framed by \
              Content-Length — the smallest surface a standard scraper \
              accepts. Sources are re-read per request, so serving the \
              artifacts of a still-running csctl scrapes its latest \
              flushed state. With $(b,--once) (or $(b,--requests) N) \
              the server exits after a bounded number of answers, \
              which is what the CI smoke leg and the cram tests use.";
         ])
    Term.(
      const run $ addr $ snapshots $ trace $ rules_file $ rule_flags
      $ root_term $ once $ requests $ addr_file)

let fetch_cmd =
  let addr =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ADDR" ~doc:"Server address (unix:PATH or HOST:PORT).")
  in
  let path =
    Arg.(
      value
      & pos 1 string "/metrics"
      & info [] ~docv:"PATH" ~doc:"Path to request (default /metrics).")
  in
  let validate =
    Arg.(
      value & flag
      & info [ "validate-prom" ]
          ~doc:
            "Instead of printing the body, pipe it through the \
             Prometheus exposition validator and print the sample \
             count.")
  in
  let attempts =
    Arg.(
      value & opt int 100
      & info [ "attempts" ] ~docv:"N"
          ~doc:
            "Connect retries at 50 ms intervals while the server is \
             still starting.")
  in
  let run addr path validate attempts =
    let addr = addr_of_string_or_die addr in
    match Obs_http.fetch ~attempts ~addr path with
    | Error msg -> die_data msg
    | Ok (status, body) ->
        (if validate then begin
           let lines =
             List.filter
               (fun l -> l <> "")
               (String.split_on_char '\n' body)
           in
           match Obs_export.validate_prometheus lines with
           | Ok n -> Format.printf "valid exposition: %d sample(s)@." n
           | Error msg -> die_data ("invalid exposition: " ^ msg)
         end
         else print_string body);
        if status >= 400 then begin
          Format.eprintf "HTTP %d %s@." status
            (Obs_http.status_reason status);
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "fetch"
       ~doc:
         "Minimal scrape client: GET a path from a running serve, \
          print the body (exit 1 on any 4xx/5xx, so /health doubles \
          as a probe).")
    Term.(const run $ addr $ path $ validate $ attempts)

(* ------------------------------------------------------------------ *)
(* collect                                                             *)

let collect_cmd =
  let listen =
    Arg.(
      required
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Where producers connect: $(b,unix:PATH) or $(b,HOST:PORT) \
             (port 0 picks one).")
  in
  let http =
    Arg.(
      value
      & opt (some string) None
      & info [ "http" ] ~docv:"ADDR"
          ~doc:
            "Also serve /metrics (live aggregated registry), /health \
             (503 while any alert fires) and /runs here.")
  in
  let producers =
    Arg.(
      value & opt int 1
      & info [ "producers" ] ~docv:"N"
          ~doc:"With $(b,--once): stop after $(docv) finalized streams.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Exit after the expected number of streams (see \
             $(b,--producers)) has been finalized — the deterministic \
             mode for tests and CI.")
  in
  let store_root =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:"File every collected trace in this .csobs registry.")
  in
  let out_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Keep each stream's JSONL trace here as RUN_ID.jsonl \
             (suffixed on collision).")
  in
  let rules_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "rules" ] ~docv:"FILE"
          ~doc:"Health rules evaluated live against the merged stream.")
  in
  let rule_flags =
    Arg.(
      value & opt_all string []
      & info [ "rule" ] ~docv:"RULE" ~doc:"Inline health rule; repeatable.")
  in
  let alert_every =
    Arg.(
      value & opt int 64
      & info [ "alert-every" ] ~docv:"N"
          ~doc:
            "Evaluate the rules every $(docv) accepted events (plus at \
             every stream finalization).")
  in
  let addr_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "addr-file" ] ~docv:"FILE"
          ~doc:
            "Write the bound listen address here once accepting — lets \
             a script poll for readiness instead of racing the bind.")
  in
  let run listen http producers once store_root out_dir rules_file rule_flags
      alert_every addr_file =
    let listen = addr_of_string_or_die listen in
    let http = Option.map addr_of_string_or_die http in
    (* Unlike `check`, alerting is optional: a collector with no rules
       still merges traces and serves metrics. *)
    let rules =
      if rules_file = None && rule_flags = [] then []
      else gather_rules rules_file rule_flags
    in
    (* Log lines come from per-connection threads; one mutex keeps
       them whole. *)
    let log_mu = Mutex.create () in
    let log line =
      Mutex.lock log_mu;
      print_endline line;
      flush stdout;
      Mutex.unlock log_mu
    in
    let ready bound =
      (match addr_file with
      | Some f ->
          write_lines f [ Format.asprintf "%a" Obs_http.pp_addr bound ]
      | None -> ());
      log (Format.asprintf "collecting on %a" Obs_http.pp_addr bound)
    in
    match
      Obs_collect.run ?http ~producers ~once ?store_root ?out_dir ~rules
        ~alert_every ~log ~ready ~listen ()
    with
    | Error msg -> die_data msg
    | Ok summary -> Format.printf "%a@." Obs_collect.pp_summary summary
  in
  Cmd.v
    (Cmd.info "collect"
       ~doc:
         "Run the streaming telemetry collector: accept csctl \
          --emit producers, merge their event streams into stored \
          JSONL traces, serve live aggregated /metrics, and raise \
          streaming alerts."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Producers speak the length-prefixed Obs_stream frame \
              protocol: HELLO carrying the run's provenance header, \
              strictly sequenced events, heartbeats carrying drop \
              counters, and BYE. Each stream is written back out as an \
              ordinary JSONL trace — $(b,cstrace diff)-identical to \
              the same run's locally written file — and filed in the \
              $(b,--store) registry. A stream that ends without BYE is \
              finalized with an explicit truncation marker instead of \
              passing for a complete run.";
         ])
    Term.(
      const run $ listen $ http $ producers $ once $ store_root $ out_dir
      $ rules_file $ rule_flags $ alert_every $ addr_file)

(* ------------------------------------------------------------------ *)

let () =
  let doc =
    "trace analytics for cycle-stealing runs: summarise, diff, flamegraph, \
     export, health-check and live-watch the observability layer's artifacts"
  in
  let info = Cmd.info "cstrace" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            report_cmd;
            diff_cmd;
            flame_cmd;
            prom_cmd;
            timeline_cmd;
            check_cmd;
            watch_cmd;
            store_cmd;
            serve_cmd;
            fetch_cmd;
            collect_cmd;
          ]))
