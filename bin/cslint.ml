(* cslint: static analyzer enforcing the repo's numerical-correctness and
   determinism invariants (DESIGN.md §8). Exit codes: 0 clean, 1 new
   findings, 2 operational error (unparsable source, bad baseline). *)

let usage = "usage: cslint [--json] [--baseline FILE [--write-baseline]] [--rules] [PATH ...]"

let json = ref false
let baseline_path = ref None
let write_baseline = ref false
let list_rules = ref false
let paths = ref []

let spec =
  [
    ("--json", Arg.Set json, " machine-readable output (one JSON object)");
    ( "--baseline",
      Arg.String (fun s -> baseline_path := Some s),
      "FILE ignore findings recorded in FILE (grandfather list)" );
    ( "--write-baseline",
      Arg.Set write_baseline,
      " rewrite the --baseline file to cover current findings, then exit 0" );
    ("--rules", Arg.Set list_rules, " describe the rule set and exit");
  ]

let () =
  Arg.parse (Arg.align spec) (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun (m : Lint_rules.meta) ->
        Printf.printf "%s  %s\n      remedy: %s\n" m.id m.title m.remedy)
      Lint_rules.all_meta;
    exit 0
  end;
  let paths =
    match List.rev !paths with
    | [] ->
        List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "examples" ]
    | ps -> ps
  in
  let result = Lint_engine.run paths in
  let baseline =
    match !baseline_path with
    | None -> Ok []
    | Some p when !write_baseline ->
        Lint_baseline.save p result.all_findings;
        Printf.printf "cslint: wrote %d finding(s) to %s\n"
          (List.length result.all_findings)
          p;
        exit (if result.errors = [] then 0 else 2)
    | Some p -> Lint_baseline.load p
  in
  match baseline with
  | Error e ->
      prerr_endline ("cslint: " ^ e);
      exit 2
  | Ok entries ->
      let fresh, baselined = Lint_baseline.apply entries result.all_findings in
      if !json then
        print_endline
          (Jsonx.to_string
             (Jsonx.Obj
                [
                  ( "findings",
                    Jsonx.List (List.map Lint_finding.to_json fresh) );
                  ("total", Jsonx.Int (List.length fresh));
                  ("suppressed", Jsonx.Int result.total_suppressed);
                  ("baselined", Jsonx.Int baselined);
                  ( "errors",
                    Jsonx.List
                      (List.map (fun e -> Jsonx.String e) result.errors) );
                ]))
      else begin
        List.iter
          (fun f -> print_endline (Lint_finding.to_human f))
          fresh;
        List.iter (fun e -> prerr_endline ("cslint: error: " ^ e)) result.errors;
        if fresh = [] && result.errors = [] then
          Printf.printf "cslint: clean (0 new, %d baselined, %d suppressed)\n"
            baselined result.total_suppressed
        else
          Printf.printf
            "cslint: %d finding(s), %d baselined, %d suppressed, %d error(s)\n"
            (List.length fresh) baselined result.total_suppressed
            (List.length result.errors)
      end;
      if result.errors <> [] then exit 2;
      if fresh <> [] then exit 1
