(* cslint: static analyzer enforcing the repo's numerical-correctness and
   determinism invariants (DESIGN.md §8 and §13). Exit codes: 0 clean,
   1 new findings, 2 operational error (unparsable source, bad baseline,
   bad manifest, invalid SARIF). *)

let usage =
  "usage: cslint [effects] [--deep] [--json] [--sarif FILE]\n\
  \              [--effects-manifest FILE] [--write-effects]\n\
  \              [--allow-unused-allows]\n\
  \              [--baseline FILE [--write-baseline]] [--rules] [PATH ...]"

let json = ref false
let baseline_path = ref None
let write_baseline = ref false
let list_rules = ref false
let deep = ref false
let sarif_path = ref None
let manifest_path = ref ".cseffects"
let write_effects = ref false
let allow_unused = ref false
let anon = ref []

let spec =
  [
    ("--json", Arg.Set json, " machine-readable output (one JSON object)");
    ( "--deep",
      Arg.Set deep,
      " run the interprocedural effect pass (R10, R11, R12)" );
    ( "--sarif",
      Arg.String (fun s -> sarif_path := Some s),
      "FILE also write findings as SARIF 2.1.0 to FILE" );
    ( "--effects-manifest",
      Arg.Set_string manifest_path,
      "FILE effect-signature manifest checked by R12 (default .cseffects)" );
    ( "--write-effects",
      Arg.Set write_effects,
      " rewrite the effects manifest from the inferred signatures, then exit" );
    ( "--allow-unused-allows",
      Arg.Set allow_unused,
      " report unused [@lint.allow] (M1) as warnings, not findings" );
    ( "--baseline",
      Arg.String (fun s -> baseline_path := Some s),
      "FILE ignore findings recorded in FILE (grandfather list)" );
    ( "--write-baseline",
      Arg.Set write_baseline,
      " rewrite the --baseline file to cover current findings, then exit 0" );
    ("--rules", Arg.Set list_rules, " describe the rule set and exit");
  ]

let default_paths () =
  List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "examples" ]

(* "lib/sched" selects lib/sched/guideline.ml but not lib/sched_old/x. *)
let selects filters path =
  filters = []
  || List.exists
       (fun f ->
         let f =
           if String.length f > 0 && f.[String.length f - 1] = '/' then
             String.sub f 0 (String.length f - 1)
           else f
         in
         String.equal f path || String.starts_with ~prefix:(f ^ "/") path)
       filters

let () =
  Arg.parse (Arg.align spec) (fun p -> anon := p :: !anon) usage;
  if !list_rules then begin
    List.iter
      (fun (m : Lint_rules.meta) ->
        Printf.printf "%s  %s\n      remedy: %s\n" m.id m.title m.remedy)
      Lint_rules.all_meta;
    exit 0
  end;
  let effects_mode, args =
    match List.rev !anon with
    | "effects" :: rest -> (true, rest)
    | other -> (false, other)
  in
  let deep = !deep || !write_effects || effects_mode in
  let paths =
    if effects_mode then default_paths ()
    else match args with [] -> default_paths () | ps -> ps
  in
  let options =
    {
      Lint_engine.deep;
      manifest_path =
        (if deep && not (!write_effects || effects_mode) then
           Some !manifest_path
         else None);
      warn_unused_allows = !allow_unused;
    }
  in
  let result = Lint_engine.run ~options paths in
  if effects_mode then begin
    (* Display command: print the inferred table for the requested
       subtrees (analysis always covers the standard roots so
       cross-module resolution stays whole-program). *)
    List.iter
      (fun (s : Lint_effects.module_sig) ->
        if selects args s.Lint_effects.ms_path then begin
          Printf.printf "%s (%s): %s\n" s.Lint_effects.ms_module
            s.Lint_effects.ms_path
            (Lint_effect.set_to_string s.Lint_effects.ms_effects);
          List.iter
            (fun (b, e) ->
              Printf.printf "  %s: %s\n" b (Lint_effect.set_to_string e))
            s.Lint_effects.ms_bindings
        end)
      result.Lint_engine.effect_signatures;
    List.iter
      (fun e -> prerr_endline ("cslint: error: " ^ e))
      result.Lint_engine.errors;
    exit (if result.Lint_engine.errors = [] then 0 else 2)
  end;
  if !write_effects then begin
    let sigs = Lint_deep.lib_signatures result.Lint_engine.effect_signatures in
    Lint_manifest.save !manifest_path sigs;
    Printf.printf "cslint: wrote effect signatures for %d module(s) to %s\n"
      (List.length sigs) !manifest_path;
    List.iter
      (fun e -> prerr_endline ("cslint: error: " ^ e))
      result.Lint_engine.errors;
    exit (if result.Lint_engine.errors = [] then 0 else 2)
  end;
  let baseline =
    match !baseline_path with
    | None -> Ok []
    | Some p when !write_baseline ->
        Lint_baseline.save p result.all_findings;
        Printf.printf "cslint: wrote %d finding(s) to %s\n"
          (List.length result.all_findings)
          p;
        exit (if result.errors = [] then 0 else 2)
    | Some p -> Lint_baseline.load p
  in
  match baseline with
  | Error e ->
      prerr_endline ("cslint: " ^ e);
      exit 2
  | Ok entries ->
      let fresh, baselined = Lint_baseline.apply entries result.all_findings in
      let warnings = result.Lint_engine.warnings in
      (match !sarif_path with
      | None -> ()
      | Some p -> (
          let doc =
            Lint_sarif.render ~rules:Lint_rules.all_meta ~findings:fresh
              ~warnings ()
          in
          match Lint_sarif.validate doc with
          | Error e ->
              prerr_endline ("cslint: sarif: " ^ e);
              exit 2
          | Ok _ ->
              Out_channel.with_open_bin p (fun oc ->
                  Out_channel.output_string oc (Jsonx.to_string doc);
                  Out_channel.output_char oc '\n')));
      if !json then
        print_endline
          (Jsonx.to_string
             (Jsonx.Obj
                [
                  ( "findings",
                    Jsonx.List (List.map Lint_finding.to_json fresh) );
                  ( "warnings",
                    Jsonx.List (List.map Lint_finding.to_json warnings) );
                  ("total", Jsonx.Int (List.length fresh));
                  ("suppressed", Jsonx.Int result.total_suppressed);
                  ("baselined", Jsonx.Int baselined);
                  ( "errors",
                    Jsonx.List
                      (List.map (fun e -> Jsonx.String e) result.errors) );
                ]))
      else begin
        List.iter
          (fun f -> print_endline (Lint_finding.to_human f))
          fresh;
        List.iter
          (fun f -> print_endline ("warning: " ^ Lint_finding.to_human f))
          warnings;
        List.iter (fun e -> prerr_endline ("cslint: error: " ^ e)) result.errors;
        if fresh = [] && result.errors = [] then
          Printf.printf "cslint: clean (0 new, %d baselined, %d suppressed)\n"
            baselined result.total_suppressed
        else
          Printf.printf
            "cslint: %d finding(s), %d baselined, %d suppressed, %d error(s)\n"
            (List.length fresh) baselined result.total_suppressed
            (List.length result.errors)
      end;
      if result.errors <> [] then exit 2;
      if fresh <> [] then exit 1
