(* csctl — command-line front end of the cycle-stealing library.

   Subcommands:
     csctl schedule  --family uniform --lifespan 100 -c 1
     csctl bounds    --family geo-dec --a 1.05 -c 1
     csctl simulate  --family geo-inc --lifespan 30 -c 1 --trials 50000
     csctl compare   --family uniform -c 1 --trials 2000 --jobs 4
     csctl table     --family uniform --c-min 0.5 --c-max 4 --steps 8
     csctl admissible --family power-law --d 2 -c 1
     csctl fit       --model exponential --mean 40 --samples 1000 -c 1
     csctl checkpoint --work 720 --mtbf 240 -c 1.5
     csctl report    trace.jsonl
     csctl profile   --family uniform -c 1 --out trace.json

   [schedule] and [simulate] accept --trace FILE (write a JSONL event
   trace of the run, opened by an Obs_meta provenance header) and
   --metrics (print the metrics registry after); [simulate] additionally
   accepts --prom FILE (Prometheus text exposition of the registry,
   including per-domain pool utilization series when --jobs > 1),
   --snapshot-every N / --snapshot-out FILE (periodic metric snapshots,
   plottable with cstrace timeline), --resource (sample GC counters at
   deterministic chunk boundaries into the gc.* series) and
   --health FILE (evaluate SLO rules against the end-of-run registry and
   exit 1/2 on warn/critical); [report] aggregates a JSONL trace
   back into summary numbers. The
   Monte-Carlo and batch-planning commands ([simulate], [compare],
   [table]) accept --jobs N to run on N domains; output is bit-identical
   for any N (DESIGN.md §10). *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Life-function selection flags                                      *)

type family_spec = {
  family : string;
  lifespan : float;
  a : float;
  rate : float option;
  d : int;
  w_shape : float;
  w_scale : float;
}

let family_term =
  let family =
    Arg.(
      value
      & opt string "uniform"
      & info [ "family" ] ~docv:"NAME"
          ~doc:
            "Life-function family: uniform | polynomial | geo-dec | geo-inc \
             | exponential | weibull | power-law.")
  in
  let lifespan =
    Arg.(
      value & opt float 100.0
      & info [ "lifespan"; "L" ] ~docv:"L"
          ~doc:"Potential lifespan for bounded families.")
  in
  let a =
    Arg.(
      value & opt float (exp 0.05)
      & info [ "a" ] ~docv:"A" ~doc:"Base of the geometric-decreasing family.")
  in
  let rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ] ~docv:"R" ~doc:"Rate of the exponential family.")
  in
  let d =
    Arg.(
      value & opt int 2
      & info [ "d" ] ~docv:"D"
          ~doc:"Degree for the polynomial / power-law families.")
  in
  let w_shape =
    Arg.(
      value & opt float 2.0
      & info [ "shape" ] ~docv:"K" ~doc:"Weibull shape parameter.")
  in
  let w_scale =
    Arg.(
      value & opt float 50.0
      & info [ "scale" ] ~docv:"S" ~doc:"Weibull scale parameter.")
  in
  Term.(
    const (fun family lifespan a rate d w_shape w_scale ->
        { family; lifespan; a; rate; d; w_shape; w_scale })
    $ family $ lifespan $ a $ rate $ d $ w_shape $ w_scale)

let resolve_family spec =
  match spec.family with
  | "uniform" -> Ok (Families.uniform ~lifespan:spec.lifespan)
  | "polynomial" | "poly" ->
      Ok (Families.polynomial ~d:spec.d ~lifespan:spec.lifespan)
  | "geo-dec" | "geometric-decreasing" ->
      Ok (Families.geometric_decreasing ~a:spec.a)
  | "geo-inc" | "geometric-increasing" ->
      Ok (Families.geometric_increasing ~lifespan:spec.lifespan)
  | "exponential" | "exp" ->
      let rate = Option.value spec.rate ~default:(1.0 /. spec.lifespan) in
      Ok (Families.exponential ~rate)
  | "weibull" -> Ok (Families.weibull ~shape:spec.w_shape ~scale:spec.w_scale)
  | "power-law" -> Ok (Families.power_law ~d:(float_of_int spec.d))
  | other ->
      Error
        (Printf.sprintf
           "unknown family %S (valid: uniform | polynomial | geo-dec | \
            geo-inc | exponential | weibull | power-law)"
           other)

(* The declarative twin of [resolve_family]: the same spec as a
   Plan_key family, for the plan-cache paths. Kept in lock-step so a
   cached plan answers for exactly the life function the simulation
   runs (exponential canonicalizes onto geo-dec per DESIGN §15). *)
let plan_key_of_spec spec =
  match spec.family with
  | "uniform" -> Ok (Plan_key.Uniform { lifespan = spec.lifespan })
  | "polynomial" | "poly" ->
      Ok (Plan_key.Polynomial { d = spec.d; lifespan = spec.lifespan })
  | "geo-dec" | "geometric-decreasing" -> Ok (Plan_key.Geo_dec { a = spec.a })
  | "geo-inc" | "geometric-increasing" ->
      Ok (Plan_key.Geo_inc { lifespan = spec.lifespan })
  | "exponential" | "exp" ->
      let rate = Option.value spec.rate ~default:(1.0 /. spec.lifespan) in
      Ok (Plan_key.exponential ~rate)
  | "weibull" ->
      Ok (Plan_key.Weibull { w_shape = spec.w_shape; w_scale = spec.w_scale })
  | "power-law" -> Ok (Plan_key.Power_law { d = float_of_int spec.d })
  | other ->
      Error
        (Printf.sprintf
           "unknown family %S (valid: uniform | polynomial | geo-dec | \
            geo-inc | exponential | weibull | power-law)"
           other)

let c_term =
  Arg.(
    value & opt float 1.0
    & info [ "c"; "overhead" ] ~docv:"C"
        ~doc:"Communication overhead per period (the paper's c).")

let with_family spec k =
  match resolve_family spec with
  | Error msg ->
      prerr_endline msg;
      exit 2
  | Ok lf -> (
      try k lf
      with Invalid_argument msg | Failure msg ->
        prerr_endline ("error: " ^ msg);
        exit 1)

(* ------------------------------------------------------------------ *)
(* Parallelism flag (shared by simulate, compare and table)            *)

let jobs_term =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains to run the Monte-Carlo / planning work on \
           (default 1 = serial). Output is bit-identical for any $(docv); \
           only wall time changes.")

(* [k] receives [None] for the untouched serial path, or a transient
   pool that is shut down when [k] returns. *)
let with_jobs jobs k =
  if jobs = 1 then k None
  else Domain_pool.with_pool ~domains:jobs (fun p -> k (Some p))

(* ------------------------------------------------------------------ *)
(* Plan-cache flags (shared by simulate and table)                     *)

let plan_cache_term =
  Arg.(
    value & flag
    & info [ "plan-cache" ]
        ~doc:
          "Answer the plan through the lib/plancache tiers (LRU cache, \
           closed forms, loaded tables) instead of a direct search. A \
           cold cache computes exactly what the direct path computes \
           (same events, same schedule — $(b,cstrace diff)-identical); \
           repeated queries answer in microseconds. $(b,cache.*) \
           counters land in the metrics registry.")

let plan_table_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "plan-table" ] ~docv:"FILE"
        ~doc:
          "Load a plan table baked by $(b,csctl table bake) and answer \
           covered scenarios by interpolation within the table's \
           certified error bound. Implies $(b,--plan-cache).")

let make_plancache ~obs ~plan_table () =
  let pc = Plancache.create ~obs () in
  (match plan_table with
  | None -> ()
  | Some file -> (
      match Plan_table.load file with
      | Ok t -> Plancache.add_table pc t
      | Error msg ->
          prerr_endline ("error: " ^ msg);
          exit 1));
  pc

(* ------------------------------------------------------------------ *)
(* Observability flags (shared by schedule and simulate)               *)

let trace_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a JSONL event trace of the run to $(docv) (one JSON \
           object per line; aggregate it back with $(b,csctl report)).")

let metrics_term =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the collected metrics registry after the run.")

let prom_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "prom" ] ~docv:"FILE"
        ~doc:
          "Write the metrics registry as Prometheus text exposition to \
           $(docv) after the run.")

let snapshot_every_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "snapshot-every" ] ~docv:"N"
        ~doc:
          "Capture a metrics snapshot every $(docv) trials (rounded up to \
           the Monte-Carlo chunk size); write the JSONL timeline to \
           $(b,--snapshot-out).")

let snapshot_out_term =
  Arg.(
    value
    & opt string "snapshots.jsonl"
    & info [ "snapshot-out" ] ~docv:"FILE"
        ~doc:"Where $(b,--snapshot-every) writes its snapshot timeline.")

let serve_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "serve" ] ~docv:"ADDR"
        ~doc:
          "Expose the live metrics registry over HTTP for the duration \
           of the run: /metrics (Prometheus text), /health (rule \
           verdict when $(b,--health) is given), /runs (the .csobs \
           index). $(docv) is $(b,unix:PATH) or $(b,HOST:PORT).")

let emit_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit" ] ~docv:"ADDR"
        ~doc:
          "Stream the event trace live to a $(b,cstrace collect) \
           collector at $(docv) ($(b,unix:PATH) or $(b,HOST:PORT)). \
           Events are shipped through a bounded non-blocking ring: a \
           slow or absent collector costs drops (reported after the \
           run), never simulation time. Composes with $(b,--trace), \
           which keeps writing the local file.")

(* Build an [Obs.t] from the flags and run [k obs snap res] with it.
   [meta] is a thunk so the git-sha capture only happens when a trace
   file is actually being written. Afterwards: print the registry
   (--metrics), write the Prometheus exposition (--prom, with
   [prom_extra ()] lines appended — per-domain utilization series the
   registry itself cannot carry), the snapshot timeline
   (--snapshot-every/--snapshot-out), and finally evaluate [--health]
   rules against the end-of-run registry, exiting 1/2 on a warn /
   critical verdict. [resource] attaches a GC sampler ([gc.*] series)
   that the caller threads to the run's deterministic sampling
   points. *)
let with_obs ~meta ~trace ~metrics ?prom ?(prom_extra = fun () -> [])
    ?snapshot ?(resource = false) ?health ?serve ?emit k =
  let registry =
    if
      metrics || prom <> None || snapshot <> None || resource
      || health <> None || serve <> None
    then Some (Obs.Metrics.create ())
    else None
  in
  let snap =
    match (snapshot, registry) with
    | Some (every, _), Some m -> (
        try Some (Obs.Snapshot.create ~every m)
        with Invalid_argument msg ->
          prerr_endline ("error: " ^ msg);
          exit 2)
    | _ -> None
  in
  let res =
    match registry with
    | Some m when resource -> Some (Obs.Resource.create m)
    | _ -> None
  in
  let health_rules =
    match health with
    | None -> None
    | Some path -> (
        let text =
          try In_channel.with_open_text path In_channel.input_all
          with Sys_error msg ->
            prerr_endline ("error: " ^ msg);
            exit 2
        in
        match Obs.Health.parse text with
        | Ok rules -> Some rules
        | Error msg ->
            prerr_endline ("error: " ^ path ^ ": " ^ msg);
            exit 2)
  in
  let write_file path writer =
    try
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> writer oc)
    with Sys_error msg ->
      prerr_endline ("error: " ^ msg);
      exit 1
  in
  (* --serve: expose the live registry over HTTP for the duration of
     the run. The server thread reads the registry while the run
     mutates it — scrapes see a mid-run state, which is the point. The
     shutdown is registered with at_exit so the listening socket is
     joined and unlinked even on the health-verdict exit paths. *)
  (match serve with
  | None -> ()
  | Some addr -> (
      let addr =
        match Obs_http.addr_of_string addr with
        | Ok a -> a
        | Error msg ->
            prerr_endline ("error: " ^ msg);
            exit 2
      in
      let source =
        {
          Obs_http.metrics =
            (fun () ->
              match registry with
              | Some m -> Obs_export.prometheus m @ prom_extra ()
              | None -> []);
          health =
            (fun () ->
              match (health_rules, registry) with
              | Some rules, Some m ->
                  let report =
                    Obs_health.evaluate ~rules
                      [ (None, Obs.Metrics.snapshot m) ]
                  in
                  let body =
                    Format.asprintf "%a" Obs_health.pp_report report
                  in
                  if Obs_health.exit_code report = 0 then (200, body)
                  else (503, body)
              | _ -> (200, "ok\n"));
          runs =
            (fun () ->
              if not (Sys.file_exists Obs_store.default_root) then
                Ok (Jsonx.List [])
              else
                Result.bind (Obs_store.open_store ()) (fun s ->
                    Result.map Obs_store.index_to_json (Obs_store.ls s)));
        }
      in
      match Obs_http.serve_in_background ~addr source with
      | Error msg ->
          prerr_endline ("error: " ^ msg);
          exit 1
      | Ok srv ->
          at_exit (fun () -> Obs_http.shutdown srv);
          Format.printf "serving on %a@." Obs_http.pp_addr
            (Obs_http.address srv)));
  (* --emit: a remote sink streaming to a live collector. Closing
     flushes the ring and sends BYE; it is hooked on at_exit (not a
     Fun.protect) because the health-verdict paths below leave through
     [exit], which does not unwind the stack. *)
  let remote =
    match emit with
    | None -> None
    | Some addr_s ->
        let addr =
          match Obs_http.addr_of_string addr_s with
          | Ok a -> a
          | Error msg ->
              prerr_endline ("error: " ^ msg);
              exit 2
        in
        Some (addr_s, Obs_remote.create ~addr ~meta:(meta ()) ())
  in
  let remote_reported = ref false in
  let close_remote () =
    match remote with
    | None -> ()
    | Some (addr_s, r) ->
        Obs_remote.close r;
        if not !remote_reported then begin
          remote_reported := true;
          let s = Obs_remote.stats r in
          Format.printf "streamed %d event(s) to %s (%d dropped)@."
            s.Obs_remote.sent addr_s s.Obs_remote.dropped
        end
  in
  (match remote with Some _ -> at_exit close_remote | None -> ());
  let sink_of local =
    match remote with
    | None -> local
    | Some (_, r) -> Obs.Sink.tee [ local; Obs_remote.sink r ]
  in
  let finish obs =
    k obs snap res;
    (match Obs.metrics obs with
    | Some m when metrics -> Format.printf "%a" Obs.Metrics.pp m
    | _ -> ());
    (match (prom, Obs.metrics obs) with
    | Some path, Some m ->
        write_file path (fun oc ->
            List.iter
              (fun l ->
                output_string oc l;
                output_char oc '\n')
              (Obs_export.prometheus m @ prom_extra ()));
        Format.printf "wrote prometheus exposition to %s@." path
    | _ -> ());
    (match (snapshot, snap) with
    | Some (_, out), Some s ->
        write_file out (fun oc ->
            Obs.Snapshot.write_jsonl ~meta:(meta ()) s oc);
        Format.printf "wrote %d snapshot(s) to %s@."
          (List.length (Obs.Snapshot.entries s))
          out
    | _ -> ());
    match (health_rules, Obs.metrics obs) with
    | Some rules, Some m ->
        let report =
          Obs.Health.evaluate ~rules [ (None, Obs.Metrics.snapshot m) ]
        in
        Format.printf "%a" Obs.Health.pp_report report;
        let code = Obs.Health.exit_code report in
        if code <> 0 then exit code
    | _ -> ()
  in
  (match trace with
  | None -> finish (Obs.create ~sink:(sink_of Obs.Sink.Null) ?metrics:registry ())
  | Some path -> (
      try
        Obs.Sink.with_jsonl_file ~meta:(meta ()) path (fun sink ->
            finish (Obs.create ~sink:(sink_of sink) ?metrics:registry ()))
      with Sys_error msg ->
        prerr_endline ("error: " ^ msg);
        exit 1));
  close_remote ()

(* ------------------------------------------------------------------ *)
(* schedule                                                            *)

let schedule_cmd =
  let run spec c trace metrics =
    let meta () =
      Obs.Meta.make
        ~scenario:(Printf.sprintf "schedule family=%s c=%g" spec.family c)
        ()
    in
    with_family spec (fun lf ->
        with_obs ~meta ~trace ~metrics (fun obs _snap _res ->
            let plan = Guideline.plan ~obs lf ~c in
            let lo, hi = plan.Guideline.bracket in
            Format.printf "life function : %a@." Life_function.pp lf;
            Format.printf "t0 bracket    : [%.4f, %.4f]@." lo hi;
            Format.printf "schedule      : %a@." Schedule.pp
              plan.Guideline.schedule;
            Format.printf "periods       : ";
            Array.iter
              (Format.printf "%.4f ")
              (Schedule.periods plan.Guideline.schedule);
            Format.printf "@.expected work : %.6f@."
              plan.Guideline.expected_work;
            List.iter
              (fun chk -> Format.printf "%a@." Theory.pp_check chk)
              (Theory.full_report lf ~c plan.Guideline.schedule)))
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Compute the guideline schedule for a scenario.")
    Term.(const run $ family_term $ c_term $ trace_term $ metrics_term)

(* ------------------------------------------------------------------ *)
(* bounds                                                              *)

let bounds_cmd =
  let run spec c =
    with_family spec (fun lf ->
        let lo, hi = Bounds.bracket lf ~c in
        Format.printf "life function        : %a@." Life_function.pp lf;
        Format.printf "Thm 3.2 lower bound  : %.6f@." (Bounds.lower_t0 lf ~c);
        Format.printf "Thm 3.3 upper (convex) : %.6f@."
          (Bounds.upper_t0_convex lf ~c);
        Format.printf "Thm 3.3 upper (concave): %.6f@."
          (Bounds.upper_t0_concave lf ~c);
        Format.printf "search bracket       : [%.6f, %.6f]@." lo hi;
        match Life_function.support lf with
        | Life_function.Bounded l
          when Life_function.shape lf = Life_function.Concave
               || Life_function.shape lf = Life_function.Linear ->
            Format.printf "Cor 5.5 lower        : %.6f@."
              (Bounds.lower_t0_concave_lifespan ~c ~lifespan:l);
            Format.printf "Cor 5.3 max periods  : %d@."
              (Bounds.max_periods_concave ~c ~lifespan:l)
        | Life_function.Bounded _ | Life_function.Unbounded -> ())
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Print the Theorem 3.2/3.3 bounds on t0.")
    Term.(const run $ family_term $ c_term)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)

(* Per-domain utilization series for --prom: four gauge families keyed
   by a domain label, which the flat (label-free) registry cannot
   carry. *)
let pool_prom_lines p =
  let stats = Domain_pool.utilization p in
  let series f =
    Array.to_list
      (Array.map
         (fun (d : Domain_pool.domain_stat) ->
           ([ ("domain", string_of_int d.Domain_pool.d_domain) ], f d))
         stats)
  in
  Obs_export.prometheus_labeled ~name:"pool_domain_busy_seconds"
    ~help:"Per-domain time spent executing chunks." ~typ:"gauge"
    (series (fun d -> d.Domain_pool.d_busy_s))
  @ Obs_export.prometheus_labeled ~name:"pool_domain_idle_seconds"
      ~help:"Per-domain time spent idle inside submitted jobs." ~typ:"gauge"
      (series (fun d -> d.Domain_pool.d_idle_s))
  @ Obs_export.prometheus_labeled ~name:"pool_domain_queue_wait_seconds"
      ~help:"Per-domain wait between job submission and first chunk claim."
      ~typ:"gauge"
      (series (fun d -> d.Domain_pool.d_queue_wait_s))
  @ Obs_export.prometheus_labeled ~name:"pool_domain_chunks"
      ~help:"Chunks executed per domain." ~typ:"gauge"
      (series (fun d -> float_of_int d.Domain_pool.d_chunks))

let simulate_cmd =
  let trials =
    Arg.(
      value & opt int 20_000
      & info [ "trials" ] ~docv:"N" ~doc:"Monte-Carlo episodes.")
  in
  let seed =
    Arg.(
      value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let resource_term =
    Arg.(
      value & flag
      & info [ "resource" ]
          ~doc:
            "Sample GC/runtime resource counters into the $(b,gc.*) \
             metric series at the run's deterministic chunk boundaries \
             (implies a metrics registry).")
  in
  let health_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "health" ] ~docv:"FILE"
          ~doc:
            "Evaluate the health rules in $(docv) against the \
             end-of-run metrics registry; print the report and exit 1 \
             on a warn verdict, 2 on critical.")
  in
  let run spec c trials seed jobs trace metrics prom snapshot_every
      snapshot_out resource health serve emit plan_cache plan_table =
    let meta () =
      Obs.Meta.make ~seed:(Int64.of_int seed) ~jobs
        ~scenario:
          (Printf.sprintf "simulate family=%s c=%g trials=%d" spec.family c
             trials)
        ()
    in
    let snapshot = Option.map (fun n -> (n, snapshot_out)) snapshot_every in
    (* Filled while the pool is still alive; read by with_obs after the
       run when it writes the --prom file. *)
    let extra = ref [] in
    with_family spec (fun lf ->
        with_obs ~meta ~trace ~metrics ?prom
          ~prom_extra:(fun () -> !extra)
          ?snapshot ~resource ?health ?serve ?emit
          (fun obs snap res ->
            with_jobs jobs (fun pool ->
            let plan =
              if plan_cache || plan_table <> None then
                match plan_key_of_spec spec with
                | Error msg ->
                    prerr_endline msg;
                    exit 2
                | Ok family ->
                    let pc = make_plancache ~obs ~plan_table () in
                    Plancache.plan pc { Plan_key.family; c }
              else Guideline.plan ~obs lf ~c
            in
            let est =
              Monte_carlo.estimate ~obs ?pool ?snapshot:snap ?resource:res
                ~trials lf ~c ~schedule:plan.Guideline.schedule
                ~seed:(Int64.of_int seed)
            in
            (match (pool, prom) with
            | Some p, Some _ -> extra := pool_prom_lines p
            | _ -> ());
            let lo, hi = est.Monte_carlo.ci95 in
            Format.printf "schedule      : %a@." Schedule.pp
              plan.Guideline.schedule;
            Format.printf "analytic E    : %.6f@." est.Monte_carlo.analytic;
            Format.printf "MC mean (n=%d): %.6f  95%% CI [%.6f, %.6f]@."
              est.Monte_carlo.trials est.Monte_carlo.mean_work lo hi;
            Format.printf "interrupted   : %.2f%%@."
              (100.0 *. est.Monte_carlo.interrupted_fraction);
            Format.printf "mean overhead : %.6f ; mean work lost: %.6f@."
              est.Monte_carlo.mean_overhead est.Monte_carlo.mean_lost)))
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Monte-Carlo-validate the guideline schedule for a scenario.")
    Term.(
      const run $ family_term $ c_term $ trials $ seed $ jobs_term
      $ trace_term $ metrics_term $ prom_term $ snapshot_every_term
      $ snapshot_out_term $ resource_term $ health_term $ serve_term
      $ emit_term $ plan_cache_term $ plan_table_term)

(* ------------------------------------------------------------------ *)
(* compare                                                             *)

let compare_cmd =
  let trials =
    Arg.(
      value & opt int 2_000
      & info [ "trials" ] ~docv:"N"
          ~doc:"Monte-Carlo episodes per policy (common random numbers).")
  in
  let seed =
    Arg.(
      value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let run spec c trials seed jobs trace metrics =
    let meta () =
      Obs.Meta.make ~seed:(Int64.of_int seed) ~jobs
        ~scenario:
          (Printf.sprintf "compare family=%s c=%g trials=%d" spec.family c
             trials)
        ()
    in
    with_family spec (fun lf ->
        with_obs ~meta ~trace ~metrics (fun obs _snap _res ->
            with_jobs jobs (fun pool ->
                let plan = Guideline.plan ~obs lf ~c in
                let policies =
                  ("guideline", plan.Guideline.schedule)
                  :: List.map
                       (fun b -> (b.Baselines.name, b.Baselines.schedule))
                       (Baselines.all lf ~c)
                in
                let runs =
                  Monte_carlo.compare_policies ~obs ?pool ~trials lf ~c
                    ~policies ~seed:(Int64.of_int seed)
                in
                Format.printf "life function : %a@." Life_function.pp lf;
                Format.printf "policies ranked by mean work per episode \
                               (n=%d, shared reclaim stream):@."
                  trials;
                List.iter
                  (fun r ->
                    Format.printf "  %-20s : %12.6f@."
                      r.Monte_carlo.policy_name
                      r.Monte_carlo.mean_work_per_episode)
                  runs)))
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Monte-Carlo-race the guideline schedule against the naive \
          baseline policies on a shared reclaim stream.")
    Term.(
      const run $ family_term $ c_term $ trials $ seed $ jobs_term
      $ trace_term $ metrics_term)

(* ------------------------------------------------------------------ *)
(* table                                                               *)

let table_cmd =
  let c_min =
    Arg.(
      value & opt float 0.5
      & info [ "c-min" ] ~docv:"C" ~doc:"Smallest overhead in the sweep.")
  in
  let c_max =
    Arg.(
      value & opt float 4.0
      & info [ "c-max" ] ~docv:"C" ~doc:"Largest overhead in the sweep.")
  in
  let steps =
    Arg.(
      value & opt int 8
      & info [ "steps" ] ~docv:"N" ~doc:"Number of grid points.")
  in
  let sweep spec c_min c_max steps jobs plan_table =
    with_family spec (fun lf ->
        if steps < 1 then
          invalid_arg
            (Printf.sprintf "table: steps must be >= 1, got %d" steps);
        if not (c_min > 0.0 && c_max >= c_min) then
          invalid_arg
            (Printf.sprintf
               "table: need 0 < c-min <= c-max, got c-min %g, c-max %g" c_min
               c_max);
        with_jobs jobs (fun pool ->
            let grid =
              if steps = 1 then [ c_min ]
              else
                List.init steps (fun i ->
                    c_min
                    +. (c_max -. c_min) *. float_of_int i
                       /. float_of_int (steps - 1))
            in
            let results =
              match plan_table with
              | None ->
                  Guideline.plan_batch ?pool (List.map (fun c -> (lf, c)) grid)
              | Some _ -> (
                  (* Table-backed sweep: the batch answers through the
                     plancache tiers — covered points interpolate within
                     the certified bound, the rest fall through to the
                     direct planner (and dedup as LRU hits). *)
                  match plan_key_of_spec spec with
                  | Error msg ->
                      prerr_endline msg;
                      exit 2
                  | Ok family ->
                      let pc = make_plancache ~obs:Obs.disabled ~plan_table () in
                      Plancache.plan_batch pc
                        (List.map (fun c -> { Plan_key.family; c }) grid))
            in
            Format.printf "life function : %a@." Life_function.pp lf;
            Format.printf "%9s  %9s  %7s  %12s@." "c" "t0" "periods"
              "E[work]";
            List.iter2
              (fun c r ->
                Format.printf "%9.4f  %9.4f  %7d  %12.6f@." c r.Guideline.t0
                  (Schedule.num_periods r.Guideline.schedule)
                  r.Guideline.expected_work)
              grid results))
  in
  let bake_cmd =
    let c_steps =
      Arg.(
        value & opt int 8
        & info [ "c-steps" ] ~docv:"N" ~doc:"Grid nodes along the c axis.")
    in
    let param_min =
      Arg.(
        value & opt float 50.0
        & info [ "param-min" ] ~docv:"P"
            ~doc:
              "Smallest family-parameter grid value (the lifespan L for \
               bounded families, the base a for geo-dec).")
    in
    let param_max =
      Arg.(
        value & opt float 200.0
        & info [ "param-max" ] ~docv:"P"
            ~doc:"Largest family-parameter grid value.")
    in
    let param_steps =
      Arg.(
        value & opt int 8
        & info [ "param-steps" ] ~docv:"N"
            ~doc:"Grid nodes along the family-parameter axis.")
    in
    let out =
      Arg.(
        value & opt string "plan_table.cstable"
        & info [ "out"; "o" ] ~docv:"FILE"
            ~doc:"Where to write the baked table (single-line JSON).")
    in
    let run spec c_min c_max c_steps param_min param_max param_steps out =
      let kind =
        match spec.family with
        | "uniform" -> Ok ("uniform", None)
        | "polynomial" | "poly" -> Ok ("polynomial", Some spec.d)
        | "geo-dec" | "geometric-decreasing" -> Ok ("geo-dec", None)
        | "geo-inc" | "geometric-increasing" -> Ok ("geo-inc", None)
        | other ->
            Error
              (Printf.sprintf
                 "family %S has no table axis (bakeable: uniform | \
                  polynomial | geo-dec | geo-inc)"
                 other)
      in
      match kind with
      | Error msg ->
          prerr_endline msg;
          exit 2
      | Ok (kind, degree) -> (
          match
            Plan_table.bake ~kind ?degree ~c_lo:c_min ~c_hi:c_max ~c_steps
              ~param_lo:param_min ~param_hi:param_max ~param_steps ()
          with
          | Error msg ->
              prerr_endline ("error: " ^ msg);
              exit 1
          | Ok tbl -> (
              match Plan_table.save out tbl with
              | Error msg ->
                  prerr_endline ("error: " ^ msg);
                  exit 1
              | Ok () ->
                  Format.printf
                    "baked plan table : family=%s%s, %d nodes (c in [%g, \
                     %g], param in [%g, %g])@."
                    kind
                    (match degree with
                    | Some d -> Printf.sprintf " d=%d" d
                    | None -> "")
                    (Plan_table.nodes tbl) c_min c_max param_min param_max;
                  Format.printf
                    "certified bound  : %.3e relative expected-work \
                     shortfall@."
                    (Plan_table.error_bound tbl);
                  Format.printf "wrote %s@." out))
    in
    Cmd.v
      (Cmd.info "bake"
         ~doc:
           "Precompute a plan table over a (c, family-parameter) grid with \
            a certified interpolation error bound, for --plan-table.")
      Term.(
        const run $ family_term $ c_min $ c_max $ c_steps $ param_min
        $ param_max $ param_steps $ out)
  in
  Cmd.group
    ~default:
      Term.(
        const sweep $ family_term $ c_min $ c_max $ steps $ jobs_term
        $ plan_table_term)
    (Cmd.info "table"
       ~doc:
         "Sweep the guideline planner over an overhead grid and print the \
          schedule table (one batch, parallel with --jobs; answered from a \
          baked table with --plan-table), or bake an ahead-of-time plan \
          table with $(b,csctl table bake).")
    [ bake_cmd ]

(* ------------------------------------------------------------------ *)
(* admissible                                                          *)

let admissible_cmd =
  let run spec c =
    with_family spec (fun lf ->
        Format.printf "life function : %a@." Life_function.pp lf;
        match Admissibility.test lf ~c with
        | Admissibility.Admissible { witness; margin } ->
            Format.printf
              "verdict       : admissible (Cor 3.2 margin %.4g at t = %.4g)@."
              margin witness
        | Admissibility.Inadmissible (Admissibility.Unbounded_work { tail_ratio }) ->
            Format.printf
              "verdict       : INADMISSIBLE — expected work unbounded (tail \
               panel ratio %.3f)@."
              tail_ratio
        | Admissibility.Inadmissible (Admissibility.Heavy_tail { tail_ratio }) ->
            Format.printf
              "verdict       : INADMISSIBLE — polynomial tail (panel ratio \
               %.3f ~ 2^(1-d))@."
              tail_ratio
        | Admissibility.Inadmissible (Admissibility.Negative_margin { max_margin }) ->
            Format.printf
              "verdict       : INADMISSIBLE — Cor 3.2 margin negative \
               everywhere (max %.4g)@."
              max_margin)
  in
  Cmd.v
    (Cmd.info "admissible"
       ~doc:"Test whether a life function admits an optimal schedule.")
    Term.(const run $ family_term $ c_term)

(* ------------------------------------------------------------------ *)
(* fit                                                                 *)

let fit_cmd =
  let model =
    Arg.(
      value & opt string "exponential"
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "Owner model to synthesize absences from: exponential | uniform \
             | weibull | coffee | day-night.")
  in
  let mean =
    Arg.(
      value & opt float 40.0
      & info [ "mean" ] ~docv:"M" ~doc:"Mean absence (model parameter).")
  in
  let samples =
    Arg.(
      value & opt int 1000
      & info [ "samples" ] ~docv:"N" ~doc:"Number of absences to synthesize.")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let run c model mean samples seed =
    let owner =
      match model with
      | "exponential" -> Ok (Owner_model.Exponential_absence { mean })
      | "uniform" -> Ok (Owner_model.Uniform_absence { max = 2.0 *. mean })
      | "weibull" ->
          Ok (Owner_model.Weibull_absence { shape = 2.0; scale = mean *. 1.13 })
      | "coffee" ->
          Ok (Owner_model.Coffee_break { typical = mean; spread = mean /. 4.0 })
      | "day-night" ->
          Ok
            (Owner_model.Day_night
               {
                 short_mean = mean /. 2.0;
                 long_mean = mean *. 10.0;
                 long_fraction = 0.15;
               })
      | other -> Error (Printf.sprintf "unknown owner model %S" other)
    in
    match owner with
    | Error msg ->
        prerr_endline msg;
        exit 2
    | Ok owner ->
        let rng = Prng.create ~seed:(Int64.of_int seed) in
        let ds = Array.init samples (fun _ -> Owner_model.sample owner rng) in
        let est = Survival.of_durations ds in
        let fit = Fit.best_fit ds in
        Format.printf "synthesized %d absences, sample mean %.3f@." samples
          (Stats.mean ds);
        Format.printf "nonparametric estimate: %a@." Life_function.pp
          est.Survival.life;
        Format.printf "best parametric fit   : %s (SSE %.4f)@." fit.Fit.family
          fit.Fit.sse;
        List.iter
          (fun (k, v) -> Format.printf "  %-10s = %.6f@." k v)
          fit.Fit.params;
        let plan = Guideline.plan fit.Fit.life ~c in
        Format.printf "guideline schedule from the fit: %a@." Schedule.pp
          plan.Guideline.schedule;
        Format.printf "expected work: %.4f@." plan.Guideline.expected_work
  in
  Cmd.v
    (Cmd.info "fit"
       ~doc:
         "Synthesize owner-absence data, fit a life function, and schedule \
          with it.")
    Term.(const run $ c_term $ model $ mean $ samples $ seed)

(* ------------------------------------------------------------------ *)
(* checkpoint                                                          *)

let checkpoint_cmd =
  let work =
    Arg.(
      value & opt float 720.0
      & info [ "work" ] ~docv:"W" ~doc:"Total computation to complete.")
  in
  let mtbf =
    Arg.(
      value & opt float 240.0
      & info [ "mtbf" ] ~docv:"T" ~doc:"Mean time between failures.")
  in
  let restart =
    Arg.(
      value & opt float 10.0
      & info [ "restart" ] ~docv:"R" ~doc:"Restart cost after a failure.")
  in
  let seed =
    Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let run c work mtbf restart seed =
    try
      let life = Families.exponential ~rate:(1.0 /. mtbf) in
      let plan = Checkpoint.plan_saves ~work life ~c in
      Format.printf "checkpoint every %.4f (first interval); %d intervals@."
        (Schedule.period plan.Checkpoint.intervals 0)
        (Schedule.num_periods plan.Checkpoint.intervals);
      Format.printf "expected committed before first failure: %.3f@."
        plan.Checkpoint.expected_committed;
      let g = Prng.create ~seed:(Int64.of_int seed) in
      let r =
        Checkpoint.simulate_restarts ~work ~c ~restart_cost:restart life g
          ~max_failures:1_000_000
      in
      Format.printf
        "one simulated run: makespan %.1f, %d failures, %.1f recomputed, %d \
         checkpoints written@."
        r.Checkpoint.makespan r.Checkpoint.failures r.Checkpoint.work_lost_total
        r.Checkpoint.checkpoints_written
    with Invalid_argument msg ->
      prerr_endline ("error: " ^ msg);
      exit 1
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:"Plan and simulate checkpointing for a fault-prone computation.")
    Term.(const run $ c_term $ work $ mtbf $ restart $ seed)

(* ------------------------------------------------------------------ *)
(* worst-case                                                           *)

let worst_case_cmd =
  let horizon =
    Arg.(
      value & opt float 100.0
      & info [ "horizon" ] ~docv:"H"
          ~doc:"Latest adversarial kill time designed for.")
  in
  let grace =
    Arg.(
      value
      & opt (some float) None
      & info [ "grace" ] ~docv:"G"
          ~doc:"Warm-up before the guarantee applies (default 5c).")
  in
  let run c horizon grace =
    try
      let w = Worst_case.plan ?grace ~c ~horizon () in
      Format.printf "schedule : %a@." Schedule.pp w.Worst_case.schedule;
      Format.printf
        "guarantee: for every kill time t in [%.4g, %.4g], banked work >= \
         %.2f%% of the omniscient (t - c)@."
        w.Worst_case.grace w.Worst_case.horizon
        (100.0 *. w.Worst_case.ratio);
      List.iter
        (fun (name, lf) ->
          Format.printf "  expected work under %-22s: %8.3f@." name
            (Schedule.expected_work ~c lf w.Worst_case.schedule))
        (Families.all_paper_scenarios ~c)
    with Invalid_argument msg ->
      prerr_endline ("error: " ^ msg);
      exit 1
  in
  Cmd.v
    (Cmd.info "worst-case"
       ~doc:
         "Compute a competitive (adversarial) schedule with a guaranteed \
          fraction of omniscient work.")
    Term.(const run $ c_term $ horizon $ grace)

(* ------------------------------------------------------------------ *)
(* distribution                                                         *)

let distribution_cmd =
  let run spec c =
    with_family spec (fun lf ->
        let plan = Guideline.plan lf ~c in
        let d = Work_distribution.of_schedule lf ~c plan.Guideline.schedule in
        Format.printf "schedule : %a@." Schedule.pp plan.Guideline.schedule;
        Format.printf "mean %.4f, stddev %.4f, P(work = 0) = %.2f%%@."
          d.Work_distribution.mean d.Work_distribution.stddev
          (100.0 *. Work_distribution.prob_zero d);
        Format.printf "quantiles: q10 %.3f | median %.3f | q90 %.3f@."
          (Work_distribution.quantile d ~q:0.1)
          (Work_distribution.quantile d ~q:0.5)
          (Work_distribution.quantile d ~q:0.9);
        Format.printf "law:@.";
        Array.iter
          (fun (w, pr) -> Format.printf "  P(work = %8.3f) = %.4f@." w pr)
          d.Work_distribution.outcomes)
  in
  Cmd.v
    (Cmd.info "distribution"
       ~doc:
         "Print the exact banked-work distribution of the guideline \
          schedule for a scenario.")
    Term.(const run $ family_term $ c_term)

(* ------------------------------------------------------------------ *)
(* report                                                               *)

let report_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:"JSONL trace file written by --trace.")
  in
  let run file =
    match Trace_report.load file with
    | Ok summary -> Format.printf "%a" Trace_report.pp summary
    | Error msg ->
        prerr_endline ("error: " ^ msg);
        exit 1
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Aggregate a JSONL event trace into per-run and per-workstation \
          summaries (kill rates, overhead fraction, quantiles).")
    Term.(const run $ file)

(* ------------------------------------------------------------------ *)
(* profile                                                              *)

let profile_cmd =
  let trials =
    Arg.(
      value & opt int 2_000
      & info [ "trials" ] ~docv:"N" ~doc:"Monte-Carlo episodes to profile.")
  in
  let seed =
    Arg.(
      value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let out =
    Arg.(
      value
      & opt string "profile_trace.json"
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Where to write the Chrome trace-event JSON (load it in \
             $(b,chrome://tracing) or $(b,https://ui.perfetto.dev)).")
  in
  let tree =
    Arg.(
      value & flag
      & info [ "tree" ]
          ~doc:
            "Also print the aggregated self-time/total-time span tree \
             (per-span wall times vary run to run).")
  in
  let run spec c trials seed out tree =
    with_family spec (fun lf ->
        let recorder = Obs.Span.create () in
        let obs = Obs.create ~spans:recorder () in
        let plan = Guideline.plan ~obs lf ~c in
        let (_ : Monte_carlo.estimate) =
          Monte_carlo.estimate ~obs ~trials lf ~c
            ~schedule:plan.Guideline.schedule ~seed:(Int64.of_int seed)
        in
        let doc = Obs.Span.to_chrome_json recorder in
        (try
           let oc = open_out out in
           Fun.protect
             ~finally:(fun () -> close_out oc)
             (fun () -> output_string oc (Jsonx.to_string doc ^ "\n"))
         with Sys_error msg ->
           prerr_endline ("error: " ^ msg);
           exit 1);
        (* Round-trip the emitted JSON through the parser and validate
           the trace-event shape — the cram test keys on this line. *)
        let round_trip =
          Result.bind
            (Jsonx.of_string (Jsonx.to_string doc))
            Obs_span.validate_chrome
        in
        (match round_trip with
        | Ok (events, depth) ->
            Format.printf "trace summary: %d events, max depth %d, \
                           round-trip ok@."
              events depth
        | Error msg ->
            prerr_endline ("error: invalid Chrome trace: " ^ msg);
            exit 1);
        (if Obs.Span.dropped recorder > 0 then
           Format.printf "note: %d span(s) dropped at the buffer cap@."
             (Obs.Span.dropped recorder));
        Format.printf "wrote %s@." out;
        if tree then
          Format.printf "%a"
            Trace_report.pp_span_tree
            (Trace_report.span_tree (Obs.Span.spans recorder)))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile a plan + Monte-Carlo run with hierarchical spans and \
          export a Chrome trace-event JSON.")
    Term.(const run $ family_term $ c_term $ trials $ seed $ out $ tree)

(* ------------------------------------------------------------------ *)

let () =
  let doc =
    "data-parallel cycle-stealing schedules for networks of workstations \
     (reproduction of Rosenberg, TR 98-15 / IPPS 1998)"
  in
  let info = Cmd.info "csctl" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            schedule_cmd;
            bounds_cmd;
            simulate_cmd;
            compare_cmd;
            table_cmd;
            admissible_cmd;
            fit_cmd;
            checkpoint_cmd;
            worst_case_cmd;
            distribution_cmd;
            report_cmd;
            profile_cmd;
          ]))
