(* Minimal aligned-table printer for the experiment harness, with an
   optional CSV sink so plots can be made from the same run. *)

let csv_dir : string option ref = ref None

let set_csv_dir d = csv_dir := d

let slug title =
  (* "E4  geometric-decreasing ..." -> "e4". Fall back to a sanitized
     prefix for titles without an experiment id. *)
  let lower = String.lowercase_ascii title in
  match String.index_opt lower ' ' with
  | Some i when i > 0 && (lower.[0] = 'e' || lower.[0] = 't') ->
      String.sub lower 0 i
  | Some _ | None ->
      String.map (fun ch -> if ch = ' ' then '-' else ch)
        (String.sub lower 0 (Int.min 24 (String.length lower)))

let csv_escape cell =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv ~title ~header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path = Filename.concat dir (slug title ^ ".csv") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc ("# " ^ title ^ "\n");
          List.iter
            (fun row ->
              output_string oc
                (String.concat "," (List.map csv_escape row) ^ "\n"))
            (header :: rows))

let hline widths =
  let buf = Buffer.create 80 in
  Buffer.add_char buf '+';
  Array.iter
    (fun w ->
      Buffer.add_string buf (String.make (w + 2) '-');
      Buffer.add_char buf '+')
    widths;
  Buffer.contents buf

let render ~title ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let widths = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- Int.max widths.(i) (String.length cell))
        row)
    all;
  let line = hline widths in
  let print_row row =
    print_char '|';
    List.iteri
      (fun i cell -> Printf.printf " %-*s |" widths.(i) cell)
      row;
    print_newline ()
  in
  Printf.printf "\n== %s\n%s\n" title line;
  print_row header;
  print_endline line;
  List.iter print_row rows;
  print_endline line;
  write_csv ~title ~header rows

let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
let f4 x = Printf.sprintf "%.4f" x
let g4 x = Printf.sprintf "%.4g" x
let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
let yes_no b = if b then "yes" else "NO"
