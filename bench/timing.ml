(* T1 — Bechamel micro-benchmarks of the core algorithms: one Test.make
   per hot path. Estimated via OLS on monotonic-clock samples. Besides
   the printed table, the run writes BENCH_T1.json (ns/call + r^2 per
   benchmark plus run metadata) to the working directory so regressions
   can be diffed by machines.

   The three "episode-run (obs ...)" variants pin the observability
   overhead budget: disabled and null-sink must be statistically
   indistinguishable from the uninstrumented baseline (the ?obs default
   is one branch), and the metrics variant bounds the live-registry
   cost. *)

open Bechamel
open Toolkit

let uniform_lf = Families.uniform ~lifespan:100.0
let geo_dec_lf = Families.geometric_decreasing ~a:(exp 0.05)
let geo_inc_lf = Families.geometric_increasing ~lifespan:30.0
let schedule = (Guideline.plan uniform_lf ~c:1.0).Guideline.schedule
let sampler = Reclaim.create uniform_lf

let tests =
  [
    Test.make ~name:"recurrence-step (uniform)"
      (Staged.stage (fun () ->
           Recurrence.next_period uniform_lf ~c:1.0 ~prev_period:10.0
             ~prev_end:20.0));
    Test.make ~name:"recurrence-generate (uniform, ~13 periods)"
      (Staged.stage (fun () ->
           Recurrence.generate uniform_lf ~c:1.0 ~t0:13.6));
    Test.make ~name:"expected-work (13 periods)"
      (Staged.stage (fun () ->
           Schedule.expected_work ~c:1.0 uniform_lf schedule));
    Test.make ~name:"t0-bracket (Thm 3.2/3.3, uniform)"
      (Staged.stage (fun () -> Bounds.bracket uniform_lf ~c:1.0));
    Test.make ~name:"guideline-plan (uniform)"
      (Staged.stage (fun () -> Guideline.plan uniform_lf ~c:1.0));
    Test.make ~name:"guideline-plan (geo-dec)"
      (Staged.stage (fun () -> Guideline.plan geo_dec_lf ~c:1.0));
    Test.make ~name:"exact-uniform ([3] closed form)"
      (Staged.stage (fun () -> Exact.uniform ~c:1.0 ~lifespan:100.0));
    Test.make ~name:"lambert-t* (geo-dec closed form)"
      (Staged.stage (fun () ->
           Closed_forms.geo_dec_t_optimal ~a:(exp 0.05) ~c:1.0));
    Test.make ~name:"optimizer (geo-inc, coordinate ascent)"
      (Staged.stage (fun () ->
           Optimizer.optimal_schedule ~m_max:4 ~patience:1 geo_inc_lf ~c:1.0));
    Test.make ~name:"episode-run (13 periods)"
      (Staged.stage
         (let g = Prng.create ~seed:1L in
          fun () ->
            Episode.run schedule ~c:1.0 ~reclaim_at:(Reclaim.draw sampler g)));
    Test.make ~name:"episode-run (obs disabled)"
      (Staged.stage
         (let g = Prng.create ~seed:1L in
          fun () ->
            Episode.run ~obs:Obs.disabled schedule ~c:1.0
              ~reclaim_at:(Reclaim.draw sampler g)));
    Test.make ~name:"episode-run (obs null sink)"
      (Staged.stage
         (let g = Prng.create ~seed:1L in
          let obs = Obs.create ~sink:Obs.Sink.Null () in
          fun () ->
            Episode.run ~obs schedule ~c:1.0
              ~reclaim_at:(Reclaim.draw sampler g)));
    Test.make ~name:"episode-run (obs metrics)"
      (Staged.stage
         (let g = Prng.create ~seed:1L in
          let obs = Obs.create ~metrics:(Obs.Metrics.create ()) () in
          fun () ->
            Episode.run ~obs schedule ~c:1.0
              ~reclaim_at:(Reclaim.draw sampler g)));
    Test.make ~name:"reclaim-draw (tabulated inverse CDF)"
      (Staged.stage
         (let g = Prng.create ~seed:2L in
          fun () -> Reclaim.draw sampler g));
    Test.make ~name:"prng-xoshiro256++ (float)"
      (Staged.stage
         (let g = Prng.create ~seed:3L in
          fun () -> Prng.float g));
  ]

let quota_seconds = 0.5

let json_num x = if Float.is_finite x then Jsonx.Float x else Jsonx.Null

let write_json rows =
  let results =
    List.map
      (fun (name, ns, r2) ->
        ( name,
          Jsonx.Obj
            [ ("ns_per_call", json_num ns); ("r_square", json_num r2) ] ))
      rows
  in
  let doc =
    Jsonx.Obj
      [
        ("v", Jsonx.Int 1);
        ("suite", Jsonx.String "T1");
        ("ocaml", Jsonx.String Sys.ocaml_version);
        ("quota_seconds", Jsonx.Float quota_seconds);
        ("unix_time", Jsonx.Float (Unix.time ()));
        ("results", Jsonx.Obj results);
      ]
  in
  let oc = open_out "BENCH_T1.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Jsonx.to_string doc ^ "\n"));
  print_endline "wrote BENCH_T1.json"

let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_seconds) ~kde:None ()
  in
  let raw =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"cyclesteal" tests)
  in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | Some [] | None -> Float.nan
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> r
        | None -> Float.nan
      in
      rows := (name, ns, r2) :: !rows)
    results;
  let rows = List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b) !rows in
  Tbl.render
    ~title:"T1  Bechamel micro-benchmarks (OLS estimate per call)"
    ~header:[ "operation"; "time/call"; "r^2" ]
    (List.map
       (fun (name, ns, r2) ->
         let time =
           if Float.is_nan ns then "n/a"
           else if ns < 1e3 then Printf.sprintf "%.1f ns" ns
           else if ns < 1e6 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.2f ms" (ns /. 1e6)
         in
         [ name; time; (if Float.is_nan r2 then "n/a" else Tbl.f3 r2) ])
       rows);
  write_json rows
