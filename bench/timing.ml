(* T1 — Bechamel micro-benchmarks of the core algorithms: one Test.make
   per hot path, estimated by a trimmed through-origin OLS
   (Bench_fit) over the raw monotonic-clock samples. Two harness
   defenses against noisy hosts: every thunk is warmed before sampling
   (so allocation-rate ramp-up and lazy initialisation don't pollute the
   samples), and per-sample rates outside central quantiles are trimmed
   before fitting (so preemption/GC spikes can't crater r^2 — the seed's
   reclaim-draw fit sat at r^2 ~ 0.34 without this).

   Besides the printed table, the run writes BENCH_T1.json (schema v2:
   ns/call + r^2 per benchmark plus git SHA / OCaml / hostname metadata)
   and appends the same record to BENCH_HISTORY.jsonl, the append-only
   bench trajectory consumed by `csbench diff/check/history`.

   The "episode-run (obs ...)" variants pin the observability overhead
   budget: disabled and null-sink must be statistically
   indistinguishable from the uninstrumented baseline (the ?obs default
   — including the span-recorder test — is one branch), the metrics
   variant bounds the live-registry cost, the resource variant bounds
   the amortized GC-sampling cost on top of it, and the spans variant
   bounds the live-recorder cost. "mc-estimate-20k (utilization on)"
   does the same for the pool/merge accounting inside the estimator. *)

open Bechamel
open Toolkit

let uniform_lf = Families.uniform ~lifespan:100.0
let geo_dec_lf = Families.geometric_decreasing ~a:(exp 0.05)
let geo_inc_lf = Families.geometric_increasing ~lifespan:30.0
let schedule = (Guideline.plan uniform_lf ~c:1.0).Guideline.schedule
let sampler = Reclaim.create uniform_lf

(* Plancache fixtures are lazy: warming a cache or baking a table runs
   real plans (tens of ms for the table), which must not tax the
   non-timing subcommands at module init. The bench warmup loop forces
   them before sampling starts. *)
let geo_scen = { Plan_key.family = Plan_key.Geo_dec { a = exp 0.05 }; c = 1.0 }

let uni_scen =
  { Plan_key.family = Plan_key.Uniform { lifespan = 100.0 }; c = 1.0 }

let warm_cache =
  lazy
    (let pc = Plancache.create () in
     ignore (Plancache.plan pc geo_scen);
     ignore (Plancache.plan pc uni_scen);
     pc)

let baked_geo =
  lazy
    (match
       Plan_table.bake ~kind:"geo-dec" ~c_lo:0.5 ~c_hi:2.0 ~c_steps:4
         ~param_lo:(exp 0.02) ~param_hi:(exp 0.1) ~param_steps:4 ()
     with
    | Ok t -> t
    | Error e -> failwith ("bench: geo-dec table bake failed: " ^ e))

(* Sink-emit fixtures price the trace transport itself, one event per
   call. Lazy for the same reason the plancache fixtures are: the
   remote variant stands up a live in-process collector (a real
   Obs_collect accept loop on a unix socket, draining frames) and an
   Obs_remote producer, which must not tax non-timing subcommands at
   module init. The warmup loop forces both before sampling. *)
let bench_meta =
  lazy (Obs.Meta.make ~git_sha:"bench" ~seed:1L ~jobs:1 ~scenario:"bench sink-emit" ())

let sink_event =
  Obs_event.Period_completed
    { time = 1.0; ws = 0; ep = 1; period = 2.0; banked = 1.5; overhead = 0.5 }

let jsonl_sink =
  lazy
    (let path = Filename.temp_file "cs_bench_sink" ".jsonl" in
     at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
     Obs.Sink.Jsonl (open_out path))

let remote_sink =
  lazy
    (let sock = Filename.temp_file "cs_bench_collect" ".sock" in
     Sys.remove sock;
     at_exit (fun () -> try Sys.remove sock with Sys_error _ -> ());
     let listen = Obs.Http.Unix_sock sock in
     (* The drain collector runs for the rest of the process; bench
        exits without a clean BYE, which is exactly the truncation
        path the collector is built to absorb. *)
     ignore (Thread.create (fun () -> ignore (Obs.Collect.run ~listen ())) ());
     Obs.Remote.sink (Obs.Remote.create ~addr:listen ~meta:(Lazy.force bench_meta) ()))

(* (name, thunk, warmup iterations). Cheap thunks get large warmups;
   planner-grade ones only need a few calls to fault everything in. *)
let serial_workloads : (string * (unit -> unit) * int) list =
  [
    ( "recurrence-step (uniform)",
      (fun () ->
        ignore
          (Recurrence.next_period uniform_lf ~c:1.0 ~prev_period:10.0
             ~prev_end:20.0)),
      2_000 );
    ( "recurrence-generate (uniform, ~13 periods)",
      (fun () -> ignore (Recurrence.generate uniform_lf ~c:1.0 ~t0:13.6)),
      500 );
    ( "expected-work (13 periods)",
      (fun () -> ignore (Schedule.expected_work ~c:1.0 uniform_lf schedule)),
      2_000 );
    ( "t0-bracket (Thm 3.2/3.3, uniform)",
      (fun () -> ignore (Bounds.bracket uniform_lf ~c:1.0)),
      100 );
    ( "guideline-plan (uniform)",
      (fun () -> ignore (Guideline.plan uniform_lf ~c:1.0)),
      5 );
    ( "guideline-plan (geo-dec)",
      (fun () -> ignore (Guideline.plan geo_dec_lf ~c:1.0)),
      5 );
    (* The cached/table planner variants sample the warm paths the cold
       "guideline-plan" rows above are the baseline for: an LRU hit is a
       key render plus a Hashtbl probe, a table answer is a bilinear
       interpolation plus one schedule regeneration. Cache and table are
       pre-warmed/pre-baked by the warmup loop, so the samples measure
       steady-state hits, never the one-off miss. *)
    ( "guideline-plan (geo-dec, cached)",
      (fun () -> ignore (Plancache.plan (Lazy.force warm_cache) geo_scen)),
      2_000 );
    ( "guideline-plan (uniform, cached)",
      (fun () -> ignore (Plancache.plan (Lazy.force warm_cache) uni_scen)),
      2_000 );
    ( "guideline-plan (geo-dec, table)",
      (fun () -> ignore (Plan_table.plan (Lazy.force baked_geo) geo_scen)),
      500 );
    ( "exact-uniform ([3] closed form)",
      (fun () -> ignore (Exact.uniform ~c:1.0 ~lifespan:100.0)),
      200 );
    ( "lambert-t* (geo-dec closed form)",
      (fun () -> ignore (Closed_forms.geo_dec_t_optimal ~a:(exp 0.05) ~c:1.0)),
      2_000 );
    ( "optimizer (geo-inc, coordinate ascent)",
      (fun () ->
        ignore (Optimizer.optimal_schedule ~m_max:4 ~patience:1 geo_inc_lf ~c:1.0)),
      2 );
    ( "episode-run (13 periods)",
      (let g = Prng.create ~seed:1L in
       fun () ->
         ignore (Episode.run schedule ~c:1.0 ~reclaim_at:(Reclaim.draw sampler g))),
      2_000 );
    ( "episode-run (obs disabled)",
      (let g = Prng.create ~seed:1L in
       fun () ->
         ignore
           (Episode.run ~obs:Obs.disabled schedule ~c:1.0
              ~reclaim_at:(Reclaim.draw sampler g))),
      2_000 );
    ( "episode-run (obs null sink)",
      (let g = Prng.create ~seed:1L in
       let obs = Obs.create ~sink:Obs.Sink.Null () in
       fun () ->
         ignore
           (Episode.run ~obs schedule ~c:1.0 ~reclaim_at:(Reclaim.draw sampler g))),
      2_000 );
    ( "episode-run (obs metrics)",
      (let g = Prng.create ~seed:1L in
       let obs = Obs.create ~metrics:(Obs.Metrics.create ()) () in
       fun () ->
         ignore
           (Episode.run ~obs schedule ~c:1.0 ~reclaim_at:(Reclaim.draw sampler g))),
      2_000 );
    ( "episode-run (obs resource)",
      (* The metrics variant plus a resource tick per call. The divisor
         of 64 is 8x finer than the production cadence (one sample per
         512-episode Monte-Carlo chunk), so the amortized Gc.quick_stat
         cost measured here is an upper bound on the deployed one while
         still exercising both tick regimes: the countdown fast path on
         63 of 64 calls and a full sample on the 64th. Budget: <= 2x
         the plain obs-metrics variant. *)
      (let g = Prng.create ~seed:1L in
       let m = Obs.Metrics.create () in
       let obs = Obs.create ~metrics:m () in
       let res = Obs.Resource.create ~every:64 m in
       fun () ->
         ignore
           (Episode.run ~obs schedule ~c:1.0 ~reclaim_at:(Reclaim.draw sampler g));
         Obs.Resource.tick res),
      2_000 );
    ( "episode-run (obs spans)",
      (let g = Prng.create ~seed:1L in
       (* A fresh recorder per call would measure allocation, not
          recording; reuse one and let it hit its cap — after that each
          episode costs the enter/exit path plus the drop branch, which
          is the steady-state profile cost. *)
       let obs = Obs.create ~spans:(Obs.Span.create ~max_spans:100_000 ()) () in
       fun () ->
         ignore
           (Episode.run ~obs schedule ~c:1.0 ~reclaim_at:(Reclaim.draw sampler g))),
      2_000 );
    (* The sink-emit pair prices the transport: the jsonl row is one
       encode + write to a warm out_channel (the --trace cost per
       event), the remote row is the producer side of --emit — a push
       into Obs_remote's bounded ring and return, with the live
       collector draining the socket from its own thread. The
       never-block contract (DESIGN.md §16) is what's being watched:
       the remote number prices the enqueue (or, when the drain falls
       behind and the ring fills, the counted-drop branch), never a
       socket round trip. *)
    ( "sink-emit (jsonl)",
      (fun () -> Obs.Sink.emit (Lazy.force jsonl_sink) sink_event),
      2_000 );
    ( "sink-emit (remote, unix loopback)",
      (fun () -> Obs.Sink.emit (Lazy.force remote_sink) sink_event),
      2_000 );
    (* The two sub-30ns thunks are measured 64 calls per invocation:
       one clock read per ~1 µs of work instead of per ~20 ns, which is
       what keeps their OLS fit out of the clock-granularity noise floor
       (single-call variants sat at r^2 ~ 0.6-0.7). Reported time/call
       is therefore per x64 batch. *)
    ( "reclaim-draw (tabulated inverse CDF, x64)",
      (let g = Prng.create ~seed:2L in
       fun () ->
         for _ = 1 to 64 do
           ignore (Reclaim.draw sampler g)
         done),
      200 );
    ( "prng-xoshiro256++ (float, x64)",
      (let g = Prng.create ~seed:3L in
       fun () ->
         for _ = 1 to 64 do
           ignore (Prng.float g)
         done),
      200 );
    ( "mc-estimate-20k (serial)",
      (fun () ->
        ignore
          (Monte_carlo.estimate ~trials:20_000 uniform_lf ~c:1.0 ~schedule
             ~seed:7L)),
      1 );
    ( "mc-estimate-20k (utilization on)",
      (* Serial estimate with a live registry: the utilization
         accounting path (per-run clock reads, merge timing, gauge
         publication) on top of the ordinary metrics cost. *)
      (fun () ->
        ignore
          (Monte_carlo.estimate
             ~obs:(Obs.create ~metrics:(Obs.Metrics.create ()) ())
             ~trials:20_000 uniform_lf ~c:1.0 ~schedule ~seed:7L)),
      1 );
  ]

(* The "(parallel)" variants are sampled in a second pass, with the pool
   alive only for that pass: on OCaml 5 every live domain participates
   in stop-the-world minor collections, so a resident pool measurably
   degrades unrelated serial benchmarks on small hosts — the serial
   numbers must stay comparable whatever --jobs was. [pool] is [None]
   when --jobs is 1; the variants then degrade to serial, so their names
   (which the regression gate keys on) never change. *)
let parallel_workloads ~(pool : Domain_pool.t option) :
    (string * (unit -> unit) * int) list =
  [
    ( "mc-estimate-20k (parallel)",
      (fun () ->
        ignore
          (Monte_carlo.estimate ?pool ~trials:20_000 uniform_lf ~c:1.0
             ~schedule ~seed:7L)),
      1 );
    ( "optimizer (geo-inc, parallel)",
      (fun () ->
        ignore
          (Optimizer.optimal_schedule ?pool ~m_max:4 ~patience:1 geo_inc_lf
             ~c:1.0)),
      2 );
  ]

let min_r2_warn = 0.5

let git_sha () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"

(* Warm, sample, and fit one workload list. Grouping under "cyclesteal"
   prefixes every benchmark name with "cyclesteal/" in the results. *)
let sample_workloads ~quota_seconds ~warmup_scale workloads =
  List.iter
    (fun (_, f, warmup) ->
      for _ = 1 to Stdlib.max 1 (warmup / warmup_scale) do
        f ()
      done)
    workloads;
  let tests =
    List.map (fun (name, f, _) -> Test.make ~name (Staged.stage f)) workloads
  in
  let instance = Instance.monotonic_clock in
  let clock_label = Measure.label instance in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_seconds) ~kde:None ()
  in
  let raw =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"cyclesteal" tests)
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name (b : Benchmark.t) ->
      let samples = b.Benchmark.lr in
      let runs =
        Array.map (fun m -> Measurement_raw.run m) samples
      in
      let nanos =
        Array.map (fun m -> Measurement_raw.get ~label:clock_label m) samples
      in
      let fit =
        if Array.length runs = 0 then
          { Bench_fit.ns_per_run = Float.nan; r_square = Float.nan; kept = 0; total = 0 }
        else Bench_fit.trimmed ~runs ~nanos ()
      in
      rows := (name, fit) :: !rows)
    raw;
  !rows

let run ?(quick = false) ?(jobs = 1) () =
  let quota_seconds = if quick then 0.05 else 0.5 in
  let warmup_scale = if quick then 10 else 1 in
  let serial_rows =
    sample_workloads ~quota_seconds ~warmup_scale serial_workloads
  in
  let parallel_rows =
    let pool =
      if jobs > 1 then Some (Domain_pool.create ~domains:jobs) else None
    in
    Fun.protect ~finally:(fun () -> Option.iter Domain_pool.shutdown pool)
    @@ fun () ->
    sample_workloads ~quota_seconds ~warmup_scale (parallel_workloads ~pool)
  in
  let rows =
    List.sort
      (fun (_, a) (_, b) ->
        Float.compare a.Bench_fit.ns_per_run b.Bench_fit.ns_per_run)
      (serial_rows @ parallel_rows)
  in
  Tbl.render
    ~title:
      "T1  Bechamel micro-benchmarks (trimmed through-origin OLS per call)"
    ~header:[ "operation"; "time/call"; "r^2"; "kept" ]
    (List.map
       (fun (name, fit) ->
         let ns = fit.Bench_fit.ns_per_run in
         let time =
           if Float.is_nan ns then "n/a"
           else if ns < 1e3 then Printf.sprintf "%.1f ns" ns
           else if ns < 1e6 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.2f ms" (ns /. 1e6)
         in
         [
           name;
           time;
           (if Float.is_nan fit.Bench_fit.r_square then "n/a"
            else Tbl.f3 fit.Bench_fit.r_square);
           Printf.sprintf "%d/%d" fit.Bench_fit.kept fit.Bench_fit.total;
         ])
       rows);
  List.iter
    (fun (name, fit) ->
      let r2 = fit.Bench_fit.r_square in
      if Float.is_nan r2 || r2 < min_r2_warn then
        Printf.printf
          "warning: %s fits at r^2 %s (< %.2f) — treat its estimate as noise\n"
          name
          (if Float.is_nan r2 then "n/a" else Printf.sprintf "%.3f" r2)
          min_r2_warn)
    rows;
  (* Parallel speedup vs the serial baseline of the same run. Printed,
     not gated: it depends on the host's core count, which the ns/call
     table and BENCH_T1.json already capture per-name. *)
  let ns_of n =
    List.assoc_opt n
      (List.map (fun (name, fit) -> (name, fit.Bench_fit.ns_per_run)) rows)
  in
  let speedup label serial parallel =
    match (ns_of serial, ns_of parallel) with
    | Some s, Some p
      when Float.is_finite s && Float.is_finite p && s > 0.0 && p > 0.0 ->
        Printf.printf "%s speedup: %.2fx on %d domain(s)\n" label (s /. p) jobs
    | _ -> ()
  in
  speedup "mc-estimate-20k" "cyclesteal/mc-estimate-20k (serial)"
    "cyclesteal/mc-estimate-20k (parallel)";
  speedup "optimizer" "cyclesteal/optimizer (geo-inc, coordinate ascent)"
    "cyclesteal/optimizer (geo-inc, parallel)";
  (* The loopback transport bench depends on how the host schedules
     the drain thread against the producer, so its number is advisory
     by construction — recorded for the trajectory, never allowed to
     steer the regression gate or convict a commit, however well it
     happens to fit. *)
  let forced_advisory = [ "cyclesteal/sink-emit (remote, unix loopback)" ] in
  let record =
    Bench_record.make ~ocaml:Sys.ocaml_version ~git_sha:(git_sha ())
      ~hostname:(Unix.gethostname ()) ~quota_seconds ~unix_time:(Unix.time () [@lint.allow "R8"])
      (List.map
         (fun (name, fit) ->
           ( name,
             {
               Bench_record.ns_per_call = fit.Bench_fit.ns_per_run;
               r_square = fit.Bench_fit.r_square;
               advisory =
                 (not (Bench_fit.reliable fit))
                 || List.mem name forced_advisory;
             } ))
         rows)
  in
  Bench_record.save "BENCH_T1.json" record;
  Bench_record.append_history "BENCH_HISTORY.jsonl" record;
  print_endline "wrote BENCH_T1.json; appended BENCH_HISTORY.jsonl"
