(* Experiment harness: regenerates every table of EXPERIMENTS.md.

   Usage:
     dune exec bench/main.exe            # all experiment tables + timings
     dune exec bench/main.exe -- e4 e9   # selected experiments
     dune exec bench/main.exe -- tables  # all tables, no timings
     dune exec bench/main.exe -- timing  # only the Bechamel benchmarks

   [timing] also writes BENCH_T1.json (machine-readable ns/call + r^2
   per benchmark plus git SHA / hostname / OCaml metadata) and appends
   the same record to BENCH_HISTORY.jsonl. [--quick] shrinks the
   sampling quota and warmups so CI can exercise the pipeline without
   burning minutes; its numbers are for plumbing, not comparison.
   [--jobs N] sizes the domain pool behind the "(parallel)" variants. *)

let usage () =
  print_endline "cycle-stealing reproduction harness";
  print_endline "experiments:";
  List.iter
    (fun (id, desc, _) -> Printf.printf "  %-7s %s\n" id desc)
    Tables.all;
  Printf.printf "  %-7s %s\n" "timing" "Bechamel micro-benchmarks";
  Printf.printf "  %-7s %s\n" "tables" "all experiment tables";
  Printf.printf "  %-7s %s\n" "all" "tables + timing (default)"

let quick = ref false
let jobs = ref 4

let run_one id =
  match List.find_opt (fun (eid, _, _) -> eid = id) Tables.all with
  | Some (_, _, f) -> f ()
  | None -> (
      match id with
      | "timing" -> Timing.run ~quick:!quick ~jobs:!jobs ()
      | "tables" -> List.iter (fun (_, _, f) -> f ()) Tables.all
      | "all" ->
          List.iter (fun (_, _, f) -> f ()) Tables.all;
          Timing.run ~quick:!quick ~jobs:!jobs ()
      | "help" | "-h" | "--help" -> usage ()
      | other ->
          Printf.eprintf "unknown experiment %S\n" other;
          usage ();
          exit 2)

let () =
  print_endline
    "Reproduction harness: Rosenberg, \"Guidelines for Data-Parallel \
     Cycle-Stealing in Networks of Workstations, I\" (TR 98-15 / IPPS 1998)";
  (* --csv DIR mirrors every printed table into DIR/<experiment>.csv;
     --quick shrinks the timing suite's quota/warmups for CI; --jobs N
     sizes the domain pool behind the "(parallel)" timing variants
     (default 4; results are bit-identical for any N). *)
  let rec split_flags acc = function
    | "--csv" :: dir :: rest ->
        Tbl.set_csv_dir (Some dir);
        split_flags acc rest
    | "--quick" :: rest ->
        quick := true;
        split_flags acc rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := n;
            split_flags acc rest
        | Some _ | None ->
            Printf.eprintf "--jobs expects a positive integer, got %S\n" n;
            exit 2)
    | id :: rest -> split_flags (id :: acc) rest
    | [] -> List.rev acc
  in
  match split_flags [] (List.tl (Array.to_list Sys.argv)) with
  | [] -> run_one "all"
  | ids -> List.iter run_one ids
