(* Experiment harness: regenerates every table of EXPERIMENTS.md.

   Usage:
     dune exec bench/main.exe            # all experiment tables + timings
     dune exec bench/main.exe -- e4 e9   # selected experiments
     dune exec bench/main.exe -- tables  # all tables, no timings
     dune exec bench/main.exe -- timing  # only the Bechamel benchmarks

   [timing] also writes BENCH_T1.json (machine-readable ns/call + r^2
   per benchmark) to the working directory. *)

let usage () =
  print_endline "cycle-stealing reproduction harness";
  print_endline "experiments:";
  List.iter
    (fun (id, desc, _) -> Printf.printf "  %-7s %s\n" id desc)
    Tables.all;
  Printf.printf "  %-7s %s\n" "timing" "Bechamel micro-benchmarks";
  Printf.printf "  %-7s %s\n" "tables" "all experiment tables";
  Printf.printf "  %-7s %s\n" "all" "tables + timing (default)"

let run_one id =
  match List.find_opt (fun (eid, _, _) -> eid = id) Tables.all with
  | Some (_, _, f) -> f ()
  | None -> (
      match id with
      | "timing" -> Timing.run ()
      | "tables" -> List.iter (fun (_, _, f) -> f ()) Tables.all
      | "all" ->
          List.iter (fun (_, _, f) -> f ()) Tables.all;
          Timing.run ()
      | "help" | "-h" | "--help" -> usage ()
      | other ->
          Printf.eprintf "unknown experiment %S\n" other;
          usage ();
          exit 2)

let () =
  print_endline
    "Reproduction harness: Rosenberg, \"Guidelines for Data-Parallel \
     Cycle-Stealing in Networks of Workstations, I\" (TR 98-15 / IPPS 1998)";
  (* --csv DIR mirrors every printed table into DIR/<experiment>.csv. *)
  let rec split_flags acc = function
    | "--csv" :: dir :: rest ->
        Tbl.set_csv_dir (Some dir);
        split_flags acc rest
    | id :: rest -> split_flags (id :: acc) rest
    | [] -> List.rev acc
  in
  match split_flags [] (List.tl (Array.to_list Sys.argv)) with
  | [] -> run_one "all"
  | ids -> List.iter run_one ids
