(* The experiment tables E1-E13 of EXPERIMENTS.md: each function
   regenerates one table of the reproduction. See DESIGN.md §4 for the
   paper-locus -> experiment mapping. *)

(* ------------------------------------------------------------------ *)
(* E1 — §4.1 d=1: uniform-risk t0 bounds (4.4) vs optimal (4.5).       *)

let e1 () =
  let rows =
    List.concat_map
      (fun c ->
        List.map
          (fun l ->
            let lf = Families.uniform ~lifespan:l in
            let lower = Closed_forms.uniform_t0_lower ~c ~lifespan:l in
            let upper = Closed_forms.uniform_t0_upper ~c ~lifespan:l in
            let sqrt2cl = Closed_forms.uniform_t0_optimal ~c ~lifespan:l in
            let exact = Exact.uniform ~c ~lifespan:l in
            let g = Guideline.plan lf ~c in
            [
              Tbl.f2 c;
              Tbl.f2 l;
              Tbl.f3 lower;
              Tbl.f3 g.Guideline.t0;
              Tbl.f3 exact.Exact.t0;
              Tbl.f3 sqrt2cl;
              Tbl.f3 upper;
              Tbl.yes_no
                (lower <= exact.Exact.t0 +. 1e-9
                && exact.Exact.t0 <= upper +. 1e-9);
            ])
          [ 50.0; 100.0; 200.0; 400.0 ])
      [ 0.5; 1.0; 2.0 ]
  in
  Tbl.render
    ~title:
      "E1  uniform risk (Sec 4.1, d=1): t0 bounds sqrt(cL) <= t0 <= \
       2sqrt(cL)+1 vs optimal ~ sqrt(2cL)"
    ~header:
      [ "c"; "L"; "lower(4.4)"; "guide t0"; "opt t0"; "sqrt(2cL)"; "upper(4.4)"; "bracketed" ]
    rows

(* ------------------------------------------------------------------ *)
(* E2 — §4.1 general d: polynomial-family t0 bounds vs optimizer.      *)

let e2 () =
  let c = 1.0 and l = 100.0 in
  let rows =
    List.map
      (fun d ->
        let lf = Families.polynomial ~d ~lifespan:l in
        let lower = Closed_forms.poly_t0_lower ~d ~c ~lifespan:l in
        let upper = Closed_forms.poly_t0_upper ~d ~c ~lifespan:l in
        let g = Guideline.plan lf ~c in
        let o = Optimizer.optimal_schedule lf ~c in
        let t0_opt = Schedule.period o.Optimizer.schedule 0 in
        [
          string_of_int d;
          Tbl.f3 lower;
          Tbl.f3 g.Guideline.t0;
          Tbl.f3 t0_opt;
          Tbl.f3 upper;
          Tbl.yes_no (lower <= t0_opt +. 0.05 && t0_opt <= upper +. 0.05);
          Tbl.f4 (g.Guideline.expected_work /. o.Optimizer.expected_work);
        ])
      [ 1; 2; 3; 4 ]
  in
  Tbl.render
    ~title:
      "E2  polynomial family p_{d,L} (Sec 4.1): (c/d)^{1/(d+1)} L^{d/(d+1)} \
       bracket vs brute-force optimum (c=1, L=100)"
    ~header:
      [ "d"; "lower"; "guide t0"; "opt t0"; "upper"; "bracketed"; "E_guide/E_opt" ]
    rows

(* ------------------------------------------------------------------ *)
(* E3 — expected-work efficiency of the guideline, uniform scenario.   *)

let e3 () =
  let rows =
    List.concat_map
      (fun c ->
        List.map
          (fun l ->
            let lf = Families.uniform ~lifespan:l in
            let g = Guideline.plan lf ~c in
            let exact = Exact.uniform ~c ~lifespan:l in
            [
              Tbl.f2 c;
              Tbl.f2 l;
              Tbl.f4 g.Guideline.expected_work;
              Tbl.f4 exact.Exact.expected_work;
              Tbl.f4 (g.Guideline.expected_work /. exact.Exact.expected_work);
              string_of_int (Schedule.num_periods g.Guideline.schedule);
              string_of_int (Schedule.num_periods exact.Exact.schedule);
            ])
          [ 25.0; 100.0; 400.0 ])
      [ 0.25; 1.0; 4.0 ]
  in
  Tbl.render
    ~title:
      "E3  guideline vs provably-optimal schedule, uniform risk: expected \
       work and period counts"
    ~header:[ "c"; "L"; "E guide"; "E opt"; "ratio"; "m guide"; "m opt" ] rows

(* ------------------------------------------------------------------ *)
(* E4 — §4.2 geometric-decreasing: bounds, t*, efficiency.             *)

let e4 () =
  let rows =
    List.concat_map
      (fun c ->
        List.map
          (fun lna ->
            let a = exp lna in
            let lf = Families.geometric_decreasing ~a in
            let lower = Closed_forms.geo_dec_t0_lower ~a ~c in
            let upper = Closed_forms.geo_dec_t0_upper ~a ~c in
            let t_star = Closed_forms.geo_dec_t_optimal ~a ~c in
            let g = Guideline.plan lf ~c in
            let exact = Exact.geometric_decreasing ~c ~a in
            [
              Tbl.f2 c;
              Tbl.f3 lna;
              Tbl.f3 lower;
              Tbl.f3 g.Guideline.t0;
              Tbl.f3 t_star;
              Tbl.f3 upper;
              Tbl.f4 (g.Guideline.expected_work /. exact.Exact.expected_work);
              Tbl.pct ((upper -. t_star) /. t_star);
            ])
          [ 0.02; 0.05; 0.1; 0.5; 2.0 ])
      [ 0.5; 1.0 ]
  in
  Tbl.render
    ~title:
      "E4  geometric-decreasing a^{-t} (Sec 4.2): bounds vs Lambert-W \
       optimal t*; paper notes the upper bound c + 1/ln a is close \
       (tightens as c*ln a grows)"
    ~header:
      [ "c"; "ln a"; "lower"; "guide t0"; "t*"; "upper"; "E_g/E_opt"; "upper gap" ]
    rows

(* ------------------------------------------------------------------ *)
(* E5 — §4.3 geometric-increasing: recurrences and t0 scaling.         *)

let e5 () =
  let c = 1.0 in
  let rows =
    List.map
      (fun l ->
        let lf = Families.geometric_increasing ~lifespan:l in
        let g = Guideline.plan lf ~c in
        let bcr = Exact.geometric_increasing ~c ~lifespan:l in
        let o = Optimizer.optimal_schedule lf ~c in
        [
          Tbl.f2 l;
          Tbl.f3 g.Guideline.t0;
          Tbl.f3 bcr.Exact.t0;
          Tbl.f3 (Closed_forms.geo_inc_t0_estimate ~lifespan:l);
          Tbl.f4 g.Guideline.expected_work;
          Tbl.f4 bcr.Exact.expected_work;
          Tbl.f4 o.Optimizer.expected_work;
          Tbl.f4 (g.Guideline.expected_work /. o.Optimizer.expected_work);
        ])
      [ 10.0; 20.0; 30.0; 50.0; 80.0 ]
  in
  Tbl.render
    ~title:
      "E5  geometric-increasing risk (Sec 4.3): guideline recurrence (4.7) \
       vs [3]'s +-1-perturbation recurrence vs brute force. In continuous \
       time the guideline may slightly beat [3]'s discrete-step structure."
    ~header:
      [
        "L"; "guide t0"; "[3] t0"; "L/log2(L)^2"; "E guide"; "E [3]";
        "E opt"; "E_g/E_opt";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E6 — Cor 5.2/5.3: period-count bound for concave life functions.    *)

let e6 () =
  let c = 1.0 in
  let rows =
    List.concat_map
      (fun l ->
        List.map
          (fun d ->
            let lf = Families.polynomial ~d ~lifespan:l in
            let bound = Bounds.max_periods_concave ~c ~lifespan:l in
            let o = Optimizer.optimal_schedule lf ~c in
            let g = Guideline.plan lf ~c in
            [
              Tbl.f2 l;
              string_of_int d;
              string_of_int (Schedule.num_periods o.Optimizer.schedule);
              string_of_int (Schedule.num_periods g.Guideline.schedule);
              string_of_int bound;
              Tbl.yes_no (Schedule.num_periods o.Optimizer.schedule < bound);
            ])
          [ 1; 2; 3 ])
      [ 25.0; 100.0; 250.0 ]
  in
  Tbl.render
    ~title:
      "E6  Cor 5.3: optimal schedules for concave p have fewer than \
       ceil(sqrt(2L/c + 1/4) + 1/2) periods (c=1)"
    ~header:[ "L"; "d"; "m optimizer"; "m guideline"; "bound"; "m < bound" ]
    rows

(* ------------------------------------------------------------------ *)
(* E7 — Thm 5.1/5.2 and friends: structure checks on guideline plans.  *)

let e7 () =
  let c = 1.0 in
  let rows =
    List.concat_map
      (fun (name, lf) ->
        let g = Guideline.plan lf ~c in
        List.map
          (fun chk ->
            [
              name;
              chk.Theory.name;
              (if chk.Theory.holds then "PASS" else "FAIL");
              chk.Theory.detail;
            ])
          (Theory.full_report lf ~c g.Guideline.schedule))
      (Families.all_paper_scenarios ~c)
  in
  Tbl.render
    ~title:
      "E7  structural theorems (Thm 5.1, Thm 5.2, Cor 5.1-5.5, eq 3.6) \
       verified on guideline schedules"
    ~header:[ "scenario"; "check"; "result"; "detail" ]
    rows

(* ------------------------------------------------------------------ *)
(* E8 — Monte-Carlo validation of eq 2.1.                              *)

let e8 () =
  let c = 1.0 in
  let trials = 40_000 in
  let rows =
    List.map
      (fun (name, lf) ->
        let g = Guideline.plan lf ~c in
        let est =
          Monte_carlo.estimate ~trials lf ~c ~schedule:g.Guideline.schedule
            ~seed:20260705L
        in
        let lo, hi = est.Monte_carlo.ci95 in
        [
          name;
          Tbl.f4 est.Monte_carlo.analytic;
          Tbl.f4 est.Monte_carlo.mean_work;
          Printf.sprintf "[%.4f, %.4f]" lo hi;
          Tbl.yes_no
            (est.Monte_carlo.analytic >= lo -. 0.3 *. (hi -. lo)
            && est.Monte_carlo.analytic <= hi +. 0.3 *. (hi -. lo));
          Tbl.pct est.Monte_carlo.interrupted_fraction;
          Tbl.f4 est.Monte_carlo.mean_overhead;
          Tbl.f4 est.Monte_carlo.mean_lost;
        ])
      (Families.all_paper_scenarios ~c)
  in
  Tbl.render
    ~title:
      (Printf.sprintf
         "E8  Monte-Carlo validation of E(S;p) (eq 2.1), %d episodes per \
          scenario, guideline schedules"
         trials)
    ~header:
      [
        "scenario"; "analytic E"; "MC mean"; "MC 95% CI"; "covered";
        "interrupted"; "overhead"; "lost work";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E9 — policy shoot-out per scenario.                                 *)

let e9 () =
  let c = 1.0 in
  List.iter
    (fun (name, lf) ->
      let o = Optimizer.optimal_schedule lf ~c in
      let opt_e = o.Optimizer.expected_work in
      let g = Guideline.plan lf ~c in
      let gr = Greedy.plan lf ~c in
      let policies =
        [
          ("guideline (this paper)", g.Guideline.expected_work);
          ("greedy (Sec 6)", gr.Greedy.expected_work);
        ]
        @ List.map
            (fun b -> (b.Baselines.name, b.Baselines.expected_work))
            (Baselines.all lf ~c)
      in
      let sorted =
        List.sort (fun (_, a) (_, b) -> Float.compare b a) policies
      in
      let rows =
        List.map
          (fun (pname, e) ->
            [ pname; Tbl.f4 e; Tbl.pct (e /. Float.max 1e-300 opt_e) ])
          sorted
      in
      Tbl.render
        ~title:
          (Printf.sprintf
             "E9  policy comparison, scenario %s (c=1, brute-force optimum E \
              = %.4f)"
             name opt_e)
        ~header:[ "policy"; "expected work"; "% of optimal" ]
        rows)
    (Families.all_paper_scenarios ~c)

(* ------------------------------------------------------------------ *)
(* E10 — trace-driven pipeline: estimation error and scheduling loss.  *)

let e10 () =
  let c = 1.0 in
  let cases =
    [
      ("uniform(max=60)", Owner_model.Uniform_absence { max = 60.0 });
      ("exponential(mean=40)", Owner_model.Exponential_absence { mean = 40.0 });
      ( "weibull(k=2, scale=50)",
        Owner_model.Weibull_absence { shape = 2.0; scale = 50.0 } );
    ]
  in
  let rows =
    List.concat_map
      (fun (name, model) ->
        let truth = Option.get (Owner_model.true_life_function model) in
        let e_truth = (Guideline.plan truth ~c).Guideline.expected_work in
        List.map
          (fun n ->
            let rng = Prng.create ~seed:(Int64.of_int (n * 7919)) in
            let ds = Array.init n (fun _ -> Owner_model.sample model rng) in
            let est = Survival.of_durations ds in
            let fit = Fit.best_fit ds in
            let eval lf' =
              let plan = Guideline.plan lf' ~c in
              Schedule.expected_work ~c truth plan.Guideline.schedule
            in
            let e_np = eval est.Survival.life in
            let e_fit = eval fit.Fit.life in
            [
              name;
              string_of_int n;
              Tbl.f4 (Survival.survival_rmse est ~truth);
              fit.Fit.family;
              Tbl.pct (e_np /. e_truth);
              Tbl.pct (e_fit /. e_truth);
            ])
          [ 50; 200; 1000; 5000 ])
      cases
  in
  Tbl.render
    ~title:
      "E10  trace-driven scheduling: owner-model samples -> estimated p -> \
       guideline schedule, evaluated under the true p (efficiency = E vs \
       scheduling with the truth)"
    ~header:
      [
        "owner model"; "n"; "survival RMSE"; "best-fit family";
        "nonparametric eff"; "parametric eff";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E11 — Cor 3.2 admissibility: which p admit optimal schedules.       *)

let e11 () =
  let c = 1.0 in
  let cases =
    [
      ("uniform(L=100)", Families.uniform ~lifespan:100.0);
      ("polynomial(d=3, L=100)", Families.polynomial ~d:3 ~lifespan:100.0);
      ("geometric-dec(ln a=0.05)", Families.geometric_decreasing ~a:(exp 0.05));
      ("geometric-inc(L=30)", Families.geometric_increasing ~lifespan:30.0);
      ("weibull(k=0.8, scale=10)", Families.weibull ~shape:0.8 ~scale:10.0);
      ("weibull(k=2, scale=10)", Families.weibull ~shape:2.0 ~scale:10.0);
      ("power-law(d=1)  [paper]", Families.power_law ~d:1.0);
      ("power-law(d=1.5) [paper]", Families.power_law ~d:1.5);
      ("power-law(d=2)  [paper]", Families.power_law ~d:2.0);
      ("power-law(d=3)  [paper]", Families.power_law ~d:3.0);
    ]
  in
  let rows =
    List.map
      (fun (name, lf) ->
        match Admissibility.test lf ~c with
        | Admissibility.Admissible { witness; margin } ->
            [ name; "admissible"; Printf.sprintf "margin %.3g at t=%.3g" margin witness ]
        | Admissibility.Inadmissible (Admissibility.Unbounded_work { tail_ratio }) ->
            [ name; "INADMISSIBLE"; Printf.sprintf "unbounded E (tail ratio %.3f)" tail_ratio ]
        | Admissibility.Inadmissible (Admissibility.Heavy_tail { tail_ratio }) ->
            [ name; "INADMISSIBLE"; Printf.sprintf "polynomial tail (panel ratio %.3f = 2^{1-d})" tail_ratio ]
        | Admissibility.Inadmissible (Admissibility.Negative_margin { max_margin }) ->
            [ name; "INADMISSIBLE"; Printf.sprintf "negative margin %.3g" max_margin ])
      cases
  in
  Tbl.render
    ~title:
      "E11  Cor 3.2 admissibility: the paper's power-law examples are \
       flagged (d=1 by divergent expected work, d>1 by polynomial tail); \
       all scenario families admit optimal schedules"
    ~header:[ "life function"; "verdict"; "evidence" ]
    rows

(* ------------------------------------------------------------------ *)
(* E12 — discretization loss (Sec 6 open question).                    *)

let e12 () =
  let c = 1.0 in
  let rows =
    List.concat_map
      (fun (name, lf) ->
        let g = Guideline.plan lf ~c in
        List.filter_map
          (fun grain ->
            match Discretize.quantize lf ~c ~task:grain g.Guideline.schedule with
            | exception Invalid_argument _ -> None
            | q ->
                Some
                  [
                    name;
                    Tbl.f2 grain;
                    string_of_int q.Discretize.total_tasks;
                    Tbl.f4 q.Discretize.expected_work;
                    Tbl.f4 q.Discretize.continuous_expected_work;
                    Tbl.pct (Discretize.efficiency q);
                  ])
          [ 0.1; 0.5; 1.0; 2.0; 5.0 ])
      (Families.all_paper_scenarios ~c)
  in
  Tbl.render
    ~title:
      "E12  discrete analogue (Sec 6): task-quantized guideline schedules \
       retain most of the continuous expected work until the grain nears c"
    ~header:
      [ "scenario"; "task grain"; "tasks"; "E quantized"; "E continuous"; "efficiency" ]
    rows

(* ------------------------------------------------------------------ *)
(* E13 — farm-level ablation: policies on a heterogeneous NOW.         *)

let e13 () =
  let fleet =
    [
      { Farm.ws_life = Families.uniform ~lifespan:100.0; ws_presence_mean = 50.0 };
      {
        Farm.ws_life = Families.geometric_decreasing ~a:(exp 0.02);
        ws_presence_mean = 60.0;
      };
      {
        Farm.ws_life = Families.geometric_increasing ~lifespan:40.0;
        ws_presence_mean = 40.0;
      };
    ]
  in
  let seeds = [ 1L; 2L; 3L; 4L; 5L; 6L; 7L; 8L ] in
  let policies =
    [
      Farm.guideline_policy;
      Farm.adaptive_policy;
      Farm.greedy_policy;
      Farm.fixed_chunk_policy ~chunk:5.0;
      Farm.fixed_chunk_policy ~chunk:20.0;
      Farm.fixed_chunk_policy ~chunk:80.0;
    ]
  in
  let rows =
    List.map
      (fun policy ->
        let makespans, losts =
          List.split
            (List.map
               (fun seed ->
                 let r =
                   Farm.run
                     {
                       Farm.c = 1.0;
                       total_work = 1000.0;
                       workstations = fleet;
                       policy;
                       max_time = 1e6;
                     }
                     ~seed
                 in
                 (r.Farm.makespan, r.Farm.total_lost))
               seeds)
        in
        let mean xs = Kahan.sum_list xs /. float_of_int (List.length xs) in
        [
          policy.Farm.policy_name;
          Tbl.f2 (mean makespans);
          Tbl.f2 (mean losts);
        ])
      policies
  in
  let rows =
    List.sort (fun a b -> compare (float_of_string (List.nth a 1)) (float_of_string (List.nth b 1))) rows
  in
  Tbl.render
    ~title:
      "E13  data-parallel task farm on a 3-workstation NOW (1000 work \
       units, mean over 8 seeds): makespan by scheduling policy"
    ~header:[ "policy"; "mean makespan"; "mean work lost" ]
    rows

(* ------------------------------------------------------------------ *)
(* E14 — link contention: when architecture-independence breaks.       *)

let e14 () =
  let ws =
    { Farm.ws_life = Families.uniform ~lifespan:100.0; ws_presence_mean = 40.0 }
  in
  let seeds = [ 1L; 2L; 3L; 4L; 5L; 6L ] in
  let mean f = List.fold_left (fun a s -> a +. f s) 0.0 seeds /. 6.0 in
  let rows =
    List.concat_map
      (fun c ->
        List.map
          (fun n ->
            let cfg =
              {
                Farm.c;
                total_work = 500.0;
                workstations = List.init n (fun _ -> ws);
                policy = Farm.guideline_policy;
                max_time = 1e6;
              }
            in
            let unlimited =
              mean (fun seed -> (Farm.run ~link:Farm.Unlimited cfg ~seed).Farm.makespan)
            in
            let serialized =
              mean (fun seed -> (Farm.run ~link:Farm.Serialized cfg ~seed).Farm.makespan)
            in
            [
              Tbl.f2 c;
              string_of_int n;
              Tbl.f2 unlimited;
              Tbl.f2 serialized;
              Tbl.f3 (serialized /. unlimited);
            ])
          [ 1; 2; 4; 8; 16 ])
      [ 0.5; 4.0 ]
  in
  Tbl.render
    ~title:
      "E14  master-link contention: the paper's architecture-independent \
       overhead (Unlimited) vs a serialized master link, guideline policy, \
       500 work units, mean makespan over 6 seeds"
    ~header:[ "c"; "workstations"; "unlimited"; "serialized"; "slowdown" ]
    rows

(* ------------------------------------------------------------------ *)
(* E15 — worst-case (competitive) scheduling: the sequel direction.    *)

let e15 () =
  let c = 1.0 in
  let rows =
    List.map
      (fun horizon ->
        let w = Worst_case.plan ~c ~horizon () in
        let lf = Families.uniform ~lifespan:horizon in
        let g = Guideline.plan lf ~c in
        let guideline_ratio =
          Worst_case.competitive_ratio g.Guideline.schedule ~c
            ~grace:w.Worst_case.grace ~horizon
        in
        let adv_e = Schedule.expected_work ~c lf w.Worst_case.schedule in
        [
          Tbl.f2 horizon;
          Tbl.f3 w.Worst_case.ratio;
          Tbl.f3 guideline_ratio;
          string_of_int (Schedule.num_periods w.Worst_case.schedule);
          Tbl.f3 adv_e;
          Tbl.f3 g.Guideline.expected_work;
          Tbl.pct (adv_e /. g.Guideline.expected_work);
        ])
      [ 10.0; 30.0; 100.0; 300.0 ]
  in
  Tbl.render
    ~title:
      "E15  worst-case guarantees (the paper's announced sequel, cf. its \
       ref [2]): guaranteed fraction of omniscient work after a 5c grace, \
       vs the price paid in expected work under uniform risk (c=1)"
    ~header:
      [
        "horizon"; "adv ratio"; "guideline ratio"; "adv periods";
        "adv E(unif)"; "guide E(unif)"; "E price";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E16 — robust scheduling from Greenwood confidence bands.            *)

let e16 () =
  let c = 1.0 in
  let model = Owner_model.Uniform_absence { max = 60.0 } in
  let truth = Option.get (Owner_model.true_life_function model) in
  let e_oracle = (Guideline.plan truth ~c).Guideline.expected_work in
  let rows =
    List.map
      (fun n ->
        (* Median-of-seeds so one unlucky draw does not dominate. *)
        let per_seed seed =
          let rng = Prng.create ~seed in
          let obs =
            Array.init n (fun _ ->
                {
                  Owner_model.duration = Owner_model.sample model rng;
                  observed = true;
                })
          in
          let b = Survival.confidence_bands obs in
          let eval lf' =
            Schedule.expected_work ~c truth
              (Guideline.plan lf' ~c).Guideline.schedule
          in
          (eval b.Survival.point, eval b.Survival.lower)
        in
        let results = List.map (fun i -> per_seed (Int64.of_int i)) [ 1; 2; 3; 4; 5; 6; 7 ] in
        let med f =
          Stats.quantile (Array.of_list (List.map f results)) ~q:0.5
        in
        [
          string_of_int n;
          Tbl.pct (med fst /. e_oracle);
          Tbl.pct (med snd /. e_oracle);
        ])
      [ 15; 30; 60; 120; 500 ]
  in
  Tbl.render
    ~title:
      "E16  robust trace scheduling: guideline planned on the Kaplan-Meier \
       point estimate vs the Greenwood lower band, evaluated under the \
       truth (uniform max=60, c=1; median efficiency over 7 trace draws)"
    ~header:[ "n observations"; "point-estimate eff"; "lower-band eff" ]
    rows

(* ------------------------------------------------------------------ *)
(* E17 — uniqueness probe (Sec 6 open question).                       *)

let e17 () =
  let c = 1.0 in
  let rows =
    List.map
      (fun (name, lf) ->
        let p = Uniqueness.probe lf ~c in
        let lo, hi = Bounds.bracket lf ~c in
        let cluster_str =
          String.concat "; "
            (List.map
               (fun cl ->
                 Printf.sprintf "[%.3f, %.3f]" cl.Uniqueness.t0_low
                   cl.Uniqueness.t0_high)
               p.Uniqueness.clusters)
        in
        [
          name;
          string_of_int (List.length p.Uniqueness.clusters);
          cluster_str;
          Printf.sprintf "[%.3f, %.3f]" lo hi;
          Tbl.f4 p.Uniqueness.max_value;
        ])
      (Families.all_paper_scenarios ~c)
  in
  Tbl.render
    ~title:
      "E17  Sec 6 open question, 'are optimal schedules unique?': clusters \
       of near-optimal (within 1e-4 rel.) initial periods inside the Thm \
       3.2/3.3 bracket — a single narrow cluster everywhere"
    ~header:
      [ "scenario"; "clusters"; "near-optimal t0 set"; "t0 bracket"; "max E" ]
    rows

(* ------------------------------------------------------------------ *)
(* E18 — sensitivity to misspecified inputs.                           *)

let e18 () =
  let c = 1.0 in
  let lf = Families.uniform ~lifespan:100.0 in
  let c_rows =
    List.map
      (fun p ->
        [
          "overhead c";
          Printf.sprintf "x%.2f" p.Sensitivity.perturbation;
          Tbl.g4 p.Sensitivity.planned_with;
          Tbl.pct p.Sensitivity.efficiency;
        ])
      (Sensitivity.c_misspecification lf ~c)
  in
  let l_rows =
    List.map
      (fun p ->
        [
          "lifespan L";
          Printf.sprintf "x%.2f" p.Sensitivity.perturbation;
          Tbl.g4 p.Sensitivity.planned_with;
          Tbl.pct p.Sensitivity.efficiency;
        ])
      (Sensitivity.lifespan_misspecification ~lifespan:100.0 c)
  in
  Tbl.render
    ~title:
      "E18  input sensitivity (uniform L=100, c=1): guideline planned with \
       a misspecified input, evaluated under the truth. Lesson: c errors \
       are cheap (flat optimum); UNDERestimating the lifespan is the \
       expensive mistake (the planner stops early)"
    ~header:[ "misspecified input"; "error"; "planner saw"; "efficiency" ]
    (c_rows @ l_rows)

(* ------------------------------------------------------------------ *)
(* E19 — the price of the draconian contract.                          *)

let e19 () =
  let c = 1.0 in
  let rows =
    List.map
      (fun (name, lf) ->
        let g = Guideline.plan lf ~c in
        let draconian = g.Guideline.expected_work in
        let suspend_same =
          Contracts.expected_work_suspended ~c lf g.Guideline.schedule
        in
        let suspend_best = Contracts.single_period_value ~c lf in
        [
          name;
          Tbl.f4 draconian;
          Tbl.f4 suspend_same;
          Tbl.f4 suspend_best;
          Tbl.pct (draconian /. suspend_best);
        ])
      (Families.all_paper_scenarios ~c)
  in
  Tbl.render
    ~title:
      "E19  the price of draconia: expected work under kill-on-reclaim \
       (guideline, the paper's setting) vs a suspend-on-reclaim contract \
       (same schedule, and its optimal single period). The last column is \
       how much of the gentle contract's value the draconian world keeps."
    ~header:
      [
        "scenario"; "draconian E (guideline)"; "suspend E (same sched)";
        "suspend E (optimal)"; "draconian keeps";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E20 — renewal-theory throughput vs the farm.                        *)

let e20 () =
  let c = 1.0 in
  let presence_mean = 40.0 in
  let rows =
    List.map
      (fun (name, lf) ->
        let analytic = Throughput.of_guideline lf ~c ~presence_mean in
        let cfg =
          {
            Farm.c;
            total_work = 10_000.0;
            workstations =
              [ { Farm.ws_life = lf; ws_presence_mean = presence_mean } ];
            policy = Farm.guideline_policy;
            max_time = 1e7;
          }
        in
        let measured =
          let rates =
            List.map
              (fun seed -> Throughput.measured_rate (Farm.run cfg ~seed))
              [ 1L; 2L; 3L; 4L ]
          in
          Kahan.sum_list rates /. 4.0
        in
        [
          name;
          Tbl.f4 analytic.Throughput.work_per_cycle;
          Tbl.f2 analytic.Throughput.cycle_length;
          Tbl.f4 analytic.Throughput.rate;
          Tbl.f4 measured;
          Tbl.pct (measured /. analytic.Throughput.rate);
        ])
      (Families.all_paper_scenarios ~c)
  in
  Tbl.render
    ~title:
      "E20  renewal-theory throughput (E(S;p) / cycle) vs measured farm \
       rate, one workstation, presence mean 40, guideline policy, mean of \
       4 long runs"
    ~header:
      [
        "scenario"; "E per episode"; "cycle"; "analytic rate";
        "measured rate"; "agreement";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E21 — risk profile: the distribution behind the expectation.        *)

let e21 () =
  let c = 1.0 in
  let lf = Families.uniform ~lifespan:100.0 in
  let policies =
    ("guideline", (Guideline.plan lf ~c).Guideline.schedule)
    :: ("greedy", (Greedy.plan lf ~c).Greedy.schedule)
    :: List.map
         (fun b -> (b.Baselines.name, b.Baselines.schedule))
         [
           Baselines.best_fixed_chunk lf ~c;
           Baselines.equal_split lf ~c ~m:4;
           Baselines.single_period lf ~c;
         ]
  in
  let rows =
    List.map
      (fun (name, s) ->
        let d = Work_distribution.of_schedule lf ~c s in
        [
          name;
          Tbl.f3 d.Work_distribution.mean;
          Tbl.f3 d.Work_distribution.stddev;
          Tbl.pct (Work_distribution.prob_zero d);
          Tbl.f3 (Work_distribution.quantile d ~q:0.1);
          Tbl.f3 (Work_distribution.quantile d ~q:0.5);
          Tbl.f3 (Work_distribution.quantile d ~q:0.9);
        ])
      policies
  in
  Tbl.render
    ~title:
      "E21  banked-work distribution (closed form), uniform risk L=100, \
       c=1: what the expectation hides — the guideline also has the best \
       low quantiles, while coarse policies are all-or-nothing"
    ~header:
      [ "policy"; "mean"; "stddev"; "P(work=0)"; "q10"; "median"; "q90" ]
    rows

let all : (string * string * (unit -> unit)) list =
  [
    ("e1", "uniform t0 bounds vs optimal (Sec 4.1 d=1)", e1);
    ("e2", "polynomial-family t0 bounds (Sec 4.1)", e2);
    ("e3", "guideline efficiency, uniform risk", e3);
    ("e4", "geometric-decreasing bounds and t* (Sec 4.2)", e4);
    ("e5", "geometric-increasing recurrences (Sec 4.3)", e5);
    ("e6", "period-count bound (Cor 5.3)", e6);
    ("e7", "structural theorem checks (Sec 5)", e7);
    ("e8", "Monte-Carlo validation of eq 2.1", e8);
    ("e9", "policy shoot-out per scenario", e9);
    ("e10", "trace-driven scheduling pipeline", e10);
    ("e11", "admissibility (Cor 3.2)", e11);
    ("e12", "discretization loss (Sec 6)", e12);
    ("e13", "task-farm ablation on a NOW", e13);
    ("e14", "master-link contention ablation", e14);
    ("e15", "worst-case (competitive) scheduling", e15);
    ("e16", "robust scheduling from confidence bands", e16);
    ("e17", "uniqueness of optimal schedules (Sec 6)", e17);
    ("e18", "sensitivity to misspecified inputs", e18);
    ("e19", "the price of the draconian contract", e19);
    ("e20", "renewal throughput vs farm measurement", e20);
    ("e21", "banked-work risk profile by policy", e21);
  ]
