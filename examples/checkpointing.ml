(* Scheduling saves in a fault-prone computation — the paper's §1 Remark
   maps its cycle-stealing model onto the checkpointing problem of
   Coffman-Flatto-Krenin [7]: failures play the role of the returning
   owner, checkpoint cost plays the communication overhead, and eq. 2.1
   becomes the expected work committed before the first failure.

   Scenario: a 12-hour computation on a machine with a 4-hour mean time to
   failure; a checkpoint costs 90 seconds; a restart costs 10 minutes.

   Run with: dune exec examples/checkpointing.exe *)

let () =
  let work = 720.0 (* minutes of pure computation *) in
  let c = 1.5 (* checkpoint write *) in
  let restart_cost = 10.0 in
  let mtbf = 240.0 in
  let life = Families.exponential ~rate:(1.0 /. mtbf) in

  Format.printf "Job: %.0f min of computation, MTBF %.0f min, checkpoint \
                 cost %.1f min@.@." work mtbf c;

  (* The guideline checkpoint plan. For a memoryless failure law the
     optimal intervals are all equal — the Lambert-W closed form of §4.2. *)
  let plan = Checkpoint.plan_saves ~work life ~c in
  let interval = Schedule.period plan.Checkpoint.intervals 0 in
  Format.printf "Guideline plan: checkpoint every %.2f min (%d intervals)@."
    interval
    (Schedule.num_periods plan.Checkpoint.intervals);
  Format.printf "  closed-form optimal interval (Lambert W): %.2f min@."
    (Closed_forms.geo_dec_t_optimal ~a:(exp (1.0 /. mtbf)) ~c);
  Format.printf "  expected committed before first failure: %.1f min@.@."
    plan.Checkpoint.expected_committed;

  (* Simulate the full repair-restart process to completion. *)
  let simulate label plan_c =
    let seeds = List.init 20 (fun i -> Int64.of_int (1000 + i)) in
    let n = float_of_int (List.length seeds) in
    let mk, fails, lost =
      List.fold_left
        (fun (a, b, l) seed ->
          let g = Prng.create ~seed in
          let r =
            Checkpoint.simulate_restarts ~work ~c:plan_c ~restart_cost life g
              ~max_failures:1_000_000
          in
          ( a +. (r.Checkpoint.makespan /. n),
            b +. (float_of_int r.Checkpoint.failures /. n),
            l +. (r.Checkpoint.work_lost_total /. n) ))
        (0.0, 0.0, 0.0) seeds
    in
    Format.printf "  %-28s mean makespan %7.1f min, %5.1f failures, %6.1f \
                   min recomputed@."
      label mk fails lost
  in
  Format.printf "Completion of the whole job (mean over 20 runs):@.";
  simulate "guideline checkpointing" c;

  (* Ablation: what if checkpoints were cheaper or pricier? The planner
     adapts the interval; the simulated makespan shows the tradeoff. *)
  Format.printf
    "@.Ablation — same failures, different checkpoint costs (plan adapts):@.";
  List.iter
    (fun c' ->
      let p = Checkpoint.plan_saves ~work life ~c:c' in
      Format.printf "  c = %4.1f min -> interval %6.2f min, expected \
                     committed %6.1f;@."
        c'
        (Schedule.period p.Checkpoint.intervals 0)
        p.Checkpoint.expected_committed;
      simulate (Printf.sprintf "  simulated at c = %.1f" c') c')
    [ 0.25; 1.5; 6.0 ]
