(* Trace-driven scheduling: the paper assumes the life function may be
   "garnered possibly from trace data that exposes B's owner's computer
   usage patterns" (§1). This example runs that pipeline:

   1. synthesize a month of owner absences from a bimodal day/night model
      (no closed-form life function exists for it);
   2. estimate the survival curve (Kaplan-Meier under censoring) and smooth
      it into a schedulable life function;
   3. also fit the best parametric family;
   4. schedule with both, and compare against an oracle that samples the
      true model directly.

   Run with: dune exec examples/trace_driven.exe *)

let () =
  let c = 2.0 (* minutes of setup per bundle *) in
  let model =
    Owner_model.Day_night
      { short_mean = 15.0; long_mean = 480.0; long_fraction = 0.15 }
  in
  let rng = Prng.create ~seed:20260705L in

  (* A month of monitoring: ~40 absences/day, censored at the 16-hour
     collection window. *)
  let observations = Owner_model.collect ~censor_at:960.0 model rng ~n:1200 in
  let estimate = Survival.of_observations observations in
  Format.printf "Collected %d absences (%d censored at 16 h).@."
    (Array.length observations)
    estimate.Survival.n_censored;
  Format.printf "Nonparametric estimate: %a@." Life_function.pp
    estimate.Survival.life;
  Format.printf "  estimated mean absence: %.1f min@."
    (Life_function.mean_lifetime estimate.Survival.life);
  Format.printf "  numeric shape classification: %s@."
    (match Life_function.classify_shape estimate.Survival.life with
    | Life_function.Concave -> "concave"
    | Life_function.Convex -> "convex"
    | Life_function.Linear -> "linear"
    | Life_function.Unknown -> "mixed/unknown");

  (* Parametric alternative. *)
  let durations =
    observations
    |> Array.to_seq
    |> Seq.filter (fun o -> o.Owner_model.observed)
    |> Seq.map (fun o -> o.Owner_model.duration)
    |> Array.of_seq
  in
  let fitted = Fit.best_fit durations in
  Format.printf "Best parametric fit   : %s (SSE %.3f)@." fitted.Fit.family
    fitted.Fit.sse;

  (* Schedule with each. *)
  let plan_np = Guideline.plan estimate.Survival.life ~c in
  let plan_p = Guideline.plan fitted.Fit.life ~c in
  Format.printf "@.Nonparametric plan: %a@." Schedule.pp
    plan_np.Guideline.schedule;
  Format.printf "Parametric plan   : %a@." Schedule.pp plan_p.Guideline.schedule;

  (* Oracle evaluation: replay both schedules against fresh absences drawn
     from the true model. *)
  let eval name schedule =
    let trials = 50_000 in
    let g = Prng.create ~seed:99L in
    let acc = ref 0.0 in
    for _ = 1 to trials do
      let reclaim_at = Owner_model.sample model g in
      acc := !acc +. (Episode.run schedule ~c ~reclaim_at).Episode.work_done
    done;
    let mean = !acc /. float_of_int trials in
    Format.printf "  %-18s banks %.2f min/episode under the true model@." name
      mean;
    mean
  in
  Format.printf "@.Oracle replay (50k fresh episodes from the true model):@.";
  let e_np = eval "nonparametric" plan_np.Guideline.schedule in
  let e_p = eval "parametric" plan_p.Guideline.schedule in
  Format.printf
    "@.The day/night mixture is poorly served by any single family — the \
     nonparametric estimate %s the parametric fit here (%+.1f%%).@."
    (if e_np >= e_p then "beats" else "trails")
    (100.0 *. ((e_np /. e_p) -. 1.0))
