(* Worst-case cycle-stealing: scheduling against an adversary instead of a
   distribution — the direction of the paper's announced sequel (§1,
   footnote 1) and of its reference [2] (Awerbuch-Azar-Fiat-Leighton).

   When no trustworthy life function exists (a brand-new colleague, a
   machine with no usage history), expected-work scheduling has nothing to
   optimise. The competitive planner instead guarantees a fraction of the
   omniscient work at EVERY kill time after a short grace period.

   Run with: dune exec examples/adversarial.exe *)

let () =
  let c = 1.0 in
  let horizon = 100.0 in
  let w = Worst_case.plan ~c ~horizon () in
  Format.printf
    "Adversarial plan for horizon %.0f (grace %.0f):@.  %a@.  guarantee: at \
     every kill time t in [%.0f, %.0f], banked work >= %.1f%% of the \
     omniscient (t - c)@.@."
    horizon w.Worst_case.grace Schedule.pp w.Worst_case.schedule
    w.Worst_case.grace horizon
    (100.0 *. w.Worst_case.ratio);

  (* What the expected-work guideline would guarantee: nothing, because its
     first period alone overshoots any early kill. *)
  let lf = Families.uniform ~lifespan:horizon in
  let g = Guideline.plan lf ~c in
  Format.printf
    "The expected-work guideline for uniform risk starts with a %.1f-long \
     period, so an adversary killing at %.0f leaves it with %.1f%% of \
     omniscient work.@.@."
    g.Guideline.t0 w.Worst_case.grace
    (100.0
    *. Worst_case.competitive_ratio g.Guideline.schedule ~c
         ~grace:w.Worst_case.grace ~horizon);

  (* The price of paranoia, measured under benign distributions. *)
  Format.printf "The guarantee's price in expected work:@.";
  List.iter
    (fun (name, lf) ->
      let adv = Schedule.expected_work ~c lf w.Worst_case.schedule in
      let opt = (Guideline.plan lf ~c).Guideline.expected_work in
      Format.printf "  %-24s adversarial plan banks %6.2f vs guideline %6.2f \
                     (%.0f%%)@."
        name adv opt
        (100.0 *. adv /. Float.max 1e-9 opt))
    [
      ("uniform(L=100)", Families.uniform ~lifespan:horizon);
      ("polynomial(d=2)", Families.polynomial ~d:2 ~lifespan:horizon);
      ("geometric-inc(L=100)", Families.geometric_increasing ~lifespan:horizon);
    ];

  (* Adversary simulation: the worst kill times for each plan. *)
  Format.printf "@.Kill-time sweep (work banked at adversarial instants):@.";
  Format.printf "  %8s %14s %14s@." "kill t" "adversarial" "guideline";
  List.iter
    (fun t ->
      Format.printf "  %8.1f %14.2f %14.2f@." t
        (Worst_case.work_if_killed_at w.Worst_case.schedule ~c t)
        (Worst_case.work_if_killed_at g.Guideline.schedule ~c t))
    [ 5.0; 10.0; 13.0; 20.0; 40.0; 70.0; 100.0 ]
