(* The paper's §4.3 "coffee break" scenario end-to-end.

   The owner stepped out; the probability that they are still away halves
   at every time step — the geometric-increasing risk life function
   p(t) = (2^L - 2^t)/(2^L - 1). We compare the guideline schedule, [3]'s
   discrete-perturbation structure, and a brute-force optimum, then replay
   thousands of coffee breaks in the simulator.

   Run with: dune exec examples/coffee_break.exe *)

let () =
  let l = 30.0 (* minutes of potential absence *) in
  let c = 1.0 (* one minute of setup per bundle *) in
  let life = Families.geometric_increasing ~lifespan:l in
  Format.printf "Scenario: %a, overhead c = %g@.@." Life_function.pp life c;

  (* Guideline schedule from the eq. 3.6 recurrence — the §4.3 instance is
     t_{k+1} = log2((t_k - c) ln 2 + 1). *)
  let plan = Guideline.plan life ~c in
  Format.printf "Guideline schedule : %a@." Schedule.pp plan.Guideline.schedule;
  Format.printf "  expected work    : %.3f@." plan.Guideline.expected_work;
  Format.printf "  t0 estimate (Sec 4.3, L/log2(L)^2, asymptotic): %.2f@."
    (Closed_forms.geo_inc_t0_estimate ~lifespan:l);

  (* [3]'s structure: t_{k+1} = log2(t_k - c + 2). *)
  let bcr = Exact.geometric_increasing ~c ~lifespan:l in
  Format.printf "[3] structure      : %a@." Schedule.pp bcr.Exact.schedule;
  Format.printf "  expected work    : %.3f@." bcr.Exact.expected_work;

  (* Independent numeric optimum. *)
  let opt = Optimizer.optimal_schedule life ~c in
  Format.printf "Brute-force optimum: E = %.3f (guideline at %.2f%%)@.@."
    opt.Optimizer.expected_work
    (100.0 *. plan.Guideline.expected_work /. opt.Optimizer.expected_work);

  (* Every structural claim of §5, checked. *)
  List.iter
    (fun chk -> Format.printf "  %a@." Theory.pp_check chk)
    (Theory.full_report life ~c plan.Guideline.schedule);

  (* Replay coffee breaks. *)
  let est =
    Monte_carlo.estimate ~trials:50_000 life ~c
      ~schedule:plan.Guideline.schedule ~seed:7L
  in
  Format.printf
    "@.50k simulated coffee breaks: mean banked work %.3f vs analytic %.3f; \
     %.1f%% of breaks ended mid-period.@."
    est.Monte_carlo.mean_work est.Monte_carlo.analytic
    (100.0 *. est.Monte_carlo.interrupted_fraction);

  (* How much does progressive (conditional) scheduling change things if
     the owner is already 10 minutes into the break? (§6) *)
  match Guideline.next_period_online life ~c ~elapsed:10.0 with
  | Some t ->
      Format.printf
        "If the owner has already been away 10 min, the next bundle should \
         span %.2f min (risk of return has risen, so periods shrink).@."
        t
  | None -> Format.printf "No productive period remains after 10 min.@."
