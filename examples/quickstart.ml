(* Quickstart: schedule one cycle-stealing episode.

   Scenario: a colleague's workstation is free for up to two hours (uniform
   risk of their return), and farming a bundle out and collecting results
   costs 3 minutes of setup per period. How should the episode be carved
   into periods, and how much work can we expect to bank?

   Run with: dune exec examples/quickstart.exe *)

let () =
  let minutes = 120.0 in
  let c = 3.0 in
  let life = Families.uniform ~lifespan:minutes in

  (* 1. The paper's guideline pipeline: Thm 3.2/3.3 bracket the initial
     period, eq. 3.6 generates the rest, and the best t0 in the bracket
     wins. *)
  let plan = Guideline.plan life ~c in
  let lo, hi = plan.Guideline.bracket in
  Format.printf "Life function     : %a@." Life_function.pp life;
  Format.printf "Overhead per period: %g min@." c;
  Format.printf "t0 search bracket : [%.2f, %.2f] min (Thm 3.2/3.3)@." lo hi;
  Format.printf "Chosen schedule   : %a@." Schedule.pp plan.Guideline.schedule;
  Format.printf "Expected work     : %.2f min (of %.0f available)@."
    plan.Guideline.expected_work minutes;

  (* 2. Sanity-check against the provably-optimal schedule of Bhatt et
     al. [3] for this scenario. *)
  let exact = Exact.uniform ~c ~lifespan:minutes in
  Format.printf "Optimal ([3])     : E = %.2f min -> guideline achieves %.2f%%@."
    exact.Exact.expected_work
    (100.0 *. plan.Guideline.expected_work /. exact.Exact.expected_work);

  (* 3. Validate the expectation by simulating 20k episodes. *)
  let est =
    Monte_carlo.estimate life ~c ~schedule:plan.Guideline.schedule ~seed:42L
  in
  let ci_lo, ci_hi = est.Monte_carlo.ci95 in
  Format.printf
    "Monte-Carlo check : %.2f min mean banked work (95%% CI [%.2f, %.2f]), \
     %.0f%% of episodes interrupted@."
    est.Monte_carlo.mean_work ci_lo ci_hi
    (100.0 *. est.Monte_carlo.interrupted_fraction);

  (* 4. What a naive user would lose. *)
  let naive = Baselines.fixed_chunk life ~c ~chunk:30.0 in
  Format.printf
    "Naive 30-min chunks would bank %.2f min in expectation (%.1f%% of the \
     guideline).@."
    naive.Baselines.expected_work
    (100.0 *. naive.Baselines.expected_work /. plan.Guideline.expected_work)
