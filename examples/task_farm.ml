(* A data-parallel task farm over a network of workstations — the paper's
   motivating deployment (§1). A master owns a blocked matrix-multiply
   workload and steals cycles from three colleagues' machines, each with a
   different owner-behaviour profile. We compare scheduling policies at
   farm level, where the cost of a bad policy is wall-clock makespan.

   Run with: dune exec examples/task_farm.exe *)

let () =
  let c = 1.0 in

  (* The workload: a 24x24-block matrix product, ~1.05 min per block. *)
  let tasks = Apps.matrix_blocks ~n:24 ~block:64 ~flop_time:2e-6 in
  let total = Task.total_duration tasks in
  Format.printf "Workload: %d block-multiply tasks, %.1f min total@."
    (List.length tasks) total;

  (* The fleet: one predictable owner (uniform), one memoryless owner
     (geometric-decreasing), one coffee-breaker (geometric-increasing). *)
  let fleet =
    [
      {
        Farm.ws_life = Families.uniform ~lifespan:120.0;
        ws_presence_mean = 45.0;
      };
      {
        Farm.ws_life = Families.geometric_decreasing ~a:(exp 0.02);
        ws_presence_mean = 60.0;
      };
      {
        Farm.ws_life = Families.geometric_increasing ~lifespan:45.0;
        ws_presence_mean = 30.0;
      };
    ]
  in
  List.iteri
    (fun i ws ->
      Format.printf "  ws%d: %a, owner present %.0f min on average@." i
        Life_function.pp ws.Farm.ws_life ws.Farm.ws_presence_mean)
    fleet;

  let run ?obs policy seed =
    Farm.run ?obs
      {
        Farm.c;
        total_work = total;
        workstations = fleet;
        policy;
        max_time = 1e6;
      }
      ~seed
  in
  let policies =
    [
      Farm.guideline_policy;
      Farm.adaptive_policy;
      Farm.greedy_policy;
      Farm.fixed_chunk_policy ~chunk:10.0;
      Farm.fixed_chunk_policy ~chunk:60.0;
    ]
  in
  Format.printf "@.%-22s %12s %12s %10s@." "policy" "makespan" "work lost"
    "overhead";
  List.iter
    (fun policy ->
      (* Average over a handful of seeds for a stable ranking. *)
      let seeds = [ 1L; 2L; 3L; 4L; 5L ] in
      let n = float_of_int (List.length seeds) in
      let mk, lost, ovh =
        List.fold_left
          (fun (a, b, d) seed ->
            let r = run policy seed in
            ( a +. (r.Farm.makespan /. n),
              b +. (r.Farm.total_lost /. n),
              d +. (r.Farm.total_overhead /. n) ))
          (0.0, 0.0, 0.0) seeds
      in
      Format.printf "%-22s %12.1f %12.1f %10.1f@." policy.Farm.policy_name mk
        lost ovh)
    policies;

  (* Detail of one guideline run, with a metrics registry attached: the
     same report numbers, plus farm.* counters and the period-length /
     episode-duration histograms the registry accumulated along the way. *)
  let metrics = Obs.Metrics.create () in
  let r =
    run ~obs:(Obs.create ~metrics ()) Farm.guideline_policy 42L
  in
  Format.printf "@.One guideline run in detail (seed 42):@.";
  Format.printf "  finished: %b, makespan %.1f min@." r.Farm.finished
    r.Farm.makespan;
  List.iter
    (fun w ->
      Format.printf
        "  ws%d: banked %.1f min over %d episodes (%d periods done, %d \
         killed, %.1f min lost)@."
        w.Farm.ws_id w.Farm.work_done w.Farm.episodes w.Farm.periods_completed
        w.Farm.periods_killed w.Farm.work_lost)
    r.Farm.per_workstation;
  Format.printf "@.Its metrics registry:@.%a" Obs.Metrics.pp metrics
