(* Cross-run trend analytics (Obs_trend): trajectory extraction from a
   bench history, the with-intercept slope fit and its advisory-point
   exclusions, jump detection, and attribution back through an Obs_store
   to the first diverging trace event. *)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let contains_sub hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let with_temp_dir k =
  let path = Filename.temp_file "cs_trend" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm path) (fun () -> k path)

let entry ?(advisory = false) ns r2 =
  { Bench_record.ns_per_call = ns; r_square = r2; advisory }

let record ~sha ~t results =
  Bench_record.make ~ocaml:"5.1" ~git_sha:sha ~hostname:"h"
    ~quota_seconds:1.0 ~unix_time:t results

(* A history where metric "m" walks through [values]; each record gets
   a distinct synthetic sha ("sha0", "sha1", ...). *)
let history ?(metric = "m") values =
  List.mapi
    (fun i v ->
      record ~sha:(Printf.sprintf "sha%d" i) ~t:(float_of_int i)
        [ (metric, v) ])
    values

(* ------------------------------------------------------------------ *)
(* Trajectories                                                        *)

let test_metrics_of () =
  let records =
    [
      record ~sha:"a" ~t:0.0 [ ("beta", entry 1.0 1.0); ("alpha", entry 2.0 1.0) ];
      record ~sha:"b" ~t:1.0 [ ("beta", entry 1.0 1.0); ("gamma", entry 3.0 1.0) ];
    ]
  in
  Alcotest.(check (list string)) "sorted, deduplicated"
    [ "alpha"; "beta"; "gamma" ]
    (Obs_trend.metrics_of records)

let test_trajectory_alignment () =
  (* Record 2 does not carry the metric: it contributes no point but
     still advances seq, keeping the x-axis aligned with history rows. *)
  let records =
    [
      record ~sha:"s0" ~t:10.0 [ ("m", entry 5.0 0.99) ];
      record ~sha:"s1" ~t:11.0 [ ("m", entry 5.1 0.98) ];
      record ~sha:"s2" ~t:12.0 [ ("other", entry 1.0 1.0) ];
      record ~sha:"s3" ~t:13.0 [ ("m", entry ~advisory:true 9.9 (-2.0)) ];
    ]
  in
  let tr = Obs_trend.trajectory ~metric:"m" records in
  Alcotest.(check (list int)) "seq skips the silent record" [ 0; 1; 3 ]
    (List.map (fun p -> p.Obs_trend.seq) tr.Obs_trend.points);
  let p0 = List.hd tr.Obs_trend.points in
  Alcotest.(check string) "sha surfaced" "s0" p0.Obs_trend.git_sha;
  Alcotest.(check (float 1e-12)) "time surfaced" 10.0 p0.Obs_trend.unix_time;
  Alcotest.(check bool) "advisory flag surfaced" true
    (List.exists (fun p -> p.Obs_trend.advisory) tr.Obs_trend.points)

(* ------------------------------------------------------------------ *)
(* Slope fits                                                          *)

let test_slope_fit_guards () =
  Alcotest.(check bool) "empty" true (Obs_trend.slope_fit [] = None);
  Alcotest.(check bool) "single point" true
    (Obs_trend.slope_fit [ (0.0, 1.0) ] = None);
  (* Two points fit a slope but r² stays nan below min_samples — the
     same reporting discipline as Bench_fit. *)
  (match Obs_trend.slope_fit [ (0.0, 3.0); (1.0, 5.0) ] with
  | None -> Alcotest.fail "two points should fit"
  | Some f ->
      Alcotest.(check (float 1e-9)) "slope" 2.0 f.Bench_fit.ns_per_run;
      Alcotest.(check bool) "r2 withheld" true
        (Float.is_nan f.Bench_fit.r_square));
  (* Zero x-variance cannot support a slope. *)
  match Obs_trend.slope_fit [ (1.0, 3.0); (1.0, 5.0) ] with
  | None -> Alcotest.fail "degenerate input still returns a fit record"
  | Some f ->
      Alcotest.(check bool) "slope nan at zero x-variance" true
        (Float.is_nan f.Bench_fit.ns_per_run)

let test_slope_fit_with_intercept () =
  (* y = 100 + 2x: a through-origin fit would be badly biased by the
     arbitrary baseline; the intercept form recovers the drift. *)
  let pairs = List.init 5 (fun i -> (float_of_int i, 100.0 +. (2.0 *. float_of_int i))) in
  match Obs_trend.slope_fit pairs with
  | None -> Alcotest.fail "no fit"
  | Some f ->
      Alcotest.(check (float 1e-9)) "slope is the drift" 2.0
        f.Bench_fit.ns_per_run;
      Alcotest.(check (float 1e-9)) "perfect line" 1.0 f.Bench_fit.r_square;
      Alcotest.(check int) "kept" 5 f.Bench_fit.kept

let test_trajectory_fit_excludes_advisory () =
  let values =
    [
      entry 10.0 0.99;
      entry 12.0 0.99;
      entry ~advisory:true 500.0 Float.nan;
      entry 16.0 0.99;
      entry 18.0 0.99;
    ]
  in
  let tr = Obs_trend.trajectory ~metric:"m" (history values) in
  (match tr.Obs_trend.fit with
  | None -> Alcotest.fail "usable points should fit"
  | Some f ->
      Alcotest.(check int) "advisory excluded from kept" 4 f.Bench_fit.kept;
      Alcotest.(check int) "but counted in total" 5 f.Bench_fit.total;
      Alcotest.(check (float 1e-9)) "slope from measured points only" 2.0
        f.Bench_fit.ns_per_run);
  (* Fewer than two usable points: no fit at all. *)
  let tr' =
    Obs_trend.trajectory ~metric:"m"
      (history [ entry 10.0 0.9; entry ~advisory:true 20.0 Float.nan ])
  in
  Alcotest.(check bool) "one usable point, no fit" true
    (tr'.Obs_trend.fit = None)

(* ------------------------------------------------------------------ *)
(* Jumps                                                               *)

let test_first_jump () =
  let tr values = Obs_trend.trajectory ~metric:"m" (history values) in
  Alcotest.(check bool) "flat trajectory, no jump" true
    (Obs_trend.first_jump (tr [ entry 10.0 1.0; entry 11.0 1.0; entry 10.5 1.0 ])
    = None);
  (match
     Obs_trend.first_jump
       (tr [ entry 10.0 1.0; entry 10.5 1.0; entry 14.0 1.0; entry 30.0 1.0 ])
   with
  | None -> Alcotest.fail "missed the jump"
  | Some j ->
      Alcotest.(check int) "first trip wins" 1 j.Obs_trend.j_from.Obs_trend.seq;
      Alcotest.(check int) "to the next point" 2 j.Obs_trend.j_to.Obs_trend.seq;
      Alcotest.(check (float 1e-9)) "ratio" (14.0 /. 10.5) j.Obs_trend.j_ratio);
  (* Improvements trip the band too — a 2x speedup is as attributable
     as a 2x regression. *)
  (match Obs_trend.first_jump (tr [ entry 10.0 1.0; entry 5.0 1.0 ]) with
  | None -> Alcotest.fail "missed the downward jump"
  | Some j -> Alcotest.(check (float 1e-9)) "ratio below band" 0.5 j.Obs_trend.j_ratio);
  (* Advisory points are invisible to jump detection: the comparison is
     between the measured neighbors around them. *)
  (match
     Obs_trend.first_jump
       (tr [ entry 10.0 1.0; entry ~advisory:true 100.0 Float.nan; entry 10.5 1.0 ])
   with
  | None -> ()
  | Some _ -> Alcotest.fail "advisory point manufactured a jump");
  (match
     Obs_trend.first_jump
       (tr [ entry 10.0 1.0; entry ~advisory:true 1.0 Float.nan; entry 14.0 1.0 ])
   with
  | None -> Alcotest.fail "advisory point hid a jump"
  | Some j ->
      Alcotest.(check int) "jump spans the advisory gap" 2
        j.Obs_trend.j_to.Obs_trend.seq);
  (* Wider thresholds tolerate more. *)
  Alcotest.(check bool) "wide threshold" true
    (Obs_trend.first_jump ~threshold:2.0 (tr [ entry 10.0 1.0; entry 14.0 1.0 ])
    = None);
  match Obs_trend.first_jump ~threshold:1.0 (tr [ entry 10.0 1.0 ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted threshold <= 1"

(* ------------------------------------------------------------------ *)
(* Attribution through the store                                       *)

let store_trace st dir ~sha ~seed events =
  let m = { (Obs_meta.make ~seed ()) with Obs_meta.git_sha = Some sha } in
  let path = Filename.concat dir (sha ^ ".jsonl") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Jsonx.to_string (Obs_meta.to_json m));
      output_char oc '\n';
      List.iter
        (fun ev ->
          output_string oc (Jsonx.to_string (Obs_event.to_json ev));
          output_char oc '\n')
        events);
  ignore (ok (Obs_store.add st ~kind:Obs_store.Trace path) : Obs_store.record)

let jump_history =
  (* sha0 -> sha1 is a 1.4x regression. *)
  history [ entry 10.0 1.0; entry 14.0 1.0 ]

let events_a =
  Obs_event.
    [
      Run_started { time = 0.0; source = "test"; seed = Some 1L };
      Episode_started { time = 0.0; ws = 0; ep = 0 };
      Run_finished { time = 1.0 };
    ]

let events_b =
  Obs_event.
    [
      Run_started { time = 0.0; source = "test"; seed = Some 1L };
      Episode_started { time = 0.5; ws = 0; ep = 0 };
      Run_finished { time = 1.0 };
    ]

let test_attribute_diverging_traces () =
  with_temp_dir (fun dir ->
      let st =
        ok (Obs_store.open_store ~root:(Filename.concat dir "store") ())
      in
      store_trace st dir ~sha:"sha0" ~seed:1L events_a;
      store_trace st dir ~sha:"sha1" ~seed:2L events_b;
      let tr = Obs_trend.trajectory ~metric:"m" jump_history in
      match Obs_trend.attribute ~store:st tr with
      | None -> Alcotest.fail "jump not attributed"
      | Some a ->
          Alcotest.(check (float 1e-9)) "jump ratio" 1.4
            a.Obs_trend.a_jump.Obs_trend.j_ratio;
          Alcotest.(check bool) "both traces found" true
            (a.Obs_trend.a_left_trace <> None
            && a.Obs_trend.a_right_trace <> None);
          (match a.Obs_trend.a_divergence with
          | None -> Alcotest.fail "missed the diverging event"
          | Some d ->
              Alcotest.(check int) "first divergence pinpointed" 1
                d.Obs_query.d_index);
          Alcotest.(check string) "no note when the diff lands" ""
            a.Obs_trend.a_note)

let test_attribute_identical_traces () =
  with_temp_dir (fun dir ->
      let st =
        ok (Obs_store.open_store ~root:(Filename.concat dir "store") ())
      in
      store_trace st dir ~sha:"sha0" ~seed:1L events_a;
      store_trace st dir ~sha:"sha1" ~seed:2L events_a;
      let tr = Obs_trend.trajectory ~metric:"m" jump_history in
      match Obs_trend.attribute ~store:st tr with
      | None -> Alcotest.fail "jump not attributed"
      | Some a ->
          Alcotest.(check bool) "no divergence" true
            (a.Obs_trend.a_divergence = None);
          Alcotest.(check bool) "note says the traces agree" true
            (contains_sub a.Obs_trend.a_note "structurally identical"))

let test_attribute_missing_traces () =
  with_temp_dir (fun dir ->
      let st =
        ok (Obs_store.open_store ~root:(Filename.concat dir "store") ())
      in
      let tr = Obs_trend.trajectory ~metric:"m" jump_history in
      (match Obs_trend.attribute ~store:st tr with
      | None -> Alcotest.fail "missing traces must still attribute"
      | Some a ->
          Alcotest.(check bool) "both sides reported missing" true
            (contains_sub a.Obs_trend.a_note "either"));
      (* One side present: the note names the absent one. *)
      store_trace st dir ~sha:"sha0" ~seed:1L events_a;
      (match Obs_trend.attribute ~store:st tr with
      | None -> Alcotest.fail "half-stored jump must still attribute"
      | Some a ->
          Alcotest.(check bool) "left found" true
            (a.Obs_trend.a_left_trace <> None);
          Alcotest.(check bool) "right named missing" true
            (contains_sub a.Obs_trend.a_note "right commit sha1"));
      (* No jump at all: nothing to attribute. *)
      let flat =
        Obs_trend.trajectory ~metric:"m"
          (history [ entry 10.0 1.0; entry 10.1 1.0 ])
      in
      Alcotest.(check bool) "no jump, no attribution" true
        (Obs_trend.attribute ~store:st flat = None))

let () =
  Alcotest.run "trend"
    [
      ( "trajectory",
        [
          Alcotest.test_case "metrics_of" `Quick test_metrics_of;
          Alcotest.test_case "seq alignment" `Quick test_trajectory_alignment;
        ] );
      ( "slope",
        [
          Alcotest.test_case "guards" `Quick test_slope_fit_guards;
          Alcotest.test_case "with intercept" `Quick
            test_slope_fit_with_intercept;
          Alcotest.test_case "advisory excluded" `Quick
            test_trajectory_fit_excludes_advisory;
        ] );
      ( "jump",
        [ Alcotest.test_case "first jump" `Quick test_first_jump ] );
      ( "attribution",
        [
          Alcotest.test_case "diverging traces" `Quick
            test_attribute_diverging_traces;
          Alcotest.test_case "identical traces" `Quick
            test_attribute_identical_traces;
          Alcotest.test_case "missing traces" `Quick
            test_attribute_missing_traces;
        ] );
    ]
