(* The HTTP exposition layer (Obs_http): the pure protocol core —
   head accumulation over partial reads, request-line parsing, response
   framing, routing — and one loopback round trip per address family
   through serve_in_background/fetch. *)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let contains_sub hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* A reader over a fixed string yielding at most [chunk] bytes per call
   — the socket partial-read case, made deterministic. *)
let string_reader ?(chunk = max_int) s =
  let pos = ref 0 in
  fun buf off len ->
    let n = Stdlib.min (Stdlib.min len chunk) (String.length s - !pos) in
    Bytes.blit_string s !pos buf off n;
    pos := !pos + n;
    n

(* ------------------------------------------------------------------ *)
(* read_head                                                           *)

let test_read_head_partial_reads () =
  let head = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n" in
  (* One byte per read: the head must still assemble, and the body
     bytes after the terminator must not be consumed into it. *)
  (match Obs_http.read_head (string_reader ~chunk:1 (head ^ "BODY")) with
  | Ok h -> Alcotest.(check string) "byte-at-a-time" head h
  | Error _ -> Alcotest.fail "rejected a well-formed head");
  (match Obs_http.read_head (string_reader (head ^ "BODY")) with
  | Ok h -> Alcotest.(check string) "single gulp" head h
  | Error _ -> Alcotest.fail "rejected a well-formed head");
  (* Hand-typed clients send bare LF. *)
  match Obs_http.read_head (string_reader "GET / HTTP/1.0\n\nrest") with
  | Ok h -> Alcotest.(check string) "bare LFLF" "GET / HTTP/1.0\n\n" h
  | Error _ -> Alcotest.fail "rejected a bare-LF head"

let test_read_head_eof_and_cap () =
  (match Obs_http.read_head (string_reader "GET / HTTP/1.1\r\n") with
  | Error `Eof -> ()
  | Ok _ | Error `Too_large -> Alcotest.fail "missed the truncated head");
  (match
     Obs_http.read_head ~max_len:16 (string_reader (String.make 100 'a'))
   with
  | Error `Too_large -> ()
  | Ok _ | Error `Eof -> Alcotest.fail "missed the oversized head");
  (* The cap is on unterminated growth: a short head under the cap is
     fine even with a tiny limit. *)
  match Obs_http.read_head ~max_len:8 (string_reader "A\r\n\r\n") with
  | Ok h -> Alcotest.(check string) "under the cap" "A\r\n\r\n" h
  | Error _ -> Alcotest.fail "capped a head under the limit"

(* ------------------------------------------------------------------ *)
(* Request lines and response framing                                  *)

let test_parse_request_line () =
  let r = ok (Obs_http.parse_request_line "GET /metrics HTTP/1.1") in
  Alcotest.(check string) "meth" "GET" r.Obs_http.meth;
  Alcotest.(check string) "path" "/metrics" r.Obs_http.path;
  Alcotest.(check string) "version" "HTTP/1.1" r.Obs_http.version;
  (* Queries are ignored, not errors. *)
  Alcotest.(check string) "query stripped" "/runs"
    (ok (Obs_http.parse_request_line "GET /runs?pretty=1 HTTP/1.1"))
      .Obs_http.path;
  List.iter
    (fun (label, line) ->
      match Obs_http.parse_request_line line with
      | Ok _ -> Alcotest.failf "accepted %s" label
      | Error _ -> ())
    [
      ("two parts", "GET /x");
      ("empty line", "");
      ("double space", "GET  /x HTTP/1.1");
      ("non-HTTP version", "GET /x FTP/1.0");
      ("empty method", " /x HTTP/1.1");
    ]

let test_response_framing () =
  let r = Obs_http.response ~status:503 "down\n" in
  Alcotest.(check bool) "status line" true
    (String.starts_with ~prefix:"HTTP/1.1 503 Service Unavailable\r\n" r);
  Alcotest.(check bool) "content length" true
    (contains_sub r "Content-Length: 5\r\n");
  Alcotest.(check bool) "connection close" true
    (contains_sub r "Connection: close\r\n");
  Alcotest.(check bool) "blank line then body" true
    (String.ends_with ~suffix:"\r\n\r\ndown\n" r);
  Alcotest.(check bool) "content type override" true
    (contains_sub
       (Obs_http.response ~status:200 ~content_type:"application/json" "[]")
       "Content-Type: application/json\r\n");
  Alcotest.(check string) "unknown code reason" "Status"
    (Obs_http.status_reason 418)

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)

let source ?(metrics = [ "# TYPE cs_up gauge"; "cs_up 1" ])
    ?(health = (200, "ok\n")) ?(runs = Ok (Jsonx.List [])) () =
  {
    Obs_http.metrics = (fun () -> metrics);
    health = (fun () -> health);
    runs = (fun () -> runs);
  }

let get path = { Obs_http.meth = "GET"; path; version = "HTTP/1.1" }

let test_handle_routing () =
  let s = source () in
  let status, ctype, body = Obs_http.handle s (get "/metrics") in
  Alcotest.(check int) "metrics ok" 200 status;
  Alcotest.(check string) "prometheus content type"
    "text/plain; version=0.0.4; charset=utf-8" ctype;
  Alcotest.(check string) "lines joined" "# TYPE cs_up gauge\ncs_up 1\n" body;
  let status, _, body = Obs_http.handle s (get "/health") in
  Alcotest.(check int) "health passthrough" 200 status;
  Alcotest.(check string) "health body" "ok\n" body;
  let status, _, _ =
    Obs_http.handle (source ~health:(503, "rule fired\n") ()) (get "/health")
  in
  Alcotest.(check int) "unhealthy is 503" 503 status;
  let status, ctype, body = Obs_http.handle s (get "/runs") in
  Alcotest.(check int) "runs ok" 200 status;
  Alcotest.(check string) "runs is json" "application/json" ctype;
  Alcotest.(check string) "empty index" "[]\n" body;
  let status, _, body = Obs_http.handle s (get "/") in
  Alcotest.(check int) "index page" 200 status;
  Alcotest.(check bool) "lists the endpoints" true
    (contains_sub body "/metrics");
  let status, _, _ = Obs_http.handle s (get "/nope") in
  Alcotest.(check int) "unknown path" 404 status;
  let status, _, _ =
    Obs_http.handle s { Obs_http.meth = "POST"; path = "/metrics"; version = "HTTP/1.1" }
  in
  Alcotest.(check int) "non-GET" 405 status

let test_handle_failures_are_500 () =
  (* Exposition that fails the Prometheus grammar must not leave the
     process as a 200. *)
  let status, _, body =
    Obs_http.handle (source ~metrics:[ "cs_up 1" ] ()) (get "/metrics")
  in
  Alcotest.(check int) "invalid exposition" 500 status;
  Alcotest.(check bool) "names the validation" true
    (contains_sub body "validation");
  let status, _, body =
    Obs_http.handle (source ~runs:(Error "index unreadable") ()) (get "/runs")
  in
  Alcotest.(check int) "runs error" 500 status;
  Alcotest.(check bool) "surfaces the reason" true
    (contains_sub body "index unreadable")

(* ------------------------------------------------------------------ *)
(* Addresses                                                           *)

let test_addr_parsing () =
  let parse s = ok (Obs_http.addr_of_string s) in
  Alcotest.(check bool) "unix: prefix" true
    (parse "unix:/tmp/x.sock" = Obs_http.Unix_sock "/tmp/x.sock");
  Alcotest.(check bool) "bare path" true
    (parse "/tmp/y.sock" = Obs_http.Unix_sock "/tmp/y.sock");
  Alcotest.(check bool) "host:port" true
    (parse "127.0.0.1:9100" = Obs_http.Tcp ("127.0.0.1", 9100));
  Alcotest.(check bool) "bare :port defaults the host" true
    (parse ":0" = Obs_http.Tcp ("127.0.0.1", 0));
  List.iter
    (fun s ->
      match Obs_http.addr_of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "localhost:99999"; "localhost:no"; "nocolon" ];
  let round a = Format.asprintf "%a" Obs_http.pp_addr (parse a) in
  Alcotest.(check string) "pp round-trips unix" "unix:/tmp/x.sock"
    (round "unix:/tmp/x.sock");
  Alcotest.(check string) "pp round-trips tcp" "127.0.0.1:9100"
    (round "127.0.0.1:9100")

(* ------------------------------------------------------------------ *)
(* Loopback round trips                                                *)

let with_server ?max_requests addr k =
  let srv = ok (Obs_http.serve_in_background ?max_requests ~addr (source ())) in
  Fun.protect
    ~finally:(fun () ->
      Obs_http.shutdown srv;
      (* Idempotent: a second shutdown is a no-op, not a hang. *)
      Obs_http.shutdown srv)
    (fun () -> k srv)

let temp_sock () =
  let p = Filename.temp_file "cs_http" ".sock" in
  Sys.remove p;
  p

let test_unix_roundtrip () =
  with_server (Obs_http.Unix_sock (temp_sock ())) (fun srv ->
      let addr = Obs_http.address srv in
      let status, body = ok (Obs_http.fetch ~addr "/metrics") in
      Alcotest.(check int) "metrics over the wire" 200 status;
      Alcotest.(check bool) "exposition body" true
        (contains_sub body "cs_up 1");
      let status, body = ok (Obs_http.fetch ~addr "/health") in
      Alcotest.(check int) "health over the wire" 200 status;
      Alcotest.(check string) "health body" "ok\n" body;
      let status, _ = ok (Obs_http.fetch ~addr "/nope") in
      Alcotest.(check int) "404 over the wire" 404 status)

let test_tcp_ephemeral_port () =
  with_server (Obs_http.Tcp ("127.0.0.1", 0)) (fun srv ->
      (match Obs_http.address srv with
      | Obs_http.Tcp (_, p) ->
          Alcotest.(check bool) "kernel-assigned port reported" true (p > 0)
      | Obs_http.Unix_sock _ -> Alcotest.fail "address family changed");
      let status, body =
        ok (Obs_http.fetch ~addr:(Obs_http.address srv) "/runs")
      in
      Alcotest.(check int) "runs over tcp" 200 status;
      Alcotest.(check string) "empty index" "[]\n" body)

let test_max_requests_bounds_the_server () =
  let sock = temp_sock () in
  with_server ~max_requests:1 (Obs_http.Unix_sock sock) (fun srv ->
      let addr = Obs_http.address srv in
      let status, _ = ok (Obs_http.fetch ~addr "/health") in
      Alcotest.(check int) "first request served" 200 status;
      (* The server stops after its budget; the loop may still be mid
         teardown, so poll until the connect fails. *)
      let rec drained n =
        if n = 0 then Alcotest.fail "server kept serving past max_requests"
        else
          match Obs_http.fetch ~attempts:1 ~addr "/health" with
          | Error _ -> ()
          | Ok _ ->
              Unix.sleepf 0.02;
              drained (n - 1)
      in
      drained 100;
      Alcotest.(check bool) "stale socket path removed" false
        (Sys.file_exists sock))

let () =
  Alcotest.run "http"
    [
      ( "head",
        [
          Alcotest.test_case "partial reads" `Quick
            test_read_head_partial_reads;
          Alcotest.test_case "eof and size cap" `Quick
            test_read_head_eof_and_cap;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request line" `Quick test_parse_request_line;
          Alcotest.test_case "response framing" `Quick test_response_framing;
        ] );
      ( "routing",
        [
          Alcotest.test_case "endpoints" `Quick test_handle_routing;
          Alcotest.test_case "failures are 500" `Quick
            test_handle_failures_are_500;
        ] );
      ( "addr",
        [ Alcotest.test_case "parse and print" `Quick test_addr_parsing ] );
      ( "serve",
        [
          Alcotest.test_case "unix socket round trip" `Quick
            test_unix_roundtrip;
          Alcotest.test_case "tcp ephemeral port" `Quick
            test_tcp_ephemeral_port;
          Alcotest.test_case "max_requests bounds the server" `Quick
            test_max_requests_bounds_the_server;
        ] );
    ]
